module streamkm

go 1.24
