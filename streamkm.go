// Package streamkm is a streaming k-means clustering library with fast
// queries, implementing Zhang, Tangwongsan & Tirthapura, "Streaming k-Means
// Clustering with Fast Queries" (ICDE 2017).
//
// A streaming k-means clusterer ingests an unbounded stream of points and,
// at any moment, answers a query for k cluster centers summarizing
// everything observed so far. All algorithms here keep memory
// polylogarithmic in the stream length and return centers whose cost is an
// O(log k)-approximation of the optimal in expectation. They differ in how
// fast they answer queries:
//
//   - CT (coreset tree, = streamkm++): the prior state of the art. Queries
//     merge every active coreset: O(r·log N/log r) buckets.
//   - CC (cached coreset tree): caches the coreset computed for the previous
//     query and merges at most r buckets per query — a log N-factor faster.
//   - RCC (recursive cached coreset tree): applies caching recursively;
//     ~2·log log N bucket merges per query and O(1) coreset levels.
//   - OnlineCC: a hybrid with MacQueen's sequential k-means; most queries
//     return in O(1) without running k-means++ at all, falling back to CC
//     only when a cost bound degrades past a threshold alpha.
//   - Sequential: MacQueen's sequential k-means baseline (fast, no
//     guarantee).
//
// # Quick start
//
//	c, err := streamkm.New(streamkm.AlgoCC, streamkm.Config{K: 10})
//	if err != nil { ... }
//	for p := range source {
//		c.Add(p) // p is a []float64
//	}
//	centers := c.Centers() // at any time, between any two Adds
//
// Clusterers returned by New are single-goroutine objects. For concurrent
// workloads — many producer goroutines ingesting while queries are served
// — use Concurrent (sharded ingest plus a cached-centers query fast path)
// or NewSharded for explicit per-shard routing.
//
// Serving layers create backends through the spec factory instead of a
// concrete constructor: Open(BackendSpec{...}, cfg) builds a concurrent,
// forward-decayed or sliding-window Backend behind one interface, and
// Restore resumes any of them from a snapshot; cmd/streamkmd serves them
// over HTTP with per-tenant backend selection.
package streamkm

import (
	"fmt"
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
)

// Point is a dense point in R^d. All points fed to one Clusterer must share
// the same dimension.
type Point = []float64

// Clusterer is a streaming k-means algorithm: feed points with Add, get k
// centers with Centers at any time. Implementations returned by New are
// not safe for concurrent use — use Concurrent for that.
type Clusterer interface {
	// Add observes the next stream point with weight 1.
	Add(p Point)
	// AddWeighted observes a point carrying weight w > 0 — equivalent to w
	// unit points at the same coordinates (Problem 1 in the paper takes a
	// weight function; pre-aggregated inputs use this).
	AddWeighted(p Point, w float64)
	// Centers returns k cluster centers for the stream so far. The slices
	// are copies owned by the caller.
	Centers() []Point
	// PointsStored reports memory use in stored points (the paper's Table 4
	// metric; multiply by dimension × 8 bytes for an estimate in bytes).
	PointsStored() int
	// Name identifies the algorithm ("CT", "CC", "RCC", "OnlineCC",
	// "Sequential").
	Name() string
}

// Algo selects one of the implemented algorithms.
type Algo string

// Available algorithms.
const (
	AlgoCT         Algo = "CT"         // coreset tree (streamkm++)
	AlgoCC         Algo = "CC"         // cached coreset tree
	AlgoRCC        Algo = "RCC"        // recursive cached coreset tree
	AlgoOnlineCC   Algo = "OnlineCC"   // sequential + CC hybrid
	AlgoSequential Algo = "Sequential" // MacQueen's sequential k-means
)

// Algos lists every available algorithm in the paper's order.
func Algos() []Algo {
	return []Algo{AlgoSequential, AlgoCT, AlgoCC, AlgoRCC, AlgoOnlineCC}
}

// BuilderKind selects the coreset construction.
type BuilderKind string

// Available coreset builders.
const (
	// BuilderKMeansPP reduces a bucket by k-means++ seeding with m centers
	// and weight transfer — the construction used by streamkm++ and by the
	// paper's experiments. Default.
	BuilderKMeansPP BuilderKind = "kmeanspp"
	// BuilderSensitivity is Feldman–Langberg importance sampling, the
	// theoretical construction behind the paper's Theorem 2.
	BuilderSensitivity BuilderKind = "sensitivity"
	// BuilderUniform is uniform sampling — no guarantee; ablation baseline.
	BuilderUniform BuilderKind = "uniform"
)

// Config configures a Clusterer. The zero value of every field selects the
// paper's defaults (Section 5.2): bucket size m = 20·K, merge degree r = 2,
// RCC nesting depth 3, OnlineCC threshold alpha = 1.2, one k-means++ run at
// query time.
type Config struct {
	// K is the number of cluster centers returned by queries. Required.
	K int
	// BucketSize is the base bucket / coreset size m. Default 20·K.
	BucketSize int
	// MergeDegree is the coreset tree merge degree r (CT, CC, OnlineCC's
	// inner CC). Default 2.
	MergeDegree int
	// RCCOrder is the nesting depth of RCC; merge degrees are 2^(2^i) for
	// each order i ≤ RCCOrder. Default 3 (degrees 2, 4, 16, 256).
	RCCOrder int
	// Alpha is OnlineCC's switching threshold (> 1): queries fall back to
	// CC when the running cost estimate exceeds Alpha times the cost at the
	// previous fallback. Default 1.2.
	Alpha float64
	// Epsilon is the coreset accuracy parameter used by OnlineCC to inflate
	// its post-fallback cost estimate: phiNow = phi/(1-Epsilon). Default 0.1.
	Epsilon float64
	// Builder selects the coreset construction. Default BuilderKMeansPP.
	Builder BuilderKind
	// QueryRuns is the number of independent k-means++ restarts per query;
	// the best result wins. Default 1 (the paper's accuracy experiments use
	// 5; see QueryLloydIters).
	QueryRuns int
	// QueryLloydIters caps Lloyd refinement iterations after each query-time
	// seeding. Default 0 (the paper's accuracy experiments use 20).
	QueryLloydIters int
	// Seed makes the clusterer deterministic. Default 1.
	Seed int64
}

// withDefaults materializes the paper's default parameters.
func (c Config) withDefaults() (Config, error) {
	if c.K < 1 {
		return c, fmt.Errorf("streamkm: Config.K must be >= 1, got %d", c.K)
	}
	if c.BucketSize == 0 {
		c.BucketSize = 20 * c.K
	}
	if c.BucketSize < 1 {
		return c, fmt.Errorf("streamkm: Config.BucketSize must be >= 1, got %d", c.BucketSize)
	}
	if c.MergeDegree == 0 {
		c.MergeDegree = 2
	}
	if c.MergeDegree < 2 {
		return c, fmt.Errorf("streamkm: Config.MergeDegree must be >= 2, got %d", c.MergeDegree)
	}
	if c.RCCOrder == 0 {
		c.RCCOrder = 3
	}
	if c.RCCOrder < 0 {
		return c, fmt.Errorf("streamkm: Config.RCCOrder must be >= 0, got %d", c.RCCOrder)
	}
	if c.Alpha == 0 {
		c.Alpha = 1.2
	}
	if c.Alpha <= 1 {
		return c, fmt.Errorf("streamkm: Config.Alpha must be > 1, got %v", c.Alpha)
	}
	if c.Epsilon == 0 {
		c.Epsilon = 0.1
	}
	if c.Epsilon <= 0 || c.Epsilon >= 1 {
		return c, fmt.Errorf("streamkm: Config.Epsilon must be in (0,1), got %v", c.Epsilon)
	}
	if c.Builder == "" {
		c.Builder = BuilderKMeansPP
	}
	if c.QueryRuns == 0 {
		c.QueryRuns = 1
	}
	if c.QueryRuns < 1 {
		return c, fmt.Errorf("streamkm: Config.QueryRuns must be >= 1, got %d", c.QueryRuns)
	}
	if c.QueryLloydIters < 0 {
		return c, fmt.Errorf("streamkm: Config.QueryLloydIters must be >= 0, got %d", c.QueryLloydIters)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c, nil
}

func (c Config) builder() (coreset.Builder, error) {
	switch c.Builder {
	case BuilderKMeansPP:
		return coreset.KMeansPP{}, nil
	case BuilderSensitivity:
		return coreset.Sensitivity{}, nil
	case BuilderUniform:
		return coreset.Uniform{}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown coreset builder %q", c.Builder)
}

func (c Config) queryOptions() kmeans.Options {
	return kmeans.Options{Runs: c.QueryRuns, LloydIters: c.QueryLloydIters, Tol: 1e-4}
}

// New creates a Clusterer running the selected algorithm with the given
// configuration.
func New(algo Algo, cfg Config) (Clusterer, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if algo == AlgoSequential {
		return &wrapper{inner: seqkm.New(cfg.K)}, nil
	}
	b, err := cfg.builder()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch algo {
	case AlgoCT:
		s := core.NewCT(cfg.MergeDegree, cfg.BucketSize, b, rng)
		return &wrapper{inner: core.NewDriver(s, cfg.K, cfg.BucketSize, rng, cfg.queryOptions())}, nil
	case AlgoCC:
		s := core.NewCC(cfg.MergeDegree, cfg.BucketSize, b, rng)
		return &wrapper{inner: core.NewDriver(s, cfg.K, cfg.BucketSize, rng, cfg.queryOptions())}, nil
	case AlgoRCC:
		s := core.NewRCC(cfg.RCCOrder, cfg.BucketSize, b, rng)
		return &wrapper{inner: core.NewDriver(s, cfg.K, cfg.BucketSize, rng, cfg.queryOptions())}, nil
	case AlgoOnlineCC:
		o := core.NewOnlineCC(cfg.K, cfg.BucketSize, cfg.MergeDegree, cfg.Alpha, cfg.Epsilon,
			b, rng, cfg.queryOptions())
		return &wrapper{inner: o}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown algorithm %q", algo)
}

// MustNew is New that panics on configuration errors; convenient in
// examples and tests.
func MustNew(algo Algo, cfg Config) Clusterer {
	c, err := New(algo, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// wrapper adapts the internal Clusterer (geom.Point based) to the public
// Point type. geom.Point and Point share the underlying []float64, so no
// copying happens on Add.
type wrapper struct {
	inner core.Clusterer
}

// weightedAdder is satisfied by every internal clusterer (Driver, OnlineCC,
// Sequential, kmedian.Driver, decay.Clusterer).
type weightedAdder interface {
	AddWeighted(wp geom.Weighted)
}

func (w *wrapper) Add(p Point) { w.inner.Add(geom.Point(p)) }

func (w *wrapper) AddWeighted(p Point, weight float64) {
	w.inner.(weightedAdder).AddWeighted(geom.Weighted{P: geom.Point(p), W: weight})
}

func (w *wrapper) PointsStored() int { return w.inner.PointsStored() }
func (w *wrapper) Name() string      { return w.inner.Name() }

// counter is implemented by inner clusterers that track stream length.
type counter interface{ Count() int64 }

// Count returns the number of points observed so far, or -1 when the
// underlying algorithm does not track it. Every algorithm created by New
// tracks it; access via a type assertion on the returned Clusterer:
//
//	n := c.(interface{ Count() int64 }).Count()
//
// Serving layers use this to report stream length and to verify that a
// restored snapshot lost no points.
func (w *wrapper) Count() int64 {
	if c, ok := w.inner.(counter); ok {
		return c.Count()
	}
	return -1
}

func (w *wrapper) Centers() []Point {
	cs := w.inner.Centers()
	out := make([]Point, len(cs))
	for i, c := range cs {
		out[i] = []float64(c)
	}
	return out
}

// Cost returns the k-means cost (within-cluster sum of squared distances,
// SSQ) of points against centers — the paper's accuracy metric.
func Cost(points []Point, centers []Point) float64 {
	wp := make([]geom.Weighted, len(points))
	for i, p := range points {
		wp[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	cs := make([]geom.Point, len(centers))
	for i, c := range centers {
		cs[i] = geom.Point(c)
	}
	return kmeans.Cost(wp, cs)
}

// KMeansPlusPlus runs the batch k-means++ algorithm (with optional Lloyd
// refinement) on a static point set — the paper's batch baseline. runs
// selects the number of restarts (best result wins), lloydIters the
// refinement cap per restart.
func KMeansPlusPlus(points []Point, k int, seed int64, runs, lloydIters int) []Point {
	wp := make([]geom.Weighted, len(points))
	for i, p := range points {
		wp[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	rng := rand.New(rand.NewSource(seed))
	centers, _ := kmeans.Run(rng, wp, k, kmeans.Options{Runs: runs, LloydIters: lloydIters, Tol: 1e-4})
	out := make([]Point, len(centers))
	for i, c := range centers {
		out[i] = []float64(c)
	}
	return out
}
