// Package quality provides clustering quality diagnostics beyond the SSQ
// cost the paper reports: silhouette coefficient (sampled), Davies–Bouldin
// index, and per-cluster statistics. These let downstream users of the
// streaming clusterers validate results the way they would with a batch
// library.
package quality

import (
	"math"
	"math/rand"

	"streamkm/internal/geom"
)

// Report summarizes how well a set of centers clusters a point set.
type Report struct {
	// K is the number of centers evaluated.
	K int
	// N is the number of points evaluated.
	N int
	// SSQ is the k-means cost (within-cluster sum of squared distances).
	SSQ float64
	// Silhouette is the mean silhouette coefficient in [-1, 1]; higher is
	// better. Computed exactly when N <= the sample cap, otherwise on a
	// uniform sample.
	Silhouette float64
	// DaviesBouldin is the Davies–Bouldin index; lower is better.
	DaviesBouldin float64
	// ClusterSizes is the weighted mass assigned to each center.
	ClusterSizes []float64
	// EmptyClusters counts centers with no assigned mass.
	EmptyClusters int
}

// silhouetteSampleCap bounds the O(n^2)-ish silhouette computation.
const silhouetteSampleCap = 2000

// Evaluate computes a quality report for centers over pts. rng drives
// silhouette sampling for large inputs; pass a seeded source for
// reproducibility. Empty input or empty centers yield a zero Report.
func Evaluate(rng *rand.Rand, pts []geom.Weighted, centers []geom.Point) Report {
	r := Report{K: len(centers), N: len(pts)}
	if len(pts) == 0 || len(centers) == 0 {
		return r
	}
	assign := make([]int, len(pts))
	r.ClusterSizes = make([]float64, len(centers))
	for i, wp := range pts {
		d, idx := geom.MinSqDist(wp.P, centers)
		assign[i] = idx
		r.SSQ += wp.W * d
		r.ClusterSizes[idx] += wp.W
	}
	for _, sz := range r.ClusterSizes {
		if sz == 0 {
			r.EmptyClusters++
		}
	}
	r.DaviesBouldin = daviesBouldin(pts, centers, assign, r.ClusterSizes)
	r.Silhouette = silhouette(rng, pts, assign, len(centers))
	return r
}

// daviesBouldin computes the Davies–Bouldin index: the mean over clusters
// of the worst ratio (s_i + s_j) / d(c_i, c_j), where s_i is the mean
// distance of cluster i's points to its center.
func daviesBouldin(pts []geom.Weighted, centers []geom.Point, assign []int, sizes []float64) float64 {
	k := len(centers)
	if k < 2 {
		return 0
	}
	scatter := make([]float64, k)
	for i, wp := range pts {
		scatter[assign[i]] += wp.W * geom.Dist(wp.P, centers[assign[i]])
	}
	active := 0
	for i := range scatter {
		if sizes[i] > 0 {
			scatter[i] /= sizes[i]
			active++
		}
	}
	if active < 2 {
		return 0
	}
	var sum float64
	for i := 0; i < k; i++ {
		if sizes[i] == 0 {
			continue
		}
		worst := 0.0
		for j := 0; j < k; j++ {
			if j == i || sizes[j] == 0 {
				continue
			}
			d := geom.Dist(centers[i], centers[j])
			if d == 0 {
				continue
			}
			if v := (scatter[i] + scatter[j]) / d; v > worst {
				worst = v
			}
		}
		sum += worst
	}
	return sum / float64(active)
}

// silhouette computes the mean silhouette coefficient, sampling points when
// the input exceeds the cap. Weights act as multiplicities for the cluster
// composition but sampling is uniform over stored points.
func silhouette(rng *rand.Rand, pts []geom.Weighted, assign []int, k int) float64 {
	idxs := make([]int, len(pts))
	for i := range idxs {
		idxs[i] = i
	}
	if len(idxs) > silhouetteSampleCap {
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
		idxs = idxs[:silhouetteSampleCap]
	}
	var sum float64
	var n int
	meanDist := make([]float64, k)
	weight := make([]float64, k)
	for _, i := range idxs {
		for c := 0; c < k; c++ {
			meanDist[c] = 0
			weight[c] = 0
		}
		for j, other := range pts {
			if j == i {
				continue
			}
			meanDist[assign[j]] += other.W * geom.Dist(pts[i].P, other.P)
			weight[assign[j]] += other.W
		}
		own := assign[i]
		if weight[own] == 0 {
			continue // singleton cluster: silhouette undefined, skip
		}
		a := meanDist[own] / weight[own]
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || weight[c] == 0 {
				continue
			}
			if v := meanDist[c] / weight[c]; v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue // only one non-empty cluster
		}
		den := math.Max(a, b)
		if den > 0 {
			sum += (b - a) / den
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
