package quality

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
)

func blobs(rng *rand.Rand, centers []geom.Point, n int, sd float64) []geom.Weighted {
	out := make([]geom.Weighted, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, len(c))
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*sd
		}
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

func TestEvaluateEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	r := Evaluate(rng, nil, []geom.Point{{0}})
	if r.N != 0 || r.SSQ != 0 || r.Silhouette != 0 {
		t.Fatalf("empty input: %+v", r)
	}
	r = Evaluate(rng, []geom.Weighted{{P: geom.Point{1}, W: 1}}, nil)
	if r.K != 0 {
		t.Fatalf("no centers: %+v", r)
	}
}

func TestGoodClusteringScoresWell(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	trueCenters := []geom.Point{{0, 0}, {50, 0}, {0, 50}}
	pts := blobs(rng, trueCenters, 600, 1)
	r := Evaluate(rng, pts, trueCenters)
	if r.Silhouette < 0.8 {
		t.Errorf("silhouette %.3f for well-separated clusters, want > 0.8", r.Silhouette)
	}
	if r.DaviesBouldin > 0.3 {
		t.Errorf("Davies-Bouldin %.3f for well-separated clusters, want < 0.3", r.DaviesBouldin)
	}
	if r.EmptyClusters != 0 {
		t.Errorf("empty clusters: %d", r.EmptyClusters)
	}
	var mass float64
	for _, s := range r.ClusterSizes {
		mass += s
	}
	if math.Abs(mass-600) > 1e-9 {
		t.Errorf("cluster mass %v, want 600", mass)
	}
}

func TestBadClusteringScoresWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	trueCenters := []geom.Point{{0, 0}, {50, 0}, {0, 50}}
	pts := blobs(rng, trueCenters, 600, 1)
	good := Evaluate(rng, pts, trueCenters)
	// Deliberately bad centers: all stacked in one corner.
	bad := Evaluate(rng, pts, []geom.Point{{0, 0}, {1, 0}, {2, 0}})
	if bad.Silhouette >= good.Silhouette {
		t.Errorf("bad silhouette %.3f >= good %.3f", bad.Silhouette, good.Silhouette)
	}
	if bad.SSQ <= good.SSQ {
		t.Errorf("bad SSQ %v <= good %v", bad.SSQ, good.SSQ)
	}
	if bad.DaviesBouldin <= good.DaviesBouldin {
		t.Errorf("bad DB %v <= good DB %v", bad.DaviesBouldin, good.DaviesBouldin)
	}
}

func TestEmptyClusterDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := blobs(rng, []geom.Point{{0, 0}}, 100, 1)
	r := Evaluate(rng, pts, []geom.Point{{0, 0}, {1e6, 1e6}})
	if r.EmptyClusters != 1 {
		t.Fatalf("EmptyClusters = %d, want 1", r.EmptyClusters)
	}
}

func TestSilhouetteSamplingKicksIn(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	trueCenters := []geom.Point{{0, 0}, {50, 0}}
	pts := blobs(rng, trueCenters, 3000, 1) // above the cap
	r := Evaluate(rng, pts, trueCenters)
	if r.Silhouette < 0.8 {
		t.Errorf("sampled silhouette %.3f, want > 0.8", r.Silhouette)
	}
}

func TestSingleClusterEdge(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := blobs(rng, []geom.Point{{0, 0}}, 100, 1)
	r := Evaluate(rng, pts, []geom.Point{{0, 0}})
	if r.DaviesBouldin != 0 {
		t.Errorf("DB for k=1 should be 0, got %v", r.DaviesBouldin)
	}
	// Silhouette is undefined with one cluster; must not be NaN.
	if math.IsNaN(r.Silhouette) {
		t.Error("silhouette is NaN for k=1")
	}
}

func TestWeightsActAsMultiplicity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	centers := []geom.Point{{0}, {100}}
	// One heavy point at 0, one light at 100.
	pts := []geom.Weighted{
		{P: geom.Point{0}, W: 10},
		{P: geom.Point{100}, W: 1},
	}
	r := Evaluate(rng, pts, centers)
	if r.ClusterSizes[0] != 10 || r.ClusterSizes[1] != 1 {
		t.Fatalf("ClusterSizes = %v", r.ClusterSizes)
	}
}
