package coreset

import (
	"math/rand"

	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// Sensitivity is a Feldman–Langberg style importance-sampling coreset
// builder: the theoretical construction behind Theorem 2 of the paper
// (constant-size coresets, [15]/[16]).
//
// Build computes a bicriteria solution B with k-means++ seeding, derives an
// upper bound on each point's sensitivity
//
//	s(p) = w(p)*D^2(p,B)/phi_B(P) + w(p)/W(cluster(p))
//
// and samples m points i.i.d. proportional to s, reweighting each sampled
// point by w(p)/(m*q(p)) so that cost estimates are unbiased. Duplicate
// draws are merged, so the output can be smaller than m.
type Sensitivity struct {
	// K is the number of centers in the bicriteria solution. If zero, Build
	// uses max(2, m/10) which tracks the usual "m is O(k)" regime.
	K int
}

// Name implements Builder.
func (Sensitivity) Name() string { return "sensitivity-sampling" }

// Build implements Builder.
func (s Sensitivity) Build(rng *rand.Rand, pts []geom.Weighted, m int) []geom.Weighted {
	if len(pts) == 0 || m <= 0 {
		return nil
	}
	if len(pts) <= m {
		return geom.CloneWeighted(pts)
	}
	k := s.K
	if k <= 0 {
		k = m / 10
		if k < 2 {
			k = 2
		}
	}
	centers := kmeans.SeedPP(rng, pts, k)

	// Per-point nearest center and residual cost, scanned through the
	// flat-array kernel (n points × k centers — this pass dominates).
	fc := geom.FlattenCenters(centers)
	assign := make([]int, len(pts))
	resid := make([]float64, len(pts))
	var totalCost float64
	clusterW := make([]float64, len(centers))
	for i, wp := range pts {
		d, idx := fc.Nearest(wp.P)
		assign[i] = idx
		resid[i] = d
		totalCost += wp.W * d
		clusterW[idx] += wp.W
	}

	// Sensitivity upper bounds and the sampling distribution q.
	q := make([]float64, len(pts))
	var S float64
	for i, wp := range pts {
		v := wp.W / clusterW[assign[i]]
		if totalCost > 0 {
			v += wp.W * resid[i] / totalCost
		}
		q[i] = v
		S += v
	}
	if S <= 0 {
		return geom.CloneWeighted(pts[:m])
	}

	// Sample m i.i.d. draws from q via the inverse CDF; merge duplicates.
	cdf := make([]float64, len(pts))
	var acc float64
	for i, v := range q {
		acc += v
		cdf[i] = acc
	}
	counts := make(map[int]int, m)
	for j := 0; j < m; j++ {
		target := rng.Float64() * S
		idx := searchCDF(cdf, target)
		counts[idx]++
	}
	out := make([]geom.Weighted, 0, len(counts))
	for idx, c := range counts {
		w := float64(c) * pts[idx].W * S / (float64(m) * q[idx])
		out = append(out, geom.Weighted{P: pts[idx].P.Clone(), W: w})
	}
	return out
}

// searchCDF returns the smallest index i with cdf[i] >= target.
func searchCDF(cdf []float64, target float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Uniform is a uniform-sampling "coreset" builder used as an ablation
// baseline: it draws m points with probability proportional to weight and
// rescales weights to preserve total weight in expectation. It provides no
// coreset guarantee and exists to quantify how much the informed
// constructions matter.
type Uniform struct{}

// Name implements Builder.
func (Uniform) Name() string { return "uniform-sampling" }

// Build implements Builder.
func (Uniform) Build(rng *rand.Rand, pts []geom.Weighted, m int) []geom.Weighted {
	if len(pts) == 0 || m <= 0 {
		return nil
	}
	if len(pts) <= m {
		return geom.CloneWeighted(pts)
	}
	total := geom.TotalWeight(pts)
	cdf := make([]float64, len(pts))
	var acc float64
	for i, wp := range pts {
		acc += wp.W
		cdf[i] = acc
	}
	counts := make(map[int]int, m)
	for j := 0; j < m; j++ {
		idx := searchCDF(cdf, rng.Float64()*total)
		counts[idx]++
	}
	out := make([]geom.Weighted, 0, len(counts))
	per := total / float64(m)
	for idx, c := range counts {
		out = append(out, geom.Weighted{P: pts[idx].P.Clone(), W: float64(c) * per})
	}
	return out
}
