package coreset

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func mixture(rng *rand.Rand, centers []geom.Point, n int, sd float64) []geom.Weighted {
	out := make([]geom.Weighted, n)
	d := len(centers[0])
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*sd
		}
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

var mixCenters = []geom.Point{{0, 0}, {40, 0}, {0, 40}, {40, 40}, {20, 20}}

var allBuilders = []Builder{KMeansPP{}, Sensitivity{}, Uniform{}}

func TestBuilderNames(t *testing.T) {
	want := map[string]bool{
		"kmeans++-reduce": true, "sensitivity-sampling": true, "uniform-sampling": true,
	}
	for _, b := range allBuilders {
		if !want[b.Name()] {
			t.Errorf("unexpected builder name %q", b.Name())
		}
	}
}

func TestBuildEdgeCases(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range allBuilders {
		if got := b.Build(rng, nil, 10); got != nil {
			t.Errorf("%s: empty input should give nil", b.Name())
		}
		pts := []geom.Weighted{{P: geom.Point{1, 2}, W: 3}}
		if got := b.Build(rng, pts, 0); got != nil {
			t.Errorf("%s: m=0 should give nil", b.Name())
		}
	}
}

func TestBuildSmallInputIsDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, b := range allBuilders {
		pts := []geom.Weighted{{P: geom.Point{1, 2}, W: 3}, {P: geom.Point{4, 5}, W: 6}}
		got := b.Build(rng, pts, 10)
		if len(got) != 2 {
			t.Fatalf("%s: want identity copy, got %d points", b.Name(), len(got))
		}
		got[0].P[0] = 999
		if pts[0].P[0] == 999 {
			t.Fatalf("%s: output aliases input", b.Name())
		}
	}
}

func TestBuildSizeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := mixture(rng, mixCenters, 2000, 2)
	for _, b := range allBuilders {
		for _, m := range []int{10, 50, 200} {
			cs := b.Build(rng, pts, m)
			if len(cs) > m {
				t.Errorf("%s: coreset size %d exceeds m=%d", b.Name(), len(cs), m)
			}
			if len(cs) == 0 {
				t.Errorf("%s: empty coreset from non-empty input", b.Name())
			}
		}
	}
}

func TestKMeansPPWeightPreservedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := mixture(rng, mixCenters, 1500, 2)
	// Give varied weights.
	for i := range pts {
		pts[i].W = 1 + rng.Float64()*5
	}
	want := geom.TotalWeight(pts)
	cs := KMeansPP{}.Build(rng, pts, 100)
	got := geom.TotalWeight(cs)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("total weight %v, want %v", got, want)
	}
}

func TestUniformWeightPreservedExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := mixture(rng, mixCenters, 1000, 2)
	want := geom.TotalWeight(pts)
	cs := Uniform{}.Build(rng, pts, 64)
	if got := geom.TotalWeight(cs); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("total weight %v, want %v", got, want)
	}
}

func TestSensitivityWeightNearlyPreserved(t *testing.T) {
	// Importance sampling preserves total weight in expectation; for a
	// decent sample size the realized total should be within ~20%.
	rng := rand.New(rand.NewSource(6))
	pts := mixture(rng, mixCenters, 2000, 2)
	want := geom.TotalWeight(pts)
	cs := Sensitivity{}.Build(rng, pts, 300)
	got := geom.TotalWeight(cs)
	if got < 0.7*want || got > 1.3*want {
		t.Fatalf("total weight %v too far from %v", got, want)
	}
}

func TestBuildDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := mixture(rng, mixCenters, 500, 2)
	before := geom.CloneWeighted(pts)
	for _, b := range allBuilders {
		_ = b.Build(rng, pts, 50)
		for i := range pts {
			if !pts[i].P.Equal(before[i].P) || pts[i].W != before[i].W {
				t.Fatalf("%s mutated its input", b.Name())
			}
		}
	}
}

// costRatio builds a coreset and returns max over random center sets Psi of
// |phi_Psi(C)/phi_Psi(P) - 1| — an empirical epsilon for Definition 1.
func costRatio(t *testing.T, b Builder, m int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(8))
	pts := mixture(rng, mixCenters, 3000, 3)
	cs := b.Build(rng, pts, m)
	worst := 0.0
	for trial := 0; trial < 30; trial++ {
		// Random plausible center sets: perturbed true centers and random
		// subsets of data points.
		var psi []geom.Point
		if trial%2 == 0 {
			for _, c := range mixCenters {
				p := c.Clone()
				p[0] += rng.NormFloat64() * 5
				p[1] += rng.NormFloat64() * 5
				psi = append(psi, p)
			}
		} else {
			for i := 0; i < 5; i++ {
				psi = append(psi, pts[rng.Intn(len(pts))].P.Clone())
			}
		}
		orig := kmeans.Cost(pts, psi)
		approx := kmeans.Cost(cs, psi)
		if orig <= 0 {
			continue
		}
		if r := math.Abs(approx/orig - 1); r > worst {
			worst = r
		}
	}
	return worst
}

// TestCoresetPreservesCost is the empirical check of Definition 1: for
// arbitrary center sets, coreset cost tracks the original cost within a
// small relative error.
func TestCoresetPreservesCost(t *testing.T) {
	if eps := costRatio(t, KMeansPP{}, 300); eps > 0.15 {
		t.Errorf("kmeans++-reduce: empirical eps %.3f > 0.15", eps)
	}
	if eps := costRatio(t, Sensitivity{}, 600); eps > 0.35 {
		t.Errorf("sensitivity: empirical eps %.3f > 0.35", eps)
	}
}

// TestInformedBeatsUniformOnSkew verifies the ablation premise: with a tiny
// far-away cluster, k-means++-reduce keeps it representable while uniform
// sampling frequently misses it entirely.
func TestInformedBeatsUniformOnSkew(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var pts []geom.Weighted
	for i := 0; i < 5000; i++ {
		pts = append(pts, geom.Weighted{P: geom.Point{rng.NormFloat64(), rng.NormFloat64()}, W: 1})
	}
	// 10 points very far away.
	for i := 0; i < 10; i++ {
		pts = append(pts, geom.Weighted{P: geom.Point{1000 + rng.NormFloat64(), 1000 + rng.NormFloat64()}, W: 1})
	}
	psi := []geom.Point{{0, 0}, {1000, 1000}}
	orig := kmeans.Cost(pts, psi)

	informedErr, uniformErr := 0.0, 0.0
	const trials = 10
	for i := 0; i < trials; i++ {
		ci := KMeansPP{}.Build(rng, pts, 100)
		cu := Uniform{}.Build(rng, pts, 100)
		informedErr += math.Abs(kmeans.Cost(ci, psi) - orig)
		uniformErr += math.Abs(kmeans.Cost(cu, psi) - orig)
	}
	if informedErr >= uniformErr {
		t.Fatalf("kmeans++-reduce error %v not better than uniform %v", informedErr, uniformErr)
	}
}

func TestMergeBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := mixture(rng, mixCenters, 300, 2)
	b := mixture(rng, mixCenters, 300, 2)
	cs := MergeBuild(KMeansPP{}, rng, 80, a, b)
	if len(cs) > 80 {
		t.Fatalf("merged coreset too large: %d", len(cs))
	}
	want := geom.TotalWeight(a) + geom.TotalWeight(b)
	if got := geom.TotalWeight(cs); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("merge lost weight: %v vs %v", got, want)
	}
}

func TestMergeBuildEmptySets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	if got := MergeBuild(KMeansPP{}, rng, 10); got != nil {
		t.Fatalf("no sets should give nil, got %v", got)
	}
	a := []geom.Weighted{{P: geom.Point{1}, W: 2}}
	cs := MergeBuild(KMeansPP{}, rng, 10, a, nil, nil)
	if len(cs) != 1 || cs[0].W != 2 {
		t.Fatalf("MergeBuild with empties = %v", cs)
	}
}

func TestSearchCDF(t *testing.T) {
	cdf := []float64{1, 3, 6, 10}
	cases := []struct {
		target float64
		want   int
	}{{0, 0}, {1, 0}, {1.5, 1}, {3, 1}, {5.9, 2}, {9.99, 3}, {10, 3}}
	for _, c := range cases {
		if got := searchCDF(cdf, c.target); got != c.want {
			t.Errorf("searchCDF(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestCompactZeroWeight(t *testing.T) {
	in := []geom.Weighted{
		{P: geom.Point{1}, W: 0},
		{P: geom.Point{2}, W: 5},
		{P: geom.Point{3}, W: 0},
	}
	out := compactZeroWeight(in)
	if len(out) != 1 || out[0].W != 5 {
		t.Fatalf("compactZeroWeight = %v", out)
	}
}
