// Package coreset implements k-means coreset construction — the "reduce"
// step of the merge-and-reduce framework every streaming algorithm in this
// repository is built on.
//
// A (k, eps)-coreset of a weighted point set P is a small weighted set C
// such that for every set Psi of k centers,
//
//	(1-eps)*phi_Psi(P) <= phi_Psi(C) <= (1+eps)*phi_Psi(P)
//
// (Definition 1 in the paper). Two constructions are provided:
//
//   - KMeansPP: select m points by k-means++ seeding and move each input
//     point's weight to its nearest selected point. This is the construction
//     streamkm++ (Ackermann et al.) and the paper's own experiments use
//     (Section 5.2: "The k-means++ algorithm ... is used to derive coresets").
//   - Sensitivity: Feldman–Langberg style importance sampling against a
//     bicriteria k-means++ solution, the theoretical O(k/eps^2)
//     construction of Theorem 2 ([16]).
//
// Both preserve total weight exactly (KMeansPP) or in expectation
// (Sensitivity), and both leave the input untouched.
package coreset

import (
	"math/rand"

	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// Builder constructs a weighted coreset of size at most m from a weighted
// point set. Implementations must not mutate the input and must return
// points safe to retain (no aliasing of caller storage that the caller may
// later mutate).
type Builder interface {
	// Build summarizes pts into at most m weighted points.
	Build(rng *rand.Rand, pts []geom.Weighted, m int) []geom.Weighted
	// Name identifies the construction in reports and benchmarks.
	Name() string
}

// KMeansPP is the k-means++-reduce coreset builder used by streamkm++ and by
// the paper's experiments. Build runs one k-means++ seeding pass with m
// centers over the input and accumulates each input point's weight onto its
// nearest selected point.
type KMeansPP struct{}

// Name implements Builder.
func (KMeansPP) Name() string { return "kmeans++-reduce" }

// Build implements Builder. Total weight is preserved exactly.
func (KMeansPP) Build(rng *rand.Rand, pts []geom.Weighted, m int) []geom.Weighted {
	if len(pts) == 0 || m <= 0 {
		return nil
	}
	if len(pts) <= m {
		return geom.CloneWeighted(pts)
	}
	centers := kmeans.SeedPP(rng, pts, m)
	out := make([]geom.Weighted, len(centers))
	for i, c := range centers {
		out[i] = geom.Weighted{P: c, W: 0}
	}
	// The assignment pass is the construction's hot loop (n points × m
	// centers); scan the centers through the flat-array kernel.
	fc := geom.FlattenCenters(centers)
	for _, wp := range pts {
		_, idx := fc.Nearest(wp.P)
		out[idx].W += wp.W
	}
	return compactZeroWeight(out)
}

// compactZeroWeight drops coreset points that attracted no weight (possible
// when seeding picks duplicate coordinates).
func compactZeroWeight(pts []geom.Weighted) []geom.Weighted {
	out := pts[:0]
	for _, wp := range pts {
		if wp.W > 0 {
			out = append(out, wp)
		}
	}
	return out
}

// MergeBuild unions several weighted point sets and reduces the union to a
// coreset of size at most m. This is the coreset-tree merge step
// (Observation 1 + reduce): the union of coresets of disjoint sets is a
// coreset of the union, and reducing it adds one coreset level.
func MergeBuild(b Builder, rng *rand.Rand, m int, sets ...[]geom.Weighted) []geom.Weighted {
	var n int
	for _, s := range sets {
		n += len(s)
	}
	union := make([]geom.Weighted, 0, n)
	for _, s := range sets {
		union = append(union, s...)
	}
	return b.Build(rng, union, m)
}
