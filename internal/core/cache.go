package core

import (
	"sort"

	"streamkm/internal/basen"
	"streamkm/internal/coretree"
)

// coresetCache is the coreset cache of Section 4.1: it stores coresets
// computed at previous queries, keyed by the right endpoint of their span
// (each cached bucket summarizes base buckets [1, key]). After a query at
// bucket count N the cache retains exactly the keys in
// prefixsum(N, r) ∪ {N} (Algorithm 3, line 19), so by Fact 2 the major
// prefix needed by the next query is always present when queries arrive at
// every bucket (Lemma 4).
type coresetCache struct {
	entries map[int]coretree.Bucket
}

func newCoresetCache() *coresetCache {
	return &coresetCache{entries: make(map[int]coretree.Bucket)}
}

// get returns the cached coreset spanning [1, key], if present.
func (c *coresetCache) get(key int) (coretree.Bucket, bool) {
	b, ok := c.entries[key]
	return b, ok
}

// put stores a coreset spanning [1, key].
func (c *coresetCache) put(key int, b coretree.Bucket) { c.entries[key] = b }

// evictTo removes every entry whose key is not in prefixsum(n, r) ∪ {n}.
func (c *coresetCache) evictTo(n, r int) {
	keep := make(map[int]bool, 8)
	keep[n] = true
	for _, p := range basen.PrefixSums(n, r) {
		keep[p] = true
	}
	for k := range c.entries {
		if !keep[k] {
			delete(c.entries, k)
		}
	}
}

// len returns the number of cached coresets.
func (c *coresetCache) len() int { return len(c.entries) }

// pointsStored returns the total number of points held by the cache.
func (c *coresetCache) pointsStored() int {
	var s int
	for _, b := range c.entries {
		s += len(b.Points)
	}
	return s
}

// keys returns the cached keys in ascending order (test hook).
func (c *coresetCache) keys() []int {
	out := make([]int, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
