// Package core implements the paper's primary contribution: the stream
// clustering driver (Algorithm 1) and the three fast-query algorithms built
// on coreset caching — CC (Algorithm 3), RCC (Algorithms 4–6) and OnlineCC
// (Algorithm 7) — plus the prior-art CT baseline they are compared against.
package core

import (
	"math/rand"

	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// Structure is the clustering data structure D plugged into the driver
// (Algorithm 1). CT, CC and RCC implement it.
type Structure interface {
	// Update inserts one full base bucket of m points.
	Update(bucket []geom.Weighted)
	// Coreset returns a weighted summary of every full bucket inserted so
	// far. The driver unions it with the partial bucket before running
	// k-means++.
	Coreset() []geom.Weighted
	// PointsStored reports the structure's memory footprint in points.
	PointsStored() int
	// Name identifies the structure in reports.
	Name() string
}

// Clusterer is the façade shared by every streaming algorithm in this
// repository: feed points one at a time, ask for k centers at any moment.
// Implementations are not safe for concurrent use.
type Clusterer interface {
	// Add observes one stream point with weight 1.
	Add(p geom.Point)
	// Centers returns k cluster centers for everything observed so far.
	Centers() []geom.Point
	// PointsStored reports total memory in stored points (Table 4 metric).
	PointsStored() int
	// Name identifies the algorithm in reports.
	Name() string
}

// Driver batches arriving points into base buckets of size m and forwards
// full buckets to the underlying Structure (Algorithm 1,
// StreamCluster-Update). At query time it runs k-means++ over the
// structure's coreset union plus the current partial bucket
// (StreamCluster-Query).
type Driver struct {
	s        Structure
	k        int
	m        int
	rng      *rand.Rand
	queryOpt kmeans.Options
	partial  []geom.Weighted
	count    int64 // total points observed
}

// NewDriver wraps s with the batching driver. k is the number of centers
// returned at query time, m the base bucket size, queryOpt the k-means++
// configuration used at query time.
func NewDriver(s Structure, k, m int, rng *rand.Rand, queryOpt kmeans.Options) *Driver {
	if k < 1 {
		panic("core: k < 1")
	}
	if m < 1 {
		panic("core: bucket size m < 1")
	}
	return &Driver{s: s, k: k, m: m, rng: rng, queryOpt: queryOpt,
		partial: make([]geom.Weighted, 0, m)}
}

// Add implements Clusterer.
func (d *Driver) Add(p geom.Point) { d.AddWeighted(geom.Weighted{P: p, W: 1}) }

// AddWeighted observes one weighted stream point.
func (d *Driver) AddWeighted(wp geom.Weighted) {
	d.count++
	d.partial = append(d.partial, wp)
	if len(d.partial) == d.m {
		d.s.Update(d.partial)
		d.partial = make([]geom.Weighted, 0, d.m)
	}
}

// Centers implements Clusterer: k-means++ on coreset ∪ partial bucket.
func (d *Driver) Centers() []geom.Point {
	cs := d.s.Coreset()
	union := make([]geom.Weighted, 0, len(cs)+len(d.partial))
	union = append(union, cs...)
	union = append(union, d.partial...)
	centers, _ := kmeans.Run(d.rng, union, d.k, d.queryOpt)
	return centers
}

// CoresetUnion returns the structure coreset plus partial bucket without
// running k-means++ — the raw summary a downstream consumer (e.g. the
// parallel merger or the persistence layer) would want.
func (d *Driver) CoresetUnion() []geom.Weighted {
	cs := d.s.Coreset()
	union := make([]geom.Weighted, 0, len(cs)+len(d.partial))
	union = append(union, cs...)
	union = append(union, d.partial...)
	return union
}

// PointsStored implements Clusterer: structure memory plus partial bucket.
func (d *Driver) PointsStored() int { return d.s.PointsStored() + len(d.partial) }

// Name implements Clusterer.
func (d *Driver) Name() string { return d.s.Name() }

// Count returns the number of points observed so far.
func (d *Driver) Count() int64 { return d.count }

// K returns the configured number of clusters.
func (d *Driver) K() int { return d.k }

// M returns the configured base bucket size.
func (d *Driver) M() int { return d.m }

// Structure exposes the wrapped structure (for tests and persistence).
func (d *Driver) Structure() Structure { return d.s }

// Partial returns the current partial bucket (aliased; do not modify).
func (d *Driver) Partial() []geom.Weighted { return d.partial }

// ScalePartialWeights multiplies the partial bucket's weights by factor
// (forward-decay epoch support; see the decay package).
func (d *Driver) ScalePartialWeights(factor float64) {
	for i := range d.partial {
		d.partial[i].W *= factor
	}
}
