package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newTestOnlineCC(k, m int, alpha float64, seed int64) *OnlineCC {
	rng := rand.New(rand.NewSource(seed))
	return NewOnlineCC(k, m, 2, alpha, 0.1, coreset.KMeansPP{}, rng, kmeans.FastOptions())
}

// drawMixture emits points from a 4-cluster mixture.
func drawMixture(rng *rand.Rand, n int) []geom.Point {
	centers := []geom.Point{{0, 0}, {30, 0}, {0, 30}, {30, 30}}
	out := make([]geom.Point, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = geom.Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

func TestOnlineCCValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewOnlineCC(3, 10, 2, 1.0, 0.1, coreset.KMeansPP{}, rng, kmeans.FastOptions()) },
		func() { NewOnlineCC(3, 10, 2, 1.5, 0, coreset.KMeansPP{}, rng, kmeans.FastOptions()) },
		func() { NewOnlineCC(3, 10, 2, 1.5, 1, coreset.KMeansPP{}, rng, kmeans.FastOptions()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOnlineCCBeforeBootstrap(t *testing.T) {
	o := newTestOnlineCC(4, 20, 1.2, 2)
	rng := rand.New(rand.NewSource(3))
	for _, p := range drawMixture(rng, 5) { // fewer than 2k = 8 points
		o.Add(p)
	}
	centers := o.Centers()
	if len(centers) == 0 || len(centers) > 4 {
		t.Fatalf("pre-bootstrap centers = %d", len(centers))
	}
}

func TestOnlineCCReturnsKCenters(t *testing.T) {
	o := newTestOnlineCC(4, 20, 1.2, 4)
	rng := rand.New(rand.NewSource(5))
	for _, p := range drawMixture(rng, 2000) {
		o.Add(p)
	}
	if got := len(o.Centers()); got != 4 {
		t.Fatalf("got %d centers, want 4", got)
	}
}

// TestOnlineCCLemma10 verifies that phiNow upper-bounds the true clustering
// cost of the live centers on everything observed (Lemma 10).
func TestOnlineCCLemma10(t *testing.T) {
	o := newTestOnlineCC(4, 25, 2.0, 6)
	rng := rand.New(rand.NewSource(7))
	var seen []geom.Weighted
	for i, p := range drawMixture(rng, 3000) {
		o.Add(p)
		seen = append(seen, geom.Weighted{P: p, W: 1})
		if i > 100 && i%250 == 0 {
			truth := kmeans.Cost(seen, o.LiveCenters())
			if bound := o.PhiNow(); truth > bound*(1+1e-9) {
				t.Fatalf("after %d points: true cost %v exceeds phiNow %v", i+1, truth, bound)
			}
		}
	}
}

// TestOnlineCCFastPathDominates: on a stationary stream with a loose
// threshold, almost all queries take the O(1) path.
func TestOnlineCCFastPathDominates(t *testing.T) {
	o := newTestOnlineCC(4, 25, 4.0, 8)
	rng := rand.New(rand.NewSource(9))
	for i, p := range drawMixture(rng, 5000) {
		o.Add(p)
		if i%100 == 0 {
			_ = o.Centers()
		}
	}
	st := o.Stats()
	if st.FastQueries < st.Fallbacks*5 {
		t.Fatalf("fast=%d fallbacks=%d; fast path should dominate on stationary data",
			st.FastQueries, st.Fallbacks)
	}
}

// TestOnlineCCFallsBackOnDrift: an abrupt distribution shift must push
// phiNow past alpha*phiPrev and force at least one CC fallback.
func TestOnlineCCFallsBackOnDrift(t *testing.T) {
	o := newTestOnlineCC(4, 25, 1.2, 10)
	rng := rand.New(rand.NewSource(11))
	for _, p := range drawMixture(rng, 1500) {
		o.Add(p)
	}
	_ = o.Centers()
	pre := o.Stats().Fallbacks
	// Shift: all mass teleports far away.
	for i := 0; i < 1500; i++ {
		o.Add(geom.Point{500 + rng.NormFloat64(), 500 + rng.NormFloat64()})
	}
	_ = o.Centers()
	if o.Stats().Fallbacks <= pre {
		t.Fatal("expected a fallback after abrupt drift")
	}
}

// TestOnlineCCQualityAfterDrift: after drift plus a query, the centers
// should cover the new region (the CC fallback re-clusters globally).
func TestOnlineCCQualityAfterDrift(t *testing.T) {
	o := newTestOnlineCC(2, 25, 1.2, 12)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 1000; i++ {
		o.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 3000; i++ {
		o.Add(geom.Point{200 + rng.NormFloat64(), 200 + rng.NormFloat64()})
	}
	centers := o.Centers()
	d, _ := geom.MinSqDist(geom.Point{200, 200}, centers)
	if d > 100 {
		t.Fatalf("no center near the drifted mass: nearest sqdist %v, centers %v", d, centers)
	}
}

// TestOnlineCCCentersAreCopies: mutating returned centers must not corrupt
// the live state.
func TestOnlineCCCentersAreCopies(t *testing.T) {
	o := newTestOnlineCC(3, 20, 1.5, 14)
	rng := rand.New(rand.NewSource(15))
	for _, p := range drawMixture(rng, 1000) {
		o.Add(p)
	}
	got := o.Centers()
	for _, c := range got {
		for j := range c {
			c[j] = 1e12
		}
	}
	for _, c := range o.LiveCenters() {
		if c[0] == 1e12 {
			t.Fatal("Centers() aliases live state")
		}
	}
}

func TestOnlineCCPointsStored(t *testing.T) {
	o := newTestOnlineCC(3, 20, 1.5, 16)
	rng := rand.New(rand.NewSource(17))
	for _, p := range drawMixture(rng, 500) {
		o.Add(p)
	}
	// Must include CC storage plus live centers plus partial bucket.
	min := o.CC().PointsStored()
	if o.PointsStored() <= min {
		t.Fatalf("PointsStored %d should exceed embedded CC's %d", o.PointsStored(), min)
	}
	if o.Name() != "OnlineCC" {
		t.Fatalf("Name = %q", o.Name())
	}
}

// TestOnlineCCPhiNowMonotoneBetweenFallbacks: phiNow only grows while the
// fast path runs (it accumulates squared distances), and resets at
// fallback.
func TestOnlineCCPhiNowMonotone(t *testing.T) {
	o := newTestOnlineCC(4, 25, 100.0, 18) // huge alpha: never fall back
	rng := rand.New(rand.NewSource(19))
	pts := drawMixture(rng, 2000)
	var last float64
	for i, p := range pts {
		o.Add(p)
		if i > 50 {
			if now := o.PhiNow(); now+1e-12 < last {
				t.Fatalf("phiNow decreased without fallback: %v -> %v", last, now)
			} else {
				last = now
			}
		}
	}
	if o.Stats().Fallbacks != 0 {
		t.Fatal("alpha=100 should never fall back on stationary data")
	}
}

func TestOnlineCCCostComparableToBatch(t *testing.T) {
	// End-to-end sanity: OnlineCC's final centers should be within a small
	// factor of batch k-means++ on a well-separated mixture.
	o := newTestOnlineCC(4, 40, 1.2, 20)
	rng := rand.New(rand.NewSource(21))
	pts := drawMixture(rng, 4000)
	var all []geom.Weighted
	for _, p := range pts {
		o.Add(p)
		all = append(all, geom.Weighted{P: p, W: 1})
	}
	stream := kmeans.Cost(all, o.Centers())
	batchCenters, _ := kmeans.Run(rand.New(rand.NewSource(22)), all, 4, kmeans.AccuracyOptions())
	batch := kmeans.Cost(all, batchCenters)
	if stream > 5*batch+1e-9 {
		t.Fatalf("OnlineCC cost %v much worse than batch %v", stream, batch)
	}
	if math.IsNaN(stream) || math.IsInf(stream, 0) {
		t.Fatalf("invalid stream cost %v", stream)
	}
}
