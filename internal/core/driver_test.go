package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newTestDriver(s Structure, k, m int, seed int64) *Driver {
	rng := rand.New(rand.NewSource(seed))
	return NewDriver(s, k, m, rng, kmeans.FastOptions())
}

func TestDriverValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ct := NewCT(2, 10, coreset.KMeansPP{}, rng)
	for _, f := range []func(){
		func() { NewDriver(ct, 0, 10, rng, kmeans.FastOptions()) },
		func() { NewDriver(ct, 3, 0, rng, kmeans.FastOptions()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDriverBatchesIntoBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ct := NewCT(2, 10, coreset.KMeansPP{}, rng)
	d := newTestDriver(ct, 3, 10, 3)
	for i := 0; i < 25; i++ {
		d.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	if ct.Tree().N() != 2 {
		t.Fatalf("tree has %d buckets, want 2 (25 points / m=10)", ct.Tree().N())
	}
	if len(d.Partial()) != 5 {
		t.Fatalf("partial bucket has %d points, want 5", len(d.Partial()))
	}
	if d.Count() != 25 {
		t.Fatalf("Count = %d", d.Count())
	}
}

// TestDriverCoresetUnionWeight: structure coreset + partial bucket must
// carry the weight of every point observed, including the partial tail.
func TestDriverCoresetUnionWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cc := NewCC(2, 10, coreset.KMeansPP{}, rng)
	d := newTestDriver(cc, 3, 10, 5)
	const n = 157 // deliberately not a multiple of m
	for i := 0; i < n; i++ {
		d.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	got := geom.TotalWeight(d.CoresetUnion())
	if math.Abs(got-float64(n)) > 1e-6*float64(n) {
		t.Fatalf("coreset union weight %v, want %v", got, float64(n))
	}
}

func TestDriverCentersCount(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ct := NewCT(2, 20, coreset.KMeansPP{}, rng)
	d := newTestDriver(ct, 4, 20, 7)
	centers := []geom.Point{{0, 0}, {30, 0}, {0, 30}, {30, 30}}
	for i := 0; i < 2000; i++ {
		c := centers[rng.Intn(4)]
		d.Add(geom.Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()})
	}
	got := d.Centers()
	if len(got) != 4 {
		t.Fatalf("got %d centers, want 4", len(got))
	}
	// Each true center should have a learned center nearby.
	for _, c := range centers {
		dd, _ := geom.MinSqDist(c, got)
		if dd > 25 {
			t.Fatalf("no center near %v (sqdist %v); centers %v", c, dd, got)
		}
	}
}

func TestDriverPointsStoredIncludesPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ct := NewCT(2, 10, coreset.KMeansPP{}, rng)
	d := newTestDriver(ct, 3, 10, 9)
	for i := 0; i < 15; i++ {
		d.Add(geom.Point{rng.NormFloat64()})
	}
	if got := d.PointsStored(); got != ct.PointsStored()+5 {
		t.Fatalf("PointsStored = %d, want structure+5", got)
	}
}

func TestDriverNameDelegates(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, s := range []Structure{
		NewCT(2, 5, coreset.KMeansPP{}, rng),
		NewCC(2, 5, coreset.KMeansPP{}, rng),
		NewRCC(1, 5, coreset.KMeansPP{}, rng),
	} {
		d := newTestDriver(s, 2, 5, 11)
		if d.Name() != s.Name() {
			t.Fatalf("driver name %q != structure name %q", d.Name(), s.Name())
		}
	}
	rngB := rand.New(rand.NewSource(12))
	d := NewDriver(NewCT(2, 5, coreset.KMeansPP{}, rngB), 2, 5, rngB, kmeans.FastOptions())
	if d.K() != 2 || d.M() != 5 {
		t.Fatalf("K/M accessors wrong: %d %d", d.K(), d.M())
	}
	if d.Structure() == nil {
		t.Fatal("Structure accessor nil")
	}
}

// TestStructuresAgreeOnWeight: CT, CC and RCC all summarize the same stream
// with the same total weight at arbitrary points in time.
func TestStructuresAgreeOnWeight(t *testing.T) {
	mk := func() []Structure {
		return []Structure{
			NewCT(2, 8, coreset.KMeansPP{}, rand.New(rand.NewSource(20))),
			NewCC(2, 8, coreset.KMeansPP{}, rand.New(rand.NewSource(21))),
			NewRCC(2, 8, coreset.KMeansPP{}, rand.New(rand.NewSource(22))),
		}
	}
	structures := mk()
	rng := rand.New(rand.NewSource(23))
	for n := 1; n <= 70; n++ {
		b := baseBucket(rng, 8)
		for _, s := range structures {
			s.Update(geom.CloneWeighted(b))
		}
		if n%13 == 0 {
			want := float64(n * 8)
			for _, s := range structures {
				got := geom.TotalWeight(s.Coreset())
				if math.Abs(got-want) > 1e-6*want {
					t.Fatalf("%s at N=%d: weight %v, want %v", s.Name(), n, got, want)
				}
			}
		}
	}
}

// TestEndToEndQualityAllAlgorithms: every coreset algorithm should land
// within a modest factor of batch k-means++ on separable data.
func TestEndToEndQualityAllAlgorithms(t *testing.T) {
	trueCenters := []geom.Point{{0, 0}, {50, 0}, {0, 50}, {50, 50}}
	gen := func(rng *rand.Rand, n int) []geom.Point {
		out := make([]geom.Point, n)
		for i := range out {
			c := trueCenters[rng.Intn(len(trueCenters))]
			out[i] = geom.Point{c[0] + rng.NormFloat64()*2, c[1] + rng.NormFloat64()*2}
		}
		return out
	}
	dataRng := rand.New(rand.NewSource(30))
	pts := gen(dataRng, 5000)
	all := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		all[i] = geom.Weighted{P: p, W: 1}
	}
	batchCenters, _ := kmeans.Run(rand.New(rand.NewSource(31)), all, 4, kmeans.AccuracyOptions())
	batch := kmeans.Cost(all, batchCenters)

	mkClusterers := func() []Clusterer {
		const m = 80
		return []Clusterer{
			newTestDriver(NewCT(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(41))), 4, m, 51),
			newTestDriver(NewCC(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(42))), 4, m, 52),
			newTestDriver(NewRCC(2, m, coreset.KMeansPP{}, rand.New(rand.NewSource(43))), 4, m, 53),
		}
	}
	for _, c := range mkClusterers() {
		for _, p := range pts {
			c.Add(p)
		}
		cost := kmeans.Cost(all, c.Centers())
		if cost > 5*batch {
			t.Errorf("%s: cost %v vs batch %v (ratio %.2f)", c.Name(), cost, batch, cost/batch)
		}
	}
}
