package core

import (
	"math/rand"

	"streamkm/internal/coreset"
	"streamkm/internal/coretree"
	"streamkm/internal/geom"
)

// CT adapts the r-way merging coreset tree (Section 3.2) to the Structure
// interface. With r = 2 this is streamkm++, the prior state of the art the
// paper improves upon: queries must union every active bucket across all
// O(log N / log r) levels.
type CT struct {
	tree *coretree.Tree
}

// NewCT returns a coreset-tree structure with merge degree r and coreset
// size m.
func NewCT(r, m int, b coreset.Builder, rng *rand.Rand) *CT {
	return &CT{tree: coretree.New(r, m, b, rng)}
}

// Update implements Structure (CT-Update).
func (c *CT) Update(bucket []geom.Weighted) { c.tree.Update(bucket) }

// Coreset implements Structure (CT-Coreset): the union of all active
// buckets.
func (c *CT) Coreset() []geom.Weighted { return c.tree.Coreset() }

// PointsStored implements Structure.
func (c *CT) PointsStored() int { return c.tree.PointsStored() }

// Name implements Structure.
func (c *CT) Name() string { return "CT" }

// ScaleWeights multiplies every stored weight by factor (forward-decay
// epoch support).
func (c *CT) ScaleWeights(factor float64) { c.tree.ScaleWeights(factor) }

// Tree exposes the underlying coreset tree (tests, persistence).
func (c *CT) Tree() *coretree.Tree { return c.tree }
