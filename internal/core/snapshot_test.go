package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// TestCCSnapshotRestoreDirect round-trips CC state at the structure level
// and confirms the restored instance continues correctly: same cache keys,
// same stats, weight conservation on further updates.
func TestCCSnapshotRestoreDirect(t *testing.T) {
	cc, rng := newTestCC(3, 8, 41)
	for n := 1; n <= 47; n++ {
		cc.Update(baseBucket(rng, 8))
		_ = cc.Coreset()
	}
	snap := cc.Snapshot()

	fresh := NewCC(3, 8, coreset.KMeansPP{}, rand.New(rand.NewSource(99)))
	fresh.Restore(snap)
	if got, want := fresh.CacheKeys(), cc.CacheKeys(); len(got) != len(want) {
		t.Fatalf("cache keys %v != %v", got, want)
	}
	if fresh.Stats() != cc.Stats() {
		t.Fatalf("stats %+v != %+v", fresh.Stats(), cc.Stats())
	}
	if fresh.PointsStored() != cc.PointsStored() {
		t.Fatalf("points stored %d != %d", fresh.PointsStored(), cc.PointsStored())
	}
	// Restored structure keeps consuming the stream correctly.
	for n := 48; n <= 60; n++ {
		fresh.Update(baseBucket(rng, 8))
	}
	got := geom.TotalWeight(fresh.Coreset())
	want := float64(60 * 8)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("weight after restore+updates: %v, want %v", got, want)
	}
}

// TestRCCSnapshotRestoreDirect does the same for the recursive structure,
// including its nested children and caches.
func TestRCCSnapshotRestoreDirect(t *testing.T) {
	rcc, rng := newTestRCC(2, 6, 43)
	for n := 1; n <= 75; n++ {
		rcc.Update(baseBucket(rng, 6))
		if n%3 == 0 {
			_ = rcc.Coreset()
		}
	}
	snap := rcc.Snapshot()
	fresh := NewRCC(2, 6, coreset.KMeansPP{}, rand.New(rand.NewSource(7)))
	fresh.Restore(snap)
	if fresh.PointsStored() != rcc.PointsStored() {
		t.Fatalf("points stored %d != %d", fresh.PointsStored(), rcc.PointsStored())
	}
	for n := 76; n <= 90; n++ {
		fresh.Update(baseBucket(rng, 6))
	}
	got := geom.TotalWeight(fresh.Coreset())
	want := float64(90 * 6)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("weight after restore+updates: %v, want %v", got, want)
	}
	b := fresh.CoresetBucket()
	if b.Start != 1 || b.End != 90 {
		t.Fatalf("span %s after restore", b.Span())
	}
}

// TestOnlineCCAddWeighted verifies the weighted sequential step: a weight-w
// point moves the center exactly like w unit points at the same spot.
func TestOnlineCCAddWeighted(t *testing.T) {
	mk := func() *OnlineCC {
		o := NewOnlineCC(1, 50, 2, 2.0, 0.1, coreset.KMeansPP{},
			rand.New(rand.NewSource(1)), kmeans.FastOptions())
		// Bootstrap with two fixed points (initSize = 2k = 2).
		o.Add(geom.Point{0, 0})
		o.Add(geom.Point{2, 0})
		return o
	}
	a := mk()
	a.AddWeighted(geom.Weighted{P: geom.Point{10, 0}, W: 4})
	b := mk()
	for i := 0; i < 4; i++ {
		b.Add(geom.Point{10, 0})
	}
	ca, cb := a.LiveCenters(), b.LiveCenters()
	for i := range ca {
		for j := range ca[i] {
			if math.Abs(ca[i][j]-cb[i][j]) > 1e-9 {
				t.Fatalf("weighted step diverges: %v vs %v", ca, cb)
			}
		}
	}
	// phiNow: weighted point charges w*d^2 once; four unit points charge a
	// decreasing series as the center moves — so the weighted estimate must
	// dominate (it is the more conservative upper bound).
	if a.PhiNow() < b.PhiNow()-1e-9 {
		t.Fatalf("weighted phiNow %v < unit-stream %v", a.PhiNow(), b.PhiNow())
	}
}

// TestCTStructureBasics exercises the CT adapter accessors not hit
// elsewhere.
func TestCTStructureBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ct := NewCT(2, 5, coreset.KMeansPP{}, rng)
	if ct.Name() != "CT" {
		t.Fatalf("Name = %q", ct.Name())
	}
	ct.Update(baseBucket(rng, 5))
	if ct.Tree().N() != 1 || ct.PointsStored() != 5 || len(ct.Coreset()) != 5 {
		t.Fatal("CT adapter bookkeeping wrong")
	}
	ct.ScaleWeights(0.5)
	if got := geom.TotalWeight(ct.Coreset()); math.Abs(got-2.5) > 1e-9 {
		t.Fatalf("ScaleWeights: weight %v, want 2.5", got)
	}
}

// TestCCScaleWeightsIncludesCache verifies forward-decay epoch scaling hits
// both the tree and the cached coresets.
func TestCCScaleWeightsIncludesCache(t *testing.T) {
	cc, rng := newTestCC(2, 6, 44)
	for n := 1; n <= 12; n++ {
		cc.Update(baseBucket(rng, 6))
		_ = cc.Coreset()
	}
	before := geom.TotalWeight(cc.Coreset())
	cc.ScaleWeights(0.25)
	after := geom.TotalWeight(cc.Coreset()) // exact cache hit: same bucket, scaled
	if math.Abs(after-before*0.25) > 1e-9*before {
		t.Fatalf("cache not scaled: %v -> %v", before, after)
	}
}

// TestRCCScaleWeightsNoDoubleScaling: shared buckets between lists and
// nested structures must be scaled exactly once.
func TestRCCScaleWeightsNoDoubleScaling(t *testing.T) {
	rcc, rng := newTestRCC(2, 6, 45)
	for n := 1; n <= 40; n++ {
		rcc.Update(baseBucket(rng, 6))
		if n%5 == 0 {
			_ = rcc.Coreset()
		}
	}
	want := geom.TotalWeight(rcc.Coreset()) * 0.5
	rcc.ScaleWeights(0.5)
	// A fresh query (new bucket count unchanged -> exact cache hit returns
	// the scaled cached bucket).
	got := geom.TotalWeight(rcc.Coreset())
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("scaled weight %v, want %v (double or missed scaling)", got, want)
	}
}

// TestOnlineCCPointsStoredBeforeBootstrap covers the init-buffer branch.
func TestOnlineCCPointsStoredBeforeBootstrap(t *testing.T) {
	o := NewOnlineCC(5, 100, 2, 1.5, 0.1, coreset.KMeansPP{},
		rand.New(rand.NewSource(3)), kmeans.FastOptions())
	o.Add(geom.Point{1, 1})
	o.Add(geom.Point{2, 2})
	// 2 points live in both the partial bucket and the init buffer.
	if got := o.PointsStored(); got != 4 {
		t.Fatalf("PointsStored = %d, want 4 (partial + initBuf)", got)
	}
}
