package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
)

func newTestRCC(order, m int, seed int64) (*RCC, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return NewRCC(order, m, coreset.KMeansPP{}, rng), rng
}

func TestDefaultRCCDegrees(t *testing.T) {
	got := DefaultRCCDegrees(3)
	want := []int{2, 4, 16, 256}
	if len(got) != len(want) {
		t.Fatalf("degrees = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degrees = %v, want %v", got, want)
		}
	}
	// Cap keeps very deep structures finite.
	deep := DefaultRCCDegrees(6)
	if deep[6] != 1<<16 {
		t.Fatalf("cap failed: %v", deep)
	}
}

func TestRCCValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range []func(){
		func() { NewRCCWithDegrees(nil, 5, coreset.KMeansPP{}, rng) },
		func() { NewRCCWithDegrees([]int{2, 1}, 5, coreset.KMeansPP{}, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRCCEmptyQuery(t *testing.T) {
	rcc, _ := newTestRCC(2, 8, 2)
	if got := rcc.Coreset(); got != nil {
		t.Fatalf("empty RCC coreset = %v", got)
	}
}

// TestRCCWeightPreservation: queries at every bucket return the full stream
// weight for a deep structure.
func TestRCCWeightPreservation(t *testing.T) {
	for _, order := range []int{0, 1, 2} {
		rcc, rng := newTestRCC(order, 8, int64(order+3))
		for n := 1; n <= 120; n++ {
			rcc.Update(baseBucket(rng, 8))
			got := geom.TotalWeight(rcc.Coreset())
			want := float64(n * 8)
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("order=%d N=%d: weight %v, want %v", order, n, got, want)
			}
		}
	}
}

// TestRCCWeightPreservationSparseQueries: the fallback path (recursive
// summaries of every level) must also preserve weight.
func TestRCCWeightPreservationSparseQueries(t *testing.T) {
	rcc, rng := newTestRCC(2, 8, 11)
	for n := 1; n <= 150; n++ {
		rcc.Update(baseBucket(rng, 8))
		if n%23 == 0 || n == 150 {
			got := geom.TotalWeight(rcc.Coreset())
			want := float64(n * 8)
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("N=%d: weight %v, want %v", n, got, want)
			}
		}
	}
}

// TestRCCSpanCoversStream: the returned bucket must span [1, N] in base
// bucket coordinates even through the recursion.
func TestRCCSpanCoversStream(t *testing.T) {
	rcc, rng := newTestRCC(2, 6, 12)
	for n := 1; n <= 130; n++ {
		rcc.Update(baseBucket(rng, 6))
		b := rcc.CoresetBucket()
		if b.Start != 1 || b.End != n {
			t.Fatalf("N=%d: span %s, want [1,%d]", n, b.Span(), n)
		}
	}
}

// TestRCCLevelStaysLow: RCC exists to keep coreset levels O(1)-ish. With
// order 2 (degrees 2,4,16) and a couple hundred buckets, the level must
// stay well below CT's log2(N) ≈ 8.
func TestRCCLevelStaysLow(t *testing.T) {
	rcc, rng := newTestRCC(2, 6, 13)
	worst := 0
	for n := 1; n <= 256; n++ {
		rcc.Update(baseBucket(rng, 6))
		if b := rcc.CoresetBucket(); b.Level > worst {
			worst = b.Level
		}
	}
	if worst > 6 {
		t.Fatalf("RCC coreset level reached %d; expected O(1)-ish (< 7)", worst)
	}
}

// TestRCCHigherOrderLowerLevel: increasing the nesting order (larger merge
// degrees) should not increase the final coreset level.
func TestRCCHigherOrderLowerLevel(t *testing.T) {
	levels := map[int]int{}
	for _, order := range []int{0, 2} {
		rcc, rng := newTestRCC(order, 6, 14)
		worst := 0
		for n := 1; n <= 200; n++ {
			rcc.Update(baseBucket(rng, 6))
			if b := rcc.CoresetBucket(); b.Level > worst {
				worst = b.Level
			}
		}
		levels[order] = worst
	}
	if levels[2] > levels[0] {
		t.Fatalf("order-2 level %d worse than order-0 level %d", levels[2], levels[0])
	}
}

func TestRCCOrderAccessorAndName(t *testing.T) {
	rcc, _ := newTestRCC(3, 4, 15)
	if rcc.Order() != 3 {
		t.Fatalf("Order = %d", rcc.Order())
	}
	if rcc.Name() != "RCC" {
		t.Fatalf("Name = %q", rcc.Name())
	}
}

func TestRCCPointsStoredGrowsWithOrder(t *testing.T) {
	stored := map[int]int{}
	for _, order := range []int{0, 2} {
		rcc, rng := newTestRCC(order, 8, 16)
		for n := 1; n <= 100; n++ {
			rcc.Update(baseBucket(rng, 8))
			_ = rcc.Coreset()
		}
		stored[order] = rcc.PointsStored()
	}
	if stored[2] <= stored[0] {
		t.Fatalf("order-2 stored %d points, order-0 %d; recursion should cost memory",
			stored[2], stored[0])
	}
}

// TestRCCCarryResetsChildren: when a level list fills and merges upward,
// the nested structure for that level must reset; we verify indirectly by
// weight correctness across many carries with queries only at the end.
func TestRCCCarryResetsChildren(t *testing.T) {
	rcc, rng := newTestRCC(1, 4, 17)
	const n = 64 // degrees are (2,4): plenty of carries at both orders
	for i := 0; i < n; i++ {
		rcc.Update(baseBucket(rng, 4))
	}
	got := geom.TotalWeight(rcc.Coreset())
	want := float64(n * 4)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("weight %v, want %v", got, want)
	}
}

// TestRCCDeterministicGivenSeed: identical seeds and streams give identical
// coresets.
func TestRCCDeterministicGivenSeed(t *testing.T) {
	run := func() []geom.Weighted {
		rng := rand.New(rand.NewSource(99))
		rcc := NewRCC(2, 6, coreset.KMeansPP{}, rng)
		dataRng := rand.New(rand.NewSource(100))
		for n := 1; n <= 40; n++ {
			rcc.Update(baseBucket(dataRng, 6))
			_ = rcc.Coreset()
		}
		return rcc.Coreset()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic coreset size")
	}
	for i := range a {
		if !a[i].P.Equal(b[i].P) || a[i].W != b[i].W {
			t.Fatal("non-deterministic coreset")
		}
	}
}
