package core

import (
	"math/rand"

	"streamkm/internal/basen"
	"streamkm/internal/coreset"
	"streamkm/internal/coretree"
	"streamkm/internal/geom"
)

// CCStats counts how queries against a CC structure were resolved. The
// three outcomes correspond to the branches of Algorithm 3: an exact cache
// hit for the current N, a hit on the major prefix (the fast path the
// caching design exists for), or a full fall back to the coreset tree.
type CCStats struct {
	ExactHits int64 // coreset for [1, N] already cached
	MajorHits int64 // coreset for [1, major(N)] cached; merged with <= r-1 tree buckets
	Fallbacks int64 // cache useless; merged all active tree buckets (CT behaviour)
}

// Queries returns the total number of coreset queries answered.
func (s CCStats) Queries() int64 { return s.ExactHits + s.MajorHits + s.Fallbacks }

// CC is the Cached Coreset Tree (Algorithm 3): a coreset tree plus a
// coreset cache. Updates are identical to CT. At query time, instead of
// merging up to (r-1)·log_r N buckets across all tree levels, CC merges the
// cached coreset for span [1, major(N,r)] with the at most r-1 tree buckets
// covering (major(N,r), N] — no more than r buckets in total — and caches
// the result for future queries.
//
// If the needed prefix is not cached (queries are infrequent), CC falls
// back to exactly CT's query path, so it is never worse than CT.
type CC struct {
	tree    *coretree.Tree
	cache   *coresetCache
	r       int
	m       int
	builder coreset.Builder
	rng     *rand.Rand
	stats   CCStats
}

// NewCC returns an empty cached coreset tree with merge degree r and
// coreset size m.
func NewCC(r, m int, b coreset.Builder, rng *rand.Rand) *CC {
	return &CC{
		tree:    coretree.New(r, m, b, rng),
		cache:   newCoresetCache(),
		r:       r,
		m:       m,
		builder: b,
		rng:     rng,
	}
}

// Update implements Structure (CC-Update): identical to CT's update; the
// cache is maintained lazily at query time.
func (c *CC) Update(bucket []geom.Weighted) { c.tree.Update(bucket) }

// Coreset implements Structure (CC-Coreset). The returned slice must not be
// mutated by the caller: it aliases cached storage.
func (c *CC) Coreset() []geom.Weighted { return c.CoresetBucket().Points }

// CoresetBucket runs Algorithm 3's query path and returns the resulting
// bucket, exposing the coreset level for diagnostics (Lemma 5 bounds it by
// ceil(2·log_r N) - 1 when queries arrive every bucket).
func (c *CC) CoresetBucket() coretree.Bucket {
	n := c.tree.N()
	if n == 0 {
		return coretree.Bucket{}
	}
	// Exact hit: the coreset for [1, N] is already cached.
	if b, ok := c.cache.get(n); ok {
		c.stats.ExactHits++
		return b
	}

	var parts []coretree.Bucket
	major := basen.Major(n, c.r)
	if b1, ok := c.cache.get(major); major > 0 && ok {
		// Fast path: cached [1, major] plus the beta <= r-1 tree buckets at
		// the minor term's level, which span exactly (major, N].
		c.stats.MajorHits++
		mt, _ := basen.MinorTerm(n, c.r)
		parts = append(parts, b1)
		parts = append(parts, c.tree.BucketsAtLevel(mt.Alpha)...)
	} else {
		// Cache miss: fall back to CT's full union.
		c.stats.Fallbacks++
		parts = c.tree.ActiveBuckets()
	}

	merged := coretree.MergeBuckets(c.builder, c.rng, c.m, parts...)
	merged.Start, merged.End = 1, n
	c.cache.put(n, merged)
	c.cache.evictTo(n, c.r)
	return merged
}

// PointsStored implements Structure: tree plus cache contents.
func (c *CC) PointsStored() int { return c.tree.PointsStored() + c.cache.pointsStored() }

// Name implements Structure.
func (c *CC) Name() string { return "CC" }

// ScaleWeights multiplies every stored weight — tree and cache — by factor
// (forward-decay epoch support).
func (c *CC) ScaleWeights(factor float64) {
	c.tree.ScaleWeights(factor)
	for _, key := range c.cache.keys() {
		b, _ := c.cache.get(key)
		for i := range b.Points {
			b.Points[i].W *= factor
		}
	}
}

// Stats returns a snapshot of the query-resolution counters.
func (c *CC) Stats() CCStats { return c.stats }

// Tree exposes the underlying coreset tree (tests, persistence).
func (c *CC) Tree() *coretree.Tree { return c.tree }

// CacheKeys returns the currently cached span endpoints in ascending order
// (test hook for Lemma 4 / the eviction rule).
func (c *CC) CacheKeys() []int { return c.cache.keys() }
