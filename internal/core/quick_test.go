package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkm/internal/basen"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// TestQuickCCInvariants drives CC through random merge degrees, bucket
// sizes, stream lengths and query patterns, checking after every query:
//
//   - total weight conservation;
//   - span [1, N];
//   - cache keys ⊆ prefixsum(N, r) ∪ {N} (the eviction rule);
//   - coreset level within the Lemma 5 bound when queries are dense.
func TestQuickCCInvariants(t *testing.T) {
	f := func(rRaw, mRaw uint8, nRaw uint16, queryMask uint32, seed int64) bool {
		r := int(rRaw%5) + 2  // 2..6
		m := int(mRaw%10) + 2 // 2..11
		n := int(nRaw%200) + 1
		rng := rand.New(rand.NewSource(seed))
		cc := NewCC(r, m, coreset.KMeansPP{}, rng)
		everyQuery := queryMask == 0 // sometimes query at every bucket
		for i := 1; i <= n; i++ {
			cc.Update(baseBucket(rng, m))
			if !everyQuery && (queryMask>>(uint(i)%32))&1 == 0 {
				continue
			}
			b := cc.CoresetBucket()
			// Weight.
			var w float64
			for _, wp := range b.Points {
				w += wp.W
			}
			want := float64(i * m)
			if math.Abs(w-want) > 1e-6*want {
				return false
			}
			// Span.
			if b.Start != 1 || b.End != i {
				return false
			}
			// Cache keys.
			allowed := map[int]bool{i: true}
			for _, p := range basen.PrefixSums(i, r) {
				allowed[p] = true
			}
			for _, key := range cc.CacheKeys() {
				if !allowed[key] {
					return false
				}
			}
			// Lemma 5 (valid when queries arrive at every bucket).
			if everyQuery && i > 1 {
				bound := int(math.Ceil(2*math.Log(float64(i))/math.Log(float64(r)))) - 1
				if bound < 1 {
					bound = 1
				}
				if b.Level > bound {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRCCInvariants drives RCC through random orders and query
// patterns, checking weight and span after each query.
func TestQuickRCCInvariants(t *testing.T) {
	f := func(orderRaw, mRaw uint8, nRaw uint16, queryMask uint32, seed int64) bool {
		order := int(orderRaw % 3) // 0..2
		m := int(mRaw%8) + 2
		n := int(nRaw%150) + 1
		rng := rand.New(rand.NewSource(seed))
		rcc := NewRCC(order, m, coreset.KMeansPP{}, rng)
		for i := 1; i <= n; i++ {
			rcc.Update(baseBucket(rng, m))
			if (queryMask>>(uint(i)%32))&1 == 0 && i != n {
				continue
			}
			b := rcc.CoresetBucket()
			var w float64
			for _, wp := range b.Points {
				w += wp.W
			}
			want := float64(i * m)
			if math.Abs(w-want) > 1e-6*want {
				return false
			}
			if b.Start != 1 || b.End != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOnlineCCCostBound fuzzes OnlineCC streams (with random drift
// jumps) and verifies the Lemma 10 invariant phiNow >= true cost at random
// checkpoints.
//
// Lemma 10 assumes the configured epsilon genuinely upper-bounds the
// empirical coreset error: after a fallback, phiNow = phi(CS)/(1-eps), and
// if the (small, fuzzed) coreset underestimates the true cost by more than
// eps the bound briefly dips below the truth. The test therefore runs with
// a conservative eps = 0.3 and additionally tolerates that same documented
// slack factor, while still catching any structural violation (the
// sequential update charging too little, phiNow resets, etc.).
func TestQuickOnlineCCCostBound(t *testing.T) {
	const eps = 0.3
	f := func(alphaRaw uint8, nRaw uint16, jumpAt uint8, seed int64) bool {
		alpha := 1.1 + float64(alphaRaw%40)/10 // 1.1..5.0
		n := int(nRaw%2000) + 200
		rng := rand.New(rand.NewSource(seed))
		o := NewOnlineCC(3, 40, 2, alpha, eps, coreset.KMeansPP{},
			rand.New(rand.NewSource(seed+1)), kmeans.FastOptions())
		var seen []geom.Weighted
		jump := 200 + int(jumpAt)*4
		for i := 0; i < n; i++ {
			var p geom.Point
			if i > jump {
				p = geom.Point{300 + rng.NormFloat64(), 300 + rng.NormFloat64()}
			} else {
				p = geom.Point{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
			}
			o.Add(p)
			seen = append(seen, geom.Weighted{P: p, W: 1})
			if i%97 == 0 && i > 50 {
				truth := costOf(seen, o.LiveCenters())
				if truth > o.PhiNow()*(1+eps) {
					return false
				}
			}
			if i%251 == 0 {
				_ = o.Centers()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func costOf(pts []geom.Weighted, centers []geom.Point) float64 {
	var s float64
	for _, wp := range pts {
		d, _ := geom.MinSqDist(wp.P, centers)
		s += wp.W * d
	}
	return s
}
