package core

import (
	"fmt"
	"math/rand"

	"streamkm/internal/basen"
	"streamkm/internal/coreset"
	"streamkm/internal/coretree"
	"streamkm/internal/geom"
)

// DefaultRCCDegrees returns the merge degrees r_i = 2^(2^i) for orders
// 0..order (Section 4.2), capped at 1<<16 to keep arithmetic sane for very
// deep structures. depth 3 yields [2 4 16 256].
func DefaultRCCDegrees(order int) []int {
	out := make([]int, order+1)
	for i := range out {
		shift := uint(1) << uint(i)
		if shift > 16 {
			shift = 16
		}
		out[i] = 1 << shift
	}
	return out
}

// RCC is the Recursive Cached Coreset Tree (Algorithms 4–6). Each order-i
// structure keeps per-level bucket lists with merge degree r_i (large, so
// few levels exist) plus, for every level, a nested order-(i-1) RCC holding
// the same buckets. At query time the cached prefix is combined with the
// nested structure's recursively cached summary of the single partially
// filled level, so only ~2 coresets are merged per recursion order —
// O(log log N) total — while the large merge degrees keep coreset levels
// O(1).
type RCC struct {
	root    *rccNode
	degrees []int
	m       int
	builder coreset.Builder
	rng     *rand.Rand
}

// NewRCC returns an RCC of the given order (nesting depth) with merge
// degrees r_i = 2^(2^i). The paper's experiments use order 3.
func NewRCC(order, m int, b coreset.Builder, rng *rand.Rand) *RCC {
	return NewRCCWithDegrees(DefaultRCCDegrees(order), m, b, rng)
}

// NewRCCWithDegrees returns an RCC whose order-i structures use merge
// degree degrees[i]. len(degrees) determines the nesting depth: the
// outermost structure has order len(degrees)-1. Every degree must be >= 2
// and degrees should increase with order (the construction requires
// r_{i+1} = r_i^2 for its guarantees, but any increasing sequence works
// operationally).
func NewRCCWithDegrees(degrees []int, m int, b coreset.Builder, rng *rand.Rand) *RCC {
	if len(degrees) == 0 {
		panic("core: RCC needs at least one merge degree")
	}
	for i, d := range degrees {
		if d < 2 {
			panic(fmt.Sprintf("core: RCC degree[%d] = %d < 2", i, d))
		}
	}
	r := &RCC{degrees: degrees, m: m, builder: b, rng: rng}
	r.root = r.newNode(len(degrees) - 1)
	return r
}

// Update implements Structure (RCC-Update): insert one base bucket.
func (r *RCC) Update(bucket []geom.Weighted) {
	n := r.root.n + 1
	r.root.update(coretree.Bucket{Points: bucket, Level: 0, Start: n, End: n})
}

// Coreset implements Structure (RCC-Coreset).
func (r *RCC) Coreset() []geom.Weighted { return r.CoresetBucket().Points }

// CoresetBucket runs the recursive query (Algorithm 6) and returns the
// resulting bucket with its coreset level.
func (r *RCC) CoresetBucket() coretree.Bucket { return r.root.coreset() }

// PointsStored implements Structure. Buckets referenced by both a level
// list and its nested structure are counted once per holder, matching the
// logical accounting of the paper's Table 4 (physical memory is lower
// because Go shares the underlying point storage).
func (r *RCC) PointsStored() int { return r.root.pointsStored() }

// Name implements Structure.
func (r *RCC) Name() string { return "RCC" }

// Order returns the nesting depth of the outermost structure.
func (r *RCC) Order() int { return r.root.order }

// ScaleWeights multiplies every stored weight — lists, caches, and nested
// structures — by factor (forward-decay epoch support). Buckets shared
// between a list and its nested structure are scaled once: the nested
// structure holds the same slices, so scaling the parent's lists suffices
// for shared buckets, and only caches (which hold fresh points) need their
// own pass.
func (r *RCC) ScaleWeights(factor float64) { r.root.scaleWeights(factor, true) }

// scaleWeights scales this node's cache always, and its lists only when
// scaleLists is set. Child nodes share their list buckets with this node's
// lists (the same backing arrays), so recursion scales only the children's
// caches to avoid double-scaling — except child-private merged buckets,
// which do live in child lists; those are reached because child lists hold
// either shared buckets (already scaled via parent) or buckets merged from
// them (fresh arrays, scaled via the child's list pass).
func (nd *rccNode) scaleWeights(factor float64, scaleLists bool) {
	if scaleLists {
		for _, lst := range nd.lists {
			for _, b := range lst {
				for i := range b.Points {
					b.Points[i].W *= factor
				}
			}
		}
	}
	for _, key := range nd.cache.keys() {
		b, _ := nd.cache.get(key)
		for i := range b.Points {
			b.Points[i].W *= factor
		}
	}
	for _, ch := range nd.children {
		if ch != nil {
			ch.scaleWeightsPrivate(factor)
		}
	}
}

// scaleWeightsPrivate scales the buckets a child owns privately: merged
// buckets in its lists above level 0 (level-0 entries alias the parent's
// list and were already scaled), its cache, and recursively its children.
func (nd *rccNode) scaleWeightsPrivate(factor float64) {
	for l, lst := range nd.lists {
		if l == 0 {
			continue // aliases the parent's buckets; already scaled
		}
		for _, b := range lst {
			for i := range b.Points {
				b.Points[i].W *= factor
			}
		}
	}
	for _, key := range nd.cache.keys() {
		b, _ := nd.cache.get(key)
		for i := range b.Points {
			b.Points[i].W *= factor
		}
	}
	for _, ch := range nd.children {
		if ch != nil {
			ch.scaleWeightsPrivate(factor)
		}
	}
}

// rccNode is one RCC(i) structure: R.L lists, R.cache, and nested RCC(i-1)
// structures per level.
type rccNode struct {
	owner    *RCC
	order    int
	r        int
	n        int // buckets received by this node
	lists    [][]coretree.Bucket
	children []*rccNode // parallel to lists; nil entries until used; only for order > 0
	cache    *coresetCache
}

func (r *RCC) newNode(order int) *rccNode {
	return &rccNode{
		owner: r,
		order: order,
		r:     r.degrees[order],
		cache: newCoresetCache(),
	}
}

// ensureLevel grows lists/children so that level l exists.
func (nd *rccNode) ensureLevel(l int) {
	for len(nd.lists) <= l {
		nd.lists = append(nd.lists, nil)
		nd.children = append(nd.children, nil)
	}
	if nd.order > 0 && nd.children[l] == nil {
		nd.children[l] = nd.owner.newNode(nd.order - 1)
	}
}

// update implements Algorithm 5 (RCC-Update).
func (nd *rccNode) update(b coretree.Bucket) {
	nd.n++
	nd.ensureLevel(0)
	nd.lists[0] = append(nd.lists[0], b)
	if nd.order > 0 {
		nd.children[0].update(b)
	}
	for l := 0; l < len(nd.lists); l++ {
		if len(nd.lists[l]) < nd.r {
			break
		}
		merged := coretree.MergeBuckets(nd.owner.builder, nd.owner.rng, nd.owner.m, nd.lists[l]...)
		nd.ensureLevel(l + 1)
		nd.lists[l+1] = append(nd.lists[l+1], merged)
		if nd.order > 0 {
			nd.children[l+1].update(merged)
		}
		// Empty the list and reset the nested structure for this level.
		nd.lists[l] = nil
		if nd.order > 0 {
			nd.children[l] = nd.owner.newNode(nd.order - 1)
		}
	}
}

// coreset implements Algorithm 6 (RCC-Coreset).
func (nd *rccNode) coreset() coretree.Bucket {
	if nd.n == 0 {
		return coretree.Bucket{}
	}
	if b, ok := nd.cache.get(nd.n); ok {
		return b
	}

	var parts []coretree.Bucket
	major := basen.Major(nd.n, nd.r)
	if b1, ok := nd.cache.get(major); major > 0 && ok {
		// Cached prefix [1, major] plus a recursively cached summary of the
		// lowest non-empty level, which spans (major, n].
		lstar := nd.lowestNonEmptyLevel()
		parts = append(parts, b1)
		if nd.order > 0 {
			parts = append(parts, nd.children[lstar].coreset())
		} else {
			parts = append(parts, nd.lists[lstar]...)
		}
	} else {
		// Fallback: union the recursive summaries of every level (order > 0)
		// or every bucket (order 0). Iterate levels from highest to lowest so
		// spans stay in stream order.
		for l := len(nd.lists) - 1; l >= 0; l-- {
			if len(nd.lists[l]) == 0 {
				continue
			}
			if nd.order > 0 {
				parts = append(parts, nd.children[l].coreset())
			} else {
				parts = append(parts, nd.lists[l]...)
			}
		}
	}

	merged := coretree.MergeBuckets(nd.owner.builder, nd.owner.rng, nd.owner.m, parts...)
	nd.cache.put(nd.n, merged)
	nd.cache.evictTo(nd.n, nd.r)
	return merged
}

// lowestNonEmptyLevel returns the smallest l with a non-empty list. Must
// only be called when n > 0.
func (nd *rccNode) lowestNonEmptyLevel() int {
	for l, lst := range nd.lists {
		if len(lst) > 0 {
			return l
		}
	}
	panic("core: RCC node has buckets but no non-empty level")
}

func (nd *rccNode) pointsStored() int {
	s := nd.cache.pointsStored()
	for _, lst := range nd.lists {
		for _, b := range lst {
			s += len(b.Points)
		}
	}
	for _, ch := range nd.children {
		if ch != nil {
			s += ch.pointsStored()
		}
	}
	return s
}
