package core

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/basen"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
)

func baseBucket(rng *rand.Rand, m int) []geom.Weighted {
	out := make([]geom.Weighted, m)
	for i := range out {
		out[i] = geom.Weighted{P: geom.Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10}, W: 1}
	}
	return out
}

func newTestCC(r, m int, seed int64) (*CC, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return NewCC(r, m, coreset.KMeansPP{}, rng), rng
}

func TestCCEmptyQuery(t *testing.T) {
	cc, _ := newTestCC(2, 8, 1)
	if got := cc.Coreset(); got != nil {
		t.Fatalf("empty CC coreset = %v, want nil", got)
	}
	if cc.Stats().Queries() != 0 {
		t.Fatal("empty query should not count")
	}
}

// TestCCLemma4CacheContents verifies Lemma 4 plus the eviction rule: when a
// query arrives after every bucket, the cache holds exactly
// prefixsum(N, r) ∪ {N} right after the query at bucket N.
func TestCCLemma4CacheContents(t *testing.T) {
	for _, r := range []int{2, 3, 5} {
		cc, rng := newTestCC(r, 6, int64(r))
		for n := 1; n <= 150; n++ {
			cc.Update(baseBucket(rng, 6))
			_ = cc.Coreset()
			want := append([]int{n}, basen.PrefixSums(n, r)...)
			wantSet := map[int]bool{}
			for _, k := range want {
				wantSet[k] = true
			}
			got := cc.CacheKeys()
			if len(got) != len(wantSet) {
				t.Fatalf("r=%d N=%d: cache keys %v, want %v", r, n, got, want)
			}
			for _, k := range got {
				if !wantSet[k] {
					t.Fatalf("r=%d N=%d: unexpected cache key %d (want %v)", r, n, k, want)
				}
			}
		}
	}
}

// TestCCNoFallbackWhenQueriedEveryBucket: with a query after every bucket,
// the major prefix is always cached (Lemma 4), so CC never needs the CT
// fallback path after the first single-digit counts.
func TestCCNoFallbackWhenQueriedEveryBucket(t *testing.T) {
	cc, rng := newTestCC(3, 6, 7)
	for n := 1; n <= 200; n++ {
		cc.Update(baseBucket(rng, 6))
		_ = cc.Coreset()
	}
	st := cc.Stats()
	// Fallbacks only happen when major(N)=0, i.e. single-digit N; those are
	// not "cache failures". Count single-digit Ns in 1..200 for r=3.
	singles := 0
	for n := 1; n <= 200; n++ {
		if basen.Major(n, 3) == 0 {
			singles++
		}
	}
	if int(st.Fallbacks) != singles {
		t.Fatalf("fallbacks = %d, want %d (single-digit N only)", st.Fallbacks, singles)
	}
	if st.MajorHits != 200-int64(singles) {
		t.Fatalf("major hits = %d, want %d", st.MajorHits, 200-singles)
	}
}

// TestCCLemma5LevelBound verifies Lemma 5: with queries after every bucket,
// the returned coreset level is at most ceil(2*log_r N) - 1.
func TestCCLemma5LevelBound(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		cc, rng := newTestCC(r, 6, int64(20+r))
		for n := 1; n <= 250; n++ {
			cc.Update(baseBucket(rng, 6))
			b := cc.CoresetBucket()
			if n == 1 {
				continue // log 1 = 0; bucket is the raw base bucket
			}
			bound := int(math.Ceil(2*math.Log(float64(n))/math.Log(float64(r)))) - 1
			if bound < 1 {
				bound = 1
			}
			if b.Level > bound {
				t.Fatalf("r=%d N=%d: level %d exceeds Lemma 5 bound %d", r, n, b.Level, bound)
			}
		}
	}
}

// TestCCWeightPreservation: the coreset returned at every query carries the
// full stream weight.
func TestCCWeightPreservation(t *testing.T) {
	cc, rng := newTestCC(2, 10, 3)
	for n := 1; n <= 64; n++ {
		cc.Update(baseBucket(rng, 10))
		got := geom.TotalWeight(cc.Coreset())
		want := float64(n * 10)
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("N=%d: weight %v, want %v", n, got, want)
		}
	}
}

// TestCCSpanCoversStream: the returned bucket spans [1, N].
func TestCCSpanCoversStream(t *testing.T) {
	cc, rng := newTestCC(3, 6, 4)
	for n := 1; n <= 100; n++ {
		cc.Update(baseBucket(rng, 6))
		b := cc.CoresetBucket()
		if b.Start != 1 || b.End != n {
			t.Fatalf("N=%d: span %s, want [1,%d]", n, b.Span(), n)
		}
	}
}

// TestCCInfrequentQueries: querying rarely still returns the right weight
// and records fallbacks (cache stale).
func TestCCInfrequentQueries(t *testing.T) {
	cc, rng := newTestCC(2, 8, 5)
	for n := 1; n <= 100; n++ {
		cc.Update(baseBucket(rng, 8))
		if n%17 == 0 {
			got := geom.TotalWeight(cc.Coreset())
			want := float64(n * 8)
			if math.Abs(got-want) > 1e-6*want {
				t.Fatalf("N=%d: weight %v, want %v", n, got, want)
			}
		}
	}
	if cc.Stats().Fallbacks == 0 {
		t.Fatal("expected at least one fallback with sparse queries")
	}
}

// TestCCExactHitOnRepeatedQuery: querying twice at the same N serves the
// second from cache without recomputation.
func TestCCExactHitOnRepeatedQuery(t *testing.T) {
	cc, rng := newTestCC(2, 8, 6)
	for n := 1; n <= 10; n++ {
		cc.Update(baseBucket(rng, 8))
	}
	a := cc.Coreset()
	before := cc.Stats()
	b := cc.Coreset()
	after := cc.Stats()
	if after.ExactHits != before.ExactHits+1 {
		t.Fatal("second query at same N should be an exact hit")
	}
	if len(a) != len(b) {
		t.Fatal("repeated query returned different coreset")
	}
	for i := range a {
		if !a[i].P.Equal(b[i].P) || a[i].W != b[i].W {
			t.Fatal("repeated query returned different coreset contents")
		}
	}
}

// TestCCMatchesCTWeightAndBetterMergeCount: CC and CT summarize the same
// stream; CC's query-time merge size is bounded by r buckets instead of the
// whole tree.
func TestCCQueryMergesAtMostRBuckets(t *testing.T) {
	// Instrument indirectly: with queries each bucket, the parts merged are
	// 1 cached + at most r-1 tree buckets, so the union fed to the builder
	// has at most r*m points — reflected in the cached bucket being built
	// from <= r*m points. We check the observable: coreset size <= m and
	// level bound already checked; here check stats classification sums.
	cc, rng := newTestCC(4, 5, 8)
	for n := 1; n <= 300; n++ {
		cc.Update(baseBucket(rng, 5))
		_ = cc.Coreset()
	}
	st := cc.Stats()
	if st.Queries() != 300 {
		t.Fatalf("queries = %d, want 300", st.Queries())
	}
	if st.MajorHits == 0 {
		t.Fatal("expected major hits when querying every bucket")
	}
}

func TestCCPointsStoredIncludesCache(t *testing.T) {
	cc, rng := newTestCC(2, 8, 9)
	for n := 1; n <= 20; n++ {
		cc.Update(baseBucket(rng, 8))
		_ = cc.Coreset()
	}
	tree := cc.Tree().PointsStored()
	total := cc.PointsStored()
	if total <= tree {
		t.Fatalf("PointsStored %d should exceed tree-only %d (cache not counted?)", total, tree)
	}
}

func TestCCName(t *testing.T) {
	cc, _ := newTestCC(2, 4, 10)
	if cc.Name() != "CC" {
		t.Fatalf("Name = %q", cc.Name())
	}
}
