package core

import (
	"math/rand"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// OnlineCCStats reports how OnlineCC answered queries.
type OnlineCCStats struct {
	FastQueries int64 // answered in O(1) from the sequential centers
	Fallbacks   int64 // cost bound exceeded; recomputed from CC
}

// OnlineCC is the Online Coreset Cache (Algorithm 7): a hybrid of CC and
// MacQueen's sequential k-means. Every arriving point both updates a set of
// live centers sequentially (O(kd) per point) and flows into a CC structure.
// Queries normally return the live centers in O(1). Only when the running
// cost estimate phiNow exceeds alpha times the cost at the last fallback
// does the query path fall back to CC + k-means++, restoring the provable
// O(log k) quality (Lemma 11).
//
// phiNow is an upper bound on the true clustering cost of the live centers
// (Lemma 10): each point adds its squared distance to the *pre-update*
// nearest center, which dominates its distance to the moved center.
type OnlineCC struct {
	k        int
	m        int
	alpha    float64
	eps      float64
	rng      *rand.Rand
	queryOpt kmeans.Options

	cc      *CC
	partial []geom.Weighted

	centers []geom.Point
	weights []float64
	phiPrev float64
	phiNow  float64

	initBuf  []geom.Weighted
	initSize int
	ready    bool
	count    int64 // points observed (serving layers report this)

	stats OnlineCCStats
}

// NewOnlineCC returns an OnlineCC with the given number of clusters k,
// bucket/coreset size m, CC merge degree r, switching threshold alpha > 1
// (1.2 in the paper's default setup), and coreset accuracy parameter eps in
// (0, 1) used to inflate the post-fallback cost estimate.
func NewOnlineCC(k, m, r int, alpha, eps float64, b coreset.Builder, rng *rand.Rand, queryOpt kmeans.Options) *OnlineCC {
	if alpha <= 1 {
		panic("core: OnlineCC threshold alpha must exceed 1")
	}
	if eps <= 0 || eps >= 1 {
		panic("core: OnlineCC eps must be in (0,1)")
	}
	return &OnlineCC{
		k:        k,
		m:        m,
		alpha:    alpha,
		eps:      eps,
		rng:      rng,
		queryOpt: queryOpt,
		cc:       NewCC(r, m, b, rng),
		partial:  make([]geom.Weighted, 0, m),
		initSize: 2 * k, // "the first O(k) points of the stream"
	}
}

// Add implements Clusterer (OnlineCC-Update).
func (o *OnlineCC) Add(p geom.Point) { o.AddWeighted(geom.Weighted{P: p, W: 1}) }

// AddWeighted observes a point carrying weight w (equivalent to w unit
// points at the same coordinates).
func (o *OnlineCC) AddWeighted(wp geom.Weighted) {
	o.count++
	// Every point flows into the CC pipeline regardless of the fast path.
	o.partial = append(o.partial, wp)
	if len(o.partial) == o.m {
		o.cc.Update(o.partial)
		o.partial = make([]geom.Weighted, 0, o.m)
	}

	if !o.ready {
		o.initBuf = append(o.initBuf, wp)
		if len(o.initBuf) >= o.initSize {
			o.bootstrap()
		}
		return
	}

	// Sequential k-means step: charge the point against the nearest center
	// *before* moving it, then move the center to the weighted centroid.
	dsq, idx := geom.MinSqDist(wp.P, o.centers)
	o.phiNow += wp.W * dsq
	w := o.weights[idx]
	c := o.centers[idx]
	inv := 1 / (w + wp.W)
	for j := range c {
		c[j] = (w*c[j] + wp.W*wp.P[j]) * inv
	}
	o.weights[idx] = w + wp.W
}

// bootstrap initializes the live centers from the first O(k) points
// (Algorithm 7, OnlineCC-Init).
func (o *OnlineCC) bootstrap() {
	centers, cost := kmeans.Run(o.rng, o.initBuf, o.k, o.queryOpt)
	o.centers = centers
	o.weights = make([]float64, len(centers))
	for _, wp := range o.initBuf {
		_, idx := geom.MinSqDist(wp.P, centers)
		o.weights[idx] += wp.W
	}
	o.phiPrev = cost
	o.phiNow = cost
	o.initBuf = nil
	o.ready = true
}

// Centers implements Clusterer (OnlineCC-Query). The returned centers are
// copies; the live centers keep moving as points arrive.
func (o *OnlineCC) Centers() []geom.Point {
	if !o.ready {
		centers, _ := kmeans.Run(o.rng, o.initBuf, o.k, o.queryOpt)
		return centers
	}
	if o.phiNow > o.alpha*o.phiPrev {
		o.fallback()
	} else {
		o.stats.FastQueries++
	}
	out := make([]geom.Point, len(o.centers))
	for i, c := range o.centers {
		out[i] = c.Clone()
	}
	return out
}

// fallback recomputes the centers from the CC coreset (Algorithm 7, lines
// 12–16) and resets the cost estimates.
func (o *OnlineCC) fallback() {
	o.stats.Fallbacks++
	cs := o.cc.Coreset()
	union := make([]geom.Weighted, 0, len(cs)+len(o.partial))
	union = append(union, cs...)
	union = append(union, o.partial...)
	if len(union) == 0 {
		return
	}
	centers, cost := kmeans.Run(o.rng, union, o.k, o.queryOpt)
	o.centers = centers
	o.weights = make([]float64, len(centers))
	for _, wp := range union {
		_, idx := geom.MinSqDist(wp.P, centers)
		o.weights[idx] += wp.W
	}
	o.phiPrev = cost
	o.phiNow = cost / (1 - o.eps)
}

// PointsStored implements Clusterer: the CC structure, the partial bucket,
// the live centers, and any bootstrap buffer.
func (o *OnlineCC) PointsStored() int {
	return o.cc.PointsStored() + len(o.partial) + len(o.centers) + len(o.initBuf)
}

// Name implements Clusterer.
func (o *OnlineCC) Name() string { return "OnlineCC" }

// Count returns the number of points observed so far.
func (o *OnlineCC) Count() int64 { return o.count }

// Stats returns a snapshot of the query counters.
func (o *OnlineCC) Stats() OnlineCCStats { return o.stats }

// PhiNow returns the current upper bound on the live centers' cost
// (test hook for Lemma 10).
func (o *OnlineCC) PhiNow() float64 { return o.phiNow }

// CC exposes the embedded cached coreset tree (tests, persistence).
func (o *OnlineCC) CC() *CC { return o.cc }

// LiveCenters returns the internal (mutating) centers; test hook.
func (o *OnlineCC) LiveCenters() []geom.Point { return o.centers }
