package core

import (
	"streamkm/internal/coretree"
	"streamkm/internal/geom"
)

// CCSnapshot is the exported state of a CC structure: its tree plus the
// coreset cache.
type CCSnapshot struct {
	Tree  coretree.TreeSnapshot
	Cache map[int]coretree.Bucket
	Stats CCStats
}

// Snapshot captures the CC's complete logical state (deep copies).
func (c *CC) Snapshot() CCSnapshot {
	cache := make(map[int]coretree.Bucket, c.cache.len())
	for _, key := range c.cache.keys() {
		b, _ := c.cache.get(key)
		cache[key] = coretree.Bucket{
			Points: geom.CloneWeighted(b.Points),
			Level:  b.Level, Start: b.Start, End: b.End,
		}
	}
	return CCSnapshot{Tree: c.tree.Snapshot(), Cache: cache, Stats: c.stats}
}

// Restore replaces the CC's state with the snapshot's.
func (c *CC) Restore(s CCSnapshot) {
	c.tree.Restore(s.Tree)
	c.r = s.Tree.R
	c.m = s.Tree.M
	c.cache = newCoresetCache()
	for key, b := range s.Cache {
		c.cache.put(key, coretree.Bucket{
			Points: geom.CloneWeighted(b.Points),
			Level:  b.Level, Start: b.Start, End: b.End,
		})
	}
	c.stats = s.Stats
}

// RCCSnapshot is the exported state of an RCC: the merge-degree schedule,
// the coreset size, plus the recursive node tree.
type RCCSnapshot struct {
	Degrees []int
	M       int
	Root    RCCNodeSnapshot
}

// RCCNodeSnapshot is the exported state of one RCC(i) structure. Children
// maps a level index to the nested structure's snapshot (levels without a
// nested structure are absent — gob cannot encode nil slice elements).
type RCCNodeSnapshot struct {
	Order    int
	N        int
	Levels   int // len(lists) in the live node
	Lists    [][]coretree.Bucket
	Children map[int]RCCNodeSnapshot
	Cache    map[int]coretree.Bucket
}

// Snapshot captures the RCC's complete logical state (deep copies).
func (r *RCC) Snapshot() RCCSnapshot {
	return RCCSnapshot{
		Degrees: append([]int(nil), r.degrees...),
		M:       r.m,
		Root:    snapshotNode(r.root),
	}
}

// Restore replaces the RCC's state with the snapshot's. The degree schedule
// must match the one the RCC was built with.
func (r *RCC) Restore(s RCCSnapshot) {
	r.degrees = append([]int(nil), s.Degrees...)
	r.m = s.M
	r.root = restoreNode(r, s.Root)
}

func snapshotNode(nd *rccNode) RCCNodeSnapshot {
	s := RCCNodeSnapshot{
		Order:    nd.order,
		N:        nd.n,
		Levels:   len(nd.lists),
		Lists:    make([][]coretree.Bucket, len(nd.lists)),
		Children: make(map[int]RCCNodeSnapshot),
		Cache:    make(map[int]coretree.Bucket, nd.cache.len()),
	}
	for i, lst := range nd.lists {
		s.Lists[i] = cloneBucketSlice(lst)
	}
	for i, ch := range nd.children {
		if ch != nil {
			s.Children[i] = snapshotNode(ch)
		}
	}
	for _, key := range nd.cache.keys() {
		b, _ := nd.cache.get(key)
		s.Cache[key] = cloneBucket(b)
	}
	return s
}

func restoreNode(r *RCC, s RCCNodeSnapshot) *rccNode {
	nd := r.newNode(s.Order)
	nd.n = s.N
	nd.lists = make([][]coretree.Bucket, s.Levels)
	for i, lst := range s.Lists {
		nd.lists[i] = cloneBucketSlice(lst)
	}
	nd.children = make([]*rccNode, s.Levels)
	for i, ch := range s.Children {
		nd.children[i] = restoreNode(r, ch)
	}
	for key, b := range s.Cache {
		nd.cache.put(key, cloneBucket(b))
	}
	return nd
}

func cloneBucket(b coretree.Bucket) coretree.Bucket {
	return coretree.Bucket{
		Points: geom.CloneWeighted(b.Points),
		Level:  b.Level, Start: b.Start, End: b.End,
	}
}

func cloneBucketSlice(bs []coretree.Bucket) []coretree.Bucket {
	out := make([]coretree.Bucket, len(bs))
	for i, b := range bs {
		out[i] = cloneBucket(b)
	}
	return out
}

// DriverSnapshot is the exported state of a Driver: configuration, the
// partial base bucket, and the observation counter. The wrapped structure
// is snapshotted separately (its concrete type decides the format).
type DriverSnapshot struct {
	K       int
	M       int
	Count   int64
	Partial []geom.Weighted
}

// Snapshot captures the driver-level state (not the inner structure).
func (d *Driver) Snapshot() DriverSnapshot {
	return DriverSnapshot{
		K: d.k, M: d.m, Count: d.count,
		Partial: geom.CloneWeighted(d.partial),
	}
}

// Restore replaces the driver-level state (not the inner structure).
func (d *Driver) Restore(s DriverSnapshot) {
	d.k = s.K
	d.m = s.M
	d.count = s.Count
	d.partial = geom.CloneWeighted(s.Partial)
}

// OnlineCCSnapshot is the exported state of an OnlineCC: configuration, the
// inner CC, the live centers with their weights, cost estimates and
// bootstrap state.
type OnlineCCSnapshot struct {
	K        int
	M        int
	Alpha    float64
	Eps      float64
	CC       CCSnapshot
	Partial  []geom.Weighted
	Centers  []geom.Point
	Weights  []float64
	PhiPrev  float64
	PhiNow   float64
	InitBuf  []geom.Weighted
	InitSize int
	Ready    bool
	Count    int64
	Stats    OnlineCCStats
}

// Snapshot captures the OnlineCC's complete logical state (deep copies).
func (o *OnlineCC) Snapshot() OnlineCCSnapshot {
	centers := make([]geom.Point, len(o.centers))
	for i, c := range o.centers {
		centers[i] = c.Clone()
	}
	return OnlineCCSnapshot{
		K:        o.k,
		M:        o.m,
		Alpha:    o.alpha,
		Eps:      o.eps,
		CC:       o.cc.Snapshot(),
		Partial:  geom.CloneWeighted(o.partial),
		Centers:  centers,
		Weights:  append([]float64(nil), o.weights...),
		PhiPrev:  o.phiPrev,
		PhiNow:   o.phiNow,
		InitBuf:  geom.CloneWeighted(o.initBuf),
		InitSize: o.initSize,
		Ready:    o.ready,
		Count:    o.count,
		Stats:    o.stats,
	}
}

// Restore replaces the OnlineCC's state with the snapshot's.
func (o *OnlineCC) Restore(s OnlineCCSnapshot) {
	o.k = s.K
	o.m = s.M
	o.alpha = s.Alpha
	o.eps = s.Eps
	o.cc.Restore(s.CC)
	o.partial = geom.CloneWeighted(s.Partial)
	o.centers = make([]geom.Point, len(s.Centers))
	for i, c := range s.Centers {
		o.centers[i] = c.Clone()
	}
	o.weights = append([]float64(nil), s.Weights...)
	o.phiPrev = s.PhiPrev
	o.phiNow = s.PhiNow
	o.initBuf = geom.CloneWeighted(s.InitBuf)
	o.initSize = s.InitSize
	o.ready = s.Ready
	o.count = s.Count
	o.stats = s.Stats
}
