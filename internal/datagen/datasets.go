package datagen

import (
	"fmt"
	"math/rand"
	"sort"

	"streamkm/internal/geom"
)

// Dataset is a materialized stream with the metadata the experiment harness
// reports (Table 3 columns).
type Dataset struct {
	Name        string
	Description string
	Dim         int
	Points      []geom.Point
}

// N returns the number of points.
func (d Dataset) N() int { return len(d.Points) }

// PaperSizes records the full cardinality of each dataset as used in the
// paper (Table 3). The harness scales these down by default and restores
// them with -scale 1.
var PaperSizes = map[string]int{
	"covtype":   581012,
	"power":     2049280,
	"intrusion": 494021,
	"drift":     200000,
}

// PaperDims records the dimensionality of each dataset (Table 3).
var PaperDims = map[string]int{
	"covtype":   54,
	"power":     7,
	"intrusion": 34,
	"drift":     68,
}

// Covtype generates an n-point stand-in for the UCI Forest Covertype
// dataset: 54 integer attributes, 7 cover-type clusters plus diffuse noise
// clusters, moderately overlapping. The stream is shuffled, as in the paper.
func Covtype(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	mix := RandomMixture(rng, 7, 54, 2000, 60, 180, 1.0)
	// A few broad background clusters model the cartographic noise floor.
	bg := RandomMixture(rng, 5, 54, 2000, 300, 500, 0)
	mix.Centers = append(mix.Centers, bg.Centers...)
	mix.Sds = append(mix.Sds, bg.Sds...)
	for range bg.Weights {
		mix.Weights = append(mix.Weights, 0.02)
	}
	mix.Round = true
	pts := mix.SampleN(rng, n)
	Shuffle(rng, pts)
	return Dataset{
		Name:        "Covtype",
		Description: "Forest cover type (synthetic stand-in)",
		Dim:         54,
		Points:      pts,
	}
}

// Power generates an n-point stand-in for the UCI Individual Household
// Electric Power Consumption dataset: 7 attributes with a strong daily
// cycle, modeled as 12 phase clusters with small spreads and a couple of
// heavy-tailed high-load regimes.
func Power(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	mix := RandomMixture(rng, 12, 7, 10, 0.2, 0.8, 0.5)
	// High-load regimes: rarer, farther, wider.
	hi := RandomMixture(rng, 3, 7, 40, 1.5, 3, 0)
	mix.Centers = append(mix.Centers, hi.Centers...)
	mix.Sds = append(mix.Sds, hi.Sds...)
	for range hi.Weights {
		mix.Weights = append(mix.Weights, 0.03)
	}
	pts := mix.SampleN(rng, n)
	Shuffle(rng, pts)
	return Dataset{
		Name:        "Power",
		Description: "Household power consumption (synthetic stand-in)",
		Dim:         7,
		Points:      pts,
	}
}

// Intrusion generates an n-point stand-in for the KDD Cup 1999 10% subset:
// 34 attributes with extremely skewed cluster weights — a few dominant
// "normal/bulk traffic" clusters holding ~97% of the mass and several rare,
// far-away attack clusters. This is the structure that makes Sequential
// k-means fail by ~1e4x in the paper's Figure 4(c): its first-k-points
// initialization almost surely never sees the rare clusters.
func Intrusion(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	mix := &Mixture{}
	// Three dominant clusters, tightly packed near the origin region.
	dom := RandomMixture(rng, 3, 34, 100, 1, 4, 0)
	mix.Centers = append(mix.Centers, dom.Centers...)
	mix.Sds = append(mix.Sds, dom.Sds...)
	mix.Weights = append(mix.Weights, 0.55, 0.30, 0.12)
	// Rare attack clusters: tiny weight, far away, tight.
	atk := RandomMixture(rng, 7, 34, 6000, 2, 8, 0)
	mix.Centers = append(mix.Centers, atk.Centers...)
	mix.Sds = append(mix.Sds, atk.Sds...)
	for range atk.Weights {
		mix.Weights = append(mix.Weights, 0.03/7)
	}
	pts := mix.SampleN(rng, n)
	Shuffle(rng, pts)
	return Dataset{
		Name:        "Intrusion",
		Description: "KDD Cup 1999 network intrusion (synthetic stand-in)",
		Dim:         34,
		Points:      pts,
	}
}

// Drift generates the paper's semi-synthetic Drift dataset with its own
// recipe (Section 5.1): 20 drifting RBF centers, 100 points per center per
// step, 68 attributes. Not shuffled — the stream evolves over time.
func Drift(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	gen := NewRBFDrift(rng, 20, 68, 1000, 10, 40, 2.0, 100)
	return Dataset{
		Name:        "Drift",
		Description: "RBF drifting stream (paper's own synthetic recipe)",
		Dim:         68,
		Points:      gen.Take(n),
	}
}

// Names lists the available dataset generators in the paper's order.
func Names() []string { return []string{"covtype", "power", "intrusion", "drift"} }

// ByName generates a named dataset at cardinality n with the given seed.
// Name matching is case-insensitive on the keys of PaperSizes.
func ByName(name string, n int, seed int64) (Dataset, error) {
	switch name {
	case "covtype", "Covtype":
		return Covtype(n, seed), nil
	case "power", "Power":
		return Power(n, seed), nil
	case "intrusion", "Intrusion":
		return Intrusion(n, seed), nil
	case "drift", "Drift":
		return Drift(n, seed), nil
	}
	valid := Names()
	sort.Strings(valid)
	return Dataset{}, fmt.Errorf("datagen: unknown dataset %q (valid: %v)", name, valid)
}
