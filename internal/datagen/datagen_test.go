package datagen

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func TestByNameAndShapes(t *testing.T) {
	for _, name := range Names() {
		ds, err := ByName(name, 500, 7)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if ds.N() != 500 {
			t.Errorf("%s: N = %d, want 500", name, ds.N())
		}
		if ds.Dim != PaperDims[name] {
			t.Errorf("%s: dim = %d, want %d (Table 3)", name, ds.Dim, PaperDims[name])
		}
		for i, p := range ds.Points {
			if len(p) != ds.Dim {
				t.Fatalf("%s: point %d has dim %d", name, i, len(p))
			}
			if !p.IsFinite() {
				t.Fatalf("%s: point %d not finite: %v", name, i, p)
			}
		}
	}
	if _, err := ByName("nope", 10, 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestPaperSizesMatchTable3(t *testing.T) {
	want := map[string]int{
		"covtype": 581012, "power": 2049280, "intrusion": 494021, "drift": 200000,
	}
	for name, n := range want {
		if PaperSizes[name] != n {
			t.Errorf("PaperSizes[%s] = %d, want %d", name, PaperSizes[name], n)
		}
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	for _, name := range Names() {
		a, _ := ByName(name, 200, 42)
		b, _ := ByName(name, 200, 42)
		for i := range a.Points {
			if !a.Points[i].Equal(b.Points[i]) {
				t.Fatalf("%s: point %d differs across identical seeds", name, i)
			}
		}
		c, _ := ByName(name, 200, 43)
		same := true
		for i := range a.Points {
			if !a.Points[i].Equal(c.Points[i]) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("%s: different seeds gave identical data", name)
		}
	}
}

func TestCovtypeIsIntegral(t *testing.T) {
	ds := Covtype(300, 1)
	for _, p := range ds.Points {
		for _, v := range p {
			if v != math.Trunc(v) {
				t.Fatalf("covtype attribute %v not integral", v)
			}
		}
	}
}

// TestIntrusionSkew verifies the structural property the Intrusion
// experiments rely on: the overwhelming majority of the mass lies in a
// small region (the bulk clusters) and a small fraction is far away.
func TestIntrusionSkew(t *testing.T) {
	ds := Intrusion(5000, 2)
	// Bulk clusters live in [0,100]^d (+noise); attacks near up-to-6000
	// coordinates. Classify by norm of first coordinates.
	far := 0
	for _, p := range ds.Points {
		if math.Abs(p[0]) > 1000 || math.Abs(p[1]) > 1000 {
			far++
		}
	}
	frac := float64(far) / float64(ds.N())
	if frac > 0.15 {
		t.Fatalf("attack fraction %.3f too high; want rare far clusters", frac)
	}
}

// TestMixtureClusterable: k-means++ on a generated mixture should achieve a
// far lower cost with the true k than with k=1 — i.e. the data actually has
// cluster structure.
func TestMixtureClusterable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mix := RandomMixture(rng, 5, 10, 1000, 5, 10, 0)
	pts := geom.Wrap(mix.SampleN(rng, 2000))
	k5, _ := kmeans.Run(rng, pts, 5, kmeans.Options{Runs: 3, LloydIters: 10})
	k1, _ := kmeans.Run(rng, pts, 1, kmeans.Options{Runs: 1, LloydIters: 5})
	c5 := kmeans.Cost(pts, k5)
	c1 := kmeans.Cost(pts, k1)
	if c5 > c1/5 {
		t.Fatalf("mixture not clusterable: k=5 cost %v vs k=1 cost %v", c5, c1)
	}
}

func TestMixtureWeightsRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := &Mixture{
		Centers: []geom.Point{{0}, {1000}},
		Sds:     []float64{0.1, 0.1},
		Weights: []float64{0.9, 0.1},
	}
	nearHeavy := 0
	const n = 5000
	for i := 0; i < n; i++ {
		p := m.Sample(rng)
		if math.Abs(p[0]) < 500 {
			nearHeavy++
		}
	}
	frac := float64(nearHeavy) / n
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("heavy cluster fraction %.3f, want ~0.9", frac)
	}
}

func TestRBFDriftActuallyDrifts(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewRBFDrift(rng, 5, 4, 100, 1, 2, 1.0, 10)
	before := g.Centers()
	_ = g.Take(5 * 10 * 20) // 20 steps
	after := g.Centers()
	moved := 0.0
	for i := range before {
		moved += geom.Dist(before[i], after[i])
	}
	if moved < 10 {
		t.Fatalf("centers moved only %.2f total; drift not happening", moved)
	}
}

func TestRBFDriftStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewRBFDrift(rng, 3, 3, 50, 0.5, 1, 5.0, 5)
	_ = g.Take(3 * 5 * 100) // lots of steps and bounces
	for _, c := range g.Centers() {
		for _, v := range c {
			if v < -1 || v > 51 {
				t.Fatalf("center coordinate %v escaped [0,50]", v)
			}
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := []geom.Point{{1}, {2}, {3}, {4}, {5}}
	orig := map[float64]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	Shuffle(rng, pts)
	if len(pts) != 5 {
		t.Fatal("shuffle changed length")
	}
	for _, p := range pts {
		if !orig[p[0]] {
			t.Fatalf("shuffle invented point %v", p)
		}
		delete(orig, p[0])
	}
}

func TestLoadCSV(t *testing.T) {
	in := "h1,h2\n1.5,2.5\n3,4\nbad,5\n6,7\n"
	pts, err := LoadCSV(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("got %d points, want 3 (header and bad row skipped)", len(pts))
	}
	if !pts[0].Equal(geom.Point{1.5, 2.5}) {
		t.Fatalf("first point %v", pts[0])
	}
	if _, err := LoadCSV(strings.NewReader(in), false); err == nil {
		t.Fatal("expected error in strict mode")
	}
}

func TestLoadCSVDimMismatch(t *testing.T) {
	in := "1,2\n3,4,5\n"
	if _, err := LoadCSV(strings.NewReader(in), false); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	pts, err := LoadCSV(strings.NewReader(in), true)
	if err != nil || len(pts) != 1 {
		t.Fatalf("lenient mode: %v %v", pts, err)
	}
}

func TestLoadCSVFileMissing(t *testing.T) {
	if _, err := LoadCSVFile("/nonexistent/path.csv", true); err == nil {
		t.Fatal("expected error for missing file")
	}
}
