package datagen

import (
	"strings"
	"testing"
)

// FuzzLoadCSV feeds arbitrary text to the CSV point loader: it must never
// panic, and in lenient mode every record it does accept must be a
// finite-valued point of consistent dimension.
func FuzzLoadCSV(f *testing.F) {
	f.Add("1,2\n3,4\n")
	f.Add("h1,h2\n1.5,-2.5e3\n")
	f.Add("")
	f.Add("NaN,Inf\n1,2\n")
	f.Add("1\n1,2\n1,2,3\n")
	f.Add("\"quoted\",2\n")
	f.Add(",,,\n")

	f.Fuzz(func(t *testing.T, data string) {
		pts, err := LoadCSV(strings.NewReader(data), true)
		if err != nil {
			return // malformed CSV structure is allowed to error
		}
		dim := -1
		for i, p := range pts {
			if dim == -1 {
				dim = len(p)
			}
			if len(p) != dim {
				t.Fatalf("record %d has dim %d, others %d", i, len(p), dim)
			}
		}
		// Strict mode must never return more points than lenient mode.
		strict, err := LoadCSV(strings.NewReader(data), false)
		if err == nil && len(strict) != len(pts) {
			t.Fatalf("strict accepted %d records, lenient %d", len(strict), len(pts))
		}
	})
}
