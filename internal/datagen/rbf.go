package datagen

import (
	"math"
	"math/rand"

	"streamkm/internal/geom"
)

// RBFDrift is an MOA-style Radial Basis Function stream generator with
// drifting centers — the recipe behind the paper's Drift dataset (Section
// 5.1, following Barddal et al.): k centers move with a fixed speed in a
// random direction; at every time step each center emits PointsPerStep
// points from an isotropic Gaussian with that center's standard deviation.
//
// Unlike the static datasets, RBF streams are not shuffled: their point is
// precisely that the distribution evolves over time.
type RBFDrift struct {
	rng           *rand.Rand
	centers       []geom.Point
	velocity      []geom.Point
	sds           []float64
	box           float64
	PointsPerStep int

	buf []geom.Point // points generated for the current step, consumed by Next
}

// NewRBFDrift creates a drifting generator of k clusters in d dimensions.
// Centers start uniform in [0, box]^d with standard deviations uniform in
// [sdMin, sdMax]; each center moves `speed` units per step in its own fixed
// random direction, bouncing off the [0, box] walls.
func NewRBFDrift(rng *rand.Rand, k, d int, box, sdMin, sdMax, speed float64, pointsPerStep int) *RBFDrift {
	g := &RBFDrift{
		rng:           rng,
		centers:       make([]geom.Point, k),
		velocity:      make([]geom.Point, k),
		sds:           make([]float64, k),
		PointsPerStep: pointsPerStep,
	}
	for i := 0; i < k; i++ {
		c := make(geom.Point, d)
		v := make(geom.Point, d)
		var norm float64
		for j := range c {
			c[j] = rng.Float64() * box
			v[j] = rng.NormFloat64()
			norm += v[j] * v[j]
		}
		if norm > 0 {
			v.Scale(speed / math.Sqrt(norm))
		}
		g.centers[i] = c
		g.velocity[i] = v
		g.sds[i] = sdMin + rng.Float64()*(sdMax-sdMin)
	}
	g.box = box
	return g
}

// step advances every center one tick and refills the buffer with
// PointsPerStep points per center, in randomized cluster order.
func (g *RBFDrift) step() {
	for i, c := range g.centers {
		v := g.velocity[i]
		for j := range c {
			c[j] += v[j]
			if c[j] < 0 {
				c[j] = -c[j]
				v[j] = -v[j]
			} else if c[j] > g.box {
				c[j] = 2*g.box - c[j]
				v[j] = -v[j]
			}
		}
	}
	g.buf = g.buf[:0]
	for i, c := range g.centers {
		for p := 0; p < g.PointsPerStep; p++ {
			q := make(geom.Point, len(c))
			for j := range q {
				q[j] = c[j] + g.rng.NormFloat64()*g.sds[i]
			}
			g.buf = append(g.buf, q)
		}
	}
	g.rng.Shuffle(len(g.buf), func(a, b int) { g.buf[a], g.buf[b] = g.buf[b], g.buf[a] })
}

// Next returns the next point of the evolving stream.
func (g *RBFDrift) Next() geom.Point {
	if len(g.buf) == 0 {
		g.step()
	}
	p := g.buf[len(g.buf)-1]
	g.buf = g.buf[:len(g.buf)-1]
	return p
}

// Take materializes the next n points of the stream.
func (g *RBFDrift) Take(n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Centers returns a snapshot (copies) of the current drifting centers.
func (g *RBFDrift) Centers() []geom.Point {
	out := make([]geom.Point, len(g.centers))
	for i, c := range g.centers {
		out[i] = c.Clone()
	}
	return out
}
