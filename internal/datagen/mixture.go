// Package datagen provides the dataset substrate for the paper's
// experiments (Table 3). The original UCI files (Covtype, Power, Intrusion)
// are not redistributable/offline-available, so this package generates
// seeded synthetic stand-ins with the same cardinality, dimensionality and
// the structural properties each experiment depends on (cluster count,
// weight skew, value ranges), plus the paper's own semi-synthetic Drift
// recipe: an MOA-style RBF generator with drifting centers.
//
// Every generator is deterministic given a seed, so experiments are
// reproducible. A CSV loader is provided for running against the real UCI
// files when they are available.
package datagen

import (
	"math"
	"math/rand"

	"streamkm/internal/geom"
)

// Mixture is a finite Gaussian mixture with per-cluster standard deviations
// and sampling weights. It is the workhorse behind the Covtype-, Power- and
// Intrusion-shaped datasets.
type Mixture struct {
	Centers []geom.Point
	Sds     []float64 // per-cluster, isotropic
	Weights []float64 // sampling probabilities (normalized lazily)
	// Round quantizes every attribute to an integer, mimicking datasets
	// (like Covtype) whose attributes are integral.
	Round bool

	cum []float64
}

// normalize builds the cumulative weight table.
func (m *Mixture) normalize() {
	if len(m.cum) == len(m.Weights) {
		return
	}
	var tot float64
	for _, w := range m.Weights {
		tot += w
	}
	m.cum = make([]float64, len(m.Weights))
	var acc float64
	for i, w := range m.Weights {
		acc += w / tot
		m.cum[i] = acc
	}
}

// Sample draws one point from the mixture.
func (m *Mixture) Sample(rng *rand.Rand) geom.Point {
	m.normalize()
	u := rng.Float64()
	idx := len(m.cum) - 1
	for i, c := range m.cum {
		if u <= c {
			idx = i
			break
		}
	}
	c := m.Centers[idx]
	sd := m.Sds[idx]
	p := make(geom.Point, len(c))
	for j := range p {
		p[j] = c[j] + rng.NormFloat64()*sd
		if m.Round {
			p[j] = math.Round(p[j])
		}
	}
	return p
}

// SampleN draws n points.
func (m *Mixture) SampleN(rng *rand.Rand, n int) []geom.Point {
	out := make([]geom.Point, n)
	for i := range out {
		out[i] = m.Sample(rng)
	}
	return out
}

// RandomMixture builds a mixture of k clusters in d dimensions with centers
// uniform in [0, box]^d, standard deviations uniform in [sdMin, sdMax], and
// cluster weights drawn as Uniform^skew — skew 0 gives equal weights, large
// skew concentrates almost all mass in a few clusters (the Intrusion
// pathology).
func RandomMixture(rng *rand.Rand, k, d int, box, sdMin, sdMax, skew float64) *Mixture {
	m := &Mixture{
		Centers: make([]geom.Point, k),
		Sds:     make([]float64, k),
		Weights: make([]float64, k),
	}
	for i := 0; i < k; i++ {
		c := make(geom.Point, d)
		for j := range c {
			c[j] = rng.Float64() * box
		}
		m.Centers[i] = c
		m.Sds[i] = sdMin + rng.Float64()*(sdMax-sdMin)
		m.Weights[i] = math.Pow(rng.Float64(), skew) + 1e-6
	}
	return m
}

// Shuffle permutes pts in place (the paper shuffles each static dataset
// before streaming it, Section 5.1).
func Shuffle(rng *rand.Rand, pts []geom.Point) {
	rng.Shuffle(len(pts), func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
}
