package datagen

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"

	"streamkm/internal/geom"
)

// LoadCSV reads numeric points from CSV data, one point per record. Records
// whose fields cannot all be parsed as floats are skipped when skipBad is
// true (useful for header rows and the UCI files' occasional '?' missing
// values, which the paper drops); otherwise the first bad record aborts
// with an error. All points must share the dimensionality of the first
// parsed record.
func LoadCSV(r io.Reader, skipBad bool) ([]geom.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var out []geom.Point
	dim := -1
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("datagen: csv read: %w", err)
		}
		line++
		p := make(geom.Point, len(rec))
		ok := true
		for i, f := range rec {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				ok = false
				if !skipBad {
					return nil, fmt.Errorf("datagen: line %d field %d: %w", line, i+1, err)
				}
				break
			}
			p[i] = v
		}
		if !ok {
			continue
		}
		if dim == -1 {
			dim = len(p)
		}
		if len(p) != dim {
			if skipBad {
				continue
			}
			return nil, fmt.Errorf("datagen: line %d has %d fields, want %d", line, len(p), dim)
		}
		out = append(out, p)
	}
	return out, nil
}

// LoadCSVFile reads numeric points from a CSV file on disk.
func LoadCSVFile(path string, skipBad bool) ([]geom.Point, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCSV(f, skipBad)
}
