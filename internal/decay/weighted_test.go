package decay

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
)

func TestAddWeightedScalesInsertionWeight(t *testing.T) {
	c := newDecayed(t, 0.01, 10)
	c.AddWeighted(geom.Weighted{P: geom.Point{1, 1}, W: 5})
	union := c.Driver().CoresetUnion()
	if len(union) != 1 {
		t.Fatalf("union size %d", len(union))
	}
	// First point: epoch weight 1, so stored weight = 5.
	if math.Abs(union[0].W-5) > 1e-12 {
		t.Fatalf("stored weight %v, want 5", union[0].W)
	}
	// Second point arrives one tick later: epoch weight e^lambda.
	c.AddWeighted(geom.Weighted{P: geom.Point{2, 2}, W: 2})
	union = c.Driver().CoresetUnion()
	want := 2 * math.Exp(0.01)
	if math.Abs(union[1].W-want) > 1e-12 {
		t.Fatalf("second stored weight %v, want %v", union[1].W, want)
	}
}

func TestAddWeightedEpochRescale(t *testing.T) {
	// Strong decay: epochs trigger; weighted adds must stay finite and the
	// relative ordering (newer heavier) must persist.
	c := newDecayed(t, 2.0, 10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 807; i++ { // not a multiple of m: partial bucket non-empty
		c.AddWeighted(geom.Weighted{
			P: geom.Point{rng.NormFloat64(), rng.NormFloat64()},
			W: 1 + rng.Float64(),
		})
	}
	for _, wp := range c.Driver().CoresetUnion() {
		if math.IsNaN(wp.W) || math.IsInf(wp.W, 0) || wp.W < 0 {
			t.Fatalf("invalid weight %v", wp.W)
		}
	}
	// The partial bucket is chronological: each point's stored weight grows
	// by e^lambda per tick (modulo the 1..2 random multiplier), so newer
	// entries must outweigh older ones by at least e^lambda/2 > 3.
	partial := c.Driver().Partial()
	if len(partial) < 2 {
		t.Fatalf("expected a non-empty partial bucket, got %d", len(partial))
	}
	for i := 1; i < len(partial); i++ {
		if partial[i].W < partial[i-1].W {
			t.Fatalf("newer partial point lighter than older: %v after %v",
				partial[i].W, partial[i-1].W)
		}
	}
}
