package decay

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func ccFactory(k, m int) func(lane int, seed int64) *core.Driver {
	return func(_ int, seed int64) *core.Driver {
		rng := rand.New(rand.NewSource(seed))
		cc := core.NewCC(2, m, coreset.KMeansPP{}, rng)
		return core.NewDriver(cc, k, m, rng, kmeans.FastOptions())
	}
}

func newShardedT(t testing.TB, p int, lambda float64) *Sharded {
	t.Helper()
	sh, err := NewSharded(p, 2, lambda, 1, kmeans.FastOptions(), ccFactory(2, 25))
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func unitBatch(pts []geom.Point) []geom.Weighted {
	out := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, 2, 0.01, 1, kmeans.FastOptions(), ccFactory(2, 25)); err == nil {
		t.Error("accepted zero lanes")
	}
	if _, err := NewSharded(2, 0, 0.01, 1, kmeans.FastOptions(), ccFactory(2, 25)); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewSharded(2, 2, 0.01, 1, kmeans.FastOptions(),
		func(int, int64) *core.Driver { return nil }); err == nil {
		t.Error("accepted nil lane driver")
	}
}

// TestShardedWeightMatchesSingleLane: the sharded pipeline's merged
// coreset carries the same total decayed weight as a single-lane replay
// of the identical arrival sequence — the union-of-coresets invariant,
// measured on the quantity decay actually controls.
func TestShardedWeightMatchesSingleLane(t *testing.T) {
	lambda := math.Ln2 / 300
	multi := newShardedT(t, 3, lambda)
	single := newShardedT(t, 1, lambda)
	rng := rand.New(rand.NewSource(5))
	for b := 0; b < 30; b++ {
		pts := make([]geom.Point, 40)
		for i := range pts {
			pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64() + float64(10*(b%2))}
		}
		wps := unitBatch(pts)
		multi.AddBatch(wps)
		single.AddBatch(wps)
	}
	if multi.Count() != single.Count() || multi.Count() != 1200 {
		t.Fatalf("counts %d / %d, want 1200", multi.Count(), single.Count())
	}
	sum := func(cs []geom.Weighted) float64 {
		total := 0.0
		for _, wp := range cs {
			total += wp.W
		}
		return total
	}
	wm, ws := sum(multi.Coreset()), sum(single.Coreset())
	if d := math.Abs(wm-ws) / math.Max(wm, ws); d > 1e-6 {
		t.Fatalf("total decayed weight diverges: sharded %v, single %v (rel %v)", wm, ws, d)
	}
}

// TestShardedRecentPointsDominate mirrors the single-lane drift test
// through the sharded path: after a shift, centers follow the new mass.
func TestShardedRecentPointsDominate(t *testing.T) {
	sh := newShardedT(t, 4, math.Ln2/200)
	rng := rand.New(rand.NewSource(2))
	batch := func(cx, cy float64, n int) []geom.Weighted {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
		}
		return unitBatch(pts)
	}
	for i := 0; i < 40; i++ {
		sh.AddBatch(batch(0, 0, 100))
	}
	for i := 0; i < 12; i++ {
		sh.AddBatch(batch(100, 100, 100))
	}
	centers := sh.Centers()
	d, _ := geom.MinSqDist(geom.Point{100, 100}, centers)
	if d > 25 {
		t.Fatalf("no center near the recent mass (sqdist %v): %v", d, centers)
	}
}

// TestShardedRescaleAcrossThreshold: a fast decay rate pushes raw
// arrival weights past the rescale threshold many times over; the lanes
// re-reference independently and the merged coreset must still be
// finite, positive and dominated by the newest points.
func TestShardedRescaleAcrossThreshold(t *testing.T) {
	sh := newShardedT(t, 3, 1) // weight doubles ~every 0.7 arrivals: rescale storms
	rng := rand.New(rand.NewSource(3))
	for b := 0; b < 50; b++ {
		pts := make([]geom.Point, 30)
		for i := range pts {
			pts[i] = geom.Point{float64(b) + rng.NormFloat64()*0.01, 0}
		}
		sh.AddBatch(unitBatch(pts))
	}
	cs := sh.Coreset()
	if len(cs) == 0 {
		t.Fatal("empty coreset after rescale storm")
	}
	total := 0.0
	for _, wp := range cs {
		if math.IsInf(wp.W, 0) || math.IsNaN(wp.W) || wp.W < 0 {
			t.Fatalf("non-finite or negative merged weight %v", wp.W)
		}
		total += wp.W
	}
	if total <= 0 {
		t.Fatalf("total merged weight %v, want > 0", total)
	}
	centers := sh.Centers()
	d, _ := geom.MinSqDist(geom.Point{49, 0}, centers)
	if d > 4 {
		t.Fatalf("centers ignore the newest arrivals (sqdist %v): %v", d, centers)
	}
}

// TestShardedWallClock: under AddBatchWall, age is wall time, not
// arrival counts — a huge old cohort observed long before a small new
// one carries ~no weight.
func TestShardedWallClock(t *testing.T) {
	sh := newShardedT(t, 3, math.Ln2/10) // half-life 10 seconds
	rng := rand.New(rand.NewSource(4))
	batch := func(cx float64, n int) []geom.Weighted {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.NormFloat64(), 0}
		}
		return unitBatch(pts)
	}
	for i := 0; i < 20; i++ {
		sh.AddBatchWall(0, batch(0, 100))
	}
	for i := 0; i < 4; i++ {
		sh.AddBatchWall(1000, batch(500, 50)) // 100 half-lives later
	}
	if sh.Count() != 2200 {
		t.Fatalf("count %d, want 2200 (arrival indices still consumed)", sh.Count())
	}
	centers := sh.Centers()
	d, _ := geom.MinSqDist(geom.Point{500, 0}, centers)
	if d > 25 {
		t.Fatalf("wall-clock decay did not bury the old cohort (sqdist %v): %v", d, centers)
	}
}

// TestShardedQuiesceRoundTrip: a quiesced cut reassembles via
// NewShardedFromShards with counts and query behavior intact, and a
// lane whose rate disagrees with the stream's is rejected.
func TestShardedQuiesceRoundTrip(t *testing.T) {
	lambda := math.Ln2 / 150
	sh := newShardedT(t, 3, lambda)
	rng := rand.New(rand.NewSource(6))
	for b := 0; b < 10; b++ {
		pts := make([]geom.Point, 35)
		for i := range pts {
			pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		sh.AddBatch(unitBatch(pts))
	}
	var rebuilt *Sharded
	err := sh.Quiesce(func(shards []*Shard, clock, rr, count int64) error {
		if count != 350 || clock != 350 {
			t.Fatalf("quiesce cursors clock=%d count=%d, want 350/350", clock, count)
		}
		var err error
		rebuilt, err = NewShardedFromShards(2, shards[0].Lambda(), 1, kmeans.FastOptions(),
			shards, clock, rr, count)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Count() != 350 || rebuilt.NumLanes() != 3 {
		t.Fatalf("rebuilt count %d lanes %d", rebuilt.Count(), rebuilt.NumLanes())
	}
	if got := len(rebuilt.Centers()); got != 2 {
		t.Fatalf("%d centers, want 2", got)
	}

	// Lane/stream rate mismatch is refused.
	err = sh.Quiesce(func(shards []*Shard, clock, rr, count int64) error {
		_, err := NewShardedFromShards(2, lambda*2, 1, kmeans.FastOptions(), shards, clock, rr, count)
		return err
	})
	if err == nil {
		t.Fatal("NewShardedFromShards accepted a lane rate mismatch")
	}
}

// TestShardedConcurrentProducers hammers the sequencing path from
// several goroutines while querying; run with -race. Drained, the
// applied count equals every batch acked.
func TestShardedConcurrentProducers(t *testing.T) {
	sh := newShardedT(t, 4, math.Ln2/500)
	const producers = 4
	const batches = 25
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + p)))
			for b := 0; b < batches; b++ {
				pts := make([]geom.Point, 20)
				for i := range pts {
					pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
				}
				sh.AddBatch(unitBatch(pts))
			}
		}(p)
	}
	for i := 0; i < 10; i++ {
		_ = sh.Centers()
	}
	wg.Wait()
	if want := int64(producers * batches * 20); sh.Count() != want || sh.Clock() != want {
		t.Fatalf("count %d clock %d, want %d", sh.Count(), sh.Clock(), want)
	}
}

func TestShardedName(t *testing.T) {
	sh := newShardedT(t, 3, 0.01)
	if name := sh.Name(); !strings.HasPrefix(name, "Decay[3x") {
		t.Fatalf("Name() = %q", name)
	}
}
