package decay

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newDecayed(t *testing.T, lambda float64, m int) *Clusterer {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	cc := core.NewCC(2, m, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 2, m, rng, kmeans.FastOptions())
	return New(d, lambda)
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cc := core.NewCC(2, 10, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 2, 10, rng, kmeans.FastOptions())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for lambda <= 0")
		}
	}()
	New(d, 0)
}

func TestHalfLife(t *testing.T) {
	c := newDecayed(t, math.Ln2/100, 20)
	if hl := c.HalfLife(); math.Abs(hl-100) > 1e-9 {
		t.Fatalf("HalfLife = %v, want 100", hl)
	}
}

// TestRecentPointsDominate is the concept-drift property the extension
// exists for: after a distribution shift, a decayed clusterer's centers
// should follow the new distribution even when the old one emitted far
// more points.
func TestRecentPointsDominate(t *testing.T) {
	c := newDecayed(t, math.Ln2/200, 25) // half-life 200 points
	rng := rand.New(rand.NewSource(2))
	// 4000 points at the old location...
	for i := 0; i < 4000; i++ {
		c.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	// ...then only 1200 at the new location (3 half-lives after the shift,
	// old weight is ~6% more than 1/16 of new weight mass).
	for i := 0; i < 1200; i++ {
		c.Add(geom.Point{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
	}
	centers := c.Centers()
	d, _ := geom.MinSqDist(geom.Point{100, 100}, centers)
	if d > 25 {
		t.Fatalf("no center near the recent mass (sqdist %v): %v", d, centers)
	}
	// The decayed weight of the recent half must dominate the coreset.
	union := c.Driver().CoresetUnion()
	var recent, old float64
	for _, wp := range union {
		if wp.P[0] > 50 {
			recent += wp.W
		} else {
			old += wp.W
		}
	}
	if recent < 5*old {
		t.Fatalf("recent weight %v does not dominate old %v", recent, old)
	}
}

// TestUndecayedContrast: without decay the old mass keeps a center pair on
// it; this contrast pins down that the behaviour above comes from decay.
func TestUndecayedContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cc := core.NewCC(2, 25, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 2, 25, rng, kmeans.FastOptions())
	gen := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		d.Add(geom.Point{gen.NormFloat64(), gen.NormFloat64()})
	}
	for i := 0; i < 1200; i++ {
		d.Add(geom.Point{100 + gen.NormFloat64(), 100 + gen.NormFloat64()})
	}
	union := d.CoresetUnion()
	var recent, old float64
	for _, wp := range union {
		if wp.P[0] > 50 {
			recent += wp.W
		} else {
			old += wp.W
		}
	}
	if old < 2*recent {
		t.Fatalf("undecayed: old weight %v should dominate recent %v", old, recent)
	}
}

// TestEpochRescaleKeepsRelativeWeights drives the clusterer across several
// overflow epochs and verifies that relative weights (new vs old) stay
// consistent with pure exponential decay.
func TestEpochRescaleKeepsRelativeWeights(t *testing.T) {
	// Large lambda forces an epoch every ~575 points (e^575 > 1e250).
	lambda := 1.0
	c := newDecayed(t, lambda, 10)
	rng := rand.New(rand.NewSource(4))
	const n = 2000 // > 3 epochs
	for i := 0; i < n; i++ {
		c.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	union := c.Driver().CoresetUnion()
	var total float64
	var maxW float64
	for _, wp := range union {
		if wp.W < 0 || math.IsInf(wp.W, 0) || math.IsNaN(wp.W) {
			t.Fatalf("invalid weight %v after epochs", wp.W)
		}
		total += wp.W
		if wp.W > maxW {
			maxW = wp.W
		}
	}
	if total <= 0 || math.IsInf(total, 0) {
		t.Fatalf("total weight %v invalid", total)
	}
	// With lambda=1 per point, essentially all weight sits on the most
	// recent few points: max weight should carry most of the total.
	if maxW < total/10 {
		t.Fatalf("weight distribution inconsistent with strong decay: max %v of %v", maxW, total)
	}
}

// TestWorksWithCTAndRCC: decay is structure-agnostic across the scalers.
func TestWorksWithCTAndRCC(t *testing.T) {
	for _, mk := range []func(*rand.Rand) core.Structure{
		func(r *rand.Rand) core.Structure { return core.NewCT(2, 20, coreset.KMeansPP{}, r) },
		func(r *rand.Rand) core.Structure { return core.NewRCC(1, 20, coreset.KMeansPP{}, r) },
	} {
		rng := rand.New(rand.NewSource(5))
		d := core.NewDriver(mk(rng), 2, 20, rng, kmeans.FastOptions())
		c := New(d, 0.5) // strong decay with frequent epochs
		gen := rand.New(rand.NewSource(6))
		for i := 0; i < 1500; i++ {
			c.Add(geom.Point{gen.NormFloat64(), gen.NormFloat64()})
		}
		centers := c.Centers()
		if len(centers) == 0 {
			t.Fatalf("%s: no centers", c.Name())
		}
		for _, ctr := range centers {
			if !ctr.IsFinite() {
				t.Fatalf("%s: non-finite center %v", c.Name(), ctr)
			}
		}
	}
}

func TestName(t *testing.T) {
	c := newDecayed(t, 0.1, 10)
	if c.Name() != "Decay(CC)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.PointsStored() != 0 {
		t.Fatalf("PointsStored = %d before any point", c.PointsStored())
	}
}
