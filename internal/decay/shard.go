package decay

import (
	"fmt"
	"math"

	"streamkm/internal/core"
	"streamkm/internal/geom"
)

// maxRescaleExp is the largest weight exponent a shard tolerates before
// renormalizing: ln(rescaleThreshold), so the per-point check in
// AddBatchAt matches the single-stream Clusterer's epoch trigger.
var maxRescaleExp = math.Log(rescaleThreshold)

// Shard is one lane of a sharded forward-decay clusterer. Unlike the
// single-stream Clusterer — whose implicit logical clock advances by one
// per arrival it sees — a Shard stores weights relative to an explicit
// reference time refT: the point arriving at global time t is inserted
// with weight exp(lambda*(t-refT)). Shards of the same stream share the
// global timeline but renormalize (shift refT) independently, so a
// query-time merge rescales every shard's coreset to a common reference
// before unioning — a uniform per-shard scaling, which k-means cost is
// invariant under.
//
// Not safe for concurrent use; the sharded pipeline wraps each Shard in
// a lane lock.
type Shard struct {
	driver *core.Driver
	lambda float64
	refT   float64 // global time at which the stored-weight scale is 1
}

// NewShard wraps driver as one decay lane with rate lambda (> 0) and
// reference time refT. The driver's structure must implement
// WeightScaler, as for New.
func NewShard(driver *core.Driver, lambda, refT float64) (*Shard, error) {
	if lambda <= 0 || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
		return nil, fmt.Errorf("decay: shard lambda must be positive and finite, got %v", lambda)
	}
	if math.IsInf(refT, 0) || math.IsNaN(refT) {
		return nil, fmt.Errorf("decay: shard reference time %v is not finite", refT)
	}
	if _, ok := driver.Structure().(WeightScaler); !ok {
		return nil, fmt.Errorf("decay: driver structure %s does not support weight scaling", driver.Name())
	}
	return &Shard{driver: driver, lambda: lambda, refT: refT}, nil
}

// Driver exposes the wrapped driver (persistence and tests).
func (s *Shard) Driver() *core.Driver { return s.driver }

// RefT returns the shard's current reference time.
func (s *Shard) RefT() float64 { return s.refT }

// Lambda returns the decay rate.
func (s *Shard) Lambda() float64 { return s.lambda }

// advanceRef shifts the reference time to t, scaling every stored weight
// by exp(-lambda*(t-refT)) in steps small enough that no step's factor
// underflows to zero while any stored weight is still representable.
// After four full steps the cumulative factor is below 1e-1000, at which
// point every stored float64 weight has underflowed to exact zero and
// the remaining factor is a no-op — so the loop is bounded even after
// wall-clock gaps of years against second-scale half-lives.
func (s *Shard) advanceRef(t float64) {
	e := s.lambda * (t - s.refT)
	for i := 0; i < 4 && e > 0; i++ {
		step := math.Min(e, maxRescaleExp)
		factor := math.Exp(-step)
		s.driver.Structure().(WeightScaler).ScaleWeights(factor)
		s.driver.ScalePartialWeights(factor)
		e -= step
	}
	s.refT = t
}

// AddBatchAt inserts a batch of weighted points arriving at global times
// t0, t0+step, t0+2*step, ... — step 1 for arrival-count decay (each
// point one tick), step 0 for wall-clock decay (the whole batch shares
// one timestamp). Each point lands with weight wp.W * exp(lambda*(t -
// refT)), renormalizing mid-batch whenever the scale approaches float64
// overflow, exactly like the single-stream Clusterer's epochs.
func (s *Shard) AddBatchAt(t0, step float64, wps []geom.Weighted) {
	if len(wps) == 0 {
		return
	}
	t := t0
	if s.lambda*(t-s.refT) > maxRescaleExp {
		s.advanceRef(t)
	}
	w := math.Exp(s.lambda * (t - s.refT))
	growth := math.Exp(s.lambda * step)
	for _, wp := range wps {
		if w > rescaleThreshold {
			s.advanceRef(t)
			w = 1
		}
		s.driver.AddWeighted(geom.Weighted{P: wp.P, W: wp.W * w})
		w *= growth
		t += step
	}
}

// Shard converts a restored single-stream Clusterer into lane 0 of a
// sharded pipeline, for upgrading legacy single-lock snapshots. nextT is
// the global arrival time of the next arriving point (count+1 in
// arrival-count mode): the legacy wrapper would insert that point with
// weight curW, and exp(lambda*(nextT-refT)) = curW fixes the reference
// time that makes the shard continue the identical weight timeline.
func (c *Clusterer) Shard(nextT float64) (*Shard, error) {
	return NewShard(c.driver, c.lambda, nextT-math.Log(c.curW)/c.lambda)
}

// ScaledCoreset returns a copy of the shard's coreset with every weight
// rescaled from the shard's reference time to globalRef (the merge
// reference — the maximum refT across shards, so factors never exceed 1
// and can never overflow). Entries whose weights underflow to zero are
// dropped: they are more than ~1000 half-lives stale.
func (s *Shard) ScaledCoreset(globalRef float64) []geom.Weighted {
	factor := math.Exp(s.lambda * (s.refT - globalRef))
	return geom.AppendScaled(nil, s.driver.CoresetUnion(), factor)
}
