// Package decay adds time-decayed weighting to any coreset-based streaming
// clusterer, addressing the paper's first open question ("improved handling
// of concept drift, through the use of time-decaying weights", Section 6).
//
// The implementation uses forward decay (Cormode, Shkapenyuk, Srivastava,
// Xu 2009): the point arriving at time t is inserted with weight
// g(t) = exp(lambda * t). At query time, the weight of an age-(now - t)
// point relative to a fresh point is g(t)/g(now) = exp(-lambda*(now - t)) —
// exactly exponential decay — but no stored weight ever needs rescaling,
// because k-means centers are invariant under uniform scaling of all
// weights. The coreset tree, cache and recursive cache therefore work
// untouched: decayed weights flow through the standard merge-and-reduce.
//
// Stored weights grow as exp(lambda*t) and would overflow float64 around
// t*lambda ≈ 700. Renormalize epochs handle this: when the current scale
// exceeds a threshold, the driver rescales every stored weight by a
// constant factor (again cost-invariant), which touches each stored point
// once per ~600/lambda arrivals — amortized O(1).
package decay

import (
	"fmt"
	"math"

	"streamkm/internal/core"
	"streamkm/internal/geom"
)

// rescaleThreshold triggers an epoch rescale before exp overflows.
const rescaleThreshold = 1e250

// WeightScaler rescales every stored weight by a constant factor.
// Structures that hold weighted points implement it to support forward
// decay epochs. core.CT, core.CC and core.RCC all implement it.
type WeightScaler interface {
	ScaleWeights(factor float64)
}

// Clusterer wraps a driver-based streaming clusterer with forward
// exponential decay: recent points dominate queries with half-life
// ln(2)/lambda points.
type Clusterer struct {
	driver *core.Driver
	lambda float64
	growth float64 // exp(lambda), per-point weight growth
	curW   float64 // insertion weight of the next arriving point
}

// New wraps driver with forward decay rate lambda (> 0). A point's weight
// halves every ln(2)/lambda arrivals. The driver's structure must implement
// WeightScaler (CT, CC and RCC do).
func New(driver *core.Driver, lambda float64) *Clusterer {
	if lambda <= 0 {
		panic("decay: lambda must be > 0")
	}
	if _, ok := driver.Structure().(WeightScaler); !ok {
		panic("decay: driver structure does not support weight scaling")
	}
	return &Clusterer{driver: driver, lambda: lambda, growth: math.Exp(lambda), curW: 1}
}

// Add observes one stream point with forward-decay weight. The insertion
// weight grows by exp(lambda) per point and is tracked incrementally —
// never as exp(lambda*t), which would overflow long before any epoch.
func (c *Clusterer) Add(p geom.Point) {
	if c.curW > rescaleThreshold {
		// Epoch: divide all stored weights so the insertion weight returns
		// to 1. Uniform scaling leaves cluster centers unchanged; weights of
		// points older than ~1000 half-lives underflow to zero and their
		// coreset entries get compacted away on the next merge.
		factor := 1 / c.curW
		c.driver.Structure().(WeightScaler).ScaleWeights(factor)
		c.driver.ScalePartialWeights(factor)
		c.curW = 1
	}
	c.driver.AddWeighted(geom.Weighted{P: p, W: c.curW})
	c.curW *= c.growth
}

// AddWeighted observes a point carrying weight w — equivalent to w unit
// points arriving at the same instant, so the decayed insertion weight is
// w times the current epoch weight and time advances by one tick.
func (c *Clusterer) AddWeighted(wp geom.Weighted) {
	if c.curW > rescaleThreshold {
		factor := 1 / c.curW
		c.driver.Structure().(WeightScaler).ScaleWeights(factor)
		c.driver.ScalePartialWeights(factor)
		c.curW = 1
	}
	c.driver.AddWeighted(geom.Weighted{P: wp.P, W: wp.W * c.curW})
	c.curW *= c.growth
}

// Centers returns k cluster centers for the decayed stream.
func (c *Clusterer) Centers() []geom.Point { return c.driver.Centers() }

// Count returns the number of points observed so far (the wrapped
// driver's arrival counter; decay weights fade influence, not counts).
func (c *Clusterer) Count() int64 { return c.driver.Count() }

// PointsStored reports the wrapped driver's memory in points.
func (c *Clusterer) PointsStored() int { return c.driver.PointsStored() }

// Name identifies the algorithm in reports.
func (c *Clusterer) Name() string { return "Decay(" + c.driver.Name() + ")" }

// HalfLife returns the decay half-life in points.
func (c *Clusterer) HalfLife() float64 { return math.Ln2 / c.lambda }

// Driver exposes the wrapped driver (tests and persistence).
func (c *Clusterer) Driver() *core.Driver { return c.driver }

// State is the decay wrapper's own serializable state: the rate and the
// logical clock (the insertion weight of the next arriving point, which
// encodes the position inside the current renormalize epoch). The wrapped
// driver snapshots separately through internal/persist; together the two
// restore the decayed stream exactly.
type State struct {
	Lambda float64
	CurW   float64
}

// State captures the wrapper's serializable state.
func (c *Clusterer) State() State { return State{Lambda: c.lambda, CurW: c.curW} }

// RestoreState replaces the wrapper's rate and logical clock with the
// snapshot's. The state must satisfy ValidateState; disk input should be
// validated before calling.
func (c *Clusterer) RestoreState(s State) {
	c.lambda = s.Lambda
	c.growth = math.Exp(s.Lambda)
	c.curW = s.CurW
}

// ValidateState rejects wrapper state that could not have been produced
// by State: snapshots are untrusted disk input.
func ValidateState(s State) error {
	if s.Lambda <= 0 || math.IsInf(s.Lambda, 0) || math.IsNaN(s.Lambda) {
		return fmt.Errorf("decay: invalid lambda %v in snapshot", s.Lambda)
	}
	if s.CurW < 1 || math.IsInf(s.CurW, 0) || math.IsNaN(s.CurW) {
		// curW starts at 1 and is divided back to 1 on every epoch.
		return fmt.Errorf("decay: invalid epoch weight %v in snapshot", s.CurW)
	}
	return nil
}
