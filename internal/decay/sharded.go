package decay

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"streamkm/internal/core"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/parallel"
)

// Sharded is a forward-decay streaming clusterer over P parallel ingest
// lanes. The sequencing step (parallel.Lanes.Reserve) assigns each batch
// its global arrival span lock-free; the coreset insertion — the
// expensive part — then runs under a per-lane lock, so P producers
// proceed in parallel exactly as in the stationary sharded clusterer.
//
// Decay semantics are preserved exactly: the point with global arrival
// index i carries insertion weight exp(lambda*i) no matter which lane
// stores it (wall-clock mode substitutes seconds for indices). Lanes
// renormalize their stored scales independently; a query rescales every
// lane's coreset to the newest reference time before unioning — uniform
// per-lane scalings, under which the k-means objective is invariant — so
// the merged union is a coreset of the decayed stream by the same
// Observation 1 argument as the stationary case.
type Sharded struct {
	lanes  *parallel.Lanes[*Shard]
	k      int
	lambda float64

	qmu      sync.Mutex // guards rng at query time
	rng      *rand.Rand
	queryOpt kmeans.Options
}

// NewSharded builds a P-lane forward-decay clusterer with rate lambda.
// newDriver is called once per lane with the lane index and a
// lane-specific seed, as for parallel.NewSharded.
func NewSharded(p, k int, lambda float64, seed int64, queryOpt kmeans.Options,
	newDriver func(lane int, seed int64) *core.Driver) (*Sharded, error) {
	if p < 1 {
		return nil, fmt.Errorf("decay: need at least 1 lane, got %d", p)
	}
	if k < 1 {
		return nil, fmt.Errorf("decay: k must be >= 1, got %d", k)
	}
	shards := make([]*Shard, p)
	for i := range shards {
		drv := newDriver(i, seed+int64(i)*7919)
		if drv == nil {
			return nil, fmt.Errorf("decay: newDriver returned nil for lane %d", i)
		}
		sh, err := NewShard(drv, lambda, 0)
		if err != nil {
			return nil, err
		}
		shards[i] = sh
	}
	lanes, err := parallel.NewLanes(shards)
	if err != nil {
		return nil, err
	}
	return &Sharded{lanes: lanes, k: k, lambda: lambda,
		rng: rand.New(rand.NewSource(seed)), queryOpt: queryOpt}, nil
}

// NewShardedFromShards reassembles a Sharded around already-restored
// lanes — the persistence layer's entry point. clock, rr and count
// restore the sequencer cursors.
func NewShardedFromShards(k int, lambda float64, seed int64, queryOpt kmeans.Options,
	shards []*Shard, clock, rr, count int64) (*Sharded, error) {
	if k < 1 {
		return nil, fmt.Errorf("decay: k must be >= 1, got %d", k)
	}
	for i, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("decay: nil restored shard for lane %d", i)
		}
		if sh.lambda != lambda {
			return nil, fmt.Errorf("decay: lane %d rate %v disagrees with stream rate %v", i, sh.lambda, lambda)
		}
	}
	lanes, err := parallel.NewLanes(shards)
	if err != nil {
		return nil, err
	}
	if err := lanes.RestoreCursors(clock, rr, count); err != nil {
		return nil, err
	}
	return &Sharded{lanes: lanes, k: k, lambda: lambda,
		rng: rand.New(rand.NewSource(seed)), queryOpt: queryOpt}, nil
}

// AddBatch observes a batch under arrival-count decay: the batch's
// points take the next len(wps) global arrival indices as their decay
// times.
func (s *Sharded) AddBatch(wps []geom.Weighted) {
	if len(wps) == 0 {
		return
	}
	first, lane := s.lanes.Reserve(len(wps))
	s.lanes.Apply(lane, len(wps), func(sh *Shard) {
		sh.AddBatchAt(float64(first), 1, wps)
	})
}

// AddBatchWall observes a batch under wall-clock decay: every point in
// the batch shares the timestamp sec (seconds since the stream epoch,
// captured by the caller at sequencing time). Arrival indices are still
// consumed so Count keeps meaning total arrivals.
func (s *Sharded) AddBatchWall(sec float64, wps []geom.Weighted) {
	if len(wps) == 0 {
		return
	}
	_, lane := s.lanes.Reserve(len(wps))
	s.lanes.Apply(lane, len(wps), func(sh *Shard) {
		sh.AddBatchAt(sec, 0, wps)
	})
}

// Coreset gathers every lane's coreset — each lane locked only while its
// own summary is copied out — rescales them to the newest lane reference
// time, and returns the union: a coreset of the decayed stream.
func (s *Sharded) Coreset() []geom.Weighted {
	type cut struct {
		refT float64
		cs   []geom.Weighted
	}
	cuts := make([]cut, s.lanes.NumLanes())
	s.lanes.Each(func(i int, sh *Shard) {
		// Copy under the lane lock at the shard's own reference; the
		// cross-lane rescale happens outside any lock once the global
		// reference is known.
		cuts[i] = cut{refT: sh.RefT(), cs: sh.ScaledCoreset(sh.RefT())}
	})
	globalRef := math.Inf(-1)
	for _, c := range cuts {
		if c.refT > globalRef {
			globalRef = c.refT
		}
	}
	var union []geom.Weighted
	for _, c := range cuts {
		union = geom.AppendScaled(union, c.cs, math.Exp(s.lambda*(c.refT-globalRef)))
	}
	return union
}

// CoresetCenters runs the query-time k-means++ over an already-merged
// coreset (as returned by Coreset) — split out so the serving layer can
// time the merge and the solve as separate trace stages.
func (s *Sharded) CoresetCenters(union []geom.Weighted) []geom.Point {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	centers, _ := kmeans.Run(s.rng, union, s.k, s.queryOpt)
	return centers
}

// Centers answers a global k-means query over the decayed stream.
func (s *Sharded) Centers() []geom.Point {
	return s.CoresetCenters(s.Coreset())
}

// Quiesce locks every lane for a consistent cut; see
// parallel.Lanes.Quiesce.
func (s *Sharded) Quiesce(f func(shards []*Shard, clock, rr, count int64) error) error {
	return s.lanes.Quiesce(f)
}

// Count returns total arrivals applied across lanes.
func (s *Sharded) Count() int64 { return s.lanes.Count() }

// Clock returns the arrival indices issued so far (>= Count while
// batches are in flight).
func (s *Sharded) Clock() int64 { return s.lanes.Clock() }

// NumLanes returns the ingest parallelism.
func (s *Sharded) NumLanes() int { return s.lanes.NumLanes() }

// K returns the number of centers answered by queries.
func (s *Sharded) K() int { return s.k }

// Lambda returns the decay rate.
func (s *Sharded) Lambda() float64 { return s.lambda }

// PointsStored sums lane memory in points.
func (s *Sharded) PointsStored() int {
	total := 0
	s.lanes.Each(func(_ int, sh *Shard) { total += sh.Driver().PointsStored() })
	return total
}

// Name identifies the algorithm in reports.
func (s *Sharded) Name() string {
	var inner string
	s.lanes.View(0, func(sh *Shard) { inner = sh.Driver().Name() })
	return fmt.Sprintf("Decay[%dx%s]", s.lanes.NumLanes(), inner)
}

// Dim probes the point dimension from stored points (0 when empty).
func (s *Sharded) Dim() int {
	dim := 0
	s.lanes.Each(func(_ int, sh *Shard) {
		if dim != 0 {
			return
		}
		for _, wp := range sh.Driver().CoresetUnion() {
			dim = len(wp.P)
			return
		}
	})
	return dim
}
