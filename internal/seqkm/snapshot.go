package seqkm

import "streamkm/internal/geom"

// Snapshot is the exported state of a Sequential clusterer.
type Snapshot struct {
	K       int
	Centers []geom.Point
	Weights []float64
	Count   int64
}

// Snapshot captures the clusterer's complete state (deep copies).
func (s *Sequential) Snapshot() Snapshot {
	centers := make([]geom.Point, len(s.centers))
	for i, c := range s.centers {
		centers[i] = c.Clone()
	}
	return Snapshot{
		K:       s.k,
		Centers: centers,
		Weights: append([]float64(nil), s.weights...),
		Count:   s.count,
	}
}

// Restore replaces the clusterer's state with the snapshot's.
func (s *Sequential) Restore(snap Snapshot) {
	s.k = snap.K
	s.centers = make([]geom.Point, len(snap.Centers))
	for i, c := range snap.Centers {
		s.centers[i] = c.Clone()
	}
	s.weights = append([]float64(nil), snap.Weights...)
	s.count = snap.Count
}
