package seqkm

import (
	"math"
	"testing"

	"streamkm/internal/geom"
)

func TestAddWeightedCentroidMath(t *testing.T) {
	s := New(1)
	s.AddWeighted(geom.Weighted{P: geom.Point{0, 0}, W: 3})
	s.AddWeighted(geom.Weighted{P: geom.Point{4, 0}, W: 1})
	// centroid = (3*0 + 1*4)/4 = 1
	if c := s.Centers()[0]; !c.Equal(geom.Point{1, 0}) {
		t.Fatalf("center = %v, want [1 0]", c)
	}
	if w := s.Weights()[0]; w != 4 {
		t.Fatalf("weight = %v, want 4", w)
	}
}

func TestAddWeightedEqualsRepeatedAdd(t *testing.T) {
	a, b := New(2), New(2)
	seedPts := []geom.Point{{0, 0}, {10, 10}}
	for _, p := range seedPts {
		a.Add(p)
		b.Add(p)
	}
	a.AddWeighted(geom.Weighted{P: geom.Point{1, 1}, W: 5})
	for i := 0; i < 5; i++ {
		b.Add(geom.Point{1, 1})
	}
	ca, cb := a.Centers(), b.Centers()
	for i := range ca {
		for j := range ca[i] {
			if math.Abs(ca[i][j]-cb[i][j]) > 1e-9 {
				t.Fatalf("weighted add diverges from repeated add: %v vs %v", ca, cb)
			}
		}
	}
}

func TestSnapshotRestoreSequential(t *testing.T) {
	s := New(2)
	s.Add(geom.Point{1, 2})
	s.Add(geom.Point{3, 4})
	s.Add(geom.Point{1.5, 2.5})
	snap := s.Snapshot()

	// Snapshot is a deep copy: mutating the live clusterer leaves it alone.
	s.Add(geom.Point{100, 100})
	if snap.Count != 3 {
		t.Fatalf("snapshot count mutated: %d", snap.Count)
	}

	r := New(2)
	r.Restore(snap)
	if r.Count() != 3 || len(r.Centers()) != 2 {
		t.Fatalf("restore: count %d, centers %d", r.Count(), len(r.Centers()))
	}
	// Restored state continues independently.
	r.Add(geom.Point{3, 4})
	if s.Count() != 4 || r.Count() != 4 {
		t.Fatalf("counts diverged wrongly: %d %d", s.Count(), r.Count())
	}
}
