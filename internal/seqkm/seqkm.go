// Package seqkm implements MacQueen's sequential k-means (1967) — "Online
// Lloyd's" — the fast-but-unguaranteed baseline the paper compares against
// (and the fast path inside OnlineCC). Following the paper's experimental
// setup (Section 5.2, mirroring Apache Spark MLlib run sequentially), the
// initial centers are the first k points of the stream, which guarantees no
// cluster starts empty.
package seqkm

import "streamkm/internal/geom"

// Sequential maintains k centers, applying one step of Lloyd's update per
// arriving point: the nearest center moves to the weighted centroid of
// itself and the new point. Updates and queries are O(kd) and O(kd)
// respectively, with O(kd) memory — but there is no approximation
// guarantee, and on adversarial or skewed data (e.g. the Intrusion dataset,
// Figure 4c) the cost can be orders of magnitude worse than coreset
// methods.
type Sequential struct {
	k       int
	centers []geom.Point
	weights []float64
	count   int64
}

// New returns a sequential k-means clusterer targeting k centers.
func New(k int) *Sequential {
	if k < 1 {
		panic("seqkm: k < 1")
	}
	return &Sequential{k: k}
}

// Add implements the Clusterer façade: one sequential k-means step.
func (s *Sequential) Add(p geom.Point) { s.AddWeighted(geom.Weighted{P: p, W: 1}) }

// AddWeighted observes a point carrying weight w (equivalent to w unit
// points at the same coordinates): the nearest center moves to the weighted
// centroid of itself and the new point.
func (s *Sequential) AddWeighted(wp geom.Weighted) {
	s.count++
	if len(s.centers) < s.k {
		s.centers = append(s.centers, wp.P.Clone())
		s.weights = append(s.weights, wp.W)
		return
	}
	_, idx := geom.MinSqDist(wp.P, s.centers)
	w := s.weights[idx]
	c := s.centers[idx]
	inv := 1 / (w + wp.W)
	for j := range c {
		c[j] = (w*c[j] + wp.W*wp.P[j]) * inv
	}
	s.weights[idx] = w + wp.W
}

// Centers returns copies of the current centers.
func (s *Sequential) Centers() []geom.Point {
	out := make([]geom.Point, len(s.centers))
	for i, c := range s.centers {
		out[i] = c.Clone()
	}
	return out
}

// PointsStored reports memory in points: just the k centers.
func (s *Sequential) PointsStored() int { return len(s.centers) }

// Name identifies the algorithm in reports.
func (s *Sequential) Name() string { return "Sequential" }

// Count returns the number of points observed.
func (s *Sequential) Count() int64 { return s.count }

// Weights returns the per-center accumulated weights (test hook).
func (s *Sequential) Weights() []float64 { return s.weights }
