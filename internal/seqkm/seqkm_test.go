package seqkm

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
)

func TestValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k < 1")
		}
	}()
	New(0)
}

func TestFirstKPointsBecomeCenters(t *testing.T) {
	s := New(3)
	pts := []geom.Point{{1, 1}, {2, 2}, {3, 3}}
	for _, p := range pts {
		s.Add(p)
	}
	centers := s.Centers()
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	for i, p := range pts {
		if !centers[i].Equal(p) {
			t.Fatalf("center %d = %v, want %v", i, centers[i], p)
		}
	}
}

func TestCentroidUpdateMath(t *testing.T) {
	s := New(1)
	s.Add(geom.Point{0, 0})
	s.Add(geom.Point{2, 0}) // centroid of {0,0},{2,0} = {1,0}
	if c := s.Centers()[0]; !c.Equal(geom.Point{1, 0}) {
		t.Fatalf("center = %v, want [1 0]", c)
	}
	s.Add(geom.Point{4, 0}) // centroid of 3 points = {2,0}
	if c := s.Centers()[0]; !c.Equal(geom.Point{2, 0}) {
		t.Fatalf("center = %v, want [2 0]", c)
	}
	if w := s.Weights()[0]; w != 3 {
		t.Fatalf("weight = %v, want 3", w)
	}
}

func TestWeightsSumToCount(t *testing.T) {
	s := New(4)
	rng := rand.New(rand.NewSource(1))
	const n = 1000
	for i := 0; i < n; i++ {
		s.Add(geom.Point{rng.NormFloat64() * 10, rng.NormFloat64() * 10})
	}
	var sum float64
	for _, w := range s.Weights() {
		sum += w
	}
	if math.Abs(sum-n) > 1e-9 {
		t.Fatalf("weights sum to %v, want %d", sum, n)
	}
	if s.Count() != n {
		t.Fatalf("Count = %d", s.Count())
	}
}

func TestCentersAreCopies(t *testing.T) {
	s := New(2)
	s.Add(geom.Point{1, 1})
	s.Add(geom.Point{2, 2})
	got := s.Centers()
	got[0][0] = 999
	if s.Centers()[0][0] == 999 {
		t.Fatal("Centers aliases internal state")
	}
}

func TestTracksSeparatedClusters(t *testing.T) {
	// On easy, well-separated data sequential k-means does fine — the paper
	// only shows it failing on skewed data.
	s := New(2)
	rng := rand.New(rand.NewSource(2))
	// Seed centers: one point from each cluster.
	s.Add(geom.Point{0, 0})
	s.Add(geom.Point{100, 100})
	for i := 0; i < 5000; i++ {
		if i%2 == 0 {
			s.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
		} else {
			s.Add(geom.Point{100 + rng.NormFloat64(), 100 + rng.NormFloat64()})
		}
	}
	centers := s.Centers()
	d0, _ := geom.MinSqDist(geom.Point{0, 0}, centers)
	d1, _ := geom.MinSqDist(geom.Point{100, 100}, centers)
	if d0 > 1 || d1 > 1 {
		t.Fatalf("centers drifted: %v", centers)
	}
}

func TestPoorQualityOnSkewedInit(t *testing.T) {
	// The pathology from the paper (Fig 4c): if the first k points all land
	// in one region, sequential k-means can never recover a far small
	// cluster. This documents the baseline's known weakness.
	s := New(2)
	s.Add(geom.Point{0, 0})
	s.Add(geom.Point{0.1, 0.1}) // both initial centers in cluster A
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		s.Add(geom.Point{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
	}
	// A single far outlier group, too small to drag a center over.
	for i := 0; i < 10; i++ {
		s.Add(geom.Point{1000, 1000})
	}
	centers := s.Centers()
	d, _ := geom.MinSqDist(geom.Point{1000, 1000}, centers)
	if d < 100 {
		t.Fatalf("unexpectedly recovered the far cluster; centers %v", centers)
	}
	if s.PointsStored() != 2 {
		t.Fatalf("PointsStored = %d, want k", s.PointsStored())
	}
	if s.Name() != "Sequential" {
		t.Fatalf("Name = %q", s.Name())
	}
}
