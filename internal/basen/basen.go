// Package basen implements the base-r digit arithmetic that drives coreset
// caching (Section 4.1 of the paper): the decomposition of a bucket count N
// into non-zero digits, and the derived quantities major(N, r), minor(N, r)
// and prefixsum(N, r).
//
// For N > 0 and r >= 2, write N = sum_{i=0..j} beta_i * r^{alpha_i} with
// 0 <= alpha_0 < ... < alpha_j and 0 < beta_i < r. Then
//
//	minor(N, r)     = beta_0 * r^{alpha_0}        (smallest term)
//	major(N, r)     = N - minor(N, r)
//	prefixsum(N, r) = { N_kappa | kappa = 1..j }  where N_kappa drops the
//	                  kappa smallest non-zero terms of N.
//
// Example (from the paper): N = 47, r = 3: 47 = 1*27 + 2*9 + 2*1, so
// minor = 2, major = 45, prefixsum = {45, 27}.
package basen

import "fmt"

// Term is one non-zero term beta * r^alpha of the base-r decomposition.
type Term struct {
	Beta  int // digit value, 0 < Beta < r
	Alpha int // digit position (power of r)
	Value int // Beta * r^Alpha
}

// Terms returns the non-zero terms of n written in base r, in ascending
// order of Alpha. It panics for n < 0 or r < 2.
func Terms(n, r int) []Term {
	if n < 0 {
		panic(fmt.Sprintf("basen: negative n %d", n))
	}
	if r < 2 {
		panic(fmt.Sprintf("basen: base %d < 2", r))
	}
	var out []Term
	pow := 1
	for alpha := 0; n > 0; alpha++ {
		if d := n % r; d != 0 {
			out = append(out, Term{Beta: d, Alpha: alpha, Value: d * pow})
		}
		n /= r
		pow *= r
	}
	return out
}

// Minor returns the smallest non-zero term of n in base r, or 0 when n = 0.
func Minor(n, r int) int {
	t := Terms(n, r)
	if len(t) == 0 {
		return 0
	}
	return t[0].Value
}

// MinorTerm returns the smallest non-zero term (beta, alpha, value) of n in
// base r. ok is false when n = 0.
func MinorTerm(n, r int) (Term, bool) {
	t := Terms(n, r)
	if len(t) == 0 {
		return Term{}, false
	}
	return t[0], true
}

// Major returns n minus its smallest non-zero base-r term. When n has a
// single non-zero digit (n = beta*r^alpha), Major is 0.
func Major(n, r int) int { return n - Minor(n, r) }

// PrefixSums returns prefixsum(n, r): the set {N_kappa} obtained by dropping
// the kappa smallest non-zero digits for kappa = 1..j, in decreasing order.
// n itself is not a member. The result is empty when n has at most one
// non-zero digit.
func PrefixSums(n, r int) []int {
	terms := Terms(n, r)
	if len(terms) <= 1 {
		return nil
	}
	out := make([]int, 0, len(terms)-1)
	rest := n
	for kappa := 0; kappa < len(terms)-1; kappa++ {
		rest -= terms[kappa].Value
		out = append(out, rest)
	}
	return out
}

// NumNonZeroDigits returns chi(n), the number of non-zero digits of n in
// base r (used in the proof of Lemma 5).
func NumNonZeroDigits(n, r int) int { return len(Terms(n, r)) }
