package basen

import (
	"testing"
	"testing/quick"
)

func TestPaperExample(t *testing.T) {
	// Section 4.1: n = 47, r = 3; 47 = 1*27 + 2*9 + 2*1.
	if got := Minor(47, 3); got != 2 {
		t.Errorf("Minor(47,3) = %d, want 2", got)
	}
	if got := Major(47, 3); got != 45 {
		t.Errorf("Major(47,3) = %d, want 45", got)
	}
	got := PrefixSums(47, 3)
	want := []int{45, 27}
	if len(got) != len(want) {
		t.Fatalf("PrefixSums(47,3) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PrefixSums(47,3) = %v, want %v", got, want)
		}
	}
}

func TestTermsKnown(t *testing.T) {
	terms := Terms(47, 3)
	want := []Term{{Beta: 2, Alpha: 0, Value: 2}, {Beta: 2, Alpha: 2, Value: 18}, {Beta: 1, Alpha: 3, Value: 27}}
	if len(terms) != len(want) {
		t.Fatalf("Terms(47,3) = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Fatalf("Terms(47,3)[%d] = %v, want %v", i, terms[i], want[i])
		}
	}
}

func TestSingleDigit(t *testing.T) {
	// n = beta*r^alpha has major 0 and empty prefixsum.
	for _, n := range []int{1, 2, 8, 9, 27, 54} {
		if Major(n, 3) != 0 && NumNonZeroDigits(n, 3) == 1 {
			t.Errorf("Major(%d,3) = %d, want 0 for single-digit", n, Major(n, 3))
		}
	}
	if got := PrefixSums(8, 2); got != nil {
		t.Errorf("PrefixSums(8,2) = %v, want nil", got)
	}
	if got := Minor(0, 2); got != 0 {
		t.Errorf("Minor(0,2) = %d, want 0", got)
	}
	if got := PrefixSums(0, 2); got != nil {
		t.Errorf("PrefixSums(0,2) = %v, want nil", got)
	}
}

func TestTermsReconstruct(t *testing.T) {
	for _, r := range []int{2, 3, 5, 7, 10, 16} {
		for n := 0; n <= 3000; n++ {
			var sum int
			for _, tm := range Terms(n, r) {
				if tm.Beta <= 0 || tm.Beta >= r {
					t.Fatalf("Terms(%d,%d): digit %d out of range", n, r, tm.Beta)
				}
				sum += tm.Value
			}
			if sum != n {
				t.Fatalf("Terms(%d,%d) sums to %d", n, r, sum)
			}
		}
	}
}

func TestMajorPlusMinor(t *testing.T) {
	for _, r := range []int{2, 3, 4, 9} {
		for n := 0; n <= 2000; n++ {
			if Major(n, r)+Minor(n, r) != n {
				t.Fatalf("Major+Minor != n for n=%d r=%d", n, r)
			}
		}
	}
}

// TestFact2 verifies Fact 2: prefixsum(N+1, r) ⊆ prefixsum(N, r) ∪ {N}.
// This is exactly the property that lets CC answer every query from the
// cache when queries arrive at every bucket.
func TestFact2(t *testing.T) {
	for _, r := range []int{2, 3, 5, 10} {
		prev := map[int]bool{}
		for n := 1; n <= 5000; n++ {
			cur := PrefixSums(n, r)
			for _, p := range cur {
				if !prev[p] && p != n-1 {
					t.Fatalf("Fact 2 violated: %d in prefixsum(%d,%d) but not in prefixsum(%d,%d) ∪ {%d}",
						p, n, r, n-1, r, n-1)
				}
			}
			prev = map[int]bool{}
			for _, p := range cur {
				prev[p] = true
			}
		}
	}
}

// TestMajorInPrefixSums verifies that major(N,r) ∈ prefixsum(N,r) whenever
// it is non-zero — the invariant CC's fast path relies on (Section 4.1:
// "Since major(N, r) ∈ prefixsum(N, r) for each N ...").
func TestMajorInPrefixSums(t *testing.T) {
	for _, r := range []int{2, 3, 4, 8} {
		for n := 1; n <= 3000; n++ {
			mj := Major(n, r)
			if mj == 0 {
				continue
			}
			found := false
			for _, p := range PrefixSums(n, r) {
				if p == mj {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("major(%d,%d)=%d not in prefixsum %v", n, r, mj, PrefixSums(n, r))
			}
		}
	}
}

func TestPrefixSumsDescendingAndDistinct(t *testing.T) {
	for _, r := range []int{2, 3, 7} {
		for n := 1; n <= 2000; n++ {
			ps := PrefixSums(n, r)
			for i := 1; i < len(ps); i++ {
				if ps[i] >= ps[i-1] {
					t.Fatalf("PrefixSums(%d,%d) not strictly descending: %v", n, r, ps)
				}
			}
		}
	}
}

func TestNumNonZeroDigits(t *testing.T) {
	cases := []struct{ n, r, want int }{
		{47, 3, 3}, {8, 2, 1}, {7, 2, 3}, {0, 2, 0}, {100, 10, 1}, {101, 10, 2},
	}
	for _, c := range cases {
		if got := NumNonZeroDigits(c.n, c.r); got != c.want {
			t.Errorf("NumNonZeroDigits(%d,%d) = %d, want %d", c.n, c.r, got, c.want)
		}
	}
}

func TestPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Terms(-1, 2) },
		func() { Terms(5, 1) },
		func() { Terms(5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestQuickReconstruct(t *testing.T) {
	f := func(n uint16, rRaw uint8) bool {
		r := int(rRaw%14) + 2
		var sum int
		for _, tm := range Terms(int(n), r) {
			sum += tm.Value
		}
		return sum == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
