package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"streamkm/internal/registry"
)

// TestE2EManyTenantsEvictRestoreRestart is the headline multi-tenant
// scenario: one daemon-equivalent server with room for only 8 resident
// backends serves 56 concurrent streams. Cold tenants are hibernated to
// per-stream snapshot files, queries lazily restore them, and after a
// kill-and-restart from the data directory every tenant reports the same
// count and an equivalent clustering cost. Run with -race.
func TestE2EManyTenantsEvictRestoreRestart(t *testing.T) {
	const (
		tenants     = 56
		maxResident = 8
		perTenant   = 240
		chunk       = 60
		workers     = 8
	)
	dir := t.TempDir()
	regCfg := registry.Config{DataDir: dir, MaxResident: maxResident}
	reg := streamkmRegistry(t, regCfg)
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{MaxBatch: chunk}).Handler())

	// Each tenant gets its own well-separated mixture, offset so tenants
	// are distinguishable: cross-tenant state leakage would show up as a
	// wildly wrong cost.
	tenantID := func(i int) string { return fmt.Sprintf("tenant-%02d", i) }
	tenantPoints := func(i int) [][]float64 {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		base := float64(i * 10)
		centers := [][]float64{{base, 0}, {base + 500, 0}, {base, 500}}
		out := make([][]float64, perTenant)
		for j := range out {
			c := centers[rng.Intn(len(centers))]
			out[j] = []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
		}
		return out
	}

	// Concurrent ingest across all tenants, far more tenants than may be
	// resident, so eviction churns while traffic flows.
	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	sem := make(chan struct{}, workers)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			pts := tenantPoints(i)
			for off := 0; off < len(pts); off += chunk {
				body := pointsNDJSON(pts[off : off+chunk])
				resp, err := ts.Client().Post(ts.URL+"/streams/"+tenantID(i)+"/ingest",
					"application/x-ndjson", strings.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("tenant %d ingest status %d", i, resp.StatusCode)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := reg.Stats()
	if st.Streams != tenants {
		t.Fatalf("registered %d streams, want %d", st.Streams, tenants)
	}
	if st.Resident > maxResident {
		t.Fatalf("%d resident streams, cap is %d", st.Resident, maxResident)
	}
	if st.Hibernated < tenants-maxResident {
		t.Fatalf("only %d hibernated, want >= %d", st.Hibernated, tenants-maxResident)
	}
	if st.Registry.Evictions == 0 {
		t.Fatal("no evictions under tenant pressure")
	}

	// Query every tenant: cold ones restore lazily; counts and costs are
	// recorded as the pre-restart reference.
	preCost := make([]float64, tenants)
	queryTenant := func(srvURL string, i int) (int64, float64) {
		resp, m := getJSON(t, srvURL+"/streams/"+tenantID(i)+"/centers")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %d centers status %d", i, resp.StatusCode)
		}
		raw := m["centers"].([]interface{})
		centers := make([][]float64, len(raw))
		for ci, rc := range raw {
			cs := rc.([]interface{})
			centers[ci] = make([]float64, len(cs))
			for j, x := range cs {
				centers[ci][j] = x.(float64)
			}
		}
		return int64(m["count"].(float64)), kmeansCost(tenantPoints(i), centers)
	}
	restoresBefore := reg.Stats().Registry.Restores
	for i := 0; i < tenants; i++ {
		count, cost := queryTenant(ts.URL, i)
		if count != perTenant {
			t.Fatalf("tenant %d count %d, want %d (eviction lost points)", i, count, perTenant)
		}
		preCost[i] = cost
	}
	if reg.Stats().Registry.Restores == restoresBefore {
		t.Fatal("querying every tenant triggered no lazy restores")
	}

	// Kill and restart: flush resident state (the daemon's shutdown
	// path), discard the whole process state, and boot a fresh registry
	// from the data directory alone.
	if err := reg.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	reg2 := streamkmRegistry(t, regCfg)
	ts2 := httptest.NewServer(NewMulti(reg2, MultiConfig{MaxBatch: chunk}).Handler())
	defer ts2.Close()

	st2 := reg2.Stats()
	if st2.Streams != tenants || st2.Resident != 0 {
		t.Fatalf("restart: %d streams / %d resident, want %d / 0 (boot must stay cold)", st2.Streams, st2.Resident, tenants)
	}
	for i := 0; i < tenants; i++ {
		count, cost := queryTenant(ts2.URL, i)
		if count != perTenant {
			t.Errorf("tenant %d count after restart %d, want %d", i, count, perTenant)
		}
		// Equivalent clustering quality within re-seeded query randomness.
		if cost > 2*preCost[i] || preCost[i] > 2*cost {
			t.Errorf("tenant %d cost after restart %v vs %v", i, cost, preCost[i])
		}
	}
	if res := reg2.Stats().Resident; res > maxResident {
		t.Fatalf("restart serving exceeded cap: %d resident > %d", res, maxResident)
	}
}
