package server

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"streamkm/internal/registry"
)

// TestTenantSeriesChurnPastCap is the regression test for the metrics
// series leak: the per-tenant series cap must count LIVE tenants, not
// every id ever seen. Before the fix, churning more than maxTenantSeries
// distinct ids through the daemon — create, traffic, delete — left every
// slot occupied forever, so all later tenants folded into "_other" even
// with zero live streams. Now DELETE (and detach) prune the series, so a
// fresh tenant after heavy churn still gets its own labelled series.
func TestTenantSeriesChurnPastCap(t *testing.T) {
	if testing.Short() {
		t.Skip("churns past the 1024-series cap; slow")
	}
	ts, m := newMultiServer(t, registry.Config{DataDir: t.TempDir(), MaxResident: 4}, MultiConfig{})
	client := ts.Client()
	body := "[1,2]\n[3,4]\n"

	churn := maxTenantSeries + 50
	for i := 0; i < churn; i++ {
		id := fmt.Sprintf("churn-%d", i)
		resp, err := client.Post(ts.URL+"/streams/"+id+"/ingest", "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/"+id, nil)
		resp, err = client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("delete %s: status %d", id, resp.StatusCode)
		}
	}

	if n := m.tenantCount.Load(); n != 0 {
		t.Fatalf("tenantCount after full churn = %d, want 0 (series leaked)", n)
	}

	// The tell-tale symptom of the leak: a brand-new tenant folding into
	// the overflow bucket despite an empty daemon.
	resp, err := client.Post(ts.URL+"/streams/fresh-after-churn/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-churn ingest: status %d", resp.StatusCode)
	}
	if got := m.tenantFor("fresh-after-churn"); got == &m.tenantOther {
		t.Fatal("fresh tenant folded into _other after churn — series not pruned")
	}
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(raw), `stream="fresh-after-churn"`) {
		t.Fatal("fresh tenant has no labelled series in /metrics after churn")
	}
}

// TestTenantSeriesCreateRace exercises the tenantFor fast-path/create
// split under -race: N goroutines racing to create the same id must
// produce exactly one slot (the old check-then-LoadOrStore overshot the
// cap by up to GOMAXPROCS-1 slots when first requests raced).
func TestTenantSeriesCreateRace(t *testing.T) {
	_, m := newMultiServer(t, registry.Config{}, MultiConfig{})

	const goroutines = 32
	const ids = 20
	var wg sync.WaitGroup
	slots := make([][]interface{}, ids)
	for i := range slots {
		slots[i] = make([]interface{}, goroutines)
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ids; i++ {
				slots[i][g] = m.tenantFor(fmt.Sprintf("race-%d", i))
			}
		}(g)
	}
	wg.Wait()

	if n := m.tenantCount.Load(); n != ids {
		t.Fatalf("tenantCount = %d after racing %d ids, want exactly %d", n, ids, ids)
	}
	for i := range slots {
		for g := 1; g < goroutines; g++ {
			if slots[i][g] != slots[i][0] {
				t.Fatalf("id race-%d resolved to two different slots", i)
			}
		}
	}

	// Concurrent create/prune of the same id must never drive the count
	// negative or leave a phantom slot.
	var cp sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		cp.Add(1)
		go func() {
			defer cp.Done()
			for i := 0; i < 100; i++ {
				m.tenantFor("flapper")
				m.pruneTenant("flapper")
			}
		}()
	}
	cp.Wait()
	m.pruneTenant("flapper")
	if n := m.tenantCount.Load(); n != ids {
		t.Fatalf("tenantCount after create/prune storm = %d, want %d", n, ids)
	}
}
