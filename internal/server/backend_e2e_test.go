package server

import (
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"

	"streamkm/internal/registry"
)

// TestE2EBackendVariantsKillRestart mirrors the multi-tenant restart
// scenario for the non-default backends: tenants created with explicit
// decayed and windowed specs ingest traffic, hibernate under a resident
// cap, survive a daemon-equivalent kill/restart from the data directory
// alone, and come back with counts and clustering cost intact — the
// PR's acceptance criterion. Run with -race.
func TestE2EBackendVariantsKillRestart(t *testing.T) {
	const perTenant = 600
	dir := t.TempDir()
	regCfg := registry.Config{DataDir: dir, MaxResident: 2}
	reg := streamkmRegistry(t, regCfg)
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{MaxBatch: 100}).Handler())

	tenants := []struct {
		id   string
		spec string
	}{
		{"dec-a", `{"backend":"decayed","algo":"CC","half_life":5000}`},
		{"dec-b", `{"backend":"decayed","algo":"RCC","k":4,"half_life":300}`},
		{"win-a", `{"backend":"windowed","window_n":100000}`},
		{"win-b", `{"backend":"windowed","k":4,"window_n":250}`},
		{"con-a", `{"backend":"concurrent","algo":"CC"}`},
	}
	for _, tn := range tenants {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/"+tn.id, strings.NewReader(tn.spec))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %s: status %d", tn.id, resp.StatusCode)
		}
	}

	tenantPoints := func(i int) [][]float64 {
		rng := rand.New(rand.NewSource(int64(4000 + i)))
		base := float64(i * 50)
		centers := [][]float64{{base, 0}, {base + 400, 0}, {base, 400}}
		out := make([][]float64, perTenant)
		for j := range out {
			c := centers[rng.Intn(len(centers))]
			out[j] = []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
		}
		return out
	}
	for i, tn := range tenants {
		pts := tenantPoints(i)
		for off := 0; off < len(pts); off += 100 {
			resp, err := ts.Client().Post(ts.URL+"/streams/"+tn.id+"/ingest",
				"application/x-ndjson", strings.NewReader(pointsNDJSON(pts[off:off+100])))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s ingest status %d", tn.id, resp.StatusCode)
			}
		}
	}

	// With MaxResident 2 and 5 tenants, hibernation churned during
	// ingest; every variant must have survived at least one
	// hibernate/restore round trip by the time we query it.
	if reg.Stats().Registry.Evictions == 0 {
		t.Fatal("no evictions: the cap did not exercise hibernation")
	}

	queryTenant := func(srvURL, id string, pts [][]float64) (int64, float64) {
		resp, m := getJSON(t, srvURL+"/streams/"+id+"/centers")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s centers status %d: %v", id, resp.StatusCode, m)
		}
		raw := m["centers"].([]interface{})
		centers := make([][]float64, len(raw))
		for ci, rc := range raw {
			cs := rc.([]interface{})
			centers[ci] = make([]float64, len(cs))
			for j, x := range cs {
				centers[ci][j] = x.(float64)
			}
		}
		return int64(m["count"].(float64)), kmeansCost(pts, centers)
	}

	// Pre-restart reference. For win-b (window 250 < perTenant) the cost
	// is still measured against the window's tail, which the restart must
	// preserve like everything else.
	refPts := func(i int) [][]float64 {
		pts := tenantPoints(i)
		if tenants[i].id == "win-b" {
			return pts[len(pts)-250:]
		}
		return pts
	}
	preCost := make([]float64, len(tenants))
	for i, tn := range tenants {
		count, cost := queryTenant(ts.URL, tn.id, refPts(i))
		if count != perTenant {
			t.Fatalf("%s count %d, want %d", tn.id, count, perTenant)
		}
		preCost[i] = cost
	}

	// Spec reporting: per-stream stats carry the backend spec.
	resp, m := getJSON(t, ts.URL+"/streams/dec-b/stats")
	if resp.StatusCode != http.StatusOK || m["backend"] != "decayed" ||
		m["half_life"].(float64) != 300 || m["k"].(float64) != 4 {
		t.Fatalf("dec-b stats: %v", m)
	}
	resp, m = getJSON(t, ts.URL+"/streams/win-b/stats")
	if resp.StatusCode != http.StatusOK || m["backend"] != "windowed" ||
		m["window_n"].(float64) != 250 {
		t.Fatalf("win-b stats: %v", m)
	}

	// Kill and restart from the data directory alone.
	if err := reg.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	reg2 := streamkmRegistry(t, regCfg)
	ts2 := httptest.NewServer(NewMulti(reg2, MultiConfig{MaxBatch: 100}).Handler())
	defer ts2.Close()

	st := reg2.Stats()
	if st.Streams != len(tenants) || st.Resident != 0 {
		t.Fatalf("restart: %d streams / %d resident, want %d / 0", st.Streams, st.Resident, len(tenants))
	}
	// The boot scan peeked every variant's spec without warming it.
	for _, tn := range tenants {
		in, err := reg2.Stat(tn.id)
		if err != nil {
			t.Fatal(err)
		}
		wantBackend := "concurrent"
		if strings.HasPrefix(tn.id, "dec") {
			wantBackend = "decayed"
		} else if strings.HasPrefix(tn.id, "win") {
			wantBackend = "windowed"
		}
		if in.Backend != wantBackend || in.Count != perTenant {
			t.Fatalf("%s boot peek: backend %q count %d, want %q / %d",
				tn.id, in.Backend, in.Count, wantBackend, perTenant)
		}
	}
	for i, tn := range tenants {
		count, cost := queryTenant(ts2.URL, tn.id, refPts(i))
		if count != perTenant {
			t.Errorf("%s count after restart %d, want %d", tn.id, count, perTenant)
		}
		if cost > 2*preCost[i] || preCost[i] > 2*cost {
			t.Errorf("%s cost after restart %v vs %v", tn.id, cost, preCost[i])
		}
	}

	// The windowed tenant keeps expiring after the restart: flood win-b
	// with a shifted cluster longer than its window and the old clusters
	// vanish from its answers.
	shift := make([][]float64, 600)
	rng := rand.New(rand.NewSource(99))
	for j := range shift {
		shift[j] = []float64{9000 + rng.NormFloat64(), 9000 + rng.NormFloat64()}
	}
	for off := 0; off < len(shift); off += 100 {
		resp, err := ts2.Client().Post(ts2.URL+"/streams/win-b/ingest",
			"application/x-ndjson", strings.NewReader(pointsNDJSON(shift[off:off+100])))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	_, m = getJSON(t, ts2.URL+"/streams/win-b/centers")
	for _, rc := range m["centers"].([]interface{}) {
		x := rc.([]interface{})[0].(float64)
		if x < 5000 {
			t.Fatalf("win-b center at %v after window slid past the old clusters", x)
		}
	}
}

// TestE2EBackendMismatchOnRestore: a snapshot file that appears on disk
// for an id later PUT with a different spec must be refused on access,
// not silently resumed.
func TestE2EBackendMismatchOnRestore(t *testing.T) {
	dir := t.TempDir()
	reg := streamkmRegistry(t, registry.Config{DataDir: dir})
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{}).Handler())

	// Create a decayed stream, feed it, checkpoint it, delete only the
	// in-memory registration path by restarting with a registry whose
	// boot scan is bypassed for this id (simulated: PUT under a new
	// registry after moving the snapshot into place post-boot).
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/streams/ghost",
		strings.NewReader(`{"backend":"decayed","half_life":100}`))
	if resp, err := ts.Client().Do(req); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := ts.Client().Post(ts.URL+"/streams/ghost/ingest", "application/x-ndjson",
		strings.NewReader(pointsNDJSON([][]float64{{1, 2}, {3, 4}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if _, err := reg.Checkpoint("ghost"); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Fresh registry over an empty dir, then the old snapshot "appears"
	// (bootScan never saw it). A PUT declaring a windowed spec for the
	// same id must fail on materialization instead of adopting the
	// decayed file.
	dir2 := t.TempDir()
	reg2 := streamkmRegistry(t, registry.Config{DataDir: dir2})
	ts2 := httptest.NewServer(NewMulti(reg2, MultiConfig{}).Handler())
	defer ts2.Close()
	if err := copyFile(t, dir+"/ghost.snap", dir2+"/ghost.snap"); err != nil {
		t.Fatal(err)
	}
	req, _ = http.NewRequest(http.MethodPut, ts2.URL+"/streams/ghost",
		strings.NewReader(`{"backend":"windowed","window_n":500}`))
	resp, err = ts2.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Fatal("PUT adopted a snapshot with a conflicting backend spec")
	}
}

func copyFile(t *testing.T, src, dst string) error {
	t.Helper()
	in, err := os.ReadFile(src)
	if err != nil {
		return err
	}
	return os.WriteFile(dst, in, 0o644)
}

// TestPUTValidation is the 400-bugfix satellite: absurd stream configs
// must be rejected as client errors with a JSON body, both on explicit
// PUT and on lazy creation, never surfacing as a 500 from the backend
// constructor.
func TestPUTValidation(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{})
	cases := []string{
		`{"k":-1}`,
		`{"k":0,"dim":-2}`,
		`{"dim":1048577}`,
		`{"k":1048577}`,
		`{"backend":"decayed"}`,                // missing half_life
		`{"backend":"windowed"}`,               // missing window_n
		`{"backend":"bogus"}`,                  // unknown variant
		`{"backend":"windowed","window_n":-5}`, // negative knob
		`{"backend":"decayed","half_life":100,"window_n":500}`, // stray knob
		`{"half_life":100}`, // knob without its variant
	}
	for _, body := range cases {
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/bad", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]interface{}
		decodeJSON(t, resp, &m)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("PUT %s: status %d, want 400 (body %v)", body, resp.StatusCode, m)
		}
		if _, ok := m["error"].(string); !ok {
			t.Errorf("PUT %s: no JSON error field: %v", body, m)
		}
	}
	// None of the rejected PUTs registered a stream.
	resp, m := getJSON(t, ts.URL+"/streams/bad/stats")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("rejected PUT left a registered stream: %d %v", resp.StatusCode, m)
	}
}

// TestLazyCreateValidation: a registry whose default config is absurd
// rejects lazy creation with a client error instead of registering a
// stream that can never build.
func TestLazyCreateValidation(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{
		Default: registry.StreamConfig{Algo: "CC", K: -3},
	}, MultiConfig{})
	resp, err := ts.Client().Post(ts.URL+"/streams/lazy/ingest", "application/x-ndjson",
		strings.NewReader(pointsNDJSON([][]float64{{1, 2}})))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	decodeJSON(t, resp, &m)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("lazy create with k=-3: status %d, want 400 (%v)", resp.StatusCode, m)
	}
	if resp, _ := getJSON(t, ts.URL+"/streams/lazy/stats"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("invalid lazy create left a registered stream")
	}
}
