package server

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"streamkm"
)

// newTestServer backs the HTTP layer with a real streamkm.Concurrent —
// the production pairing — over a tiny configuration.
func newTestServer(t *testing.T, k, dim int) (*httptest.Server, *streamkm.Concurrent) {
	t.Helper()
	c, err := streamkm.NewConcurrent(streamkm.AlgoCC, 2, streamkm.Config{K: k, BucketSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(c, Config{K: k, Dim: dim, MaxBatch: 64}).Handler())
	t.Cleanup(ts.Close)
	return ts, c
}

func ndjson(n, dim int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteByte('[')
		for j := 0; j < dim; j++ {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%.4f", rng.NormFloat64()*3+float64(10*(i%3)))
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func postIngest(t *testing.T, ts *httptest.Server, body string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("ingest response not JSON: %v", err)
	}
	return resp, m
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("%s: response not JSON: %v", url, err)
	}
	return resp, m
}

func TestIngestAndCenters(t *testing.T) {
	ts, c := newTestServer(t, 3, 0)
	resp, m := postIngest(t, ts, ndjson(600, 2, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %v", resp.StatusCode, m)
	}
	if m["ingested"].(float64) != 600 || m["count"].(float64) != 600 {
		t.Fatalf("ingest response %v", m)
	}
	if c.Count() != 600 {
		t.Fatalf("backend count %d", c.Count())
	}

	resp, m = getJSON(t, ts.URL+"/centers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("centers status %d", resp.StatusCode)
	}
	centers := m["centers"].([]interface{})
	if len(centers) != 3 {
		t.Fatalf("%d centers, want 3", len(centers))
	}
	if len(centers[0].([]interface{})) != 2 {
		t.Fatalf("center dim %d, want 2", len(centers[0].([]interface{})))
	}
	if m["k"].(float64) != 3 || m["count"].(float64) != 600 {
		t.Fatalf("centers response %v", m)
	}

	resp, m = getJSON(t, ts.URL+"/centers?refresh=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status %d", resp.StatusCode)
	}
	if got := len(m["centers"].([]interface{})); got != 3 {
		t.Fatalf("refresh returned %d centers", got)
	}

	// refresh=0 must NOT force a recomputation: with the stream unchanged
	// it has to be served from the cache.
	hits0, misses0 := c.CacheStats()
	getJSON(t, ts.URL+"/centers?refresh=0")
	hits, misses := c.CacheStats()
	if hits != hits0+1 || misses != misses0 {
		t.Fatalf("refresh=0 bypassed the cache: hits %d->%d misses %d->%d", hits0, hits, misses0, misses)
	}
}

func TestIngestWeightedPoints(t *testing.T) {
	ts, c := newTestServer(t, 2, 0)
	body := "[1,2]\n{\"p\":[3,4],\"w\":2.5}\n{\"p\":[5,6]}\n"
	resp, m := postIngest(t, ts, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	if m["ingested"].(float64) != 3 {
		t.Fatalf("ingested %v, want 3", m["ingested"])
	}
	if c.Count() != 3 {
		t.Fatalf("count %d, want 3", c.Count())
	}
}

func TestIngestMalformedBody(t *testing.T) {
	ts, _ := newTestServer(t, 2, 0)
	for _, body := range []string{
		"[1,2]\nnot json\n",
		"[1,2]\n[\"a\",\"b\"]\n",
		"[]\n",
		"{\"p\":[],\"w\":2}\n",
		"{\"p\":[1,2],\"w\":-1}\n",
		"{\"p\":[1,2],\"w\":0}\n",
		"42\n",
	} {
		resp, m := postIngest(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400 (%v)", body, resp.StatusCode, m)
		}
		if _, ok := m["error"]; !ok {
			t.Errorf("body %q: no error field in %v", body, m)
		}
	}
}

func TestIngestPartialApplyOnError(t *testing.T) {
	ts, c := newTestServer(t, 2, 0)
	resp, m := postIngest(t, ts, "[1,2]\n[3,4]\nbogus\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if m["ingested"].(float64) != 2 {
		t.Fatalf("ingested %v, want the 2 valid points", m["ingested"])
	}
	if c.Count() != 2 {
		t.Fatalf("backend count %d, want 2", c.Count())
	}
}

func TestIngestDimensionMismatch(t *testing.T) {
	// Adopted dimension: first point fixes it.
	ts, _ := newTestServer(t, 2, 0)
	resp, m := postIngest(t, ts, "[1,2]\n[1,2,3]\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("adopted-dim mismatch: status %d", resp.StatusCode)
	}
	if !strings.Contains(m["error"].(string), "dimension mismatch") {
		t.Fatalf("error %q", m["error"])
	}

	// Configured dimension: rejected before anything is applied.
	ts2, c2 := newTestServer(t, 2, 5)
	resp, _ = postIngest(t, ts2, "[1,2]\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("configured-dim mismatch: status %d", resp.StatusCode)
	}
	if c2.Count() != 0 {
		t.Fatalf("mismatched point was applied")
	}
}

func TestCentersEmptyStream(t *testing.T) {
	ts, _ := newTestServer(t, 3, 0)
	resp, m := getJSON(t, ts.URL+"/centers")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if got := m["centers"].([]interface{}); len(got) != 0 {
		t.Fatalf("empty stream returned %d centers", len(got))
	}
}

func TestStats(t *testing.T) {
	ts, _ := newTestServer(t, 3, 0)
	postIngest(t, ts, ndjson(300, 4, 2))
	getJSON(t, ts.URL+"/centers")

	resp, m := getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if m["count"].(float64) != 300 || m["dim"].(float64) != 4 {
		t.Fatalf("stats %v", m)
	}
	if m["points_stored"].(float64) <= 0 || m["memory_mb"].(float64) <= 0 {
		t.Fatalf("memory stats %v", m)
	}
	eps := m["endpoints"].(map[string]interface{})
	ing := eps["ingest"].(map[string]interface{})
	if ing["requests"].(float64) != 1 || ing["items"].(float64) != 300 {
		t.Fatalf("ingest counters %v", ing)
	}
	cen := eps["centers"].(map[string]interface{})
	if cen["requests"].(float64) != 1 {
		t.Fatalf("centers counters %v", cen)
	}
	if _, ok := m["centers_cache"]; !ok {
		t.Fatalf("no centers_cache in stats: %v", m)
	}
}

func TestStatsCountsErrors(t *testing.T) {
	ts, _ := newTestServer(t, 2, 0)
	postIngest(t, ts, "bogus\n")
	_, m := getJSON(t, ts.URL+"/stats")
	ing := m["endpoints"].(map[string]interface{})["ingest"].(map[string]interface{})
	if ing["errors"].(float64) != 1 {
		t.Fatalf("ingest error counter %v", ing)
	}
}

// TestSnapshotEndpoints exercises the checkpoint surface: POST writes the
// configured file atomically and accounts it in /stats, GET streams the
// same state, and both degrade cleanly when unsupported or unconfigured.
func TestSnapshotEndpoints(t *testing.T) {
	c, err := streamkm.NewConcurrent(streamkm.AlgoCC, 2, streamkm.Config{K: 2, BucketSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/state.snap"
	ts := httptest.NewServer(New(c, Config{K: 2, SnapshotPath: path}).Handler())
	defer ts.Close()
	postIngest(t, ts, ndjson(120, 3, 9))

	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	json.NewDecoder(resp.Body).Decode(&m)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /snapshot status %d: %v", resp.StatusCode, m)
	}
	if m["path"].(string) != path || m["bytes"].(float64) <= 0 || m["count"].(float64) != 120 {
		t.Fatalf("snapshot response %v", m)
	}

	// The written file and the GET stream both restore to the same state.
	restored, err := streamkm.NewConcurrentFromSnapshot(mustOpen(t, path), streamkm.Config{})
	if err != nil {
		t.Fatalf("restore written checkpoint: %v", err)
	}
	if restored.Count() != 120 {
		t.Fatalf("restored count %d", restored.Count())
	}
	get, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer get.Body.Close()
	if get.StatusCode != http.StatusOK || get.Header.Get("Content-Type") != "application/octet-stream" {
		t.Fatalf("GET /snapshot status %d type %q", get.StatusCode, get.Header.Get("Content-Type"))
	}
	streamed, err := streamkm.NewConcurrentFromSnapshot(get.Body, streamkm.Config{})
	if err != nil {
		t.Fatalf("restore streamed snapshot: %v", err)
	}
	if streamed.Count() != 120 {
		t.Fatalf("streamed count %d", streamed.Count())
	}

	// Checkpoint counters surface in /stats.
	_, stats := getJSON(t, ts.URL+"/stats")
	ck := stats["checkpoint"].(map[string]interface{})
	if ck["written"].(float64) != 1 || ck["failed"].(float64) != 0 {
		t.Fatalf("checkpoint counters %v", ck)
	}
	if _, ok := stats["endpoints"].(map[string]interface{})["snapshot"]; !ok {
		t.Fatalf("no snapshot endpoint counters: %v", stats)
	}
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

func TestSnapshotWithoutPathIs400(t *testing.T) {
	ts, _ := newTestServer(t, 2, 0) // no SnapshotPath configured
	resp, err := http.Post(ts.URL+"/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestSnapshotUnsupportedBackendIs501(t *testing.T) {
	ts := httptest.NewServer(New(&sinkClusterer{}, Config{K: 2}).Handler())
	defer ts.Close()
	for _, do := range []func() (*http.Response, error){
		func() (*http.Response, error) { return http.Get(ts.URL + "/snapshot") },
		func() (*http.Response, error) { return http.Post(ts.URL+"/snapshot", "", nil) },
	} {
		resp, err := do()
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Fatalf("status %d, want 501", resp.StatusCode)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t, 2, 0)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts, _ := newTestServer(t, 2, 0)
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: status %d, want 405", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/centers", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /centers: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentTraffic drives parallel ingest and query requests through
// the full HTTP stack — run with -race to exercise the locking story end
// to end.
func TestConcurrentTraffic(t *testing.T) {
	ts, c := newTestServer(t, 3, 0)
	const producers = 4
	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < 5; b++ {
				resp, err := http.Post(ts.URL+"/ingest", "application/x-ndjson",
					strings.NewReader(ndjson(100, 3, int64(w*10+b))))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	stop := make(chan struct{})
	var qwg sync.WaitGroup
	for q := 0; q < 2; q++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/centers")
				if err == nil {
					resp.Body.Close()
				}
				resp, err = http.Get(ts.URL + "/stats")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	qwg.Wait()

	if c.Count() != producers*5*100 {
		t.Fatalf("count %d, want %d", c.Count(), producers*5*100)
	}
	_, m := getJSON(t, ts.URL+"/centers?refresh=1")
	if got := len(m["centers"].([]interface{})); got != 3 {
		t.Fatalf("final centers %d, want 3", got)
	}
}
