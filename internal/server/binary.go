package server

import (
	"errors"
	"fmt"
	"mime"
	"net/http"

	"streamkm/internal/registry"
	"streamkm/internal/wire"
)

// This file is the binary half of the ingest content-type negotiation:
// POST /ingest and POST /streams/{id}/ingest accept either ndjson
// (application/x-ndjson and friends — the compatibility path) or one
// application/x-streamkm-batch body (internal/wire). The binary path
// decodes the whole batch — one flat coordinate allocation, one
// validation pass — before a single point is applied, so a malformed
// body can never partially ingest, and recycles its byte/header buffers
// through a wire.BufferPool after the shard hands off.

// isBinaryBatch reports whether the request negotiates the binary batch
// ingest format via its Content-Type.
func isBinaryBatch(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if ct == wire.ContentType {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	return err == nil && mt == wire.ContentType
}

// bodySizeHint picks the pooled-buffer size for reading an ingest body:
// the declared Content-Length when one is present (clamped to the byte
// cap — a lying header must not pre-allocate past it), else a small
// default the reader grows from.
func bodySizeHint(r *http.Request, maxBody int64) int {
	n := r.ContentLength
	if n <= 0 {
		return 64 << 10
	}
	if maxBody > 0 && n > maxBody {
		n = maxBody
	}
	return int(n)
}

// readBody drains an ingest request body into a pooled buffer, mapping
// an exceeded byte cap to 413. Return the buffer with pool.PutBytes once
// nothing references it.
func readBody(w http.ResponseWriter, r *http.Request, maxBody int64, pool *wire.BufferPool) (raw []byte, status int, msg string) {
	raw, err := wire.ReadAll(limitBody(w, r, maxBody), pool.GetBytes(bodySizeHint(r, maxBody)))
	if err == nil {
		return raw, 0, ""
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return raw, http.StatusRequestEntityTooLarge, fmt.Sprintf("request body exceeds %d bytes", mbe.Limit)
	}
	return raw, http.StatusBadRequest, fmt.Sprintf("read ingest body: %v", err)
}

// decodeBinary parses a binary batch body, mapping decode failures onto
// the ingest endpoint's HTTP statuses (400 malformed, 413 over the point
// cap). maxPoints 0 means uncapped, as resolved by resolveLimit.
func decodeBinary(raw []byte, maxPoints int64, pool *wire.BufferPool) (*wire.Batch, int, string) {
	batch, err := wire.Decode(raw, wire.Limits{MaxPoints: maxPoints, MaxDim: registry.MaxDim}, pool)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, wire.ErrTooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		return nil, status, err.Error()
	}
	return batch, 0, ""
}

// applyBinary feeds an already-validated batch to c in AddBatch chunks
// of maxBatch points (one shard-lock acquisition per chunk). The batch
// was vetted end-to-end by the decoder, so unlike the ndjson path no
// failure after the dimension check can strand a partial request —
// either the dimension is wrong and nothing is applied, or every point
// lands.
func applyBinary(batch *wire.Batch, maxBatch int, c Clusterer, checkDim func([]float64) error) (ingested int64, status int, msg string) {
	if batch.Len() == 0 {
		return 0, 0, ""
	}
	// One check covers the batch: the wire format fixes a single
	// dimension for every point in the header.
	if err := checkDim(batch.Points[0]); err != nil {
		return 0, http.StatusBadRequest, fmt.Sprintf("point 0: %v", err)
	}
	if batch.Weights != nil {
		wa, ok := c.(WeightedAdder)
		if !ok {
			return 0, http.StatusBadRequest, fmt.Sprintf("backend %s does not accept weighted points", c.Name())
		}
		for i, p := range batch.Points {
			wa.AddWeighted(p, batch.Weights[i])
		}
		return int64(batch.Len()), 0, ""
	}
	for off := 0; off < batch.Len(); off += maxBatch {
		end := off + maxBatch
		if end > batch.Len() {
			end = batch.Len()
		}
		c.AddBatch(batch.Points[off:end])
		ingested += int64(end - off)
	}
	return ingested, 0, ""
}
