package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"streamkm"
)

// The single-stream server enforces the same ingest request caps as the
// multi-tenant one (they share runIngest); these tests pin the 413
// behavior on the legacy surface.

func newLimitedServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	c, err := streamkm.NewConcurrent(streamkm.AlgoCC, 2, streamkm.Config{K: 3, BucketSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg.K = 3
	ts := httptest.NewServer(New(c, cfg).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestIngestBodyLimit413(t *testing.T) {
	ts := newLimitedServer(t, Config{MaxBodyBytes: 64})
	resp, m := postIngest(t, ts, ndjson(100, 2, 1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413 (%v)", resp.StatusCode, m)
	}
	if _, ok := m["ingested"]; !ok {
		t.Fatalf("413 response lacks the applied count: %v", m)
	}
}

func TestIngestPointLimit413(t *testing.T) {
	ts := newLimitedServer(t, Config{MaxPoints: 8, MaxBatch: 4})
	resp, m := postIngest(t, ts, ndjson(40, 2, 1))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("too-many-points status %d, want 413 (%v)", resp.StatusCode, m)
	}
	if n := m["ingested"].(float64); n > 8 {
		t.Fatalf("applied %v points past the cap of 8", n)
	}
}

func TestIngestErrorBodiesIncludeIngested(t *testing.T) {
	// The client contract for every ndjson ingest error: the body always
	// carries how many points were applied before the failure, so a
	// client can resume without double-counting. A malformed line
	// mid-stream is the canonical partial-application case.
	ts := newLimitedServer(t, Config{})
	resp, m := postIngest(t, ts, "[1,2]\nnot-json\n[3,4]\n")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed line status %d, want 400 (%v)", resp.StatusCode, m)
	}
	n, ok := m["ingested"].(float64)
	if !ok {
		t.Fatalf("400 response lacks the applied count: %v", m)
	}
	if n != 1 {
		t.Fatalf("ingested = %v, want 1 (only the point before the bad line)", n)
	}
}

func TestIngestLimitsDisabled(t *testing.T) {
	// Negative caps disable the guards entirely.
	ts := newLimitedServer(t, Config{MaxBodyBytes: -1, MaxPoints: -1})
	resp, m := postIngest(t, ts, ndjson(2000, 2, 1))
	if resp.StatusCode != http.StatusOK || m["ingested"].(float64) != 2000 {
		t.Fatalf("uncapped ingest: %d %v", resp.StatusCode, m)
	}
}

func TestIngestUnderDefaultLimitsUnaffected(t *testing.T) {
	ts := newLimitedServer(t, Config{})
	resp, m := postIngest(t, ts, ndjson(500, 2, 1))
	if resp.StatusCode != http.StatusOK || m["ingested"].(float64) != 500 {
		t.Fatalf("default-capped ingest: %d %v", resp.StatusCode, m)
	}
}
