package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Ingest hardening defaults. A request is refused with 413 once its body
// exceeds the byte cap or carries more points than the point cap —
// before the excess is buffered or applied — so a single client cannot
// make the daemon read unboundedly. Both caps are configurable;
// a negative configured value disables the cap.
const (
	defaultMaxBodyBytes = 64 << 20 // 64 MiB per ingest request
	defaultMaxPoints    = 1 << 20  // ~1M points per ingest request
)

// resolveLimit maps a configured cap to its effective value: 0 selects
// the default, negative disables (0 means "no limit" internally).
func resolveLimit(v, def int64) int64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// limitBody wraps an ingest request body with http.MaxBytesReader when a
// byte cap applies; exceeding it surfaces as *http.MaxBytesError from
// the decoder and closes the connection after the 413.
func limitBody(w http.ResponseWriter, r *http.Request, max int64) io.Reader {
	if max <= 0 {
		return r.Body
	}
	return http.MaxBytesReader(w, r.Body, max)
}

// runIngest streams ndjson points out of body and applies them to c in
// batches of maxBatch points (one AddBatch — one shard-lock acquisition
// — per batch). checkDim vets every point's dimension. On any failure it
// stops, keeps what was already applied, and returns the HTTP status and
// message to report alongside the applied count; status 0 means the
// whole body was ingested. Shared by the single-stream server and the
// multi-tenant per-stream handlers.
func runIngest(body io.Reader, maxBatch int, maxPoints int64, c Clusterer, checkDim func([]float64) error) (ingested int64, status int, msg string) {
	dec := json.NewDecoder(body)
	batch := make([][]float64, 0, maxBatch)
	flush := func() {
		if len(batch) > 0 {
			c.AddBatch(batch)
			ingested += int64(len(batch))
			batch = batch[:0]
		}
	}
	fail := func(st int, format string, args ...interface{}) (int64, int, string) {
		flush()
		return ingested, st, fmt.Sprintf(format, args...)
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return fail(http.StatusRequestEntityTooLarge,
					"request body exceeds %d bytes", mbe.Limit)
			}
			// Note: the applied count lives in the response's "ingested"
			// field; don't embed it in the message, it predates the flush.
			return fail(http.StatusBadRequest, "malformed ingest body: %v", err)
		}
		if maxPoints > 0 && ingested+int64(len(batch)) >= maxPoints {
			return fail(http.StatusRequestEntityTooLarge,
				"request exceeds %d points per request", maxPoints)
		}
		p, weight, err := parsePoint(raw)
		if err != nil {
			return fail(http.StatusBadRequest, "point %d: %v", ingested+int64(len(batch)), err)
		}
		if err := checkDim(p); err != nil {
			return fail(http.StatusBadRequest, "point %d: %v", ingested+int64(len(batch)), err)
		}
		if weight != 1 {
			wa, ok := c.(WeightedAdder)
			if !ok {
				return fail(http.StatusBadRequest, "backend %s does not accept weighted points", c.Name())
			}
			flush()
			wa.AddWeighted(p, weight)
			ingested++
			continue
		}
		batch = append(batch, p)
		if len(batch) == maxBatch {
			flush()
		}
	}
	flush()
	return ingested, 0, ""
}
