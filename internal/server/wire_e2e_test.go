package server

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamkm/internal/geom"
	"streamkm/internal/registry"
	"streamkm/internal/wire"
)

// This file is the differential equivalence suite for the binary ingest
// format: the same point sequence replayed through the ndjson path and
// through application/x-streamkm-batch into twin streams must leave both
// backends in the same state. The test registry is fully deterministic
// (fixed backend seed, sequential single-producer ingest, identical
// request batching), so "the same state" is asserted bit-for-bit on the
// final center sets, with a 1e-9 relative clustering-cost bound as the
// documented fallback contract. Points are pre-quantized to float32
// precision (wire.Quantize) so the binary wire's float32 coordinates are
// not a confound.

// quantPoints generates a deterministic float32-exact dataset: dim-d
// points in a few loose clusters.
func quantPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = wire.Quantize(rng.NormFloat64() + float64(3*(i%4)))
		}
		pts[i] = p
	}
	return pts
}

// postWire sends one batch over the chosen wire format and returns the
// acknowledged point count.
func postWire(t *testing.T, url string, binary bool, pts [][]float64, weights []float64) int64 {
	t.Helper()
	var body []byte
	contentType := "application/x-ndjson"
	if binary {
		raw, err := wire.EncodeBatch(pts, weights)
		if err != nil {
			t.Fatal(err)
		}
		body = raw
		contentType = wire.ContentType
	} else {
		var b strings.Builder
		for i, p := range pts {
			if weights != nil {
				fmt.Fprintf(&b, `{"p":%s,"w":%v}`+"\n", jsonFloats(p), weights[i])
			} else {
				b.WriteString(jsonFloats(p))
				b.WriteByte('\n')
			}
		}
		body = []byte(b.String())
	}
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s (%s): status %d body %v", url, contentType, resp.StatusCode, out)
	}
	return int64(out["ingested"].(float64))
}

// jsonFloats renders a point as a JSON array without going through
// encoding/json (keeps the helper dependency-free for exact floats —
// %v of a float64 round-trips exactly for strconv-parsable values).
func jsonFloats(p []float64) string {
	var b strings.Builder
	b.WriteByte('[')
	for j, x := range p {
		if j > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%v", x)
	}
	b.WriteByte(']')
	return b.String()
}

// fetchCenters queries a stream's centers with a forced recomputation,
// returning the count and center set.
func fetchCenters(t *testing.T, url string) (int64, [][]float64) {
	t.Helper()
	resp, m := getJSON(t, url+"?refresh=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("centers %s: status %d body %v", url, resp.StatusCode, m)
	}
	raw := m["centers"].([]interface{})
	centers := make([][]float64, len(raw))
	for i, c := range raw {
		cs := c.([]interface{})
		centers[i] = make([]float64, len(cs))
		for j, v := range cs {
			centers[i][j] = v.(float64)
		}
	}
	return int64(m["count"].(float64)), centers
}

// clusteringCost is the equivalence fallback metric: sum over the
// replayed points of the squared distance to the nearest center.
func clusteringCost(pts [][]float64, centers [][]float64) float64 {
	ws := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		ws[i] = geom.Weighted{P: geom.Point(p), W: 1}
	}
	cs := make([]geom.Point, len(centers))
	for i, c := range centers {
		cs[i] = geom.Point(c)
	}
	return geom.FlattenCenters(cs).Cost(ws)
}

// assertEquivalent compares the twin streams' final states: identical
// counts, and center sets that are bit-for-bit equal — or, failing
// exactness, within 1e-9 relative clustering cost (the documented bound
// for paths that are not perfectly deterministic).
func assertEquivalent(t *testing.T, label string, pts [][]float64, base string, a, b string) {
	t.Helper()
	countA, centersA := fetchCenters(t, base+"/streams/"+a+"/centers")
	countB, centersB := fetchCenters(t, base+"/streams/"+b+"/centers")
	if countA != countB {
		t.Fatalf("%s: counts diverge: ndjson %d, binary %d", label, countA, countB)
	}
	if int64(len(pts)) != countA {
		t.Fatalf("%s: count %d, replayed %d points", label, countA, len(pts))
	}
	exact := len(centersA) == len(centersB)
	if exact {
	outer:
		for i := range centersA {
			if len(centersA[i]) != len(centersB[i]) {
				exact = false
				break
			}
			for j := range centersA[i] {
				if centersA[i][j] != centersB[i][j] {
					exact = false
					break outer
				}
			}
		}
	}
	if exact {
		return
	}
	costA := clusteringCost(pts, centersA)
	costB := clusteringCost(pts, centersB)
	denom := math.Max(math.Abs(costA), math.Abs(costB))
	if denom == 0 {
		return
	}
	if rel := math.Abs(costA-costB) / denom; rel > 1e-9 {
		t.Fatalf("%s: centers diverge beyond the cost bound: ndjson cost %v, binary cost %v (rel %v)\nndjson: %v\nbinary: %v",
			label, costA, costB, rel, centersA, centersB)
	}
	t.Logf("%s: centers not bit-identical but within 1e-9 relative cost", label)
}

// TestBinaryNdjsonEquivalence replays the identical (float32-quantized)
// point sequence through both wire formats into twin streams of each
// backend variant and requires equivalent final state.
func TestBinaryNdjsonEquivalence(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{MaxBatch: 64})

	specs := []struct {
		name string
		spec string
	}{
		{"concurrent", `{"backend":"concurrent","algo":"CC","k":3}`},
		{"decayed", `{"backend":"decayed","algo":"CC","k":3,"half_life":400}`},
		{"windowed", `{"backend":"windowed","algo":"CC","k":3,"window_n":500}`},
	}
	pts := quantPoints(900, 3, 42)
	const reqBatch = 100 // spans multiple MaxBatch chunks per request

	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			idN, idB := "diff-"+sp.name+"-nd", "diff-"+sp.name+"-bin"
			for _, id := range []string{idN, idB} {
				req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/"+id, strings.NewReader(sp.spec))
				if err != nil {
					t.Fatal(err)
				}
				req.Header.Set("Content-Type", "application/json")
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("create %s: status %d", id, resp.StatusCode)
				}
			}
			// Sequential replay, identical request batching on both wires:
			// the backends see identical AddBatch call sequences.
			for off := 0; off < len(pts); off += reqBatch {
				end := off + reqBatch
				if end > len(pts) {
					end = len(pts)
				}
				if got := postWire(t, ts.URL+"/streams/"+idN+"/ingest", false, pts[off:end], nil); got != int64(end-off) {
					t.Fatalf("ndjson batch at %d: ingested %d, want %d", off, got, end-off)
				}
				if got := postWire(t, ts.URL+"/streams/"+idB+"/ingest", true, pts[off:end], nil); got != int64(end-off) {
					t.Fatalf("binary batch at %d: ingested %d, want %d", off, got, end-off)
				}
			}
			assertEquivalent(t, sp.name, pts, ts.URL, idN, idB)
		})
	}
}

// TestBinaryNdjsonEquivalenceWeighted covers the weighted record paths:
// ndjson {"p":...,"w":...} records versus a binary batch with the
// weights flag, same points, same weights.
func TestBinaryNdjsonEquivalenceWeighted(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{MaxBatch: 64})

	pts := quantPoints(400, 2, 7)
	weights := make([]float64, len(pts))
	rng := rand.New(rand.NewSource(11))
	for i := range weights {
		weights[i] = wire.Quantize(0.5 + rng.Float64()*4)
	}
	const reqBatch = 80
	for off := 0; off < len(pts); off += reqBatch {
		end := off + reqBatch
		if end > len(pts) {
			end = len(pts)
		}
		postWire(t, ts.URL+"/streams/wdiff-nd/ingest", false, pts[off:end], weights[off:end])
		postWire(t, ts.URL+"/streams/wdiff-bin/ingest", true, pts[off:end], weights[off:end])
	}
	assertEquivalent(t, "weighted", pts, ts.URL, "wdiff-nd", "wdiff-bin")
}

// TestBinaryIngestSingleStream exercises the legacy single-stream server
// binary path end-to-end: round trip through POST /ingest plus the
// malformed-body, empty-batch and wrong-dimension contracts.
func TestBinaryIngestSingleStream(t *testing.T) {
	srv := New(&sinkClusterer{}, Config{K: 2, Dim: 3, MaxBatch: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pts := [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if got := postWire(t, ts.URL+"/ingest", true, pts, nil); got != 3 {
		t.Fatalf("binary ingest acknowledged %d, want 3", got)
	}

	// Empty batch: valid, zero ingested.
	raw := make([]byte, 16)
	copy(raw, "SKMB")
	raw[4] = 1
	raw[8] = 3 // dim 3, count 0
	resp, err := http.Post(ts.URL+"/ingest", wire.ContentType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusOK || out["ingested"].(float64) != 0 {
		t.Fatalf("empty batch: status %d body %v", resp.StatusCode, out)
	}

	// Wrong dimension: 400, nothing applied.
	before := srv.c.Count()
	bad, err := wire.EncodeBatch([][]float64{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/ingest", wire.ContentType, bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusBadRequest || out["ingested"].(float64) != 0 {
		t.Fatalf("dim mismatch: status %d body %v", resp.StatusCode, out)
	}
	if srv.c.Count() != before {
		t.Fatalf("dim mismatch applied points: %d -> %d", before, srv.c.Count())
	}

	// Truncated body: 400, nothing applied.
	good, err := wire.EncodeBatch(pts, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/ingest", wire.ContentType, bytes.NewReader(good[:len(good)-2]))
	if err != nil {
		t.Fatal(err)
	}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated: status %d body %v", resp.StatusCode, out)
	}
	if srv.c.Count() != before {
		t.Fatalf("truncated body applied points: %d -> %d", before, srv.c.Count())
	}
}

// TestBinaryIngestEmptyBatchNeverCreatesStream mirrors the ndjson
// empty-body rule on the multi-tenant route: a zero-count binary batch
// against a missing stream is 404, not a lazily created tenant.
func TestBinaryIngestEmptyBatchNeverCreatesStream(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{})
	raw := make([]byte, 16)
	copy(raw, "SKMB")
	raw[4] = 1
	raw[8] = 2
	resp, err := http.Post(ts.URL+"/streams/ghost/ingest", wire.ContentType, bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("empty binary batch on missing stream: status %d body %v, want 404", resp.StatusCode, out)
	}
	resp, m := getJSON(t, ts.URL+"/streams")
	if total := m["total"].(float64); total != 0 {
		t.Fatalf("stream registered by empty batch: %v (status %d)", m, resp.StatusCode)
	}
}
