package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"streamkm/internal/wire"
)

// BenchmarkIngestWire measures the HTTP ingest path's codec cost on both
// wire formats with clustering stubbed out (sinkClusterer), so the delta
// is purely parse + allocate: the overhead the binary columnar format
// exists to remove. Points/op equalized; compare ns/op and allocs/op
// across the sub-benchmarks.
func BenchmarkIngestWire(b *testing.B) {
	const (
		points = 500
		dim    = 54 // covtype's dimensionality, the repo's reference dataset
	)
	pts := make([][]float64, points)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = float64(i%7) + float64(j)*0.25
		}
		pts[i] = p
	}

	var nd bytes.Buffer
	enc := json.NewEncoder(&nd)
	for _, p := range pts {
		if err := enc.Encode(p); err != nil {
			b.Fatal(err)
		}
	}
	bin, err := wire.EncodeBatch(pts, nil)
	if err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, contentType string, body []byte) {
		srv := New(&sinkClusterer{}, Config{K: 2, Dim: dim, MaxBatch: 512})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		client := ts.Client()
		b.SetBytes(int64(len(body)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Post(ts.URL+"/ingest", contentType, bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
		}
		b.ReportMetric(float64(points)*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	}

	b.Run("ndjson", func(b *testing.B) { run(b, "application/x-ndjson", nd.Bytes()) })
	b.Run("binary", func(b *testing.B) { run(b, wire.ContentType, bin) })
}

// BenchmarkBinaryDecode isolates the codec itself (no HTTP): one batch
// decode per op, pooled buffers, the allocation budget the wire package
// promises (one coordinate block + pooled headers).
func BenchmarkBinaryDecode(b *testing.B) {
	pts := make([][]float64, 500)
	for i := range pts {
		p := make([]float64, 54)
		for j := range p {
			p[j] = float64(i) * 0.5
		}
		pts[i] = p
	}
	raw, err := wire.EncodeBatch(pts, nil)
	if err != nil {
		b.Fatal(err)
	}
	var pool wire.BufferPool
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch, err := wire.Decode(raw, wire.Limits{}, &pool)
		if err != nil {
			b.Fatal(err)
		}
		pool.PutBatch(batch)
	}
}
