package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
)

// streamkmRegistry wires a registry to real streamkm backends through the
// spec-driven factory — the production pairing the daemon uses. Tenants
// can select any backend variant via their stream configuration.
func streamkmRegistry(t testing.TB, cfg registry.Config) *registry.Registry {
	t.Helper()
	if cfg.Default == (registry.StreamConfig{}) {
		cfg.Default = registry.StreamConfig{Algo: "CC", K: 3}
	}
	base := streamkm.Config{BucketSize: 20, Seed: 7}
	cfg.New = func(id string, sc registry.StreamConfig) (registry.Backend, error) {
		return streamkm.Open(streamkm.SpecFromStreamConfig(sc, 2), base)
	}
	cfg.Restore = func(id string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
		b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: base.Seed})
		if err != nil {
			return nil, registry.StreamConfig{}, err
		}
		return b, b.Spec().StreamConfig(), nil
	}
	cfg.Peek = func(r io.Reader) (registry.StreamConfig, int64, error) {
		m, err := persist.PeekBackend(r)
		if err != nil {
			return registry.StreamConfig{}, 0, err
		}
		return registry.StreamConfig{
			Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim,
			HalfLife: m.HalfLife, HalfLifeSeconds: m.HalfLifeSeconds, WindowN: m.WindowN,
			PointsPerSec: m.PointsPerSec, BytesPerSec: m.BytesPerSec,
			MaxResidentBytes: m.MaxResidentBytes,
		}, m.Count, nil
	}
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func newMultiServer(t testing.TB, regCfg registry.Config, cfg MultiConfig) (*httptest.Server, *Multi) {
	t.Helper()
	m := NewMulti(streamkmRegistry(t, regCfg), cfg)
	ts := httptest.NewServer(m.Handler())
	t.Cleanup(ts.Close)
	return ts, m
}

func pointsNDJSON(pts [][]float64) string {
	var b strings.Builder
	for _, p := range pts {
		b.WriteByte('[')
		for j, x := range p {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%v", x)
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func TestMultiLazyIngestAndCenters(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{})

	resp, err := http.Post(ts.URL+"/streams/t1/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(600, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	decodeJSON(t, resp, &body)
	if resp.StatusCode != 200 || body["ingested"].(float64) != 600 || body["stream"] != "t1" {
		t.Fatalf("lazy ingest: status %d body %v", resp.StatusCode, body)
	}

	resp, m := getJSON(t, ts.URL+"/streams/t1/centers")
	if resp.StatusCode != 200 {
		t.Fatalf("centers status %d: %v", resp.StatusCode, m)
	}
	if cs := m["centers"].([]interface{}); len(cs) != 3 {
		t.Fatalf("%d centers, want 3", len(cs))
	}
	if m["count"].(float64) != 600 || m["stream"] != "t1" {
		t.Fatalf("centers response %v", m)
	}

	// Queries never create tenants; bad ids are rejected up front.
	resp, _ = getJSON(t, ts.URL+"/streams/nope/centers")
	if resp.StatusCode != 404 {
		t.Fatalf("unknown stream centers status %d, want 404", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/streams/..%2Fetc/ingest", "application/x-ndjson",
		strings.NewReader("[1,2]\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 && resp.StatusCode != 404 {
		t.Fatalf("traversal id status %d, want 400/404", resp.StatusCode)
	}
}

func decodeJSON(t *testing.T, resp *http.Response, v interface{}) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("response not JSON: %v", err)
	}
}

func TestMultiRootAliasesDefaultStream(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{})
	resp, m := postIngest(t, ts, ndjson(100, 2, 3))
	if resp.StatusCode != 200 || m["ingested"].(float64) != 100 {
		t.Fatalf("alias ingest %d %v", resp.StatusCode, m)
	}
	// The same points are visible through the explicit default route.
	resp, m = getJSON(t, ts.URL+"/streams/default/centers")
	if resp.StatusCode != 200 || m["count"].(float64) != 100 {
		t.Fatalf("default stream centers %d %v", resp.StatusCode, m)
	}
	resp, m = getJSON(t, ts.URL+"/centers")
	if resp.StatusCode != 200 || m["count"].(float64) != 100 {
		t.Fatalf("alias centers %d %v", resp.StatusCode, m)
	}
}

func TestMultiExplicitCreateAndDelete(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{DataDir: t.TempDir()}, MultiConfig{})
	put := func(id, body string) *http.Response {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/streams/"+id, strings.NewReader(body))
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	resp := put("custom", `{"algo":"RCC","k":5}`)
	var in registry.Info
	decodeJSON(t, resp, &in)
	if resp.StatusCode != 201 || in.Algo != "RCC" || in.K != 5 || !in.Resident {
		t.Fatalf("create: %d %+v", resp.StatusCode, in)
	}
	resp = put("custom", `{"algo":"CC","k":2}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 409 {
		t.Fatalf("duplicate create status %d, want 409", resp.StatusCode)
	}
	resp = put("bogus", `{"algo":"NoSuchAlgo","k":2}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad algo create status %d, want 400", resp.StatusCode)
	}

	// The created stream answers with its own k.
	resp, err := http.Post(ts.URL+"/streams/custom/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(400, 2, 5)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	_, m := getJSON(t, ts.URL+"/streams/custom/centers")
	if cs := m["centers"].([]interface{}); len(cs) != 5 {
		t.Fatalf("custom stream answered %d centers, want 5", len(cs))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/streams/custom", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	resp, _ = getJSON(t, ts.URL+"/streams/custom/centers")
	if resp.StatusCode != 404 {
		t.Fatalf("deleted stream centers status %d, want 404", resp.StatusCode)
	}
}

func TestMultiListAndStats(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{DataDir: t.TempDir(), MaxResident: 2}, MultiConfig{})
	for _, id := range []string{"a", "b", "c"} {
		resp, err := http.Post(ts.URL+"/streams/"+id+"/ingest", "application/x-ndjson",
			strings.NewReader(ndjson(50, 2, 1)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Eviction is synchronous with the over-capacity ingest (enforceCap
	// runs before the request returns), so the /stats counters are already
	// settled here — no timing assumptions needed. Which stream lost the
	// LRU race depends on timestamp granularity; discover the victim from
	// the listing instead of assuming ingest order picked it.
	resp, m := getJSON(t, ts.URL+"/streams")
	if resp.StatusCode != 200 || m["total"].(float64) != 3 {
		t.Fatalf("list %d %v", resp.StatusCode, m)
	}
	victim := ""
	for _, s := range m["streams"].([]interface{}) {
		info := s.(map[string]interface{})
		if !info["resident"].(bool) {
			if victim != "" {
				t.Fatalf("more than one hibernated stream in %v", m)
			}
			victim = info["id"].(string)
		}
	}
	if victim == "" {
		t.Fatalf("no hibernated stream in %v", m)
	}

	resp, m = getJSON(t, ts.URL+"/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	streams := m["streams"].(map[string]interface{})
	if streams["total"].(float64) != 3 || streams["resident"].(float64) != 2 || streams["hibernated"].(float64) != 1 {
		t.Fatalf("registry stats %v", streams)
	}
	life := m["lifecycle"].(map[string]interface{})
	if life["evictions"].(float64) < 1 {
		t.Fatalf("no evictions recorded: %v", life)
	}

	// Per-stream stat of the hibernated tenant must not warm it.
	resp, m = getJSON(t, ts.URL+"/streams/"+victim+"/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("stream stats status %d", resp.StatusCode)
	}
	if m["resident"].(bool) {
		t.Fatalf("expected %s hibernated after LRU eviction: %v", victim, m)
	}
	if m["count"].(float64) != 50 {
		t.Fatalf("hibernated stat count %v, want 50", m["count"])
	}
	resp, m = getJSON(t, ts.URL+"/streams/"+victim+"/stats")
	if m["resident"].(bool) {
		t.Fatal("statting a cold stream warmed it")
	}

	// Querying it restores it — and the count survived the round trip.
	resp, m = getJSON(t, ts.URL+"/streams/"+victim+"/centers")
	if resp.StatusCode != 200 || m["count"].(float64) != 50 {
		t.Fatalf("restored centers %d %v", resp.StatusCode, m)
	}
}

func TestMultiSnapshotEndpoints(t *testing.T) {
	dir := t.TempDir()
	ts, m := newMultiServer(t, registry.Config{DataDir: dir}, MultiConfig{})
	resp, err := http.Post(ts.URL+"/streams/s1/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(120, 2, 9)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	resp, err = http.Post(ts.URL+"/streams/s1/snapshot", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	decodeJSON(t, resp, &body)
	if resp.StatusCode != 200 || body["bytes"].(float64) <= 0 {
		t.Fatalf("snapshot post %d %v", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/streams/s1/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || len(raw) == 0 {
		t.Fatalf("snapshot get %d (%d bytes)", resp.StatusCode, len(raw))
	}
	// The download restores into an equivalent clusterer.
	c, err := streamkm.NewConcurrentFromSnapshot(bytes.NewReader(raw), streamkm.Config{Seed: 3})
	if err != nil {
		t.Fatalf("downloaded snapshot does not restore: %v", err)
	}
	if c.Count() != 120 {
		t.Fatalf("downloaded snapshot count %d, want 120", c.Count())
	}
	_ = m
}

func TestMultiBadIngestDoesNotCreateStream(t *testing.T) {
	ts, m := newMultiServer(t, registry.Config{}, MultiConfig{})
	for _, body := range []string{"not json\n", `{"p":"nope"}`, ""} {
		resp, err := http.Post(ts.URL+"/streams/junk/ingest", "application/x-ndjson",
			strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			t.Fatalf("body %q: status 200, want an error", body)
		}
	}
	// None of the rejected bodies may have registered a tenant.
	if infos := m.Registry().List(); len(infos) != 0 {
		t.Fatalf("rejected ingests created streams: %+v", infos)
	}
	// An empty body against an existing stream is still a harmless no-op.
	seed, err := http.Post(ts.URL+"/streams/real/ingest", "application/x-ndjson",
		strings.NewReader(pointsNDJSON([][]float64{{1, 2}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, seed.Body)
	seed.Body.Close()
	if seed.StatusCode != http.StatusOK {
		t.Fatalf("seeding stream: status %d", seed.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/streams/real/ingest", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]interface{}
	decodeJSON(t, resp, &out)
	if resp.StatusCode != http.StatusOK || out["ingested"].(float64) != 0 {
		t.Fatalf("empty body on existing stream: status %d body %v", resp.StatusCode, out)
	}
}

func TestMultiIngestBodyLimit413(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{MaxBodyBytes: 64})
	resp, err := http.Post(ts.URL+"/streams/t/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(100, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	decodeJSON(t, resp, &body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status %d, want 413 (%v)", resp.StatusCode, body)
	}
}

func TestMultiIngestPointLimit413(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{MaxPoints: 10, MaxBatch: 4})
	resp, err := http.Post(ts.URL+"/streams/t/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(50, 2, 1)))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]interface{}
	decodeJSON(t, resp, &body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("too-many-points status %d, want 413 (%v)", resp.StatusCode, body)
	}
	if n := body["ingested"].(float64); n > 10 {
		t.Fatalf("applied %v points past the cap of 10", n)
	}
	// What was applied before the cap is kept, not rolled back.
	_, m := getJSON(t, ts.URL+"/streams/t/centers")
	if m["count"].(float64) != body["ingested"].(float64) {
		t.Fatalf("stream count %v != acknowledged %v", m["count"], body["ingested"])
	}
}
