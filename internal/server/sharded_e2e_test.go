package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/wire"
)

// This file is the e2e suite for the sharded ingest pipelines behind the
// decayed and windowed backends. The standard test registry already runs
// every backend with two lanes; here shard counts are explicit (and
// larger than GOMAXPROCS on small CI machines) so the merge paths are
// exercised regardless of the host, and the differential/cost/race
// contracts from the PR are pinned:
//
//   - twin ndjson/binary replays into sharded streams agree exactly on
//     count and bit-for-bit (or within the documented 1e-9 cost bound)
//     on centers;
//   - a sharded replay's clustering cost stays within 1.5x of a
//     single-lane reference replay of the same sequence;
//   - concurrent ingest racing a detach (the quiesce path) never loses
//     an acknowledged point: acked == stored in the frozen snapshot.

// shardedRegistry mirrors streamkmRegistry but with an explicit ingest
// lane count instead of the helper's fixed 2.
func shardedRegistry(t testing.TB, cfg registry.Config, shards int) *registry.Registry {
	t.Helper()
	if cfg.Default == (registry.StreamConfig{}) {
		cfg.Default = registry.StreamConfig{Algo: "CC", K: 3}
	}
	base := streamkm.Config{BucketSize: 20, Seed: 7}
	cfg.New = func(id string, sc registry.StreamConfig) (registry.Backend, error) {
		return streamkm.Open(streamkm.SpecFromStreamConfig(sc, shards), base)
	}
	cfg.Restore = func(id string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
		b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: base.Seed})
		if err != nil {
			return nil, registry.StreamConfig{}, err
		}
		return b, b.Spec().StreamConfig(), nil
	}
	cfg.Peek = func(r io.Reader) (registry.StreamConfig, int64, error) {
		m, err := persist.PeekBackend(r)
		if err != nil {
			return registry.StreamConfig{}, 0, err
		}
		return registry.StreamConfig{
			Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim,
			HalfLife: m.HalfLife, HalfLifeSeconds: m.HalfLifeSeconds, WindowN: m.WindowN,
		}, m.Count, nil
	}
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// separatedPoints generates n dim-d points in 4 widely separated unit
// Gaussians (spacing 200σ), float32-quantized for the binary wire.
func separatedPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, n)
	for i := range pts {
		p := make([]float64, dim)
		for j := range p {
			p[j] = wire.Quantize(rng.NormFloat64() + float64(200*(i%4)))
		}
		pts[i] = p
	}
	return pts
}

func putStream(t *testing.T, c *http.Client, url, spec string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, url, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create %s: status %d", url, resp.StatusCode)
	}
}

// TestShardedDifferentialEquivalence replays identical point sequences
// over both wire formats into 4-lane decayed and windowed streams.
// Sequential single-producer ingest makes the round-robin lane dispatch
// deterministic, so the twin contract stays as strict as the unsharded
// suite: exact counts, bit-identical centers (1e-9 relative cost as the
// documented fallback).
func TestShardedDifferentialEquivalence(t *testing.T) {
	reg := shardedRegistry(t, registry.Config{}, 4)
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{MaxBatch: 64}).Handler())
	defer ts.Close()

	specs := []struct {
		name string
		spec string
	}{
		{"decayed", `{"backend":"decayed","algo":"CC","k":3,"half_life":400}`},
		{"decayed-wall", `{"backend":"decayed","algo":"CC","k":3,"half_life_seconds":3600}`},
		{"windowed", `{"backend":"windowed","k":3,"window_n":500}`},
	}
	pts := quantPoints(900, 3, 43)
	const reqBatch = 100

	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			idN, idB := "shdiff-"+sp.name+"-nd", "shdiff-"+sp.name+"-bin"
			putStream(t, ts.Client(), ts.URL+"/streams/"+idN, sp.spec)
			putStream(t, ts.Client(), ts.URL+"/streams/"+idB, sp.spec)
			for off := 0; off < len(pts); off += reqBatch {
				end := off + reqBatch
				if end > len(pts) {
					end = len(pts)
				}
				if got := postWire(t, ts.URL+"/streams/"+idN+"/ingest", false, pts[off:end], nil); got != int64(end-off) {
					t.Fatalf("ndjson batch at %d: ingested %d, want %d", off, got, end-off)
				}
				if got := postWire(t, ts.URL+"/streams/"+idB+"/ingest", true, pts[off:end], nil); got != int64(end-off) {
					t.Fatalf("binary batch at %d: ingested %d, want %d", off, got, end-off)
				}
			}
			assertEquivalent(t, sp.name, pts, ts.URL, idN, idB)

			// Stats report the lane count for the sharded variants.
			resp, m := getJSON(t, ts.URL+"/streams/"+idN+"/stats")
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("stats status %d: %v", resp.StatusCode, m)
			}
			if got, _ := m["shards"].(float64); got != 4 {
				t.Fatalf("stats shards = %v, want 4 (%v)", m["shards"], m)
			}
		})
	}
}

// TestShardedVsSingleLaneCost replays the same sequence into a 4-lane
// and a 1-lane daemon: counts must agree exactly and the sharded
// clustering cost must stay within 1.5x of the single-lane reference
// (the coreset-union guarantee, measured end to end).
func TestShardedVsSingleLaneCost(t *testing.T) {
	multi := httptest.NewServer(NewMulti(shardedRegistry(t, registry.Config{}, 4), MultiConfig{MaxBatch: 64}).Handler())
	defer multi.Close()
	single := httptest.NewServer(NewMulti(shardedRegistry(t, registry.Config{}, 1), MultiConfig{MaxBatch: 64}).Handler())
	defer single.Close()

	specs := []struct {
		name string
		spec string
	}{
		// k matches the generator's 4 clusters and the clusters are far
		// apart: both replays then settle into the same optimum and the
		// cost ratio measures shard merge quality rather than k-means
		// seeding variance.
		{"decayed", `{"backend":"decayed","algo":"CC","k":4,"half_life":400}`},
		{"windowed", `{"backend":"windowed","k":4,"window_n":600}`},
	}
	pts := separatedPoints(1200, 3, 44)
	const reqBatch = 100

	for _, sp := range specs {
		sp := sp
		t.Run(sp.name, func(t *testing.T) {
			id := "ref-" + sp.name
			putStream(t, multi.Client(), multi.URL+"/streams/"+id, sp.spec)
			putStream(t, single.Client(), single.URL+"/streams/"+id, sp.spec)
			for off := 0; off < len(pts); off += reqBatch {
				end := off + reqBatch
				if end > len(pts) {
					end = len(pts)
				}
				postWire(t, multi.URL+"/streams/"+id+"/ingest", true, pts[off:end], nil)
				postWire(t, single.URL+"/streams/"+id+"/ingest", true, pts[off:end], nil)
			}
			countM, centersM := fetchCenters(t, multi.URL+"/streams/"+id+"/centers")
			countS, centersS := fetchCenters(t, single.URL+"/streams/"+id+"/centers")
			if countM != countS || countM != int64(len(pts)) {
				t.Fatalf("counts diverge: sharded %d, single %d, replayed %d", countM, countS, len(pts))
			}
			// Cost the tail the windowed variant still covers; the decayed
			// variant's recency weighting only narrows the measured gap.
			ref := pts
			if sp.name == "windowed" {
				ref = pts[len(pts)-600:]
			}
			costM := clusteringCost(ref, centersM)
			costS := clusteringCost(ref, centersS)
			if costM > 1.5*costS {
				t.Fatalf("sharded cost %v exceeds 1.5x single-lane cost %v", costM, costS)
			}
			if costS > 1.5*costM {
				t.Fatalf("single-lane cost %v exceeds 1.5x sharded cost %v — reference replay is suspect", costS, costM)
			}
		})
	}
}

// TestShardedIngestDetachQuiesce races concurrent producers against a
// detach (handoff freeze) of a sharded decayed stream and checks the
// quiesce contract end to end: every point a producer got a 200 for is
// in the frozen snapshot, every 409 is not, so acked == stored exactly.
// Run with -race: this is also the data-race probe for the lock-free
// sequencing path.
func TestShardedIngestDetachQuiesce(t *testing.T) {
	reg := shardedRegistry(t, registry.Config{DataDir: t.TempDir()}, 4)
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{MaxBatch: 64}).Handler())
	defer ts.Close()

	const id = "quiesce-dec"
	putStream(t, ts.Client(), ts.URL+"/streams/"+id, `{"backend":"decayed","algo":"CC","k":3,"half_life":1000}`)

	const producers = 4
	const batches = 30
	const batchLen = 20
	var acked atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + p)))
			<-start
			for b := 0; b < batches; b++ {
				var body strings.Builder
				for i := 0; i < batchLen; i++ {
					fmt.Fprintf(&body, "[%v,%v]\n", rng.NormFloat64(), rng.NormFloat64())
				}
				resp, err := ts.Client().Post(ts.URL+"/streams/"+id+"/ingest",
					"application/x-ndjson", strings.NewReader(body.String()))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					acked.Add(batchLen)
				case http.StatusConflict:
					return // stream froze mid-run; nothing acked
				default:
					t.Errorf("ingest status %d", resp.StatusCode)
					return
				}
			}
		}(p)
	}
	close(start)
	// Detach mid-flight: Quiesce drains the lanes, the snapshot freezes.
	resp, _ := doReq(t, ts.Client(), http.MethodPost, ts.URL+"/streams/"+id+"/detach", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detach status %d", resp.StatusCode)
	}
	wg.Wait()

	// Reattach and read the stored count: exactly the acknowledged points.
	resp, _ = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/streams/"+id+"/reattach", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reattach status %d", resp.StatusCode)
	}
	resp, m := getJSON(t, ts.URL+"/streams/"+id+"/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d: %v", resp.StatusCode, m)
	}
	if got := int64(m["count"].(float64)); got != acked.Load() {
		t.Fatalf("stored count %d != acked %d: quiesce lost or invented points", got, acked.Load())
	}
}

// TestShardedKillRestart is the kill/restart e2e for the sharded
// variants: 4-lane decayed (arrival-count and wall-clock) and windowed
// tenants checkpoint through the v4 sub-envelope path, a fresh registry
// restores them from disk alone, and counts, lane counts and clustering
// cost survive.
func TestShardedKillRestart(t *testing.T) {
	dir := t.TempDir()
	regCfg := registry.Config{DataDir: dir}
	reg := shardedRegistry(t, regCfg, 4)
	ts := httptest.NewServer(NewMulti(reg, MultiConfig{MaxBatch: 100}).Handler())

	tenants := []struct {
		id   string
		spec string
	}{
		{"sdec", `{"backend":"decayed","algo":"CC","k":3,"half_life":5000}`},
		{"swall", `{"backend":"decayed","algo":"CC","k":3,"half_life_seconds":86400}`},
		{"swin", `{"backend":"windowed","k":3,"window_n":100000}`},
	}
	pts := quantPoints(800, 2, 45)
	for _, tn := range tenants {
		putStream(t, ts.Client(), ts.URL+"/streams/"+tn.id, tn.spec)
		for off := 0; off < len(pts); off += 100 {
			postWire(t, ts.URL+"/streams/"+tn.id+"/ingest", true, pts[off:off+100], nil)
		}
	}
	preCost := make(map[string]float64)
	for _, tn := range tenants {
		count, centers := fetchCenters(t, ts.URL+"/streams/"+tn.id+"/centers")
		if count != int64(len(pts)) {
			t.Fatalf("%s count %d, want %d", tn.id, count, len(pts))
		}
		preCost[tn.id] = clusteringCost(pts, centers)
	}

	if err := reg.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Restart with a different configured lane count: snapshots carry
	// their own shard layout, so the tenants come back with the lanes
	// they were frozen with.
	reg2 := shardedRegistry(t, regCfg, 2)
	ts2 := httptest.NewServer(NewMulti(reg2, MultiConfig{MaxBatch: 100}).Handler())
	defer ts2.Close()

	for _, tn := range tenants {
		count, centers := fetchCenters(t, ts2.URL+"/streams/"+tn.id+"/centers")
		if count != int64(len(pts)) {
			t.Errorf("%s count after restart %d, want %d", tn.id, count, len(pts))
			continue
		}
		cost := clusteringCost(pts, centers)
		if cost > 2*preCost[tn.id] || preCost[tn.id] > 2*cost {
			t.Errorf("%s cost after restart %v vs %v", tn.id, cost, preCost[tn.id])
		}
		resp, m := getJSON(t, ts2.URL+"/streams/"+tn.id+"/stats")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s stats status %d", tn.id, resp.StatusCode)
		}
		if got, _ := m["shards"].(float64); got != 4 {
			t.Errorf("%s restored with %v lanes, want the frozen 4", tn.id, m["shards"])
		}
		if tn.id == "swall" {
			if hl, _ := m["half_life_seconds"].(float64); hl != 86400 {
				t.Errorf("swall half_life_seconds = %v after restart, want 86400", m["half_life_seconds"])
			}
		}
	}
}
