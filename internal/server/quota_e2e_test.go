package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"streamkm/internal/metrics"
	"streamkm/internal/registry"
)

// End-to-end quota behavior over HTTP: 429 + Retry-After on the wire,
// neighbor isolation, and the /metrics exposition staying consistent
// with what the requests actually did.

func postStreamIngest(t *testing.T, ts *httptest.Server, stream, body string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/streams/"+stream+"/ingest", "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	decodeJSON(t, resp, &m)
	return resp, m
}

func TestQuota429RetryAfterE2E(t *testing.T) {
	// points_per_sec 2: the burst is 2 tokens, so the second batch is
	// refused even on a slow CI runner (refilling a whole token takes
	// 500ms of wall clock).
	ts, _ := newMultiServer(t, registry.Config{
		Default: registry.StreamConfig{Algo: "CC", K: 3, PointsPerSec: 2},
	}, MultiConfig{})

	resp, m := postStreamIngest(t, ts, "a", "[1,2]\n[3,4]\n")
	if resp.StatusCode != http.StatusOK || m["ingested"].(float64) != 2 {
		t.Fatalf("first batch: %d %v", resp.StatusCode, m)
	}
	resp, m = postStreamIngest(t, ts, "a", "[5,6]\n")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled batch status %d, want 429 (%v)", resp.StatusCode, m)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want an integer >= 1", resp.Header.Get("Retry-After"))
	}
	if n, ok := m["ingested"].(float64); !ok || n != 0 {
		t.Fatalf("429 body must report ingested: 0, got %v", m)
	}
	if m["stream"] != "a" {
		t.Fatalf("429 body names stream %v, want a", m["stream"])
	}
	if !strings.Contains(m["error"].(string), "points_per_sec") {
		t.Fatalf("429 error does not name the quota: %v", m["error"])
	}

	// Neighbor isolation: stream b has its own untouched bucket.
	resp, m = postStreamIngest(t, ts, "b", "[1,2]\n[3,4]\n")
	if resp.StatusCode != http.StatusOK || m["ingested"].(float64) != 2 {
		t.Fatalf("neighbor throttled alongside the noisy tenant: %d %v", resp.StatusCode, m)
	}
}

func TestQuotaPerStreamOverrideE2E(t *testing.T) {
	// No daemon-wide default quota; one tenant opts into a cap via its
	// PUT spec, and only that tenant is throttled.
	ts, _ := newMultiServer(t, registry.Config{}, MultiConfig{})
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/streams/capped", strings.NewReader(`{"points_per_sec": 2}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create capped stream: status %d", resp.StatusCode)
	}

	if resp, m := postStreamIngest(t, ts, "capped", "[1,2]\n[3,4]\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("within burst: %d %v", resp.StatusCode, m)
	}
	if resp, _ := postStreamIngest(t, ts, "capped", "[5,6]\n"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped stream status %d, want 429", resp.StatusCode)
	}
	if resp, m := postStreamIngest(t, ts, "free", "[1,2]\n[3,4]\n[5,6]\n"); resp.StatusCode != http.StatusOK || m["ingested"].(float64) != 3 {
		t.Fatalf("uncapped stream: %d %v", resp.StatusCode, m)
	}

	// The quota surfaces in the stream's stats.
	r2, err := http.Get(ts.URL + "/streams/capped/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st map[string]interface{}
	decodeJSON(t, r2, &st)
	r2.Body.Close()
	if st["points_per_sec"].(float64) != 2 {
		t.Fatalf("stats does not echo the quota: %v", st)
	}
}

// scrapeProm fetches and parses a /metrics exposition.
func scrapeProm(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	samples, err := metrics.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("exposition does not parse: %v", err)
	}
	return samples
}

func TestMultiMetricsScrapeE2E(t *testing.T) {
	ts, _ := newMultiServer(t, registry.Config{
		Default: registry.StreamConfig{Algo: "CC", K: 3, PointsPerSec: 2},
	}, MultiConfig{})

	// 2 OK ingests on a (3 points), 1 throttled on a, 1 OK on b; 1 query
	// on a.
	if resp, _ := postStreamIngest(t, ts, "a", "[1,2]\n[3,4]\n"); resp.StatusCode != http.StatusOK {
		t.Fatal("seed ingest a failed")
	}
	if resp, _ := postStreamIngest(t, ts, "a", "[5,6]\n"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatal("expected throttle on a")
	}
	if resp, _ := postStreamIngest(t, ts, "b", "[7,8]\n"); resp.StatusCode != http.StatusOK {
		t.Fatal("seed ingest b failed")
	}
	if resp, err := http.Get(ts.URL + "/streams/a/centers"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("centers a: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	s := scrapeProm(t, ts.URL)

	// Endpoint counters agree with the requests issued, and each
	// histogram observed exactly one latency per request.
	if got := s[`streamkm_endpoint_requests_total{endpoint="ingest"}`]; got != 3 {
		t.Fatalf("ingest requests = %v, want 3", got)
	}
	if got := s[`streamkm_endpoint_errors_total{endpoint="ingest"}`]; got != 1 {
		t.Fatalf("ingest errors = %v, want 1", got)
	}
	if got := s[`streamkm_endpoint_latency_seconds_count{endpoint="ingest"}`]; got != 3 {
		t.Fatalf("ingest latency count = %v, want 3 (must match requests)", got)
	}
	if got := s[`streamkm_endpoint_requests_total{endpoint="centers"}`]; got != 1 {
		t.Fatalf("centers requests = %v, want 1", got)
	}

	// Per-tenant series: acknowledged points and request/latency
	// consistency per stream.
	if got := s[`streamkm_tenant_ingest_points_total{stream="a"}`]; got != 2 {
		t.Fatalf("tenant a points = %v, want 2", got)
	}
	if got := s[`streamkm_tenant_ingest_points_total{stream="b"}`]; got != 1 {
		t.Fatalf("tenant b points = %v, want 1", got)
	}
	if got := s[`streamkm_tenant_requests_total{op="ingest",stream="a"}`]; got != 2 {
		t.Fatalf("tenant a ingest requests = %v, want 2", got)
	}
	if got := s[`streamkm_tenant_errors_total{op="ingest",stream="a"}`]; got != 1 {
		t.Fatalf("tenant a ingest errors = %v, want 1", got)
	}
	if got := s[`streamkm_tenant_latency_seconds_count{op="ingest",stream="a"}`]; got != 2 {
		t.Fatalf("tenant a latency count = %v, want 2 (must match requests)", got)
	}
	if got := s[`streamkm_tenant_requests_total{op="query",stream="a"}`]; got != 1 {
		t.Fatalf("tenant a queries = %v, want 1", got)
	}

	// Registry families: both streams resident, one throttle accounted.
	if got := s[`streamkm_streams{state="resident"}`]; got != 2 {
		t.Fatalf("resident streams = %v, want 2", got)
	}
	if got := s[`streamkm_registry_events_total{event="throttle"}`]; got != 1 {
		t.Fatalf("throttle events = %v, want 1", got)
	}
	if _, ok := s["streamkm_uptime_seconds"]; !ok {
		t.Fatal("no uptime gauge")
	}
}

func TestSingleStreamMetricsScrapeE2E(t *testing.T) {
	ts, _ := newTestServer(t, 3, 2)
	if resp, m := postIngest(t, ts, ndjson(10, 2, 1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %v", resp.StatusCode, m)
	}
	s := scrapeProm(t, ts.URL)
	if got := s[`streamkm_endpoint_requests_total{endpoint="ingest"}`]; got != 1 {
		t.Fatalf("ingest requests = %v, want 1", got)
	}
	if got := s[`streamkm_endpoint_items_total{endpoint="ingest"}`]; got != 10 {
		t.Fatalf("ingest items = %v, want 10", got)
	}
	if got := s[`streamkm_endpoint_latency_seconds_count{endpoint="ingest"}`]; got != 1 {
		t.Fatalf("latency count = %v, want 1", got)
	}
}
