package server

import (
	"net/http"
	"sort"
	"time"

	"streamkm/internal/metrics"
)

// Prometheus exposition for the serving processes: GET /metrics on the
// single-stream Server, the multi-tenant Multi and (in internal/ring)
// the router. Everything is derived from the same counters /stats
// serves as JSON; the histograms add the latency distribution JSON only
// summarizes as p50/p95.

// promContentType is the text exposition format version the handlers
// emit.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// endpointSample pairs an endpoint name with its counter snapshot.
type endpointSample struct {
	name string
	snap metrics.EndpointSnapshot
}

// writeCommonMetrics emits the families every serving process shares:
// per-endpoint request counters and latency histograms, checkpoint
// counters, and uptime.
func writeCommonMetrics(e *metrics.Exposition, eps []endpointSample, ck metrics.CheckpointSnapshot, start time.Time) {
	req := e.Counter("streamkm_endpoint_requests_total", "Requests handled, by endpoint.")
	for _, ep := range eps {
		req.Add(float64(ep.snap.Requests), "endpoint", ep.name)
	}
	errs := e.Counter("streamkm_endpoint_errors_total", "Requests answered with an error status, by endpoint.")
	for _, ep := range eps {
		errs.Add(float64(ep.snap.Errors), "endpoint", ep.name)
	}
	items := e.Counter("streamkm_endpoint_items_total", "Items processed (points ingested, centers served), by endpoint.")
	for _, ep := range eps {
		items.Add(float64(ep.snap.Items), "endpoint", ep.name)
	}
	lat := e.Histogram("streamkm_endpoint_latency_seconds", "Request latency in seconds, by endpoint.")
	for _, ep := range eps {
		lat.Add(ep.snap.Latency, "endpoint", ep.name)
	}
	cks := e.Counter("streamkm_checkpoints_total", "Checkpoint attempts, by result.")
	cks.Add(float64(ck.Written), "result", "written")
	cks.Add(float64(ck.Failed), "result", "failed")
	e.Gauge("streamkm_uptime_seconds", "Seconds since process start.").Add(time.Since(start).Seconds())
}

// serveProm writes the accumulated exposition.
func serveProm(w http.ResponseWriter, e *metrics.Exposition) {
	w.Header().Set("Content-Type", promContentType)
	e.WriteTo(w)
}

// handleMetrics serves the multi-tenant daemon's Prometheus exposition:
// the common endpoint families plus registry lifecycle counters,
// residency gauges and the per-tenant ingest/query series.
func (m *Multi) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	st := m.reg.Stats()
	var e metrics.Exposition
	writeCommonMetrics(&e, []endpointSample{
		{"ingest", m.ingestStats.Snapshot()},
		{"centers", m.centersStats.Snapshot()},
		{"stats", m.statsStats.Snapshot()},
		{"snapshot", m.snapshotStats.Snapshot()},
		{"admin", m.adminStats.Snapshot()},
	}, st.Checkpoint, m.start)

	g := e.Gauge("streamkm_streams", "Registered streams, by residency state.")
	g.Add(float64(st.Resident), "state", "resident")
	g.Add(float64(st.Hibernated), "state", "hibernated")

	lf := st.Registry
	ev := e.Counter("streamkm_registry_events_total", "Registry lifecycle events, by type.")
	ev.Add(float64(lf.Creates), "event", "create")
	ev.Add(float64(lf.Deletes), "event", "delete")
	ev.Add(float64(lf.Evictions), "event", "eviction")
	ev.Add(float64(lf.EvictFailures), "event", "evict_failure")
	ev.Add(float64(lf.Restores), "event", "restore")
	ev.Add(float64(lf.StandbyInstalls), "event", "standby_install")
	ev.Add(float64(lf.Throttled), "event", "throttle")
	ev.Add(float64(lf.Shed), "event", "shed")
	ev.Add(float64(lf.Sweeps), "event", "sweep")

	type tsnap struct {
		id            string
		ingest, query metrics.EndpointSnapshot
	}
	var ts []tsnap
	m.tenants.Range(func(k, v interface{}) bool {
		t := v.(*tenantStats)
		ts = append(ts, tsnap{id: k.(string), ingest: t.ingest.Snapshot(), query: t.query.Snapshot()})
		return true
	})
	other := tsnap{id: tenantOverflow, ingest: m.tenantOther.ingest.Snapshot(), query: m.tenantOther.query.Snapshot()}
	if other.ingest.Requests > 0 || other.query.Requests > 0 {
		ts = append(ts, other)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].id < ts[j].id })

	treq := e.Counter("streamkm_tenant_requests_total", "Requests handled, by stream and operation.")
	for _, t := range ts {
		treq.Add(float64(t.ingest.Requests), "stream", t.id, "op", "ingest")
		treq.Add(float64(t.query.Requests), "stream", t.id, "op", "query")
	}
	terr := e.Counter("streamkm_tenant_errors_total", "Requests answered with an error status, by stream and operation.")
	for _, t := range ts {
		terr.Add(float64(t.ingest.Errors), "stream", t.id, "op", "ingest")
		terr.Add(float64(t.query.Errors), "stream", t.id, "op", "query")
	}
	tpts := e.Counter("streamkm_tenant_ingest_points_total", "Points ingested, by stream.")
	for _, t := range ts {
		tpts.Add(float64(t.ingest.Items), "stream", t.id)
	}
	tlat := e.Histogram("streamkm_tenant_latency_seconds", "Request latency in seconds, by stream and operation.")
	for _, t := range ts {
		tlat.Add(t.ingest.Latency, "stream", t.id, "op", "ingest")
		tlat.Add(t.query.Latency, "stream", t.id, "op", "query")
	}
	serveProm(w, &e)
}

// handleMetrics serves the single-stream server's exposition: the
// common endpoint families only (one stream needs no tenant series).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var e metrics.Exposition
	writeCommonMetrics(&e, []endpointSample{
		{"ingest", s.ingestStats.Snapshot()},
		{"centers", s.centersStats.Snapshot()},
		{"stats", s.statsStats.Snapshot()},
		{"snapshot", s.snapshotStats.Snapshot()},
	}, s.checkpoint.Snapshot(), s.start)
	serveProm(w, &e)
}
