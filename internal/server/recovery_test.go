package server

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"streamkm"
)

// The end-to-end crash-recovery suite: for every coreset algorithm, a
// server that is stopped after a snapshot and restored into a fresh
// process-equivalent must be indistinguishable — same count, same memory
// footprint, equivalent clustering cost — from a server that never went
// down. This is the test the checkpoint subsystem exists to pass.

// recoverable is a servable backend that can also checkpoint itself.
type recoverable interface {
	Clusterer
	Snapshotter
}

// lockedOnlineCC adapts a single-goroutine OnlineCC clusterer to the
// server's concurrent Clusterer interface with one mutex — the simplest
// way to serve (and therefore crash-recover) the paper's fastest-query
// algorithm, which has no sharded variant because its sequential cache
// does not union.
type lockedOnlineCC struct {
	mu sync.Mutex
	c  streamkm.Clusterer
}

func (l *lockedOnlineCC) AddBatch(pts [][]float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, p := range pts {
		l.c.Add(p)
	}
}

func (l *lockedOnlineCC) Centers() [][]float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Centers()
}

func (l *lockedOnlineCC) Count() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.(interface{ Count() int64 }).Count()
}

func (l *lockedOnlineCC) PointsStored() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.PointsStored()
}

func (l *lockedOnlineCC) Name() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c.Name()
}

func (l *lockedOnlineCC) Snapshot(w io.Writer) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return streamkm.Save(w, l.c)
}

// recoveryBackend builds fresh and snapshot-restored instances of one
// algorithm's serving backend.
type recoveryBackend struct {
	name    string
	fresh   func(t *testing.T) recoverable
	restore func(t *testing.T, snap []byte) recoverable
}

func recoveryBackends() []recoveryBackend {
	cfg := streamkm.Config{K: 3, BucketSize: 30, Seed: 11}
	var out []recoveryBackend
	for _, algo := range []streamkm.Algo{streamkm.AlgoCT, streamkm.AlgoCC, streamkm.AlgoRCC} {
		algo := algo
		out = append(out, recoveryBackend{
			name: string(algo),
			fresh: func(t *testing.T) recoverable {
				c, err := streamkm.NewConcurrent(algo, 2, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return c
			},
			restore: func(t *testing.T, snap []byte) recoverable {
				c, err := streamkm.NewConcurrentFromSnapshot(bytes.NewReader(snap), streamkm.Config{Seed: 43})
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				return c
			},
		})
	}
	out = append(out, recoveryBackend{
		name: "OnlineCC",
		fresh: func(t *testing.T) recoverable {
			c, err := streamkm.New(streamkm.AlgoOnlineCC, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return &lockedOnlineCC{c: c}
		},
		restore: func(t *testing.T, snap []byte) recoverable {
			c, err := streamkm.Load(bytes.NewReader(snap), streamkm.Config{Seed: 43})
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			return &lockedOnlineCC{c: c}
		},
	})
	return out
}

// recoveryStream generates a deterministic well-separated mixture so
// query randomness cannot flip cluster assignments between runs.
func recoveryStream(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{{0, 0}, {80, 0}, {0, 80}}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

// ingestChunks POSTs the points in fixed-size ndjson requests. Chunk size
// == MaxBatch keeps batch (and therefore shard-routing) boundaries
// identical between an uninterrupted run and a snapshot/restore run.
func ingestChunks(t *testing.T, ts *httptest.Server, pts [][]float64, chunk int) {
	t.Helper()
	for i := 0; i < len(pts); i += chunk {
		end := i + chunk
		if end > len(pts) {
			end = len(pts)
		}
		var b strings.Builder
		for _, p := range pts[i:end] {
			fmt.Fprintf(&b, "[%v,%v]\n", p[0], p[1])
		}
		resp, err := ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("ingest status %d", resp.StatusCode)
		}
	}
}

func fetchSnapshot(t *testing.T, ts *httptest.Server) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /snapshot status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func kmeansCost(pts [][]float64, centers [][]float64) float64 {
	return streamkm.Cost(pts, centers)
}

// TestSnapshotDuringConcurrentTraffic checkpoints over HTTP while P
// producers ingest and queriers read /centers. Every snapshot taken must
// decode and restore to a consistent state whose count lies inside the
// bounds observed around the request, ingest must never deadlock, and no
// point may be lost. Run with -race.
func TestSnapshotDuringConcurrentTraffic(t *testing.T) {
	const (
		producers = 4
		batches   = 30
		batchSize = 40
	)
	c, err := streamkm.NewConcurrent(streamkm.AlgoCC, producers, streamkm.Config{K: 3, BucketSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(c, Config{K: 3, MaxBatch: batchSize}).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			pts := recoveryStream(batchSize, seed)
			var b strings.Builder
			for _, pt := range pts {
				fmt.Fprintf(&b, "[%v,%v]\n", pt[0], pt[1])
			}
			body := b.String()
			for i := 0; i < batches; i++ {
				resp, err := ts.Client().Post(ts.URL+"/ingest", "application/x-ndjson", strings.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(int64(p + 1))
	}
	// Queriers hammer the cached-centers fast path until producers finish.
	for q := 0; q < 2; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := ts.Client().Get(ts.URL + "/centers")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	type bound struct {
		raw    []byte
		lo, hi int64
	}
	var snaps []bound
	for i := 0; i < 6; i++ {
		lo := c.Count()
		raw := fetchSnapshot(t, ts)
		snaps = append(snaps, bound{raw: raw, lo: lo, hi: c.Count()})
	}
	close(stop)
	wg.Wait()

	for i, s := range snaps {
		r, err := streamkm.NewConcurrentFromSnapshot(bytes.NewReader(s.raw), streamkm.Config{Seed: 5})
		if err != nil {
			t.Fatalf("snapshot %d taken under load failed to restore: %v", i, err)
		}
		if n := r.Count(); n < s.lo || n > s.hi {
			t.Errorf("snapshot %d count %d outside observed bounds [%d,%d]", i, n, s.lo, s.hi)
		}
	}
	if got, want := c.Count(), int64(producers*batches*batchSize); got != want {
		t.Fatalf("final count %d, want %d (ingest lost points under snapshots)", got, want)
	}
}

func TestEndToEndCrashRecovery(t *testing.T) {
	const (
		n     = 2400
		chunk = 50
	)
	stream := recoveryStream(n, 77)
	holdout := recoveryStream(600, 991)

	for _, b := range recoveryBackends() {
		t.Run(b.name, func(t *testing.T) {
			// Uninterrupted reference run.
			ref := b.fresh(t)
			refSrv := httptest.NewServer(New(ref, Config{K: 3, MaxBatch: chunk}).Handler())
			ingestChunks(t, refSrv, stream, chunk)
			refCount := ref.Count()
			refStored := ref.PointsStored()
			refCost := kmeansCost(holdout, ref.Centers())
			refSrv.Close()
			if refCount != n {
				t.Fatalf("reference count %d, want %d", refCount, n)
			}

			// Crashed run: ingest half, snapshot over HTTP, tear everything
			// down, restore into a brand-new server, ingest the rest.
			first := b.fresh(t)
			srv1 := httptest.NewServer(New(first, Config{K: 3, MaxBatch: chunk}).Handler())
			ingestChunks(t, srv1, stream[:n/2], chunk)
			snap := fetchSnapshot(t, srv1)
			srv1.Close() // the "crash": the first server is gone for good

			restored := b.restore(t, snap)
			srv2 := httptest.NewServer(New(restored, Config{K: 3, MaxBatch: chunk}).Handler())
			defer srv2.Close()
			if got := restored.Count(); got != n/2 {
				t.Fatalf("restored count %d, want %d", got, n/2)
			}
			ingestChunks(t, srv2, stream[n/2:], chunk)

			// No ingested weight may be lost, and memory must rebuild to
			// exactly the uninterrupted footprint (the structures are
			// deterministic in the stream's batch boundaries).
			if got := restored.Count(); got != refCount {
				t.Errorf("count after recovery %d, want %d", got, refCount)
			}
			if got := restored.PointsStored(); got != refStored {
				t.Errorf("points stored after recovery %d, want %d", got, refStored)
			}

			// Clustering quality must be equivalent within the tolerance of
			// re-seeded query randomness.
			gotCost := kmeansCost(holdout, restored.Centers())
			if gotCost > 2*refCost || refCost > 2*gotCost {
				t.Errorf("recovered cost %v vs uninterrupted %v", gotCost, refCost)
			}
		})
	}
}
