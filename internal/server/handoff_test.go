package server

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"streamkm/internal/registry"
)

func doReq(t *testing.T, c *http.Client, method, url string, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, raw
}

// TestHandoffEndpoints drives the migration protocol over HTTP between
// two daemon-equivalent servers, exactly as the router does: detach on
// the source (with the owner hint), download the snapshot, install it on
// the destination, delete the source copy — and verify the moved tenant
// serves identically on the other side.
func TestHandoffEndpoints(t *testing.T) {
	src, _ := newMultiServer(t, registry.Config{DataDir: t.TempDir()}, MultiConfig{})
	dst, _ := newMultiServer(t, registry.Config{DataDir: t.TempDir()}, MultiConfig{})

	resp, err := http.Post(src.URL+"/streams/mv/ingest", "application/x-ndjson",
		strings.NewReader(ndjson(300, 2, 7)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Detach with an owner hint.
	resp, _ = doReq(t, src.Client(), http.MethodPost, src.URL+"/streams/mv/detach",
		`{"owner":"`+dst.URL+`"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detach status %d", resp.StatusCode)
	}

	// Writes and reads against the frozen tenant answer 409 with the hint.
	resp, _ = doReq(t, src.Client(), http.MethodPost, src.URL+"/streams/mv/ingest", "[1,2]\n")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("ingest on detached stream: status %d, want 409", resp.StatusCode)
	}
	if got := resp.Header.Get(OwnerHeader); got != dst.URL {
		t.Fatalf("409 owner header %q, want %q", got, dst.URL)
	}
	resp, _ = doReq(t, src.Client(), http.MethodGet, src.URL+"/streams/mv/centers", "")
	if resp.StatusCode != http.StatusConflict || resp.Header.Get(OwnerHeader) != dst.URL {
		t.Fatalf("centers on detached stream: status %d owner %q", resp.StatusCode, resp.Header.Get(OwnerHeader))
	}

	// Snapshot still downloads (that is the state that travels).
	resp, snap := doReq(t, src.Client(), http.MethodGet, src.URL+"/streams/mv/snapshot", "")
	if resp.StatusCode != http.StatusOK || len(snap) == 0 {
		t.Fatalf("snapshot of detached stream: status %d (%d bytes)", resp.StatusCode, len(snap))
	}

	// Install on the destination.
	req, err := http.NewRequest(http.MethodPut, dst.URL+"/streams/mv/snapshot", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	resp2, err := dst.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("install status %d", resp2.StatusCode)
	}

	// Complete: delete the source copy; the destination serves the tenant.
	resp, _ = doReq(t, src.Client(), http.MethodDelete, src.URL+"/streams/mv", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete of detached source copy: status %d", resp.StatusCode)
	}
	resp, m := getJSON(t, dst.URL+"/streams/mv/centers")
	if resp.StatusCode != http.StatusOK || m["count"].(float64) != 300 {
		t.Fatalf("migrated tenant on destination: status %d %v", resp.StatusCode, m)
	}

	// Install over a live tenant is refused.
	req, _ = http.NewRequest(http.MethodPut, dst.URL+"/streams/mv/snapshot", bytes.NewReader(snap))
	resp2, err = dst.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("re-install over live tenant: status %d, want 409", resp2.StatusCode)
	}

	// Garbage install: 400, nothing registered.
	req, _ = http.NewRequest(http.MethodPut, dst.URL+"/streams/junk/snapshot",
		strings.NewReader("not a snapshot"))
	resp2, err = dst.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage install: status %d, want 400", resp2.StatusCode)
	}
	if resp, _ := getJSON(t, dst.URL+"/streams/junk/stats"); resp.StatusCode != http.StatusNotFound {
		t.Fatal("failed install left a registered stream")
	}

	// Reattach aborts a handoff: detach the migrated tenant on dst, then
	// bring it back to service with the count intact.
	resp, _ = doReq(t, dst.Client(), http.MethodPost, dst.URL+"/streams/mv/detach", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detach status %d", resp.StatusCode)
	}
	resp, _ = doReq(t, dst.Client(), http.MethodPost, dst.URL+"/streams/mv/reattach", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reattach status %d", resp.StatusCode)
	}
	resp, m = getJSON(t, dst.URL+"/streams/mv/centers")
	if resp.StatusCode != http.StatusOK || m["count"].(float64) != 300 {
		t.Fatalf("tenant after aborted handoff: status %d %v", resp.StatusCode, m)
	}
}

// TestListHibernatedBackendSpec is the listing-bugfix regression: a
// hibernated stream's GET /streams entry must carry the authoritative
// backend spec — peeked from its snapshot — not the requested-config
// residue. Before the fix, a stream created lazily under a spec-less
// default listed with no backend field at all while hibernated, and a
// hibernated windowed tenant listed a phantom inherited algo.
func TestListHibernatedBackendSpec(t *testing.T) {
	// The default stream config deliberately names no backend variant —
	// the registry API allows it, and Open resolves it to "concurrent".
	ts, m := newMultiServer(t, registry.Config{
		DataDir: t.TempDir(),
		Default: registry.StreamConfig{Algo: "CC", K: 3},
	}, MultiConfig{})

	resp, err := http.Post(ts.URL+"/streams/plain/ingest", "application/x-ndjson",
		strings.NewReader(pointsNDJSON([][]float64{{1, 2}, {3, 4}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	resp, _ = doReq(t, ts.Client(), http.MethodPut, ts.URL+"/streams/win",
		`{"backend":"windowed","window_n":500}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create windowed: status %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/streams/win/ingest", "application/x-ndjson",
		strings.NewReader(pointsNDJSON([][]float64{{5, 6}, {7, 8}})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Hibernate everything.
	for _, id := range []string{"plain", "win"} {
		resp, _ = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/streams/"+id+"/detach", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detach %s: status %d", id, resp.StatusCode)
		}
		resp, _ = doReq(t, ts.Client(), http.MethodPost, ts.URL+"/streams/"+id+"/reattach", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reattach %s: status %d", id, resp.StatusCode)
		}
	}
	for _, in := range m.Registry().List() {
		if in.Resident {
			t.Fatalf("stream %s still resident after hibernation", in.ID)
		}
	}

	resp, lst := getJSON(t, ts.URL+"/streams")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status %d", resp.StatusCode)
	}
	byID := map[string]map[string]interface{}{}
	for _, raw := range lst["streams"].([]interface{}) {
		e := raw.(map[string]interface{})
		byID[e["id"].(string)] = e
	}
	if got, _ := byID["plain"]["backend"].(string); got != "concurrent" {
		t.Errorf("hibernated lazily-created stream lists backend %q, want %q (entry %v)",
			got, "concurrent", byID["plain"])
	}
	if got, _ := byID["win"]["backend"].(string); got != "windowed" {
		t.Errorf("hibernated windowed stream lists backend %q, want %q", got, "windowed")
	}
	if algo, ok := byID["win"]["algo"]; ok && algo != "" {
		t.Errorf("hibernated windowed stream lists phantom algo %v", algo)
	}
	if byID["win"]["window_n"].(float64) != 500 {
		t.Errorf("hibernated windowed stream lost window_n: %v", byID["win"])
	}
	// Counts captured at hibernation survive in the listing too.
	if byID["plain"]["count"].(float64) != 2 || byID["win"]["count"].(float64) != 2 {
		t.Errorf("hibernated counts wrong: %v / %v", byID["plain"], byID["win"])
	}
}
