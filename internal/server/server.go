package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/metrics"
	"streamkm/internal/persist"
	"streamkm/internal/trace"
	"streamkm/internal/wire"
)

// Clusterer is the minimal surface the HTTP layer needs from a streaming
// clusterer. It is deliberately algorithm-agnostic ([][]float64 in and
// out) so windowed, decayed or sharded variants serve identically.
// Implementations must be safe for concurrent use.
type Clusterer interface {
	// AddBatch observes a batch of unit-weight points.
	AddBatch(pts [][]float64)
	// Centers returns the current cluster centers.
	Centers() [][]float64
	// Count returns the number of points observed so far.
	Count() int64
	// PointsStored reports memory use in stored points.
	PointsStored() int
	// Name identifies the algorithm in stats responses.
	Name() string
}

// WeightedAdder is optionally implemented by backends that accept
// weighted points ({"p":[...],"w":2.5} ingest values).
type WeightedAdder interface {
	AddWeighted(p []float64, w float64)
}

// Refresher is optionally implemented by backends with a centers cache;
// GET /centers?refresh=1 calls it to force recomputation.
type Refresher interface {
	Refresh() [][]float64
}

// ContextCenterer is optionally implemented by backends that stage their
// query internals (e.g. the sharded pipelines' shard-merge) into the
// request's trace span; handleCenters prefers it over Clusterer.Centers.
type ContextCenterer interface {
	CentersContext(ctx context.Context) [][]float64
}

// ContextRefresher is ContextCenterer's forced-recomputation
// counterpart, preferred over Refresher when ?refresh=1 is set.
type ContextRefresher interface {
	RefreshContext(ctx context.Context) [][]float64
}

// CacheStater is optionally implemented by backends with a centers
// cache; /stats reports its hit/miss counters.
type CacheStater interface {
	CacheStats() (hits, misses int64)
}

// Snapshotter is optionally implemented by backends whose state can be
// serialized (e.g. streamkm.Concurrent); it powers GET/POST /snapshot and
// the daemon's periodic checkpoints. Snapshot must be safe to call while
// other goroutines ingest and query.
type Snapshotter interface {
	Snapshot(w io.Writer) error
}

// Config configures a Server.
type Config struct {
	// K is the number of centers the backend answers with; reported in
	// /centers and /stats responses.
	K int
	// Dim fixes the expected point dimension. 0 means adopt the dimension
	// of the first ingested point.
	Dim int
	// MaxBatch caps how many points are applied to the backend per
	// AddBatch call while streaming an ingest body. Default 512.
	MaxBatch int
	// SnapshotPath, when non-empty, is where POST /snapshot (and the
	// daemon's checkpoint ticker, via WriteCheckpoint) persists the
	// backend's state. Writes are atomic: temp file + fsync + rename, so
	// a crash mid-checkpoint never corrupts the previous one.
	SnapshotPath string
	// MaxBodyBytes caps the size of one ingest request body; beyond it
	// the request is refused with 413 instead of read unboundedly.
	// 0 selects the 64 MiB default, negative disables the cap.
	MaxBodyBytes int64
	// MaxPoints caps how many points one ingest request may carry (413
	// beyond). 0 selects the default (~1M), negative disables the cap.
	MaxPoints int64
	// Trace receives one span per request and serves GET /debug/traces.
	// Nil allocates a private recorder with default capacities.
	Trace *trace.Recorder
	// SlowRequest, when positive, emits one structured log record (trace
	// id, stream, endpoint, dominant stage) per request slower than it.
	SlowRequest time.Duration
	// Logger receives slow-request records; nil uses slog.Default().
	Logger *slog.Logger
}

// Server serves a Clusterer over HTTP. Create with New, mount via
// Handler. All handlers are safe for concurrent use; per-endpoint
// counters are lock-free.
type Server struct {
	c     Clusterer
	cfg   Config
	dim   atomic.Int64 // fixed stream dimension; 0 until first point
	start time.Time
	mux   *http.ServeMux

	ingestStats   metrics.EndpointStats
	centersStats  metrics.EndpointStats
	statsStats    metrics.EndpointStats
	snapshotStats metrics.EndpointStats
	checkpoint    metrics.CheckpointStats

	checkpointMu sync.Mutex // serializes temp-file writes to SnapshotPath

	pool wire.BufferPool // recycles binary-ingest body/header buffers

	tr     *trace.Recorder
	logger *slog.Logger
}

// New builds a Server over c. cfg.K should match the backend's k.
func New(c Clusterer, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	cfg.MaxBodyBytes = resolveLimit(cfg.MaxBodyBytes, defaultMaxBodyBytes)
	cfg.MaxPoints = resolveLimit(cfg.MaxPoints, defaultMaxPoints)
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder(0, 0)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	s := &Server{c: c, cfg: cfg, start: time.Now(), mux: http.NewServeMux(), tr: cfg.Trace, logger: cfg.Logger}
	if cfg.Dim > 0 {
		s.dim.Store(int64(cfg.Dim))
	}
	s.mux.Handle("POST /ingest", s.observe("ingest", &s.ingestStats, s.handleIngest))
	s.mux.Handle("GET /centers", s.observe("centers", &s.centersStats, s.handleCenters))
	s.mux.Handle("GET /stats", s.observe("stats", &s.statsStats, s.handleStats))
	s.mux.Handle("GET /snapshot", s.observe("snapshot", &s.snapshotStats, s.handleSnapshotGet))
	s.mux.Handle("POST /snapshot", s.observe("snapshot", &s.snapshotStats, s.handleSnapshotPost))
	// Outside observe(): scrapes must not pollute the counters or the
	// trace window they read.
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/traces", s.tr.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s
}

// Handler returns the routing handler for the server's endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// handled is an http handler that additionally reports how many items it
// processed and whether it failed, for endpoint accounting.
type handled func(w http.ResponseWriter, r *http.Request) (items int64, failed bool)

// observe wraps a handler with latency/throughput accounting and the
// per-request span lifecycle: an incoming traceparent joins its trace,
// anything else starts a fresh one; the span rides the request context
// so deeper layers (registry lock-wait, restore) can add stages; and a
// request over the slow threshold emits one structured log record.
func observe(tr *trace.Recorder, slow time.Duration, logger *slog.Logger, name string, st *metrics.EndpointStats, h handled) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		tid, parent, _, _ := trace.Parse(r.Header.Get(trace.Header))
		sp := tr.StartSpan(name, tid, parent)
		r = r.WithContext(trace.NewContext(r.Context(), sp))
		sw := &statusWriter{ResponseWriter: w}
		items, failed := h(sw, r)
		d := time.Since(t0)
		st.Record(d, items, failed)
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http's implicit 200
		}
		sp.SetStatus(status)
		sp.SetFailed(failed)
		data := sp.End()
		if slow > 0 && d >= slow {
			trace.LogSlow(logger, data)
		}
	})
}

// statusWriter captures the status code a handler resolved to, for the
// request's span; a Write without an explicit WriteHeader is the
// implicit 200.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (s *Server) observe(name string, st *metrics.EndpointStats, h handled) http.Handler {
	return observe(s.tr, s.cfg.SlowRequest, s.logger, name, st, h)
}

// Traces returns the recorder behind GET /debug/traces.
func (s *Server) Traces() *trace.Recorder { return s.tr }

// ingestValue is one ndjson value in an ingest body: either a bare JSON
// array (a unit-weight point) or an object {"p":[...],"w":2.5}. W is a
// pointer so an absent weight (default 1) is distinguishable from an
// explicit, invalid "w":0.
type ingestValue struct {
	P []float64 `json:"p"`
	W *float64  `json:"w"`
}

// handleIngest applies the request body's points to the backend. An
// application/x-streamkm-batch body takes the binary columnar path (one
// decode pass, one coordinate allocation, pooled buffers; all-or-nothing
// by construction); anything else streams through the ndjson
// compatibility path, which on a malformed value, dimension mismatch or
// exceeded request cap stops, keeps what was already applied, and
// reports both the error and the applied count.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) (int64, bool) {
	var (
		ingested int64
		status   int
		msg      string
	)
	sp := trace.FromContext(r.Context())
	if isBinaryBatch(r) {
		endRead := sp.StartStage("body-read")
		raw, st, m := readBody(w, r, s.cfg.MaxBodyBytes, &s.pool)
		endRead()
		if st != 0 {
			writeJSON(w, st, map[string]interface{}{"error": m, "ingested": 0})
			s.pool.PutBytes(raw)
			return 0, true
		}
		endDecode := sp.StartStage("wire-decode")
		batch, dst, dmsg := decodeBinary(raw, s.cfg.MaxPoints, &s.pool)
		endDecode()
		if dst != 0 {
			writeJSON(w, dst, map[string]interface{}{"error": dmsg, "ingested": 0})
			s.pool.PutBytes(raw)
			return 0, true
		}
		endApply := sp.StartStage("cluster-apply")
		ingested, status, msg = applyBinary(batch, s.cfg.MaxBatch, s.c, s.checkDim)
		endApply()
		s.pool.PutBatch(batch)
		s.pool.PutBytes(raw)
	} else {
		body := limitBody(w, r, s.cfg.MaxBodyBytes)
		// ndjson decoding is interleaved with application, so the two
		// report as one cluster-apply stage.
		endApply := sp.StartStage("cluster-apply")
		ingested, status, msg = runIngest(body, s.cfg.MaxBatch, s.cfg.MaxPoints, s.c, s.checkDim)
		endApply()
	}
	if status != 0 {
		writeJSON(w, status, map[string]interface{}{
			"error":    msg,
			"ingested": ingested,
		})
		return ingested, true
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"ingested": ingested,
		"count":    s.c.Count(),
	})
	return ingested, false
}

// parsePoint interprets one raw ingest value.
func parsePoint(raw json.RawMessage) ([]float64, float64, error) {
	i := 0
	for i < len(raw) && (raw[i] == ' ' || raw[i] == '\t' || raw[i] == '\n' || raw[i] == '\r') {
		i++
	}
	if i < len(raw) && raw[i] == '{' {
		var v ingestValue
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, 0, fmt.Errorf("malformed weighted point: %v", err)
		}
		w := 1.0
		if v.W != nil {
			w = *v.W
		}
		if w <= 0 {
			return nil, 0, fmt.Errorf("weight must be > 0, got %v", w)
		}
		if len(v.P) == 0 {
			return nil, 0, errors.New(`weighted point has empty "p"`)
		}
		return v.P, w, nil
	}
	var p []float64
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, 0, fmt.Errorf("expected a JSON array of coordinates: %v", err)
	}
	if len(p) == 0 {
		return nil, 0, errors.New("empty point")
	}
	return p, 1, nil
}

// checkDim enforces a single stream dimension, adopting the first point's
// if none was configured.
func (s *Server) checkDim(p []float64) error {
	d := int64(len(p))
	if s.dim.CompareAndSwap(0, d) {
		return nil
	}
	if want := s.dim.Load(); want != d {
		return fmt.Errorf("dimension mismatch: stream is %d-dimensional, got %d", want, d)
	}
	return nil
}

// handleCenters answers a clustering query, via the backend's cached fast
// path unless ?refresh=1 forces recomputation.
func (s *Server) handleCenters(w http.ResponseWriter, r *http.Request) (int64, bool) {
	var centers [][]float64
	refresh, _ := strconv.ParseBool(r.URL.Query().Get("refresh"))
	endStage := trace.FromContext(r.Context()).StartStage("coreset-recompute")
	centers = queryCenters(r.Context(), s.c, refresh)
	endStage()
	if centers == nil {
		centers = [][]float64{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"algo":    s.c.Name(),
		"k":       s.cfg.K,
		"count":   s.c.Count(),
		"centers": centers,
	})
	return int64(len(centers)), false
}

// queryCenters dispatches a centers query to the richest interface the
// backend offers: context-carrying variants (so backend-internal stages
// like shard-merge land in the request's span) over plain ones, forced
// refresh over the cached fast path.
func queryCenters(ctx context.Context, c Clusterer, refresh bool) [][]float64 {
	if refresh {
		if rf, ok := c.(ContextRefresher); ok {
			return rf.RefreshContext(ctx)
		}
		if rf, ok := c.(Refresher); ok {
			return rf.Refresh()
		}
	}
	if cc, ok := c.(ContextCenterer); ok {
		return cc.CentersContext(ctx)
	}
	return c.Centers()
}

// handleSnapshotGet streams the backend's serialized state to the client
// — the off-box backup path. The snapshot is buffered first (coreset
// state is small by construction — that is the paper's point) so an
// encoding failure still yields a clean error status instead of a
// truncated download.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, _ *http.Request) (int64, bool) {
	sn, ok := s.c.(Snapshotter)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]interface{}{
			"error": fmt.Sprintf("backend %s does not support snapshots", s.c.Name()),
		})
		return 0, true
	}
	var buf bytes.Buffer
	if err := sn.Snapshot(&buf); err != nil {
		// Not a checkpoint failure: /stats "checkpoint" counters track
		// only writes to SnapshotPath (WriteCheckpoint).
		writeJSON(w, http.StatusInternalServerError, map[string]interface{}{
			"error": fmt.Sprintf("snapshot: %v", err),
		})
		return 0, true
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	n, err := io.Copy(w, &buf)
	return n, err != nil
}

// handleSnapshotPost checkpoints the backend's state to the configured
// snapshot path (atomic write) and reports what was written.
func (s *Server) handleSnapshotPost(w http.ResponseWriter, r *http.Request) (int64, bool) {
	if _, ok := s.c.(Snapshotter); !ok {
		writeJSON(w, http.StatusNotImplemented, map[string]interface{}{
			"error": fmt.Sprintf("backend %s does not support snapshots", s.c.Name()),
		})
		return 0, true
	}
	if s.cfg.SnapshotPath == "" {
		writeJSON(w, http.StatusBadRequest, map[string]interface{}{
			"error": "no snapshot path configured (start the daemon with -checkpoint)",
		})
		return 0, true
	}
	endStage := trace.FromContext(r.Context()).StartStage("checkpoint-fsync")
	n, err := s.WriteCheckpoint()
	endStage()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]interface{}{
			"error": fmt.Sprintf("checkpoint: %v", err),
		})
		return 0, true
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"path":  s.cfg.SnapshotPath,
		"bytes": n,
		"count": s.c.Count(),
	})
	return n, false
}

// WriteCheckpoint persists the backend's state to cfg.SnapshotPath with
// write-to-temp + fsync + atomic rename, returning the snapshot size. It
// backs both POST /snapshot and the daemon's checkpoint ticker, so all
// checkpoints share the /stats counters. Concurrent calls are serialized;
// the previous checkpoint file survives any failure.
func (s *Server) WriteCheckpoint() (int64, error) {
	sn, ok := s.c.(Snapshotter)
	if !ok {
		return 0, fmt.Errorf("backend %s does not support snapshots", s.c.Name())
	}
	if s.cfg.SnapshotPath == "" {
		return 0, errors.New("no snapshot path configured")
	}
	s.checkpointMu.Lock()
	defer s.checkpointMu.Unlock()
	n, err := s.writeCheckpointLocked(sn)
	if err != nil {
		s.checkpoint.RecordFailure()
		return 0, err
	}
	s.checkpoint.RecordSuccess(n, time.Now())
	return n, nil
}

func (s *Server) writeCheckpointLocked(sn Snapshotter) (int64, error) {
	return persist.WriteFileAtomic(s.cfg.SnapshotPath, sn.Snapshot)
}

// handleStats reports stream, memory, cache and per-endpoint counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) (int64, bool) {
	stored := s.c.PointsStored()
	dim := int(s.dim.Load())
	resp := map[string]interface{}{
		"algo":                s.c.Name(),
		"k":                   s.cfg.K,
		"dim":                 dim,
		"count":               s.c.Count(),
		"points_stored":       stored,
		"memory_mb":           metrics.MemoryMB(stored, dim),
		"uptime_s":            time.Since(s.start).Seconds(),
		"ingest_points_per_s": s.ingestStats.Throughput(s.start),
		"endpoints": map[string]metrics.EndpointSnapshot{
			"ingest":   s.ingestStats.Snapshot(),
			"centers":  s.centersStats.Snapshot(),
			"stats":    s.statsStats.Snapshot(),
			"snapshot": s.snapshotStats.Snapshot(),
		},
		"checkpoint": s.checkpoint.Snapshot(),
	}
	if cs, ok := s.c.(CacheStater); ok {
		hits, misses := cs.CacheStats()
		resp["centers_cache"] = map[string]int64{"hits": hits, "misses": misses}
	}
	writeJSON(w, http.StatusOK, resp)
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
