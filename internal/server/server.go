package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"streamkm/internal/metrics"
)

// Clusterer is the minimal surface the HTTP layer needs from a streaming
// clusterer. It is deliberately algorithm-agnostic ([][]float64 in and
// out) so windowed, decayed or sharded variants serve identically.
// Implementations must be safe for concurrent use.
type Clusterer interface {
	// AddBatch observes a batch of unit-weight points.
	AddBatch(pts [][]float64)
	// Centers returns the current cluster centers.
	Centers() [][]float64
	// Count returns the number of points observed so far.
	Count() int64
	// PointsStored reports memory use in stored points.
	PointsStored() int
	// Name identifies the algorithm in stats responses.
	Name() string
}

// WeightedAdder is optionally implemented by backends that accept
// weighted points ({"p":[...],"w":2.5} ingest values).
type WeightedAdder interface {
	AddWeighted(p []float64, w float64)
}

// Refresher is optionally implemented by backends with a centers cache;
// GET /centers?refresh=1 calls it to force recomputation.
type Refresher interface {
	Refresh() [][]float64
}

// CacheStater is optionally implemented by backends with a centers
// cache; /stats reports its hit/miss counters.
type CacheStater interface {
	CacheStats() (hits, misses int64)
}

// Config configures a Server.
type Config struct {
	// K is the number of centers the backend answers with; reported in
	// /centers and /stats responses.
	K int
	// Dim fixes the expected point dimension. 0 means adopt the dimension
	// of the first ingested point.
	Dim int
	// MaxBatch caps how many points are applied to the backend per
	// AddBatch call while streaming an ingest body. Default 512.
	MaxBatch int
}

// Server serves a Clusterer over HTTP. Create with New, mount via
// Handler. All handlers are safe for concurrent use; per-endpoint
// counters are lock-free.
type Server struct {
	c     Clusterer
	cfg   Config
	dim   atomic.Int64 // fixed stream dimension; 0 until first point
	start time.Time
	mux   *http.ServeMux

	ingestStats  metrics.EndpointStats
	centersStats metrics.EndpointStats
	statsStats   metrics.EndpointStats
}

// New builds a Server over c. cfg.K should match the backend's k.
func New(c Clusterer, cfg Config) *Server {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	s := &Server{c: c, cfg: cfg, start: time.Now(), mux: http.NewServeMux()}
	if cfg.Dim > 0 {
		s.dim.Store(int64(cfg.Dim))
	}
	s.mux.Handle("POST /ingest", s.record(&s.ingestStats, s.handleIngest))
	s.mux.Handle("GET /centers", s.record(&s.centersStats, s.handleCenters))
	s.mux.Handle("GET /stats", s.record(&s.statsStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return s
}

// Handler returns the routing handler for the server's endpoints.
func (s *Server) Handler() http.Handler { return s.mux }

// handled is an http handler that additionally reports how many items it
// processed and whether it failed, for endpoint accounting.
type handled func(w http.ResponseWriter, r *http.Request) (items int64, failed bool)

// record wraps a handler with latency/throughput accounting.
func (s *Server) record(st *metrics.EndpointStats, h handled) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		items, failed := h(w, r)
		st.Record(time.Since(t0), items, failed)
	})
}

// ingestValue is one ndjson value in an ingest body: either a bare JSON
// array (a unit-weight point) or an object {"p":[...],"w":2.5}. W is a
// pointer so an absent weight (default 1) is distinguishable from an
// explicit, invalid "w":0.
type ingestValue struct {
	P []float64 `json:"p"`
	W *float64  `json:"w"`
}

// handleIngest streams points out of the request body and applies them in
// batches. On a malformed value or dimension mismatch it stops, keeps
// what was already applied, and reports both the error and the applied
// count.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) (int64, bool) {
	dec := json.NewDecoder(r.Body)
	var ingested int64
	batch := make([][]float64, 0, s.cfg.MaxBatch)
	flush := func() {
		if len(batch) > 0 {
			s.c.AddBatch(batch)
			ingested += int64(len(batch))
			batch = batch[:0]
		}
	}
	fail := func(status int, format string, args ...interface{}) (int64, bool) {
		flush()
		writeJSON(w, status, map[string]interface{}{
			"error":    fmt.Sprintf(format, args...),
			"ingested": ingested,
		})
		return ingested, true
	}
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// Note: the applied count lives in the response's "ingested"
			// field; don't embed it in the message, it predates the flush.
			return fail(http.StatusBadRequest, "malformed ingest body: %v", err)
		}
		p, weight, err := parsePoint(raw)
		if err != nil {
			return fail(http.StatusBadRequest, "point %d: %v", ingested+int64(len(batch)), err)
		}
		if err := s.checkDim(p); err != nil {
			return fail(http.StatusBadRequest, "point %d: %v", ingested+int64(len(batch)), err)
		}
		if weight != 1 {
			wa, ok := s.c.(WeightedAdder)
			if !ok {
				return fail(http.StatusBadRequest, "backend %s does not accept weighted points", s.c.Name())
			}
			flush()
			wa.AddWeighted(p, weight)
			ingested++
			continue
		}
		batch = append(batch, p)
		if len(batch) == s.cfg.MaxBatch {
			flush()
		}
	}
	flush()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"ingested": ingested,
		"count":    s.c.Count(),
	})
	return ingested, false
}

// parsePoint interprets one raw ingest value.
func parsePoint(raw json.RawMessage) ([]float64, float64, error) {
	i := 0
	for i < len(raw) && (raw[i] == ' ' || raw[i] == '\t' || raw[i] == '\n' || raw[i] == '\r') {
		i++
	}
	if i < len(raw) && raw[i] == '{' {
		var v ingestValue
		if err := json.Unmarshal(raw, &v); err != nil {
			return nil, 0, fmt.Errorf("malformed weighted point: %v", err)
		}
		w := 1.0
		if v.W != nil {
			w = *v.W
		}
		if w <= 0 {
			return nil, 0, fmt.Errorf("weight must be > 0, got %v", w)
		}
		if len(v.P) == 0 {
			return nil, 0, errors.New(`weighted point has empty "p"`)
		}
		return v.P, w, nil
	}
	var p []float64
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, 0, fmt.Errorf("expected a JSON array of coordinates: %v", err)
	}
	if len(p) == 0 {
		return nil, 0, errors.New("empty point")
	}
	return p, 1, nil
}

// checkDim enforces a single stream dimension, adopting the first point's
// if none was configured.
func (s *Server) checkDim(p []float64) error {
	d := int64(len(p))
	if s.dim.CompareAndSwap(0, d) {
		return nil
	}
	if want := s.dim.Load(); want != d {
		return fmt.Errorf("dimension mismatch: stream is %d-dimensional, got %d", want, d)
	}
	return nil
}

// handleCenters answers a clustering query, via the backend's cached fast
// path unless ?refresh=1 forces recomputation.
func (s *Server) handleCenters(w http.ResponseWriter, r *http.Request) (int64, bool) {
	var centers [][]float64
	refresh, _ := strconv.ParseBool(r.URL.Query().Get("refresh"))
	if rf, ok := s.c.(Refresher); ok && refresh {
		centers = rf.Refresh()
	} else {
		centers = s.c.Centers()
	}
	if centers == nil {
		centers = [][]float64{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"algo":    s.c.Name(),
		"k":       s.cfg.K,
		"count":   s.c.Count(),
		"centers": centers,
	})
	return int64(len(centers)), false
}

// handleStats reports stream, memory, cache and per-endpoint counters.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) (int64, bool) {
	stored := s.c.PointsStored()
	dim := int(s.dim.Load())
	resp := map[string]interface{}{
		"algo":                s.c.Name(),
		"k":                   s.cfg.K,
		"dim":                 dim,
		"count":               s.c.Count(),
		"points_stored":       stored,
		"memory_mb":           metrics.MemoryMB(stored, dim),
		"uptime_s":            time.Since(s.start).Seconds(),
		"ingest_points_per_s": s.ingestStats.Throughput(s.start),
		"endpoints": map[string]metrics.EndpointSnapshot{
			"ingest":  s.ingestStats.Snapshot(),
			"centers": s.centersStats.Snapshot(),
			"stats":   s.statsStats.Snapshot(),
		},
	}
	if cs, ok := s.c.(CacheStater); ok {
		hits, misses := cs.CacheStats()
		resp["centers_cache"] = map[string]int64{"hits": hits, "misses": misses}
	}
	writeJSON(w, http.StatusOK, resp)
	return 0, false
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
