package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"streamkm/internal/metrics"
	"streamkm/internal/registry"
	"streamkm/internal/trace"
)

// MultiConfig configures a Multi server.
type MultiConfig struct {
	// DefaultStream is the stream the legacy single-stream endpoints
	// (POST /ingest, GET /centers, GET/POST /snapshot) alias, so
	// pre-multi-tenant clients keep working unchanged. Default "default".
	DefaultStream string
	// MaxBatch caps how many points are applied to a backend per
	// AddBatch call while streaming an ingest body. Default 512.
	MaxBatch int
	// MaxBodyBytes / MaxPoints are the per-request ingest caps, as in
	// Config (413 beyond; 0 = defaults, negative = uncapped).
	MaxBodyBytes int64
	MaxPoints    int64
	// Trace receives one span per request and serves GET /debug/traces.
	// Nil allocates a private recorder with default capacities.
	Trace *trace.Recorder
	// SlowRequest, when positive, emits one structured log record (trace
	// id, stream, endpoint, dominant stage) per request slower than it.
	SlowRequest time.Duration
	// Logger receives slow-request records; nil uses slog.Default().
	Logger *slog.Logger
}

// Multi serves many independent streams from one process, routing
// /streams/{id}/... requests through a registry.Registry: streams are
// created lazily on first ingest (or explicitly via PUT), hibernated to
// disk when cold, and restored transparently on access. Create with
// NewMulti, mount via Handler. All handlers are safe for concurrent use.
type Multi struct {
	reg   *registry.Registry
	cfg   MultiConfig
	start time.Time
	mux   *http.ServeMux

	ingestStats   metrics.EndpointStats
	centersStats  metrics.EndpointStats
	statsStats    metrics.EndpointStats
	snapshotStats metrics.EndpointStats
	adminStats    metrics.EndpointStats

	// Per-tenant ingest/query accounting behind the /metrics per-stream
	// series. The map is capped at maxTenantSeries streams; beyond that,
	// new streams account under the "_other" overflow bucket so a tenant
	// spray cannot turn the exposition into a cardinality bomb. Series
	// are pruned when their stream is deleted or departs via detach, so
	// the cap counts live tenants, not every id ever seen. tenantMu
	// serializes slot creation and pruning (lookups stay lock-free); the
	// count is atomic so the fast path can read it without the lock.
	tenants     sync.Map // stream id -> *tenantStats
	tenantMu    sync.Mutex
	tenantCount atomic.Int64
	tenantOther tenantStats

	tr     *trace.Recorder
	logger *slog.Logger
}

// tenantStats is one stream's slice of the request accounting.
type tenantStats struct {
	ingest metrics.EndpointStats
	query  metrics.EndpointStats
}

// maxTenantSeries caps how many distinct streams get their own labelled
// series in /metrics; the rest aggregate under tenantOverflow.
const maxTenantSeries = 1024

// tenantOverflow is the catch-all stream label once maxTenantSeries is
// reached.
const tenantOverflow = "_other"

// tenantFor resolves the accounting slot for a stream id. Slot creation
// runs under tenantMu: a bare check-then-LoadOrStore would let N racing
// first requests all pass the cap check and overshoot maxTenantSeries by
// up to GOMAXPROCS-1 series.
func (m *Multi) tenantFor(id string) *tenantStats {
	if v, ok := m.tenants.Load(id); ok {
		return v.(*tenantStats)
	}
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if v, ok := m.tenants.Load(id); ok {
		return v.(*tenantStats)
	}
	if m.tenantCount.Load() >= maxTenantSeries {
		return &m.tenantOther
	}
	t := &tenantStats{}
	m.tenants.Store(id, t)
	m.tenantCount.Add(1)
	return t
}

// pruneTenant drops a stream's metrics series when the stream leaves the
// daemon (DELETE, or departure via detach), freeing its slot under the
// series cap. Without this the cap counted every id ever seen, and after
// 1024 distinct ids every new tenant folded into "_other" forever, even
// with only a handful live.
func (m *Multi) pruneTenant(id string) {
	m.tenantMu.Lock()
	defer m.tenantMu.Unlock()
	if _, ok := m.tenants.Load(id); ok {
		m.tenants.Delete(id)
		m.tenantCount.Add(-1)
	}
}

// tenantRecord wraps a per-stream handler with per-tenant accounting in
// the slot the selector picks (ingest or query).
func (m *Multi) tenantRecord(slot func(*tenantStats) *metrics.EndpointStats, h func(string, http.ResponseWriter, *http.Request) (int64, bool)) func(string, http.ResponseWriter, *http.Request) (int64, bool) {
	return func(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
		t0 := time.Now()
		items, failed := h(id, w, r)
		slot(m.tenantFor(id)).Record(time.Since(t0), items, failed)
		return items, failed
	}
}

// NewMulti builds a multi-stream server over reg.
func NewMulti(reg *registry.Registry, cfg MultiConfig) *Multi {
	if cfg.DefaultStream == "" {
		cfg.DefaultStream = "default"
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 512
	}
	cfg.MaxBodyBytes = resolveLimit(cfg.MaxBodyBytes, defaultMaxBodyBytes)
	cfg.MaxPoints = resolveLimit(cfg.MaxPoints, defaultMaxPoints)
	if cfg.Trace == nil {
		cfg.Trace = trace.NewRecorder(0, 0)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	m := &Multi{reg: reg, cfg: cfg, start: time.Now(), mux: http.NewServeMux(), tr: cfg.Trace, logger: cfg.Logger}

	// Ingest and query are wrapped once with per-tenant accounting and
	// the wrapper reused by the legacy aliases, so a default-stream
	// ingest through POST /ingest lands in the same per-stream series.
	ingest := m.tenantRecord(func(t *tenantStats) *metrics.EndpointStats { return &t.ingest }, m.handleIngest)
	query := m.tenantRecord(func(t *tenantStats) *metrics.EndpointStats { return &t.query }, m.handleCenters)

	m.mux.Handle("POST /streams/{id}/ingest", m.observe("ingest", &m.ingestStats, m.byID(ingest)))
	m.mux.Handle("GET /streams/{id}/centers", m.observe("centers", &m.centersStats, m.byID(query)))
	m.mux.Handle("GET /streams/{id}/stats", m.observe("stats", &m.statsStats, m.byID(m.handleStreamStats)))
	m.mux.Handle("GET /streams/{id}/snapshot", m.observe("snapshot", &m.snapshotStats, m.byID(m.handleSnapshotGet)))
	m.mux.Handle("POST /streams/{id}/snapshot", m.observe("snapshot", &m.snapshotStats, m.byID(m.handleSnapshotPost)))
	m.mux.Handle("PUT /streams/{id}/snapshot", m.observe("install", &m.snapshotStats, m.byID(m.handleSnapshotInstall)))
	m.mux.Handle("PUT /streams/{id}/standby", m.observe("standby", &m.snapshotStats, m.byID(m.handleStandbyInstall)))
	m.mux.Handle("POST /streams/{id}/detach", m.observe("detach", &m.adminStats, m.byID(m.handleDetach)))
	m.mux.Handle("POST /streams/{id}/reattach", m.observe("reattach", &m.adminStats, m.byID(m.handleReattach)))
	m.mux.Handle("PUT /streams/{id}", m.observe("create", &m.adminStats, m.byID(m.handleCreate)))
	m.mux.Handle("DELETE /streams/{id}", m.observe("delete", &m.adminStats, m.byID(m.handleDelete)))
	m.mux.Handle("GET /streams", m.observe("list", &m.adminStats, m.handleList))
	m.mux.Handle("GET /stats", m.observe("stats", &m.statsStats, m.handleRegistryStats))
	// /metrics and /debug/traces are deliberately outside the observe()
	// accounting: a scrape every few seconds must not pollute the request
	// counters or the trace window it reports.
	m.mux.HandleFunc("GET /metrics", m.handleMetrics)
	m.mux.Handle("GET /debug/traces", m.tr.Handler())

	// Single-stream aliases: the pre-registry API, routed at the default
	// stream.
	alias := func(h func(string, http.ResponseWriter, *http.Request) (int64, bool)) handled {
		return func(w http.ResponseWriter, r *http.Request) (int64, bool) {
			trace.FromContext(r.Context()).SetStream(m.cfg.DefaultStream)
			return h(m.cfg.DefaultStream, w, r)
		}
	}
	m.mux.Handle("POST /ingest", m.observe("ingest", &m.ingestStats, alias(ingest)))
	m.mux.Handle("GET /centers", m.observe("centers", &m.centersStats, alias(query)))
	m.mux.Handle("GET /snapshot", m.observe("snapshot", &m.snapshotStats, alias(m.handleSnapshotGet)))
	m.mux.Handle("POST /snapshot", m.observe("snapshot", &m.snapshotStats, alias(m.handleSnapshotPost)))
	m.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	return m
}

// Handler returns the routing handler for the server's endpoints.
func (m *Multi) Handler() http.Handler { return m.mux }

// Registry returns the underlying stream registry (for daemon lifecycle
// hooks: checkpoint tickers, TTL sweeps, shutdown flushes).
func (m *Multi) Registry() *registry.Registry { return m.reg }

// Traces returns the recorder behind GET /debug/traces.
func (m *Multi) Traces() *trace.Recorder { return m.tr }

func (m *Multi) observe(name string, st *metrics.EndpointStats, h handled) http.Handler {
	return observe(m.tr, m.cfg.SlowRequest, m.logger, name, st, h)
}

// byID adapts a per-stream handler to the mux, extracting {id} and
// tagging the request's span with it.
func (m *Multi) byID(h func(string, http.ResponseWriter, *http.Request) (int64, bool)) handled {
	return func(w http.ResponseWriter, r *http.Request) (int64, bool) {
		id := r.PathValue("id")
		trace.FromContext(r.Context()).SetStream(id)
		return h(id, w, r)
	}
}

// statusFor maps registry errors onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, registry.ErrExists):
		return http.StatusConflict
	case errors.Is(err, registry.ErrDetached):
		return http.StatusConflict
	case errors.Is(err, registry.ErrInvalidID):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrInvalidConfig):
		return http.StatusBadRequest
	case errors.Is(err, registry.ErrThrottled):
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

// OwnerHeader is the response header naming where a stream lives: set on
// 409s for detached (migrating) streams so a client that contacted the
// wrong daemon learns where to retry, and by the router on every proxied
// response to report which daemon served it.
const OwnerHeader = "X-Streamkm-Owner"

func writeErr(w http.ResponseWriter, err error) {
	writeErrExtra(w, err, nil)
}

// writeErrExtra is writeErr with extra body fields merged in. The
// ingest handlers use it to report "stream" and "ingested" even on
// registry-level failures (throttled, detached, not found): an ndjson
// client reconciling partial acks must be able to read the applied
// count off every error body, not just the mid-stream ones.
func writeErrExtra(w http.ResponseWriter, err error, extra map[string]interface{}) {
	var de *registry.DetachedError
	if errors.As(err, &de) && de.Owner != "" {
		w.Header().Set(OwnerHeader, de.Owner)
	}
	var te *registry.ThrottleError
	if errors.As(err, &te) {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(te.RetryAfter)))
	}
	body := map[string]interface{}{"error": err.Error()}
	for k, v := range extra {
		body[k] = v
	}
	writeJSON(w, statusFor(err), body)
}

// retryAfterSeconds rounds a pacing hint up to whole seconds (minimum
// 1), the only granularity the Retry-After header carries.
func retryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// handleIngest streams points into the named stream, creating it lazily
// (with the registry's default configuration) on first ingest — the
// zero-ceremony tenant onboarding path. Content-Type
// application/x-streamkm-batch selects the binary columnar path;
// anything else is ndjson.
func (m *Multi) handleIngest(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	// Buffer the (byte-capped) body before entering the registry: decoding
	// straight off the socket would hold the stream's read lock for the
	// lifetime of a slow upload, stalling hibernation, checkpoints and —
	// through the RWMutex's writer preference — every other request to the
	// same stream. The buffer comes from the registry-wide pool; With is
	// synchronous and both decode paths copy out of it, so it can be
	// returned as soon as the handler is done.
	pool := m.reg.Buffers()
	sp := trace.FromContext(r.Context())
	endRead := sp.StartStage("body-read")
	raw, rstatus, rmsg := readBody(w, r, m.cfg.MaxBodyBytes, pool)
	endRead()
	defer pool.PutBytes(raw)
	if rstatus != 0 {
		writeJSON(w, rstatus, map[string]interface{}{
			"error":    rmsg,
			"stream":   id,
			"ingested": 0,
		})
		return 0, true
	}
	if isBinaryBatch(r) {
		return m.ingestBinary(id, w, r, raw)
	}
	// Vet the first record before touching the registry: lazy creation
	// must not register (and later checkpoint) a tenant for a body that
	// cannot ingest anything — a typo'd id or a malformed-body spray
	// would otherwise pollute the stream map and the data dir forever.
	probe := json.NewDecoder(bytes.NewReader(raw))
	var first json.RawMessage
	create := true
	if err := probe.Decode(&first); err != nil {
		if !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, map[string]interface{}{
				"error":    fmt.Sprintf("malformed ingest body: %v", err),
				"stream":   id,
				"ingested": 0,
			})
			return 0, true
		}
		create = false // empty body never creates a stream
	} else if _, _, err := parsePoint(first); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]interface{}{
			"error":    fmt.Sprintf("point 0: %v", err),
			"stream":   id,
			"ingested": 0,
		})
		return 0, true
	}

	body := bytes.NewReader(raw)
	var (
		ingested int64
		status   int
		msg      string
		count    int64
	)
	err := m.reg.WithContext(r.Context(), id, create, func(s *registry.Stream, b registry.Backend) error {
		endQuota := sp.StartStage("quota")
		err := m.reg.AdmitIngest(s, b, int64(len(raw)))
		endQuota()
		if err != nil {
			return err
		}
		// ndjson decoding is interleaved with application, so the two
		// report as one cluster-apply stage.
		endApply := sp.StartStage("cluster-apply")
		ingested, status, msg = runIngest(body, m.cfg.MaxBatch, m.cfg.MaxPoints, b, s.CheckDim)
		endApply()
		m.reg.ChargeIngest(s, ingested)
		count = b.Count()
		return nil
	})
	if err != nil {
		writeErrExtra(w, err, map[string]interface{}{"stream": id, "ingested": ingested})
		return ingested, true
	}
	if status != 0 {
		writeJSON(w, status, map[string]interface{}{
			"error":    msg,
			"stream":   id,
			"ingested": ingested,
		})
		return ingested, true
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream":   id,
		"ingested": ingested,
		"count":    count,
	})
	return ingested, false
}

// ingestBinary applies one already-buffered binary batch body to the
// named stream. The decode — the expensive half — runs here, before the
// registry is entered, so the stream's read lock is held only for the
// AddBatch calls themselves; the ndjson path cannot split the two
// because its decoding is interleaved with application. An empty batch
// never creates a stream, mirroring the ndjson empty-body rule.
func (m *Multi) ingestBinary(id string, w http.ResponseWriter, r *http.Request, raw []byte) (int64, bool) {
	pool := m.reg.Buffers()
	sp := trace.FromContext(r.Context())
	endDecode := sp.StartStage("wire-decode")
	batch, status, msg := decodeBinary(raw, m.cfg.MaxPoints, pool)
	endDecode()
	if status != 0 {
		writeJSON(w, status, map[string]interface{}{
			"error":    msg,
			"stream":   id,
			"ingested": 0,
		})
		return 0, true
	}
	defer pool.PutBatch(batch)
	var (
		ingested int64
		count    int64
	)
	err := m.reg.WithContext(r.Context(), id, batch.Len() > 0, func(s *registry.Stream, b registry.Backend) error {
		endQuota := sp.StartStage("quota")
		err := m.reg.AdmitIngest(s, b, int64(len(raw)))
		endQuota()
		if err != nil {
			return err
		}
		endApply := sp.StartStage("cluster-apply")
		ingested, status, msg = applyBinary(batch, m.cfg.MaxBatch, b, s.CheckDim)
		endApply()
		m.reg.ChargeIngest(s, ingested)
		count = b.Count()
		return nil
	})
	if err != nil {
		writeErrExtra(w, err, map[string]interface{}{"stream": id, "ingested": ingested})
		return ingested, true
	}
	if status != 0 {
		writeJSON(w, status, map[string]interface{}{
			"error":    msg,
			"stream":   id,
			"ingested": ingested,
		})
		return ingested, true
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream":   id,
		"ingested": ingested,
		"count":    count,
	})
	return ingested, false
}

// handleCenters answers a clustering query against the named stream,
// restoring it from disk first when hibernated. Unknown streams are 404
// — a query never creates a tenant.
func (m *Multi) handleCenters(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	refresh, _ := strconv.ParseBool(r.URL.Query().Get("refresh"))
	var (
		centers [][]float64
		count   int64
		k       int
		algo    string
	)
	err := m.reg.WithContext(r.Context(), id, false, func(s *registry.Stream, b registry.Backend) error {
		endStage := trace.FromContext(r.Context()).StartStage("coreset-recompute")
		centers = queryCenters(r.Context(), b, refresh)
		endStage()
		count = b.Count()
		k = s.Config().K
		algo = b.Name()
		return nil
	})
	if err != nil {
		writeErr(w, err)
		return 0, true
	}
	if centers == nil {
		centers = [][]float64{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream":  id,
		"algo":    algo,
		"k":       k,
		"count":   count,
		"centers": centers,
	})
	return int64(len(centers)), false
}

// handleStreamStats describes one stream without changing its residency:
// statting a hibernated tenant keeps it hibernated.
func (m *Multi) handleStreamStats(id string, w http.ResponseWriter, _ *http.Request) (int64, bool) {
	in, err := m.reg.Stat(id)
	if err != nil {
		writeErr(w, err)
		return 0, true
	}
	resp := map[string]interface{}{
		"stream":           in.ID,
		"resident":         in.Resident,
		"backend":          in.Backend,
		"algo":             in.Algo,
		"k":                in.K,
		"dim":              in.Dim,
		"count":            in.Count,
		"points_stored":    in.PointsStored,
		"memory_mb":        metrics.MemoryMB(in.PointsStored, in.Dim),
		"last_access_unix": in.LastAccess,
	}
	if in.HalfLife > 0 {
		resp["half_life"] = in.HalfLife
	}
	if in.HalfLifeSecs > 0 {
		resp["half_life_seconds"] = in.HalfLifeSecs
	}
	if in.WindowN > 0 {
		resp["window_n"] = in.WindowN
	}
	if in.Shards > 0 {
		resp["shards"] = in.Shards
	}
	if in.PointsPerSec > 0 {
		resp["points_per_sec"] = in.PointsPerSec
	}
	if in.BytesPerSec > 0 {
		resp["bytes_per_sec"] = in.BytesPerSec
	}
	if in.MaxResBytes > 0 {
		resp["max_resident_bytes"] = in.MaxResBytes
	}
	writeJSON(w, http.StatusOK, resp)
	return 0, false
}

// handleSnapshotGet streams the named stream's serialized state —
// straight from its snapshot file when hibernated, so backing up a cold
// tenant does not warm it.
func (m *Multi) handleSnapshotGet(id string, w http.ResponseWriter, _ *http.Request) (int64, bool) {
	var buf bytes.Buffer
	if err := m.reg.Snapshot(id, &buf); err != nil {
		writeErr(w, err)
		return 0, true
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	n, err := io.Copy(w, &buf)
	return n, err != nil
}

// handleSnapshotPost checkpoints the named stream to its per-stream
// snapshot file. For a hibernated stream this is a no-op success: its
// file already holds the state.
func (m *Multi) handleSnapshotPost(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	endStage := trace.FromContext(r.Context()).StartStage("checkpoint-fsync")
	n, err := m.reg.Checkpoint(id)
	endStage()
	if err != nil {
		writeErr(w, err)
		return 0, true
	}
	in, _ := m.reg.Stat(id)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream": id,
		"bytes":  n,
		"count":  in.Count,
	})
	return n, false
}

// handleDetach freezes a stream for migration: it is checkpointed to its
// snapshot file (waiting out in-flight requests) and every later request
// answers 409 — with an X-Streamkm-Owner hint when the optional body
// {"owner":"..."} named the destination — until POST reattach, or DELETE
// once the new owner has the state. This is the source half of the
// router's rebalance protocol.
func (m *Multi) handleDetach(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	var body struct {
		Owner string `json:"owner"`
	}
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&body); err != nil && !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, map[string]interface{}{
				"error": fmt.Sprintf("malformed detach body: %v", err),
			})
			return 0, true
		}
	}
	endStage := trace.FromContext(r.Context()).StartStage("checkpoint-fsync")
	_, err := m.reg.Detach(id, body.Owner)
	endStage()
	if err != nil {
		writeErr(w, err)
		return 0, true
	}
	// The tenant is departing; free its per-stream metrics slot. An
	// aborted migration (reattach) simply re-registers the series on the
	// tenant's next request.
	m.pruneTenant(id)
	in, _ := m.reg.Stat(id)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream":   id,
		"detached": true,
		"count":    in.Count,
	})
	return 1, false
}

// handleReattach lifts a detach — the abort path of a failed migration;
// the stream serves again from the snapshot the detach wrote.
func (m *Multi) handleReattach(id string, w http.ResponseWriter, _ *http.Request) (int64, bool) {
	if err := m.reg.Reattach(id); err != nil {
		writeErr(w, err)
		return 0, true
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"stream":   id,
		"detached": false,
	})
	return 1, false
}

// handleSnapshotInstall registers a stream from a serialized snapshot
// envelope in the request body — the destination half of a migration:
// the envelope is persisted and restored immediately, so a malformed or
// truncated body is a 400 with nothing registered, and a taken id a 409
// (an install never overwrites a live tenant).
func (m *Multi) handleSnapshotInstall(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	body := limitBody(w, r, m.cfg.MaxBodyBytes)
	if err := m.reg.Install(id, body); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]interface{}{
				"error": fmt.Sprintf("snapshot exceeds %d bytes", mbe.Limit),
			})
			return 0, true
		}
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			// A snapshot that fails validation or restore is the sender's
			// fault, like a bad PUT config.
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]interface{}{"error": err.Error()})
		return 0, true
	}
	in, _ := m.reg.Stat(id)
	writeJSON(w, http.StatusCreated, in)
	return 1, false
}

// handleStandbyInstall accepts a replication ship: the request body is a
// snapshot envelope installed (or refreshed — unlike PUT snapshot, a
// re-ship over an existing standby copy succeeds) in the standby state:
// registered, detached, refusing every read and write with 409 + an
// X-Streamkm-Owner hint naming where the live copy serves (?owner=...).
// POST /streams/{id}/reattach promotes the standby into a serving
// tenant — the failover path. 409 when the id is live here (replication
// never clobbers a serving tenant), 400 for an envelope that fails
// validation.
func (m *Multi) handleStandbyInstall(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	owner := r.URL.Query().Get("owner")
	body := limitBody(w, r, m.cfg.MaxBodyBytes)
	count, err := m.reg.InstallStandby(id, body, owner)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]interface{}{
				"error": fmt.Sprintf("snapshot exceeds %d bytes", mbe.Limit),
			})
			return 0, true
		}
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]interface{}{"error": err.Error()})
		return 0, true
	}
	writeJSON(w, http.StatusCreated, map[string]interface{}{
		"stream":  id,
		"standby": true,
		"count":   count,
		"owner":   owner,
	})
	return 1, false
}

// handleCreate registers a stream with an explicit configuration — a
// backend spec like {"backend":"windowed","algo":"CC","k":10,"dim":0,
// "window_n":100000} (or "backend":"decayed" with "half_life") — every
// field optional (zero values fall back to the registry default).
// Invalid specs are 400, a taken id is 409.
func (m *Multi) handleCreate(id string, w http.ResponseWriter, r *http.Request) (int64, bool) {
	var cfg registry.StreamConfig
	if r.ContentLength != 0 {
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&cfg); err != nil && !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, map[string]interface{}{
				"error": fmt.Sprintf("malformed stream config: %v", err),
			})
			return 0, true
		}
	}
	if err := m.reg.Create(id, cfg); err != nil {
		status := statusFor(err)
		if status == http.StatusInternalServerError {
			// A failed factory build means the submitted config was bad
			// (unknown algorithm, invalid k, ...): the client's fault.
			status = http.StatusBadRequest
		}
		writeJSON(w, status, map[string]interface{}{"error": err.Error()})
		return 0, true
	}
	in, _ := m.reg.Stat(id)
	writeJSON(w, http.StatusCreated, in)
	return 1, false
}

// handleDelete removes a stream and its on-disk snapshot, and frees the
// stream's per-tenant metrics slot.
func (m *Multi) handleDelete(id string, w http.ResponseWriter, _ *http.Request) (int64, bool) {
	if err := m.reg.Delete(id); err != nil {
		writeErr(w, err)
		return 0, true
	}
	m.pruneTenant(id)
	writeJSON(w, http.StatusOK, map[string]interface{}{"deleted": id})
	return 1, false
}

// handleList enumerates every registered stream, resident or not.
// default_stream names the stream the legacy single-stream endpoints
// alias, so a router merging listings from several daemons can
// disambiguate per-daemon default streams instead of aliasing them.
func (m *Multi) handleList(w http.ResponseWriter, _ *http.Request) (int64, bool) {
	infos := m.reg.List()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"streams":        infos,
		"total":          len(infos),
		"default_stream": m.cfg.DefaultStream,
	})
	return int64(len(infos)), false
}

// handleRegistryStats reports the registry-wide picture: how many
// streams exist, how many are resident versus hibernated, lifecycle
// counters (evictions, restores, ...), checkpoint counters, and
// per-endpoint request accounting.
func (m *Multi) handleRegistryStats(w http.ResponseWriter, _ *http.Request) (int64, bool) {
	st := m.reg.Stats()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"streams": map[string]int{
			"total":      st.Streams,
			"resident":   st.Resident,
			"hibernated": st.Hibernated,
		},
		"lifecycle":           st.Registry,
		"checkpoint":          st.Checkpoint,
		"uptime_s":            time.Since(m.start).Seconds(),
		"ingest_points_per_s": m.ingestStats.Throughput(m.start),
		"endpoints": map[string]metrics.EndpointSnapshot{
			"ingest":   m.ingestStats.Snapshot(),
			"centers":  m.centersStats.Snapshot(),
			"stats":    m.statsStats.Snapshot(),
			"snapshot": m.snapshotStats.Snapshot(),
			"admin":    m.adminStats.Snapshot(),
		},
	})
	return 0, false
}
