package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// sinkClusterer is a minimal backend for fuzzing the HTTP parsing layer:
// it just counts what reaches it, so fuzz throughput is bounded by the
// parser, not by clustering.
type sinkClusterer struct {
	count atomic.Int64
}

func (s *sinkClusterer) AddBatch(pts [][]float64)           { s.count.Add(int64(len(pts))) }
func (s *sinkClusterer) AddWeighted(p []float64, w float64) { s.count.Add(1) }
func (s *sinkClusterer) Centers() [][]float64               { return [][]float64{} }
func (s *sinkClusterer) Count() int64                       { return s.count.Load() }
func (s *sinkClusterer) PointsStored() int                  { return 0 }
func (s *sinkClusterer) Name() string                       { return "sink" }

// FuzzIngest feeds arbitrary bytes to the ndjson ingest endpoint
// (handleIngest + parsePoint): the handler must never panic, and anything
// malformed must yield a clean 4xx — mirroring the persist package's
// untrusted-input fuzz harness. Run as a plain test this exercises the
// seed corpus; `go test -fuzz=FuzzIngest ./internal/server` explores
// further.
func FuzzIngest(f *testing.F) {
	f.Add([]byte("[1,2]\n[3,4]\n"))
	f.Add([]byte(`{"p":[1,2],"w":2.5}` + "\n[0.5,0.5]\n"))
	f.Add([]byte(`{"p":[1,2],"w":0}`))
	f.Add([]byte(`{"p":[],"w":1}`))
	f.Add([]byte(`{"w":3}`))
	f.Add([]byte("[]"))
	f.Add([]byte("[1,2][3]"))
	f.Add([]byte("[1e999]"))
	f.Add([]byte(`"not a point"`))
	f.Add([]byte("[1,2]\nnull\n"))
	f.Add([]byte("{\"p\":[1,2"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x7b})
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(&sinkClusterer{}, Config{K: 2, MaxBatch: 8})
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic
		if c := rec.Code; c != http.StatusOK && (c < 400 || c > 499) {
			t.Fatalf("status %d for body %q (want 200 or 4xx)", c, data)
		}
	})
}

// FuzzParsePoint fuzzes the single-value parser directly: no input may
// panic, and accepted values must be well-formed (non-empty point,
// positive weight).
func FuzzParsePoint(f *testing.F) {
	f.Add([]byte("[1,2,3]"))
	f.Add([]byte(`{"p":[9],"w":0.25}`))
	f.Add([]byte("  \t\n[4]"))
	f.Add([]byte("{}"))
	f.Add([]byte("true"))
	f.Add([]byte("[null]"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, w, err := parsePoint(data)
		if err != nil {
			return // rejection is the expected outcome for noise
		}
		if len(p) == 0 {
			t.Fatalf("accepted empty point from %q", data)
		}
		if !(w > 0) {
			t.Fatalf("accepted non-positive weight %v from %q", w, data)
		}
	})
}
