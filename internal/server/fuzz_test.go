package server

import (
	"bytes"
	"encoding/binary"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"streamkm/internal/wire"
)

// sinkClusterer is a minimal backend for fuzzing the HTTP parsing layer:
// it just counts what reaches it, so fuzz throughput is bounded by the
// parser, not by clustering.
type sinkClusterer struct {
	count atomic.Int64
}

func (s *sinkClusterer) AddBatch(pts [][]float64)           { s.count.Add(int64(len(pts))) }
func (s *sinkClusterer) AddWeighted(p []float64, w float64) { s.count.Add(1) }
func (s *sinkClusterer) Centers() [][]float64               { return [][]float64{} }
func (s *sinkClusterer) Count() int64                       { return s.count.Load() }
func (s *sinkClusterer) PointsStored() int                  { return 0 }
func (s *sinkClusterer) Name() string                       { return "sink" }

// FuzzIngest feeds arbitrary bytes to the ndjson ingest endpoint
// (handleIngest + parsePoint): the handler must never panic, and anything
// malformed must yield a clean 4xx — mirroring the persist package's
// untrusted-input fuzz harness. Run as a plain test this exercises the
// seed corpus; `go test -fuzz=FuzzIngest ./internal/server` explores
// further.
func FuzzIngest(f *testing.F) {
	f.Add([]byte("[1,2]\n[3,4]\n"))
	f.Add([]byte(`{"p":[1,2],"w":2.5}` + "\n[0.5,0.5]\n"))
	f.Add([]byte(`{"p":[1,2],"w":0}`))
	f.Add([]byte(`{"p":[],"w":1}`))
	f.Add([]byte(`{"w":3}`))
	f.Add([]byte("[]"))
	f.Add([]byte("[1,2][3]"))
	f.Add([]byte("[1e999]"))
	f.Add([]byte(`"not a point"`))
	f.Add([]byte("[1,2]\nnull\n"))
	f.Add([]byte("{\"p\":[1,2"))
	f.Add([]byte{0xff, 0xfe, 0x00, 0x7b})
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		srv := New(&sinkClusterer{}, Config{K: 2, MaxBatch: 8})
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(data))
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic
		if c := rec.Code; c != http.StatusOK && (c < 400 || c > 499) {
			t.Fatalf("status %d for body %q (want 200 or 4xx)", c, data)
		}
	})
}

// FuzzBinaryBatch feeds arbitrary bytes to the binary ingest path
// (application/x-streamkm-batch → wire.Decode → applyBinary). Three
// invariants, whatever the bytes: the handler never panics, a non-200
// answer is a clean 4xx, and — the binary format's stronger contract —
// a rejected body ingests NOTHING (the ndjson path may legitimately
// report partial progress; the binary path validates everything before
// applying anything). Truncated headers, hostile count*dim products,
// NaN/Inf coordinates and dimension mismatches all ride this harness;
// testdata/fuzz/FuzzBinaryBatch holds the committed seed corpus.
func FuzzBinaryBatch(f *testing.F) {
	valid, err := wire.EncodeBatch([][]float64{{1, 2}, {3, 4}}, nil)
	if err != nil {
		f.Fatal(err)
	}
	weighted, err := wire.EncodeBatch([][]float64{{1, 2}}, []float64{2.5})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(weighted)
	f.Add(valid[:len(valid)-3])               // truncated coordinates
	f.Add(valid[:12])                         // truncated header
	f.Add([]byte{})                           // empty body
	f.Add([]byte("SKMB"))                     // magic only
	f.Add(append([]byte(nil), valid[:16]...)) // header with no payload
	nan := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(nan[16:], math.Float32bits(float32(math.NaN())))
	f.Add(nan)
	huge := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(huge[8:12], math.MaxUint32)  // dim
	binary.LittleEndian.PutUint32(huge[12:16], math.MaxUint32) // count
	f.Add(huge)
	badmagic := append([]byte(nil), valid...)
	badmagic[0] = 'X'
	f.Add(badmagic)

	f.Fuzz(func(t *testing.T, data []byte) {
		sink := &sinkClusterer{}
		srv := New(sink, Config{K: 2, Dim: 2, MaxBatch: 8})
		req := httptest.NewRequest(http.MethodPost, "/ingest", bytes.NewReader(data))
		req.Header.Set("Content-Type", wire.ContentType)
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, req) // must not panic
		switch c := rec.Code; {
		case c == http.StatusOK:
		case c >= 400 && c <= 499:
			if n := sink.count.Load(); n != 0 {
				t.Fatalf("status %d but %d points ingested from %q (binary ingest must be all-or-nothing)", c, n, data)
			}
		default:
			t.Fatalf("status %d for body %q (want 200 or 4xx)", c, data)
		}
	})
}

// FuzzParsePoint fuzzes the single-value parser directly: no input may
// panic, and accepted values must be well-formed (non-empty point,
// positive weight).
func FuzzParsePoint(f *testing.F) {
	f.Add([]byte("[1,2,3]"))
	f.Add([]byte(`{"p":[9],"w":0.25}`))
	f.Add([]byte("  \t\n[4]"))
	f.Add([]byte("{}"))
	f.Add([]byte("true"))
	f.Add([]byte("[null]"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, w, err := parsePoint(data)
		if err != nil {
			return // rejection is the expected outcome for noise
		}
		if len(p) == 0 {
			t.Fatalf("accepted empty point from %q", data)
		}
		if !(w > 0) {
			t.Fatalf("accepted non-positive weight %v from %q", w, data)
		}
	})
}
