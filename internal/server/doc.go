// Package server exposes a streaming clusterer over HTTP — the
// query-serving layer the paper's fast-query algorithms exist for: a
// stream can be ingested continuously while clients query current
// centers, because CC/RCC/OnlineCC (and the cached-centers fast path in
// streamkm.Concurrent) make queries cheap enough to answer inline.
//
// # Architecture
//
// The server is algorithm-agnostic: it serves anything satisfying the
// small Clusterer interface ([][]float64 in, [][]float64 out), so
// windowed or decayed variants (e.g. sliding-window clustering à la
// Braverman et al.) can slot in without touching the HTTP layer. In the
// shipped daemon (cmd/streamkmd) the implementation is
// streamkm.Concurrent: P-way sharded ingest with per-shard locks and a
// read-mostly centers cache, so ingest handlers running on different
// shards do not contend and query handlers rarely leave the cache.
//
// Endpoints:
//
//	POST /ingest    ndjson stream of points; each value is either a JSON
//	                array [x1,...,xd] (weight 1) or {"p":[...],"w":2.5}.
//	                Points are applied in batches under one shard lock.
//	                Responds {"ingested":n,"count":total}.
//	GET  /centers   current k centers (cached fast path); ?refresh=1
//	                forces recomputation when the backend supports it.
//	GET  /stats     counts, memory, cache hit ratio, checkpoint counters,
//	                and per-endpoint latency/throughput counters
//	                (internal/metrics).
//	GET  /snapshot  streams the backend's serialized state
//	                (application/octet-stream) for off-box backup, when
//	                the backend implements Snapshotter.
//	POST /snapshot  checkpoints the state to the configured SnapshotPath
//	                with an atomic temp-file + fsync + rename write;
//	                responds {"path","bytes","count"}.
//	GET  /healthz   liveness probe.
//
// The first ingested point fixes the stream dimension unless the server
// was configured with one; subsequent mismatches are rejected with 400
// before touching the clusterer, keeping the shards dimension-consistent.
//
// # Durability
//
// Checkpointing rides the same smallness argument that makes queries
// fast: the coreset state is polylogarithmic in the stream, so
// serializing it (internal/persist's versioned, checksummed envelope;
// the sharded variant captures all P shard summaries, the round-robin
// cursor and the cached-centers entry in one consistent cut) costs
// milliseconds, and a restarted daemon resumes without replaying the
// stream. WriteCheckpoint backs both POST /snapshot and the daemon's
// periodic ticker, so every checkpoint shows up in the same /stats
// counters. The crash-recovery integration suite (recovery_test.go)
// asserts kill-and-restart equivalence end to end for CT, CC, RCC and
// OnlineCC backends.
//
// Request accounting uses metrics.EndpointStats: a few atomic adds per
// request, no locks on the hot path.
package server
