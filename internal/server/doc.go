// Package server exposes streaming clusterers over HTTP — the
// query-serving layer the paper's fast-query algorithms exist for: a
// stream can be ingested continuously while clients query current
// centers, because CC/RCC/OnlineCC (and the cached-centers fast path in
// streamkm.Concurrent) make queries cheap enough to answer inline.
//
// # Architecture
//
// Two servers share one handler toolkit. Server hosts a single backend
// behind the original endpoint set. Multi hosts many independent named
// streams behind /streams/{id}/..., routing every request through an
// internal/registry.Registry: streams are created lazily on first
// ingest (or explicitly via PUT), at most MaxResident of them hold a
// live backend at once, and the least-recently-used beyond that bound —
// or idle past a TTL — is hibernated: checkpointed to its per-stream
// snapshot file and dropped from RAM, then restored transparently on
// its next request. Per-stream state is a coreset, polylogarithmic in
// the stream, so tenant density is the point: thousands of streams fit
// one daemon, and cold ones cost nothing.
//
// Both servers are algorithm-agnostic: they serve anything satisfying
// the small Clusterer interface ([][]float64 in, [][]float64 out). The
// shipped daemon (cmd/streamkmd) wires the registry to the
// streamkm.Open/Restore backend factory, so each tenant picks its own
// variant in the PUT body: "concurrent" (every point counts forever —
// the default), "decayed" (forward exponential decay, influence halving
// every half_life arrivals or every half_life_seconds of wall time) or
// "windowed" (hard sliding window over the last window_n arrivals). All
// three ingest through "shards" parallel lanes with per-lane locks and
// a read-mostly centers cache; the decayed and windowed pipelines
// sequence batches with a lock-free global arrival clock and merge the
// lanes' coresets at query time (the shard-merge trace stage), so their
// recency semantics are computed over the global arrival order, not
// per-lane ones. All three hibernate and restore through the same
// snapshot envelope, which records the lane layout: a stream restores
// with the shard count it was checkpointed with.
//
// Multi endpoints:
//
//	POST   /streams/{id}/ingest    points into the named stream, created
//	                               lazily on first ingest. Two wire
//	                               formats, negotiated by Content-Type
//	                               (see "Ingest wire formats" below):
//	                               ndjson — each value a JSON array
//	                               [x1,...,xd] (weight 1) or
//	                               {"p":[...],"w":2.5} — or one binary
//	                               application/x-streamkm-batch body.
//	GET    /streams/{id}/centers   current k centers (cached fast path);
//	                               ?refresh=1 forces recomputation;
//	                               restores a hibernated stream lazily.
//	GET    /streams/{id}/stats     per-stream facts (count, residency,
//	                               memory, backend spec incl. half_life /
//	                               half_life_seconds / window_n / shards);
//	                               never warms a cold stream.
//	GET    /streams/{id}/snapshot  the stream's serialized state; served
//	                               from its file when hibernated.
//	POST   /streams/{id}/snapshot  checkpoint the stream to its file.
//	PUT    /streams/{id}/snapshot  install the stream from the snapshot
//	                               envelope in the body and restore it
//	                               immediately — the receiving half of a
//	                               router-driven tenant migration. A
//	                               malformed envelope is 400 with nothing
//	                               registered; a taken id is 409.
//	POST   /streams/{id}/detach    freeze the stream for migration: it is
//	                               checkpointed, then every request
//	                               answers 409 until reattach or DELETE.
//	                               The optional body {"owner":"url"} is
//	                               echoed as an X-Streamkm-Owner header on
//	                               those 409s so clients can follow the
//	                               move.
//	POST   /streams/{id}/reattach  lift a detach (aborted migration) or
//	                               promote a standby copy; the stream
//	                               serves again from its snapshot.
//	PUT    /streams/{id}/standby   install the snapshot envelope in the
//	                               body as a non-serving standby copy:
//	                               registered detached — every request
//	                               409s, with the ?owner= query value as
//	                               the X-Streamkm-Owner hint — and
//	                               flagged standby, so a later ship may
//	                               overwrite it in place (the one install
//	                               allowed to). The receiving half of the
//	                               router's asynchronous standby
//	                               replication; reattach promotes the
//	                               copy to serving on failover. A ship
//	                               over an existing non-standby stream
//	                               (including a promoted copy) is 409.
//	PUT    /streams/{id}           explicit create with a JSON backend
//	                               spec {"backend","algo","k","dim",
//	                               "half_life","half_life_seconds",
//	                               "window_n","shards"} — backend is
//	                               "concurrent" (default), "decayed"
//	                               (requires exactly one of half_life /
//	                               half_life_seconds, > 0) or "windowed"
//	                               (requires window_n >= bucket size);
//	                               every field optional, zero values fall
//	                               back to the registry default. Invalid
//	                               specs (k <= 0, absurd dim, missing or
//	                               stray variant knobs) are 400; a taken
//	                               id is 409.
//	DELETE /streams/{id}           remove the stream and its snapshot.
//	GET    /streams                list all streams, resident or cold.
//	GET    /stats                  registry-wide: stream counts (total /
//	                               resident / hibernated), lifecycle
//	                               counters (evictions, restores, ...),
//	                               checkpoint and per-endpoint counters.
//	GET    /metrics                Prometheus text-format (0.0.4)
//	                               exposition of the same counters plus
//	                               fixed-bucket latency histograms:
//	                               per-endpoint families
//	                               (streamkm_endpoint_*), per-tenant
//	                               ingest/query series keyed by stream
//	                               (streamkm_tenant_*, capped at 1024
//	                               series with overflow folded into
//	                               stream="_other"), residency gauges
//	                               (streamkm_streams) and registry
//	                               lifecycle events
//	                               (streamkm_registry_events_total,
//	                               including throttle and shed).
//	                               Dependency-free: written and parsed by
//	                               internal/metrics. The single-stream
//	                               Server and the router serve the same
//	                               route (the router with
//	                               streamkm_router_* families instead of
//	                               tenant series).
//	GET    /healthz                liveness probe.
//
// The pre-registry single-stream endpoints (POST /ingest, GET /centers,
// GET/POST /snapshot) remain mounted as aliases for a configurable
// default stream, so existing clients work unchanged.
//
// The detach/install/reattach trio is the daemon half of horizontal
// sharding: cmd/streamkm-router (internal/ring) consistent-hashes
// tenants across a fleet of these servers and migrates them with
// detach → GET snapshot → PUT snapshot → DELETE, refusing writes to a
// tenant only during its own handoff window. The standby install is the
// daemon half of automatic failover: the router periodically ships each
// tenant's snapshot onto another member as a standby copy, and when
// health probes declare the owner dead, promotes the copy with one
// reattach — the stream loses at most one replication interval of
// arrivals.
//
// Each stream adopts the dimension of its first ingested point (unless
// configured); subsequent mismatches are rejected with 400 before
// touching the clusterer. Ingest requests are bounded: bodies beyond
// MaxBodyBytes and requests carrying more than MaxPoints points are cut
// off with 413 instead of read unboundedly.
//
// # Quotas and admission control
//
// Each stream's spec may carry per-tenant quotas: points_per_sec and
// bytes_per_sec (sustained ingest rates, token bucket with roughly one
// second of burst) and max_resident_bytes (a cap on the estimated
// resident footprint of the stream's stored points). A request beyond
// its quota — or an access that would restore a hibernation-thrashing
// stream yet again (the daemon's -thrash-restores / -thrash-window
// knobs) — is refused whole with 429 Too Many Requests, a Retry-After
// header (integer seconds, rounded up) and a JSON body naming the
// stream and carrying "ingested": 0; nothing is partially applied.
// Every ndjson ingest error body, whatever the status, includes the
// applied-point count under "ingested" so clients resume without
// double-counting. Quotas are operator policy, not model identity: they
// persist through the snapshot envelope but never participate in
// restore-spec matching, and a PUT with zero-valued quota fields
// inherits the daemon defaults.
//
// # Ingest wire formats
//
// Both ingest endpoints negotiate on Content-Type.
// application/x-streamkm-batch selects the binary columnar format
// (internal/wire): a 16-byte versioned header — magic "SKMB", version,
// a weights flag, uint32 little-endian dim and count — followed by a
// flat point-major float32 coordinate block and an optional float32
// weights block. Any other content type is treated as ndjson, the
// compatibility path.
//
// The two paths differ in their partial-failure contract. The ndjson
// path streams: on the first malformed value it stops, keeps what was
// already applied, and reports both the error and the applied count.
// The binary path is all-or-nothing: the entire body (header sanity,
// exact length, finite coordinates, positive weights) is validated
// before the first point is applied, so a 400 always means zero points
// ingested — FuzzBinaryBatch asserts exactly this, and the differential
// suite (wire_e2e_test.go) asserts both wires leave a backend in the
// identical state for identical input. Malformed bodies are 400,
// over-cap bodies (bytes or points) 413.
//
// The binary path is also the fast one: one decode pass, one coordinate
// allocation per request however many points, with the request body and
// per-point slice headers recycled through a wire.BufferPool (the Multi
// server shares one pool registry-wide via Registry.Buffers, and decodes
// before taking the stream's lock). BenchmarkIngestWire measures the
// difference against the same backend.
//
// # Durability
//
// Checkpointing rides the same smallness argument that makes queries
// fast: serializing a coreset (internal/persist's versioned, checksummed
// envelope) costs milliseconds, so hibernation, periodic checkpoints and
// crash recovery all reuse one mechanism. Every write is atomic (temp
// file + fsync + rename via persist.WriteFileAtomic); a crash mid-write
// never corrupts the previous snapshot. A restarted daemon re-registers
// every snapshot in its data directory without loading any of them
// (persist.PeekBackend reads just the metadata, for every backend
// variant and format generation), so boot cost is O(# streams), not
// O(points). The crash-recovery suites (recovery_test.go,
// tenant_e2e_test.go, backend_e2e_test.go) assert kill-and-restart
// equivalence end to end, including 50+ tenants churning through
// eviction and lazy restore and decayed/windowed tenants resuming with
// their recency semantics intact.
//
// Request accounting uses metrics.EndpointStats: a few atomic adds per
// request, no locks on the hot path.
//
// # Tracing and slow-request logging
//
// Every request to either server runs inside an internal/trace span.
// The traceparent contract is W3C trace context: a request carrying a
// valid traceparent header (00-<32 hex trace id>-<16 hex parent span
// id>-<2 hex flags>, lowercase) joins that trace as a child span; a
// request without one starts a fresh trace. cmd/streamkm-router always
// sends one — the router's own span becomes the daemon span's parent,
// so one trace id follows a request across the hop — and plain curl
// works too: the daemon just mints a new trace.
//
// Spans carry named stage timers attributing latency to the code path
// that spent it: body-read, wire-decode, lock-wait (stream lock
// acquisition inside the registry), quota (admission check),
// cluster-apply, shard-merge (rescaling and unioning the decayed or
// windowed lanes' coresets on a centers-cache miss),
// coreset-recompute (query-time k-means++), restore
// (rehydrating a hibernated stream — the stage that explains a
// multi-second outlier on an otherwise sub-millisecond endpoint) and
// checkpoint-fsync. Stages only appear when their code path ran, and
// every recorded stage duration is strictly positive.
//
//	GET /debug/traces             recent + slowest completed spans as
//	                              JSON, with started/completed counters.
//	                              Filters: ?stream=, ?endpoint=, ?trace=,
//	                              ?min_ms=, ?limit= (default 250;
//	                              limit=0 returns everything held).
//
// The ring is bounded and in-memory (trace.Recorder: 2048 recent spans
// plus the 64 slowest pinned separately), costs a few hundred
// nanoseconds per request, and is mounted outside the request
// accounting so scrapes never pollute what they read.
//
// With MultiConfig.SlowRequest (the daemon's -slow-request flag) set,
// any request at or over the threshold additionally emits one
// structured slog record — trace id, endpoint, stream, status,
// duration, the full stage breakdown and the dominant stage — so the
// slow log alone answers "what was slow and why" without a trace
// lookup. cmd/tracecheck is the CI gate over these invariants.
package server
