// Package metrics provides the reporting substrate for the experiment
// harness and the serving layer: aligned text tables, memory conversion
// (points to megabytes at 8 bytes per dimension, as in the paper's Table
// 4), small summary statistics (the paper reports medians over repeated
// runs), and lock-free per-endpoint request counters (EndpointStats) for
// the HTTP server's /stats endpoint.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// MemoryMB converts a point count into megabytes assuming each of the dim
// coordinates is a float64 (8 bytes) — the paper's Table 4 convention.
func MemoryMB(points, dim int) float64 {
	return float64(points) * float64(dim) * 8 / 1e6
}

// Median returns the median of xs (the paper reports "the median from nine
// independent runs"). It returns 0 for empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs by the
// nearest-rank method, 0 for empty input. Used for the load-replay
// latency summaries (p50/p95).
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return s[idx]
}

// Mean returns the arithmetic mean of xs, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Table accumulates rows and renders them with aligned columns, suitable
// for regenerating the paper's tables on a terminal.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// formatFloat renders floats compactly: scientific for very large/small
// magnitudes (k-means costs), fixed otherwise.
func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1e6 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
