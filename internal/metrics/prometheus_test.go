package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramObserveBucketsAndQuantile(t *testing.T) {
	var h Histogram
	h.Observe(300 * time.Microsecond) // bucket 0 (<=0.5ms)
	h.Observe(2 * time.Millisecond)   // bucket 2 (<=2.5ms)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Minute) // +Inf overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	wantSum := (300*time.Microsecond + 2*2*time.Millisecond + time.Minute).Nanoseconds()
	if s.SumNs != wantSum {
		t.Fatalf("SumNs = %d, want %d", s.SumNs, wantSum)
	}
	if s.Buckets[0] != 1 || s.Buckets[2] != 2 || s.Buckets[numBuckets-1] != 1 {
		t.Fatalf("bucket layout wrong: %v", s.Buckets)
	}
	var total int64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Fatalf("bucket sum %d != count %d", total, s.Count)
	}
	// Median lands in the 2.5ms bucket; the +Inf observation caps at the
	// largest finite bound instead of fabricating a value.
	if q := s.Quantile(0.5); q < 0.001 || q > 0.0025 {
		t.Fatalf("p50 = %v, want within (1ms, 2.5ms]", q)
	}
	if q := s.Quantile(1); q != 10 {
		t.Fatalf("p100 = %v, want 10 (largest finite bound)", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestExpositionRoundTrip(t *testing.T) {
	var h Histogram
	for i := 0; i < 5; i++ {
		h.Observe(3 * time.Millisecond)
	}

	var e Exposition
	c := e.Counter("test_requests_total", "Requests, by tenant.")
	c.Add(7, "stream", "a")
	c.Add(2, "stream", `we"ird\name`) // exercises label escaping
	e.Gauge("test_uptime_seconds", "Uptime.").Add(12.5)
	e.Histogram("test_latency_seconds", "Latency.").Add(h.Snapshot(), "stream", "a")

	samples, err := ParseProm(strings.NewReader(e.String()))
	if err != nil {
		t.Fatalf("own exposition does not parse: %v", err)
	}
	if got := samples[`test_requests_total{stream="a"}`]; got != 7 {
		t.Fatalf("counter a = %v, want 7", got)
	}
	if got := samples[`test_requests_total{stream="we\"ird\\name"}`]; got != 2 {
		t.Fatalf("escaped-label counter = %v, want 2 (keys: %v)", got, samples)
	}
	if got := samples["test_uptime_seconds"]; got != 12.5 {
		t.Fatalf("gauge = %v, want 12.5", got)
	}
	if got := samples[`test_latency_seconds_count{stream="a"}`]; got != 5 {
		t.Fatalf("histogram count = %v, want 5", got)
	}
	if got := samples[`test_latency_seconds_bucket{le="+Inf",stream="a"}`]; got != 5 {
		t.Fatalf("+Inf bucket = %v, want 5 (cumulative)", got)
	}
	// 3ms observations land in the 5ms bucket: everything below is 0,
	// everything at or above is the full count.
	if got := samples[`test_latency_seconds_bucket{le="0.0025",stream="a"}`]; got != 0 {
		t.Fatalf("2.5ms bucket = %v, want 0", got)
	}
	if got := samples[`test_latency_seconds_bucket{le="0.005",stream="a"}`]; got != 5 {
		t.Fatalf("5ms bucket = %v, want 5", got)
	}
	if got := samples[`test_latency_seconds_sum{stream="a"}`]; got != 0.015 {
		t.Fatalf("sum = %v, want 0.015", got)
	}
	// One _bucket series per bound plus +Inf must be present.
	buckets := 0
	for k := range samples {
		if strings.HasPrefix(k, "test_latency_seconds_bucket{") {
			buckets++
		}
	}
	if buckets != numBuckets {
		t.Fatalf("%d bucket series, want %d", buckets, numBuckets)
	}
}

func TestParsePromRejectsMalformed(t *testing.T) {
	bad := []string{
		"foo bar\n",                     // non-numeric value
		"1foo 2\n",                      // invalid metric name
		"# BOGUS comment\n",             // unknown comment form
		`foo{l="unterminated} 1` + "\n", // unterminated quote
		`foo{l=unquoted} 1` + "\n",      // unquoted label value
		`foo{9l="x"} 1` + "\n",          // invalid label name
		"foo{} 1 2 3\n",                 // trailing junk
		`foo{l="x\q"} 1` + "\n",         // unknown escape
	}
	for _, in := range bad {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm accepted %q", in)
		}
	}
	// Tolerated forms: blank lines, HELP/TYPE comments, a trailing
	// timestamp.
	ok := "# HELP foo Help text.\n# TYPE foo counter\n\nfoo{l=\"x\"} 3 1712345678\n"
	samples, err := ParseProm(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("ParseProm rejected valid input: %v", err)
	}
	if samples[`foo{l="x"}`] != 3 {
		t.Fatalf("samples = %v", samples)
	}
}
