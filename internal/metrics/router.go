package metrics

import "sync/atomic"

// RouterStats accumulates counters for the consistent-hash router: how
// much traffic it forwarded (and how much of that failed upstream), how
// many fleet-wide fan-out queries it served, how many writes it refused
// because the tenant was mid-handoff, and how the rebalancer fared. All
// methods are safe for concurrent use.
type RouterStats struct {
	proxied       atomic.Int64
	proxyErrors   atomic.Int64
	fanouts       atomic.Int64
	refusals      atomic.Int64
	rebalances    atomic.Int64
	migrations    atomic.Int64
	migrationErrs atomic.Int64
	staleDeletes  atomic.Int64
	clientCancels atomic.Int64
	replications  atomic.Int64
	replicateErrs atomic.Int64
	promotions    atomic.Int64
	promotionErrs atomic.Int64
	memberDowns   atomic.Int64
	memberUps     atomic.Int64
}

// RecordProxied accounts one forwarded per-stream request; failed marks
// the upstream as unreachable or erroring at transport level.
func (r *RouterStats) RecordProxied(failed bool) {
	r.proxied.Add(1)
	if failed {
		r.proxyErrors.Add(1)
	}
}

// RecordFanout accounts one fleet-wide merged query (/streams, /stats).
func (r *RouterStats) RecordFanout() { r.fanouts.Add(1) }

// RecordRefusal accounts one write refused during a tenant's handoff
// window (the 503 + Retry-After path).
func (r *RouterStats) RecordRefusal() { r.refusals.Add(1) }

// RecordRebalance accounts one rebalance pass.
func (r *RouterStats) RecordRebalance() { r.rebalances.Add(1) }

// RecordMigration accounts one tenant handoff attempt; failed marks it
// as pending (to be retried by a later rebalance).
func (r *RouterStats) RecordMigration(failed bool) {
	r.migrations.Add(1)
	if failed {
		r.migrationErrs.Add(1)
	}
}

// RecordStaleDelete accounts one duplicate tenant copy removed during
// reconciliation.
func (r *RouterStats) RecordStaleDelete() { r.staleDeletes.Add(1) }

// RecordClientCancel accounts one proxied request abandoned by its own
// client (context cancellation / disconnect) — NOT an upstream failure:
// it is counted apart from proxy errors and never feeds member health.
func (r *RouterStats) RecordClientCancel() { r.clientCancels.Add(1) }

// RecordReplication accounts one standby replication ship attempt;
// failed marks the snapshot fetch or standby install as unsuccessful.
func (r *RouterStats) RecordReplication(failed bool) {
	r.replications.Add(1)
	if failed {
		r.replicateErrs.Add(1)
	}
}

// RecordPromotion accounts one standby promotion attempt after a member
// was probed down; failed means the standby could not be reattached and
// the tenant stays refusing writes until a later pass.
func (r *RouterStats) RecordPromotion(failed bool) {
	r.promotions.Add(1)
	if failed {
		r.promotionErrs.Add(1)
	}
}

// RecordMemberDown accounts one member crossing the health-probe fail
// threshold into the down state.
func (r *RouterStats) RecordMemberDown() { r.memberDowns.Add(1) }

// RecordMemberUp accounts one down member probing healthy again.
func (r *RouterStats) RecordMemberUp() { r.memberUps.Add(1) }

// RouterSnapshot is a point-in-time copy of router counters, shaped for
// direct JSON serialization in a stats response.
type RouterSnapshot struct {
	Proxied          int64 `json:"proxied"`
	ProxyErrors      int64 `json:"proxy_errors"`
	Fanouts          int64 `json:"fanouts"`
	HandoffRefusals  int64 `json:"handoff_refusals"`
	Rebalances       int64 `json:"rebalances"`
	Migrations       int64 `json:"migrations"`
	MigrationErrors  int64 `json:"migration_errors"`
	StaleCopyDeletes int64 `json:"stale_copy_deletes"`
	ClientCancels    int64 `json:"client_cancels"`
	Replications     int64 `json:"replications"`
	ReplicationErrs  int64 `json:"replication_errors"`
	Promotions       int64 `json:"promotions"`
	PromotionErrs    int64 `json:"promotion_errors"`
	MemberDowns      int64 `json:"member_downs"`
	MemberUps        int64 `json:"member_ups"`
}

// Snapshot captures current counter values.
func (r *RouterStats) Snapshot() RouterSnapshot {
	return RouterSnapshot{
		Proxied:          r.proxied.Load(),
		ProxyErrors:      r.proxyErrors.Load(),
		Fanouts:          r.fanouts.Load(),
		HandoffRefusals:  r.refusals.Load(),
		Rebalances:       r.rebalances.Load(),
		Migrations:       r.migrations.Load(),
		MigrationErrors:  r.migrationErrs.Load(),
		StaleCopyDeletes: r.staleDeletes.Load(),
		ClientCancels:    r.clientCancels.Load(),
		Replications:     r.replications.Load(),
		ReplicationErrs:  r.replicateErrs.Load(),
		Promotions:       r.promotions.Load(),
		PromotionErrs:    r.promotionErrs.Load(),
		MemberDowns:      r.memberDowns.Load(),
		MemberUps:        r.memberUps.Load(),
	}
}
