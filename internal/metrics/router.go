package metrics

import "sync/atomic"

// RouterStats accumulates counters for the consistent-hash router: how
// much traffic it forwarded (and how much of that failed upstream), how
// many fleet-wide fan-out queries it served, how many writes it refused
// because the tenant was mid-handoff, and how the rebalancer fared. All
// methods are safe for concurrent use.
type RouterStats struct {
	proxied       atomic.Int64
	proxyErrors   atomic.Int64
	fanouts       atomic.Int64
	refusals      atomic.Int64
	rebalances    atomic.Int64
	migrations    atomic.Int64
	migrationErrs atomic.Int64
	staleDeletes  atomic.Int64
}

// RecordProxied accounts one forwarded per-stream request; failed marks
// the upstream as unreachable or erroring at transport level.
func (r *RouterStats) RecordProxied(failed bool) {
	r.proxied.Add(1)
	if failed {
		r.proxyErrors.Add(1)
	}
}

// RecordFanout accounts one fleet-wide merged query (/streams, /stats).
func (r *RouterStats) RecordFanout() { r.fanouts.Add(1) }

// RecordRefusal accounts one write refused during a tenant's handoff
// window (the 503 + Retry-After path).
func (r *RouterStats) RecordRefusal() { r.refusals.Add(1) }

// RecordRebalance accounts one rebalance pass.
func (r *RouterStats) RecordRebalance() { r.rebalances.Add(1) }

// RecordMigration accounts one tenant handoff attempt; failed marks it
// as pending (to be retried by a later rebalance).
func (r *RouterStats) RecordMigration(failed bool) {
	r.migrations.Add(1)
	if failed {
		r.migrationErrs.Add(1)
	}
}

// RecordStaleDelete accounts one duplicate tenant copy removed during
// reconciliation.
func (r *RouterStats) RecordStaleDelete() { r.staleDeletes.Add(1) }

// RouterSnapshot is a point-in-time copy of router counters, shaped for
// direct JSON serialization in a stats response.
type RouterSnapshot struct {
	Proxied          int64 `json:"proxied"`
	ProxyErrors      int64 `json:"proxy_errors"`
	Fanouts          int64 `json:"fanouts"`
	HandoffRefusals  int64 `json:"handoff_refusals"`
	Rebalances       int64 `json:"rebalances"`
	Migrations       int64 `json:"migrations"`
	MigrationErrors  int64 `json:"migration_errors"`
	StaleCopyDeletes int64 `json:"stale_copy_deletes"`
}

// Snapshot captures current counter values.
func (r *RouterStats) Snapshot() RouterSnapshot {
	return RouterSnapshot{
		Proxied:          r.proxied.Load(),
		ProxyErrors:      r.proxyErrors.Load(),
		Fanouts:          r.fanouts.Load(),
		HandoffRefusals:  r.refusals.Load(),
		Rebalances:       r.rebalances.Load(),
		Migrations:       r.migrations.Load(),
		MigrationErrors:  r.migrationErrs.Load(),
		StaleCopyDeletes: r.staleDeletes.Load(),
	}
}
