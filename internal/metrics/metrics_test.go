package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestMemoryMB(t *testing.T) {
	// Table 4 sanity: 5950 points × 54 dims × 8 bytes = 2.5704 MB (the paper
	// reports 2.57 for streamkm++ on Covtype).
	got := MemoryMB(5950, 54)
	if math.Abs(got-2.5704) > 1e-9 {
		t.Fatalf("MemoryMB(5950, 54) = %v, want 2.5704", got)
	}
	if MemoryMB(0, 54) != 0 {
		t.Fatal("zero points should be 0 MB")
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{9, 9, 1}, 9},
	}
	for _, c := range cases {
		if got := Median(c.in); got != c.want {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	// Median must not mutate its input.
	in := []float64{3, 1, 2}
	_ = Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median sorted the caller's slice")
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", 3.14159)
	tb.AddRow("a-very-long-name", 2)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header line = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator line = %q", lines[2])
	}
	// Columns align: "value" column starts at the same offset in all rows.
	idx := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[3][idx:], "3.142") {
		t.Fatalf("row misaligned: %q", lines[3])
	}
}

func TestFormatFloat(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1234567, "1.235e+06"},
		{0.0001, "1.000e-04"},
		{123.456, "123.5"},
		{3.14159, "3.142"},
		{-2e9, "-2.000e+09"},
	}
	for _, c := range cases {
		if got := formatFloat(c.in); got != c.want {
			t.Errorf("formatFloat(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
