package metrics

import (
	"sync/atomic"
	"time"
)

// latencyBucketsNs are the fixed histogram bucket upper bounds, in
// nanoseconds: 0.5ms to 10s in a 1-2.5-5 decade ladder, chosen so both
// the cached-centers fast path (sub-millisecond) and a restore-stalled
// p99 (seconds) land in distinguishable buckets. One more implicit
// +Inf bucket catches everything beyond.
var latencyBucketsNs = [...]int64{
	500_000,        // 0.5ms
	1_000_000,      // 1ms
	2_500_000,      // 2.5ms
	5_000_000,      // 5ms
	10_000_000,     // 10ms
	25_000_000,     // 25ms
	50_000_000,     // 50ms
	100_000_000,    // 100ms
	250_000_000,    // 250ms
	500_000_000,    // 500ms
	1_000_000_000,  // 1s
	2_500_000_000,  // 2.5s
	5_000_000_000,  // 5s
	10_000_000_000, // 10s
}

// numBuckets counts the finite buckets plus the +Inf overflow bucket.
const numBuckets = len(latencyBucketsNs) + 1

// BucketBoundsSeconds returns the finite bucket upper bounds in seconds
// (the Prometheus "le" values; +Inf is implicit).
func BucketBoundsSeconds() []float64 {
	out := make([]float64, len(latencyBucketsNs))
	for i, ns := range latencyBucketsNs {
		out[i] = float64(ns) / 1e9
	}
	return out
}

// Histogram is a fixed-bucket latency histogram: lock-free, a bucket
// index scan plus three atomic adds per observation — cheap enough for
// every request, and the latency signal maxNs alone cannot give
// (percentiles that forget old outliers instead of high-watermarking
// forever). The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	sumNs   atomic.Int64
	count   atomic.Int64
}

// Observe accounts one measured duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	i := 0
	for i < len(latencyBucketsNs) && ns > latencyBucketsNs[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sumNs.Add(ns)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with BucketBoundsSeconds plus the
// +Inf bucket last, and the total sum/count.
type HistogramSnapshot struct {
	Buckets [numBuckets]int64
	SumNs   int64
	Count   int64
}

// Snapshot captures the current histogram values. As with the other
// counters, fields are individually — not jointly — consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.SumNs = h.sumNs.Load()
	s.Count = h.count.Load()
	return s
}

// topFiniteBoundSeconds is the largest finite bucket bound in seconds —
// the documented ceiling for every Quantile estimate.
func topFiniteBoundSeconds() float64 {
	return float64(latencyBucketsNs[len(latencyBucketsNs)-1]) / 1e9
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds by linear
// interpolation within the containing bucket. Returns 0 for an empty
// histogram.
//
// The +Inf overflow bucket has no finite upper edge to interpolate
// toward, so a quantile landing there reports the largest finite bound
// (10s with the default ladder) rather than inventing a value —
// Quantile deliberately saturates, and callers comparing against an SLO
// above the top bound must use the raw +Inf bucket count instead. The
// same cap applies when a torn Snapshot (fields are individually, not
// jointly, consistent) carries a Count exceeding its bucket sum: the
// scan runs off the end and saturates instead of extrapolating.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(s.Count)
	var cum, lower float64
	for i, n := range s.Buckets {
		upper := topFiniteBoundSeconds()
		if i < len(latencyBucketsNs) {
			upper = float64(latencyBucketsNs[i]) / 1e9
		}
		next := cum + float64(n)
		if next >= target {
			if n == 0 || i == len(latencyBucketsNs) {
				return upper
			}
			frac := (target - cum) / float64(n)
			return lower + frac*(upper-lower)
		}
		cum = next
		lower = upper
	}
	return topFiniteBoundSeconds()
}
