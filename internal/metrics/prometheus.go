package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Dependency-free Prometheus text-format (version 0.0.4) exposition:
// enough of the format for the daemon's and router's GET /metrics —
// counters, gauges and fixed-bucket histograms with labels — without
// pulling a client library into the module. ParseProm is the matching
// reader, shared by the scrape tests and the CI metrics checker, so the
// writer can never drift from what the tests accept.

// Exposition accumulates one /metrics response. Families must be
// written one at a time: create a family, Add all its samples, then
// create the next (the text format requires a family's samples to be
// contiguous under its # TYPE header).
type Exposition struct {
	b strings.Builder
}

// Family is one metric family being written: the header has been
// emitted; Add appends samples.
type Family struct {
	e    *Exposition
	name string
}

// HistogramFamily is a histogram metric family; Add expands each
// snapshot into the _bucket/_sum/_count series.
type HistogramFamily struct {
	e    *Exposition
	name string
}

func (e *Exposition) header(name, typ, help string) {
	fmt.Fprintf(&e.b, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter starts a counter family.
func (e *Exposition) Counter(name, help string) *Family {
	e.header(name, "counter", help)
	return &Family{e: e, name: name}
}

// Gauge starts a gauge family.
func (e *Exposition) Gauge(name, help string) *Family {
	e.header(name, "gauge", help)
	return &Family{e: e, name: name}
}

// Histogram starts a histogram family.
func (e *Exposition) Histogram(name, help string) *HistogramFamily {
	e.header(name, "histogram", help)
	return &HistogramFamily{e: e, name: name}
}

// Add appends one sample; kv are label key/value pairs.
func (f *Family) Add(v float64, kv ...string) {
	f.e.sample(f.name, kv, v)
}

// Add appends one histogram: cumulative le buckets (in seconds),
// then _sum and _count. kv are label key/value pairs shared by every
// series.
func (hf *HistogramFamily) Add(s HistogramSnapshot, kv ...string) {
	var cum int64
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < len(latencyBucketsNs) {
			le = formatFloatProm(float64(latencyBucketsNs[i]) / 1e9)
		}
		hf.e.sample(hf.name+"_bucket", append(append([]string(nil), kv...), "le", le), float64(cum))
	}
	hf.e.sample(hf.name+"_sum", kv, float64(s.SumNs)/1e9)
	hf.e.sample(hf.name+"_count", kv, float64(s.Count))
}

func (e *Exposition) sample(name string, kv []string, v float64) {
	e.b.WriteString(name)
	if len(kv) > 0 {
		e.b.WriteByte('{')
		for i := 0; i+1 < len(kv); i += 2 {
			if i > 0 {
				e.b.WriteByte(',')
			}
			fmt.Fprintf(&e.b, "%s=%q", kv[i], escapeLabel(kv[i+1]))
		}
		e.b.WriteByte('}')
	}
	e.b.WriteByte(' ')
	e.b.WriteString(formatFloatProm(v))
	e.b.WriteByte('\n')
}

// WriteTo writes the accumulated exposition to w.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, e.b.String())
	return int64(n), err
}

// String returns the accumulated exposition text.
func (e *Exposition) String() string { return e.b.String() }

// formatFloatProm renders a sample value: integral values print as
// integers (counter readability), everything else in shortest-float
// form.
func formatFloatProm(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel prepares a label value for %q-quoting: the format's
// escapes (\\, \", \n) coincide with Go's for these characters, so
// escaping anything else is unnecessary; %q handles the quoting.
func escapeLabel(v string) string { return v }

// escapeHelp escapes a HELP line per the text format.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

var (
	promNameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	promLabelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParseProm reads a text-format exposition and returns every sample
// keyed by metric name plus its sorted label set rendered canonically,
// e.g. `streamkm_tenant_latency_seconds_count{op="ingest",stream="a"}`
// (bare `name` for label-less samples). Any line it cannot parse is an
// error — this is the validation the CI scrape gate relies on.
func ParseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				return nil, fmt.Errorf("metrics line %d: unrecognized comment %q", lineNo, line)
			}
			continue
		}
		key, val, err := parsePromSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics line %d: %v", lineNo, err)
		}
		out[key] = val
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parsePromSample parses one sample line into its canonical key and
// value.
func parsePromSample(line string) (string, float64, error) {
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return "", 0, fmt.Errorf("no value in %q", line)
	}
	name := line[:nameEnd]
	if !promNameRE.MatchString(name) {
		return "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest := line[nameEnd:]
	var labels []string
	if rest[0] == '{' {
		var err error
		labels, rest, err = parsePromLabels(rest[1:])
		if err != nil {
			return "", 0, fmt.Errorf("%v in %q", err, line)
		}
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 { // optional trailing timestamp
		return "", 0, fmt.Errorf("expected value [timestamp] after %q", name)
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	key := name
	if len(labels) > 0 {
		sort.Strings(labels)
		key += "{" + strings.Join(labels, ",") + "}"
	}
	return key, v, nil
}

// parsePromLabels consumes `name="value",...}` and returns each pair
// rendered `name="value"` plus the remainder of the line.
func parsePromLabels(s string) ([]string, string, error) {
	var labels []string
	for {
		s = strings.TrimLeft(s, " ,")
		if s == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if s[0] == '}' {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		lname := strings.TrimSpace(s[:eq])
		if !promLabelRE.MatchString(lname) {
			return nil, "", fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if s == "" || s[0] != '"' {
			return nil, "", fmt.Errorf("label %s value not quoted", lname)
		}
		val, rest, err := parseQuoted(s)
		if err != nil {
			return nil, "", fmt.Errorf("label %s: %v", lname, err)
		}
		labels = append(labels, fmt.Sprintf("%s=%q", lname, val))
		s = rest
	}
}

// parseQuoted consumes a leading double-quoted string with \\, \" and
// \n escapes, returning the unescaped value and the remainder.
func parseQuoted(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\', '"':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("unknown escape \\%c", s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
