package metrics

import (
	"testing"
	"time"
)

// These tests pin the documented saturation contract of Quantile: a
// quantile landing in the +Inf overflow bucket — or chasing a torn
// snapshot whose Count exceeds its bucket sum — reports the largest
// finite bucket bound (10s), never an extrapolated value.

func TestQuantileInfBucketReturnsTopFiniteBound(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(30 * time.Second) // beyond the 10s top bound
	}
	s := h.Snapshot()
	if got := s.Buckets[len(s.Buckets)-1]; got != 100 {
		t.Fatalf("+Inf bucket = %d, want 100", got)
	}
	top := topFiniteBoundSeconds()
	for _, q := range []float64{0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != top {
			t.Errorf("Quantile(%v) = %v, want top finite bound %v", q, got, top)
		}
	}
}

func TestQuantileInfTailSaturatesMixedHistogram(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(800 * time.Microsecond) // (0.5ms, 1ms] bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Minute) // +Inf bucket
	}
	s := h.Snapshot()
	if p50 := s.Quantile(0.5); p50 <= 0.0005 || p50 > 0.001 {
		t.Errorf("p50 = %v, want interpolated within (0.0005, 0.001]", p50)
	}
	if p99 := s.Quantile(0.99); p99 != topFiniteBoundSeconds() {
		t.Errorf("p99 = %v, want saturation at %v", p99, topFiniteBoundSeconds())
	}
}

func TestQuantileTornSnapshotCountSaturates(t *testing.T) {
	// Snapshot fields are individually, not jointly, consistent: a racing
	// Observe can leave Count larger than the bucket sum. The quantile
	// target then overruns the cumulative scan; the contract is to
	// saturate at the top finite bound, not extrapolate or panic.
	var s HistogramSnapshot
	s.Buckets[0] = 5
	s.Count = 1000 // vastly exceeds the bucket sum
	if got := s.Quantile(0.99); got != topFiniteBoundSeconds() {
		t.Errorf("torn-snapshot Quantile(0.99) = %v, want %v", got, topFiniteBoundSeconds())
	}
}

func TestQuantileEmptyHistogramIsZero(t *testing.T) {
	var s HistogramSnapshot
	if got := s.Quantile(0.99); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}
