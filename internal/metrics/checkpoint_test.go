package metrics

import (
	"testing"
	"time"
)

func TestCheckpointStats(t *testing.T) {
	var c CheckpointStats
	if s := c.Snapshot(); s.Written != 0 || s.Failed != 0 || s.LastUnix != 0 || s.LastBytes != 0 {
		t.Fatalf("zero value snapshot %+v", s)
	}
	at := time.Unix(1700000000, 0)
	c.RecordSuccess(1234, at)
	c.RecordFailure()
	c.RecordSuccess(999, at.Add(time.Minute))
	s := c.Snapshot()
	if s.Written != 2 || s.Failed != 1 {
		t.Fatalf("counters %+v", s)
	}
	if s.LastBytes != 999 || s.LastUnix != at.Add(time.Minute).Unix() {
		t.Fatalf("last-checkpoint fields %+v", s)
	}
}
