package metrics

import "testing"

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.95, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("Percentile(%v, %v) = %v, want %v", xs, c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 0.5); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	// Input must not be mutated (Percentile sorts a copy).
	if xs[0] != 5 {
		t.Errorf("Percentile mutated its input: %v", xs)
	}
}
