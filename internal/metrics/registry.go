package metrics

import "sync/atomic"

// RegistryStats accumulates lifecycle counters for a multi-tenant stream
// registry: how many streams were created and deleted, how many times a
// cold stream was hibernated to disk (eviction) or lazily restored from
// it, and how many hibernation attempts failed. All methods are safe for
// concurrent use; each is a single atomic add.
type RegistryStats struct {
	creates       atomic.Int64
	deletes       atomic.Int64
	evictions     atomic.Int64
	evictFailures atomic.Int64
	restores      atomic.Int64
}

// RecordCreate accounts one stream registered (explicitly or lazily).
func (r *RegistryStats) RecordCreate() { r.creates.Add(1) }

// RecordDelete accounts one stream deleted.
func (r *RegistryStats) RecordDelete() { r.deletes.Add(1) }

// RecordEviction accounts one resident stream hibernated to disk.
func (r *RegistryStats) RecordEviction() { r.evictions.Add(1) }

// RecordEvictFailure accounts one hibernation attempt that failed (the
// stream stays resident; no data is lost).
func (r *RegistryStats) RecordEvictFailure() { r.evictFailures.Add(1) }

// RecordRestore accounts one hibernated stream lazily restored from disk.
func (r *RegistryStats) RecordRestore() { r.restores.Add(1) }

// RegistrySnapshot is a point-in-time copy of registry counters, shaped
// for direct JSON serialization in a stats response.
type RegistrySnapshot struct {
	Creates       int64 `json:"creates"`
	Deletes       int64 `json:"deletes"`
	Evictions     int64 `json:"evictions"`
	EvictFailures int64 `json:"evict_failures"`
	Restores      int64 `json:"restores"`
}

// Snapshot captures the current counter values. As with EndpointStats,
// fields are individually — not jointly — consistent.
func (r *RegistryStats) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Creates:       r.creates.Load(),
		Deletes:       r.deletes.Load(),
		Evictions:     r.evictions.Load(),
		EvictFailures: r.evictFailures.Load(),
		Restores:      r.restores.Load(),
	}
}
