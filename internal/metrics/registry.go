package metrics

import (
	"sync/atomic"
	"time"
)

// RegistryStats accumulates lifecycle counters for a multi-tenant stream
// registry: how many streams were created and deleted, how many times a
// cold stream was hibernated to disk (eviction) or lazily restored from
// it, how many hibernation attempts failed, and TTL-sweep latency. All
// methods are safe for concurrent use; each is a handful of atomic adds.
type RegistryStats struct {
	creates       atomic.Int64
	deletes       atomic.Int64
	evictions     atomic.Int64
	evictFailures atomic.Int64
	restores      atomic.Int64
	standbys      atomic.Int64
	throttled     atomic.Int64
	shed          atomic.Int64

	sweeps          atomic.Int64
	sweepHibernated atomic.Int64
	sweepNanosTotal atomic.Int64
	sweepNanosLast  atomic.Int64
}

// RecordCreate accounts one stream registered (explicitly or lazily).
func (r *RegistryStats) RecordCreate() { r.creates.Add(1) }

// RecordDelete accounts one stream deleted.
func (r *RegistryStats) RecordDelete() { r.deletes.Add(1) }

// RecordEviction accounts one resident stream hibernated to disk.
func (r *RegistryStats) RecordEviction() { r.evictions.Add(1) }

// RecordEvictFailure accounts one hibernation attempt that failed (the
// stream stays resident; no data is lost).
func (r *RegistryStats) RecordEvictFailure() { r.evictFailures.Add(1) }

// RecordRestore accounts one hibernated stream lazily restored from disk.
func (r *RegistryStats) RecordRestore() { r.restores.Add(1) }

// RecordStandbyInstall accounts one replication ship accepted: a
// standby snapshot envelope installed (or refreshed) in the detached,
// non-serving state.
func (r *RegistryStats) RecordStandbyInstall() { r.standbys.Add(1) }

// RecordThrottle accounts one request refused by a per-tenant quota
// (the 429 + Retry-After path).
func (r *RegistryStats) RecordThrottle() { r.throttled.Add(1) }

// RecordShed accounts one request shed by restore-thrash admission
// control: the access would have triggered yet another restore of a
// stream churning through hibernation.
func (r *RegistryStats) RecordShed() { r.shed.Add(1) }

// RecordSweep accounts one TTL sweep: how many streams it hibernated and
// how long the whole batch (checkpoint writes + single directory sync)
// took.
func (r *RegistryStats) RecordSweep(hibernated int, d time.Duration) {
	r.sweeps.Add(1)
	r.sweepHibernated.Add(int64(hibernated))
	r.sweepNanosTotal.Add(int64(d))
	r.sweepNanosLast.Store(int64(d))
}

// RegistrySnapshot is a point-in-time copy of registry counters, shaped
// for direct JSON serialization in a stats response.
type RegistrySnapshot struct {
	Creates         int64   `json:"creates"`
	Deletes         int64   `json:"deletes"`
	Evictions       int64   `json:"evictions"`
	EvictFailures   int64   `json:"evict_failures"`
	Restores        int64   `json:"restores"`
	StandbyInstalls int64   `json:"standby_installs"`
	Throttled       int64   `json:"throttled"`
	Shed            int64   `json:"shed"`
	Sweeps          int64   `json:"sweeps"`
	SweepHibernated int64   `json:"sweep_hibernated"`
	SweepLastMs     float64 `json:"sweep_last_ms"`
	SweepTotalMs    float64 `json:"sweep_total_ms"`
}

// Snapshot captures the current counter values. As with EndpointStats,
// fields are individually — not jointly — consistent.
func (r *RegistryStats) Snapshot() RegistrySnapshot {
	return RegistrySnapshot{
		Creates:         r.creates.Load(),
		Deletes:         r.deletes.Load(),
		Evictions:       r.evictions.Load(),
		EvictFailures:   r.evictFailures.Load(),
		Restores:        r.restores.Load(),
		StandbyInstalls: r.standbys.Load(),
		Throttled:       r.throttled.Load(),
		Shed:            r.shed.Load(),
		Sweeps:          r.sweeps.Load(),
		SweepHibernated: r.sweepHibernated.Load(),
		SweepLastMs:     float64(r.sweepNanosLast.Load()) / 1e6,
		SweepTotalMs:    float64(r.sweepNanosTotal.Load()) / 1e6,
	}
}
