package metrics

import (
	"sync/atomic"
	"time"
)

// CheckpointStats tracks snapshot/checkpoint activity for a serving
// process: how many checkpoints were written (by handler or ticker), how
// many failed, and when/how large the last successful one was. All
// methods are safe for concurrent use.
type CheckpointStats struct {
	written   atomic.Int64
	failed    atomic.Int64
	lastUnix  atomic.Int64
	lastBytes atomic.Int64
}

// RecordSuccess accounts one checkpoint written at t with the given size.
func (c *CheckpointStats) RecordSuccess(bytes int64, t time.Time) {
	c.written.Add(1)
	c.lastBytes.Store(bytes)
	c.lastUnix.Store(t.Unix())
}

// RecordFailure accounts one failed checkpoint attempt.
func (c *CheckpointStats) RecordFailure() { c.failed.Add(1) }

// CheckpointSnapshot is a point-in-time copy of checkpoint counters,
// shaped for direct JSON serialization in a stats response. LastUnix and
// LastBytes are zero until the first success.
type CheckpointSnapshot struct {
	Written   int64 `json:"written"`
	Failed    int64 `json:"failed"`
	LastUnix  int64 `json:"last_unix,omitempty"`
	LastBytes int64 `json:"last_bytes,omitempty"`
}

// Snapshot captures the current counter values. As with EndpointStats,
// fields are individually — not jointly — consistent.
func (c *CheckpointStats) Snapshot() CheckpointSnapshot {
	return CheckpointSnapshot{
		Written:   c.written.Load(),
		Failed:    c.failed.Load(),
		LastUnix:  c.lastUnix.Load(),
		LastBytes: c.lastBytes.Load(),
	}
}
