package metrics

import (
	"sync/atomic"
	"time"
)

// EndpointStats accumulates request counters for one server endpoint:
// request and error counts, items processed (e.g. points ingested), and
// total/maximum latency. All methods are safe for concurrent use; Record
// is a handful of atomic adds, cheap enough for every request.
type EndpointStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	items    atomic.Int64
	totalNs  atomic.Int64
	maxNs    atomic.Int64
	latency  Histogram
}

// Record accounts one finished request: its latency, the number of items
// it processed (0 where not meaningful), and whether it failed.
func (e *EndpointStats) Record(d time.Duration, items int64, failed bool) {
	e.requests.Add(1)
	if failed {
		e.errors.Add(1)
	}
	if items > 0 {
		e.items.Add(items)
	}
	e.latency.Observe(d)
	ns := d.Nanoseconds()
	e.totalNs.Add(ns)
	for {
		cur := e.maxNs.Load()
		if ns <= cur || e.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointSnapshot is a point-in-time copy of an endpoint's counters,
// shaped for direct JSON serialization in a stats response.
type EndpointSnapshot struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	Items        int64   `json:"items,omitempty"`
	AvgLatencyMs float64 `json:"avg_latency_ms"`
	P50LatencyMs float64 `json:"p50_latency_ms,omitempty"`
	P95LatencyMs float64 `json:"p95_latency_ms,omitempty"`
	MaxLatencyMs float64 `json:"max_latency_ms"`

	// Latency is the full bucket distribution, for the Prometheus
	// exposition; the JSON stats surface serves the percentile summary
	// above instead.
	Latency HistogramSnapshot `json:"-"`
}

// Snapshot captures the current counter values. Counters advance
// concurrently, so the fields are individually — not jointly — consistent,
// which is fine for monitoring.
func (e *EndpointStats) Snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests:     e.requests.Load(),
		Errors:       e.errors.Load(),
		Items:        e.items.Load(),
		MaxLatencyMs: float64(e.maxNs.Load()) / 1e6,
		Latency:      e.latency.Snapshot(),
	}
	if s.Requests > 0 {
		s.AvgLatencyMs = float64(e.totalNs.Load()) / float64(s.Requests) / 1e6
		s.P50LatencyMs = s.Latency.Quantile(0.5) * 1e3
		s.P95LatencyMs = s.Latency.Quantile(0.95) * 1e3
	}
	return s
}

// Throughput returns items per second over the window since start —
// the coarse "points/s served" figure for a stats endpoint.
func (e *EndpointStats) Throughput(since time.Time) float64 {
	el := time.Since(since).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(e.items.Load()) / el
}
