package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestEndpointStatsRecordAndSnapshot(t *testing.T) {
	var e EndpointStats
	e.Record(10*time.Millisecond, 100, false)
	e.Record(30*time.Millisecond, 200, true)
	s := e.Snapshot()
	if s.Requests != 2 || s.Errors != 1 || s.Items != 300 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.AvgLatencyMs < 19 || s.AvgLatencyMs > 21 {
		t.Fatalf("avg latency %v, want ~20", s.AvgLatencyMs)
	}
	if s.MaxLatencyMs < 29 || s.MaxLatencyMs > 31 {
		t.Fatalf("max latency %v, want ~30", s.MaxLatencyMs)
	}
}

func TestEndpointStatsZero(t *testing.T) {
	var e EndpointStats
	s := e.Snapshot()
	if s.Requests != 0 || s.AvgLatencyMs != 0 || s.MaxLatencyMs != 0 {
		t.Fatalf("zero snapshot %+v", s)
	}
}

func TestEndpointStatsThroughput(t *testing.T) {
	var e EndpointStats
	start := time.Now().Add(-2 * time.Second)
	e.Record(time.Millisecond, 1000, false)
	tp := e.Throughput(start)
	if tp <= 0 || tp > 1000 {
		t.Fatalf("throughput %v, want in (0, 500]±", tp)
	}
}

// TestEndpointStatsConcurrent exercises the lock-free counters from many
// goroutines; run with -race.
func TestEndpointStatsConcurrent(t *testing.T) {
	var e EndpointStats
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				e.Record(time.Duration(w+1)*time.Microsecond, 2, i%10 == 0)
			}
		}(w)
	}
	wg.Wait()
	s := e.Snapshot()
	if s.Requests != 4000 || s.Items != 8000 || s.Errors != 400 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.MaxLatencyMs != 0.008 {
		t.Fatalf("max %v, want 0.008", s.MaxLatencyMs)
	}
}
