package persist

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/decay"
	"streamkm/internal/kmeans"
	"streamkm/internal/window"
)

// Backend type discriminators inside a BackendSnapshot. They mirror the
// public streamkm.BackendType values; persist keeps its own copies so the
// format is defined entirely in this package.
const (
	BackendConcurrent = "concurrent"
	BackendDecayed    = "decayed"
	BackendWindowed   = "windowed"
)

// BackendSnapshot (format version 3) is a typed serving backend: which
// variant it is, the spec it was opened with, and the variant's payload.
// Exactly one of Sharded/Decayed/Window is set, matching Type. The spec
// metadata is stored denormalized so a Peek never has to descend into
// payloads.
type BackendSnapshot struct {
	// Type discriminates the payload: BackendConcurrent, BackendDecayed
	// or BackendWindowed.
	Type string
	// Algo is the summary structure (CT/CC/RCC) for concurrent and
	// decayed backends; empty for windowed (its histogram is not built on
	// the coreset tree).
	Algo string
	// K is the number of centers answered by queries.
	K int
	// Dim is the point dimension probed from stored points (0 when no
	// point had been ingested yet).
	Dim int
	// Shards is the ingest parallelism. 0 on decayed/windowed snapshots
	// written before format version 4 (which serialized one lock-bound
	// structure); those restore as single-lane backends.
	Shards int
	// HalfLife is the decay half-life in arrival counts (decayed only;
	// mutually exclusive with HalfLifeSeconds).
	HalfLife float64
	// HalfLifeSeconds is the wall-clock decay half-life (decayed only;
	// format version 4).
	HalfLifeSeconds float64
	// WindowN is the sliding-window length in points (windowed only).
	WindowN int64
	// Count is the number of points observed across the stream.
	Count int64

	// Sequencer cursors for lane-sharded decayed/windowed backends
	// (format version 4). Clock is the global arrival-index cursor
	// (>= Count: indices reserved by in-flight batches are issued but not
	// applied); RR is the round-robin lane dispatch cursor.
	Clock int64
	RR    int64
	// ElapsedSeconds is the stream's wall-clock age at snapshot time
	// (wall-clock decayed only), so a restored stream's clock resumes
	// where the snapshot stopped instead of at zero.
	ElapsedSeconds float64

	// Per-tenant quota knobs (0 = unlimited), carried so a hibernated or
	// migrated tenant keeps its limits. Older snapshots decode them as
	// zero — unlimited, the pre-quota behavior.
	PointsPerSec     float64
	BytesPerSec      float64
	MaxResidentBytes int64

	// Sharded is the concurrent payload — the same v2 ShardedSnapshot,
	// wrapped instead of top-level.
	Sharded *ShardedSnapshot
	// Decayed is the legacy (pre-v4) single-lock forward-decay payload.
	// New snapshots write DecayedShards instead; Decayed is read-only
	// back-compat and restores into lane 0 of a single-lane backend.
	Decayed *DecayedSnapshot
	// Window is the legacy (pre-v4) single-lock sliding-window payload;
	// like Decayed, it restores into lane 0.
	Window *window.Snapshot

	// DecayedShards holds one forward-decay lane per ingest shard
	// (format version 4); exactly one of Decayed/DecayedShards is set on
	// a decayed snapshot.
	DecayedShards []DecayedShardSnapshot
	// WindowShards holds one sliding-window histogram per ingest lane
	// (format version 4); exactly one of Window/WindowShards is set on a
	// windowed snapshot.
	WindowShards []window.Snapshot
}

// DecayedSnapshot is the forward-decay wrapper's payload: the decay state
// (rate + logical clock) around a v1 single-clusterer envelope holding
// the wrapped driver.
type DecayedSnapshot struct {
	State decay.State
	Inner Envelope
}

// DecayedShardSnapshot is one lane of a sharded forward-decay backend:
// the lane's reference time (the global arrival time — index or seconds
// — at which its stored-weight scale is 1) around a v1 single-clusterer
// envelope holding the lane's driver.
type DecayedShardSnapshot struct {
	RefT  float64
	Inner Envelope
}

// ValidateBackend rejects backend envelopes whose discriminator, spec and
// payload disagree; snapshots are untrusted disk input. The spec fields
// are cross-checked against the payload, not just bounds-checked: the
// spec is what PUT-vs-restore validation and boot peeks trust, while the
// payload is what the restored backend actually does — letting them
// diverge would restore exactly the silently wrong model the spec guard
// exists to prevent.
func ValidateBackend(bs *BackendSnapshot) error {
	if bs == nil {
		return fmt.Errorf("persist: Backend envelope missing state")
	}
	if bs.K < 1 {
		return fmt.Errorf("persist: invalid k %d in backend snapshot", bs.K)
	}
	if bs.Count < 0 {
		return fmt.Errorf("persist: negative count %d in backend snapshot", bs.Count)
	}
	if bs.Dim < 0 {
		return fmt.Errorf("persist: negative dimension %d in backend snapshot", bs.Dim)
	}
	// Quotas are bounds-checked only: they are operator policy, not
	// payload-derived state, so there is nothing to cross-check against.
	if bs.PointsPerSec < 0 {
		return fmt.Errorf("persist: negative points_per_sec %v in backend snapshot", bs.PointsPerSec)
	}
	if bs.BytesPerSec < 0 {
		return fmt.Errorf("persist: negative bytes_per_sec %v in backend snapshot", bs.BytesPerSec)
	}
	if bs.MaxResidentBytes < 0 {
		return fmt.Errorf("persist: negative max_resident_bytes %d in backend snapshot", bs.MaxResidentBytes)
	}
	switch bs.Type {
	case BackendConcurrent:
		if bs.Sharded == nil {
			return fmt.Errorf("persist: concurrent backend snapshot missing sharded payload")
		}
		if err := validateSharded(bs.Sharded); err != nil {
			return err
		}
		if bs.K != bs.Sharded.K {
			return fmt.Errorf("persist: backend k=%d disagrees with sharded payload k=%d", bs.K, bs.Sharded.K)
		}
		if bs.Count != bs.Sharded.Count {
			return fmt.Errorf("persist: backend count %d disagrees with sharded payload count %d", bs.Count, bs.Sharded.Count)
		}
		if bs.Shards != 0 && bs.Shards != len(bs.Sharded.Shards) {
			return fmt.Errorf("persist: backend shards=%d disagrees with %d payload shards", bs.Shards, len(bs.Sharded.Shards))
		}
		if bs.Algo != "" && bs.Algo != string(bs.Sharded.Shards[0].Kind) {
			return fmt.Errorf("persist: backend algo %s disagrees with payload kind %s", bs.Algo, bs.Sharded.Shards[0].Kind)
		}
		return nil
	case BackendDecayed:
		return validateDecayedBackend(bs)
	case BackendWindowed:
		return validateWindowedBackend(bs)
	}
	return fmt.Errorf("persist: unknown backend type %q in snapshot", bs.Type)
}

// validateCursors checks the v4 sequencer cursors shared by sharded
// decayed and windowed snapshots. A clock behind the count would reissue
// arrival indices already recorded inside the restored lanes — the
// "mismatched arrival cursors" corruption class.
func validateCursors(bs *BackendSnapshot) error {
	if bs.RR < 0 {
		return fmt.Errorf("persist: negative lane cursor %d in backend snapshot", bs.RR)
	}
	if bs.Clock < 0 {
		return fmt.Errorf("persist: negative arrival clock %d in backend snapshot", bs.Clock)
	}
	if bs.Clock != 0 && bs.Clock < bs.Count {
		return fmt.Errorf("persist: arrival clock %d behind count %d in backend snapshot", bs.Clock, bs.Count)
	}
	return nil
}

func validateDecayedBackend(bs *BackendSnapshot) error {
	// Exactly one half-life encoding: arrival-count or wall-clock.
	if bs.HalfLife < 0 || math.IsInf(bs.HalfLife, 0) || math.IsNaN(bs.HalfLife) {
		return fmt.Errorf("persist: invalid half-life %v in decayed backend snapshot", bs.HalfLife)
	}
	if bs.HalfLifeSeconds < 0 || math.IsInf(bs.HalfLifeSeconds, 0) || math.IsNaN(bs.HalfLifeSeconds) {
		return fmt.Errorf("persist: invalid wall-clock half-life %v in decayed backend snapshot", bs.HalfLifeSeconds)
	}
	if (bs.HalfLife > 0) == (bs.HalfLifeSeconds > 0) {
		return fmt.Errorf("persist: decayed backend snapshot needs exactly one of half-life (%v) and wall-clock half-life (%v)",
			bs.HalfLife, bs.HalfLifeSeconds)
	}
	if bs.ElapsedSeconds < 0 || math.IsInf(bs.ElapsedSeconds, 0) || math.IsNaN(bs.ElapsedSeconds) {
		return fmt.Errorf("persist: invalid elapsed seconds %v in decayed backend snapshot", bs.ElapsedSeconds)
	}
	if bs.ElapsedSeconds != 0 && bs.HalfLifeSeconds == 0 {
		return fmt.Errorf("persist: elapsed seconds %v on an arrival-count decayed backend snapshot", bs.ElapsedSeconds)
	}
	if err := validateCursors(bs); err != nil {
		return err
	}
	if (bs.Decayed == nil) == (len(bs.DecayedShards) == 0) {
		return fmt.Errorf("persist: decayed backend snapshot needs exactly one of the legacy and the sharded payload")
	}
	if bs.Decayed != nil {
		// Legacy single-lock payload (pre-v4).
		if bs.HalfLife <= 0 {
			return fmt.Errorf("persist: legacy decayed backend snapshot without arrival-count half-life")
		}
		if err := decay.ValidateState(bs.Decayed.State); err != nil {
			return err
		}
		// half-life and lambda are two encodings of the same rate
		// (lambda = ln2/halfLife); tolerate only float rounding between
		// them.
		if impliedHalfLife := math.Ln2 / bs.Decayed.State.Lambda; relDiff(bs.HalfLife, impliedHalfLife) > 1e-9 {
			return fmt.Errorf("persist: backend half-life %v disagrees with payload rate (implies %v)",
				bs.HalfLife, impliedHalfLife)
		}
		return validateDecayedInner(bs, 0, bs.Decayed.Inner, bs.Count)
	}
	// Sharded payload (v4): per-lane reference times plus inner drivers
	// whose counts must add up to the stream count.
	if bs.Shards != 0 && bs.Shards != len(bs.DecayedShards) {
		return fmt.Errorf("persist: backend shards=%d disagrees with %d decayed lanes", bs.Shards, len(bs.DecayedShards))
	}
	var sum int64
	for i, ss := range bs.DecayedShards {
		if math.IsInf(ss.RefT, 0) || math.IsNaN(ss.RefT) {
			return fmt.Errorf("persist: lane %d reference time %v is not finite in decayed backend snapshot", i, ss.RefT)
		}
		if ss.Inner.Driver == nil {
			return fmt.Errorf("persist: lane %d missing driver state in decayed backend snapshot", i)
		}
		if err := validateDecayedInner(bs, i, ss.Inner, -1); err != nil {
			return err
		}
		if ss.Inner.Kind != bs.DecayedShards[0].Inner.Kind {
			return fmt.Errorf("persist: lane %d kind %q differs from lane 0 kind %q in decayed backend snapshot",
				i, ss.Inner.Kind, bs.DecayedShards[0].Inner.Kind)
		}
		sum += ss.Inner.Driver.Count
	}
	if sum != bs.Count {
		return fmt.Errorf("persist: backend count %d disagrees with %d points across decayed lanes", bs.Count, sum)
	}
	return nil
}

// validateDecayedInner checks one decayed lane's inner envelope against
// the backend metadata. wantCount < 0 skips the per-lane count check
// (sharded lanes are checked in aggregate instead).
func validateDecayedInner(bs *BackendSnapshot, lane int, inner Envelope, wantCount int64) error {
	switch inner.Kind {
	case KindCT, KindCC, KindRCC:
	default:
		return fmt.Errorf("persist: decayed backend lane %d wraps kind %q (want a driver-wrapped CT, CC or RCC)",
			lane, inner.Kind)
	}
	if d := inner.Driver; d != nil {
		if bs.K != d.K {
			return fmt.Errorf("persist: backend k=%d disagrees with decayed lane %d k=%d", bs.K, lane, d.K)
		}
		if wantCount >= 0 && wantCount != d.Count {
			return fmt.Errorf("persist: backend count %d disagrees with decayed payload count %d", wantCount, d.Count)
		}
	}
	if bs.Algo != "" && bs.Algo != string(inner.Kind) {
		return fmt.Errorf("persist: backend algo %s disagrees with payload kind %s", bs.Algo, inner.Kind)
	}
	return nil
}

func validateWindowedBackend(bs *BackendSnapshot) error {
	if bs.WindowN < 1 {
		return fmt.Errorf("persist: invalid window length %d in windowed backend snapshot", bs.WindowN)
	}
	if err := validateCursors(bs); err != nil {
		return err
	}
	if (bs.Window == nil) == (len(bs.WindowShards) == 0) {
		return fmt.Errorf("persist: windowed backend snapshot needs exactly one of the legacy and the sharded payload")
	}
	if bs.Window != nil {
		// Legacy single-lock payload (pre-v4).
		if err := bs.Window.Validate(); err != nil {
			return err
		}
		if bs.K != bs.Window.K {
			return fmt.Errorf("persist: backend k=%d disagrees with window payload k=%d", bs.K, bs.Window.K)
		}
		if bs.WindowN != bs.Window.WindowN {
			return fmt.Errorf("persist: backend window %d disagrees with payload window %d", bs.WindowN, bs.Window.WindowN)
		}
		if bs.Count != bs.Window.Count {
			return fmt.Errorf("persist: backend count %d disagrees with window payload count %d", bs.Count, bs.Window.Count)
		}
		return nil
	}
	// Sharded payload (v4): per-lane histograms tagged with global
	// arrival indices; a lane's newest index can never exceed the
	// sequencer clock.
	if bs.Shards != 0 && bs.Shards != len(bs.WindowShards) {
		return fmt.Errorf("persist: backend shards=%d disagrees with %d window lanes", bs.Shards, len(bs.WindowShards))
	}
	clock := bs.Clock
	if clock == 0 {
		clock = bs.Count
	}
	for i, ws := range bs.WindowShards {
		if err := ws.Validate(); err != nil {
			return fmt.Errorf("persist: window lane %d: %w", i, err)
		}
		if bs.K != ws.K {
			return fmt.Errorf("persist: backend k=%d disagrees with window lane %d k=%d", bs.K, i, ws.K)
		}
		if bs.WindowN != ws.WindowN {
			return fmt.Errorf("persist: backend window %d disagrees with lane %d window %d", bs.WindowN, i, ws.WindowN)
		}
		if ws.M != bs.WindowShards[0].M || ws.R != bs.WindowShards[0].R {
			return fmt.Errorf("persist: window lane %d parameters (m=%d r=%d) differ from lane 0 (m=%d r=%d)",
				i, ws.M, ws.R, bs.WindowShards[0].M, bs.WindowShards[0].R)
		}
		if ws.Count > clock {
			return fmt.Errorf("persist: window lane %d newest arrival %d exceeds sequencer clock %d", i, ws.Count, clock)
		}
	}
	return nil
}

// relDiff returns |a-b| relative to the larger magnitude (0 when both
// are 0).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

// SnapshotDecayed captures a decay.Clusterer into a DecayedSnapshot plus
// the probed point dimension. The caller (the public backend layer) wraps
// it into a BackendSnapshot together with its spec metadata.
func SnapshotDecayed(dc *decay.Clusterer) (*DecayedSnapshot, int, error) {
	inner, err := SnapshotClusterer(dc.Driver())
	if err != nil {
		return nil, 0, err
	}
	return &DecayedSnapshot{State: dc.State(), Inner: inner}, driverDim(dc.Driver()), nil
}

// RestoreDecayed reconstructs a live decay.Clusterer from its payload.
// The caller supplies the non-serialized pieces, as for RestoreClusterer.
func RestoreDecayed(ds *DecayedSnapshot, seed int64, b coreset.Builder, opt kmeans.Options) (*decay.Clusterer, error) {
	if ds == nil {
		return nil, fmt.Errorf("persist: decayed backend snapshot missing payload")
	}
	if err := decay.ValidateState(ds.State); err != nil {
		return nil, err
	}
	inner, err := RestoreClusterer(ds.Inner, seed, b, opt)
	if err != nil {
		return nil, err
	}
	drv, ok := inner.(*core.Driver)
	if !ok {
		return nil, fmt.Errorf("persist: decayed backend wraps %T, want *core.Driver", inner)
	}
	dc := decay.New(drv, ds.State.Lambda)
	dc.RestoreState(ds.State)
	return dc, nil
}

// SnapshotDecayedShards captures the lanes of a sharded forward-decay
// backend (as exposed by decay.Sharded.Quiesce) plus the probed point
// dimension. The caller wraps the result into a BackendSnapshot together
// with the sequencer cursors.
func SnapshotDecayedShards(shards []*decay.Shard) ([]DecayedShardSnapshot, int, error) {
	out := make([]DecayedShardSnapshot, len(shards))
	dim := 0
	for i, sh := range shards {
		inner, err := SnapshotClusterer(sh.Driver())
		if err != nil {
			return nil, 0, fmt.Errorf("persist: decayed lane %d: %w", i, err)
		}
		out[i] = DecayedShardSnapshot{RefT: sh.RefT(), Inner: inner}
		if dim == 0 {
			dim = driverDim(sh.Driver())
		}
	}
	return out, dim, nil
}

// RestoreDecayedShards reconstructs the lanes of a sharded forward-decay
// backend. lambda is the stream's decay rate (derived by the caller from
// whichever half-life encoding the snapshot carries); per-lane seeds
// follow the same seed+lane*7919 convention as fresh construction.
func RestoreDecayedShards(sss []DecayedShardSnapshot, lambda float64, seed int64, b coreset.Builder, opt kmeans.Options) ([]*decay.Shard, error) {
	if len(sss) == 0 {
		return nil, fmt.Errorf("persist: decayed backend snapshot has no lanes")
	}
	out := make([]*decay.Shard, len(sss))
	for i, ss := range sss {
		inner, err := RestoreClusterer(ss.Inner, seed+int64(i)*7919, b, opt)
		if err != nil {
			return nil, fmt.Errorf("persist: decayed lane %d: %w", i, err)
		}
		drv, ok := inner.(*core.Driver)
		if !ok {
			return nil, fmt.Errorf("persist: decayed lane %d wraps %T, want *core.Driver", i, inner)
		}
		sh, err := decay.NewShard(drv, lambda, ss.RefT)
		if err != nil {
			return nil, err
		}
		out[i] = sh
	}
	return out, nil
}

// RestoreWindowShards reconstructs the lanes of a sharded sliding-window
// backend.
func RestoreWindowShards(wss []window.Snapshot, seed int64, b coreset.Builder, opt kmeans.Options) ([]*window.Clusterer, error) {
	if len(wss) == 0 {
		return nil, fmt.Errorf("persist: windowed backend snapshot has no lanes")
	}
	out := make([]*window.Clusterer, len(wss))
	for i, ws := range wss {
		wc, err := RestoreWindowed(&ws, seed+int64(i)*7919, b, opt)
		if err != nil {
			return nil, fmt.Errorf("persist: window lane %d: %w", i, err)
		}
		out[i] = wc
	}
	return out, nil
}

// RestoreWindowed reconstructs a live window.Clusterer from its payload.
func RestoreWindowed(ws *window.Snapshot, seed int64, b coreset.Builder, opt kmeans.Options) (*window.Clusterer, error) {
	if ws == nil {
		return nil, fmt.Errorf("persist: windowed backend snapshot missing payload")
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	wc, err := window.New(ws.K, ws.M, ws.R, ws.WindowN, b, rand.New(rand.NewSource(seed)), opt)
	if err != nil {
		return nil, err
	}
	wc.Restore(*ws)
	return wc, nil
}

// BackendMeta is the cheap-to-read description of any serving-backend
// snapshot — the spec fields plus the stream count — without rebuilding
// clustering structures. It covers both format generations: a bare v2
// sharded envelope reads as a concurrent backend.
type BackendMeta struct {
	Type            string
	Algo            string
	K               int
	Dim             int
	Shards          int
	HalfLife        float64
	HalfLifeSeconds float64
	WindowN         int64
	Count           int64

	// Quota knobs; zero on v2 sharded envelopes, which predate quotas.
	PointsPerSec     float64
	BytesPerSec      float64
	MaxResidentBytes int64
}

// PeekBackend decodes just the metadata of a serving-backend snapshot.
// The stream registry's boot scan uses it to register hibernated tenants
// of every backend variant with accurate metadata while keeping them
// cold.
func PeekBackend(r io.Reader) (BackendMeta, error) {
	env, err := Load(r)
	if err != nil {
		return BackendMeta{}, err
	}
	switch env.Kind {
	case KindSharded:
		// Legacy (v2) concurrent checkpoint: the spec lives in the sharded
		// payload.
		s := env.Sharded
		if err := validateSharded(s); err != nil {
			return BackendMeta{}, err
		}
		return BackendMeta{
			Type:   BackendConcurrent,
			Algo:   string(s.Shards[0].Kind),
			K:      s.K,
			Dim:    s.Dim,
			Shards: len(s.Shards),
			Count:  s.Count,
		}, nil
	case KindBackend:
		bs := env.Backend
		if err := ValidateBackend(bs); err != nil {
			return BackendMeta{}, err
		}
		return BackendMeta{
			Type: bs.Type, Algo: bs.Algo, K: bs.K, Dim: bs.Dim,
			Shards: bs.Shards, HalfLife: bs.HalfLife,
			HalfLifeSeconds: bs.HalfLifeSeconds, WindowN: bs.WindowN,
			Count: bs.Count, PointsPerSec: bs.PointsPerSec,
			BytesPerSec: bs.BytesPerSec, MaxResidentBytes: bs.MaxResidentBytes,
		}, nil
	}
	return BackendMeta{}, fmt.Errorf("persist: expected a serving-backend envelope, got kind %q", env.Kind)
}
