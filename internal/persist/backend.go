package persist

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/decay"
	"streamkm/internal/kmeans"
	"streamkm/internal/window"
)

// Backend type discriminators inside a BackendSnapshot. They mirror the
// public streamkm.BackendType values; persist keeps its own copies so the
// format is defined entirely in this package.
const (
	BackendConcurrent = "concurrent"
	BackendDecayed    = "decayed"
	BackendWindowed   = "windowed"
)

// BackendSnapshot (format version 3) is a typed serving backend: which
// variant it is, the spec it was opened with, and the variant's payload.
// Exactly one of Sharded/Decayed/Window is set, matching Type. The spec
// metadata is stored denormalized so a Peek never has to descend into
// payloads.
type BackendSnapshot struct {
	// Type discriminates the payload: BackendConcurrent, BackendDecayed
	// or BackendWindowed.
	Type string
	// Algo is the summary structure (CT/CC/RCC) for concurrent and
	// decayed backends; empty for windowed (its histogram is not built on
	// the coreset tree).
	Algo string
	// K is the number of centers answered by queries.
	K int
	// Dim is the point dimension probed from stored points (0 when no
	// point had been ingested yet).
	Dim int
	// Shards is the ingest parallelism (concurrent only; 0 otherwise).
	Shards int
	// HalfLife is the decay half-life in points (decayed only).
	HalfLife float64
	// WindowN is the sliding-window length in points (windowed only).
	WindowN int64
	// Count is the number of points observed across the stream.
	Count int64

	// Per-tenant quota knobs (0 = unlimited), carried so a hibernated or
	// migrated tenant keeps its limits. Older snapshots decode them as
	// zero — unlimited, the pre-quota behavior.
	PointsPerSec     float64
	BytesPerSec      float64
	MaxResidentBytes int64

	// Sharded is the concurrent payload — the same v2 ShardedSnapshot,
	// wrapped instead of top-level.
	Sharded *ShardedSnapshot
	// Decayed is the forward-decay payload.
	Decayed *DecayedSnapshot
	// Window is the sliding-window payload.
	Window *window.Snapshot
}

// DecayedSnapshot is the forward-decay wrapper's payload: the decay state
// (rate + logical clock) around a v1 single-clusterer envelope holding
// the wrapped driver.
type DecayedSnapshot struct {
	State decay.State
	Inner Envelope
}

// ValidateBackend rejects backend envelopes whose discriminator, spec and
// payload disagree; snapshots are untrusted disk input. The spec fields
// are cross-checked against the payload, not just bounds-checked: the
// spec is what PUT-vs-restore validation and boot peeks trust, while the
// payload is what the restored backend actually does — letting them
// diverge would restore exactly the silently wrong model the spec guard
// exists to prevent.
func ValidateBackend(bs *BackendSnapshot) error {
	if bs == nil {
		return fmt.Errorf("persist: Backend envelope missing state")
	}
	if bs.K < 1 {
		return fmt.Errorf("persist: invalid k %d in backend snapshot", bs.K)
	}
	if bs.Count < 0 {
		return fmt.Errorf("persist: negative count %d in backend snapshot", bs.Count)
	}
	if bs.Dim < 0 {
		return fmt.Errorf("persist: negative dimension %d in backend snapshot", bs.Dim)
	}
	// Quotas are bounds-checked only: they are operator policy, not
	// payload-derived state, so there is nothing to cross-check against.
	if bs.PointsPerSec < 0 {
		return fmt.Errorf("persist: negative points_per_sec %v in backend snapshot", bs.PointsPerSec)
	}
	if bs.BytesPerSec < 0 {
		return fmt.Errorf("persist: negative bytes_per_sec %v in backend snapshot", bs.BytesPerSec)
	}
	if bs.MaxResidentBytes < 0 {
		return fmt.Errorf("persist: negative max_resident_bytes %d in backend snapshot", bs.MaxResidentBytes)
	}
	switch bs.Type {
	case BackendConcurrent:
		if bs.Sharded == nil {
			return fmt.Errorf("persist: concurrent backend snapshot missing sharded payload")
		}
		if err := validateSharded(bs.Sharded); err != nil {
			return err
		}
		if bs.K != bs.Sharded.K {
			return fmt.Errorf("persist: backend k=%d disagrees with sharded payload k=%d", bs.K, bs.Sharded.K)
		}
		if bs.Count != bs.Sharded.Count {
			return fmt.Errorf("persist: backend count %d disagrees with sharded payload count %d", bs.Count, bs.Sharded.Count)
		}
		if bs.Shards != 0 && bs.Shards != len(bs.Sharded.Shards) {
			return fmt.Errorf("persist: backend shards=%d disagrees with %d payload shards", bs.Shards, len(bs.Sharded.Shards))
		}
		if bs.Algo != "" && bs.Algo != string(bs.Sharded.Shards[0].Kind) {
			return fmt.Errorf("persist: backend algo %s disagrees with payload kind %s", bs.Algo, bs.Sharded.Shards[0].Kind)
		}
		return nil
	case BackendDecayed:
		if bs.Decayed == nil {
			return fmt.Errorf("persist: decayed backend snapshot missing payload")
		}
		if bs.HalfLife <= 0 {
			return fmt.Errorf("persist: invalid half-life %v in decayed backend snapshot", bs.HalfLife)
		}
		if err := decay.ValidateState(bs.Decayed.State); err != nil {
			return err
		}
		// half-life and lambda are two encodings of the same rate
		// (lambda = ln2/halfLife); tolerate only float rounding between
		// them.
		if impliedHalfLife := math.Ln2 / bs.Decayed.State.Lambda; relDiff(bs.HalfLife, impliedHalfLife) > 1e-9 {
			return fmt.Errorf("persist: backend half-life %v disagrees with payload rate (implies %v)",
				bs.HalfLife, impliedHalfLife)
		}
		switch bs.Decayed.Inner.Kind {
		case KindCT, KindCC, KindRCC:
		default:
			return fmt.Errorf("persist: decayed backend wraps kind %q (want a driver-wrapped CT, CC or RCC)",
				bs.Decayed.Inner.Kind)
		}
		if d := bs.Decayed.Inner.Driver; d != nil {
			if bs.K != d.K {
				return fmt.Errorf("persist: backend k=%d disagrees with decayed payload k=%d", bs.K, d.K)
			}
			if bs.Count != d.Count {
				return fmt.Errorf("persist: backend count %d disagrees with decayed payload count %d", bs.Count, d.Count)
			}
		}
		if bs.Algo != "" && bs.Algo != string(bs.Decayed.Inner.Kind) {
			return fmt.Errorf("persist: backend algo %s disagrees with payload kind %s", bs.Algo, bs.Decayed.Inner.Kind)
		}
		return nil
	case BackendWindowed:
		if bs.Window == nil {
			return fmt.Errorf("persist: windowed backend snapshot missing payload")
		}
		if bs.WindowN < 1 {
			return fmt.Errorf("persist: invalid window length %d in windowed backend snapshot", bs.WindowN)
		}
		if err := bs.Window.Validate(); err != nil {
			return err
		}
		if bs.K != bs.Window.K {
			return fmt.Errorf("persist: backend k=%d disagrees with window payload k=%d", bs.K, bs.Window.K)
		}
		if bs.WindowN != bs.Window.WindowN {
			return fmt.Errorf("persist: backend window %d disagrees with payload window %d", bs.WindowN, bs.Window.WindowN)
		}
		if bs.Count != bs.Window.Count {
			return fmt.Errorf("persist: backend count %d disagrees with window payload count %d", bs.Count, bs.Window.Count)
		}
		return nil
	}
	return fmt.Errorf("persist: unknown backend type %q in snapshot", bs.Type)
}

// relDiff returns |a-b| relative to the larger magnitude (0 when both
// are 0).
func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d / m
}

// SnapshotDecayed captures a decay.Clusterer into a DecayedSnapshot plus
// the probed point dimension. The caller (the public backend layer) wraps
// it into a BackendSnapshot together with its spec metadata.
func SnapshotDecayed(dc *decay.Clusterer) (*DecayedSnapshot, int, error) {
	inner, err := SnapshotClusterer(dc.Driver())
	if err != nil {
		return nil, 0, err
	}
	return &DecayedSnapshot{State: dc.State(), Inner: inner}, driverDim(dc.Driver()), nil
}

// RestoreDecayed reconstructs a live decay.Clusterer from its payload.
// The caller supplies the non-serialized pieces, as for RestoreClusterer.
func RestoreDecayed(ds *DecayedSnapshot, seed int64, b coreset.Builder, opt kmeans.Options) (*decay.Clusterer, error) {
	if ds == nil {
		return nil, fmt.Errorf("persist: decayed backend snapshot missing payload")
	}
	if err := decay.ValidateState(ds.State); err != nil {
		return nil, err
	}
	inner, err := RestoreClusterer(ds.Inner, seed, b, opt)
	if err != nil {
		return nil, err
	}
	drv, ok := inner.(*core.Driver)
	if !ok {
		return nil, fmt.Errorf("persist: decayed backend wraps %T, want *core.Driver", inner)
	}
	dc := decay.New(drv, ds.State.Lambda)
	dc.RestoreState(ds.State)
	return dc, nil
}

// RestoreWindowed reconstructs a live window.Clusterer from its payload.
func RestoreWindowed(ws *window.Snapshot, seed int64, b coreset.Builder, opt kmeans.Options) (*window.Clusterer, error) {
	if ws == nil {
		return nil, fmt.Errorf("persist: windowed backend snapshot missing payload")
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	wc, err := window.New(ws.K, ws.M, ws.R, ws.WindowN, b, rand.New(rand.NewSource(seed)), opt)
	if err != nil {
		return nil, err
	}
	wc.Restore(*ws)
	return wc, nil
}

// BackendMeta is the cheap-to-read description of any serving-backend
// snapshot — the spec fields plus the stream count — without rebuilding
// clustering structures. It covers both format generations: a bare v2
// sharded envelope reads as a concurrent backend.
type BackendMeta struct {
	Type     string
	Algo     string
	K        int
	Dim      int
	Shards   int
	HalfLife float64
	WindowN  int64
	Count    int64

	// Quota knobs; zero on v2 sharded envelopes, which predate quotas.
	PointsPerSec     float64
	BytesPerSec      float64
	MaxResidentBytes int64
}

// PeekBackend decodes just the metadata of a serving-backend snapshot.
// The stream registry's boot scan uses it to register hibernated tenants
// of every backend variant with accurate metadata while keeping them
// cold.
func PeekBackend(r io.Reader) (BackendMeta, error) {
	env, err := Load(r)
	if err != nil {
		return BackendMeta{}, err
	}
	switch env.Kind {
	case KindSharded:
		// Legacy (v2) concurrent checkpoint: the spec lives in the sharded
		// payload.
		s := env.Sharded
		if err := validateSharded(s); err != nil {
			return BackendMeta{}, err
		}
		return BackendMeta{
			Type:   BackendConcurrent,
			Algo:   string(s.Shards[0].Kind),
			K:      s.K,
			Dim:    s.Dim,
			Shards: len(s.Shards),
			Count:  s.Count,
		}, nil
	case KindBackend:
		bs := env.Backend
		if err := ValidateBackend(bs); err != nil {
			return BackendMeta{}, err
		}
		return BackendMeta{
			Type: bs.Type, Algo: bs.Algo, K: bs.K, Dim: bs.Dim,
			Shards: bs.Shards, HalfLife: bs.HalfLife, WindowN: bs.WindowN,
			Count: bs.Count, PointsPerSec: bs.PointsPerSec,
			BytesPerSec: bs.BytesPerSec, MaxResidentBytes: bs.MaxResidentBytes,
		}, nil
	}
	return BackendMeta{}, fmt.Errorf("persist: expected a serving-backend envelope, got kind %q", env.Kind)
}
