package persist

import (
	"io"
	"os"
)

// WriteFileAtomic writes whatever fill produces to path with the
// crash-safe discipline every checkpoint in this repo uses: write to a
// temp file in the same directory, fsync, close, then rename over the
// destination. A crash (or a fill/IO error) at any point leaves the
// previous file intact; the temp file is removed on failure. Returns the
// number of bytes written.
//
// Callers that need mutual exclusion between writers to the same path
// must provide their own (concurrent calls would race on the shared temp
// name).
func WriteFileAtomic(path string, fill func(io.Writer) error) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	if err := fill(cw); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return cw.n, nil
}

// SyncDir fsyncs a directory, making previously performed renames inside
// it durable. Callers batching many WriteFileAtomic calls into one
// logical operation (e.g. a TTL sweep hibernating hundreds of streams)
// issue a single SyncDir after the batch instead of paying one directory
// sync per file.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// countingWriter counts bytes passed through to w.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
