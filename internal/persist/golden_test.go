package persist

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/parallel"
	"streamkm/internal/window"
)

// Golden snapshot compatibility: the fixtures under testdata/ are
// byte-for-byte snapshots committed when their format shipped. Load must
// keep restoring them forever — a format bump that orphans old
// checkpoints has to fail here first, loudly, instead of silently losing
// a production daemon's state. Regenerate (only when intentionally
// breaking compatibility, alongside a MinVersion bump) with:
//
//	go test ./internal/persist -run TestGolden -update-golden

var updateGolden = flag.Bool("update-golden", false, "regenerate golden snapshot fixtures")

// goldenStream is the deterministic stream all fixtures are built from.
func goldenStream(n int) []geom.Weighted {
	rng := rand.New(rand.NewSource(424242))
	out := make([]geom.Weighted, n)
	for i := range out {
		out[i] = geom.Weighted{
			P: geom.Point{rng.NormFloat64() * 2, float64(10 * (i % 3))},
			W: 1 + float64(i%4),
		}
	}
	return out
}

func goldenOnlineCC() *core.OnlineCC {
	rng := rand.New(rand.NewSource(7))
	o := core.NewOnlineCC(3, 30, 2, 1.2, 0.1, coreset.KMeansPP{}, rng, kmeans.FastOptions())
	for _, wp := range goldenStream(500) {
		o.AddWeighted(wp)
	}
	return o
}

func goldenSharded(t testing.TB) *parallel.Sharded {
	s, err := parallel.NewSharded(3, 3, 5, kmeans.FastOptions(),
		func(_ int, seed int64) *core.Driver {
			rng := rand.New(rand.NewSource(seed))
			cc := core.NewCC(2, 30, coreset.KMeansPP{}, rng)
			return core.NewDriver(cc, 3, 30, rng, kmeans.FastOptions())
		})
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range goldenStream(600) {
		s.AddWeighted(wp)
	}
	return s
}

func goldenDecayed(t testing.TB) *decay.Clusterer {
	rng := rand.New(rand.NewSource(13))
	cc := core.NewCC(2, 30, coreset.KMeansPP{}, rng)
	drv := core.NewDriver(cc, 3, 30, rng, kmeans.FastOptions())
	dc := decay.New(drv, 0.001)
	for _, wp := range goldenStream(700) {
		dc.AddWeighted(wp)
	}
	return dc
}

// goldenDecayedEnvelope assembles the v3 backend envelope the public
// streamkm decayed backend writes.
func goldenDecayedEnvelope(t testing.TB) Envelope {
	dc := goldenDecayed(t)
	ds, dim, err := SnapshotDecayed(dc)
	if err != nil {
		t.Fatal(err)
	}
	return Envelope{Kind: KindBackend, Backend: &BackendSnapshot{
		Type: BackendDecayed, Algo: "CC", K: 3, Dim: dim,
		HalfLife: 693.1471805599453, // ln2 / 0.001
		Count:    dc.Count(),
		Decayed:  ds,
	}}
}

func goldenWindowed(t testing.TB) *window.Clusterer {
	wc, err := window.New(3, 30, 2, 400, coreset.KMeansPP{}, rand.New(rand.NewSource(17)), kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, wp := range goldenStream(900) {
		wc.AddWeighted(wp)
	}
	return wc
}

func goldenWindowedEnvelope(t testing.TB) Envelope {
	wc := goldenWindowed(t)
	s := wc.Snapshot()
	return Envelope{Kind: KindBackend, Backend: &BackendSnapshot{
		Type: BackendWindowed, K: 3, Dim: wc.Dim(),
		WindowN: 400, Count: wc.Count(), Window: &s,
	}}
}

func writeGolden(t *testing.T, path string, env Envelope, version byte) {
	t.Helper()
	if err := SaveFile(path, env); err != nil {
		t.Fatal(err)
	}
	if version != Version {
		// The checksum covers only the gob body, so rewriting the header's
		// version byte yields a valid snapshot of the older format.
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[7] = version
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveStampsOldestCompatibleVersion: snapshots that use no v2
// features must keep the v1 header, so a rollback to a pre-v2 binary can
// still read checkpoints written by this one.
func TestSaveStampsOldestCompatibleVersion(t *testing.T) {
	env, err := SnapshotClusterer(goldenOnlineCC())
	if err != nil {
		t.Fatal(err)
	}
	var single bytes.Buffer
	if err := Save(&single, env); err != nil {
		t.Fatal(err)
	}
	if v := single.Bytes()[7]; v != 1 {
		t.Errorf("single-clusterer snapshot stamped version %d, want 1", v)
	}
	env, err = SnapshotSharded(goldenSharded(t))
	if err != nil {
		t.Fatal(err)
	}
	var sharded bytes.Buffer
	if err := Save(&sharded, env); err != nil {
		t.Fatal(err)
	}
	if v := sharded.Bytes()[7]; v != 2 {
		t.Errorf("sharded snapshot stamped version %d, want 2", v)
	}
	var backend bytes.Buffer
	if err := Save(&backend, goldenDecayedEnvelope(t)); err != nil {
		t.Fatal(err)
	}
	if v := backend.Bytes()[7]; v != 3 {
		t.Errorf("backend snapshot stamped version %d, want 3", v)
	}
}

func TestGoldenSnapshots(t *testing.T) {
	v1Path := filepath.Join("testdata", "v1-onlinecc.snap")
	v2Path := filepath.Join("testdata", "v2-sharded.snap")
	v3DecayedPath := filepath.Join("testdata", "v3-decayed.snap")
	v3WindowedPath := filepath.Join("testdata", "v3-windowed.snap")

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		env, err := SnapshotClusterer(goldenOnlineCC())
		if err != nil {
			t.Fatal(err)
		}
		// Count postdates format v1. Gob omits zero-valued fields from
		// the encoded value, so zeroing it makes the fixture's *value*
		// stream match what a v1-era encoder wrote (the type descriptor
		// still lists the field — gob tolerates that in both directions).
		// The compat property pinned here is the one that matters: a v1
		// stream carries no Count, and restoring it must yield Count=0.
		env.OnlineCC.Count = 0
		writeGolden(t, v1Path, env, 1)
		env, err = SnapshotSharded(goldenSharded(t))
		if err != nil {
			t.Fatal(err)
		}
		env.Sharded.Alpha = 1.2
		writeGolden(t, v2Path, env, 2)
		writeGolden(t, v3DecayedPath, goldenDecayedEnvelope(t), 3)
		writeGolden(t, v3WindowedPath, goldenWindowedEnvelope(t), 3)
	}

	t.Run("v1-onlinecc", func(t *testing.T) {
		env, err := LoadFile(v1Path)
		if err != nil {
			t.Fatalf("v1 fixture no longer loads: %v", err)
		}
		if env.Kind != KindOnlineCC {
			t.Fatalf("kind %q", env.Kind)
		}
		c, err := RestoreClusterer(env, 1, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v1 fixture no longer restores: %v", err)
		}
		o := c.(*core.OnlineCC)
		// v1 snapshots predate the Count field; it restores as zero.
		if o.Count() != 0 {
			t.Errorf("restored count %d, want 0 (field absent in v1)", o.Count())
		}
		want := goldenOnlineCC()
		if o.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", o.PointsStored(), want.PointsStored())
		}
		if got := len(c.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		// A restored clusterer keeps consuming the stream.
		c.Add(geom.Point{1, 2})
	})

	t.Run("v2-sharded", func(t *testing.T) {
		env, err := LoadFile(v2Path)
		if err != nil {
			t.Fatalf("v2 fixture no longer loads: %v", err)
		}
		if env.Kind != KindSharded {
			t.Fatalf("kind %q", env.Kind)
		}
		s, err := RestoreSharded(env, 1, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v2 fixture no longer restores: %v", err)
		}
		if s.Count() != 600 {
			t.Errorf("restored count %d, want 600", s.Count())
		}
		if s.NumShards() != 3 || s.K() != 3 {
			t.Errorf("restored shards=%d k=%d", s.NumShards(), s.K())
		}
		want := goldenSharded(t)
		if s.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", s.PointsStored(), want.PointsStored())
		}
		if got := len(s.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		s.Add(geom.Point{1, 2})
	})

	t.Run("v3-decayed", func(t *testing.T) {
		env, err := LoadFile(v3DecayedPath)
		if err != nil {
			t.Fatalf("v3 decayed fixture no longer loads: %v", err)
		}
		if env.Kind != KindBackend || env.Backend == nil || env.Backend.Type != BackendDecayed {
			t.Fatalf("kind %q / backend %+v", env.Kind, env.Backend)
		}
		if err := ValidateBackend(env.Backend); err != nil {
			t.Fatalf("v3 decayed fixture no longer validates: %v", err)
		}
		dc, err := RestoreDecayed(env.Backend.Decayed, 1, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v3 decayed fixture no longer restores: %v", err)
		}
		if dc.Count() != 700 || env.Backend.Count != 700 {
			t.Errorf("restored count %d / meta %d, want 700", dc.Count(), env.Backend.Count)
		}
		want := goldenDecayed(t)
		if dc.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", dc.PointsStored(), want.PointsStored())
		}
		if got := len(dc.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		dc.Add(geom.Point{1, 2})
	})

	t.Run("v3-windowed", func(t *testing.T) {
		env, err := LoadFile(v3WindowedPath)
		if err != nil {
			t.Fatalf("v3 windowed fixture no longer loads: %v", err)
		}
		if env.Kind != KindBackend || env.Backend == nil || env.Backend.Type != BackendWindowed {
			t.Fatalf("kind %q / backend %+v", env.Kind, env.Backend)
		}
		if err := ValidateBackend(env.Backend); err != nil {
			t.Fatalf("v3 windowed fixture no longer validates: %v", err)
		}
		wc, err := RestoreWindowed(env.Backend.Window, 1, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v3 windowed fixture no longer restores: %v", err)
		}
		if wc.Count() != 900 || env.Backend.Count != 900 {
			t.Errorf("restored count %d / meta %d, want 900", wc.Count(), env.Backend.Count)
		}
		want := goldenWindowed(t)
		if wc.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", wc.PointsStored(), want.PointsStored())
		}
		if wc.WindowN() != 400 {
			t.Errorf("restored window %d, want 400", wc.WindowN())
		}
		if got := len(wc.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		wc.Add(geom.Point{1, 2})
	})

	// Cross-load: every fixture generation also reads through the
	// metadata peek the registry boot scan uses (v1 single-clusterer
	// snapshots are not serving backends and are rejected).
	t.Run("peek-cross-load", func(t *testing.T) {
		for path, wantType := range map[string]string{
			v2Path:         BackendConcurrent,
			v3DecayedPath:  BackendDecayed,
			v3WindowedPath: BackendWindowed,
		} {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			meta, err := PeekBackend(f)
			f.Close()
			if err != nil {
				t.Errorf("PeekBackend(%s): %v", path, err)
				continue
			}
			if meta.Type != wantType || meta.K != 3 || meta.Count == 0 {
				t.Errorf("PeekBackend(%s) = %+v, want type %s k=3 count>0", path, meta, wantType)
			}
		}
		f, err := os.Open(v1Path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if _, err := PeekBackend(f); err == nil {
			t.Error("PeekBackend accepted a v1 single-clusterer snapshot")
		}
	})
}
