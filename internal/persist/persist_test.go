package persist

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
)

func feed(c core.Clusterer, n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{0, 0}, {30, 30}, {-30, 30}}
	pts := make([]geom.Point, n)
	for i := range pts {
		b := centers[rng.Intn(len(centers))]
		pts[i] = geom.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()}
		c.Add(pts[i])
	}
	return pts
}

func mkAll(t *testing.T) map[Kind]core.Clusterer {
	t.Helper()
	const k, m = 3, 40
	mk := func(s core.Structure) core.Clusterer {
		rng := rand.New(rand.NewSource(1))
		return core.NewDriver(s, k, m, rng, kmeans.FastOptions())
	}
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
	return map[Kind]core.Clusterer{
		KindCT:  mk(core.NewCT(2, m, coreset.KMeansPP{}, rng(2))),
		KindCC:  mk(core.NewCC(2, m, coreset.KMeansPP{}, rng(3))),
		KindRCC: mk(core.NewRCC(2, m, coreset.KMeansPP{}, rng(4))),
		KindOnlineCC: core.NewOnlineCC(k, m, 2, 1.2, 0.1,
			coreset.KMeansPP{}, rng(5), kmeans.FastOptions()),
		KindSequential: seqkm.New(k),
	}
}

// TestRoundTripAllKinds snapshots every clusterer kind mid-stream, restores
// it, and verifies the restored clusterer (a) reports identical memory
// state and (b) keeps working and produces sensible centers.
func TestRoundTripAllKinds(t *testing.T) {
	for kind, c := range mkAll(t) {
		pts := feed(c, 500, 7)

		env, err := SnapshotClusterer(c)
		if err != nil {
			t.Fatalf("%s: snapshot: %v", kind, err)
		}
		if env.Kind != kind {
			t.Fatalf("%s: envelope kind %q", kind, env.Kind)
		}
		var buf bytes.Buffer
		if err := Save(&buf, env); err != nil {
			t.Fatalf("%s: save: %v", kind, err)
		}
		loaded, err := Load(&buf)
		if err != nil {
			t.Fatalf("%s: load: %v", kind, err)
		}
		restored, err := RestoreClusterer(loaded, 99, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("%s: restore: %v", kind, err)
		}
		if restored.Name() != c.Name() {
			t.Fatalf("%s: restored name %q != %q", kind, restored.Name(), c.Name())
		}
		if restored.PointsStored() != c.PointsStored() {
			t.Fatalf("%s: restored PointsStored %d != %d",
				kind, restored.PointsStored(), c.PointsStored())
		}

		// The restored clusterer must keep working: feed more points, query.
		more := feed(restored, 300, 8)
		centers := restored.Centers()
		if len(centers) == 0 {
			t.Fatalf("%s: no centers after restore", kind)
		}
		all := append(append([]geom.Point{}, pts...), more...)
		cost := kmeans.Cost(geom.Wrap(all), centers)
		if math.IsNaN(cost) || math.IsInf(cost, 0) {
			t.Fatalf("%s: invalid cost %v after restore", kind, cost)
		}
	}
}

// TestSnapshotIsDeepCopy: mutating the live clusterer after Snapshot must
// not change the snapshot.
func TestSnapshotIsDeepCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cc := core.NewCC(2, 20, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 2, 20, rng, kmeans.FastOptions())
	feed(d, 100, 2)
	env, err := SnapshotClusterer(d)
	if err != nil {
		t.Fatal(err)
	}
	before := env.CC.Tree.N
	feed(d, 200, 3) // mutate the live structure
	if env.CC.Tree.N != before {
		t.Fatal("snapshot changed when live structure advanced")
	}
}

// TestWeightConservedAcrossRestore: coreset weight equals points observed,
// before and after a round trip.
func TestWeightConservedAcrossRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cc := core.NewCC(2, 25, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 3, 25, rng, kmeans.FastOptions())
	const n = 730
	feed(d, n, 5)
	env, _ := SnapshotClusterer(d)
	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	loaded, _ := Load(&buf)
	restored, err := RestoreClusterer(loaded, 11, coreset.KMeansPP{}, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := geom.TotalWeight(restored.(*core.Driver).CoresetUnion())
	if math.Abs(got-n) > 1e-6*n {
		t.Fatalf("restored coreset weight %v, want %v", got, float64(n))
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	c := seqkm.New(2)
	c.Add(geom.Point{1, 2})
	env, _ := SnapshotClusterer(c)
	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncated.
	if _, err := Load(bytes.NewReader(good[:5])); err == nil {
		t.Fatal("accepted truncated snapshot")
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] = 'X'
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad magic")
	}
	// Bad version.
	bad = append([]byte{}, good...)
	bad[7] = 99
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted bad version")
	}
	// Flipped body byte -> checksum failure.
	bad = append([]byte{}, good...)
	bad[10] ^= 0xFF
	if _, err := Load(bytes.NewReader(bad)); err == nil {
		t.Fatal("accepted corrupted body")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.skm")
	c := seqkm.New(2)
	c.Add(geom.Point{1, 2})
	c.Add(geom.Point{3, 4})
	env, _ := SnapshotClusterer(c)
	if err := SaveFile(path, env); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreClusterer(loaded, 1, coreset.KMeansPP{}, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	if restored.(*seqkm.Sequential).Count() != 2 {
		t.Fatal("restored count wrong")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.skm")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestRestoreRejectsMalformedEnvelopes(t *testing.T) {
	cases := []Envelope{
		{Kind: KindCT},
		{Kind: KindCC},
		{Kind: KindRCC},
		{Kind: KindOnlineCC},
		{Kind: KindSequential},
		{Kind: "Bogus"},
	}
	for _, env := range cases {
		if _, err := RestoreClusterer(env, 1, coreset.KMeansPP{}, kmeans.FastOptions()); err == nil {
			t.Fatalf("accepted malformed envelope %+v", env)
		}
	}
}

// TestCCStatsSurviveRestore: diagnostic counters are part of the state.
func TestCCStatsSurviveRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cc := core.NewCC(2, 20, coreset.KMeansPP{}, rng)
	d := core.NewDriver(cc, 2, 20, rng, kmeans.FastOptions())
	feed(d, 300, 10)
	_ = d.Centers()
	_ = d.Centers()
	want := cc.Stats()
	env, _ := SnapshotClusterer(d)
	restored, err := RestoreClusterer(env, 2, coreset.KMeansPP{}, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := restored.(*core.Driver).Structure().(*core.CC).Stats()
	if got != want {
		t.Fatalf("stats %+v != %+v", got, want)
	}
}
