// Package persist serializes the full logical state of any streaming
// clusterer to a versioned, checksummed binary format, so a long-running
// stream processor can snapshot its clustering state and resume after a
// restart without replaying the stream.
//
// Format: an 8-byte header ("SKMSNAP" + format version), a gob-encoded
// Envelope, and a trailing CRC-32 (IEEE) of the gob bytes. Load verifies
// magic, version and checksum before decoding, so truncated or corrupted
// snapshots fail loudly instead of resurrecting silently-wrong state.
//
// Randomness is not captured: a restored clusterer continues with a fresh
// seed. Results after a restore are therefore statistically equivalent but
// not bit-identical to an uninterrupted run.
package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"os"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/coretree"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
)

// magic identifies snapshot files; version gates format evolution.
var magic = [7]byte{'S', 'K', 'M', 'S', 'N', 'A', 'P'}

// Version is the newest snapshot format version. Version 2 added the
// sharded envelope (KindSharded); version 3 added the typed backend
// envelope (KindBackend) that wraps the decayed and windowed variants
// around the v1/v2 payloads; version 4 added per-lane sub-envelopes for
// sharded decayed/windowed backends (DecayedShards/WindowShards plus the
// sequencer cursors) and the wall-clock half-life. The envelope encoding
// is otherwise unchanged. Load accepts every version back to MinVersion
// so old checkpoints keep restoring, and Save stamps each snapshot with
// the oldest version able to express it (see envelopeVersion), so
// snapshots that don't use newer features stay readable by older
// binaries after a rollback.
const Version byte = 4

// MinVersion is the oldest snapshot format Load still accepts.
const MinVersion byte = 1

// envelopeVersion returns the oldest format version that can express
// env: single-clusterer envelopes are byte-compatible with version 1,
// sharded envelopes need version 2, typed backend envelopes version 3,
// lane-sharded decayed/windowed backend envelopes version 4.
func envelopeVersion(env Envelope) byte {
	if bs := env.Backend; bs != nil &&
		(len(bs.DecayedShards) > 0 || len(bs.WindowShards) > 0 || bs.HalfLifeSeconds != 0) {
		return 4
	}
	if env.Kind == KindBackend || env.Backend != nil {
		return 3
	}
	if env.Kind == KindSharded || env.Sharded != nil {
		return 2
	}
	return 1
}

// Kind discriminates the clusterer type inside an Envelope.
type Kind string

// Supported clusterer kinds.
const (
	KindCT         Kind = "CT"
	KindCC         Kind = "CC"
	KindRCC        Kind = "RCC"
	KindOnlineCC   Kind = "OnlineCC"
	KindSequential Kind = "Sequential"
	// KindSharded (format version 2) is a whole parallel.Sharded: one
	// sub-envelope per shard plus routing and cache metadata. See
	// sharded.go.
	KindSharded Kind = "Sharded"
	// KindBackend (format version 3) is a typed serving backend: a
	// discriminator (concurrent/decayed/windowed) plus spec metadata,
	// wrapping the variant's payload — a sharded envelope, a decay state
	// around a v1 single-clusterer envelope, or a sliding-window
	// histogram. See backend.go.
	KindBackend Kind = "Backend"
)

// Envelope carries exactly one clusterer's state. Driver is set for the
// driver-wrapped kinds (CT, CC, RCC); Sharded nests one envelope per
// shard; Backend wraps any serving-backend variant.
type Envelope struct {
	Kind       Kind
	Driver     *core.DriverSnapshot
	CT         *coretree.TreeSnapshot
	CC         *core.CCSnapshot
	RCC        *core.RCCSnapshot
	OnlineCC   *core.OnlineCCSnapshot
	Sequential *seqkm.Snapshot
	Sharded    *ShardedSnapshot
	Backend    *BackendSnapshot
}

// Save writes the envelope to w in the snapshot format.
func Save(w io.Writer, env Envelope) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(env); err != nil {
		return fmt.Errorf("persist: encode: %w", err)
	}
	header := make([]byte, 8)
	copy(header, magic[:])
	header[7] = envelopeVersion(env)
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("persist: write header: %w", err)
	}
	if _, err := w.Write(body.Bytes()); err != nil {
		return fmt.Errorf("persist: write body: %w", err)
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(body.Bytes()))
	if _, err := w.Write(crc[:]); err != nil {
		return fmt.Errorf("persist: write checksum: %w", err)
	}
	return nil
}

// Load reads an envelope from r, verifying magic, version and checksum.
func Load(r io.Reader) (Envelope, error) {
	var env Envelope
	raw, err := io.ReadAll(r)
	if err != nil {
		return env, fmt.Errorf("persist: read: %w", err)
	}
	if len(raw) < 12 {
		return env, fmt.Errorf("persist: snapshot too short (%d bytes)", len(raw))
	}
	if !bytes.Equal(raw[:7], magic[:]) {
		return env, fmt.Errorf("persist: bad magic %q", raw[:7])
	}
	if raw[7] < MinVersion || raw[7] > Version {
		return env, fmt.Errorf("persist: unsupported format version %d (want %d..%d)",
			raw[7], MinVersion, Version)
	}
	body := raw[8 : len(raw)-4]
	want := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return env, fmt.Errorf("persist: checksum mismatch (got %08x, want %08x)", got, want)
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&env); err != nil {
		return env, fmt.Errorf("persist: decode: %w", err)
	}
	return env, nil
}

// SaveFile writes a snapshot to path atomically (write temp + rename).
func SaveFile(path string, env Envelope) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Save(f, env); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a snapshot from path.
func LoadFile(path string) (Envelope, error) {
	f, err := os.Open(path)
	if err != nil {
		return Envelope{}, err
	}
	defer f.Close()
	return Load(f)
}

// SnapshotClusterer captures any clusterer built by this library into an
// Envelope. It returns an error for unsupported concrete types.
func SnapshotClusterer(c core.Clusterer) (Envelope, error) {
	switch v := c.(type) {
	case *core.Driver:
		drv := v.Snapshot()
		env := Envelope{Driver: &drv}
		switch s := v.Structure().(type) {
		case *core.CT:
			t := s.Tree().Snapshot()
			env.Kind, env.CT = KindCT, &t
		case *core.CC:
			cs := s.Snapshot()
			env.Kind, env.CC = KindCC, &cs
		case *core.RCC:
			rs := s.Snapshot()
			env.Kind, env.RCC = KindRCC, &rs
		default:
			return Envelope{}, fmt.Errorf("persist: unsupported structure %T", s)
		}
		return env, nil
	case *core.OnlineCC:
		s := v.Snapshot()
		return Envelope{Kind: KindOnlineCC, OnlineCC: &s}, nil
	case *seqkm.Sequential:
		s := v.Snapshot()
		return Envelope{Kind: KindSequential, Sequential: &s}, nil
	}
	return Envelope{}, fmt.Errorf("persist: unsupported clusterer %T", c)
}

// Note: sharded clusterers (parallel.Sharded) are captured and restored by
// SnapshotSharded/RestoreSharded in sharded.go, not by the single-clusterer
// functions above: a sharded envelope nests one clusterer envelope per
// shard plus routing/cache metadata.

// validateTree rejects snapshot parameters that would make the
// constructors panic: snapshots arrive from disk and must be treated as
// untrusted input.
func validateTree(r, m int) error {
	if r < 2 {
		return fmt.Errorf("persist: invalid merge degree %d in snapshot", r)
	}
	if m < 1 {
		return fmt.Errorf("persist: invalid coreset size %d in snapshot", m)
	}
	return nil
}

func validateDriver(d *core.DriverSnapshot) error {
	if d.K < 1 {
		return fmt.Errorf("persist: invalid k %d in snapshot", d.K)
	}
	if d.M < 1 {
		return fmt.Errorf("persist: invalid bucket size %d in snapshot", d.M)
	}
	return nil
}

// RestoreClusterer reconstructs a live clusterer from an envelope. The
// caller supplies the non-serializable pieces: a seed for fresh randomness,
// the coreset builder, and the query-time k-means++ options. Envelope
// contents are validated: snapshots are untrusted disk input and malformed
// parameters yield errors, never panics.
func RestoreClusterer(env Envelope, seed int64, b coreset.Builder, opt kmeans.Options) (core.Clusterer, error) {
	if b == nil {
		return nil, fmt.Errorf("persist: nil coreset builder")
	}
	rng := rand.New(rand.NewSource(seed))
	switch env.Kind {
	case KindCT:
		if env.CT == nil || env.Driver == nil {
			return nil, fmt.Errorf("persist: CT envelope missing state")
		}
		if err := validateTree(env.CT.R, env.CT.M); err != nil {
			return nil, err
		}
		if err := validateDriver(env.Driver); err != nil {
			return nil, err
		}
		ct := core.NewCT(env.CT.R, env.CT.M, b, rng)
		ct.Tree().Restore(*env.CT)
		d := core.NewDriver(ct, env.Driver.K, env.Driver.M, rng, opt)
		d.Restore(*env.Driver)
		return d, nil
	case KindCC:
		if env.CC == nil || env.Driver == nil {
			return nil, fmt.Errorf("persist: CC envelope missing state")
		}
		if err := validateTree(env.CC.Tree.R, env.CC.Tree.M); err != nil {
			return nil, err
		}
		if err := validateDriver(env.Driver); err != nil {
			return nil, err
		}
		cc := core.NewCC(env.CC.Tree.R, env.CC.Tree.M, b, rng)
		cc.Restore(*env.CC)
		d := core.NewDriver(cc, env.Driver.K, env.Driver.M, rng, opt)
		d.Restore(*env.Driver)
		return d, nil
	case KindRCC:
		if env.RCC == nil || env.Driver == nil {
			return nil, fmt.Errorf("persist: RCC envelope missing state")
		}
		if len(env.RCC.Degrees) == 0 {
			return nil, fmt.Errorf("persist: RCC snapshot has no merge degrees")
		}
		for _, d := range env.RCC.Degrees {
			if err := validateTree(d, 1); err != nil {
				return nil, err
			}
		}
		if err := validateTree(2, env.RCC.M); err != nil {
			return nil, err
		}
		if err := validateDriver(env.Driver); err != nil {
			return nil, err
		}
		if env.RCC.Root.Order != len(env.RCC.Degrees)-1 {
			return nil, fmt.Errorf("persist: RCC root order %d inconsistent with %d degrees",
				env.RCC.Root.Order, len(env.RCC.Degrees))
		}
		rcc := core.NewRCCWithDegrees(env.RCC.Degrees, env.RCC.M, b, rng)
		rcc.Restore(*env.RCC)
		d := core.NewDriver(rcc, env.Driver.K, env.Driver.M, rng, opt)
		d.Restore(*env.Driver)
		return d, nil
	case KindOnlineCC:
		if env.OnlineCC == nil {
			return nil, fmt.Errorf("persist: OnlineCC envelope missing state")
		}
		s := env.OnlineCC
		if err := validateTree(s.CC.Tree.R, s.CC.Tree.M); err != nil {
			return nil, err
		}
		if s.K < 1 || s.M < 1 {
			return nil, fmt.Errorf("persist: invalid OnlineCC k=%d m=%d in snapshot", s.K, s.M)
		}
		if s.Alpha <= 1 || s.Eps <= 0 || s.Eps >= 1 {
			return nil, fmt.Errorf("persist: invalid OnlineCC alpha=%v eps=%v in snapshot", s.Alpha, s.Eps)
		}
		o := core.NewOnlineCC(s.K, s.M, s.CC.Tree.R, s.Alpha, s.Eps, b, rng, opt)
		o.Restore(*s)
		return o, nil
	case KindSequential:
		if env.Sequential == nil {
			return nil, fmt.Errorf("persist: Sequential envelope missing state")
		}
		if env.Sequential.K < 1 {
			return nil, fmt.Errorf("persist: invalid k %d in Sequential snapshot", env.Sequential.K)
		}
		sq := seqkm.New(env.Sequential.K)
		sq.Restore(*env.Sequential)
		return sq, nil
	case KindSharded:
		return nil, fmt.Errorf("persist: sharded envelopes restore via RestoreSharded, not RestoreClusterer")
	case KindBackend:
		return nil, fmt.Errorf("persist: backend envelopes restore via the streamkm backend factory, not RestoreClusterer")
	}
	return nil, fmt.Errorf("persist: unknown kind %q", env.Kind)
}
