package persist

import (
	"fmt"
	"io"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/kmeans"
	"streamkm/internal/parallel"
)

// ShardedSnapshot (format version 2) is the complete logical state of a
// parallel.Sharded clusterer: one sub-envelope per shard (each a
// driver-wrapped CT, CC or RCC), the round-robin routing cursor, the
// global point count, and — when the snapshot was taken through
// streamkm.Concurrent — the cached-centers fast-path metadata, so a
// restored server answers its first queries from the same cache entry
// instead of paying an immediate recomputation.
type ShardedSnapshot struct {
	// K is the number of centers answered by global queries.
	K int
	// RR is the round-robin shard cursor at snapshot time.
	RR int64
	// Count is the number of points observed across all shards.
	Count int64
	// Dim is the point dimension, probed from the stored coresets
	// (0 when no points had been ingested yet).
	Dim int
	// Shards holds one envelope per shard, in shard order.
	Shards []Envelope

	// Cached-centers metadata (streamkm.Concurrent). HasCache guards the
	// other fields: a snapshot taken before any query carries none.
	Alpha         float64
	HasCache      bool
	CachedCenters [][]float64
	CachedCount   int64
}

// SnapshotSharded captures a parallel.Sharded into a KindSharded envelope.
// The structure is quiesced (every shard lock held) for the duration, so
// the envelope is a consistent cut: Count equals exactly the points inside
// the per-shard states.
func SnapshotSharded(s *parallel.Sharded) (Envelope, error) {
	snap := &ShardedSnapshot{K: s.K()}
	err := s.Quiesce(func(drvs []*core.Driver, rr, count int64) error {
		snap.RR = rr
		snap.Count = count
		snap.Shards = make([]Envelope, len(drvs))
		for i, drv := range drvs {
			se, err := SnapshotClusterer(drv)
			if err != nil {
				return fmt.Errorf("shard %d: %w", i, err)
			}
			snap.Shards[i] = se
			if snap.Dim == 0 {
				snap.Dim = driverDim(drv)
			}
		}
		return nil
	})
	if err != nil {
		return Envelope{}, err
	}
	return Envelope{Kind: KindSharded, Sharded: snap}, nil
}

// driverDim probes the dimension of the points a driver stores (0 when it
// stores none). Called under quiesce; the partial bucket is aliased, not
// copied.
func driverDim(d *core.Driver) int {
	if p := d.Partial(); len(p) > 0 {
		return len(p[0].P)
	}
	if cs := d.Structure().Coreset(); len(cs) > 0 {
		return len(cs[0].P)
	}
	return 0
}

// validateSharded rejects sharded envelopes whose parameters could not
// have been produced by SnapshotSharded; snapshots are untrusted disk
// input.
func validateSharded(s *ShardedSnapshot) error {
	if s == nil {
		return fmt.Errorf("persist: Sharded envelope missing state")
	}
	if s.K < 1 {
		return fmt.Errorf("persist: invalid k %d in sharded snapshot", s.K)
	}
	if len(s.Shards) < 1 {
		return fmt.Errorf("persist: sharded snapshot has no shards")
	}
	if s.Count < 0 {
		return fmt.Errorf("persist: negative count %d in sharded snapshot", s.Count)
	}
	if s.RR < 0 {
		// A negative cursor would make round-robin routing index a negative
		// shard.
		return fmt.Errorf("persist: negative round-robin cursor %d in sharded snapshot", s.RR)
	}
	for i, se := range s.Shards {
		switch se.Kind {
		case KindCT, KindCC, KindRCC:
		default:
			return fmt.Errorf("persist: shard %d has kind %q (want a driver-wrapped CT, CC or RCC)",
				i, se.Kind)
		}
		if se.Kind != s.Shards[0].Kind {
			return fmt.Errorf("persist: shard %d kind %q differs from shard 0 kind %q",
				i, se.Kind, s.Shards[0].Kind)
		}
	}
	if s.HasCache {
		for i, c := range s.CachedCenters {
			if len(c) == 0 {
				return fmt.Errorf("persist: empty cached center %d in sharded snapshot", i)
			}
		}
		if s.CachedCount < 0 {
			return fmt.Errorf("persist: negative cached count %d in sharded snapshot", s.CachedCount)
		}
	}
	return nil
}

// PeekSharded decodes just the metadata of a sharded snapshot — the
// per-shard algorithm, k, point dimension and total count — without
// rebuilding any clustering structure. The stream registry's boot scan
// uses it to register hibernated tenants with accurate metadata while
// keeping them cold.
func PeekSharded(r io.Reader) (algo string, k, dim int, count int64, err error) {
	env, err := Load(r)
	if err != nil {
		return "", 0, 0, 0, err
	}
	if env.Kind != KindSharded {
		return "", 0, 0, 0, fmt.Errorf("persist: expected a Sharded envelope, got kind %q", env.Kind)
	}
	s := env.Sharded
	if err := validateSharded(s); err != nil {
		return "", 0, 0, 0, err
	}
	return string(s.Shards[0].Kind), s.K, s.Dim, s.Count, nil
}

// RestoreSharded reconstructs a live parallel.Sharded from a KindSharded
// envelope. Each shard's driver is restored with a distinct derived seed
// (the same 7919 stride NewSharded uses) so shards never share randomness.
// Cached-centers metadata is not applied here — parallel.Sharded has no
// cache; streamkm.Concurrent reinstalls it from the envelope.
func RestoreSharded(env Envelope, seed int64, b coreset.Builder, opt kmeans.Options) (*parallel.Sharded, error) {
	if env.Kind != KindSharded {
		return nil, fmt.Errorf("persist: expected a Sharded envelope, got kind %q", env.Kind)
	}
	s := env.Sharded
	if err := validateSharded(s); err != nil {
		return nil, err
	}
	drvs := make([]*core.Driver, len(s.Shards))
	for i, se := range s.Shards {
		c, err := RestoreClusterer(se, seed+int64(i)*7919, b, opt)
		if err != nil {
			return nil, fmt.Errorf("persist: shard %d: %w", i, err)
		}
		drv, ok := c.(*core.Driver)
		if !ok {
			return nil, fmt.Errorf("persist: shard %d restored as %T, want *core.Driver", i, c)
		}
		drvs[i] = drv
	}
	sh, err := parallel.NewShardedFromState(s.K, seed, opt, drvs, s.RR, s.Count)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return sh, nil
}
