package persist

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/window"
)

// Golden and corruption coverage for the format-v4 lane-sharded backend
// sub-envelopes (DecayedShards / WindowShards plus the sequencer
// cursors). The fixtures pin the on-disk format the sharded ingest
// pipelines write; the corruption table pins the validator against the
// failure classes a torn or hand-edited snapshot can exhibit.

func ccDriverFactory(k, m int) func(lane int, seed int64) *core.Driver {
	return func(_ int, seed int64) *core.Driver {
		rng := rand.New(rand.NewSource(seed))
		cc := core.NewCC(2, m, coreset.KMeansPP{}, rng)
		return core.NewDriver(cc, k, m, rng, kmeans.FastOptions())
	}
}

// goldenDecayedSharded feeds the golden stream through a 3-lane
// forward-decay pipeline, batched so the round-robin dispatch spreads
// lanes unevenly (the last batch is short).
func goldenDecayedSharded(t testing.TB) *decay.Sharded {
	sh, err := decay.NewSharded(3, 3, 0.001, 21, kmeans.FastOptions(), ccDriverFactory(3, 30))
	if err != nil {
		t.Fatal(err)
	}
	stream := goldenStream(700)
	for off := 0; off < len(stream); off += 64 {
		end := off + 64
		if end > len(stream) {
			end = len(stream)
		}
		sh.AddBatch(stream[off:end])
	}
	return sh
}

func goldenDecayedShardedEnvelope(t testing.TB) Envelope {
	sh := goldenDecayedSharded(t)
	var bs *BackendSnapshot
	err := sh.Quiesce(func(shards []*decay.Shard, clock, rr, count int64) error {
		sss, dim, err := SnapshotDecayedShards(shards)
		if err != nil {
			return err
		}
		bs = &BackendSnapshot{
			Type: BackendDecayed, Algo: "CC", K: 3, Dim: dim,
			Shards: len(shards), HalfLife: math.Ln2 / 0.001,
			Count: count, Clock: clock, RR: rr,
			DecayedShards: sss,
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return Envelope{Kind: KindBackend, Backend: bs}
}

// goldenWindowedSharded feeds the golden stream through a 3-lane
// sliding-window pipeline (window 400, so the histograms have expired
// buckets by the end).
func goldenWindowedSharded(t testing.TB) *window.Sharded {
	sh, err := window.NewSharded(3, 3, 30, 2, 400, coreset.KMeansPP{}, 17, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	stream := goldenStream(900)
	for off := 0; off < len(stream); off += 64 {
		end := off + 64
		if end > len(stream) {
			end = len(stream)
		}
		sh.AddBatch(stream[off:end])
	}
	return sh
}

func goldenWindowedShardedEnvelope(t testing.TB) Envelope {
	sh := goldenWindowedSharded(t)
	var bs *BackendSnapshot
	err := sh.Quiesce(func(subs []*window.Clusterer, clock, rr, count int64) error {
		wss := make([]window.Snapshot, len(subs))
		dim := 0
		for i, wc := range subs {
			wss[i] = wc.Snapshot()
			if dim == 0 {
				dim = wc.Dim()
			}
		}
		bs = &BackendSnapshot{
			Type: BackendWindowed, K: 3, Dim: dim,
			Shards: len(subs), WindowN: 400,
			Count: count, Clock: clock, RR: rr,
			WindowShards: wss,
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return Envelope{Kind: KindBackend, Backend: bs}
}

// TestShardedBackendStampsV4 pins the header version economics: lane
// payloads (and only they, among these) require format v4, so older
// binaries fail loudly on the header instead of mis-decoding lanes.
func TestShardedBackendStampsV4(t *testing.T) {
	for _, tc := range []struct {
		name string
		env  Envelope
	}{
		{"decayed-sharded", goldenDecayedShardedEnvelope(t)},
		{"windowed-sharded", goldenWindowedShardedEnvelope(t)},
	} {
		var buf bytes.Buffer
		if err := Save(&buf, tc.env); err != nil {
			t.Fatal(err)
		}
		if v := buf.Bytes()[7]; v != 4 {
			t.Errorf("%s snapshot stamped version %d, want 4", tc.name, v)
		}
	}
}

func TestGoldenShardedSnapshots(t *testing.T) {
	v4DecayedPath := filepath.Join("testdata", "v4-decayed-sharded.snap")
	v4WindowedPath := filepath.Join("testdata", "v4-windowed-sharded.snap")

	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		writeGolden(t, v4DecayedPath, goldenDecayedShardedEnvelope(t), 4)
		writeGolden(t, v4WindowedPath, goldenWindowedShardedEnvelope(t), 4)
	}

	t.Run("v4-decayed-sharded", func(t *testing.T) {
		env, err := LoadFile(v4DecayedPath)
		if err != nil {
			t.Fatalf("v4 decayed fixture no longer loads: %v", err)
		}
		bs := env.Backend
		if env.Kind != KindBackend || bs == nil || bs.Type != BackendDecayed {
			t.Fatalf("kind %q / backend %+v", env.Kind, bs)
		}
		if err := ValidateBackend(bs); err != nil {
			t.Fatalf("v4 decayed fixture no longer validates: %v", err)
		}
		if bs.Shards != 3 || len(bs.DecayedShards) != 3 || bs.Decayed != nil {
			t.Fatalf("lane layout: shards=%d lanes=%d legacy=%v", bs.Shards, len(bs.DecayedShards), bs.Decayed != nil)
		}
		lambda := math.Ln2 / bs.HalfLife
		lanes, err := RestoreDecayedShards(bs.DecayedShards, lambda, 21, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v4 decayed fixture no longer restores: %v", err)
		}
		sh, err := decay.NewShardedFromShards(bs.K, lanes[0].Lambda(), 21, kmeans.FastOptions(),
			lanes, bs.Clock, bs.RR, bs.Count)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Count() != 700 || bs.Count != 700 {
			t.Errorf("restored count %d / meta %d, want 700", sh.Count(), bs.Count)
		}
		want := goldenDecayedSharded(t)
		if sh.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", sh.PointsStored(), want.PointsStored())
		}
		if got := len(sh.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		// A restored pipeline keeps consuming the stream.
		sh.AddBatch([]geom.Weighted{{P: geom.Point{1, 2}, W: 1}})
	})

	t.Run("v4-windowed-sharded", func(t *testing.T) {
		env, err := LoadFile(v4WindowedPath)
		if err != nil {
			t.Fatalf("v4 windowed fixture no longer loads: %v", err)
		}
		bs := env.Backend
		if env.Kind != KindBackend || bs == nil || bs.Type != BackendWindowed {
			t.Fatalf("kind %q / backend %+v", env.Kind, bs)
		}
		if err := ValidateBackend(bs); err != nil {
			t.Fatalf("v4 windowed fixture no longer validates: %v", err)
		}
		if bs.Shards != 3 || len(bs.WindowShards) != 3 || bs.Window != nil {
			t.Fatalf("lane layout: shards=%d lanes=%d legacy=%v", bs.Shards, len(bs.WindowShards), bs.Window != nil)
		}
		subs, err := RestoreWindowShards(bs.WindowShards, 17, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			t.Fatalf("v4 windowed fixture no longer restores: %v", err)
		}
		sh, err := window.NewShardedFromLanes(bs.K, bs.WindowN, 17, kmeans.FastOptions(),
			subs, bs.Clock, bs.RR, bs.Count)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Count() != 900 || bs.Count != 900 {
			t.Errorf("restored count %d / meta %d, want 900", sh.Count(), bs.Count)
		}
		want := goldenWindowedSharded(t)
		if sh.PointsStored() != want.PointsStored() {
			t.Errorf("restored memory %d, want %d", sh.PointsStored(), want.PointsStored())
		}
		if got := len(sh.Centers()); got != 3 {
			t.Errorf("%d centers, want 3", got)
		}
		sh.AddBatch([]geom.Weighted{{P: geom.Point{1, 2}, W: 1}})
	})

	// Boot-scan metadata peek covers the v4 generation too.
	t.Run("peek", func(t *testing.T) {
		f, err := os.Open(v4DecayedPath)
		if err != nil {
			t.Fatal(err)
		}
		meta, err := PeekBackend(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if meta.Type != BackendDecayed || meta.Shards != 3 || meta.Count != 700 {
			t.Errorf("PeekBackend = %+v, want decayed/3 lanes/700", meta)
		}
		f, err = os.Open(v4WindowedPath)
		if err != nil {
			t.Fatal(err)
		}
		meta, err = PeekBackend(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		if meta.Type != BackendWindowed || meta.Shards != 3 || meta.WindowN != 400 || meta.Count != 900 {
			t.Errorf("PeekBackend = %+v, want windowed/3 lanes/400/900", meta)
		}
	})
}

// TestValidateShardedBackendRejectsCorruption: every corruption class a
// lane-sharded snapshot can exhibit — wrong lane counts, cursor
// mismatches, double payloads, divergent lane parameters — must be
// rejected by ValidateBackend, never restored quietly.
func TestValidateShardedBackendRejectsCorruption(t *testing.T) {
	dec := func() *BackendSnapshot {
		env := goldenDecayedShardedEnvelope(t)
		return env.Backend
	}
	win := func() *BackendSnapshot {
		env := goldenWindowedShardedEnvelope(t)
		return env.Backend
	}
	if err := ValidateBackend(dec()); err != nil {
		t.Fatalf("golden decayed envelope invalid: %v", err)
	}
	if err := ValidateBackend(win()); err != nil {
		t.Fatalf("golden windowed envelope invalid: %v", err)
	}

	cases := []struct {
		name string
		bs   *BackendSnapshot
	}{
		{"decayed shard count disagrees with lanes", func() *BackendSnapshot {
			bs := dec()
			bs.Shards = 5
			return bs
		}()},
		{"decayed lane dropped", func() *BackendSnapshot {
			bs := dec()
			bs.DecayedShards = bs.DecayedShards[:2] // count no longer adds up
			return bs
		}()},
		{"decayed clock behind count", func() *BackendSnapshot {
			bs := dec()
			bs.Clock = bs.Count - 1
			return bs
		}()},
		{"decayed negative lane cursor", func() *BackendSnapshot {
			bs := dec()
			bs.RR = -1
			return bs
		}()},
		{"decayed both payload generations", func() *BackendSnapshot {
			bs := dec()
			bs.Decayed = &DecayedSnapshot{}
			return bs
		}()},
		{"decayed non-finite lane reference time", func() *BackendSnapshot {
			bs := dec()
			bs.DecayedShards[1].RefT = math.Inf(1)
			return bs
		}()},
		{"decayed lane count sum mismatch", func() *BackendSnapshot {
			bs := dec()
			bs.Count += 7
			bs.Clock = bs.Count
			return bs
		}()},
		{"decayed both half-life encodings", func() *BackendSnapshot {
			bs := dec()
			bs.HalfLifeSeconds = 60
			return bs
		}()},
		{"decayed elapsed seconds without wall clock", func() *BackendSnapshot {
			bs := dec()
			bs.ElapsedSeconds = 12.5
			return bs
		}()},
		{"windowed shard count disagrees with lanes", func() *BackendSnapshot {
			bs := win()
			bs.Shards = 2
			return bs
		}()},
		{"windowed clock behind count", func() *BackendSnapshot {
			bs := win()
			bs.Clock = bs.Count - 1
			return bs
		}()},
		{"windowed lane ahead of sequencer clock", func() *BackendSnapshot {
			bs := win()
			bs.WindowShards[0].Count = bs.Clock + 50
			return bs
		}()},
		{"windowed lane window disagrees", func() *BackendSnapshot {
			bs := win()
			bs.WindowShards[2].WindowN = 999
			return bs
		}()},
		{"windowed both payload generations", func() *BackendSnapshot {
			bs := win()
			s := goldenWindowed(t).Snapshot()
			bs.Window = &s
			return bs
		}()},
	}
	for _, tc := range cases {
		if err := ValidateBackend(tc.bs); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestV3LegacyRestoresIntoLaneZero is the upgrade path at the persist
// level: a pre-v4 single-lock decayed payload restores, converts into a
// lane (the public layer's lane-0 upgrade), reassembles as a one-lane
// pipeline with the stored count, and the next snapshot writes the
// sharded payload — the v3 file was the last of its generation.
func TestV3LegacyRestoresIntoLaneZero(t *testing.T) {
	env, err := LoadFile(filepath.Join("testdata", "v3-decayed.snap"))
	if err != nil {
		t.Fatal(err)
	}
	bs := env.Backend
	dc, err := RestoreDecayed(bs.Decayed, 1, coreset.KMeansPP{}, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	lane0, err := dc.Shard(float64(bs.Count) + 1)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := decay.NewShardedFromShards(bs.K, lane0.Lambda(), 1, kmeans.FastOptions(),
		[]*decay.Shard{lane0}, bs.Count, 0, bs.Count)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Count() != bs.Count || sh.NumLanes() != 1 {
		t.Fatalf("upgraded pipeline: count %d lanes %d, want %d / 1", sh.Count(), sh.NumLanes(), bs.Count)
	}
	if got := len(sh.Centers()); got != bs.K {
		t.Fatalf("%d centers, want %d", got, bs.K)
	}
	// It keeps ingesting, and its own snapshot is the sharded shape.
	sh.AddBatch([]geom.Weighted{{P: geom.Point{5, 5}, W: 1}})
	err = sh.Quiesce(func(shards []*decay.Shard, clock, rr, count int64) error {
		sss, _, err := SnapshotDecayedShards(shards)
		if err != nil {
			return err
		}
		up := &BackendSnapshot{
			Type: BackendDecayed, Algo: bs.Algo, K: bs.K, Dim: bs.Dim,
			Shards: len(shards), HalfLife: bs.HalfLife,
			Count: count, Clock: clock, RR: rr, DecayedShards: sss,
		}
		if err := ValidateBackend(up); err != nil {
			return err
		}
		var buf bytes.Buffer
		if err := Save(&buf, Envelope{Kind: KindBackend, Backend: up}); err != nil {
			return err
		}
		if v := buf.Bytes()[7]; v != 4 {
			t.Errorf("re-saved upgraded snapshot stamped version %d, want 4", v)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
