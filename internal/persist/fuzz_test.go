package persist

import (
	"bytes"
	"math"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/coretree"
	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
	"streamkm/internal/window"
)

// FuzzLoad feeds arbitrary bytes to the snapshot loader and restorer: they
// must never panic, and anything that is not a well-formed snapshot must be
// rejected with an error. Run as a plain test this exercises the seed
// corpus below; `go test -fuzz=FuzzLoad ./internal/persist` explores
// further.
func FuzzLoad(f *testing.F) {
	// Seed corpus: a valid snapshot plus targeted corruptions.
	c := seqkm.New(2)
	c.Add(geom.Point{1, 2})
	c.Add(geom.Point{3, 4})
	env, err := SnapshotClusterer(c)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, env); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("SKMSNAP\x01garbage-body-without-checksum"))
	f.Add([]byte("SKMSNAP\x07too-new-version"))
	flipped := append([]byte{}, good...)
	flipped[len(flipped)/2] ^= 0x55
	f.Add(flipped)

	// A version-2 sharded envelope, valid and corrupted.
	shEnv, err := SnapshotSharded(goldenSharded(f))
	if err != nil {
		f.Fatal(err)
	}
	var shBuf bytes.Buffer
	if err := Save(&shBuf, shEnv); err != nil {
		f.Fatal(err)
	}
	goodSharded := shBuf.Bytes()
	f.Add(goodSharded)
	f.Add(goodSharded[:len(goodSharded)-len(goodSharded)/4])
	shFlipped := append([]byte{}, goodSharded...)
	shFlipped[len(shFlipped)/3] ^= 0x55
	f.Add(shFlipped)

	// Version-4 lane-sharded backend envelopes, valid and corrupted.
	for _, env := range []Envelope{goldenDecayedShardedEnvelope(f), goldenWindowedShardedEnvelope(f)} {
		var buf bytes.Buffer
		if err := Save(&buf, env); err != nil {
			f.Fatal(err)
		}
		good := buf.Bytes()
		f.Add(good)
		f.Add(good[:len(good)-len(good)/5])
		flipped := append([]byte{}, good...)
		flipped[2*len(flipped)/3] ^= 0x55
		f.Add(flipped)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is the expected outcome for noise
		}
		// Whatever decoded must restore cleanly or error — never panic.
		if env.Kind == KindBackend {
			fuzzRestoreBackend(env.Backend)
			return
		}
		if env.Kind == KindSharded {
			sh, err := RestoreSharded(env, 1, coreset.KMeansPP{}, kmeans.FastOptions())
			if err != nil {
				return
			}
			_ = sh.Name()
			_ = sh.PointsStored()
			sh.Add(geom.Point{1, 2}) // exercises the restored routing cursor
			return
		}
		restored, err := RestoreClusterer(env, 1, coreset.KMeansPP{}, kmeans.FastOptions())
		if err != nil {
			return
		}
		_ = restored.Name()
		_ = restored.PointsStored()
		restored.Add(geom.Point{1, 2})
	})
}

// fuzzRestoreBackend drives a decoded backend envelope through the
// validate-then-restore sequence the registry uses; every outcome but a
// panic is acceptable.
func fuzzRestoreBackend(bs *BackendSnapshot) {
	if err := ValidateBackend(bs); err != nil {
		return
	}
	b, opt := coreset.KMeansPP{}, kmeans.FastOptions()
	switch bs.Type {
	case BackendConcurrent:
		sh, err := RestoreSharded(Envelope{Kind: KindSharded, Sharded: bs.Sharded}, 1, b, opt)
		if err != nil {
			return
		}
		sh.Add(geom.Point{1, 2})
	case BackendDecayed:
		if len(bs.DecayedShards) > 0 {
			lambda := math.Ln2 / bs.HalfLife
			if bs.HalfLifeSeconds > 0 {
				lambda = math.Ln2 / bs.HalfLifeSeconds
			}
			lanes, err := RestoreDecayedShards(bs.DecayedShards, lambda, 1, b, opt)
			if err != nil {
				return
			}
			sh, err := decay.NewShardedFromShards(bs.K, lanes[0].Lambda(), 1, opt,
				lanes, bs.Clock, bs.RR, bs.Count)
			if err != nil {
				return
			}
			sh.AddBatch([]geom.Weighted{{P: geom.Point{1, 2}, W: 1}})
			_ = sh.Centers()
			return
		}
		dc, err := RestoreDecayed(bs.Decayed, 1, b, opt)
		if err != nil {
			return
		}
		dc.Add(geom.Point{1, 2})
	case BackendWindowed:
		if len(bs.WindowShards) > 0 {
			subs, err := RestoreWindowShards(bs.WindowShards, 1, b, opt)
			if err != nil {
				return
			}
			sh, err := window.NewShardedFromLanes(bs.K, bs.WindowN, 1, opt,
				subs, bs.Clock, bs.RR, bs.Count)
			if err != nil {
				return
			}
			sh.AddBatch([]geom.Weighted{{P: geom.Point{1, 2}, W: 1}})
			_ = sh.Centers()
			return
		}
		wc, err := RestoreWindowed(bs.Window, 1, b, opt)
		if err != nil {
			return
		}
		wc.Add(geom.Point{1, 2})
	}
}

// TestRestoreRejectsInvalidParameters covers the untrusted-snapshot
// validation added for fuzz safety: decoded envelopes with nonsensical
// parameters must produce errors, not constructor panics.
func TestRestoreRejectsInvalidParameters(t *testing.T) {
	opt := kmeans.FastOptions()
	b := coreset.KMeansPP{}
	tree := func(r, m int) *coretree.TreeSnapshot { return &coretree.TreeSnapshot{R: r, M: m} }
	drv := func(k, m int) *core.DriverSnapshot { return &core.DriverSnapshot{K: k, M: m} }

	bad := []Envelope{
		{Kind: KindCT, CT: tree(0, 5), Driver: drv(2, 5)}, // merge degree < 2
		{Kind: KindCT, CT: tree(2, 0), Driver: drv(2, 5)}, // coreset size < 1
		{Kind: KindCT, CT: tree(2, 5), Driver: drv(0, 5)}, // k < 1
		{Kind: KindCT, CT: tree(2, 5), Driver: drv(2, 0)}, // bucket size < 1
		{Kind: KindCC, CC: &core.CCSnapshot{Tree: coretree.TreeSnapshot{R: 1, M: 5}}, Driver: drv(2, 5)},
		{Kind: KindRCC, RCC: &core.RCCSnapshot{}, Driver: drv(2, 5)},                           // no degrees
		{Kind: KindRCC, RCC: &core.RCCSnapshot{Degrees: []int{1}, M: 5}, Driver: drv(2, 5)},    // degree < 2
		{Kind: KindRCC, RCC: &core.RCCSnapshot{Degrees: []int{2, 4}, M: 5}, Driver: drv(2, 5)}, // order mismatch
		{Kind: KindOnlineCC, OnlineCC: &core.OnlineCCSnapshot{K: 0, M: 5,
			CC: core.CCSnapshot{Tree: coretree.TreeSnapshot{R: 2, M: 5}}}},
		{Kind: KindOnlineCC, OnlineCC: &core.OnlineCCSnapshot{K: 2, M: 5, Alpha: 0.5, Eps: 0.1,
			CC: core.CCSnapshot{Tree: coretree.TreeSnapshot{R: 2, M: 5}}}},
		{Kind: KindSequential, Sequential: &seqkm.Snapshot{K: 0}},
	}
	for i, env := range bad {
		if _, err := RestoreClusterer(env, 1, b, opt); err == nil {
			t.Errorf("case %d: accepted invalid snapshot", i)
		}
	}
	// Nil builder is rejected up front.
	if _, err := RestoreClusterer(Envelope{Kind: KindSequential}, 1, nil, opt); err == nil {
		t.Error("accepted nil builder")
	}
}
