package parallel

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newCCDriver(k, m int) func(int, int64) *core.Driver {
	return func(_ int, seed int64) *core.Driver {
		rng := rand.New(rand.NewSource(seed))
		return core.NewDriver(core.NewCC(2, m, coreset.KMeansPP{}, rng), k, m, rng, kmeans.FastOptions())
	}
}

func TestValidation(t *testing.T) {
	if _, err := NewSharded(0, 3, 1, kmeans.FastOptions(), newCCDriver(3, 20)); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if _, err := NewSharded(2, 0, 1, kmeans.FastOptions(), newCCDriver(3, 20)); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := NewSharded(2, 3, 1, kmeans.FastOptions(),
		func(int, int64) *core.Driver { return nil }); err == nil {
		t.Fatal("accepted nil driver")
	}
}

func TestRoundRobinCoversShards(t *testing.T) {
	s, err := NewSharded(4, 2, 1, kmeans.FastOptions(), newCCDriver(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		s.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	if s.Count() != 400 {
		t.Fatalf("Count = %d", s.Count())
	}
	// Weight must be conserved across the union.
	got := geom.TotalWeight(s.CoresetUnion())
	if math.Abs(got-400) > 1e-6*400 {
		t.Fatalf("union weight %v, want 400", got)
	}
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
}

// TestConcurrentProducers drives one goroutine per shard plus a concurrent
// querier — the deployment shape the extension targets. Run with -race.
func TestConcurrentProducers(t *testing.T) {
	const (
		shards   = 4
		perShard = 2000
		k        = 3
	)
	s, err := NewSharded(shards, k, 3, kmeans.FastOptions(), newCCDriver(k, 40))
	if err != nil {
		t.Fatal(err)
	}
	blobs := []geom.Point{{0, 0}, {50, 0}, {0, 50}}
	var wg sync.WaitGroup
	for sh := 0; sh < shards; sh++ {
		wg.Add(1)
		go func(sh int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + sh)))
			for i := 0; i < perShard; i++ {
				b := blobs[rng.Intn(len(blobs))]
				s.AddTo(sh, geom.Point{b[0] + rng.NormFloat64(), b[1] + rng.NormFloat64()})
			}
		}(sh)
	}
	// Concurrent queries while producers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			_ = s.Centers()
		}
	}()
	wg.Wait()
	<-done

	if s.Count() != shards*perShard {
		t.Fatalf("Count = %d, want %d", s.Count(), shards*perShard)
	}
	centers := s.Centers()
	if len(centers) != k {
		t.Fatalf("got %d centers", len(centers))
	}
	for _, b := range blobs {
		d, _ := geom.MinSqDist(b, centers)
		if d > 25 {
			t.Fatalf("no center near %v: %v", b, centers)
		}
	}
}

// TestShardedMatchesSingleStreamQuality: splitting a stream across shards
// must not degrade clustering quality materially (Observation 1).
func TestShardedMatchesSingleStreamQuality(t *testing.T) {
	blobs := []geom.Point{{0, 0}, {60, 0}, {0, 60}, {60, 60}}
	gen := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 6000)
	for i := range pts {
		b := blobs[gen.Intn(len(blobs))]
		pts[i] = geom.Point{b[0] + gen.NormFloat64(), b[1] + gen.NormFloat64()}
	}
	all := geom.Wrap(pts)

	single := newCCDriver(4, 50)(0, 11)
	for _, p := range pts {
		single.Add(p)
	}
	singleCost := kmeans.Cost(all, single.Centers())

	s, err := NewSharded(4, 4, 11, kmeans.FastOptions(), newCCDriver(4, 50))
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range pts {
		s.AddTo(i%4, p)
	}
	shardCost := kmeans.Cost(all, s.Centers())

	if shardCost > 3*singleCost {
		t.Fatalf("sharded cost %v much worse than single-stream %v", shardCost, singleCost)
	}
}

func TestMemoryScalesWithShards(t *testing.T) {
	mk := func(p int) int {
		s, err := NewSharded(p, 2, 5, kmeans.FastOptions(), newCCDriver(2, 20))
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(6))
		for i := 0; i < 2000; i++ {
			s.AddTo(i%p, geom.Point{rng.NormFloat64(), rng.NormFloat64()})
		}
		return s.PointsStored()
	}
	one, four := mk(1), mk(4)
	if four <= one {
		t.Fatalf("4 shards stored %d points, 1 shard %d; expected growth", four, one)
	}
}

func TestName(t *testing.T) {
	s, _ := NewSharded(3, 2, 1, kmeans.FastOptions(), newCCDriver(2, 10))
	if s.Name() != "Sharded[3xCC]" {
		t.Fatalf("Name = %q", s.Name())
	}
}

// TestQuiesceConsistentCut: with producers hammering every shard, the
// count Quiesce reports must equal exactly the points inside the drivers
// at that instant (the counter advances inside the shard critical
// sections). Run with -race.
func TestQuiesceConsistentCut(t *testing.T) {
	const producers, perProd = 4, 500
	s, err := NewSharded(producers, 2, 3, kmeans.FastOptions(), newCCDriver(2, 20))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(shard)))
			for i := 0; i < perProd; i++ {
				s.AddTo(shard, geom.Point{rng.NormFloat64(), rng.NormFloat64()})
			}
		}(p)
	}
	for i := 0; i < 10; i++ {
		err := s.Quiesce(func(drvs []*core.Driver, rr, count int64) error {
			var inDrivers int64
			for _, d := range drvs {
				inDrivers += d.Count()
			}
			if inDrivers != count {
				t.Errorf("quiesced count %d but drivers hold %d points", count, inDrivers)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if s.Count() != producers*perProd {
		t.Fatalf("final count %d, want %d", s.Count(), producers*perProd)
	}
}

// TestNewShardedFromState round-trips drivers through the restore
// constructor and rejects invalid skeletons.
func TestNewShardedFromState(t *testing.T) {
	s, err := NewSharded(2, 2, 3, kmeans.FastOptions(), newCCDriver(2, 20))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		s.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	var drvs []*core.Driver
	s.Quiesce(func(d []*core.Driver, rr, count int64) error {
		drvs = append(drvs, d...)
		return nil
	})
	r, err := NewShardedFromState(2, 9, kmeans.FastOptions(), drvs, 300, 300)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 300 || r.NumShards() != 2 || r.K() != 2 {
		t.Fatalf("restored count=%d shards=%d k=%d", r.Count(), r.NumShards(), r.K())
	}
	if r.PointsStored() != s.PointsStored() {
		t.Fatalf("restored memory %d, want %d", r.PointsStored(), s.PointsStored())
	}
	// The restored cursor continues round-robin where the original stopped.
	if got := r.NextShard(); got != 0 {
		t.Fatalf("NextShard after rr=300 over 2 shards = %d, want 0", got)
	}

	opt := kmeans.FastOptions()
	if _, err := NewShardedFromState(0, 1, opt, drvs, 0, 0); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewShardedFromState(2, 1, opt, nil, 0, 0); err == nil {
		t.Error("accepted zero shards")
	}
	if _, err := NewShardedFromState(2, 1, opt, []*core.Driver{nil}, 0, 0); err == nil {
		t.Error("accepted nil driver")
	}
	if _, err := NewShardedFromState(2, 1, opt, drvs, 0, -5); err == nil {
		t.Error("accepted negative count")
	}
}
