package parallel

import (
	"sync"
	"testing"
)

// TestLanesSequencing pins the Reserve contract: 1-based contiguous
// arrival spans and strict round-robin lane dispatch.
func TestLanesSequencing(t *testing.T) {
	l, err := NewLanes([]*[]int64{{}, {}, {}})
	if err != nil {
		t.Fatal(err)
	}
	next := int64(1)
	for i := 0; i < 9; i++ {
		first, lane := l.Reserve(4)
		if first != next {
			t.Fatalf("reserve %d: first %d, want %d", i, first, next)
		}
		if lane != i%3 {
			t.Fatalf("reserve %d: lane %d, want %d", i, lane, i%3)
		}
		next += 4
	}
	if l.Clock() != 36 || l.Count() != 0 || l.RR() != 9 {
		t.Fatalf("cursors clock=%d count=%d rr=%d, want 36/0/9", l.Clock(), l.Count(), l.RR())
	}
}

func TestLanesValidation(t *testing.T) {
	if _, err := NewLanes([]int{}); err == nil {
		t.Fatal("NewLanes accepted zero lanes")
	}
	l, err := NewLanes([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.RestoreCursors(0, -1, 0); err == nil {
		t.Error("RestoreCursors accepted negative lane cursor")
	}
	if err := l.RestoreCursors(0, 0, -1); err == nil {
		t.Error("RestoreCursors accepted negative count")
	}
	// A clock behind the count is clamped up, never preserved: reissued
	// spans must not collide with restored sub-structure contents.
	if err := l.RestoreCursors(5, 2, 10); err != nil {
		t.Fatal(err)
	}
	if l.Clock() != 10 || l.Count() != 10 || l.RR() != 2 {
		t.Fatalf("cursors clock=%d count=%d rr=%d, want 10/10/2", l.Clock(), l.Count(), l.RR())
	}
}

// TestLanesQuiesceAckedEqualsStored is the two-counter contract under
// contention: a quiesce taken while producers are mid-flight must see a
// count that exactly matches the elements stored in the lanes — never
// an index that was issued but not applied. Run with -race.
func TestLanesQuiesceAckedEqualsStored(t *testing.T) {
	subs := make([]*[]int64, 4)
	for i := range subs {
		subs[i] = &[]int64{}
	}
	l, err := NewLanes(subs)
	if err != nil {
		t.Fatal(err)
	}

	const producers = 4
	const batches = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				first, lane := l.Reserve(3)
				l.Apply(lane, 3, func(s *[]int64) {
					*s = append(*s, first, first+1, first+2)
				})
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
	}

	// Quiesce repeatedly while producers run: stored always equals count.
	for i := 0; i < 50; i++ {
		err := l.Quiesce(func(ss []*[]int64, clock, rr, count int64) error {
			stored := 0
			for _, s := range ss {
				stored += len(*s)
			}
			if int64(stored) != count {
				t.Fatalf("quiesce %d: %d stored, count %d", i, stored, count)
			}
			if clock < count {
				t.Fatalf("quiesce %d: clock %d behind count %d", i, clock, count)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	// Drained: every issued index was applied exactly once.
	seen := map[int64]bool{}
	total := 0
	for _, s := range subs {
		for _, v := range *s {
			if seen[v] {
				t.Fatalf("arrival index %d applied twice", v)
			}
			seen[v] = true
		}
		total += len(*s)
	}
	if int64(total) != l.Count() || l.Clock() != l.Count() {
		t.Fatalf("drained: %d stored, count %d, clock %d", total, l.Count(), l.Clock())
	}
}

// TestLanesEachAndView: Each visits lanes in index order under their
// locks; View touches a single lane without moving counters.
func TestLanesEachAndView(t *testing.T) {
	l, err := NewLanes([]*[]int64{{1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	var order []int64
	l.Each(func(lane int, s *[]int64) { order = append(order, (*s)[0]) })
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("Each order %v", order)
	}
	l.View(1, func(s *[]int64) { *s = append(*s, 9) })
	if l.Count() != 0 {
		t.Fatalf("View moved the applied counter to %d", l.Count())
	}
}
