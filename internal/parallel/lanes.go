package parallel

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Lanes generalizes Sharded's ingest skeleton beyond driver-based
// structures: P independently-locked lanes each owning one sub-structure
// of any type S, fed through a tiny lock-free sequencing step (an atomic
// arrival clock plus a round-robin dispatch cursor) so producers contend
// only on atomics, never on a shared mutex.
//
// The discipline mirrors Sharded exactly:
//
//   - Reserve is the sequencing critical section. It assigns the batch a
//     contiguous span of global arrival indices and a dispatch lane with
//     two atomic adds — this is the only globally-ordered step, so the
//     expensive work (coreset insertion, histogram carries) runs under
//     per-lane locks in parallel.
//   - Apply advances the applied counter inside the lane critical
//     section, so a Quiesce holding every lane lock observes a count
//     that exactly matches the arrivals applied to the sub-structures
//     (acked == stored), even while other batches are mid-flight between
//     Reserve and Apply.
//   - Quiesce locks all lanes in index order for a consistent cut — the
//     snapshot, detach and hibernation path.
//
// The decayed and windowed serving backends build on Lanes; the
// concurrent backend keeps the original Sharded (whose lanes are
// driver-typed and whose routing predates this generalization).
type Lanes[S any] struct {
	lanes []*lane[S]

	clock atomic.Int64 // arrival indices issued by Reserve
	n     atomic.Int64 // arrivals applied inside lane critical sections
	rr    atomic.Int64 // round-robin dispatch cursor
}

type lane[S any] struct {
	mu sync.Mutex
	s  S
}

// NewLanes builds a lane set around the given sub-structures (one lane
// per element; the slice is not retained).
func NewLanes[S any](subs []S) (*Lanes[S], error) {
	if len(subs) < 1 {
		return nil, fmt.Errorf("parallel: need at least 1 lane, got %d", len(subs))
	}
	l := &Lanes[S]{lanes: make([]*lane[S], len(subs))}
	for i, s := range subs {
		l.lanes[i] = &lane[S]{s: s}
	}
	return l, nil
}

// NumLanes returns the lane count.
func (l *Lanes[S]) NumLanes() int { return len(l.lanes) }

// Reserve is the sequencing step: it atomically assigns the next n
// global arrival indices (returning the first; indices are 1-based and
// contiguous per batch) and picks the dispatch lane round-robin.
// Lock-free; safe from any number of producers.
func (l *Lanes[S]) Reserve(n int) (first int64, lane int) {
	end := l.clock.Add(int64(n))
	return end - int64(n) + 1, int((l.rr.Add(1) - 1) % int64(len(l.lanes)))
}

// Apply runs f on the given lane's sub-structure under its lock, then
// advances the applied counter by applied. The counter moves inside the
// critical section so Quiesce sees counts and structures agree.
func (l *Lanes[S]) Apply(lane, applied int, f func(s S)) {
	ln := l.lanes[lane]
	ln.mu.Lock()
	f(ln.s)
	l.n.Add(int64(applied))
	ln.mu.Unlock()
}

// View runs f on the given lane's sub-structure under its lock without
// touching the counters — the per-lane query/maintenance path.
func (l *Lanes[S]) View(lane int, f func(s S)) {
	ln := l.lanes[lane]
	ln.mu.Lock()
	f(ln.s)
	ln.mu.Unlock()
}

// Each runs f on every lane in index order, taking each lane's lock only
// while its own f call runs — the query-time gather: lanes not currently
// being read keep ingesting.
func (l *Lanes[S]) Each(f func(lane int, s S)) {
	for i, ln := range l.lanes {
		ln.mu.Lock()
		f(i, ln.s)
		ln.mu.Unlock()
	}
}

// Quiesce locks every lane in index order, then calls f with the
// sub-structures and the sequencer cursors. While f runs no ingest or
// lane-touching query can proceed, so f sees a consistent cut: count is
// exactly the arrivals applied to the sub-structures. clock can exceed
// count if batches are mid-flight between Reserve and Apply; their
// indices are issued but their points are not yet stored (nor acked —
// the producer's call has not returned). The slice is freshly allocated
// but the sub-structures are passed by reference; f must not retain them
// past its return.
func (l *Lanes[S]) Quiesce(f func(subs []S, clock, rr, count int64) error) error {
	for _, ln := range l.lanes {
		ln.mu.Lock()
	}
	defer func() {
		for _, ln := range l.lanes {
			ln.mu.Unlock()
		}
	}()
	subs := make([]S, len(l.lanes))
	for i, ln := range l.lanes {
		subs[i] = ln.s
	}
	return f(subs, l.clock.Load(), l.rr.Load(), l.n.Load())
}

// RestoreCursors resets the sequencer state after a restore. clock is
// clamped up to count so reissued indices can never collide with spans
// already recorded in restored sub-structures.
func (l *Lanes[S]) RestoreCursors(clock, rr, count int64) error {
	if count < 0 {
		return fmt.Errorf("parallel: negative restored count %d", count)
	}
	if rr < 0 {
		return fmt.Errorf("parallel: negative restored lane cursor %d", rr)
	}
	if clock < count {
		clock = count
	}
	l.clock.Store(clock)
	l.rr.Store(rr)
	l.n.Store(count)
	return nil
}

// Clock returns the number of arrival indices issued so far.
func (l *Lanes[S]) Clock() int64 { return l.clock.Load() }

// Count returns the arrivals applied to lanes (one atomic load).
func (l *Lanes[S]) Count() int64 { return l.n.Load() }

// RR returns the round-robin dispatch cursor (persisted so routing
// resumes where the snapshot stopped).
func (l *Lanes[S]) RR() int64 { return l.rr.Load() }
