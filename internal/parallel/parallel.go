// Package parallel clusters distributed and parallel streams, the paper's
// second open question ("clustering on distributed and parallel streams",
// Section 6).
//
// The construction follows directly from Observation 1: if each of P
// parallel substreams maintains a coreset of what it has seen (via any of
// the driver-based structures — CT, CC, RCC), then the union of the shard
// coresets is a coreset of the union of the substreams. A global query
// therefore unions the per-shard summaries and runs k-means++ once.
//
// Shards are independently locked, so P producer goroutines can feed their
// shards concurrently with queries; there is no shared mutable state
// between shards beyond the query-time union.
package parallel

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"streamkm/internal/core"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// Sharded is a streaming k-means clusterer over P parallel substreams.
// Each shard owns one driver-based clusterer guarded by its own mutex;
// queries take every shard lock briefly to union the summaries.
type Sharded struct {
	shards   []*shard
	k        int
	queryOpt kmeans.Options

	n  atomic.Int64 // points observed across all shards
	rr atomic.Int64 // round-robin shard cursor

	qmu sync.Mutex // guards rng at query time
	rng *rand.Rand
}

type shard struct {
	mu  sync.Mutex
	drv *core.Driver
}

// NewSharded builds a P-shard clusterer. newDriver is called once per
// shard with the shard index and a shard-specific seed, and must return a
// fresh driver (shards must not share structures). k is the number of
// centers returned by global queries.
func NewSharded(p, k int, seed int64, queryOpt kmeans.Options,
	newDriver func(shardIdx int, seed int64) *core.Driver) (*Sharded, error) {
	if p < 1 {
		return nil, fmt.Errorf("parallel: need at least 1 shard, got %d", p)
	}
	if k < 1 {
		return nil, fmt.Errorf("parallel: k must be >= 1, got %d", k)
	}
	s := &Sharded{
		shards:   make([]*shard, p),
		k:        k,
		queryOpt: queryOpt,
		rng:      rand.New(rand.NewSource(seed)),
	}
	for i := range s.shards {
		drv := newDriver(i, seed+int64(i)*7919)
		if drv == nil {
			return nil, fmt.Errorf("parallel: newDriver returned nil for shard %d", i)
		}
		s.shards[i] = &shard{drv: drv}
	}
	return s, nil
}

// NewShardedFromState rebuilds a Sharded around already-restored per-shard
// drivers — the persistence layer's entry point (internal/persist
// deserializes the drivers, then reassembles the sharded structure here).
// rr and count restore the round-robin cursor and the global point
// counter, so routing and Count continue exactly where the snapshotted
// instance stopped.
func NewShardedFromState(k int, seed int64, queryOpt kmeans.Options,
	drvs []*core.Driver, rr, count int64) (*Sharded, error) {
	if len(drvs) < 1 {
		return nil, fmt.Errorf("parallel: need at least 1 restored shard, got %d", len(drvs))
	}
	if k < 1 {
		return nil, fmt.Errorf("parallel: k must be >= 1, got %d", k)
	}
	if count < 0 {
		return nil, fmt.Errorf("parallel: negative restored count %d", count)
	}
	if rr < 0 {
		// NextShard would index a negative shard.
		return nil, fmt.Errorf("parallel: negative restored round-robin cursor %d", rr)
	}
	s := &Sharded{
		shards:   make([]*shard, len(drvs)),
		k:        k,
		queryOpt: queryOpt,
		rng:      rand.New(rand.NewSource(seed)),
	}
	for i, drv := range drvs {
		if drv == nil {
			return nil, fmt.Errorf("parallel: nil restored driver for shard %d", i)
		}
		s.shards[i] = &shard{drv: drv}
	}
	s.rr.Store(rr)
	s.n.Store(count)
	return s, nil
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// K returns the number of centers answered by global queries.
func (s *Sharded) K() int { return s.k }

// Quiesce locks every shard in index order, then calls f with the
// per-shard drivers and the current round-robin cursor and global count.
// While f runs no ingest or shard-touching query can proceed, so f sees a
// consistent cut of the entire structure: the count equals exactly the
// points applied to the drivers. The drivers are passed by reference; f
// must not retain them past its return.
func (s *Sharded) Quiesce(f func(drvs []*core.Driver, rr, count int64) error) error {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for _, sh := range s.shards {
			sh.mu.Unlock()
		}
	}()
	drvs := make([]*core.Driver, len(s.shards))
	for i, sh := range s.shards {
		drvs[i] = sh.drv
	}
	return f(drvs, s.rr.Load(), s.n.Load())
}

// AddTo feeds one point to a specific shard. Safe for concurrent use by
// one goroutine per shard (or any routing discipline).
func (s *Sharded) AddTo(shardIdx int, p geom.Point) {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	sh.drv.Add(p)
	s.n.Add(1)
	sh.mu.Unlock()
}

// AddWeightedTo feeds one weighted point to a specific shard.
func (s *Sharded) AddWeightedTo(shardIdx int, wp geom.Weighted) {
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	sh.drv.AddWeighted(wp)
	s.n.Add(1)
	sh.mu.Unlock()
}

// AddBatchTo feeds a whole batch of weighted points to one shard under a
// single lock acquisition — the ingest fast path for high-throughput
// producers, amortizing the per-point lock cost over the batch.
//
// The global counter advances inside the shard critical section (here and
// in the other add paths), so a Quiesce holding every shard lock observes
// a count that exactly matches the points applied to the drivers.
func (s *Sharded) AddBatchTo(shardIdx int, wps []geom.Weighted) {
	if len(wps) == 0 {
		return
	}
	sh := s.shards[shardIdx]
	sh.mu.Lock()
	for _, wp := range wps {
		sh.drv.AddWeighted(wp)
	}
	s.n.Add(int64(len(wps)))
	sh.mu.Unlock()
}

// Add routes a point to a shard by round-robin on a running counter. For
// multi-goroutine producers prefer AddTo with a fixed shard per producer.
func (s *Sharded) Add(p geom.Point) {
	s.AddWeighted(geom.Weighted{P: p, W: 1})
}

// AddWeighted routes a weighted point to a shard by round-robin.
func (s *Sharded) AddWeighted(wp geom.Weighted) {
	s.AddWeightedTo(s.NextShard(), wp)
}

// NextShard advances the round-robin cursor and returns the shard a
// routing-agnostic producer should feed next. Lock-free.
func (s *Sharded) NextShard() int {
	return int((s.rr.Add(1) - 1) % int64(len(s.shards)))
}

// Centers answers a global clustering query: union every shard's coreset
// (including partial buckets) and run k-means++ once. Safe for concurrent
// use with AddTo.
func (s *Sharded) Centers() []geom.Point {
	union := s.CoresetUnion()
	s.qmu.Lock()
	defer s.qmu.Unlock()
	centers, _ := kmeans.Run(s.rng, union, s.k, s.queryOpt)
	return centers
}

// CoresetUnion returns the union of all shard summaries — itself a coreset
// of the full multi-stream (Observation 1). Each shard is locked only
// while its own summary is gathered.
func (s *Sharded) CoresetUnion() []geom.Weighted {
	var union []geom.Weighted
	for _, sh := range s.shards {
		sh.mu.Lock()
		union = append(union, sh.drv.CoresetUnion()...)
		sh.mu.Unlock()
	}
	return union
}

// PointsStored sums shard memory in points.
func (s *Sharded) PointsStored() int {
	var total int
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += sh.drv.PointsStored()
		sh.mu.Unlock()
	}
	return total
}

// Count returns the number of points observed across shards. It reads a
// single atomic counter maintained by the add paths, so it is cheap enough
// to call on every query (the cached-centers fast path does).
func (s *Sharded) Count() int64 { return s.n.Load() }

// Name identifies the algorithm in reports.
func (s *Sharded) Name() string {
	return fmt.Sprintf("Sharded[%dx%s]", len(s.shards), s.shards[0].drv.Name())
}
