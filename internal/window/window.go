// Package window implements sliding-window streaming k-means: queries
// summarize only the most recent W points of the stream, the recency
// semantics of Braverman, Lang, Levin & Monemizadeh, "Clustering Problems
// on Sliding Windows" (see PAPERS.md) — the standard alternative to the
// forward-decay weighting in internal/decay when tenants want a hard
// horizon rather than a smooth fade.
//
// The construction is an exponential histogram of coresets. Arriving
// points fill base buckets of m points; each bucket remembers the span of
// arrival indices it summarizes. A level holds at most r buckets: when it
// overflows, the two oldest are coreset-reduced (merge-and-reduce, the
// same Observation 1/2 machinery the infinite-stream structures use) into
// one bucket a level up, so a level-j bucket summarizes ~2^j base
// buckets. A bucket whose entire span has left the window is dropped —
// expiry is O(1) amortized and frees its memory immediately. The single
// oldest surviving bucket may straddle the window boundary; it is
// included whole, the usual exponential-histogram relaxation: the answer
// covers a window within a factor (1 + 1/r) of the requested length,
// converging on exact as the straddling bucket's span shrinks relative
// to W.
//
// Memory is O(r · m · log(W/m)) points — still polylogarithmic, so
// windowed tenants hibernate and restore exactly like infinite-stream
// ones.
package window

import (
	"fmt"
	"math/rand"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// bucket is one histogram entry: a coreset of the points that arrived in
// the inclusive span [start, end] of 1-based arrival indices.
type bucket struct {
	points     []geom.Weighted
	start, end int64
}

// Clusterer is a sliding-window streaming k-means clusterer. It is not
// safe for concurrent use; the public streamkm windowed backend wraps it
// with a mutex.
type Clusterer struct {
	k       int
	m       int
	r       int
	windowN int64

	builder  coreset.Builder
	rng      *rand.Rand
	queryOpt kmeans.Options

	levels       [][]bucket // levels[j]: buckets in arrival order, oldest first
	partial      []geom.Weighted
	partialStart int64 // arrival index of partial[0]; 0 while partial is empty
	partialEnd   int64 // arrival index of the newest partial point; 0 while empty
	count        int64 // total arrivals observed (shard mode: newest global index seen)
}

// New creates a sliding-window clusterer answering k centers over the
// last windowN arrivals, with per-bucket coreset size m and histogram
// branching r (>= 2; larger r tightens the window boundary at r× the
// memory). windowN must be at least m, so the window always spans at
// least one full bucket.
func New(k, m, r int, windowN int64, b coreset.Builder, rng *rand.Rand, queryOpt kmeans.Options) (*Clusterer, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k must be >= 1, got %d", k)
	}
	if m < 1 {
		return nil, fmt.Errorf("window: bucket size m must be >= 1, got %d", m)
	}
	if r < 2 {
		return nil, fmt.Errorf("window: branching r must be >= 2, got %d", r)
	}
	if windowN < int64(m) {
		return nil, fmt.Errorf("window: window length %d smaller than bucket size %d", windowN, m)
	}
	if b == nil {
		return nil, fmt.Errorf("window: nil coreset builder")
	}
	return &Clusterer{k: k, m: m, r: r, windowN: windowN,
		builder: b, rng: rng, queryOpt: queryOpt}, nil
}

// Add observes one stream point with weight 1.
func (c *Clusterer) Add(p geom.Point) { c.AddWeighted(geom.Weighted{P: p, W: 1}) }

// AddWeighted observes one weighted point (one arrival tick regardless of
// weight, matching the infinite-stream driver's semantics).
func (c *Clusterer) AddWeighted(wp geom.Weighted) {
	c.AddWeightedAt(c.count+1, wp)
	c.ExpireBefore(c.count - c.windowN)
}

// AddWeightedAt observes one weighted point carrying an explicit global
// arrival index (1-based, strictly greater than any index this clusterer
// has seen). It is the shard-mode ingest path: each lane of a sharded
// windowed stream sees a gapped subsequence of the global indices — the
// gaps belong to sibling lanes — and tags its bucket spans with them, so
// merged buckets from different lanes expire against one shared clock.
// Expiry is NOT performed here; shard mode expires explicitly via
// ExpireBefore with a globally-derived cutoff.
func (c *Clusterer) AddWeightedAt(idx int64, wp geom.Weighted) {
	c.count = idx
	if len(c.partial) == 0 {
		c.partialStart = idx
	}
	c.partial = append(c.partial, wp)
	c.partialEnd = idx
	if len(c.partial) == c.m {
		sealed := bucket{points: c.partial, start: c.partialStart, end: idx}
		c.partial = make([]geom.Weighted, 0, c.m)
		c.partialStart = 0
		c.partialEnd = 0
		c.insert(0, sealed)
	}
}

// insert appends b at level j, then carries: a level past r buckets
// merges its two oldest into one bucket one level up, keeping spans
// contiguous and in arrival order.
func (c *Clusterer) insert(j int, b bucket) {
	for {
		for j >= len(c.levels) {
			c.levels = append(c.levels, nil)
		}
		c.levels[j] = append(c.levels[j], b)
		if len(c.levels[j]) <= c.r {
			return
		}
		a, bb := c.levels[j][0], c.levels[j][1]
		c.levels[j] = append(c.levels[j][:0], c.levels[j][2:]...)
		b = bucket{
			points: coreset.MergeBuild(c.builder, c.rng, c.m, a.points, bb.points),
			start:  a.start,
			end:    bb.end,
		}
		j++
	}
}

// ExpireBefore drops every bucket whose span lies entirely at or before
// cutoff (end <= cutoff), plus the partial bucket when even its newest
// point has left the window. The oldest surviving bucket may straddle
// the boundary and is kept whole. Single-stream ingest calls it with
// count-windowN after every arrival; shard mode calls it with a cutoff
// derived from the global arrival clock (on the ingesting lane after
// each batch, and on every lane at query time, so an idle lane cannot
// serve stale points forever).
func (c *Clusterer) ExpireBefore(cutoff int64) {
	if cutoff <= 0 {
		return
	}
	for j := range c.levels {
		lvl := c.levels[j]
		drop := 0
		for drop < len(lvl) && lvl[drop].end <= cutoff {
			drop++
		}
		if drop > 0 {
			c.levels[j] = append(lvl[:0], lvl[drop:]...)
		}
	}
	if len(c.partial) > 0 && c.partialEnd > 0 && c.partialEnd <= cutoff {
		c.partial = c.partial[:0]
		c.partialStart = 0
		c.partialEnd = 0
	}
}

// Coreset returns the union of every live bucket plus the partial bucket
// — a coreset of (a (1+1/r)-approximate cover of) the window. The slice
// is freshly allocated but shares point storage with the structure.
func (c *Clusterer) Coreset() []geom.Weighted {
	var out []geom.Weighted
	for _, lvl := range c.levels {
		for _, b := range lvl {
			out = append(out, b.points...)
		}
	}
	out = append(out, c.partial...)
	return out
}

// Centers returns k cluster centers for the current window.
func (c *Clusterer) Centers() []geom.Point {
	centers, _ := kmeans.Run(c.rng, c.Coreset(), c.k, c.queryOpt)
	return centers
}

// Count returns the total number of points observed so far (the stream
// length, not the window occupancy — restart equivalence is asserted on
// this, like every other backend).
func (c *Clusterer) Count() int64 { return c.count }

// WindowOccupancy returns how many of the last windowN arrivals the
// window currently covers: min(count, windowN).
func (c *Clusterer) WindowOccupancy() int64 {
	if c.count < c.windowN {
		return c.count
	}
	return c.windowN
}

// OldestCovered returns the arrival index of the oldest point still
// contributing to queries — at most windowN+span(oldest bucket) behind
// count (the boundary-straddle relaxation). 0 for an empty structure.
func (c *Clusterer) OldestCovered() int64 {
	oldest := int64(0)
	for _, lvl := range c.levels {
		for _, b := range lvl {
			if oldest == 0 || b.start < oldest {
				oldest = b.start
			}
		}
	}
	if oldest == 0 {
		oldest = c.partialStart
	}
	return oldest
}

// PointsStored reports memory in stored points (Table 4 metric).
func (c *Clusterer) PointsStored() int {
	s := len(c.partial)
	for _, lvl := range c.levels {
		for _, b := range lvl {
			s += len(b.points)
		}
	}
	return s
}

// K returns the configured number of centers.
func (c *Clusterer) K() int { return c.k }

// M returns the per-bucket coreset size.
func (c *Clusterer) M() int { return c.m }

// R returns the histogram branching factor.
func (c *Clusterer) R() int { return c.r }

// WindowN returns the configured window length in points.
func (c *Clusterer) WindowN() int64 { return c.windowN }

// Dim probes the dimension of stored points (0 when empty).
func (c *Clusterer) Dim() int {
	if len(c.partial) > 0 {
		return len(c.partial[0].P)
	}
	for _, lvl := range c.levels {
		for _, b := range lvl {
			if len(b.points) > 0 {
				return len(b.points[0].P)
			}
		}
	}
	return 0
}

// Name identifies the algorithm in reports and stats responses.
func (c *Clusterer) Name() string { return fmt.Sprintf("Window[%d]", c.windowN) }
