package window

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newTest(t *testing.T, k, m, r int, windowN int64) *Clusterer {
	t.Helper()
	c, err := New(k, m, r, windowN, coreset.KMeansPP{}, rand.New(rand.NewSource(1)), kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		k, m, r int
		w       int64
	}{
		{0, 10, 2, 100}, {3, 0, 2, 100}, {3, 10, 1, 100}, {3, 10, 2, 5},
	}
	for _, c := range cases {
		if _, err := New(c.k, c.m, c.r, c.w, coreset.KMeansPP{}, rng, kmeans.FastOptions()); err == nil {
			t.Errorf("New(%d,%d,%d,%d) accepted invalid params", c.k, c.m, c.r, c.w)
		}
	}
	if _, err := New(3, 10, 2, 100, nil, rng, kmeans.FastOptions()); err == nil {
		t.Error("New accepted a nil builder")
	}
}

// TestExpiryForgetsOldCluster is the window's defining behavior: a cluster
// seen only before the window slides past it must vanish from queries.
func TestExpiryForgetsOldCluster(t *testing.T) {
	const windowN = 2000
	c := newTest(t, 2, 50, 2, windowN)
	rng := rand.New(rand.NewSource(7))

	// Phase 1: two clusters around (0,0) and (100,100).
	for i := 0; i < 3000; i++ {
		base := float64(100 * (i % 2))
		c.Add(geom.Point{base + rng.NormFloat64(), base + rng.NormFloat64()})
	}
	// Phase 2: only clusters around (1000,1000) and (2000,2000) — more
	// than a full window, so phase 1 fully expires.
	for i := 0; i < 3*windowN; i++ {
		base := 1000 * float64(1+i%2)
		c.Add(geom.Point{base + rng.NormFloat64(), base + rng.NormFloat64()})
	}

	for _, ctr := range c.Centers() {
		if ctr[0] < 500 {
			t.Fatalf("center %v still reflects an expired cluster", ctr)
		}
	}
	if oc := c.OldestCovered(); oc <= 3000 {
		t.Errorf("oldest covered arrival %d; phase-1 buckets not expired", oc)
	}
	if c.Count() != 3000+3*windowN {
		t.Errorf("count %d, want %d", c.Count(), 3000+3*windowN)
	}
	if occ := c.WindowOccupancy(); occ != windowN {
		t.Errorf("occupancy %d, want %d", occ, windowN)
	}
}

// TestMemoryPolylog: storage stays O(r·m·log(W/m)), far below the window.
func TestMemoryPolylog(t *testing.T) {
	const windowN = 10000
	m, r := 40, 2
	c := newTest(t, 3, m, r, windowN)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5*windowN; i++ {
		c.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	// Levels: ~log2(W/m) ≈ 8, r+1 buckets of ≤m each plus slack.
	bound := (r + 2) * m * (2 + int(math.Log2(float64(windowN)/float64(m))))
	if got := c.PointsStored(); got > bound {
		t.Errorf("stored %d points for a %d window, want <= %d", got, windowN, bound)
	}
}

// TestBoundaryStraddle: the window never over-forgets — everything inside
// the last W arrivals is covered, and the overshoot beyond W is bounded
// by the oldest bucket's span.
func TestBoundaryStraddle(t *testing.T) {
	const windowN = 1000
	c := newTest(t, 2, 20, 2, windowN)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 10*windowN; i++ {
		c.Add(geom.Point{rng.NormFloat64()})
		if c.count <= windowN {
			continue
		}
		oldest := c.OldestCovered()
		if oldest > c.count-windowN+1 {
			t.Fatalf("arrival %d: oldest covered %d; window under-covers (cutoff %d)",
				c.count, oldest, c.count-windowN+1)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	c := newTest(t, 3, 30, 2, 500)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1234; i++ {
		base := float64(50 * (i % 3))
		c.AddWeighted(geom.Weighted{P: geom.Point{base + rng.NormFloat64(), base}, W: 1 + float64(i%2)})
	}
	s := c.Snapshot()
	if err := s.Validate(); err != nil {
		t.Fatalf("live snapshot fails validation: %v", err)
	}

	c2 := newTest(t, 3, 30, 2, 500)
	c2.Restore(s)
	if c2.Count() != c.Count() {
		t.Fatalf("restored count %d, want %d", c2.Count(), c.Count())
	}
	if c2.PointsStored() != c.PointsStored() {
		t.Fatalf("restored memory %d, want %d", c2.PointsStored(), c.PointsStored())
	}
	if c2.Dim() != 2 {
		t.Fatalf("restored dim %d, want 2", c2.Dim())
	}

	// Both continue consuming the stream identically in shape: counts and
	// memory track, and queries answer k centers.
	for i := 0; i < 777; i++ {
		p := geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		c.Add(p)
		c2.Add(p)
	}
	if c2.Count() != c.Count() || c2.PointsStored() != c.PointsStored() {
		t.Fatalf("divergence after restore: count %d/%d stored %d/%d",
			c2.Count(), c.Count(), c2.PointsStored(), c.PointsStored())
	}
	if got := len(c2.Centers()); got != 3 {
		t.Fatalf("%d centers, want 3", got)
	}
}

func TestSnapshotValidateRejects(t *testing.T) {
	good := newTest(t, 2, 10, 2, 100).Snapshot()
	mut := []func(*Snapshot){
		func(s *Snapshot) { s.K = 0 },
		func(s *Snapshot) { s.M = 0 },
		func(s *Snapshot) { s.R = 1 },
		func(s *Snapshot) { s.WindowN = 3 },
		func(s *Snapshot) { s.Count = -1 },
		func(s *Snapshot) { s.Partial = make([]geom.Weighted, 10) },
		func(s *Snapshot) {
			s.Levels = [][]BucketSnapshot{{{Start: 5, End: 2}}}
		},
	}
	for i, f := range mut {
		s := good
		f(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d validated", i)
		}
	}
}
