package window

import (
	"fmt"

	"streamkm/internal/geom"
)

// BucketSnapshot is the exported state of one histogram bucket.
type BucketSnapshot struct {
	Points     []geom.Weighted
	Start, End int64
}

// Snapshot is the complete logical state of a sliding-window clusterer:
// configuration, the exponential histogram of coresets, the partial base
// bucket, and the arrival clock. Randomness is not captured, as
// everywhere in internal/persist.
type Snapshot struct {
	K       int
	M       int
	R       int
	WindowN int64
	Count   int64

	PartialStart int64
	// PartialEnd is the arrival index of the newest partial point. Zero
	// in snapshots written before shard-mode ingest (and while the
	// partial is empty); Restore reconstructs it as
	// PartialStart+len(Partial)-1, exact for single-stream snapshots
	// (their partial spans are contiguous).
	PartialEnd int64
	Partial    []geom.Weighted
	Levels     [][]BucketSnapshot
}

// Snapshot captures the clusterer's complete logical state (deep copies).
func (c *Clusterer) Snapshot() Snapshot {
	s := Snapshot{
		K: c.k, M: c.m, R: c.r, WindowN: c.windowN, Count: c.count,
		PartialStart: c.partialStart,
		PartialEnd:   c.partialEnd,
		Partial:      geom.CloneWeighted(c.partial),
		Levels:       make([][]BucketSnapshot, len(c.levels)),
	}
	for j, lvl := range c.levels {
		s.Levels[j] = make([]BucketSnapshot, len(lvl))
		for i, b := range lvl {
			s.Levels[j][i] = BucketSnapshot{
				Points: geom.CloneWeighted(b.points),
				Start:  b.start, End: b.end,
			}
		}
	}
	return s
}

// Validate rejects snapshot parameters that could not have been produced
// by Snapshot; snapshots arrive from disk and are untrusted input.
func (s Snapshot) Validate() error {
	if s.K < 1 {
		return fmt.Errorf("window: invalid k %d in snapshot", s.K)
	}
	if s.M < 1 {
		return fmt.Errorf("window: invalid bucket size %d in snapshot", s.M)
	}
	if s.R < 2 {
		return fmt.Errorf("window: invalid branching %d in snapshot", s.R)
	}
	if s.WindowN < int64(s.M) {
		return fmt.Errorf("window: window length %d smaller than bucket size %d in snapshot", s.WindowN, s.M)
	}
	if s.Count < 0 {
		return fmt.Errorf("window: negative count %d in snapshot", s.Count)
	}
	if len(s.Partial) >= s.M {
		return fmt.Errorf("window: partial bucket of %d points with bucket size %d in snapshot", len(s.Partial), s.M)
	}
	if s.PartialEnd != 0 && (s.PartialEnd < s.PartialStart || s.PartialEnd > s.Count) {
		return fmt.Errorf("window: partial span [%d,%d] inconsistent with count %d in snapshot",
			s.PartialStart, s.PartialEnd, s.Count)
	}
	for j, lvl := range s.Levels {
		for i, b := range lvl {
			if b.Start < 1 || b.End < b.Start {
				return fmt.Errorf("window: bucket %d/%d has invalid span [%d,%d] in snapshot", j, i, b.Start, b.End)
			}
		}
	}
	return nil
}

// Restore replaces the clusterer's state with the snapshot's. The caller
// is expected to have constructed the clusterer via New with the
// snapshot's parameters (or to accept them being overwritten here).
func (c *Clusterer) Restore(s Snapshot) {
	c.k = s.K
	c.m = s.M
	c.r = s.R
	c.windowN = s.WindowN
	c.count = s.Count
	c.partialStart = s.PartialStart
	c.partialEnd = s.PartialEnd
	if c.partialEnd == 0 && len(s.Partial) > 0 {
		c.partialEnd = s.PartialStart + int64(len(s.Partial)) - 1
	}
	c.partial = append(make([]geom.Weighted, 0, s.M), geom.CloneWeighted(s.Partial)...)
	c.levels = make([][]bucket, len(s.Levels))
	for j, lvl := range s.Levels {
		c.levels[j] = make([]bucket, len(lvl))
		for i, b := range lvl {
			c.levels[j][i] = bucket{
				points: geom.CloneWeighted(b.Points),
				start:  b.Start, end: b.End,
			}
		}
	}
}
