package window

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func newShardedT(t testing.TB, p int, windowN int64) *Sharded {
	t.Helper()
	sh, err := NewSharded(p, 2, 25, 2, windowN, coreset.KMeansPP{}, 1, kmeans.FastOptions())
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func unitBatch(pts []geom.Point) []geom.Weighted {
	out := make([]geom.Weighted, len(pts))
	for i, p := range pts {
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewSharded(0, 2, 25, 2, 100, coreset.KMeansPP{}, 1, kmeans.FastOptions()); err == nil {
		t.Error("accepted zero lanes")
	}
	if _, err := NewSharded(2, 0, 25, 2, 100, coreset.KMeansPP{}, 1, kmeans.FastOptions()); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := NewSharded(2, 2, 25, 2, 0, coreset.KMeansPP{}, 1, kmeans.FastOptions()); err == nil {
		t.Error("accepted window 0")
	}
}

// TestShardedExpiryForgetsOldCluster is the sliding-window semantic
// through the sharded path: arrival indices are global, so a window
// that slid past the old cluster forgets it even though its points sit
// in other lanes than the new ones.
func TestShardedExpiryForgetsOldCluster(t *testing.T) {
	sh := newShardedT(t, 3, 200)
	rng := rand.New(rand.NewSource(2))
	batch := func(cx, cy float64, n int) []geom.Weighted {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{cx + rng.NormFloat64(), cy + rng.NormFloat64()}
		}
		return unitBatch(pts)
	}
	// 900 points at the old location, then 300 (>= windowN) at the new.
	for i := 0; i < 18; i++ {
		sh.AddBatch(batch(0, 0, 50))
	}
	for i := 0; i < 6; i++ {
		sh.AddBatch(batch(200, 200, 50))
	}
	if sh.Count() != 1200 {
		t.Fatalf("count %d, want 1200", sh.Count())
	}
	if occ := sh.WindowOccupancy(); occ != 200 {
		t.Fatalf("occupancy %d, want 200", occ)
	}
	for _, c := range sh.Centers() {
		d, _ := geom.MinSqDist(geom.Point{200, 200}, []geom.Point{c})
		if d > 400 {
			t.Fatalf("center %v survives outside the window", c)
		}
	}
}

// TestShardedGlobalExpiryReachesIdleLanes: Coreset expires every lane
// against the global clock, so mass in a lane that received no recent
// batches still ages out. With windowN smaller than one round of
// batches, only the newest batch can survive a query.
func TestShardedGlobalExpiryReachesIdleLanes(t *testing.T) {
	sh := newShardedT(t, 3, 40)
	rng := rand.New(rand.NewSource(3))
	for b := 0; b < 9; b++ {
		pts := make([]geom.Point, 50)
		for i := range pts {
			pts[i] = geom.Point{float64(100 * b), rng.NormFloat64()}
		}
		sh.AddBatch(unitBatch(pts))
	}
	// All lanes expired at query time: surviving coreset weight covers the
	// last windowN arrivals plus at most one straddling histogram bucket
	// (the documented boundary approximation) — nowhere near the 450
	// points ingested across the idle lanes.
	total := 0.0
	for _, wp := range sh.Coreset() {
		total += wp.W
	}
	if total > 100 {
		t.Fatalf("coreset weight %v: idle lanes kept expired mass (window 40 + straddle)", total)
	}
	if total <= 0 {
		t.Fatal("window went empty")
	}
	// Centers come from the in-window batches (one straddling batch of
	// slack), never the early stream.
	for _, c := range sh.Centers() {
		if c[0] < 600 {
			t.Fatalf("center %v reflects arrivals the window slid past", c)
		}
	}
}

// TestShardedQuiesceRoundTrip: the quiesced lanes reassemble with
// cursors intact, and a lane with the wrong window is refused.
func TestShardedQuiesceRoundTrip(t *testing.T) {
	sh := newShardedT(t, 3, 500)
	rng := rand.New(rand.NewSource(4))
	for b := 0; b < 8; b++ {
		pts := make([]geom.Point, 30)
		for i := range pts {
			pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
		}
		sh.AddBatch(unitBatch(pts))
	}
	var rebuilt *Sharded
	err := sh.Quiesce(func(subs []*Clusterer, clock, rr, count int64) error {
		if count != 240 || clock != 240 {
			t.Fatalf("quiesce cursors clock=%d count=%d, want 240/240", clock, count)
		}
		var err error
		rebuilt, err = NewShardedFromLanes(2, 500, 1, kmeans.FastOptions(), subs, clock, rr, count)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Count() != 240 || rebuilt.NumLanes() != 3 || rebuilt.WindowN() != 500 {
		t.Fatalf("rebuilt count %d lanes %d window %d", rebuilt.Count(), rebuilt.NumLanes(), rebuilt.WindowN())
	}
	if got := len(rebuilt.Centers()); got != 2 {
		t.Fatalf("%d centers, want 2", got)
	}
	err = sh.Quiesce(func(subs []*Clusterer, clock, rr, count int64) error {
		_, err := NewShardedFromLanes(2, 999, 1, kmeans.FastOptions(), subs, clock, rr, count)
		return err
	})
	if err == nil {
		t.Fatal("NewShardedFromLanes accepted a window mismatch")
	}
}

// TestShardedConcurrentProducers hammers sequencing and per-lane expiry
// from several goroutines while querying; run with -race.
func TestShardedConcurrentProducers(t *testing.T) {
	sh := newShardedT(t, 4, 300)
	const producers = 4
	const batches = 25
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(20 + p)))
			for b := 0; b < batches; b++ {
				pts := make([]geom.Point, 20)
				for i := range pts {
					pts[i] = geom.Point{rng.NormFloat64(), rng.NormFloat64()}
				}
				sh.AddBatch(unitBatch(pts))
			}
		}(p)
	}
	for i := 0; i < 10; i++ {
		_ = sh.Centers()
	}
	wg.Wait()
	if want := int64(producers * batches * 20); sh.Count() != want || sh.Clock() != want {
		t.Fatalf("count %d clock %d, want %d", sh.Count(), sh.Clock(), want)
	}
	if occ := sh.WindowOccupancy(); occ != 300 {
		t.Fatalf("occupancy %d, want 300", occ)
	}
}

func TestShardedName(t *testing.T) {
	sh := newShardedT(t, 3, 100)
	if name := sh.Name(); !strings.Contains(name, "3 lanes") {
		t.Fatalf("Name() = %q", name)
	}
}
