package window

import (
	"fmt"
	"math/rand"
	"sync"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/parallel"
)

// Sharded is a sliding-window streaming clusterer over P parallel ingest
// lanes. The sequencing step (parallel.Lanes.Reserve) assigns each batch
// a contiguous span of global arrival indices lock-free; the histogram
// work — base-bucket fills, merge-and-reduce carries — runs under a
// per-lane lock, so P producers proceed in parallel.
//
// Each lane keeps its own exponential histogram whose bucket spans are
// tagged with GLOBAL arrival indices (a lane sees a gapped subsequence;
// the gaps belong to sibling lanes). Expiry is therefore global too: the
// window covers the last windowN issued indices, and any lane bucket
// whose span has left it is dropped — on the ingesting lane after each
// batch, and on every lane at query time, so idle lanes cannot pin stale
// points. A query unions the per-lane coresets: by the coreset union
// property the union summarizes the union of the lane substreams, which
// is exactly the window (up to each lane's boundary-straddling oldest
// bucket — the same (1+1/r) relaxation as the single-stream histogram,
// now per lane). Memory is P times the single-stream bound:
// O(P·r·m·log(W/m)).
type Sharded struct {
	lanes   *parallel.Lanes[*Clusterer]
	k       int
	windowN int64

	qmu      sync.Mutex // guards rng at query time
	rng      *rand.Rand
	queryOpt kmeans.Options
}

// NewSharded builds a P-lane sliding-window clusterer; the parameters
// are as for New, applied to every lane.
func NewSharded(p, k, m, r int, windowN int64, b coreset.Builder, seed int64, queryOpt kmeans.Options) (*Sharded, error) {
	if p < 1 {
		return nil, fmt.Errorf("window: need at least 1 lane, got %d", p)
	}
	subs := make([]*Clusterer, p)
	for i := range subs {
		wc, err := New(k, m, r, windowN, b, rand.New(rand.NewSource(seed+int64(i)*7919)), queryOpt)
		if err != nil {
			return nil, err
		}
		subs[i] = wc
	}
	lanes, err := parallel.NewLanes(subs)
	if err != nil {
		return nil, err
	}
	return &Sharded{lanes: lanes, k: k, windowN: windowN,
		rng: rand.New(rand.NewSource(seed)), queryOpt: queryOpt}, nil
}

// NewShardedFromLanes reassembles a Sharded around already-restored lane
// clusterers — the persistence layer's entry point. clock, rr and count
// restore the sequencer cursors.
func NewShardedFromLanes(k int, windowN int64, seed int64, queryOpt kmeans.Options,
	subs []*Clusterer, clock, rr, count int64) (*Sharded, error) {
	if k < 1 {
		return nil, fmt.Errorf("window: k must be >= 1, got %d", k)
	}
	for i, wc := range subs {
		if wc == nil {
			return nil, fmt.Errorf("window: nil restored clusterer for lane %d", i)
		}
		if wc.WindowN() != windowN {
			return nil, fmt.Errorf("window: lane %d window %d disagrees with stream window %d", i, wc.WindowN(), windowN)
		}
	}
	lanes, err := parallel.NewLanes(subs)
	if err != nil {
		return nil, err
	}
	if err := lanes.RestoreCursors(clock, rr, count); err != nil {
		return nil, err
	}
	return &Sharded{lanes: lanes, k: k, windowN: windowN,
		rng: rand.New(rand.NewSource(seed)), queryOpt: queryOpt}, nil
}

// AddBatch observes a batch: the points take the next len(wps) global
// arrival indices, land in one lane's histogram, and that lane expires
// buckets against the batch's own end index.
func (s *Sharded) AddBatch(wps []geom.Weighted) {
	if len(wps) == 0 {
		return
	}
	first, lane := s.lanes.Reserve(len(wps))
	s.lanes.Apply(lane, len(wps), func(wc *Clusterer) {
		for i, wp := range wps {
			wc.AddWeightedAt(first+int64(i), wp)
		}
		wc.ExpireBefore(first + int64(len(wps)-1) - s.windowN)
	})
}

// Coreset expires every lane against the current global clock, then
// unions the per-lane coresets (copies — the union is detached from the
// live structures before k-means runs on it).
func (s *Sharded) Coreset() []geom.Weighted {
	cutoff := s.lanes.Clock() - s.windowN
	var union []geom.Weighted
	s.lanes.Each(func(_ int, wc *Clusterer) {
		wc.ExpireBefore(cutoff)
		union = append(union, wc.Coreset()...)
	})
	return union
}

// CoresetCenters runs the query-time k-means++ over an already-merged
// coreset (as returned by Coreset) — split out so the serving layer can
// time the merge and the solve as separate trace stages.
func (s *Sharded) CoresetCenters(union []geom.Weighted) []geom.Point {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	centers, _ := kmeans.Run(s.rng, union, s.k, s.queryOpt)
	return centers
}

// Centers answers a global k-means query over the current window.
func (s *Sharded) Centers() []geom.Point {
	return s.CoresetCenters(s.Coreset())
}

// Quiesce locks every lane for a consistent cut; see
// parallel.Lanes.Quiesce.
func (s *Sharded) Quiesce(f func(subs []*Clusterer, clock, rr, count int64) error) error {
	return s.lanes.Quiesce(f)
}

// Count returns total arrivals applied across lanes.
func (s *Sharded) Count() int64 { return s.lanes.Count() }

// Clock returns the arrival indices issued so far.
func (s *Sharded) Clock() int64 { return s.lanes.Clock() }

// NumLanes returns the ingest parallelism.
func (s *Sharded) NumLanes() int { return s.lanes.NumLanes() }

// K returns the number of centers answered by queries.
func (s *Sharded) K() int { return s.k }

// WindowN returns the window length in points.
func (s *Sharded) WindowN() int64 { return s.windowN }

// WindowOccupancy returns how many of the last windowN arrivals the
// window currently covers: min(count, windowN).
func (s *Sharded) WindowOccupancy() int64 {
	if n := s.Count(); n < s.windowN {
		return n
	}
	return s.windowN
}

// PointsStored sums lane memory in points.
func (s *Sharded) PointsStored() int {
	total := 0
	s.lanes.Each(func(_ int, wc *Clusterer) { total += wc.PointsStored() })
	return total
}

// Dim probes the point dimension from stored points (0 when empty).
func (s *Sharded) Dim() int {
	dim := 0
	s.lanes.Each(func(_ int, wc *Clusterer) {
		if dim == 0 {
			dim = wc.Dim()
		}
	})
	return dim
}

// Name identifies the algorithm in reports.
func (s *Sharded) Name() string {
	return fmt.Sprintf("Window[%d/%d lanes]", s.windowN, s.lanes.NumLanes())
}
