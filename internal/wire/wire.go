// Package wire implements the binary columnar ingest format
// (application/x-streamkm-batch): a length-prefixed header followed by a
// flat float32 coordinate block, decoded into one float64 allocation per
// request.
//
// The ndjson ingest path spends its time in the codec — per-point JSON
// tokenization and one []float64 allocation per point — which inverts the
// paper's pitch that ingest should be memory-bandwidth-bound (queries are
// already O(1) via coreset caching). This format removes both costs: the
// whole batch is one contiguous read, the header is validated before a
// single point is applied (so a malformed body can never partially
// ingest), and the decoded coordinates live in one flat block that
// per-point slice headers alias.
//
// # Byte layout (version 1, all integers little-endian)
//
//	offset  size         field
//	0       4            magic "SKMB"
//	4       1            version, must be 1
//	5       1            flags: bit 0 = per-point weights follow the
//	                     coordinate block; bits 1-7 must be 0
//	6       2            reserved, must be 0
//	8       4            dim   (uint32, >= 1)
//	12      4            count (uint32, may be 0)
//	16      count*dim*4  coordinates, float32, point-major
//	        (count*4     weights, float32, iff flags bit 0)
//
// The body must end exactly at the declared payload: truncated and
// oversized bodies are both rejected. Every coordinate must be finite
// (NaN/Inf are rejected — same contract as the registry's dimension
// checks assume) and every weight finite and > 0.
//
// Coordinates travel as float32. Clients that need their float64 values
// preserved exactly should quantize to float32 before comparing results
// across wire formats; the differential equivalence tests do exactly
// that.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ContentType is the media type negotiating the binary batch format on
// POST /ingest and POST /streams/{id}/ingest.
const ContentType = "application/x-streamkm-batch"

// Version is the current format generation, stamped into the header.
const Version = 1

// headerSize is the fixed prefix before the coordinate block.
const headerSize = 16

// magic identifies a streamkm batch; the trailing byte is the version.
var magic = [4]byte{'S', 'K', 'M', 'B'}

// flagWeights marks a batch carrying a per-point float32 weight block
// after the coordinates.
const flagWeights = 0x01

// ErrFormat is wrapped by every malformed-batch decode failure — the
// HTTP layer maps it to 400.
var ErrFormat = errors.New("malformed binary batch")

// ErrTooLarge is wrapped when a structurally valid batch exceeds the
// caller's point limit — the HTTP layer maps it to 413.
var ErrTooLarge = errors.New("binary batch exceeds limits")

// Limits bounds what Decode will accept. Zero values disable the
// corresponding bound.
type Limits struct {
	// MaxPoints caps the declared point count.
	MaxPoints int64
	// MaxDim caps the declared dimension.
	MaxDim int
}

// Batch is one decoded ingest batch. Points are slice headers into a
// single flat coordinate block, so decoding costs one coordinate
// allocation regardless of count. Weights is nil for unit-weight batches,
// else parallel to Points with every entry > 0.
type Batch struct {
	Dim     int
	Points  [][]float64
	Weights []float64
}

// Len returns the number of points in the batch.
func (b *Batch) Len() int { return len(b.Points) }

// Decode parses one binary batch. The entire body is validated before
// anything is returned, so a caller can apply the result knowing no
// later point will turn out malformed — the no-partial-ingest contract.
// pool, when non-nil, supplies the recyclable point-header slice (return
// it with pool.PutBatch after the batch has been handed off); the flat
// coordinate block is always freshly allocated because clustering
// backends retain the point storage they are handed.
func Decode(data []byte, lim Limits, pool *BufferPool) (*Batch, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte body, want at least the %d-byte header", ErrFormat, len(data), headerSize)
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, fmt.Errorf("%w: bad magic %q (want %q)", ErrFormat, data[:4], magic[:])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrFormat, v, Version)
	}
	flags := data[5]
	if flags&^byte(flagWeights) != 0 {
		return nil, fmt.Errorf("%w: unknown flags 0x%02x", ErrFormat, flags)
	}
	if data[6] != 0 || data[7] != 0 {
		return nil, fmt.Errorf("%w: nonzero reserved bytes", ErrFormat)
	}
	dim := binary.LittleEndian.Uint32(data[8:12])
	count := binary.LittleEndian.Uint32(data[12:16])
	if dim == 0 {
		return nil, fmt.Errorf("%w: dim must be >= 1", ErrFormat)
	}
	if lim.MaxDim > 0 && dim > uint32(lim.MaxDim) {
		return nil, fmt.Errorf("%w: dim %d exceeds the maximum %d", ErrFormat, dim, lim.MaxDim)
	}
	if lim.MaxPoints > 0 && int64(count) > lim.MaxPoints {
		return nil, fmt.Errorf("%w: %d points exceeds %d points per request", ErrTooLarge, count, lim.MaxPoints)
	}
	// Payload arithmetic in uint64: count*dim*4 cannot overflow there
	// (both operands are 32-bit), so a hostile header can never wrap the
	// size check into accepting a short body.
	cells := uint64(count) * uint64(dim)
	payload := cells * 4
	if flags&flagWeights != 0 {
		payload += uint64(count) * 4
	}
	if got := uint64(len(data) - headerSize); got != payload {
		if got < payload {
			return nil, fmt.Errorf("%w: truncated body: %d payload bytes, header declares %d", ErrFormat, got, payload)
		}
		return nil, fmt.Errorf("%w: %d trailing bytes after the declared payload", ErrFormat, got-payload)
	}

	b := &Batch{Dim: int(dim)}
	if count == 0 {
		return b, nil
	}
	// One flat block for every coordinate; the per-point slices below are
	// views into it. This block is intentionally NOT pooled: backends
	// buffer ingested points (partial coreset buckets) for an unbounded
	// number of requests, so recycling it would alias live tenant state.
	flat := make([]float64, cells)
	coords := data[headerSize : headerSize+cells*4]
	for i := range flat {
		v := float64(math.Float32frombits(binary.LittleEndian.Uint32(coords[i*4:])))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("%w: non-finite coordinate at cell %d", ErrFormat, i)
		}
		flat[i] = v
	}
	b.Points = pool.getHeaders(int(count))
	for i := uint64(0); i < uint64(count); i++ {
		b.Points = append(b.Points, flat[i*uint64(dim):(i+1)*uint64(dim)])
	}
	if flags&flagWeights != 0 {
		wraw := data[headerSize+cells*4:]
		b.Weights = make([]float64, count)
		for i := range b.Weights {
			w := float64(math.Float32frombits(binary.LittleEndian.Uint32(wraw[i*4:])))
			if math.IsNaN(w) || math.IsInf(w, 0) || w <= 0 {
				return nil, fmt.Errorf("%w: weight %d is %v, want finite and > 0", ErrFormat, i, w)
			}
			b.Weights[i] = w
		}
	}
	return b, nil
}

// EncodeBatch serializes pts (and optional per-point weights — nil means
// unit weight) into a version-1 binary batch. Every point must share one
// dimension >= 1, survive float32 conversion finite, and every weight be
// finite and > 0 — i.e. the encoder refuses to produce a body the
// decoder would reject.
func EncodeBatch(pts [][]float64, weights []float64) ([]byte, error) {
	if len(pts) == 0 {
		return nil, errors.New("wire: empty batch (need at least one point to fix the dimension)")
	}
	dim := len(pts[0])
	if dim == 0 {
		return nil, errors.New("wire: zero-dimensional point")
	}
	if weights != nil && len(weights) != len(pts) {
		return nil, fmt.Errorf("wire: %d weights for %d points", len(weights), len(pts))
	}
	size := headerSize + len(pts)*dim*4
	if weights != nil {
		size += len(pts) * 4
	}
	out := make([]byte, headerSize, size)
	copy(out, magic[:])
	out[4] = Version
	if weights != nil {
		out[5] = flagWeights
	}
	binary.LittleEndian.PutUint32(out[8:12], uint32(dim))
	binary.LittleEndian.PutUint32(out[12:16], uint32(len(pts)))
	var scratch [4]byte
	for i, p := range pts {
		if len(p) != dim {
			return nil, fmt.Errorf("wire: point %d has dimension %d, want %d", i, len(p), dim)
		}
		for _, v := range p {
			f := float32(v)
			if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) {
				return nil, fmt.Errorf("wire: point %d has a coordinate (%v) that is not finite in float32", i, v)
			}
			binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
			out = append(out, scratch[:]...)
		}
	}
	for i, w := range weights {
		f := float32(w)
		if math.IsNaN(float64(f)) || math.IsInf(float64(f), 0) || f <= 0 {
			return nil, fmt.Errorf("wire: weight %d (%v) must be finite and > 0 in float32", i, w)
		}
		binary.LittleEndian.PutUint32(scratch[:], math.Float32bits(f))
		out = append(out, scratch[:]...)
	}
	return out, nil
}

// Quantize rounds v through float32 — the precision a coordinate has
// after a binary round trip. Differential tests quantize their inputs so
// both wire formats deliver bit-identical float64s to the backend.
func Quantize(v float64) float64 { return float64(float32(v)) }
