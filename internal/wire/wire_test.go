package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"strings"
	"testing"
)

func mustEncode(t *testing.T, pts [][]float64, weights []float64) []byte {
	t.Helper()
	raw, err := EncodeBatch(pts, weights)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	pts := [][]float64{{1, 2, 3}, {-4.5, 0, 2.25}, {1e10, -1e-10, 0.5}}
	raw := mustEncode(t, pts, nil)
	b, err := Decode(raw, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim != 3 || b.Len() != 3 || b.Weights != nil {
		t.Fatalf("decoded dim=%d len=%d weights=%v", b.Dim, b.Len(), b.Weights)
	}
	for i, p := range pts {
		for j, v := range p {
			if got, want := b.Points[i][j], Quantize(v); got != want {
				t.Fatalf("point %d coord %d: %v, want %v", i, j, got, want)
			}
		}
	}
}

func TestEncodeDecodeWeighted(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}}
	raw := mustEncode(t, pts, []float64{0.5, 3})
	b, err := Decode(raw, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Weights) != 2 || b.Weights[0] != 0.5 || b.Weights[1] != 3 {
		t.Fatalf("weights %v", b.Weights)
	}
}

func TestDecodeZeroCount(t *testing.T) {
	// A zero-count batch is legal (an empty flush); hand-build it since
	// the encoder requires a point to fix the dimension.
	raw := make([]byte, headerSize)
	copy(raw, magic[:])
	raw[4] = Version
	binary.LittleEndian.PutUint32(raw[8:12], 7)
	b, err := Decode(raw, Limits{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Dim != 7 {
		t.Fatalf("zero-count batch: len=%d dim=%d", b.Len(), b.Dim)
	}
}

// corrupt applies f to a copy of raw and asserts Decode rejects it with
// ErrFormat and a message containing wantMsg.
func corrupt(t *testing.T, raw []byte, wantMsg string, f func([]byte) []byte) {
	t.Helper()
	mod := f(append([]byte(nil), raw...))
	_, err := Decode(mod, Limits{}, nil)
	if !errors.Is(err, ErrFormat) {
		t.Fatalf("corrupted (%s): err = %v, want ErrFormat", wantMsg, err)
	}
	if !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("corrupted (%s): message %q", wantMsg, err)
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	raw := mustEncode(t, [][]float64{{1, 2}, {3, 4}}, nil)

	corrupt(t, raw, "header", func(b []byte) []byte { return b[:headerSize-1] })
	corrupt(t, raw, "header", func(b []byte) []byte { return nil })
	corrupt(t, raw, "magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt(t, raw, "version", func(b []byte) []byte { b[4] = 9; return b })
	corrupt(t, raw, "flags", func(b []byte) []byte { b[5] = 0x80; return b })
	corrupt(t, raw, "reserved", func(b []byte) []byte { b[6] = 1; return b })
	corrupt(t, raw, "dim must be", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:12], 0)
		return b
	})
	corrupt(t, raw, "truncated", func(b []byte) []byte { return b[:len(b)-3] })
	corrupt(t, raw, "trailing", func(b []byte) []byte { return append(b, 0xaa) })
	// Hostile count*dim: both maxed out must not wrap into a short-body
	// acceptance.
	corrupt(t, raw, "truncated", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[8:12], math.MaxUint32)
		binary.LittleEndian.PutUint32(b[12:16], math.MaxUint32)
		return b
	})
	// Non-finite coordinate.
	corrupt(t, raw, "non-finite", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[headerSize:], math.Float32bits(float32(math.NaN())))
		return b
	})
	corrupt(t, raw, "non-finite", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[headerSize+4:], math.Float32bits(float32(math.Inf(1))))
		return b
	})

	wraw := mustEncode(t, [][]float64{{1, 2}}, []float64{2})
	corrupt(t, wraw, "weight", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], math.Float32bits(-1))
		return b
	})
	corrupt(t, wraw, "weight", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[len(b)-4:], math.Float32bits(float32(math.NaN())))
		return b
	})
}

func TestDecodeLimits(t *testing.T) {
	raw := mustEncode(t, [][]float64{{1, 2}, {3, 4}, {5, 6}}, nil)
	if _, err := Decode(raw, Limits{MaxPoints: 2}, nil); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("over MaxPoints: err = %v, want ErrTooLarge", err)
	}
	if _, err := Decode(raw, Limits{MaxDim: 1}, nil); !errors.Is(err, ErrFormat) {
		t.Fatalf("over MaxDim: err = %v, want ErrFormat", err)
	}
	if _, err := Decode(raw, Limits{MaxPoints: 3, MaxDim: 2}, nil); err != nil {
		t.Fatalf("at the limits: %v", err)
	}
}

func TestEncodeRejectsBadInput(t *testing.T) {
	for name, f := range map[string]func() ([]byte, error){
		"empty":         func() ([]byte, error) { return EncodeBatch(nil, nil) },
		"zero-dim":      func() ([]byte, error) { return EncodeBatch([][]float64{{}}, nil) },
		"ragged":        func() ([]byte, error) { return EncodeBatch([][]float64{{1}, {1, 2}}, nil) },
		"nan":           func() ([]byte, error) { return EncodeBatch([][]float64{{math.NaN()}}, nil) },
		"f32-overflow":  func() ([]byte, error) { return EncodeBatch([][]float64{{1e300}}, nil) },
		"weight-count":  func() ([]byte, error) { return EncodeBatch([][]float64{{1}}, []float64{1, 2}) },
		"weight-zero":   func() ([]byte, error) { return EncodeBatch([][]float64{{1}}, []float64{0}) },
		"weight-tiny":   func() ([]byte, error) { return EncodeBatch([][]float64{{1}}, []float64{1e-300}) }, // underflows to 0 in float32
		"weight-inf":    func() ([]byte, error) { return EncodeBatch([][]float64{{1}}, []float64{math.Inf(1)}) },
		"weight-signed": func() ([]byte, error) { return EncodeBatch([][]float64{{1}}, []float64{-2}) },
	} {
		if _, err := f(); err == nil {
			t.Errorf("%s: encode accepted", name)
		}
	}
}

func TestBufferPoolRecycles(t *testing.T) {
	var p BufferPool
	b := p.GetBytes(1000)
	if len(b) != 0 || cap(b) < 1000 {
		t.Fatalf("GetBytes: len=%d cap=%d", len(b), cap(b))
	}
	b = append(b, bytes.Repeat([]byte{1}, 700)...)
	p.PutBytes(b)
	b2 := p.GetBytes(900)
	if len(b2) != 0 || cap(b2) < 900 {
		t.Fatalf("recycled GetBytes: len=%d cap=%d", len(b2), cap(b2))
	}

	raw := mustEncode(t, [][]float64{{1, 2}, {3, 4}}, nil)
	batch, err := Decode(raw, Limits{}, &p)
	if err != nil {
		t.Fatal(err)
	}
	pts := batch.Points
	p.PutBatch(batch)
	if batch.Points != nil {
		t.Fatal("PutBatch left the batch holding its headers")
	}
	// The recycled header array must not pin the coordinate block.
	for _, h := range pts[:cap(pts)] {
		if h != nil {
			t.Fatal("PutBatch left a live point header in the pooled array")
		}
	}
	// nil pool: everything still works.
	if _, err := Decode(raw, Limits{}, nil); err != nil {
		t.Fatal(err)
	}
	(*BufferPool)(nil).PutBytes(b)
	(*BufferPool)(nil).PutBatch(&Batch{})
}

func TestReadAll(t *testing.T) {
	var p BufferPool
	payload := bytes.Repeat([]byte("abc"), 4000)
	got, err := ReadAll(bytes.NewReader(payload), p.GetBytes(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("ReadAll mismatch: %d bytes, want %d", len(got), len(payload))
	}
	// Undersized seed buffer grows.
	got, err = ReadAll(bytes.NewReader(payload), make([]byte, 0, 8))
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("ReadAll with small seed: err=%v len=%d", err, len(got))
	}
	got, err = ReadAll(bytes.NewReader(nil), nil)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll empty: err=%v len=%d", err, len(got))
	}
}
