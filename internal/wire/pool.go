package wire

import (
	"io"
	"math/bits"
	"sync"
)

// BufferPool recycles the two per-request allocations of the ingest hot
// path that are safe to reuse: the raw request-body byte buffer and the
// per-point slice-header array a Batch hands to AddBatch. Both are keyed
// by capacity class (next power of two), so a tenant mix of small and
// huge batches never makes small requests drag 64 MiB buffers around.
//
// What is deliberately NOT pooled: the flat float64 coordinate block.
// Backends retain the point storage they ingest (partial coreset
// buckets live across requests), so recycling coordinates would alias
// live tenant state. The byte buffer and header array, by contrast, are
// dead the moment the shard hands off — AddBatch implementations copy
// the outer slice's elements into their own geom.Weighted records.
//
// The zero value is ready to use; a nil *BufferPool degrades every
// operation to plain allocation.
type BufferPool struct {
	bytes   [poolClasses]sync.Pool // []byte, cap 1<<(c+poolMinShift)
	headers [poolClasses]sync.Pool // [][]float64, cap 1<<(c+poolMinShift)
}

const (
	poolMinShift = 9  // smallest class: 512 entries
	poolClasses  = 18 // largest class: 512 << 17 = 64 Mi entries
)

// classFor returns the size class whose capacity holds n, or -1 when n
// is too large to pool.
func classFor(n int) int {
	if n <= 0 {
		return 0
	}
	c := bits.Len(uint(n-1)) - poolMinShift
	if c < 0 {
		return 0
	}
	if c >= poolClasses {
		return -1
	}
	return c
}

// GetBytes returns a zero-length byte buffer with capacity at least n.
func (p *BufferPool) GetBytes(n int) []byte {
	c := classFor(n)
	if p == nil || c < 0 {
		return make([]byte, 0, n)
	}
	if v := p.bytes[c].Get(); v != nil {
		return v.([]byte)[:0]
	}
	return make([]byte, 0, 1<<(c+poolMinShift))
}

// PutBytes recycles a buffer obtained from GetBytes. Buffers whose
// capacity matches no class (grown past the largest, or foreign) are
// dropped for the GC.
func (p *BufferPool) PutBytes(b []byte) {
	if p == nil || b == nil {
		return
	}
	c := classFor(cap(b))
	if c < 0 || cap(b) != 1<<(c+poolMinShift) {
		return
	}
	p.bytes[c].Put(b[:0]) //nolint:staticcheck // slice sized by class, no alloc
}

// getHeaders returns a zero-length point-header slice with capacity at
// least n. Unexported: Decode is the only producer of pooled headers.
func (p *BufferPool) getHeaders(n int) [][]float64 {
	c := classFor(n)
	if p == nil || c < 0 {
		return make([][]float64, 0, n)
	}
	if v := p.headers[c].Get(); v != nil {
		return v.([][]float64)[:0]
	}
	return make([][]float64, 0, 1<<(c+poolMinShift))
}

// PutBatch recycles b's point-header slice after the batch has been
// applied (the shard handoff point). The headers are cleared first so a
// pooled array never pins a tenant's coordinate block alive. The batch
// must not be used afterwards.
func (p *BufferPool) PutBatch(b *Batch) {
	if p == nil || b == nil || b.Points == nil {
		return
	}
	hs := b.Points
	b.Points = nil
	c := classFor(cap(hs))
	if c < 0 || cap(hs) != 1<<(c+poolMinShift) {
		return
	}
	hs = hs[:cap(hs)]
	for i := range hs {
		hs[i] = nil
	}
	p.headers[c].Put(hs[:0]) //nolint:staticcheck // slice sized by class, no alloc
}

// ReadAll drains r into buf (which may be nil or pooled), growing as
// needed, and returns the filled slice — io.ReadAll with caller-supplied
// storage, so a pooled buffer can absorb the request body without a
// fresh allocation per request.
func ReadAll(r io.Reader, buf []byte) ([]byte, error) {
	buf = buf[:0]
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err != nil {
			if err == io.EOF {
				return buf, nil
			}
			return buf, err
		}
	}
}
