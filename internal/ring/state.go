package ring

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"time"

	"streamkm/internal/persist"
)

// RouterState is the durable routing table: everything a restarted
// router — or a second router replica pointed at the same file — needs
// to take over without re-deriving placement from scratch or abandoning
// another router's interrupted migration. It is written atomically
// (write-to-temp + rename, the same discipline stream checkpoints use)
// on every placement-affecting mutation: migrations completing or
// failing, promotions, membership changes, replication passes, and
// rebalance ends. Per-request traffic pins are deliberately NOT
// persisted — they are reconstructible from one listing pass and would
// turn every proxied write into a disk write.
//
// The crucial entries are Handoffs: a tenant frozen between detach and
// install by a router crash stays refusing writes on its source daemon,
// and only a router that knows the handoff was in flight will reattach
// or complete it. Loading this file is what lets a successor finish a
// predecessor's move.
type RouterState struct {
	SavedUnix int64                   `json:"saved_unix"`
	Ring      State                   `json:"ring"`
	Members   map[string]string       `json:"members"`
	Placement map[string]string       `json:"placement,omitempty"`
	Handoffs  map[string]migration    `json:"handoffs,omitempty"`
	Standbys  map[string]ReplicaState `json:"standbys,omitempty"`
	Promoted  map[string]string       `json:"promoted,omitempty"`
}

// snapshotState captures the proxy's durable state under the read lock.
func (p *Proxy) snapshotState() RouterState {
	p.mu.RLock()
	defer p.mu.RUnlock()
	st := RouterState{
		SavedUnix: time.Now().Unix(),
		Ring:      p.ring.State(),
		Members:   make(map[string]string, len(p.urls)),
		Placement: make(map[string]string, len(p.placement)),
		Handoffs:  make(map[string]migration, len(p.handoff)),
		Standbys:  make(map[string]ReplicaState, len(p.standbys)),
		Promoted:  make(map[string]string, len(p.promoted)),
	}
	for n, u := range p.urls {
		st.Members[n] = u
	}
	for id, m := range p.placement {
		st.Placement[id] = m
	}
	for id, mg := range p.handoff {
		st.Handoffs[id] = mg
	}
	for id, r := range p.standbys {
		st.Standbys[id] = r
	}
	for id, m := range p.promoted {
		st.Promoted[id] = m
	}
	return st
}

// saveState persists the routing table to the configured -state file.
// No-op without one. Failures are logged, never fatal: the in-memory
// state stays correct, and the next mutation retries the write.
func (p *Proxy) saveState() {
	if p.statePath == "" {
		return
	}
	st := p.snapshotState()
	// Serialize writers so two concurrent mutations can't interleave
	// rename order with snapshot order and leave the older state on disk.
	p.stateMu.Lock()
	defer p.stateMu.Unlock()
	_, err := persist.WriteFileAtomic(p.statePath, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	})
	if err != nil {
		p.logger.LogAttrs(context.Background(), slog.LevelError, "router state write failed",
			slog.String("path", p.statePath),
			slog.String("error", err.Error()))
	}
}

// loadState reads a RouterState file; a missing file is a clean boot.
func loadState(path string) (RouterState, bool, error) {
	var st RouterState
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return st, false, nil
	}
	if err != nil {
		return st, false, err
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		return st, false, fmt.Errorf("ring: corrupt router state %s: %w", path, err)
	}
	return st, true, nil
}

// adoptState installs a loaded RouterState into a freshly built proxy.
// The file's ring and tables win over the command line for everything
// placement-affecting (the file records reality: in-flight handoffs,
// promotions); cfg.Members only contribute address refreshes and brand
// new members, which join the ring exactly as a POST /cluster/members
// would — the next rebalance migrates tenants onto them.
func (p *Proxy) adoptState(st RouterState, cfgMembers []Member) error {
	r, err := FromState(st.Ring)
	if err != nil {
		return fmt.Errorf("ring: router state: %w", err)
	}
	p.ring = r
	p.urls = make(map[string]string, len(st.Members))
	for n, u := range st.Members {
		p.urls[n] = u
	}
	for _, m := range cfgMembers {
		p.urls[m.Name] = strings.TrimRight(m.URL, "/")
		if !p.ring.Has(m.Name) {
			nr, err := p.ring.WithMember(m.Name)
			if err != nil {
				return err
			}
			p.ring = nr
		}
	}
	for id, m := range st.Placement {
		p.placement[id] = m
	}
	for id, mg := range st.Handoffs {
		p.handoff[id] = mg
	}
	for id, rs := range st.Standbys {
		p.standbys[id] = rs
	}
	for id, m := range st.Promoted {
		p.promoted[id] = m
	}
	return nil
}
