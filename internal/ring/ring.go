// Package ring implements the tenant-placement layer for a fleet of
// streamkm daemons: a consistent-hash ring that maps stream ids onto
// stable daemon names, and an HTTP proxy (Proxy) that routes per-stream
// requests to the owning daemon, merges fleet-wide views, and drives
// tenant migration over the daemons' per-stream snapshot endpoints when
// membership changes.
//
// The paper's smallness results are what make tenant-granular sharding
// the right unit: per-stream coreset state is polylogarithmic in the
// stream, so a whole tenant travels in one small snapshot, and related
// sliding-window results (Braverman et al.) show the per-tenant state
// cannot be split finer — window buckets only make sense whole. The ring
// therefore maps tenant → daemon, never point → daemon.
//
// Rings are immutable: membership changes build a new ring (WithMember /
// WithoutMember), so concurrent readers never observe a half-updated
// table and ownership is a pure function of (replicas, member set).
// State serializes exactly that pair plus a version counter; rebuilding
// a ring from its State yields identical ownership for every key — the
// property routers rely on to agree without coordination.
//
// The proxy participates in W3C trace-context propagation
// (internal/trace): every proxied request runs in a router span — named
// after the daemon endpoint it targets, with a proxy-hop stage timing
// the upstream round trip — and the outbound request's traceparent
// header is rewritten so the router span becomes the daemon span's
// parent. A client-supplied traceparent is joined, an absent one minted,
// so one trace id links the router's /debug/traces ring, the owning
// daemon's ring, and both slow-request logs. Tenant migrations get the
// same treatment: one root "migrate" span per moved tenant with child
// spans (and root stages) for each step — detach, snapshot-fetch,
// install, delete-source — whose trace id is logged with every
// migration outcome, so a failed handoff names the exact step and trace
// to pull. ProxyConfig.SlowRequest (the router's -slow-request flag)
// enables the structured slow-request log.
//
// # High availability
//
// Three mechanisms turn the router from a migration driver into a
// failover controller. Asynchronous standby replication (ReplicateOnce,
// the -replicate-interval loop) designates, for every placed tenant,
// the next distinct ring member after its owner as a standby, and
// periodically ships the owner's snapshot there via the daemons'
// GET snapshot → PUT standby pair; the copy installs detached and
// flagged standby — refusing every request with 409 + owner hint, and
// overwritable only by later ships — so a replica can never serve stale
// answers or fork the tenant. Health-probed membership (Prober,
// ProbeOnce, the -health-interval loop) GETs every member's /healthz
// and marks a member down after a configurable run of consecutive
// failures; down members are skipped by fan-outs and rebalance, and the
// down transition triggers failover: each dead member's tenants are
// promoted on their standbys — handoff freeze, reattach, placement
// repoint — inside the same write-refusal window a migration uses, so
// promotion can never fork a tenant either. Member health is probe-only:
// passive forward errors (including client disconnects, counted apart
// as 499s) never trip it. Promotion is authoritative by contract: the
// promoted copy may trail the dead owner's by up to one replication
// interval (the documented loss bound), and the promoted table
// remembers the old owner so reconciliation deletes its stale,
// possibly higher-count copy when it returns instead of resurrecting
// it. Finally, the durable handoff table (-state) persists ring,
// members, placement, handoffs, standby assignments and promotions to
// one atomically-written JSON file on every placement-affecting
// mutation and serves the same under GET /ring — so a restarted router,
// or a second replica pointed at the same file, knows about a
// predecessor's in-flight migration and completes (or aborts) it
// rather than leaving the tenant frozen.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the default number of virtual nodes per member.
// 128 vnodes keep the expected per-member load imbalance within a few
// percent (relative standard deviation ~1/sqrt(replicas)) while ring
// rebuilds stay trivially cheap at fleet sizes of thousands.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over stable member names.
// Build with New or FromState; derive changed rings with WithMember and
// WithoutMember. Safe for concurrent use (it never mutates).
type Ring struct {
	replicas int
	members  []string // sorted, unique
	version  uint64

	hashes []uint64 // sorted vnode positions
	owner  []int    // member index per vnode, parallel to hashes
}

// New builds a ring with the given virtual-node count per member.
// replicas <= 0 selects DefaultReplicas. Member names must be non-empty
// and unique.
func New(replicas int, members ...string) (*Ring, error) {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	uniq := make([]string, 0, len(members))
	seen := make(map[string]bool, len(members))
	for _, m := range members {
		if m == "" {
			return nil, fmt.Errorf("ring: empty member name")
		}
		if seen[m] {
			return nil, fmt.Errorf("ring: duplicate member %q", m)
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{replicas: replicas, members: uniq, version: 1}
	r.build()
	return r, nil
}

// build populates the vnode table from the member list. Deterministic:
// the table is a pure function of (replicas, members), so two rings with
// the same inputs agree on every key.
func (r *Ring) build() {
	n := len(r.members) * r.replicas
	r.hashes = make([]uint64, 0, n)
	r.owner = make([]int, 0, n)
	type vnode struct {
		h uint64
		m int
	}
	vns := make([]vnode, 0, n)
	for mi, m := range r.members {
		for i := 0; i < r.replicas; i++ {
			vns = append(vns, vnode{h: hashKey(fmt.Sprintf("%s#%d", m, i)), m: mi})
		}
	}
	sort.Slice(vns, func(i, j int) bool {
		if vns[i].h != vns[j].h {
			return vns[i].h < vns[j].h
		}
		// Hash collisions between vnodes are broken by member order so the
		// table stays deterministic regardless of input order.
		return vns[i].m < vns[j].m
	})
	for _, v := range vns {
		r.hashes = append(r.hashes, v.h)
		r.owner = append(r.owner, v.m)
	}
}

// hashKey positions a key (or vnode label) on the 64-bit ring circle:
// FNV-1a followed by a murmur-style avalanche finalizer. Raw FNV-1a has
// weak bit diffusion on short, structured keys (sequential tenant ids,
// "name#i" vnode labels), which skews arc lengths badly enough to move
// several times the fair share of tenants on a membership change; the
// finalizer restores uniformity.
func hashKey(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Owner returns the member owning key, or "" and false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.hashes) == 0 {
		return "", false
	}
	h := hashKey(key)
	// First vnode clockwise from h, wrapping past the top.
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.members[r.owner[i]], true
}

// Owners returns the first n distinct members clockwise from key's ring
// position — Owners(key, 1)[0] is Owner(key), Owners(key, 2)[1] is the
// natural standby (the member a replica of key's tenant should live on:
// it is where ownership falls if the owner leaves the ring). n is capped
// at the member count; an empty ring returns nil.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for scanned := 0; scanned < len(r.hashes) && len(out) < n; scanned++ {
		vi := (i + scanned) % len(r.hashes)
		mi := r.owner[vi]
		if !seen[mi] {
			seen[mi] = true
			out = append(out, r.members[mi])
		}
	}
	return out
}

// Members returns the sorted member names (a copy).
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Has reports whether name is a member.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.members, name)
	return i < len(r.members) && r.members[i] == name
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// Version returns the ring's monotonically increasing membership
// version; every WithMember/WithoutMember increments it.
func (r *Ring) Version() uint64 { return r.version }

// WithMember returns a new ring with name added and the version bumped.
// Adding is minimally disruptive: a key's owner either stays unchanged
// or becomes the new member — never a third party.
func (r *Ring) WithMember(name string) (*Ring, error) {
	if name == "" {
		return nil, fmt.Errorf("ring: empty member name")
	}
	if r.Has(name) {
		return nil, fmt.Errorf("ring: member %q already present", name)
	}
	nr, err := New(r.replicas, append(r.Members(), name)...)
	if err != nil {
		return nil, err
	}
	nr.version = r.version + 1
	return nr, nil
}

// WithoutMember returns a new ring with name removed and the version
// bumped. Removal only moves the departed member's keys; everyone
// else's stay put.
func (r *Ring) WithoutMember(name string) (*Ring, error) {
	if !r.Has(name) {
		return nil, fmt.Errorf("ring: no member %q", name)
	}
	rest := make([]string, 0, len(r.members)-1)
	for _, m := range r.members {
		if m != name {
			rest = append(rest, m)
		}
	}
	nr, err := New(r.replicas, rest...)
	if err != nil {
		return nil, err
	}
	nr.version = r.version + 1
	return nr, nil
}

// State is the serializable description of a ring. FromState rebuilds a
// ring with identical ownership for every key, so routers can exchange
// and persist placement as this small JSON object.
type State struct {
	Version  uint64   `json:"version"`
	Replicas int      `json:"replicas"`
	Members  []string `json:"members"`
}

// State captures the ring's serializable state.
func (r *Ring) State() State {
	return State{Version: r.version, Replicas: r.replicas, Members: r.Members()}
}

// FromState rebuilds a ring from a serialized State. The rebuilt ring
// owns every key identically to the ring that produced the State.
func FromState(s State) (*Ring, error) {
	if s.Replicas < 0 {
		return nil, fmt.Errorf("ring: negative replicas %d", s.Replicas)
	}
	r, err := New(s.Replicas, s.Members...)
	if err != nil {
		return nil, err
	}
	if s.Version > 0 {
		r.version = s.Version
	}
	return r, nil
}
