package ring

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzRing checks the three invariants the router fleet depends on, over
// adversarial member/tenant names:
//
//	(a) ownership is a pure function of the member set — rebuilding the
//	    ring (in any member order) maps every tenant identically;
//	(b) adding a member only moves tenants to the added member, and moves
//	    at most ~tenants/members of them (plus concentration slack);
//	(c) the serialized ring state round-trips into identical ownership.
func FuzzRing(f *testing.F) {
	f.Add(uint8(3), uint16(64), "seed")
	f.Add(uint8(1), uint16(1), "")
	f.Add(uint8(7), uint16(300), "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	f.Add(uint8(250), uint16(65535), "x#y\x00z")
	f.Fuzz(func(t *testing.T, nm uint8, nt uint16, salt string) {
		nMembers := int(nm)%8 + 2
		nTenants := int(nt)%400 + 1
		salt = strings.ToValidUTF8(salt, "")
		if len(salt) > 32 {
			salt = salt[:32]
		}
		members := make([]string, nMembers)
		for i := range members {
			members[i] = fmt.Sprintf("m%d-%s", i, salt)
		}
		tenants := make([]string, nTenants)
		for i := range tenants {
			tenants[i] = fmt.Sprintf("t%d-%s", i, salt)
		}

		r1, err := New(64, members...)
		if err != nil {
			t.Fatal(err)
		}

		// (a) determinism across rebuilds, member order irrelevant.
		reversed := make([]string, nMembers)
		for i, m := range members {
			reversed[nMembers-1-i] = m
		}
		r1b, err := New(64, reversed...)
		if err != nil {
			t.Fatal(err)
		}
		owners := make(map[string]string, nTenants)
		for _, id := range tenants {
			o1, ok := r1.Owner(id)
			if !ok {
				t.Fatalf("no owner for %q", id)
			}
			if o2, _ := r1b.Owner(id); o2 != o1 {
				t.Fatalf("rebuild changed owner of %q: %q vs %q", id, o2, o1)
			}
			owners[id] = o1
		}

		// (c) serialized state round-trips into identical ownership.
		r2, err := FromState(r1.State())
		if err != nil {
			t.Fatal(err)
		}
		if r2.Version() != r1.Version() || r2.Replicas() != r1.Replicas() {
			t.Fatalf("state round trip: %+v vs %+v", r2.State(), r1.State())
		}
		for _, id := range tenants {
			if o, _ := r2.Owner(id); o != owners[id] {
				t.Fatalf("state round trip changed owner of %q: %q vs %q", id, o, owners[id])
			}
		}

		// (b) adding one member moves tenants only onto it, and not more
		// than ~1/len(new) of them. The slack covers hash concentration:
		// with 64 vnodes the new member's share has ~12% relative sd, so
		// twice the fair share is far outside reachable territory.
		added := "added-" + salt
		r3, err := r1.WithMember(added)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for _, id := range tenants {
			o, _ := r3.Owner(id)
			if o != owners[id] {
				if o != added {
					t.Fatalf("tenant %q moved %q -> %q, not to the added member", id, owners[id], o)
				}
				moved++
			}
		}
		if bound := 2*nTenants/r3.Len() + 8; moved > bound {
			t.Fatalf("add moved %d of %d tenants across %d members (bound %d)",
				moved, nTenants, r3.Len(), bound)
		}

		// Removing it restores the original assignment exactly.
		r4, err := r3.WithoutMember(added)
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range tenants {
			if o, _ := r4.Owner(id); o != owners[id] {
				t.Fatalf("remove did not restore owner of %q: %q vs %q", id, o, owners[id])
			}
		}
	})
}
