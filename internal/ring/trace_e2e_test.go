package ring

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
	"streamkm/internal/trace"
)

// syncBuffer is a mutex-guarded bytes.Buffer: the slow-request slog
// record is emitted by the handler goroutine after the response is
// already on the wire, so the test must not read the log concurrently
// with a late write.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracePropagationRouterToDaemon drives the acceptance scenario of
// the tracing work end to end: one forced-slow restore-from-hibernation
// request through the router must surface ONE trace id in (1) the
// router's /debug/traces ring, (2) the daemon's /debug/traces ring, and
// (3) the daemon's slow-request slog line — with the daemon span's
// dominant stage being the restore.
func TestTracePropagationRouterToDaemon(t *testing.T) {
	const restoreDelay = 30 * time.Millisecond
	base := streamkm.Config{BucketSize: 20, Seed: 7}
	reg, err := registry.New(registry.Config{
		DataDir: t.TempDir(),
		TTL:     time.Nanosecond, // everything is idle; Sweep hibernates at will
		Default: registry.StreamConfig{Backend: "concurrent", Algo: "CC", K: 3},
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.Open(streamkm.SpecFromStreamConfig(sc, 2), base)
		},
		Restore: func(_ string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			time.Sleep(restoreDelay) // force the restore stage to dominate
			b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: base.Seed})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return b, b.Spec().StreamConfig(), nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			m, err := persist.PeekBackend(r)
			if err != nil {
				return registry.StreamConfig{}, 0, err
			}
			return registry.StreamConfig{Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim}, m.Count, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var logBuf syncBuffer
	dtr := trace.NewRecorder(0, 0)
	multi := server.NewMulti(reg, server.MultiConfig{
		MaxBatch:    100,
		Trace:       dtr,
		SlowRequest: restoreDelay / 2, // only the restore-stalled request qualifies
		Logger:      slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})
	dts := httptest.NewServer(multi.Handler())
	defer dts.Close()

	p, err := NewProxy(ProxyConfig{
		Members: []Member{{Name: "a", URL: dts.URL}},
		Client:  &http.Client{Timeout: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(p.Handler())
	defer rts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	// Populate a tenant through the router, then hibernate it so the next
	// access restores from disk.
	ingestRetry(t, client, rts.URL+"/streams/t1/ingest", tenantPoints(1, 60), testDeadline)
	if n := reg.Sweep(); n == 0 {
		t.Fatal("Sweep hibernated nothing; tenant still resident")
	}

	queryCenters(t, client, rts.URL, "t1")

	// (1) + dominant stage: the daemon span for the centers request.
	var daemonSpan trace.SpanData
	for _, d := range dtr.Spans(trace.Filter{Endpoint: "centers"}) {
		daemonSpan = d
		break
	}
	if daemonSpan.TraceID == "" {
		t.Fatalf("no daemon span for centers; recorder holds %+v", dtr.Spans(trace.Filter{}))
	}
	tid := daemonSpan.TraceID
	if stage, _ := daemonSpan.Dominant(); stage != "restore" {
		t.Errorf("daemon span dominant stage = %q, want restore (stages %+v)", stage, daemonSpan.Stages)
	}
	if daemonSpan.ParentID == "" {
		t.Error("daemon span has no parent; router traceparent did not propagate")
	}

	// (2) the router ring holds a span with the SAME trace id.
	routerSpans := p.Traces().Spans(trace.Filter{TraceID: tid})
	if len(routerSpans) == 0 {
		t.Fatalf("router ring has no span for trace %s", tid)
	}
	rs := routerSpans[0]
	if rs.Name != "centers" || rs.Stream != "t1" {
		t.Errorf("router span = endpoint %q stream %q, want centers/t1", rs.Name, rs.Stream)
	}
	if _, ok := stageMs(rs, "proxy-hop"); !ok {
		t.Errorf("router span missing proxy-hop stage: %+v", rs.Stages)
	}

	// (3) the daemon's slow-request log line carries the same trace id and
	// names restore as the dominant stage. The record is written after the
	// response completes, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if line, ok := slowLogLine(t, logBuf.String(), tid); ok {
			if line["dominant_stage"] != "restore" {
				t.Errorf("slow log dominant_stage = %v, want restore (line %v)", line["dominant_stage"], line)
			}
			if line["endpoint"] != "centers" || line["stream"] != "t1" {
				t.Errorf("slow log endpoint/stream = %v/%v, want centers/t1", line["endpoint"], line["stream"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no slow-request log line for trace %s; log:\n%s", tid, logBuf.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// stageMs finds a named stage in a span.
func stageMs(d trace.SpanData, name string) (float64, bool) {
	for _, s := range d.Stages {
		if s.Name == name {
			return s.Ms, true
		}
	}
	return 0, false
}

// slowLogLine scans slog JSON output for the "slow request" record
// matching the given trace id.
func slowLogLine(t *testing.T, logs, tid string) (map[string]interface{}, bool) {
	t.Helper()
	for _, line := range strings.Split(logs, "\n") {
		if line == "" {
			continue
		}
		var m map[string]interface{}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if m["msg"] == "slow request" && m["trace_id"] == tid {
			return m, true
		}
	}
	return nil, false
}
