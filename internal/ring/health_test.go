package ring

import (
	"sync"
	"testing"
	"time"
)

// TestProberThreshold walks the full state machine: failures below the
// threshold (a flap) change nothing, the crossing observation reports
// wentDown exactly once, further failures stay silent, and the first
// healthy probe reports wentUp exactly once and re-arms the counter.
func TestProberThreshold(t *testing.T) {
	pr := NewProber(3)
	now := time.Now()

	for i := 0; i < 2; i++ {
		down, up := pr.Observe("a", false, now)
		if down || up {
			t.Fatalf("observation %d below threshold: down=%v up=%v", i+1, down, up)
		}
		if pr.Down("a") {
			t.Fatalf("down before threshold at failure %d", i+1)
		}
	}
	down, up := pr.Observe("a", false, now)
	if !down || up {
		t.Fatalf("threshold crossing: down=%v up=%v, want down only", down, up)
	}
	if !pr.Down("a") {
		t.Fatal("not marked down after threshold")
	}
	// Already down: more failures must not re-report the transition.
	for i := 0; i < 5; i++ {
		if down, _ := pr.Observe("a", false, now); down {
			t.Fatal("wentDown reported twice")
		}
	}
	down, up = pr.Observe("a", true, now)
	if down || !up {
		t.Fatalf("recovery: down=%v up=%v, want up only", down, up)
	}
	if pr.Down("a") {
		t.Fatal("still down after recovery")
	}
	// Recovery must reset the consecutive counter: two failures are a
	// flap again, not a continuation of the old streak.
	pr.Observe("a", false, now)
	if d, _ := pr.Observe("a", false, now); d {
		t.Fatal("counter not reset by recovery")
	}
}

// TestProberFlapNeverTrips alternates failure and success: consecutive
// means consecutive, so a flapping member never crosses the threshold.
func TestProberFlapNeverTrips(t *testing.T) {
	pr := NewProber(2)
	now := time.Now()
	for i := 0; i < 20; i++ {
		pr.Observe("a", i%2 == 0, now)
		if pr.Down("a") {
			t.Fatalf("flapping member marked down at observation %d", i)
		}
	}
}

// TestProberDefaultThreshold checks the zero-value threshold fallback.
func TestProberDefaultThreshold(t *testing.T) {
	pr := NewProber(0)
	now := time.Now()
	for i := 0; i < DefaultFailThreshold-1; i++ {
		pr.Observe("a", false, now)
	}
	if pr.Down("a") {
		t.Fatal("down before default threshold")
	}
	if down, _ := pr.Observe("a", false, now); !down {
		t.Fatal("default threshold did not trip")
	}
}

// TestProberSnapshotAndForget checks the observability view and member
// removal.
func TestProberSnapshotAndForget(t *testing.T) {
	pr := NewProber(2)
	now := time.Now()
	pr.Observe("a", true, now)
	pr.Observe("b", false, now)
	pr.Observe("b", false, now)

	snap := pr.Snapshot()
	if snap["a"].Down || snap["a"].LastOKUnix == 0 {
		t.Fatalf("healthy member snapshot: %+v", snap["a"])
	}
	if !snap["b"].Down || snap["b"].ConsecutiveFails != 2 {
		t.Fatalf("down member snapshot: %+v", snap["b"])
	}
	if got := pr.DownMembers(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("DownMembers = %v, want [b]", got)
	}

	pr.Forget("b")
	if pr.Down("b") {
		t.Fatal("forgotten member still down")
	}
	if _, ok := pr.Snapshot()["b"]; ok {
		t.Fatal("forgotten member still in snapshot")
	}
}

// TestProberConcurrent hammers one prober from many goroutines so the
// -race build checks the locking; the invariant is only that each
// member's down transitions alternate (no double wentDown / wentUp).
func TestProberConcurrent(t *testing.T) {
	pr := NewProber(3)
	members := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for _, m := range members {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(m string, g int) {
				defer wg.Done()
				now := time.Now()
				for i := 0; i < 200; i++ {
					pr.Observe(m, (i+g)%5 != 0, now)
					pr.Down(m)
				}
			}(m, g)
		}
	}
	for i := 0; i < 50; i++ {
		pr.Snapshot()
		pr.DownMembers()
	}
	wg.Wait()
}
