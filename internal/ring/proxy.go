package ring

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"streamkm/internal/metrics"
	"streamkm/internal/registry"
	"streamkm/internal/server"
	"streamkm/internal/trace"
)

// Member is one daemon in the fleet: a stable name (what the ring
// hashes, so a restart at a new address never remaps tenants) and the
// base URL the router currently reaches it at.
type Member struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// ProxyConfig configures a Proxy.
type ProxyConfig struct {
	// Members is the initial fleet. Names must be unique; URLs are base
	// addresses like http://10.0.0.5:7070 (no trailing slash needed).
	Members []Member
	// Replicas is the virtual-node count per member (0 = DefaultReplicas).
	Replicas int
	// Client performs upstream requests; nil gets a 30s-timeout client.
	Client *http.Client
	// Trace receives one span per proxied request (plus migration spans)
	// and serves GET /debug/traces. Nil allocates a private recorder.
	Trace *trace.Recorder
	// SlowRequest, when positive, emits one structured log record per
	// proxied request slower than it.
	SlowRequest time.Duration
	// Logger receives slow-request and migration-failure records; nil
	// uses slog.Default().
	Logger *slog.Logger
	// StatePath, when set, makes the routing table durable: placement,
	// in-flight handoffs, standby assignments and the promoted table are
	// written atomically to this file on every placement-affecting
	// mutation and loaded back on construction. A second router replica
	// pointed at the same file (or a restarted one) completes another's
	// interrupted migrations instead of abandoning them.
	StatePath string
	// FailThreshold is how many consecutive health-probe failures mark a
	// member down (0 = DefaultFailThreshold).
	FailThreshold int
	// ProbeTimeout bounds each member /healthz probe (0 = 2s).
	ProbeTimeout time.Duration
	// FanTimeout bounds each member's leg of a fleet-wide fan-out
	// (/streams, /stats merges), so one wedged daemon degrades results to
	// partial instead of freezing them (0 = 10s).
	FanTimeout time.Duration
}

// migration is one tenant handoff, in flight or pending retry.
type migration struct {
	From string `json:"from"`
	To   string `json:"to"`
	Err  string `json:"error,omitempty"` // last failure; empty while in flight
}

// Proxy is the consistent-hash router: a thin HTTP front that maps
// /streams/{id}/... requests onto the owning daemon, merges fleet-wide
// views (GET /streams, GET /stats), and — on membership change — drives
// tenant migration through the daemons' detach/snapshot/install
// endpoints. During a tenant's handoff window the proxy refuses writes
// to that tenant (503 + Retry-After) and only that tenant; reads and
// every other tenant keep flowing.
//
// Routing is placement-first: the ring names the goal state, but a
// request follows the last observed holder until a rebalance completes
// the move, so a pending migration can never fork a tenant by lazily
// creating it on the new owner while the state sits on the old one.
type Proxy struct {
	client *http.Client
	mux    *http.ServeMux
	start  time.Time
	stats  metrics.RouterStats
	// proxyLatency distributes end-to-end per-stream forwarding time
	// (routing decision + upstream round trip), served on /metrics.
	proxyLatency metrics.Histogram

	tr     *trace.Recorder
	slow   time.Duration
	logger *slog.Logger

	prober       *Prober
	probeTimeout time.Duration
	fanTimeout   time.Duration

	statePath string
	stateMu   sync.Mutex // serializes state-file writes

	mu        sync.RWMutex
	ring      *Ring
	urls      map[string]string    // member name -> base URL (incl. draining members)
	placement map[string]string    // tenant -> member name last observed holding it
	handoff   map[string]migration // tenant -> in-flight or pending migration
	// standbys tracks each tenant's designated standby and how fresh its
	// replicated copy is; promoted remembers, for each failed-over tenant,
	// the dead member whose stale pre-promotion copy must be deleted when
	// it recovers (before count-based reconciliation could prefer it).
	standbys map[string]ReplicaState
	promoted map[string]string

	rebalanceMu sync.Mutex // one rebalance pass at a time

	// Test hook: runs after a migration's detach step succeeds, before
	// the snapshot download — the window fault-injection tests target.
	afterDetach func(tenant, from string)
}

// NewProxy builds a router over the given fleet. It performs no network
// traffic; call Rebalance (or let membership changes trigger it) to
// reconcile placement with what the daemons actually hold.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	names := make([]string, 0, len(cfg.Members))
	urls := make(map[string]string, len(cfg.Members))
	for _, m := range cfg.Members {
		if m.Name == "" || m.URL == "" {
			return nil, fmt.Errorf("ring: member needs both name and url, got %+v", m)
		}
		if _, ok := urls[m.Name]; ok {
			return nil, fmt.Errorf("ring: duplicate member name %q", m.Name)
		}
		names = append(names, m.Name)
		urls[m.Name] = strings.TrimRight(m.URL, "/")
	}
	r, err := New(cfg.Replicas, names...)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	tr := cfg.Trace
	if tr == nil {
		tr = trace.NewRecorder(0, 0)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	probeTimeout := cfg.ProbeTimeout
	if probeTimeout <= 0 {
		probeTimeout = 2 * time.Second
	}
	fanTimeout := cfg.FanTimeout
	if fanTimeout <= 0 {
		fanTimeout = 10 * time.Second
	}
	p := &Proxy{
		client:       client,
		mux:          http.NewServeMux(),
		start:        time.Now(),
		ring:         r,
		urls:         urls,
		placement:    make(map[string]string),
		handoff:      make(map[string]migration),
		standbys:     make(map[string]ReplicaState),
		promoted:     make(map[string]string),
		prober:       NewProber(cfg.FailThreshold),
		probeTimeout: probeTimeout,
		fanTimeout:   fanTimeout,
		statePath:    cfg.StatePath,
		tr:           tr,
		slow:         cfg.SlowRequest,
		logger:       logger,
	}
	if p.statePath != "" {
		st, found, err := loadState(p.statePath)
		if err != nil {
			return nil, err
		}
		if found {
			if err := p.adoptState(st, cfg.Members); err != nil {
				return nil, err
			}
		}
	}
	p.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	p.mux.HandleFunc("GET /ring", p.handleRing)
	p.mux.HandleFunc("GET /stats", p.handleStats)
	p.mux.HandleFunc("GET /metrics", p.handleMetrics)
	p.mux.Handle("GET /debug/traces", p.tr.Handler())
	p.mux.HandleFunc("GET /streams", p.handleList)
	p.mux.HandleFunc("/streams/{id}", p.handleStream)
	p.mux.HandleFunc("/streams/{id}/{endpoint...}", p.handleStream)
	p.mux.HandleFunc("POST /cluster/members", p.handleAddMember)
	p.mux.HandleFunc("PUT /cluster/members", p.handleUpdateMember)
	p.mux.HandleFunc("DELETE /cluster/members/{name}", p.handleRemoveMember)
	p.mux.HandleFunc("POST /cluster/rebalance", p.handleRebalance)
	return p, nil
}

// Handler returns the router's HTTP handler.
func (p *Proxy) Handler() http.Handler { return p.mux }

// Ring returns the current ring (immutable; safe to share).
func (p *Proxy) Ring() *Ring {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.ring
}

// Stats returns a snapshot of the router's counters.
func (p *Proxy) Stats() metrics.RouterSnapshot { return p.stats.Snapshot() }

// Traces returns the recorder behind GET /debug/traces.
func (p *Proxy) Traces() *trace.Recorder { return p.tr }

// memberURL resolves a member name, "" if unknown.
func (p *Proxy) memberURL(name string) string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.urls[name]
}

// route decides which member serves tenant id right now, and whether the
// tenant is mid-handoff (writes must be refused).
func (p *Proxy) route(id string) (member string, inHandoff bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if mg, ok := p.handoff[id]; ok {
		// Until the move completes the state lives (frozen) on the source.
		return mg.From, true
	}
	if m, ok := p.placement[id]; ok {
		return m, false
	}
	owner, _ := p.ring.Owner(id)
	return owner, false
}

// isWrite classifies request methods for the handoff refusal window.
func isWrite(method string) bool {
	return method != http.MethodGet && method != http.MethodHead
}

// statusClientClosedRequest is nginx's non-standard 499: the client
// closed the connection before the upstream answered. Go's standard
// library has no name for it, but it is the de facto code for exactly
// this classification.
const statusClientClosedRequest = 499

// maxStandbySeries caps the per-tenant replication-lag gauges on
// /metrics, mirroring the daemons' tenant-series cap; fleets beyond it
// keep the aggregate gauges and the full table in /stats JSON.
const maxStandbySeries = 1024

// handleStream forwards one per-stream request to the member serving the
// tenant, refusing writes while the tenant is mid-handoff.
func (p *Proxy) handleStream(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	id := r.PathValue("id")
	// The router either joins the client's trace (a valid traceparent
	// header) or originates one; either way the daemon hop below joins
	// the same trace, so one id follows the request end to end.
	name := r.PathValue("endpoint")
	if name == "" {
		name = "stream"
	}
	tid, parent, _, _ := trace.Parse(r.Header.Get(trace.Header))
	sp := p.tr.StartSpan(name, tid, parent)
	sp.SetStream(id)
	r = r.WithContext(trace.NewContext(r.Context(), sp))
	defer func() {
		d := time.Since(t0)
		p.proxyLatency.Observe(d)
		data := sp.End()
		if p.slow > 0 && d >= p.slow {
			trace.LogSlow(p.logger, data)
		}
	}()
	member, inHandoff := p.route(id)
	if inHandoff && isWrite(r.Method) {
		p.stats.RecordRefusal()
		sp.SetStatus(http.StatusServiceUnavailable)
		p.refuse(w, id)
		return
	}
	if member == "" {
		sp.SetStatus(http.StatusServiceUnavailable)
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error": "router has no members",
		})
		return
	}
	url := p.memberURL(member)
	if url == "" {
		sp.SetStatus(http.StatusBadGateway)
		writeJSON(w, http.StatusBadGateway, map[string]interface{}{
			"error": fmt.Sprintf("no address for member %q", member),
		})
		return
	}
	p.forward(w, r, id, member, url)
}

// refuse answers a write against a mid-handoff tenant: 503 with a short
// Retry-After, since handoff windows are one small snapshot copy long.
func (p *Proxy) refuse(w http.ResponseWriter, id string) {
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
		"error":  fmt.Sprintf("stream %q is migrating; retry", id),
		"stream": id,
	})
}

// forward proxies r to base (the member's URL), streaming the response
// back. A daemon-side 409 that carries the migration owner header means
// the proxy's view lagged a detach; it is surfaced as the same 503 +
// Retry-After a refused write gets, so clients need one retry loop, not
// two.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, id, member, base string) {
	sp := trace.FromContext(r.Context())
	out, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), r.Body)
	if err != nil {
		p.stats.RecordProxied(true)
		sp.SetError(err)
		writeJSON(w, http.StatusBadGateway, map[string]interface{}{"error": err.Error()})
		return
	}
	out.Header = r.Header.Clone()
	out.ContentLength = r.ContentLength
	// Replace (not merely pass through) any client traceparent: same
	// trace id, but the router's span becomes the daemon span's parent.
	if tp := sp.Traceparent(); tp != "" {
		out.Header.Set(trace.Header, tp)
	}
	endHop := sp.StartStage("proxy-hop")
	resp, err := p.client.Do(out)
	endHop()
	if err != nil {
		// A transport error with the client's own context dead is the
		// client hanging up, not the daemon failing: the upstream round
		// trip was aborted from our side. Classifying it as 502 would both
		// lie to the logs ("daemon unreachable") and inflate the proxy
		// error rate with failures the fleet never caused, so it gets its
		// own counter and nginx's 499 convention. It also must never feed
		// member health — health is probe-only (see ProbeOnce).
		if cerr := r.Context().Err(); cerr != nil {
			p.stats.RecordClientCancel()
			sp.SetStatus(statusClientClosedRequest)
			writeJSON(w, statusClientClosedRequest, map[string]interface{}{
				"error": fmt.Sprintf("client closed request: %v", cerr),
			})
			return
		}
		p.stats.RecordProxied(true)
		sp.SetError(err)
		writeJSON(w, http.StatusBadGateway, map[string]interface{}{
			"error":  fmt.Sprintf("daemon %q unreachable: %v", member, err),
			"daemon": member,
		})
		return
	}
	defer resp.Body.Close()
	p.stats.RecordProxied(false)
	sp.SetStatus(resp.StatusCode)

	if resp.StatusCode == http.StatusConflict && resp.Header.Get(server.OwnerHeader) != "" {
		io.Copy(io.Discard, resp.Body)
		p.stats.RecordRefusal()
		p.refuse(w, id)
		return
	}
	// Keep the placement table warm from live traffic: a success against
	// a tenant pins it to the member that served it; a successful DELETE
	// unpins it. A pin never overrides a placement pointing elsewhere:
	// only migrations move tenants, so a conflicting entry means a
	// handoff completed while this response was in flight, and re-pinning
	// to the old source would fork the tenant on its next write.
	if resp.StatusCode < 300 && id != "" {
		var droppedStandby ReplicaState
		var dropped bool
		p.mu.Lock()
		if _, mid := p.handoff[id]; !mid {
			cur, pinned := p.placement[id]
			if !pinned || cur == member {
				if r.Method == http.MethodDelete && r.URL.Path == "/streams/"+id {
					delete(p.placement, id)
					// A deleted tenant's replica copy and promotion record go
					// with it, or the orphan standby would sit on disk until an
					// operator noticed and a recovering member would get a
					// pointless stale-delete.
					droppedStandby, dropped = p.standbys[id]
					delete(p.standbys, id)
					delete(p.promoted, id)
				} else {
					p.placement[id] = member
				}
			}
		}
		p.mu.Unlock()
		if dropped && droppedStandby.Standby != "" {
			// Best-effort, off the request path; reconciliation catches any
			// copy this misses.
			go p.deleteCopy(context.WithoutCancel(r.Context()), id, droppedStandby.Standby)
		}
	}
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	h.Set(server.OwnerHeader, member)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// memberEntry pairs a member with its fetch result during fan-outs.
type memberEntry struct {
	name string
	raw  []byte
	err  error
}

// errMemberDown marks a fan-out leg skipped because the member is
// currently probed down; it surfaces the member in the merged response's
// failed list without spending a connection timeout on it.
var errMemberDown = errors.New("member is down (health probe)")

// fanGet issues GET {url}+path on every known member concurrently. Each
// leg gets its own deadline (p.fanTimeout) so one wedged daemon — alive
// at the TCP level but never answering — degrades the merged view to a
// partial result instead of freezing /streams and /stats for everyone.
// Members currently probed down are skipped outright and reported as
// failed.
func (p *Proxy) fanGet(path string) []memberEntry {
	p.mu.RLock()
	members := make([]Member, 0, len(p.urls))
	for n, u := range p.urls {
		members = append(members, Member{Name: n, URL: u})
	}
	p.mu.RUnlock()
	sort.Slice(members, func(i, j int) bool { return members[i].Name < members[j].Name })

	out := make([]memberEntry, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		if p.prober.Down(m.Name) {
			out[i] = memberEntry{name: m.Name, err: errMemberDown}
			continue
		}
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			out[i] = memberEntry{name: m.Name}
			ctx, cancel := context.WithTimeout(context.Background(), p.fanTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.URL+path, nil)
			if err != nil {
				out[i].err = err
				return
			}
			resp, err := p.client.Do(req)
			if err != nil {
				out[i].err = err
				return
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err == nil && resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
			out[i].raw, out[i].err = raw, err
		}(i, m)
	}
	wg.Wait()
	return out
}

// listedStream is one merged listing entry: the daemon's Info plus which
// daemon reported it.
type listedStream struct {
	registry.Info
	Daemon string `json:"daemon"`
}

// handleList merges GET /streams across the fleet. Duplicate ids (a
// mid-reconciliation state: source copy not yet deleted) collapse to the
// authoritative copy — the one on the member the router routes to. Each
// daemon's legacy default stream (the one its single-stream endpoints
// alias, reported as default_stream in its listing) is namespaced as
// <member>/<id>: default streams are per-daemon state the ring never
// placed, so two daemons started with the same -default-stream would
// otherwise alias one merged entry and hide each other's counts. Stream
// ids cannot contain '/', so the namespaced form never collides with a
// routed tenant.
func (p *Proxy) handleList(w http.ResponseWriter, _ *http.Request) {
	p.stats.RecordFanout()
	entries := p.fanGet("/streams")
	merged := make(map[string]listedStream)
	var failed []string
	for _, e := range entries {
		if e.err != nil {
			failed = append(failed, e.name)
			continue
		}
		var body struct {
			Streams       []registry.Info `json:"streams"`
			DefaultStream string          `json:"default_stream"`
		}
		if err := json.Unmarshal(e.raw, &body); err != nil {
			failed = append(failed, e.name)
			continue
		}
		for _, in := range body.Streams {
			if in.ID == body.DefaultStream {
				in.ID = e.name + "/" + in.ID
				merged[in.ID] = listedStream{Info: in, Daemon: e.name}
				continue
			}
			cand := listedStream{Info: in, Daemon: e.name}
			prev, dup := merged[in.ID]
			if !dup {
				merged[in.ID] = cand
				continue
			}
			route, _ := p.route(in.ID)
			switch {
			case cand.Daemon == route:
				merged[in.ID] = cand
			case prev.Daemon == route:
			case cand.Count > prev.Count:
				merged[in.ID] = cand
			}
		}
	}
	list := make([]listedStream, 0, len(merged))
	for _, v := range merged {
		list = append(list, v)
	}
	sort.Slice(list, func(i, j int) bool { return list[i].ID < list[j].ID })
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"streams":        list,
		"total":          len(list),
		"daemons":        len(entries),
		"daemons_failed": failed,
	})
}

// handleStats merges GET /stats across the fleet: per-daemon raw stats,
// summed stream totals, and the router's own counters and ring state.
func (p *Proxy) handleStats(w http.ResponseWriter, _ *http.Request) {
	p.stats.RecordFanout()
	entries := p.fanGet("/stats")
	daemons := make(map[string]interface{}, len(entries))
	var totStreams, totResident, totHibernated int64
	for _, e := range entries {
		if e.err != nil {
			daemons[e.name] = map[string]string{"error": e.err.Error()}
			continue
		}
		daemons[e.name] = json.RawMessage(e.raw)
		var body struct {
			Streams struct {
				Total      int64 `json:"total"`
				Resident   int64 `json:"resident"`
				Hibernated int64 `json:"hibernated"`
			} `json:"streams"`
		}
		if json.Unmarshal(e.raw, &body) == nil {
			totStreams += body.Streams.Total
			totResident += body.Streams.Resident
			totHibernated += body.Streams.Hibernated
		}
	}
	p.mu.RLock()
	ringState := p.ring.State()
	members := make(map[string]string, len(p.urls))
	targets := make([]string, 0, len(p.urls))
	for n, u := range p.urls {
		members[n] = u
		targets = append(targets, u+"/metrics")
	}
	handoffs := make(map[string]migration, len(p.handoff))
	for id, mg := range p.handoff {
		handoffs[id] = mg
	}
	standbys := make(map[string]ReplicaState, len(p.standbys))
	for id, rs := range p.standbys {
		standbys[id] = rs
	}
	promoted := make(map[string]string, len(p.promoted))
	for id, m := range p.promoted {
		promoted[id] = m
	}
	p.mu.RUnlock()
	sort.Strings(targets)
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"router": map[string]interface{}{
			"ring":     ringState,
			"members":  members,
			"handoffs": handoffs,
			// standbys is the replication-lag report: per tenant, where the
			// standby copy lives, the arrival count it was last shipped at,
			// and when. health is the probe state machine's view; promoted
			// lists tenants failed over whose dead ex-owner has not yet been
			// reconciled.
			"standbys": standbys,
			"promoted": promoted,
			"health":   p.prober.Snapshot(),
			"stats":    p.stats.Snapshot(),
			"uptime_s": time.Since(p.start).Seconds(),
			// metrics_targets is the scrape inventory: every member's
			// Prometheus endpoint (the router's own is this host's
			// /metrics), so service discovery can be "curl the router".
			"metrics_targets": targets,
		},
		"totals": map[string]int64{
			"streams":    totStreams,
			"resident":   totResident,
			"hibernated": totHibernated,
		},
		"daemons": daemons,
	})
}

// handleMetrics serves the router's own Prometheus exposition: the
// routing/migration counters plus the end-to-end proxy latency
// histogram. Member expositions are not merged in — each daemon serves
// its own /metrics (listed as metrics_targets in /stats), and
// re-aggregating histograms here would double-count every scrape.
func (p *Proxy) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var e metrics.Exposition
	s := p.stats.Snapshot()
	ev := e.Counter("streamkm_router_events_total", "Router events, by type.")
	ev.Add(float64(s.Proxied), "event", "proxied")
	ev.Add(float64(s.ProxyErrors), "event", "proxy_error")
	ev.Add(float64(s.Fanouts), "event", "fanout")
	ev.Add(float64(s.HandoffRefusals), "event", "handoff_refusal")
	ev.Add(float64(s.Rebalances), "event", "rebalance")
	ev.Add(float64(s.Migrations), "event", "migration")
	ev.Add(float64(s.MigrationErrors), "event", "migration_error")
	ev.Add(float64(s.StaleCopyDeletes), "event", "stale_copy_delete")
	ev.Add(float64(s.ClientCancels), "event", "client_cancel")
	ev.Add(float64(s.Replications), "event", "replication")
	ev.Add(float64(s.ReplicationErrs), "event", "replication_error")
	ev.Add(float64(s.Promotions), "event", "promotion")
	ev.Add(float64(s.PromotionErrs), "event", "promotion_error")
	ev.Add(float64(s.MemberDowns), "event", "member_down")
	ev.Add(float64(s.MemberUps), "event", "member_up")
	e.Histogram("streamkm_router_proxy_latency_seconds",
		"End-to-end per-stream forwarding latency in seconds (routing + upstream).").
		Add(p.proxyLatency.Snapshot())

	p.mu.RLock()
	type lag struct {
		id string
		rs ReplicaState
	}
	lags := make([]lag, 0, len(p.standbys))
	for id, rs := range p.standbys {
		lags = append(lags, lag{id, rs})
	}
	p.mu.RUnlock()
	sort.Slice(lags, func(i, j int) bool { return lags[i].id < lags[j].id })
	e.Gauge("streamkm_router_members_down", "Members currently marked down by the health prober.").
		Add(float64(len(p.prober.DownMembers())))
	e.Gauge("streamkm_router_standbys", "Tenants with a designated standby copy.").
		Add(float64(len(lags)))
	if len(lags) > 0 {
		now := time.Now().Unix()
		oldest := float64(0)
		for _, l := range lags {
			if age := float64(now - l.rs.ShippedUnix); age > oldest {
				oldest = age
			}
		}
		e.Gauge("streamkm_router_replication_oldest_ship_seconds",
			"Age of the stalest standby copy — the worst-case failover loss window.").Add(oldest)
		// Per-tenant lag series, under the same cardinality cap the daemons
		// apply to tenant series: the tail beyond it stays visible through
		// the aggregates above and the /stats JSON.
		count := e.Gauge("streamkm_router_standby_shipped_count",
			"Arrival count last shipped to the tenant's standby copy.")
		age := e.Gauge("streamkm_router_standby_age_seconds",
			"Seconds since the tenant's standby copy was last shipped.")
		for i, l := range lags {
			if i >= maxStandbySeries {
				break
			}
			count.Add(float64(l.rs.ShippedCount), "stream", l.id, "standby", l.rs.Standby)
			age.Add(float64(now-l.rs.ShippedUnix), "stream", l.id, "standby", l.rs.Standby)
		}
	}
	e.Gauge("streamkm_uptime_seconds", "Seconds since process start.").Add(time.Since(p.start).Seconds())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	e.WriteTo(w)
}

// handleRing reports the full routing table — ring state, member
// addresses and health, placement, in-flight handoffs, standby
// assignments and the promoted table: everything another router needs to
// agree on placement or take over an interrupted migration. With -state
// configured this is the same data the durable file holds.
func (p *Proxy) handleRing(w http.ResponseWriter, _ *http.Request) {
	st := p.snapshotState()
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"ring":      st.Ring,
		"members":   st.Members,
		"placement": st.Placement,
		"handoffs":  st.Handoffs,
		"standbys":  st.Standbys,
		"promoted":  st.Promoted,
		"health":    p.prober.Snapshot(),
	})
}

// handleAddMember joins a daemon to the fleet (or refreshes the address
// of a known one, e.g. after a restart) and synchronously rebalances.
func (p *Proxy) handleAddMember(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]interface{}{
			"error": fmt.Sprintf("malformed member body: %v", err),
		})
		return
	}
	rep, err := p.AddMember(r.Context(), m.Name, m.URL)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]interface{}{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleUpdateMember refreshes a known daemon's address (a restart at a
// new endpoint) without changing ring membership or triggering a
// rebalance; follow with POST /cluster/rebalance to retry its handoffs.
func (p *Proxy) handleUpdateMember(w http.ResponseWriter, r *http.Request) {
	var m Member
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]interface{}{
			"error": fmt.Sprintf("malformed member body: %v", err),
		})
		return
	}
	if err := p.UpdateMemberURL(m.Name, m.URL); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errNotMember) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]interface{}{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, m)
}

// handleRemoveMember drains a daemon out of the fleet: its tenants
// migrate to the surviving members before the response returns (tenants
// that cannot move — e.g. their daemon is unreachable — stay pending and
// are listed in the report).
func (p *Proxy) handleRemoveMember(w http.ResponseWriter, r *http.Request) {
	rep, err := p.RemoveMember(r.Context(), r.PathValue("name"))
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errNotMember) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, map[string]interface{}{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleRebalance re-runs reconciliation: retries pending migrations and
// cleans up stale copies. Operators hit it after restarting a crashed
// daemon.
func (p *Proxy) handleRebalance(w http.ResponseWriter, r *http.Request) {
	rep, err := p.Rebalance(r.Context())
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]interface{}{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// errNotMember distinguishes membership errors for the HTTP layer.
var errNotMember = errors.New("ring: not a member")
