package ring

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestReplicationShipsStandby checks the replication pass end to end on
// a healthy fleet: every placed tenant gets a standby copy on another
// member, the copy is installed in the non-serving standby state (reads
// and writes against it are refused with 409 + owner hint), and the
// replication lag — shipped arrival count and wall time — surfaces in
// /stats and /metrics.
func TestReplicationShipsStandby(t *testing.T) {
	a := newTestDaemon(t, "a", 50)
	b := newTestDaemon(t, "b", 50)
	p, ts := newTestProxy(t, a, b)
	client := &http.Client{Timeout: 10 * time.Second}

	pts := tenantPoints(1, 60)
	ingestRetry(t, client, ts.URL+"/streams/rep-t/ingest", pts, testDeadline)

	rep := p.ReplicateOnce(context.Background())
	if rep.Shipped != 1 || rep.Failed != 0 {
		t.Fatalf("replicate report = %+v, want 1 shipped", rep)
	}

	// The copy must exist on the non-owner, flagged standby.
	p.mu.RLock()
	owner := p.placement["rep-t"]
	rs := p.standbys["rep-t"]
	p.mu.RUnlock()
	if owner == "" || rs.Standby == "" || rs.Standby == owner {
		t.Fatalf("owner=%q standby=%+v: want distinct members", owner, rs)
	}
	if rs.ShippedCount != 60 {
		t.Fatalf("shipped count = %d, want 60", rs.ShippedCount)
	}
	standbyDaemon := a
	if rs.Standby == "b" {
		standbyDaemon = b
	}
	found := false
	for _, in := range standbyDaemon.reg.List() {
		if in.ID == "rep-t" {
			found = true
			if !in.Standby || !in.Detached {
				t.Fatalf("standby copy info = %+v, want standby+detached", in)
			}
		}
	}
	if !found {
		t.Fatalf("no standby copy of rep-t on %s", rs.Standby)
	}

	// The standby copy itself must refuse to serve: hitting the standby
	// daemon directly (bypassing the router) gets the 409 + owner hint the
	// detached state answers with.
	resp, err := client.Get(standbyDaemon.ts.URL + "/streams/rep-t/centers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("read against standby copy: status %d, want 409", resp.StatusCode)
	}
	if resp.Header.Get("X-Streamkm-Owner") == "" {
		t.Fatal("standby refusal missing owner hint header")
	}

	// Lag in /stats...
	_, stats := getJSON(t, client, ts.URL+"/stats")
	router := stats["router"].(map[string]interface{})
	standbys := router["standbys"].(map[string]interface{})
	entry, ok := standbys["rep-t"].(map[string]interface{})
	if !ok {
		t.Fatalf("no rep-t in /stats standbys: %v", standbys)
	}
	if int64(entry["shipped_count"].(float64)) != 60 {
		t.Fatalf("stats shipped_count = %v, want 60", entry["shipped_count"])
	}
	// ...and in /metrics.
	mresp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<20)
	n, _ := mresp.Body.Read(raw)
	mresp.Body.Close()
	exposition := string(raw[:n])
	for _, want := range []string{
		"streamkm_router_standbys 1",
		`streamkm_router_standby_shipped_count{stream="rep-t",standby="` + rs.Standby + `"} 60`,
		`event="replication"`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// A second pass refreshes the same copy in place (no ErrExists from
	// the overwrite) and advances the lag watermark.
	ingestRetry(t, client, ts.URL+"/streams/rep-t/ingest", tenantPoints(2, 40), testDeadline)
	rep = p.ReplicateOnce(context.Background())
	if rep.Shipped != 1 || rep.Failed != 0 {
		t.Fatalf("second replicate report = %+v, want 1 shipped", rep)
	}
	p.mu.RLock()
	rs = p.standbys["rep-t"]
	p.mu.RUnlock()
	if rs.ShippedCount != 100 {
		t.Fatalf("refreshed shipped count = %d, want 100", rs.ShippedCount)
	}
}

// TestFailoverPromotesStandbyAfterHardKill is the kill-without-warning
// acceptance test: a three-daemon fleet with replicated standbys loses
// one member to a hard kill (no final checkpoint, exactly like kill -9),
// the router's health probes cross the fail threshold, and every tenant
// placed on the dead member is automatically promoted onto its standby —
// with zero acknowledged points lost up to the last replication ship,
// loss beyond it bounded by one replication interval, and writes flowing
// again after promotion. When the member returns, reconciliation deletes
// its stale pre-promotion copies instead of letting their counts win.
func TestFailoverPromotesStandbyAfterHardKill(t *testing.T) {
	daemons := map[string]*testDaemon{
		"a": newTestDaemon(t, "a", 50),
		"b": newTestDaemon(t, "b", 50),
		"c": newTestDaemon(t, "c", 50),
	}
	p, ts := newTestProxyCfg(t, ProxyConfig{
		FailThreshold: 2,
		ProbeTimeout:  2 * time.Second,
	}, daemons["a"], daemons["b"], daemons["c"])
	client := &http.Client{Timeout: 10 * time.Second}
	ctx := context.Background()

	const tenants = 6
	id := func(i int) string { return fmt.Sprintf("ha-t%d", i) }
	for i := 0; i < tenants; i++ {
		ingestRetry(t, client, ts.URL+"/streams/"+id(i)+"/ingest", tenantPoints(i, 60), testDeadline)
	}
	if rep := p.ReplicateOnce(ctx); rep.Shipped != tenants || rep.Failed != 0 {
		t.Fatalf("first replication = %+v, want %d shipped", rep, tenants)
	}
	// More traffic, then a second ship: the standbys now carry count 80.
	for i := 0; i < tenants; i++ {
		ingestRetry(t, client, ts.URL+"/streams/"+id(i)+"/ingest", tenantPoints(100+i, 20), testDeadline)
	}
	if rep := p.ReplicateOnce(ctx); rep.Shipped != tenants || rep.Failed != 0 {
		t.Fatalf("second replication = %+v, want %d shipped", rep, tenants)
	}
	const shippedCount = 80

	// Checkpoint everything (so the victim's disk holds pre-kill copies —
	// the stale state recovery must NOT resurrect), then ingest a tail
	// that no replication pass ships: the traffic inside the loss window.
	for _, d := range daemons {
		if err := d.reg.CheckpointAll(); err != nil {
			t.Fatal(err)
		}
	}
	const tail = 15
	for i := 0; i < tenants; i++ {
		ingestRetry(t, client, ts.URL+"/streams/"+id(i)+"/ingest", tenantPoints(200+i, tail), testDeadline)
	}

	// Pick a victim that holds at least one tenant and note who sits
	// where before the crash.
	st := p.snapshotState()
	victim := ""
	var victimTenants, survivors []string
	for i := 0; i < tenants; i++ {
		m, ok := st.Placement[id(i)]
		if !ok {
			t.Fatalf("tenant %s has no placement", id(i))
		}
		if victim == "" {
			victim = m
		}
		if m == victim {
			victimTenants = append(victimTenants, id(i))
		} else {
			survivors = append(survivors, id(i))
		}
	}
	if len(victimTenants) == 0 {
		t.Fatal("no tenants on victim")
	}
	expectedStandby := make(map[string]string)
	for _, tid := range victimTenants {
		rs := st.Standbys[tid]
		if rs.Standby == "" || rs.Standby == victim {
			t.Fatalf("tenant %s standby = %+v before kill", tid, rs)
		}
		expectedStandby[tid] = rs.Standby
	}

	daemons[victim].killHard(t)

	// Two failed probe rounds cross the threshold; the second one runs
	// the failover synchronously.
	p.ProbeOnce(ctx)
	downs, _ := p.ProbeOnce(ctx)
	if downs != 1 || !p.prober.Down(victim) {
		t.Fatalf("downs=%d Down(%s)=%v after threshold", downs, victim, p.prober.Down(victim))
	}

	snap := p.Stats()
	if snap.Promotions < int64(len(victimTenants)) || snap.PromotionErrs != 0 {
		t.Fatalf("promotions=%d (errs=%d), want %d clean", snap.Promotions, snap.PromotionErrs, len(victimTenants))
	}

	// Every victim tenant now serves from its standby with exactly the
	// last-shipped count: zero acks lost among the replicated points, the
	// tail (one replication interval of traffic) is the entire loss.
	for _, tid := range victimTenants {
		member, inHandoff := p.route(tid)
		if inHandoff {
			t.Fatalf("tenant %s still frozen after promotion", tid)
		}
		if want := expectedStandby[tid]; member != want {
			t.Fatalf("tenant %s routed to %s, want standby %s", tid, member, want)
		}
		count, _ := queryCenters(t, client, ts.URL, tid)
		if count != shippedCount {
			t.Fatalf("tenant %s count after promotion = %d, want %d (shipped watermark)", tid, count, shippedCount)
		}
	}
	// Survivors keep every acked point including the tail.
	for _, tid := range survivors {
		if count, _ := queryCenters(t, client, ts.URL, tid); count != shippedCount+tail {
			t.Fatalf("survivor %s count = %d, want %d", tid, count, shippedCount+tail)
		}
	}

	// Writes flow again — onto the promoted copies.
	for _, tid := range victimTenants {
		ingestRetry(t, client, ts.URL+"/streams/"+tid+"/ingest", tenantPoints(300, 10), testDeadline)
		if count, _ := queryCenters(t, client, ts.URL, tid); count != shippedCount+10 {
			t.Fatalf("tenant %s count after post-promotion writes = %d, want %d", tid, count, shippedCount+10)
		}
	}

	// The merged fan-outs must degrade, not freeze: the dead member is
	// reported failed, every tenant still listed exactly once.
	_, listing := getJSON(t, client, ts.URL+"/streams")
	failedList := fmt.Sprintf("%v", listing["daemons_failed"])
	if !strings.Contains(failedList, victim) {
		t.Fatalf("daemons_failed = %s, want %s in it", failedList, victim)
	}
	if got := int(listing["total"].(float64)); got != tenants {
		t.Fatalf("merged listing total = %d, want %d", got, tenants)
	}

	// A replication pass on the degraded fleet re-establishes standbys
	// for the promoted tenants on the surviving members.
	if rep := p.ReplicateOnce(ctx); rep.Failed != 0 {
		t.Fatalf("replication on degraded fleet failed: %+v", rep)
	}
	p.mu.RLock()
	for _, tid := range victimTenants {
		rs := p.standbys[tid]
		if rs.Standby == "" || rs.Standby == victim {
			t.Errorf("tenant %s standby after failover = %+v", tid, rs)
		}
	}
	p.mu.RUnlock()

	// Recovery: the member reboots from its (stale) data dir at a new
	// address. Its pre-promotion copies carry the checkpoint counts, but
	// promotion is authoritative — reconciliation must delete them, not
	// prefer them, and the promoted tenants keep their post-failover
	// history.
	daemons[victim].boot(t, 50)
	if err := p.UpdateMemberURL(victim, daemons[victim].ts.URL); err != nil {
		t.Fatal(err)
	}
	if _, ups := p.ProbeOnce(ctx); ups != 1 {
		t.Fatal("recovered member did not transition up")
	}
	if _, err := p.Rebalance(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tenants; i++ {
		count, _ := queryCenters(t, client, ts.URL, id(i))
		var want int64 = shippedCount + tail
		for _, tid := range victimTenants {
			if tid == id(i) {
				want = shippedCount + 10 // promoted history: shipped + post-failover writes
			}
		}
		if count != want {
			t.Fatalf("tenant %s count after recovery+rebalance = %d, want %d", id(i), count, want)
		}
	}
	// The promoted table drains once the stale copies are reconciled.
	p.mu.RLock()
	promotedLeft := len(p.promoted)
	p.mu.RUnlock()
	if promotedLeft != 0 {
		t.Fatalf("%d promoted entries left after reconciliation", promotedLeft)
	}
}

// TestRouterStateRoundTrip proves the durable handoff table does its
// one crucial job: a migration abandoned between detach and install by a
// dying router is completed by a second router built from the same state
// file — the frozen tenant thaws on its ring owner with its full
// history, instead of refusing writes forever.
func TestRouterStateRoundTrip(t *testing.T) {
	a := newTestDaemon(t, "a", 50)
	b := newTestDaemon(t, "b", 50)
	statePath := filepath.Join(t.TempDir(), "router-state.json")
	client := &http.Client{Timeout: 10 * time.Second}

	p1, ts1 := newTestProxyCfg(t, ProxyConfig{StatePath: statePath}, a, b)

	// Plant the tenant on the member the ring does NOT choose, so a
	// rebalance must migrate it.
	owner, _ := p1.Ring().Owner("rt-t")
	holderDaemon := a
	if owner == "a" {
		holderDaemon = b
	}
	ingestRetry(t, client, holderDaemon.ts.URL+"/streams/rt-t/ingest", tenantPoints(3, 70), testDeadline)

	// Kill the router mid-migration: after the detach succeeds, every
	// further upstream call — the snapshot fetch AND the abort's
	// reattach — fails, exactly as if the router process died. The
	// handoff entry persists to the state file in its frozen-pending
	// shape.
	p1.afterDetach = func(tenant, from string) {
		p1.client = &http.Client{
			Transport: roundTripperFunc(func(*http.Request) (*http.Response, error) {
				return nil, fmt.Errorf("router died mid-migration")
			}),
		}
	}
	if _, err := p1.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts1.Close()

	// The tenant is frozen on the source: detached, refusing traffic.
	resp, err := client.Get(holderDaemon.ts.URL + "/streams/rt-t/centers")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("abandoned tenant: status %d, want 409 (frozen)", resp.StatusCode)
	}

	// A second router from the same state file must know about the
	// interrupted handoff before any traffic or listing.
	p2, ts2 := newTestProxyCfg(t, ProxyConfig{StatePath: statePath}, a, b)
	p2.mu.RLock()
	mg, knows := p2.handoff["rt-t"]
	p2.mu.RUnlock()
	if !knows {
		t.Fatal("second router loaded state without the interrupted handoff")
	}
	if mg.From == "" || mg.To == "" || mg.Err == "" {
		t.Fatalf("handoff entry lost its shape: %+v", mg)
	}
	// Mid-handoff writes are refused by the successor too — the freeze
	// carried over, so no write could fork the tenant in the gap.
	resp, err = client.Post(ts2.URL+"/streams/rt-t/ingest", "application/x-ndjson",
		strings.NewReader(ndjsonBody(tenantPoints(4, 1))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write against inherited handoff: status %d, want 503", resp.StatusCode)
	}

	if _, err := p2.Rebalance(context.Background()); err != nil {
		t.Fatal(err)
	}
	member, inHandoff := p2.route("rt-t")
	if inHandoff || member != owner {
		t.Fatalf("after successor rebalance: member=%s inHandoff=%v, want %s settled", member, inHandoff, owner)
	}
	count, _ := queryCenters(t, client, ts2.URL, "rt-t")
	if count != 70 {
		t.Fatalf("tenant count after completed migration = %d, want 70", count)
	}
	// And the write path thaws.
	ingestRetry(t, client, ts2.URL+"/streams/rt-t/ingest", tenantPoints(5, 5), testDeadline)
	if count, _ := queryCenters(t, client, ts2.URL, "rt-t"); count != 75 {
		t.Fatalf("count after thaw = %d, want 75", count)
	}
}

// roundTripperFunc adapts a function to http.RoundTripper.
type roundTripperFunc func(*http.Request) (*http.Response, error)

func (f roundTripperFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

// TestFanoutTimeout wedges one member — accepts connections, never
// answers — and checks the merged views degrade to partial results
// within the per-member fan-out deadline instead of freezing.
func TestFanoutTimeout(t *testing.T) {
	a := newTestDaemon(t, "a", 50)
	release := make(chan struct{})
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hold every request until the test ends
	}))
	defer wedged.Close()
	defer close(release)

	p, err := NewProxy(ProxyConfig{
		Members: []Member{
			{Name: "a", URL: a.ts.URL},
			{Name: "wedge", URL: wedged.URL},
		},
		Client:     &http.Client{}, // no client-level timeout: the fan deadline must do it
		FanTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 10 * time.Second}

	ingestRetry(t, client, a.ts.URL+"/streams/fan-t/ingest", tenantPoints(6, 10), testDeadline)

	t0 := time.Now()
	_, listing := getJSON(t, client, ts.URL+"/streams")
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("merged listing took %v; the wedged member froze the fan-out", elapsed)
	}
	if got := fmt.Sprintf("%v", listing["daemons_failed"]); !strings.Contains(got, "wedge") {
		t.Fatalf("daemons_failed = %v, want wedge reported", got)
	}
	if got := int(listing["total"].(float64)); got != 1 {
		t.Fatalf("partial listing total = %d, want 1", got)
	}
	// /stats degrades the same way.
	t0 = time.Now()
	_, stats := getJSON(t, client, ts.URL+"/stats")
	if elapsed := time.Since(t0); elapsed > 5*time.Second {
		t.Fatalf("merged stats took %v", elapsed)
	}
	if _, ok := stats["daemons"].(map[string]interface{})["wedge"].(map[string]interface{})["error"]; !ok {
		t.Fatal("wedged member not annotated in merged stats")
	}
}

// TestClientCancelNotBadGateway checks the forward() classification fix:
// a client that hangs up mid-request is accounted as a client cancel,
// not as a daemon-unreachable proxy error — the distinction that keeps
// disconnect storms from looking like (or ever becoming) fleet trouble.
func TestClientCancelNotBadGateway(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(10 * time.Second):
		}
	}))
	defer slow.Close()

	p, err := NewProxy(ProxyConfig{
		Members: []Member{{Name: "slow", URL: slow.URL}},
		Client:  &http.Client{},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	// The client gives up after 100ms — long before the daemon answers.
	impatient := &http.Client{Timeout: 100 * time.Millisecond}
	if _, err := impatient.Get(ts.URL + "/streams/cc-t/centers"); err == nil {
		t.Fatal("impatient client unexpectedly got an answer")
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := p.Stats()
		if s.ClientCancels == 1 {
			if s.ProxyErrors != 0 {
				t.Fatalf("client cancel also counted as proxy error: %+v", s)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client cancel never recorded: %+v", s)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
