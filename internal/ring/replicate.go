package ring

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/url"
	"sort"
	"time"

	"streamkm/internal/trace"
)

// ReplicaState is one tenant's standby assignment and replication lag:
// which member holds the standby copy, and how far behind the owner that
// copy was when last shipped. The loss bound on failover is everything
// the owner accepted after ShippedCount — at most one replication
// interval of traffic.
type ReplicaState struct {
	Standby      string `json:"standby"`
	ShippedCount int64  `json:"shipped_count"`
	ShippedUnix  int64  `json:"shipped_unix"`
}

// ReplicateReport summarizes one replication pass.
type ReplicateReport struct {
	Shipped int `json:"shipped"`
	Failed  int `json:"failed"`
	Skipped int `json:"skipped"`
}

// ReplicateOnce runs one asynchronous standby-replication pass: for
// every placed tenant it designates a standby (the next distinct ring
// member after the owner that is up), fetches the owner's snapshot, and
// installs it on the standby in the non-serving standby state. Tenants
// mid-handoff, tenants on down owners, and tenants with no eligible
// standby (single-member fleet) are skipped; a standby that moved (ring
// change) just gets the next ship at the new member, and the old copy is
// cleaned up as an orphan by reconciliation.
//
// Replication is asynchronous by design: it never blocks or slows the
// ingest path, and the durability it buys is bounded staleness — on
// failover the promoted copy is at most one replication interval behind.
func (p *Proxy) ReplicateOnce(ctx context.Context) ReplicateReport {
	var rep ReplicateReport

	p.mu.RLock()
	ringNow := p.ring
	tenants := make([]string, 0, len(p.placement))
	owners := make(map[string]string, len(p.placement))
	for id, m := range p.placement {
		if _, mid := p.handoff[id]; mid {
			rep.Skipped++
			continue
		}
		tenants = append(tenants, id)
		owners[id] = m
	}
	p.mu.RUnlock()
	sort.Strings(tenants)

	changed := false
	for _, id := range tenants {
		if ctx.Err() != nil {
			break
		}
		owner := owners[id]
		if p.prober.Down(owner) {
			rep.Skipped++
			continue
		}
		standby := ""
		for _, m := range ringNow.Owners(id, ringNow.Len()) {
			if m != owner && !p.prober.Down(m) && p.memberURL(m) != "" {
				standby = m
				break
			}
		}
		if standby == "" {
			rep.Skipped++
			continue
		}
		if err := p.ship(ctx, id, owner, standby); err != nil {
			rep.Failed++
		} else {
			rep.Shipped++
		}
		changed = true
	}
	if changed {
		p.saveState()
	}
	return rep
}

// ship copies one tenant's snapshot from its owner onto its standby.
func (p *Proxy) ship(ctx context.Context, id, owner, standby string) error {
	ownerURL, standbyURL := p.memberURL(owner), p.memberURL(standby)

	sp := p.tr.StartSpan("replicate", trace.TraceID{}, trace.SpanID{})
	sp.SetStream(id)
	ctx = trace.NewContext(ctx, sp)
	endShip := sp.StartStage("replicate-ship")

	snap, _, err := p.do(ctx, http.MethodGet, ownerURL+"/streams/"+id+"/snapshot", nil)
	if err == nil {
		var raw []byte
		raw, _, err = p.do(ctx, http.MethodPut,
			standbyURL+"/streams/"+id+"/standby?owner="+url.QueryEscape(ownerURL), snap)
		if err == nil {
			var body struct {
				Count int64 `json:"count"`
			}
			json.Unmarshal(raw, &body)
			p.mu.Lock()
			p.standbys[id] = ReplicaState{
				Standby:      standby,
				ShippedCount: body.Count,
				ShippedUnix:  time.Now().Unix(),
			}
			p.mu.Unlock()
		}
	}
	endShip()
	sp.SetError(err)
	data := sp.End()
	p.stats.RecordReplication(err != nil)
	if err != nil {
		p.logger.LogAttrs(context.Background(), slog.LevelWarn, "standby replication failed",
			slog.String("tenant", id),
			slog.String("owner", owner),
			slog.String("standby", standby),
			slog.String("trace_id", data.TraceID),
			slog.String("error", err.Error()))
	}
	return err
}

// StartReplicationLoop ships standby snapshots every interval until ctx
// is cancelled. The daemon wires this to -replicate-interval.
func (p *Proxy) StartReplicationLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.ReplicateOnce(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}
