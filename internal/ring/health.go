package ring

import (
	"context"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"streamkm/internal/trace"
)

// Prober is the health state machine behind the router's automatic
// failover: one consecutive-failure counter per member, a threshold, and
// a down set. It holds no sockets and makes no requests itself — the
// proxy feeds it probe outcomes — so the flap → threshold → down →
// recover transitions are testable in isolation. Safe for concurrent
// use.
//
// Transitions are edge-triggered: Observe reports wentDown exactly once
// when the fail counter crosses the threshold, and wentUp exactly once
// when a down member probes healthy again. A failure streak shorter than
// the threshold (a flap) never changes state.
type Prober struct {
	mu        sync.Mutex
	threshold int
	fails     map[string]int
	down      map[string]bool
	lastOK    map[string]int64 // unix nanos of the last healthy probe
}

// DefaultFailThreshold is how many consecutive probe failures mark a
// member down when the configuration leaves it zero.
const DefaultFailThreshold = 3

// NewProber builds a prober; threshold <= 0 selects DefaultFailThreshold.
func NewProber(threshold int) *Prober {
	if threshold <= 0 {
		threshold = DefaultFailThreshold
	}
	return &Prober{
		threshold: threshold,
		fails:     make(map[string]int),
		down:      make(map[string]bool),
		lastOK:    make(map[string]int64),
	}
}

// Observe feeds one probe outcome for member, returning whether this
// observation transitioned the member down or up.
func (pr *Prober) Observe(member string, ok bool, at time.Time) (wentDown, wentUp bool) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	if ok {
		pr.fails[member] = 0
		pr.lastOK[member] = at.UnixNano()
		if pr.down[member] {
			delete(pr.down, member)
			return false, true
		}
		return false, false
	}
	pr.fails[member]++
	if !pr.down[member] && pr.fails[member] >= pr.threshold {
		pr.down[member] = true
		return true, false
	}
	return false, false
}

// Down reports whether member is currently marked down.
func (pr *Prober) Down(member string) bool {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return pr.down[member]
}

// DownMembers returns the sorted names currently marked down.
func (pr *Prober) DownMembers() []string {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	out := make([]string, 0, len(pr.down))
	for m := range pr.down {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Forget drops all state for a member that left the fleet.
func (pr *Prober) Forget(member string) {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	delete(pr.fails, member)
	delete(pr.down, member)
	delete(pr.lastOK, member)
}

// MemberHealth is one member's probe state, as served under GET /ring
// and in /stats.
type MemberHealth struct {
	Down             bool  `json:"down"`
	ConsecutiveFails int   `json:"consecutive_fails,omitempty"`
	LastOKUnix       int64 `json:"last_ok_unix,omitempty"`
}

// Snapshot captures every known member's probe state.
func (pr *Prober) Snapshot() map[string]MemberHealth {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	out := make(map[string]MemberHealth)
	for m, n := range pr.fails {
		h := out[m]
		h.ConsecutiveFails = n
		out[m] = h
	}
	for m := range pr.down {
		h := out[m]
		h.Down = true
		out[m] = h
	}
	for m, t := range pr.lastOK {
		h := out[m]
		h.LastOKUnix = t / 1e9
		out[m] = h
	}
	return out
}

// ProbeOnce runs one health-probe round: GET /healthz on every member
// (bounded by the probe timeout), feed the outcomes to the prober, and —
// for members that just crossed the threshold — fail their tenants over
// to the standbys. Members that just recovered get a rebalance kick so
// reconciliation (stale pre-promotion copies, tenants migrating back to
// their ring owner) happens without an operator. Returns how many
// members went down and up this round.
func (p *Proxy) ProbeOnce(ctx context.Context) (downs, ups int) {
	p.mu.RLock()
	members := make([]Member, 0, len(p.urls))
	for n := range p.urls {
		if p.ring.Has(n) {
			members = append(members, Member{Name: n, URL: p.urls[n]})
		}
	}
	p.mu.RUnlock()

	type outcome struct {
		name string
		ok   bool
	}
	results := make([]outcome, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, m Member) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, p.probeTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(pctx, http.MethodGet, m.URL+"/healthz", nil)
			ok := false
			if err == nil {
				resp, rerr := p.client.Do(req)
				if rerr == nil {
					resp.Body.Close()
					ok = resp.StatusCode == http.StatusOK
				}
			}
			results[i] = outcome{name: m.Name, ok: ok}
		}(i, m)
	}
	wg.Wait()

	now := time.Now()
	var recovered []string
	for _, r := range results {
		wentDown, wentUp := p.prober.Observe(r.name, r.ok, now)
		switch {
		case wentDown:
			downs++
			p.stats.RecordMemberDown()
			p.logger.LogAttrs(context.Background(), slog.LevelError, "member probed down",
				slog.String("member", r.name))
			p.failover(ctx, r.name)
		case wentUp:
			ups++
			p.stats.RecordMemberUp()
			p.logger.LogAttrs(context.Background(), slog.LevelInfo, "member recovered",
				slog.String("member", r.name))
			recovered = append(recovered, r.name)
		}
	}
	if len(recovered) > 0 {
		// Reconcile in the background: Rebalance takes its own pass lock
		// and must not stall the probe loop.
		go p.Rebalance(context.WithoutCancel(ctx))
	}
	return downs, ups
}

// failover promotes every tenant placed on the dead member onto its
// standby copy: the tenant enters the write-refusal window (the same
// handoff freeze a migration uses, so no write can fork it), the standby
// daemon reattaches its replicated copy, placement repoints, and the old
// member is recorded in the promoted table so its stale pre-promotion
// copy is deleted when it comes back. Tenants without a standby (single
// member fleet, or the first replication pass never ran) stay where they
// are and keep failing until the member returns. A new standby for the
// promoted tenant is established by the next replication pass.
func (p *Proxy) failover(ctx context.Context, dead string) {
	p.mu.RLock()
	type job struct{ tenant, standby string }
	var jobs []job
	for id, member := range p.placement {
		if member != dead {
			continue
		}
		if _, mid := p.handoff[id]; mid {
			continue // already frozen mid-migration; rebalance owns it
		}
		rep, ok := p.standbys[id]
		if !ok || rep.Standby == "" || rep.Standby == dead {
			continue
		}
		jobs = append(jobs, job{tenant: id, standby: rep.Standby})
	}
	p.mu.RUnlock()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].tenant < jobs[j].tenant })

	for _, j := range jobs {
		if ctx.Err() != nil {
			return
		}
		if p.prober.Down(j.standby) {
			continue // standby died too; nothing serveable to promote
		}
		p.promote(ctx, j.tenant, dead, j.standby)
	}
	p.saveState()
}

// promote fails one tenant over from dead onto its standby.
func (p *Proxy) promote(ctx context.Context, id, dead, standby string) {
	url := p.memberURL(standby)
	if url == "" {
		return
	}
	// Freeze writes first: between here and the placement repoint the
	// tenant must not accept a write that could land on (or lazily fork
	// toward) the dead member.
	p.mu.Lock()
	p.handoff[id] = migration{From: dead, To: standby}
	p.mu.Unlock()

	sp := p.tr.StartSpan("promote", trace.TraceID{}, trace.SpanID{})
	sp.SetStream(id)
	t0 := time.Now()
	_, _, err := p.do(trace.NewContext(ctx, sp), http.MethodPost, url+"/streams/"+id+"/reattach", nil)
	sp.RecordStage("standby-promote", time.Since(t0))
	sp.SetError(err)
	data := sp.End()
	if err != nil {
		p.stats.RecordPromotion(true)
		// Keep the freeze: a failed promotion leaves the tenant refusing
		// writes (retriable) rather than forked. The next probe round (the
		// member is still down and placement still names it) retries.
		p.mu.Lock()
		p.handoff[id] = migration{From: dead, To: standby, Err: err.Error()}
		p.mu.Unlock()
		p.logger.LogAttrs(context.Background(), slog.LevelError, "standby promotion failed",
			slog.String("tenant", id),
			slog.String("dead", dead),
			slog.String("standby", standby),
			slog.String("trace_id", data.TraceID),
			slog.String("error", err.Error()))
		return
	}
	p.stats.RecordPromotion(false)
	p.mu.Lock()
	p.placement[id] = standby
	delete(p.handoff, id)
	delete(p.standbys, id)
	// Remember where the stale pre-promotion copy sits: when that member
	// recovers, reconciliation deletes its copy before anything else can
	// mistake the (possibly higher-count) pre-failover state for the
	// authoritative one. Promotion is authoritative by contract — the
	// accepted loss is bounded by one replication interval.
	p.promoted[id] = dead
	p.mu.Unlock()
	p.logger.LogAttrs(context.Background(), slog.LevelInfo, "tenant promoted to standby",
		slog.String("tenant", id),
		slog.String("dead", dead),
		slog.String("standby", standby),
		slog.String("trace_id", data.TraceID))
}

// StartHealthLoop probes the fleet every interval until ctx is
// cancelled. The daemon wires this to -health-interval.
func (p *Proxy) StartHealthLoop(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		return
	}
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				p.ProbeOnce(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}
