package ring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"time"

	"streamkm/internal/registry"
	"streamkm/internal/trace"
)

// RebalanceReport summarizes one reconciliation pass.
type RebalanceReport struct {
	RingVersion uint64 `json:"ring_version"`
	Tenants     int    `json:"tenants_seen"`
	// Moved lists tenants whose state was handed to their ring owner.
	Moved []string `json:"moved,omitempty"`
	// StaleDeleted lists tenant copies removed from non-owners after the
	// owner's copy was confirmed (crash-interrupted handoffs leave them).
	StaleDeleted []string `json:"stale_copies_deleted,omitempty"`
	// Pending maps tenants whose migration failed (source unreachable,
	// install refused, ...) to the error. Writes to them stay refused
	// until a later rebalance succeeds, so the failure can not fork the
	// tenant's history.
	Pending map[string]string `json:"pending,omitempty"`
	// ListFailed names daemons whose stream listing was unreachable; their
	// tenants keep their previous placement.
	ListFailed []string `json:"list_failed,omitempty"`
}

// AddMember joins a daemon to the fleet and rebalances, moving the
// tenants the ring now assigns to it. Re-adding a known name just
// refreshes its URL (a restarted daemon at a new address) — ownership
// does not move, because the ring hashes names, not addresses.
func (p *Proxy) AddMember(ctx context.Context, name, url string) (RebalanceReport, error) {
	if name == "" || url == "" {
		return RebalanceReport{}, fmt.Errorf("ring: member needs both name and url")
	}
	p.mu.Lock()
	if !p.ring.Has(name) {
		nr, err := p.ring.WithMember(name)
		if err != nil {
			p.mu.Unlock()
			return RebalanceReport{}, err
		}
		p.ring = nr
	}
	p.urls[name] = strings.TrimRight(url, "/")
	p.mu.Unlock()
	return p.Rebalance(ctx)
}

// UpdateMemberURL refreshes the address of a known daemon — joined or
// draining — without touching ring membership: the endpoint a restarted
// daemon (same stable name, possibly a new address) reports in at before
// a rebalance retries its pending handoffs.
func (p *Proxy) UpdateMemberURL(name, url string) error {
	if name == "" || url == "" {
		return fmt.Errorf("ring: member needs both name and url")
	}
	p.mu.Lock()
	if _, ok := p.urls[name]; !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", errNotMember, name)
	}
	p.urls[name] = strings.TrimRight(url, "/")
	p.mu.Unlock()
	p.saveState()
	return nil
}

// RemoveMember drains a daemon out of the fleet: the ring drops it and
// the rebalance below hands every tenant it holds to the new owners. Its
// address is kept (it is the migration source) until it holds nothing.
func (p *Proxy) RemoveMember(ctx context.Context, name string) (RebalanceReport, error) {
	p.mu.Lock()
	if !p.ring.Has(name) {
		p.mu.Unlock()
		return RebalanceReport{}, fmt.Errorf("%w: %q", errNotMember, name)
	}
	nr, err := p.ring.WithoutMember(name)
	if err != nil {
		p.mu.Unlock()
		return RebalanceReport{}, err
	}
	p.ring = nr
	p.mu.Unlock()
	return p.Rebalance(ctx)
}

// holder is one daemon's copy of a tenant, as seen in a listing.
type holder struct {
	member   string
	count    int64
	detached bool
	// standby marks a replication target copy: an intentional duplicate,
	// never authoritative, never counted as a stale leftover while it
	// matches the tenant's current standby assignment.
	standby bool
}

// Rebalance reconciles actual tenant placement with ring ownership: it
// lists every known daemon, and for each tenant whose authoritative copy
// (highest count; ties prefer the ring owner) is not on its ring owner,
// runs the handoff protocol — detach on the source (freezing writes to
// that tenant only), snapshot download, install on the owner, delete the
// source copy. Duplicate copies left by earlier crashes are deleted once
// the owner's copy is confirmed. Failed migrations stay pending: the
// tenant keeps refusing writes rather than forking, and the next
// rebalance retries. One pass runs at a time.
func (p *Proxy) Rebalance(ctx context.Context) (RebalanceReport, error) {
	p.rebalanceMu.Lock()
	defer p.rebalanceMu.Unlock()
	p.stats.RecordRebalance()

	p.mu.RLock()
	ringNow := p.ring
	p.mu.RUnlock()
	rep := RebalanceReport{RingVersion: ringNow.Version(), Pending: map[string]string{}}

	holders := make(map[string][]holder)
	for _, e := range p.fanGet("/streams") {
		if e.err != nil {
			rep.ListFailed = append(rep.ListFailed, e.name)
			continue
		}
		var body struct {
			Streams []registry.Info `json:"streams"`
		}
		if err := json.Unmarshal(e.raw, &body); err != nil {
			rep.ListFailed = append(rep.ListFailed, e.name)
			continue
		}
		for _, in := range body.Streams {
			holders[in.ID] = append(holders[in.ID], holder{member: e.name, count: in.Count, detached: in.Detached, standby: in.Standby})
		}
	}
	allListed := len(rep.ListFailed) == 0
	// Tenants with a pending migration whose source daemon could not be
	// listed still need a retry attempt, so they surface even when absent
	// from every listing.
	p.mu.RLock()
	for id, mg := range p.handoff {
		if _, ok := holders[id]; !ok {
			holders[id] = append(holders[id], holder{member: mg.From, count: -1})
		}
	}
	p.mu.RUnlock()

	tenants := make([]string, 0, len(holders))
	for id := range holders {
		tenants = append(tenants, id)
	}
	sort.Strings(tenants)
	rep.Tenants = len(tenants)

	p.mu.RLock()
	promotedNow := make(map[string]string, len(p.promoted))
	for id, m := range p.promoted {
		promotedNow[id] = m
	}
	p.mu.RUnlock()

	for _, id := range tenants {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		desired, ok := ringNow.Owner(id)
		if !ok {
			continue // empty ring: nowhere to place anything
		}
		hs := holders[id]

		// A failed-over tenant's pre-promotion copy never enters
		// authoritative selection: it can out-count the promoted copy by up
		// to one replication interval, and picking it would silently undo
		// every write accepted since the promotion. Promotion is
		// authoritative by contract, so the old copy is dropped from
		// consideration unconditionally and deleted as soon as its member
		// answers again.
		if old, wasPromoted := promotedNow[id]; wasPromoted {
			staleSeen := false
			kept := make([]holder, 0, len(hs))
			for _, h := range hs {
				if h.member == old {
					staleSeen = true
					continue
				}
				kept = append(kept, h)
			}
			hs = kept
			settled := false
			if staleSeen && !p.prober.Down(old) {
				if err := p.deleteCopy(ctx, id, old); err == nil {
					p.stats.RecordStaleDelete()
					rep.StaleDeleted = append(rep.StaleDeleted, id+"@"+old)
					settled = true
				}
			} else if !staleSeen && allListed {
				settled = true // the stale copy is already gone
			}
			if settled {
				p.mu.Lock()
				delete(p.promoted, id)
				p.mu.Unlock()
			}
			if len(hs) == 0 {
				continue // only the stale copy existed; nothing to place
			}
		}

		// Standby replicas are intentional duplicates — never candidates
		// for the authoritative copy.
		auths := make([]holder, 0, len(hs))
		for _, h := range hs {
			if !h.standby {
				auths = append(auths, h)
			}
		}
		if len(auths) == 0 {
			// Every surviving copy is a standby replica: the authoritative
			// copy is gone (tenant deleted while replication lagged, or a
			// standby assignment that moved). Orphans are deleted only when
			// the whole fleet answered the listing — a down owner must not
			// look like a deleted tenant.
			if allListed {
				for _, h := range hs {
					if p.prober.Down(h.member) {
						continue
					}
					if err := p.deleteCopy(ctx, id, h.member); err == nil {
						p.stats.RecordStaleDelete()
						rep.StaleDeleted = append(rep.StaleDeleted, id+"@"+h.member)
					}
				}
				p.mu.Lock()
				delete(p.standbys, id)
				p.mu.Unlock()
			}
			continue
		}
		sort.Slice(auths, func(i, j int) bool {
			if auths[i].count != auths[j].count {
				return auths[i].count > auths[j].count
			}
			if (auths[i].member == desired) != (auths[j].member == desired) {
				return auths[i].member == desired
			}
			return auths[i].member < auths[j].member
		})
		auth := auths[0]

		if auth.member != desired {
			// Migrations through a down endpoint can only burn a timeout and
			// fail; defer them until the prober sees both sides again.
			if p.prober.Down(auth.member) || p.prober.Down(desired) {
				rep.Pending[id] = fmt.Sprintf("deferred: %s or %s is down", auth.member, desired)
				continue
			}
			if err := p.migrate(ctx, id, auth.member, desired, hs); err != nil {
				rep.Pending[id] = err.Error()
				continue // keep every copy; retry next pass
			}
			rep.Moved = append(rep.Moved, id)
		} else {
			// Already on its ring owner. A copy stranded in the detached
			// state (a router died between detach and install, and a later
			// pass — or a fresh router — now finds the ring pointing back
			// at it) must be reattached, or it refuses traffic forever.
			if auth.detached {
				url := p.memberURL(desired)
				cs := p.tr.StartSpan("migrate:reattach-stranded", trace.TraceID{}, trace.SpanID{})
				cs.SetStream(id)
				_, _, err := p.do(trace.NewContext(ctx, cs), http.MethodPost, url+"/streams/"+id+"/reattach", nil)
				cs.SetError(err)
				data := cs.End()
				if err != nil {
					p.logger.LogAttrs(context.Background(), slog.LevelError, "stranded detach reattach failed",
						slog.String("tenant", id),
						slog.String("member", desired),
						slog.String("trace_id", data.TraceID),
						slog.String("error", err.Error()))
					rep.Pending[id] = fmt.Sprintf("reattach on %s: %v", desired, err)
					continue
				}
			}
			p.mu.Lock()
			p.placement[id] = desired
			delete(p.handoff, id)
			p.mu.Unlock()
		}
		// The owner's copy is confirmed; stale duplicates elsewhere go. The
		// tenant's current standby replica is not stale — it is the failover
		// copy — but a standby left on some other member (the assignment
		// moved with the ring) is an orphan.
		p.mu.RLock()
		curStandby := p.standbys[id].Standby
		p.mu.RUnlock()
		for _, h := range hs {
			if h.member == desired || h.member == auth.member {
				continue
			}
			if h.standby && h.member == curStandby {
				continue
			}
			if p.prober.Down(h.member) {
				continue
			}
			if err := p.deleteCopy(ctx, id, h.member); err == nil {
				p.stats.RecordStaleDelete()
				rep.StaleDeleted = append(rep.StaleDeleted, id+"@"+h.member)
			}
		}
	}
	// Entries for tenants no listing knows anymore (deleted fleet-wide)
	// have nothing left to reconcile; drop them once the whole fleet
	// answered, so the tables can't grow without bound.
	if allListed {
		p.mu.Lock()
		for id := range p.promoted {
			if _, ok := holders[id]; !ok {
				delete(p.promoted, id)
			}
		}
		for id := range p.standbys {
			if _, ok := holders[id]; !ok {
				delete(p.standbys, id)
			}
		}
		p.mu.Unlock()
	}
	if len(rep.Pending) == 0 {
		rep.Pending = nil
	}
	p.pruneDeparted()
	p.saveState()
	return rep, nil
}

// pruneDeparted forgets the addresses of drained members: not in the
// ring, holding no tenant placement, no pending handoff from them.
func (p *Proxy) pruneDeparted() {
	p.mu.Lock()
	var pruned []string
	inUse := make(map[string]bool)
	for _, m := range p.placement {
		inUse[m] = true
	}
	for _, mg := range p.handoff {
		inUse[mg.From] = true
		inUse[mg.To] = true
	}
	for _, rs := range p.standbys {
		inUse[rs.Standby] = true
	}
	for _, m := range p.promoted {
		inUse[m] = true // still owes us a stale-copy delete
	}
	for name := range p.urls {
		if !p.ring.Has(name) && !inUse[name] {
			delete(p.urls, name)
			pruned = append(pruned, name)
		}
	}
	p.mu.Unlock()
	for _, name := range pruned {
		p.prober.Forget(name)
	}
}

// migrate runs one tenant handoff from -> to. On any failure it tries to
// reattach the source (lifting the freeze); if even that fails the
// tenant stays frozen and pending — correctness over availability: a
// refused write is retriable, a forked tenant is not.
func (p *Proxy) migrate(ctx context.Context, id, from, to string, hs []holder) error {
	fromURL, toURL := p.memberURL(from), p.memberURL(to)
	if fromURL == "" || toURL == "" {
		return fmt.Errorf("no address for %q or %q", from, to)
	}
	p.mu.Lock()
	p.handoff[id] = migration{From: from, To: to}
	p.mu.Unlock()
	p.stats.RecordMigration(false)

	// The whole handoff is one trace: a root "migrate" span plus one
	// child span per protocol step, each carrying the trace id on its
	// upstream request — a stuck handoff is inspectable from the
	// router's /debug/traces and correlatable with the daemons'.
	root := p.tr.StartSpan("migrate", trace.TraceID{}, trace.SpanID{})
	root.SetStream(id)
	rootTID, rootSID := root.IDs()
	step := func(ctx context.Context, name string, run func(ctx context.Context) error) error {
		cs := p.tr.StartSpan("migrate:"+name, rootTID, rootSID)
		cs.SetStream(id)
		t0 := time.Now()
		err := run(trace.NewContext(ctx, cs))
		cs.SetError(err)
		cs.End()
		root.RecordStage(name, time.Since(t0))
		return err
	}

	fail := func(err error) error {
		p.stats.RecordMigration(true)
		// Abort: lift the freeze so the tenant serves from the source
		// again. If the source is gone too, the handoff entry stays and
		// writes keep being refused until a later rebalance succeeds.
		// The reattach must not ride the request context: when the
		// migration failed precisely because that context was cancelled
		// (operator's rebalance call timed out), the unfreeze still has
		// to go out.
		abortCtx := context.WithoutCancel(ctx)
		rerr := step(abortCtx, "reattach", func(ctx context.Context) error {
			_, _, err := p.do(ctx, http.MethodPost, fromURL+"/streams/"+id+"/reattach", nil)
			return err
		})
		frozen := rerr != nil
		if !frozen {
			p.mu.Lock()
			delete(p.handoff, id)
			p.placement[id] = from
			p.mu.Unlock()
		} else {
			p.mu.Lock()
			p.handoff[id] = migration{From: from, To: to, Err: err.Error()}
			p.mu.Unlock()
		}
		root.SetError(err)
		root.End()
		// Persist the failure shape: a frozen-pending handoff entry is
		// exactly what a successor router must learn about to finish or
		// unfreeze the tenant.
		p.saveState()
		// Partial-migration failures are the hardest incidents to
		// reconstruct; log every coordinate of the abort as structured
		// attrs. frozen_pending means even the reattach failed: the
		// tenant stays refusing writes until a later rebalance.
		p.logger.LogAttrs(context.Background(), slog.LevelError, "tenant migration failed",
			slog.String("tenant", id),
			slog.String("from", from),
			slog.String("to", to),
			slog.String("trace_id", rootTID.String()),
			slog.Bool("frozen_pending", frozen),
			slog.String("error", err.Error()))
		return err
	}

	body, _ := json.Marshal(map[string]string{"owner": toURL})
	var status int
	err := step(ctx, "detach", func(ctx context.Context) error {
		var err error
		_, status, err = p.do(ctx, http.MethodPost, fromURL+"/streams/"+id+"/detach", body)
		return err
	})
	if status == http.StatusNotFound {
		// The tenant left the source between the listing and now (a racing
		// delete, or an earlier pass finished the move). Nothing to carry;
		// route by ring again and let the next listing settle it.
		p.mu.Lock()
		delete(p.handoff, id)
		delete(p.placement, id)
		p.mu.Unlock()
		err := fmt.Errorf("tenant vanished from %s before handoff", from)
		root.SetError(err)
		root.End()
		return err
	}
	if err != nil {
		return fail(fmt.Errorf("detach on %s: %w", from, err))
	}
	if p.afterDetach != nil {
		p.afterDetach(id, from)
	}
	var snap []byte
	err = step(ctx, "snapshot-fetch", func(ctx context.Context) error {
		var err error
		snap, _, err = p.do(ctx, http.MethodGet, fromURL+"/streams/"+id+"/snapshot", nil)
		return err
	})
	if err != nil {
		return fail(fmt.Errorf("snapshot from %s: %w", from, err))
	}
	// A stale copy on the destination (count-dominated by the source's,
	// or a crashed earlier install) blocks the install; clear it first.
	for _, h := range hs {
		if h.member == to {
			err := step(ctx, "clear-stale", func(ctx context.Context) error {
				return p.deleteCopy(ctx, id, to)
			})
			if err != nil {
				return fail(fmt.Errorf("clear stale copy on %s: %w", to, err))
			}
			p.stats.RecordStaleDelete()
		}
	}
	err = step(ctx, "install", func(ctx context.Context) error {
		_, _, err := p.do(ctx, http.MethodPut, toURL+"/streams/"+id+"/snapshot", snap)
		return err
	})
	if err != nil {
		return fail(fmt.Errorf("install on %s: %w", to, err))
	}
	// The destination owns the state now; route there and unfreeze. The
	// standby assignment is dropped with the move: the old replica may sit
	// on the member that just became the owner, and the next replication
	// pass re-designates and re-ships.
	p.mu.Lock()
	p.placement[id] = to
	delete(p.handoff, id)
	delete(p.standbys, id)
	p.mu.Unlock()
	p.saveState()
	// Best-effort cleanup of the source copy: if it fails, the detach
	// tombstone keeps the copy refusing traffic and the next rebalance
	// deletes it as a stale duplicate.
	err = step(ctx, "delete-source", func(ctx context.Context) error {
		return p.deleteCopy(ctx, id, from)
	})
	if err == nil {
		p.stats.RecordStaleDelete()
	}
	root.End()
	p.logger.LogAttrs(context.Background(), slog.LevelInfo, "tenant migrated",
		slog.String("tenant", id),
		slog.String("from", from),
		slog.String("to", to),
		slog.String("trace_id", rootTID.String()))
	return nil
}

// deleteCopy removes one member's copy of a tenant.
func (p *Proxy) deleteCopy(ctx context.Context, id, member string) error {
	url := p.memberURL(member)
	if url == "" {
		return fmt.Errorf("no address for member %q", member)
	}
	_, status, err := p.do(ctx, http.MethodDelete, url+"/streams/"+id, nil)
	if status == http.StatusNotFound {
		return nil // already gone: the goal state
	}
	return err
}

// do issues one upstream request and returns the response body and
// status. err is non-nil for transport failures and non-2xx statuses
// alike (status 0 means the daemon was unreachable), so callers that
// don't care about the specific status can just check err.
func (p *Proxy) do(ctx context.Context, method, url string, body []byte) ([]byte, int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, 0, err
	}
	if tp := trace.FromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set(trace.Header, tp)
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, resp.StatusCode, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		msg := strings.TrimSpace(string(raw))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return raw, resp.StatusCode, fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, msg)
	}
	return raw, resp.StatusCode, nil
}
