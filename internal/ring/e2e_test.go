package ring

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestE2EKillDaemonMidHandoff is the fault-injection headline: a 3-daemon
// fleet behind the router replays a multi-tenant workload; one daemon is
// drained and killed (SIGTERM-equivalent: final checkpoint, then gone)
// exactly in the middle of a tenant handoff — after the detach froze the
// tenant, before its snapshot was fetched. The router must leave every
// affected tenant frozen-but-unforked (writes 503, no lazy re-creation on
// the new owner), and after the daemon restarts from its data directory
// and a rebalance retries the pending handoffs, the fleet must hold every
// acknowledged point exactly once, with per-tenant clustering cost
// equivalent to a single-daemon replay of the same points. Run with
// -race.
func TestE2EKillDaemonMidHandoff(t *testing.T) {
	const (
		tenants = 12
		phase1  = 300
		phase2  = 100
		batch   = 50
		maxRes  = 4 // small resident cap: hibernation churns during replay
		// Cost-equivalence slack vs an independent single-daemon replay.
		// Wider than the 2x the restart suites use between two served
		// queries, because the fleet side adds re-seeded query randomness
		// across many hibernate/restore/migrate round trips; a genuine
		// failure here (clusters merged after a lost migration) is off by
		// orders of magnitude, not a factor.
		equivSlack = 3.0
	)
	a := newTestDaemon(t, "a", maxRes)
	b := newTestDaemon(t, "b", maxRes)
	c := newTestDaemon(t, "c", maxRes)
	p, ts := newTestProxy(t, a, b, c)
	client := ts.Client()
	tenantID := func(i int) string { return fmt.Sprintf("wl-%02d", i) }

	// Phase 1: concurrent replay through the router, queries interleaved.
	var wg sync.WaitGroup
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			pts := tenantPoints(i, phase1)
			url := ts.URL + "/streams/" + tenantID(i) + "/ingest"
			for off := 0; off < len(pts); off += batch {
				ingestRetry(t, client, url, pts[off:off+batch], testDeadline)
				if off%(4*batch) == 0 {
					resp, err := client.Get(ts.URL + "/streams/" + tenantID(i) + "/centers")
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	wg.Wait()

	list := mergedListing(t, client, ts.URL)
	if len(list) != tenants {
		t.Fatalf("fleet lists %d tenants, want %d", len(list), tenants)
	}
	for i := 0; i < tenants; i++ {
		if got := int64(list[tenantID(i)]["count"].(float64)); got != phase1 {
			t.Fatalf("tenant %s count %d after replay, want %d", tenantID(i), got, phase1)
		}
	}
	cTenants := map[string]bool{}
	for _, id := range directStreamIDs(t, c) {
		cTenants[id] = true
	}
	if len(cTenants) == 0 {
		t.Fatal("daemon c holds no tenants; the fault injection would be vacuous")
	}

	// Drain c, killing it mid-handoff: the hook fires after the first
	// detach succeeded and before the snapshot download, i.e. inside the
	// handoff window.
	var killOnce sync.Once
	var frozenTenant string
	p.afterDetach = func(id, from string) {
		killOnce.Do(func() {
			frozenTenant = id
			c.killGraceful(t)
		})
	}
	rep, err := p.RemoveMember(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	p.afterDetach = nil
	if len(rep.Pending) != len(cTenants) {
		t.Fatalf("drain of a dead daemon: %d pending, want all %d of its tenants (%+v)",
			len(rep.Pending), len(cTenants), rep)
	}
	for id := range rep.Pending {
		if !cTenants[id] {
			t.Fatalf("tenant %s went pending but never lived on c", id)
		}
	}
	if frozenTenant == "" || !cTenants[frozenTenant] {
		t.Fatalf("kill hook fired for %q, not one of c's tenants", frozenTenant)
	}

	// The frozen tenants refuse writes — they are not lazily re-created
	// on the new owner, which would fork their history.
	resp, err := client.Post(ts.URL+"/streams/"+frozenTenant+"/ingest",
		"application/x-ndjson", strings.NewReader("[1,2]\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("write to mid-handoff tenant: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("refusal carries no Retry-After")
	}
	for _, d := range []*testDaemon{a, b} {
		for _, id := range directStreamIDs(t, d) {
			if cTenants[id] {
				t.Fatalf("tenant %s appeared on %s while its handoff is pending (forked)", id, d.name)
			}
		}
	}

	// Unaffected tenants keep ingesting and answering through the whole
	// outage.
	for i := 0; i < tenants; i++ {
		id := tenantID(i)
		if cTenants[id] {
			continue
		}
		ingestRetry(t, client, ts.URL+"/streams/"+id+"/ingest",
			tenantPoints(i, phase1+phase2)[phase1:phase1+batch], testDeadline)
	}

	// Restart c from its data directory at a fresh address, report the
	// new endpoint, and retry the pending handoffs.
	c.boot(t, maxRes)
	if err := p.UpdateMemberURL("c", c.ts.URL); err != nil {
		t.Fatal(err)
	}
	rep, err = p.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 {
		t.Fatalf("rebalance after restart left pending migrations: %+v", rep.Pending)
	}
	moved := map[string]bool{}
	for _, id := range rep.Moved {
		moved[id] = true
	}
	for id := range cTenants {
		if !moved[id] {
			t.Fatalf("tenant %s was not handed off the restarted daemon (report %+v)", id, rep)
		}
	}
	if got := len(directStreamIDs(t, c)); got != 0 {
		t.Fatalf("drained daemon still holds %d tenants after rebalance", got)
	}

	// Phase 2: finish the workload — including the tenants that were
	// frozen during the outage — through the router.
	for i := 0; i < tenants; i++ {
		id := tenantID(i)
		pts := tenantPoints(i, phase1+phase2)
		start := phase1
		if !cTenants[id] {
			start = phase1 + batch // their first phase-2 batch landed during the outage
		}
		for off := start; off < len(pts); off += batch {
			end := off + batch
			if end > len(pts) {
				end = len(pts)
			}
			ingestRetry(t, client, ts.URL+"/streams/"+id+"/ingest", pts[off:end], testDeadline)
		}
	}

	// Zero point loss: every tenant holds exactly the acknowledged count,
	// exactly once across the surviving fleet.
	list = mergedListing(t, client, ts.URL)
	var fleetTotal int64
	for i := 0; i < tenants; i++ {
		id := tenantID(i)
		got := int64(list[id]["count"].(float64))
		if got != phase1+phase2 {
			t.Errorf("tenant %s final count %d, want %d", id, got, phase1+phase2)
		}
		fleetTotal += got
	}
	if want := int64(tenants * (phase1 + phase2)); fleetTotal != want {
		t.Errorf("fleet total %d, want %d (point loss or duplication)", fleetTotal, want)
	}
	seen := map[string]string{}
	for _, d := range []*testDaemon{a, b} {
		for _, id := range directStreamIDs(t, d) {
			if prev, dup := seen[id]; dup {
				t.Fatalf("tenant %s present on both %s and %s", id, prev, d.name)
			}
			seen[id] = d.name
		}
	}
	if len(seen) != tenants {
		t.Fatalf("surviving fleet holds %d tenants, want %d", len(seen), tenants)
	}

	// Cost equivalence: each tenant's served clustering matches a
	// single-daemon replay of the same points within the backend e2e
	// suite's tolerance.
	for i := 0; i < tenants; i++ {
		id := tenantID(i)
		pts := tenantPoints(i, phase1+phase2)
		count, centers := queryCentersRefresh(t, client, ts.URL, id)
		if count != phase1+phase2 {
			t.Errorf("tenant %s query count %d, want %d", id, count, phase1+phase2)
			continue
		}
		got := kmeansCost(pts, centers)
		ref := referenceCost(t, pts)
		if got > equivSlack*ref || ref > equivSlack*got {
			t.Errorf("tenant %s cost %v vs single-daemon reference %v (slack %vx)", id, got, ref, equivSlack)
		}
	}

	// The router's own accounting saw the outage: refusals and migration
	// failures are visible in /stats.
	st := p.Stats()
	if st.Migrations == 0 || st.MigrationErrors == 0 {
		t.Errorf("router stats recorded no failed migrations: %+v", st)
	}
	if st.HandoffRefusals == 0 {
		t.Errorf("router stats recorded no handoff refusals: %+v", st)
	}
}

// TestE2ERollingRestartKeepsPlacement: a daemon restarting at a new
// address (same stable name) keeps all its tenants — the ring hashes
// names, so an address change must move nothing.
func TestE2ERollingRestartKeepsPlacement(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	p, ts := newTestProxy(t, a, b)
	client := ts.Client()

	const tenants = 8
	for i := 0; i < tenants; i++ {
		ingestRetry(t, client, ts.URL+fmt.Sprintf("/streams/rr-%d/ingest", i),
			tenantPoints(i, 80), testDeadline)
	}
	before := map[string]string{}
	for id, e := range mergedListing(t, client, ts.URL) {
		before[id] = e["daemon"].(string)
	}

	b.killGraceful(t)
	b.boot(t, 0)
	rep, err := p.AddMember(context.Background(), "b", b.ts.URL) // re-join refreshes the URL
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Moved) != 0 || len(rep.Pending) != 0 {
		t.Fatalf("address-only restart moved tenants: %+v", rep)
	}
	after := mergedListing(t, client, ts.URL)
	if len(after) != tenants {
		t.Fatalf("listing after restart has %d tenants, want %d", len(after), tenants)
	}
	for id, e := range after {
		if e["daemon"].(string) != before[id] {
			t.Fatalf("tenant %s moved %s -> %s on an address-only restart", id, before[id], e["daemon"])
		}
		if e["count"].(float64) != 80 {
			t.Fatalf("tenant %s count %v after restart, want 80", id, e["count"])
		}
	}
	// Traffic still flows to the restarted daemon.
	for i := 0; i < tenants; i++ {
		count, _ := queryCenters(t, client, ts.URL, fmt.Sprintf("rr-%d", i))
		if count != 80 {
			t.Fatalf("rr-%d count %d after restart, want 80", i, count)
		}
	}
}
