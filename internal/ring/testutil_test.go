package ring

import (
	"encoding/json"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"streamkm"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/server"
)

// testDaemon is one in-process daemon-equivalent: a streamkm-wired
// registry over its own data directory behind the multi-tenant HTTP
// layer — the same pairing cmd/streamkmd builds.
type testDaemon struct {
	name string
	dir  string
	reg  *registry.Registry
	ts   *httptest.Server
}

func streamkmRegistryAt(t testing.TB, dir string, maxResident int) *registry.Registry {
	t.Helper()
	base := streamkm.Config{BucketSize: 20, Seed: 7}
	cfg := registry.Config{
		DataDir:     dir,
		MaxResident: maxResident,
		Default:     registry.StreamConfig{Backend: "concurrent", Algo: "CC", K: 3},
		New: func(_ string, sc registry.StreamConfig) (registry.Backend, error) {
			return streamkm.Open(streamkm.SpecFromStreamConfig(sc, 2), base)
		},
		Restore: func(_ string, want registry.StreamConfig, r io.Reader) (registry.Backend, registry.StreamConfig, error) {
			b, err := streamkm.Restore(streamkm.SpecFromStreamConfig(want, 0), r, streamkm.Config{Seed: base.Seed})
			if err != nil {
				return nil, registry.StreamConfig{}, err
			}
			return b, b.Spec().StreamConfig(), nil
		},
		Peek: func(r io.Reader) (registry.StreamConfig, int64, error) {
			m, err := persist.PeekBackend(r)
			if err != nil {
				return registry.StreamConfig{}, 0, err
			}
			return registry.StreamConfig{
				Backend: m.Type, Algo: m.Algo, K: m.K, Dim: m.Dim,
				HalfLife: m.HalfLife, WindowN: m.WindowN,
				PointsPerSec: m.PointsPerSec, BytesPerSec: m.BytesPerSec,
				MaxResidentBytes: m.MaxResidentBytes,
			}, m.Count, nil
		},
	}
	reg, err := registry.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func newTestDaemon(t testing.TB, name string, maxResident int) *testDaemon {
	t.Helper()
	dir := t.TempDir()
	d := &testDaemon{name: name, dir: dir}
	d.boot(t, maxResident)
	return d
}

// boot (re)creates the daemon's registry and server from its data dir.
func (d *testDaemon) boot(t testing.TB, maxResident int) {
	t.Helper()
	d.reg = streamkmRegistryAt(t, d.dir, maxResident)
	d.ts = httptest.NewServer(server.NewMulti(d.reg, server.MultiConfig{MaxBatch: 100}).Handler())
	t.Cleanup(d.ts.Close)
}

// killGraceful is the SIGTERM path: flush every resident stream to disk
// (streamkmd's final checkpoint), then stop serving and discard the
// process state.
func (d *testDaemon) killGraceful(t testing.TB) {
	t.Helper()
	if err := d.reg.CheckpointAll(); err != nil {
		t.Errorf("final checkpoint on %s: %v", d.name, err)
	}
	d.ts.CloseClientConnections()
	d.ts.Close()
}

// newTestProxy wires a router over the daemons and serves it.
func newTestProxy(t testing.TB, daemons ...*testDaemon) (*Proxy, *httptest.Server) {
	t.Helper()
	return newTestProxyCfg(t, ProxyConfig{}, daemons...)
}

// newTestProxyCfg is newTestProxy with a ProxyConfig override; Members
// and (when unset) Client are filled in from the daemons.
func newTestProxyCfg(t testing.TB, cfg ProxyConfig, daemons ...*testDaemon) (*Proxy, *httptest.Server) {
	t.Helper()
	members := make([]Member, len(daemons))
	for i, d := range daemons {
		members[i] = Member{Name: d.name, URL: d.ts.URL}
	}
	cfg.Members = members
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	p, err := NewProxy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	t.Cleanup(ts.Close)
	return p, ts
}

// killHard is the kill -9 path: stop serving instantly with NO final
// checkpoint — in-memory state the last checkpoint missed is lost, as it
// would be on a real crash.
func (d *testDaemon) killHard(t testing.TB) {
	t.Helper()
	d.ts.CloseClientConnections()
	d.ts.Close()
}

// tenantPoints generates tenant i's well-separated 3-cluster mixture,
// deterministically, so reference clusterers can replay it exactly.
func tenantPoints(i, n int) [][]float64 {
	rng := rand.New(rand.NewSource(int64(7000 + i)))
	base := float64(i * 40)
	centers := [][]float64{{base, 0}, {base + 400, 0}, {base, 400}}
	out := make([][]float64, n)
	for j := range out {
		c := centers[rng.Intn(len(centers))]
		out[j] = []float64{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

func ndjsonBody(pts [][]float64) string {
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, p := range pts {
		enc.Encode(p)
	}
	return b.String()
}

// ingestRetry posts one batch through the router, retrying transient
// refusals (503 mid-handoff, 502 daemon momentarily unreachable, 409
// detached) — the client contract the router's write-refusal window
// assumes. Fails the test after the deadline.
func ingestRetry(t testing.TB, client *http.Client, url string, pts [][]float64, deadline time.Duration) {
	t.Helper()
	var lastStatus int
	var lastBody string
	for start := time.Now(); time.Since(start) < deadline; {
		resp, err := client.Post(url, "application/x-ndjson", strings.NewReader(ndjsonBody(pts)))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				return
			case http.StatusServiceUnavailable, http.StatusBadGateway, http.StatusConflict:
				lastStatus, lastBody = resp.StatusCode, string(raw)
			default:
				t.Fatalf("ingest %s: status %d: %s", url, resp.StatusCode, raw)
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("ingest %s: still refused after %v (last status %d: %s)", url, deadline, lastStatus, lastBody)
}

// getJSON fetches and decodes a JSON response.
func getJSON(t testing.TB, client *http.Client, url string) (int, map[string]interface{}) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var m map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("GET %s: not JSON: %v", url, err)
	}
	return resp.StatusCode, m
}

// queryCenters fetches a tenant's centers through any base URL and
// returns (count, centers).
func queryCenters(t testing.TB, client *http.Client, base, id string) (int64, [][]float64) {
	t.Helper()
	return centersAt(t, client, base+"/streams/"+id+"/centers", id)
}

// queryCentersRefresh forces a fresh recomputation (no cached centers) —
// what cost-equivalence comparisons should measure.
func queryCentersRefresh(t testing.TB, client *http.Client, base, id string) (int64, [][]float64) {
	t.Helper()
	return centersAt(t, client, base+"/streams/"+id+"/centers?refresh=1", id)
}

func centersAt(t testing.TB, client *http.Client, url, id string) (int64, [][]float64) {
	t.Helper()
	status, m := getJSON(t, client, url)
	if status != http.StatusOK {
		t.Fatalf("centers %s: status %d: %v", id, status, m)
	}
	raw := m["centers"].([]interface{})
	centers := make([][]float64, len(raw))
	for i, rc := range raw {
		cs := rc.([]interface{})
		centers[i] = make([]float64, len(cs))
		for j, x := range cs {
			centers[i][j] = x.(float64)
		}
	}
	return int64(m["count"].(float64)), centers
}

// kmeansCost is the summed squared distance of pts to their nearest
// center — the equivalence metric of the recovery test suites.
func kmeansCost(pts, centers [][]float64) float64 {
	var sum float64
	for _, p := range pts {
		best := math.Inf(1)
		for _, c := range centers {
			var d float64
			for i := range p {
				diff := p[i] - c[i]
				d += diff * diff
			}
			if d < best {
				best = d
			}
		}
		sum += best
	}
	return sum
}

// referenceCost clusters pts on a fresh single-process backend with the
// test fleet's spec and returns the holdout cost — the single-daemon
// replay the acceptance criterion compares the fleet against.
func referenceCost(t testing.TB, pts [][]float64) float64 {
	t.Helper()
	b, err := streamkm.Open(streamkm.BackendSpec{Type: streamkm.BackendConcurrent, Algo: "CC", K: 3, Shards: 2},
		streamkm.Config{BucketSize: 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b.AddBatch(pts)
	return kmeansCost(pts, b.Centers())
}

// mergedListing fetches the router's merged GET /streams and indexes it
// by tenant id.
func mergedListing(t testing.TB, client *http.Client, routerURL string) map[string]map[string]interface{} {
	t.Helper()
	status, m := getJSON(t, client, routerURL+"/streams")
	if status != http.StatusOK {
		t.Fatalf("merged listing status %d: %v", status, m)
	}
	out := map[string]map[string]interface{}{}
	for _, raw := range m["streams"].([]interface{}) {
		e := raw.(map[string]interface{})
		out[e["id"].(string)] = e
	}
	return out
}

// directStreamIDs lists the stream ids one daemon reports, bypassing the
// router.
func directStreamIDs(t testing.TB, d *testDaemon) []string {
	t.Helper()
	var ids []string
	for _, in := range d.reg.List() {
		ids = append(ids, in.ID)
	}
	return ids
}

// testDeadline bounds each retried client operation in the router tests.
const testDeadline = 15 * time.Second
