package ring

import (
	"encoding/json"
	"fmt"
	"testing"
)

func tenantIDs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%04d", i)
	}
	return out
}

func TestRingDeterministicAcrossRebuilds(t *testing.T) {
	r1, err := New(64, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	// Same members in a different order: identical ownership.
	r2, err := New(64, "c", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tenantIDs(500) {
		o1, ok1 := r1.Owner(id)
		o2, ok2 := r2.Owner(id)
		if !ok1 || !ok2 || o1 != o2 {
			t.Fatalf("owner(%s): %q/%v vs %q/%v", id, o1, ok1, o2, ok2)
		}
	}
}

func TestRingEmptyAndErrors(t *testing.T) {
	r, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Replicas() != DefaultReplicas {
		t.Fatalf("replicas %d, want default %d", r.Replicas(), DefaultReplicas)
	}
	if _, ok := r.Owner("x"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if _, err := New(8, "a", "a"); err == nil {
		t.Fatal("duplicate member accepted")
	}
	if _, err := New(8, ""); err == nil {
		t.Fatal("empty member name accepted")
	}
	if _, err := r.WithoutMember("ghost"); err == nil {
		t.Fatal("removing a non-member succeeded")
	}
	r2, err := r.WithMember("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.WithMember("a"); err == nil {
		t.Fatal("double add succeeded")
	}
}

func TestRingAddOnlyStealsForNewMember(t *testing.T) {
	r1, err := New(128, "a", "b", "c")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r1.WithMember("d")
	if err != nil {
		t.Fatal(err)
	}
	tenants := tenantIDs(2000)
	moved := 0
	for _, id := range tenants {
		o1, _ := r1.Owner(id)
		o2, _ := r2.Owner(id)
		if o1 != o2 {
			moved++
			if o2 != "d" {
				t.Fatalf("tenant %s moved %s -> %s, not to the new member", id, o1, o2)
			}
		}
	}
	if moved == 0 {
		t.Fatal("new member took nothing")
	}
	// Expected share is tenants/4; allow generous concentration slack.
	if bound := 2*len(tenants)/r2.Len() + 8; moved > bound {
		t.Fatalf("adding one member moved %d of %d tenants (> %d)", moved, len(tenants), bound)
	}
	// Removing it again restores the original assignment exactly.
	r3, err := r2.WithoutMember("d")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range tenants {
		o1, _ := r1.Owner(id)
		o3, _ := r3.Owner(id)
		if o1 != o3 {
			t.Fatalf("tenant %s: remove did not restore owner (%s vs %s)", id, o3, o1)
		}
	}
	if r3.Version() != r1.Version()+2 {
		t.Fatalf("version %d, want %d", r3.Version(), r1.Version()+2)
	}
}

func TestRingStateRoundTrip(t *testing.T) {
	r1, err := New(32, "alpha", "beta", "gamma")
	if err != nil {
		t.Fatal(err)
	}
	r1, err = r1.WithMember("delta")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r1.State())
	if err != nil {
		t.Fatal(err)
	}
	var st State
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	r2, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Version() != r1.Version() || r2.Replicas() != r1.Replicas() || r2.Len() != r1.Len() {
		t.Fatalf("state round trip: %+v vs %+v", r2.State(), r1.State())
	}
	for _, id := range tenantIDs(500) {
		o1, _ := r1.Owner(id)
		o2, _ := r2.Owner(id)
		if o1 != o2 {
			t.Fatalf("owner(%s) diverged after round trip: %s vs %s", id, o2, o1)
		}
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"d0", "d1", "d2", "d3", "d4"}
	r, err := New(0, members...)
	if err != nil {
		t.Fatal(err)
	}
	load := map[string]int{}
	n := 10000
	for _, id := range tenantIDs(n) {
		o, _ := r.Owner(id)
		load[o]++
	}
	for _, m := range members {
		if share := float64(load[m]) * float64(len(members)) / float64(n); share < 0.5 || share > 1.6 {
			t.Fatalf("member %s load share %.2fx of fair (%d of %d)", m, share, load[m], n)
		}
	}
}
