package ring

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"

	"streamkm/internal/metrics"
)

// TestProxyRoutingAndMergedViews: per-stream requests land on one
// consistent daemon (reported via X-Streamkm-Owner), the merged listing
// sees every tenant exactly once, and the merged stats sum the fleet.
func TestProxyRoutingAndMergedViews(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	p, ts := newTestProxy(t, a, b)
	client := ts.Client()

	const tenants = 10
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t-%02d", i)
		ingestRetry(t, client, ts.URL+"/streams/"+id+"/ingest", tenantPoints(i, 120), testDeadline)
	}

	// Every tenant resolves through the router; the serving daemon is
	// reported and stable across requests, and matches ring ownership.
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("t-%02d", i)
		resp, err := client.Get(ts.URL + "/streams/" + id + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		owner := resp.Header.Get("X-Streamkm-Owner")
		want, _ := p.Ring().Owner(id)
		if resp.StatusCode != http.StatusOK || owner != want {
			t.Fatalf("%s: status %d served by %q, ring owner %q", id, resp.StatusCode, owner, want)
		}
	}

	// Merged listing: every tenant once, counts intact, daemon annotated.
	list := mergedListing(t, client, ts.URL)
	if len(list) != tenants {
		t.Fatalf("merged listing has %d tenants, want %d", len(list), tenants)
	}
	byDaemon := map[string]int{}
	for id, e := range list {
		if e["count"].(float64) != 120 {
			t.Fatalf("%s merged count %v, want 120", id, e["count"])
		}
		byDaemon[e["daemon"].(string)]++
	}
	if byDaemon["a"] == 0 || byDaemon["b"] == 0 {
		t.Fatalf("tenants did not spread across daemons: %v", byDaemon)
	}
	if byDaemon["a"]+byDaemon["b"] != tenants {
		t.Fatalf("listing names unknown daemons: %v", byDaemon)
	}

	// Merged stats: totals sum the fleet; the router section carries ring
	// state and counters.
	status, st := getJSON(t, client, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("merged stats status %d", status)
	}
	totals := st["totals"].(map[string]interface{})
	if totals["streams"].(float64) != tenants {
		t.Fatalf("merged stats totals %v, want %d streams", totals, tenants)
	}
	router := st["router"].(map[string]interface{})
	if router["ring"].(map[string]interface{})["members"] == nil {
		t.Fatalf("router stats carry no ring state: %v", router)
	}
	if st["daemons"].(map[string]interface{})["a"] == nil {
		t.Fatalf("merged stats carry no per-daemon section")
	}

	// Ring state endpoint round-trips into an equivalent ring.
	status, rs := getJSON(t, client, ts.URL+"/ring")
	if status != http.StatusOK {
		t.Fatalf("ring status %d", status)
	}
	members := rs["ring"].(map[string]interface{})["members"].([]interface{})
	if len(members) != 2 {
		t.Fatalf("ring members %v", members)
	}
}

// TestMergedListingNamespacesDefaultStreams: each daemon's legacy
// default stream must appear in the router's merged listing as
// <member>/<id>, never as a bare id — two daemons sharing the stock
// -default-stream name would otherwise collapse into one merged entry
// and hide each other's counts (the multi-tenant listing bug this
// pins).
func TestMergedListingNamespacesDefaultStreams(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	_, ts := newTestProxy(t, a, b)
	client := ts.Client()

	// Drive each daemon's legacy root endpoint directly (that is how a
	// pre-router client creates the default stream), with distinct counts
	// so aliasing would be visible.
	for d, n := range map[*testDaemon]int{a: 5, b: 7} {
		resp, err := http.Post(d.ts.URL+"/ingest", "application/x-ndjson",
			strings.NewReader(ndjsonBody(tenantPoints(0, n))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("legacy ingest on %s: status %d", d.name, resp.StatusCode)
		}
	}
	// Plus one routed tenant, which must list under its own bare id.
	ingestRetry(t, client, ts.URL+"/streams/routed/ingest", tenantPoints(1, 30), testDeadline)

	list := mergedListing(t, client, ts.URL)
	if _, ok := list["default"]; ok {
		t.Fatalf("merged listing still aliases a bare %q entry: %v", "default", list)
	}
	for member, want := range map[string]float64{"a": 5, "b": 7} {
		e, ok := list[member+"/default"]
		if !ok {
			t.Fatalf("merged listing lacks %s/default: %v", member, list)
		}
		if e["count"].(float64) != want || e["daemon"].(string) != member {
			t.Fatalf("%s/default = count %v on %v, want %v on %s", member, e["count"], e["daemon"], want, member)
		}
	}
	if e, ok := list["routed"]; !ok || e["count"].(float64) != 30 {
		t.Fatalf("routed tenant entry wrong: %v", list["routed"])
	}
	if len(list) != 3 {
		t.Fatalf("merged listing has %d entries, want 3: %v", len(list), list)
	}
}

// TestRouterMetricsScrape: the router's /metrics parses as valid
// Prometheus text format and its counters agree with the traffic that
// actually flowed through it.
func TestRouterMetricsScrape(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	_, ts := newTestProxy(t, a, b)
	client := ts.Client()

	// 3 per-stream forwards (no handoffs in flight, so all proxied) and
	// 2 fan-outs.
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("m-%d", i)
		resp, err := client.Post(ts.URL+"/streams/"+id+"/ingest", "application/x-ndjson",
			strings.NewReader(ndjsonBody(tenantPoints(i, 10))))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %s: status %d", id, resp.StatusCode)
		}
	}
	mergedListing(t, client, ts.URL)
	status, st := getJSON(t, client, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	targets := st["router"].(map[string]interface{})["metrics_targets"].([]interface{})
	if len(targets) != 2 {
		t.Fatalf("metrics_targets = %v, want the 2 member endpoints", targets)
	}

	resp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	s, err := metrics.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("router exposition does not parse: %v", err)
	}
	if got := s[`streamkm_router_events_total{event="proxied"}`]; got != 3 {
		t.Fatalf("proxied = %v, want 3", got)
	}
	if got := s[`streamkm_router_events_total{event="fanout"}`]; got != 2 {
		t.Fatalf("fanouts = %v, want 2", got)
	}
	if got := s["streamkm_router_proxy_latency_seconds_count"]; got != 3 {
		t.Fatalf("proxy latency count = %v, want 3 (one per forwarded request)", got)
	}
	if s["streamkm_uptime_seconds"] < 0 {
		t.Fatal("no uptime gauge")
	}
}

// TestProxyLaggedDetachConversion: when a daemon answers 409 with the
// migration owner header (the router's view lagged a detach), the proxy
// converts it to the same retriable 503 a refused write gets.
func TestProxyLaggedDetachConversion(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	_, ts := newTestProxy(t, a, b)
	client := ts.Client()

	ingestRetry(t, client, ts.URL+"/streams/lag/ingest", tenantPoints(0, 50), testDeadline)

	// Detach directly on whichever daemon holds it, bypassing the router.
	holder := a
	if len(directStreamIDs(t, a)) == 0 {
		holder = b
	}
	if _, err := holder.reg.Detach("lag", "http://elsewhere:1"); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(ts.URL+"/streams/lag/ingest", "application/x-ndjson",
		strings.NewReader("[1,2]\n"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("lagged detach: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 carries no Retry-After")
	}
}

// TestRebalanceReattachesStrandedDetach: a tenant left daemon-side
// detached on its own ring owner (a router died between detach and
// install, and the new ring points back at the source) must be
// reattached by the next rebalance, not frozen forever.
func TestRebalanceReattachesStrandedDetach(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	p, ts := newTestProxy(t, a, b)
	client := ts.Client()

	ingestRetry(t, client, ts.URL+"/streams/strand/ingest", tenantPoints(0, 60), testDeadline)
	owner, _ := p.Ring().Owner("strand")
	holder := a
	if owner == "b" {
		holder = b
	}
	// Simulate the dead router's half-done handoff: the daemon-side
	// freeze exists, but this router has no memory of it.
	if _, err := holder.reg.Detach("strand", "http://gone:1"); err != nil {
		t.Fatal(err)
	}
	rep, err := p.Rebalance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 {
		t.Fatalf("rebalance left the stranded tenant pending: %+v", rep.Pending)
	}
	count, _ := queryCenters(t, client, ts.URL, "strand")
	if count != 60 {
		t.Fatalf("stranded tenant count %d after rebalance, want 60", count)
	}
	ingestRetry(t, client, ts.URL+"/streams/strand/ingest", tenantPoints(0, 10), testDeadline)
}

// TestProxyMembershipRebalance: joining a daemon migrates only the
// tenants the ring reassigns (to the new member, counts intact, exactly
// one copy fleet-wide), and draining it hands them all back.
func TestProxyMembershipRebalance(t *testing.T) {
	a := newTestDaemon(t, "a", 0)
	b := newTestDaemon(t, "b", 0)
	p, ts := newTestProxy(t, a, b)
	client := ts.Client()

	const tenants = 16
	counts := map[string]int64{}
	for i := 0; i < tenants; i++ {
		id := fmt.Sprintf("mv-%02d", i)
		n := 60 + 10*i
		ingestRetry(t, client, ts.URL+"/streams/"+id+"/ingest", tenantPoints(i, n), testDeadline)
		counts[id] = int64(n)
	}

	// Join c: the report moves a nonzero, bounded set of tenants.
	c := newTestDaemon(t, "c", 0)
	rep, err := p.AddMember(context.Background(), "c", c.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 || len(rep.ListFailed) != 0 {
		t.Fatalf("join left pending/failed work: %+v", rep)
	}
	if len(rep.Moved) == 0 {
		t.Fatal("join moved no tenants")
	}
	for _, id := range rep.Moved {
		owner, _ := p.Ring().Owner(id)
		if owner != "c" {
			t.Fatalf("moved tenant %s is owned by %q, not the joined member", id, owner)
		}
	}

	verifyFleet := func(daemons []*testDaemon) {
		t.Helper()
		seen := map[string]string{}
		for _, d := range daemons {
			for _, id := range directStreamIDs(t, d) {
				if prev, dup := seen[id]; dup {
					t.Fatalf("tenant %s present on both %s and %s", id, prev, d.name)
				}
				seen[id] = d.name
			}
		}
		if len(seen) != tenants {
			t.Fatalf("fleet holds %d tenants, want %d (%v)", len(seen), tenants, seen)
		}
		list := mergedListing(t, ts.Client(), ts.URL)
		for id, want := range counts {
			if got := int64(list[id]["count"].(float64)); got != want {
				t.Fatalf("tenant %s count %d after rebalance, want %d", id, got, want)
			}
		}
	}
	verifyFleet([]*testDaemon{a, b, c})

	// Tenants on c keep serving through the router after the move.
	for _, id := range rep.Moved {
		count, _ := queryCenters(t, client, ts.URL, id)
		if count != counts[id] {
			t.Fatalf("moved tenant %s serves count %d, want %d", id, count, counts[id])
		}
	}

	// Drain c back out; its tenants return to a/b with nothing lost.
	rep, err = p.RemoveMember(context.Background(), "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pending) != 0 {
		t.Fatalf("drain left pending migrations: %+v", rep.Pending)
	}
	if got := len(directStreamIDs(t, c)); got != 0 {
		t.Fatalf("drained daemon still holds %d tenants", got)
	}
	verifyFleet([]*testDaemon{a, b})

	// The drained member's address is forgotten once nothing references it.
	_, rs := getJSON(t, client, ts.URL+"/ring")
	memberMap := rs["members"].(map[string]interface{})
	keys := make([]string, 0, len(memberMap))
	for k := range memberMap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("member addresses after drain: %v", keys)
	}
}
