package experiments

import (
	"math/rand"
	"strconv"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/datagen"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/workload"
)

// Ablation regenerates the design-choice ablations called out in DESIGN.md.
// These have no direct figure in the paper but quantify its design
// decisions:
//
//  1. coreset builder: the k-means++-reduce construction (the paper's
//     choice) versus sensitivity sampling versus uniform sampling;
//  2. merge degree r of CC: query/update cost and coreset level versus r
//     (the Table 1 trade-off);
//  3. caching: CT versus CC on the same stream — the query-time speedup
//     that is the paper's core claim;
//  4. RCC nesting depth: memory versus query time versus coreset level
//     (the Table 2 trade-off).
func Ablation(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	// Ablations use the first configured dataset only.
	ds, err := loadOne(cfg)
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table

	// --- 1. Builder ablation (quality at fixed memory). ---
	bt := metrics.NewTable(
		"Ablation 1 ("+ds.Name+"): coreset builder vs final k-means cost  [k="+strconv.Itoa(cfg.K)+"]",
		"builder", "final cost", "coreset points")
	m := 20 * cfg.K
	for _, b := range []coreset.Builder{coreset.KMeansPP{}, coreset.Sensitivity{}, coreset.Uniform{}} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		drv := core.NewDriver(core.NewCC(2, m, b, rng), cfg.K, m, rng, cfg.queryOptions())
		res := workload.Run(drv, ds.Points, workload.FixedInterval{Q: cfg.Q})
		extract := rand.New(rand.NewSource(cfg.Seed + 7))
		centers, _ := kmeans.Run(extract, drv.CoresetUnion(), cfg.K, kmeans.AccuracyOptions())
		cost := kmeans.Cost(geom.Wrap(ds.Points), centers)
		bt.AddRow(b.Name(), cost, res.PointsStored)
	}
	tables = append(tables, bt)

	// --- 2. Merge degree sweep for CC. ---
	rt := metrics.NewTable(
		"Ablation 2 ("+ds.Name+"): CC merge degree r vs cost and time  [k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
		"r", "total time (s)", "query time (s)", "coreset level", "memory (points)")
	for _, r := range []int{2, 3, 4, 8} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		cc := core.NewCC(r, m, coreset.KMeansPP{}, rng)
		drv := core.NewDriver(cc, cfg.K, m, rng, cfg.queryOptions())
		res := workload.Run(drv, ds.Points, workload.FixedInterval{Q: cfg.Q})
		level := cc.CoresetBucket().Level
		rt.AddRow(r, res.TotalTime().Seconds(), res.QueryTime.Seconds(), level, res.PointsStored)
	}
	tables = append(tables, rt)

	// --- 3. Caching on/off: CT vs CC, query time only. ---
	ct := metrics.NewTable(
		"Ablation 3 ("+ds.Name+"): coreset caching on/off  [k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
		"structure", "query time (s)", "update time (s)", "memory (points)")
	for _, name := range []string{"StreamKM++", "CC"} {
		res, err := streamAndMeasure(name, ds, cfg.K, m, 1.2, cfg.Seed,
			workload.FixedInterval{Q: cfg.Q}, cfg.queryOptions())
		if err != nil {
			return nil, err
		}
		label := "CT (no cache)"
		if name == "CC" {
			label = "CC (cached)"
		}
		ct.AddRow(label, res.QueryTime.Seconds(), res.UpdateTime.Seconds(), res.PointsStored)
	}
	tables = append(tables, ct)

	// --- 4. RCC nesting depth sweep. ---
	dt := metrics.NewTable(
		"Ablation 4 ("+ds.Name+"): RCC nesting depth  [k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
		"order", "degrees", "query time (s)", "coreset level", "memory (points)")
	for _, order := range []int{0, 1, 2, 3} {
		rng := rand.New(rand.NewSource(cfg.Seed))
		rcc := core.NewRCC(order, m, coreset.KMeansPP{}, rng)
		drv := core.NewDriver(rcc, cfg.K, m, rng, cfg.queryOptions())
		res := workload.Run(drv, ds.Points, workload.FixedInterval{Q: cfg.Q})
		level := rcc.CoresetBucket().Level
		dt.AddRow(order, degreesString(core.DefaultRCCDegrees(order)),
			res.QueryTime.Seconds(), level, res.PointsStored)
	}
	tables = append(tables, dt)

	return tables, nil
}

func loadOne(cfg Config) (datagen.Dataset, error) {
	all, err := cfg.loadDatasets()
	if err != nil {
		return datagen.Dataset{}, err
	}
	return all[0], nil
}

func degreesString(ds []int) string {
	s := ""
	for i, d := range ds {
		if i > 0 {
			s += ","
		}
		s += strconv.Itoa(d)
	}
	return s
}
