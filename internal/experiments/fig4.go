package experiments

import (
	"math/rand"
	"strconv"

	"streamkm/internal/core"
	"streamkm/internal/datagen"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/workload"
)

// Fig4 regenerates Figure 4: k-means cost versus the number of clusters k,
// one table per dataset, one column per algorithm plus the batch k-means++
// baseline. Costs are computed at the end of the stream; streaming queries
// fire every Q points during the run (exercising the caches exactly as in
// the paper), and the final centers are extracted with the paper's accuracy
// configuration (best of 5 k-means++ runs, 20 Lloyd iterations).
//
// Expected shape (paper): Sequential is far worse than everything else
// (off the chart on Intrusion); StreamKM++, CC, RCC and OnlineCC all match
// batch k-means++ closely.
func Fig4(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			"Figure 4 ("+ds.Name+"): k-means cost vs number of clusters k  [n="+strconv.Itoa(ds.N())+"]",
			append([]string{"k"}, append(AlgoNames, "KMeans++(batch)")...)...)
		for _, k := range cfg.Ks {
			m := 20 * k
			costs, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				out := map[string]float64{}
				for _, name := range AlgoNames {
					c, err := finalCost(name, ds, k, m, cfg, seed)
					if err != nil {
						return nil, err
					}
					out[name] = c
				}
				out["KMeans++(batch)"] = batchCost(ds, k, seed)
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := []interface{}{k}
			for _, name := range append(append([]string{}, AlgoNames...), "KMeans++(batch)") {
				row = append(row, costs[name])
			}
			tb.AddRow(row...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// finalCost streams ds through the named algorithm with scheduled queries
// and returns the end-of-stream SSQ, extracting final centers with the
// accuracy configuration for coreset-based algorithms. OnlineCC answers
// from its live centers, so its internal pipeline (used at fallbacks and
// bootstrap) gets the accuracy configuration directly — the paper's setup,
// where cost experiments run the full 5-restart pipeline everywhere.
func finalCost(name string, ds datagen.Dataset, k, m int, cfg Config, seed int64) (float64, error) {
	nBuckets := len(ds.Points) / m
	opt := kmeans.FastOptions()
	if name == "OnlineCC" {
		opt = kmeans.AccuracyOptions()
	}
	alg, err := NewClusterer(name, k, m, nBuckets, 1.2, seed, opt)
	if err != nil {
		return 0, err
	}
	res := workload.Run(alg, ds.Points, workload.FixedInterval{Q: cfg.Q})
	centers := res.FinalCenters
	// For coreset structures, re-extract with the paper's accuracy
	// configuration: best of 5 k-means++ runs + Lloyd over the final
	// coreset. (Sequential and OnlineCC answer queries from live centers.)
	if d, ok := alg.(*core.Driver); ok {
		rng := rand.New(rand.NewSource(seed + 7))
		centers, _ = kmeans.Run(rng, d.CoresetUnion(), k, kmeans.AccuracyOptions())
	}
	return kmeans.Cost(geom.Wrap(ds.Points), centers), nil
}

// batchCost runs the batch k-means++ baseline (sees all points at once).
func batchCost(ds datagen.Dataset, k int, seed int64) float64 {
	rng := rand.New(rand.NewSource(seed + 13))
	centers, _ := kmeans.Run(rng, geom.Wrap(ds.Points), k, kmeans.AccuracyOptions())
	return kmeans.Cost(geom.Wrap(ds.Points), centers)
}
