package experiments

import (
	"strconv"
	"strings"
	"testing"

	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{
		Datasets:      []string{"power"}, // cheapest: d=7
		N:             3000,
		K:             5,
		Q:             100,
		Ks:            []int{3, 5},
		Qs:            []int64{100, 800},
		BucketFactors: []int{20, 40},
		Lambdas:       []float64{1.0 / 100, 1.0 / 800},
		Alphas:        []float64{1.2, 4.8},
		Seed:          7,
		Runs:          1,
		FastQueries:   true, // smoke tests check shapes, not timing fidelity
	}
}

func parseCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "k"), 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

func requireTable(t *testing.T, tb *metrics.Table, rows, cols int) {
	t.Helper()
	if len(tb.Rows) != rows {
		t.Fatalf("%s: %d rows, want %d", tb.Title, len(tb.Rows), rows)
	}
	for _, r := range tb.Rows {
		if len(r) != cols {
			t.Fatalf("%s: row has %d cells, want %d", tb.Title, len(r), cols)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.N != 20000 || c.K != 30 || c.Q != 100 || c.Runs != 1 || c.Seed != 1 {
		t.Fatalf("defaults: %+v", c)
	}
	if len(c.Datasets) != 4 || len(c.Ks) != 5 || len(c.Qs) != 7 ||
		len(c.BucketFactors) != 5 || len(c.Lambdas) != 7 || len(c.Alphas) != 6 {
		t.Fatalf("sweep defaults: %+v", c)
	}
}

func TestPaperRCCDegrees(t *testing.T) {
	got := PaperRCCDegrees(65536)
	want := []int{2, 4, 16, 256} // 65536^(1/8), ^(1/4), ^(1/2)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PaperRCCDegrees(65536) = %v, want %v", got, want)
		}
	}
	small := PaperRCCDegrees(1)
	for _, d := range small {
		if d < 2 {
			t.Fatalf("degree < 2 in %v", small)
		}
	}
}

func TestNewClustererAllNames(t *testing.T) {
	for _, name := range AlgoNames {
		c, err := NewClusterer(name, 5, 100, 10, 1.2, 1, kmeans.FastOptions())
		if err != nil || c == nil {
			t.Fatalf("NewClusterer(%s): %v", name, err)
		}
	}
	if _, err := NewClusterer("Bogus", 5, 100, 10, 1.2, 1, kmeans.FastOptions()); err == nil {
		t.Fatal("expected error for unknown name")
	}
}

func TestFig4ShapeAndSanity(t *testing.T) {
	tables, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables, want 1", len(tables))
	}
	tb := tables[0]
	requireTable(t, tb, 2, 7) // 2 k values; k + 5 algos + batch
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if v := parseCell(t, cell); v <= 0 {
				t.Fatalf("non-positive cost %q in %s", cell, tb.Title)
			}
		}
	}
	// Larger k must not increase batch cost (col 6) — basic monotonicity.
	if parseCell(t, tb.Rows[1][6]) > parseCell(t, tb.Rows[0][6])*1.5 {
		t.Fatalf("batch cost grew with k: %v", tb.Rows)
	}
}

func TestFig5Shape(t *testing.T) {
	tables, err := Fig5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	requireTable(t, tables[0], 2, 5)
	// Wall-clock assertions are too noisy for CI-sized runs (shape fidelity
	// is validated by the reference runs in EXPERIMENTS.md); here just check
	// the measurements are positive and finite.
	for _, row := range tables[0].Rows {
		for _, cell := range row[1:] {
			if v := parseCell(t, cell); v <= 0 {
				t.Fatalf("non-positive time %q", cell)
			}
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tables, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	requireTable(t, tables[0], 2, 5)
}

func TestFig7Shape(t *testing.T) {
	tables, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	requireTable(t, tables[0], 2, 5)
}

func TestPoissonFiguresShape(t *testing.T) {
	for _, f := range []func(Config) ([]*metrics.Table, error){Fig8, Fig9, Fig10} {
		tables, err := f(tinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		requireTable(t, tables[0], 2, 5)
	}
}

func TestFig11Shape(t *testing.T) {
	tables, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	requireTable(t, tables[0], 2, 4)
	// Fallback count must not increase when alpha is loosened.
	strict := parseCell(t, tables[0].Rows[0][3])
	loose := parseCell(t, tables[0].Rows[1][3])
	if loose > strict {
		t.Fatalf("fallbacks grew with looser alpha: %v -> %v", strict, loose)
	}
}

func TestTable3Shape(t *testing.T) {
	tables, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	requireTable(t, tables[0], 1, 5)
}

func TestTable4ShapeAndOrdering(t *testing.T) {
	tables, err := Table4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables, want 2 (points + MB)", len(tables))
	}
	pts := tables[0]
	requireTable(t, pts, 1, 5)
	// Memory ordering from the paper: StreamKM++ <= CC <= RCC; OnlineCC
	// within a hair of CC.
	skm := parseCell(t, pts.Rows[0][1])
	cc := parseCell(t, pts.Rows[0][2])
	rcc := parseCell(t, pts.Rows[0][3])
	occ := parseCell(t, pts.Rows[0][4])
	if !(skm <= cc && cc <= rcc) {
		t.Fatalf("memory ordering violated: skm=%v cc=%v rcc=%v", skm, cc, rcc)
	}
	// OnlineCC holds at least the same tree as StreamKM++ plus its live
	// centers, and at most CC's footprint plus the live centers (its inner
	// cache only fills on fallbacks, so it can sit anywhere in between).
	if occ < skm || occ > cc*1.5+10 {
		t.Fatalf("OnlineCC memory %v outside [%v, %v]", occ, skm, cc*1.5+10)
	}
}

func TestAblationShape(t *testing.T) {
	tables, err := Ablation(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d ablation tables, want 4", len(tables))
	}
	requireTable(t, tables[0], 3, 3) // three builders
	requireTable(t, tables[1], 4, 5) // four merge degrees
	requireTable(t, tables[2], 2, 4) // cache on/off
	requireTable(t, tables[3], 4, 5) // four RCC orders
	// Builder ablation: uniform sampling must not beat the informed
	// builders by much (usually it is worse).
	informed := parseCell(t, tables[0].Rows[0][1])
	uniform := parseCell(t, tables[0].Rows[2][1])
	if uniform < informed/2 {
		t.Fatalf("uniform sampling cost %v suspiciously better than kmeans++ %v", uniform, informed)
	}
}

func TestUnknownDatasetPropagates(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"nope"}
	if _, err := Fig4(cfg); err == nil {
		t.Fatal("expected dataset error")
	}
}

func TestMedianHelper(t *testing.T) {
	if median(nil) != 0 {
		t.Fatal("median(nil)")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Fatal("median odd")
	}
	if median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("median even")
	}
}

func TestMedianOverRuns(t *testing.T) {
	cfg := tinyConfig()
	cfg.Runs = 3
	calls := 0
	got, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
		calls++
		return map[string]float64{"x": float64(calls)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || got["x"] != 2 {
		t.Fatalf("medianOverRuns: calls=%d got=%v", calls, got)
	}
}
