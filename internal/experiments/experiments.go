// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment function consumes a Config and
// returns one or more text tables whose rows mirror the series plotted in
// the corresponding figure. The cmd/streambench CLI and the repository's
// testing.B benchmarks both call into this package, so the CLI, the
// benchmarks and EXPERIMENTS.md all report the same code paths.
package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/datagen"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
	"streamkm/internal/workload"
)

// AlgoNames lists the streaming algorithms in the paper's legend order.
// "StreamKM++" is the CT structure with merge degree 2, exactly as the
// paper equates them (Section 5.2).
var AlgoNames = []string{"Sequential", "StreamKM++", "CC", "RCC", "OnlineCC"}

// Config holds the shared experiment parameters. Zero values select the
// paper's defaults at a laptop-friendly scale.
type Config struct {
	// Datasets to run (default: all four of Table 3).
	Datasets []string
	// N is the number of points generated per dataset. Default 20000.
	// Use datagen.PaperSizes values to reproduce at full paper scale.
	N int
	// K is the number of clusters (default 30, the paper's default).
	K int
	// Q is the fixed query interval in points (default 100).
	Q int64
	// Runs is the number of repetitions; tables report the median (the
	// paper uses 9; default 1 for speed).
	Runs int
	// Seed seeds data generation and algorithms. Default 1.
	Seed int64
	// FastQueries downgrades query-time k-means++ from the paper's pipeline
	// (best of 5 runs × 20 Lloyd iterations, Section 5.2) to a single bare
	// seeding pass. Runs much faster but distorts the timing shapes: the
	// caching advantage of CC/RCC scales with the k-means++ work a query
	// performs. Use only for smoke runs.
	FastQueries bool

	// Sweeps; nil selects the paper's values.
	Ks            []int     // Figure 4 (default 10,20,30,40,50)
	Qs            []int64   // Figure 5 (default 50..3200)
	BucketFactors []int     // Figures 6-7: m = factor*k (default 20,40,60,80,100)
	Lambdas       []float64 // Figures 8-10 (default 1/50..1/3200)
	Alphas        []float64 // Figure 11 (default 1.2..9.6)
}

// WithDefaults fills in the paper's default parameters.
func (c Config) WithDefaults() Config {
	if len(c.Datasets) == 0 {
		c.Datasets = datagen.Names()
	}
	if c.N == 0 {
		c.N = 20000
	}
	if c.K == 0 {
		c.K = 30
	}
	if c.Q == 0 {
		c.Q = 100
	}
	if c.Runs == 0 {
		c.Runs = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Ks) == 0 {
		c.Ks = []int{10, 20, 30, 40, 50}
	}
	if len(c.Qs) == 0 {
		c.Qs = []int64{50, 100, 200, 400, 800, 1600, 3200}
	}
	if len(c.BucketFactors) == 0 {
		c.BucketFactors = []int{20, 40, 60, 80, 100}
	}
	if len(c.Lambdas) == 0 {
		c.Lambdas = []float64{1.0 / 50, 1.0 / 100, 1.0 / 200, 1.0 / 400,
			1.0 / 800, 1.0 / 1600, 1.0 / 3200}
	}
	if len(c.Alphas) == 0 {
		c.Alphas = []float64{1.2, 2.4, 3.6, 4.8, 7.2, 9.6}
	}
	return c
}

// queryOptions returns the query-time k-means++ configuration: the paper's
// full pipeline by default, a bare seeding pass with FastQueries.
func (c Config) queryOptions() kmeans.Options {
	if c.FastQueries {
		return kmeans.FastOptions()
	}
	return kmeans.AccuracyOptions()
}

// PaperRCCDegrees returns the merge-degree schedule the paper's experiments
// use for RCC (Section 5.2): nesting depth 3 with degrees N^(1/2), N^(1/4),
// N^(1/8) over an innermost CC of degree 2, where N is the expected number
// of base buckets. Every degree is clamped to at least 2.
func PaperRCCDegrees(nBuckets int) []int {
	if nBuckets < 2 {
		nBuckets = 2
	}
	root := func(p float64) int {
		v := int(math.Round(math.Pow(float64(nBuckets), p)))
		if v < 2 {
			v = 2
		}
		return v
	}
	return []int{2, root(1.0 / 8), root(1.0 / 4), root(1.0 / 2)}
}

// NewClusterer builds one of the paper's algorithms under the experiment's
// conventions. m is the bucket size, nBuckets the expected number of base
// buckets (used only to size RCC's merge degrees like the paper does).
func NewClusterer(name string, k, m, nBuckets int, alpha float64, seed int64, opt kmeans.Options) (core.Clusterer, error) {
	rng := rand.New(rand.NewSource(seed))
	b := coreset.KMeansPP{}
	switch name {
	case "Sequential":
		return seqkm.New(k), nil
	case "StreamKM++", "CT":
		return core.NewDriver(core.NewCT(2, m, b, rng), k, m, rng, opt), nil
	case "CC":
		return core.NewDriver(core.NewCC(2, m, b, rng), k, m, rng, opt), nil
	case "RCC":
		s := core.NewRCCWithDegrees(PaperRCCDegrees(nBuckets), m, b, rng)
		return core.NewDriver(s, k, m, rng, opt), nil
	case "OnlineCC":
		return core.NewOnlineCC(k, m, 2, alpha, 0.1, b, rng, opt), nil
	}
	return nil, fmt.Errorf("experiments: unknown algorithm %q", name)
}

// loadDatasets materializes the configured datasets once.
func (c Config) loadDatasets() ([]datagen.Dataset, error) {
	out := make([]datagen.Dataset, 0, len(c.Datasets))
	for _, name := range c.Datasets {
		ds, err := datagen.ByName(name, c.N, c.Seed)
		if err != nil {
			return nil, err
		}
		out = append(out, ds)
	}
	return out, nil
}

// medianOverRuns executes f Runs times with distinct seeds and returns the
// per-key medians. f returns a metric value per key (e.g. per algorithm).
func (c Config) medianOverRuns(f func(runSeed int64) (map[string]float64, error)) (map[string]float64, error) {
	acc := map[string][]float64{}
	for r := 0; r < c.Runs; r++ {
		vals, err := f(c.Seed + int64(r)*1000)
		if err != nil {
			return nil, err
		}
		for k, v := range vals {
			acc[k] = append(acc[k], v)
		}
	}
	out := make(map[string]float64, len(acc))
	for k, vs := range acc {
		out[k] = median(vs)
	}
	return out, nil
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// streamAndMeasure runs one algorithm over one dataset under a schedule.
func streamAndMeasure(name string, ds datagen.Dataset, k, m int, alpha float64,
	seed int64, sched workload.Schedule, opt kmeans.Options) (workload.Result, error) {
	nBuckets := len(ds.Points) / m
	alg, err := NewClusterer(name, k, m, nBuckets, alpha, seed, opt)
	if err != nil {
		return workload.Result{}, err
	}
	return workload.Run(alg, ds.Points, sched), nil
}
