package experiments

import (
	"math/rand"
	"strconv"

	"streamkm/internal/core"
	"streamkm/internal/datagen"
	"streamkm/internal/kmeans"
	"streamkm/internal/metrics"
	"streamkm/internal/workload"
)

// newSchedRng derives an independent randomness source for query schedules
// so that schedule noise does not perturb algorithm randomness.
func newSchedRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed ^ 0x5EED)) }

// fallbackCount reruns OnlineCC once and reports how many queries fell back
// to CC (diagnostic column for Figure 11).
func fallbackCount(ds datagen.Dataset, cfg Config, m int, alpha float64) int64 {
	alg, err := NewClusterer("OnlineCC", cfg.K, m, len(ds.Points)/m, alpha, cfg.Seed, kmeans.FastOptions())
	if err != nil {
		return -1
	}
	_ = workload.Run(alg, ds.Points, workload.FixedInterval{Q: cfg.Q})
	return alg.(*core.OnlineCC).Stats().Fallbacks
}

// Table3 regenerates Table 3: the dataset overview. At full scale
// (N = datagen.PaperSizes) the cardinalities match the paper exactly.
func Table3(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	tb := metrics.NewTable("Table 3: overview of the datasets",
		"Dataset", "Points (run)", "Points (paper)", "Dimension", "Description")
	for _, name := range cfg.Datasets {
		ds, err := datagen.ByName(name, cfg.N, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tb.AddRow(ds.Name, ds.N(), datagen.PaperSizes[name], ds.Dim, ds.Description)
	}
	return []*metrics.Table{tb}, nil
}

// Table4 regenerates Table 4: memory cost in points and megabytes for the
// coreset algorithms after consuming the whole stream with queries every Q
// points.
//
// Expected shape (paper): StreamKM++ smallest (tree only); CC < 2x
// StreamKM++ (adds the cache); OnlineCC ≈ CC + k live centers; RCC largest.
func Table4(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	ptsTable := metrics.NewTable(
		"Table 4a: memory cost in points  [k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
		append([]string{"Dataset"}, timingAlgos...)...)
	mbTable := metrics.NewTable(
		"Table 4b: memory cost in megabytes (8 bytes/attribute)",
		append([]string{"Dataset"}, timingAlgos...)...)
	m := 20 * cfg.K
	for _, ds := range datasets {
		ptsRow := []interface{}{ds.Name}
		mbRow := []interface{}{ds.Name}
		for _, name := range timingAlgos {
			res, err := streamAndMeasure(name, ds, cfg.K, m, 1.2, cfg.Seed,
				workload.FixedInterval{Q: cfg.Q}, kmeans.FastOptions())
			if err != nil {
				return nil, err
			}
			ptsRow = append(ptsRow, res.PointsStored)
			mbRow = append(mbRow, metrics.MemoryMB(res.PointsStored, ds.Dim))
		}
		ptsTable.AddRow(ptsRow...)
		mbTable.AddRow(mbRow...)
	}
	return []*metrics.Table{ptsTable, mbTable}, nil
}

// Fig6 regenerates Figure 6: k-means cost versus bucket size m = factor·k.
//
// Expected shape (paper): cost is essentially flat in m for all coreset
// algorithms — 20k is already enough in practice.
func Fig6(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			"Figure 6 ("+ds.Name+"): k-means cost vs bucket size  [n="+strconv.Itoa(ds.N())+", k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
			append([]string{"m"}, coresetAlgos()...)...)
		for _, f := range cfg.BucketFactors {
			m := f * cfg.K
			vals, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				out := map[string]float64{}
				for _, name := range coresetAlgos() {
					c, err := finalCost(name, ds, cfg.K, m, cfg, seed)
					if err != nil {
						return nil, err
					}
					out[name] = c
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := []interface{}{strconv.Itoa(f) + "k"}
			for _, name := range coresetAlgos() {
				row = append(row, vals[name])
			}
			tb.AddRow(row...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// coresetAlgos returns the algorithms shown in Figure 6 (Sequential is
// omitted: it has no bucket size).
func coresetAlgos() []string { return []string{"StreamKM++", "CC", "RCC", "OnlineCC"} }
