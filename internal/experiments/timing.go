package experiments

import (
	"strconv"

	"streamkm/internal/metrics"
	"streamkm/internal/workload"
)

// timingAlgos are the algorithms compared in the runtime figures (the
// paper's Figures 5 and 7–11 omit Sequential: it has no meaningful
// query/update split against coreset methods).
var timingAlgos = []string{"StreamKM++", "CC", "RCC", "OnlineCC"}

// Fig5 regenerates Figure 5: total runtime (seconds) over the whole stream
// versus the fixed query interval q, one table per dataset.
//
// Expected shape (paper): OnlineCC flat and smallest; CC and RCC similar at
// roughly half of StreamKM++; all algorithms converge as q grows past 1600.
func Fig5(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			"Figure 5 ("+ds.Name+"): total time (seconds) vs query interval q  [n="+strconv.Itoa(ds.N())+", k="+strconv.Itoa(cfg.K)+"]",
			append([]string{"q"}, timingAlgos...)...)
		m := 20 * cfg.K
		for _, q := range cfg.Qs {
			vals, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				out := map[string]float64{}
				for _, name := range timingAlgos {
					res, err := streamAndMeasure(name, ds, cfg.K, m, 1.2, seed,
						workload.FixedInterval{Q: q}, cfg.queryOptions())
					if err != nil {
						return nil, err
					}
					out[name] = res.TotalTime().Seconds()
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := []interface{}{q}
			for _, name := range timingAlgos {
				row = append(row, vals[name])
			}
			tb.AddRow(row...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig7 regenerates Figure 7: average total runtime per point
// (microseconds) versus bucket size m = factor·k, one table per dataset.
//
// Expected shape (paper): all times grow with m; CC's query time crosses
// above StreamKM++ when m reaches ~80k because the coreset tree gets so
// shallow that caching cannot pay for its extra coreset construction.
func Fig7(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			"Figure 7 ("+ds.Name+"): avg runtime per point (µs) vs bucket size  [n="+strconv.Itoa(ds.N())+", k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
			append([]string{"m"}, timingAlgos...)...)
		for _, f := range cfg.BucketFactors {
			m := f * cfg.K
			vals, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				out := map[string]float64{}
				for _, name := range timingAlgos {
					res, err := streamAndMeasure(name, ds, cfg.K, m, 1.2, seed,
						workload.FixedInterval{Q: cfg.Q}, cfg.queryOptions())
					if err != nil {
						return nil, err
					}
					out[name] = float64(res.TotalPerPoint().Nanoseconds()) / 1e3
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := []interface{}{strconv.Itoa(f) + "k"}
			for _, name := range timingAlgos {
				row = append(row, vals[name])
			}
			tb.AddRow(row...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// poissonFigure regenerates one of Figures 8-10: a per-point time metric
// versus the Poisson query arrival rate lambda.
func poissonFigure(cfg Config, title string, metric func(workload.Result) float64) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			title+" ("+ds.Name+")  [n="+strconv.Itoa(ds.N())+", k="+strconv.Itoa(cfg.K)+"]",
			append([]string{"lambda"}, timingAlgos...)...)
		m := 20 * cfg.K
		for _, lambda := range cfg.Lambdas {
			lambda := lambda
			vals, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				out := map[string]float64{}
				for _, name := range timingAlgos {
					sched := workload.Poisson{Lambda: lambda, Rng: newSchedRng(seed)}
					res, err := streamAndMeasure(name, ds, cfg.K, m, 1.2, seed, sched, cfg.queryOptions())
					if err != nil {
						return nil, err
					}
					out[name] = metric(res)
				}
				return out, nil
			})
			if err != nil {
				return nil, err
			}
			row := []interface{}{strconv.FormatFloat(lambda, 'g', 4, 64)}
			for _, name := range timingAlgos {
				row = append(row, vals[name])
			}
			tb.AddRow(row...)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}

// Fig8 regenerates Figure 8: update time per point (µs) vs Poisson rate.
// Expected shape: flat in lambda for every algorithm (queries do not touch
// the update path).
func Fig8(cfg Config) ([]*metrics.Table, error) {
	return poissonFigure(cfg, "Figure 8: update time per point (µs) vs poisson arrival rate",
		func(r workload.Result) float64 { return float64(r.UpdatePerPoint().Nanoseconds()) / 1e3 })
}

// Fig9 regenerates Figure 9: query time per point (µs) vs Poisson rate.
// Expected shape: drops as queries get rarer; RCC beats CC at the highest
// rate (multi-level caching hits more), CC wins at lower rates; OnlineCC
// lowest throughout; StreamKM++ highest.
func Fig9(cfg Config) ([]*metrics.Table, error) {
	return poissonFigure(cfg, "Figure 9: query time per point (µs) vs poisson arrival rate",
		func(r workload.Result) float64 { return float64(r.QueryPerPoint().Nanoseconds()) / 1e3 })
}

// Fig10 regenerates Figure 10: total time per point (µs) vs Poisson rate.
// Expected shape: mirrors Figure 9 since query time dominates update time.
func Fig10(cfg Config) ([]*metrics.Table, error) {
	return poissonFigure(cfg, "Figure 10: total time per point (µs) vs poisson arrival rate",
		func(r workload.Result) float64 { return float64(r.TotalPerPoint().Nanoseconds()) / 1e3 })
}

// Fig11 regenerates Figure 11: OnlineCC's total update and query time
// (seconds, whole stream) versus the switching threshold alpha.
//
// Expected shape (paper): runtime drops sharply (~3-5x) from alpha=1.2 to
// 2.4, then flattens; update time is unaffected by alpha.
func Fig11(cfg Config) ([]*metrics.Table, error) {
	cfg = cfg.WithDefaults()
	datasets, err := cfg.loadDatasets()
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	for _, ds := range datasets {
		tb := metrics.NewTable(
			"Figure 11 ("+ds.Name+"): OnlineCC runtime (seconds) vs switching threshold alpha  [n="+strconv.Itoa(ds.N())+", k="+strconv.Itoa(cfg.K)+", q="+strconv.FormatInt(cfg.Q, 10)+"]",
			"alpha", "update time", "query time", "fallbacks")
		m := 20 * cfg.K
		for _, alpha := range cfg.Alphas {
			alpha := alpha
			vals, err := cfg.medianOverRuns(func(seed int64) (map[string]float64, error) {
				res, err := streamAndMeasure("OnlineCC", ds, cfg.K, m, alpha, seed,
					workload.FixedInterval{Q: cfg.Q}, cfg.queryOptions())
				if err != nil {
					return nil, err
				}
				return map[string]float64{
					"update": res.UpdateTime.Seconds(),
					"query":  res.QueryTime.Seconds(),
				}, nil
			})
			if err != nil {
				return nil, err
			}
			// Fallback count from one representative run (stats are not part
			// of workload.Result).
			fb := fallbackCount(ds, cfg, m, alpha)
			tb.AddRow(alpha, vals["update"], vals["query"], fb)
		}
		tables = append(tables, tb)
	}
	return tables, nil
}
