// Package geom provides the Euclidean point substrate used by every
// clustering algorithm in this repository: dense points, weighted points,
// squared distances, and centroid arithmetic.
//
// All algorithms in the paper operate on points from R^d with positive
// weights (Section 2 of Zhang, Tangwongsan, Tirthapura, "Streaming k-Means
// Clustering with Fast Queries", ICDE 2017). The k-means objective is
//
//	phi_C(P) = sum_{x in P} w(x) * min_{c in C} ||x - c||^2
//
// which this package exposes the primitives for.
package geom

import (
	"fmt"
	"math"
)

// Point is a dense point in R^d. The zero value is a 0-dimensional point.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	if p == nil {
		return nil
	}
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimensionality of p.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// AddScaled adds s*q to p in place. p and q must have the same dimension.
func (p Point) AddScaled(q Point, s float64) {
	for i := range p {
		p[i] += s * q[i]
	}
}

// Scale multiplies every coordinate of p by s, in place.
func (p Point) Scale(s float64) {
	for i := range p {
		p[i] *= s
	}
}

// IsFinite reports whether every coordinate of p is finite (no NaN/Inf).
func (p Point) IsFinite() bool {
	for _, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// SqDist returns the squared Euclidean distance ||a-b||^2, computed by
// the 4-wide unrolled kernel (see kernel.go for the summation-order
// caveat). It panics if the dimensions differ, since mixing dimensions is
// always a programming error in this codebase.
func SqDist(a, b Point) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(a), len(b)))
	}
	return sqDist4(a, b)
}

// Dist returns the Euclidean distance ||a-b||.
func Dist(a, b Point) float64 { return math.Sqrt(SqDist(a, b)) }

// MinSqDist returns the squared distance from p to the nearest point in set,
// along with the index of that nearest point. If set is empty it returns
// (+Inf, -1).
func MinSqDist(p Point, set []Point) (float64, int) {
	best := math.Inf(1)
	idx := -1
	for i, c := range set {
		if d := SqDist(p, c); d < best {
			best = d
			idx = i
		}
	}
	return best, idx
}
