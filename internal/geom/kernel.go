package geom

import "math"

// This file holds the flat-array distance kernels behind every
// nearest-center and cost-accumulation hot loop in the repository. Two
// ideas, both about keeping the inner loop memory-bandwidth-bound rather
// than pointer-chasing-bound:
//
//   - Squared distances run 4-wide: four independent difference/multiply
//     accumulator chains per iteration, so the loop is not serialized on
//     one floating-point add dependency and the compiler can keep four
//     FMA-shaped chains in flight.
//   - Center sets are scanned through FlatCenters, a center-major flat
//     []float64 block (center i occupies Data[i*Dim : (i+1)*Dim]), so a
//     nearest-center scan walks one contiguous allocation instead of k
//     scattered slices.
//
// The unrolled kernels sum in a different association order than a naive
// sequential loop, so results may differ from the textbook formula in the
// last few ulps; they are exact for inputs whose partial sums are exactly
// representable (e.g. small integers), which the equivalence tests rely
// on.

// sqDist4 is the unrolled squared-distance kernel. Callers guarantee
// len(a) == len(b).
func sqDist4(a, b []float64) float64 {
	n := len(a)
	b = b[:n] // one bounds check, then the loop body elides them
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= n; i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < n; i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// FlatCenters is a center set packed into one contiguous center-major
// block: center i is Data[i*Dim : (i+1)*Dim]. It is the scan-side layout
// for the repository's nearest-center loops — building it costs one
// allocation and one copy, after which every per-point scan touches a
// single cache-friendly array.
//
// The zero value is an empty center set.
type FlatCenters struct {
	Data []float64
	Dim  int
}

// FlattenCenters packs set into a FlatCenters block. It panics if the
// centers do not share one dimension — mixing dimensions is always a
// programming error in this codebase (same convention as SqDist). An
// empty set flattens to the zero FlatCenters.
func FlattenCenters(set []Point) FlatCenters {
	if len(set) == 0 {
		return FlatCenters{}
	}
	d := len(set[0])
	data := make([]float64, len(set)*d)
	for i, c := range set {
		if len(c) != d {
			panic("geom: FlattenCenters over mixed dimensions")
		}
		copy(data[i*d:(i+1)*d], c)
	}
	return FlatCenters{Data: data, Dim: d}
}

// Len returns the number of centers in the block.
func (f FlatCenters) Len() int {
	if f.Dim == 0 {
		return 0
	}
	return len(f.Data) / f.Dim
}

// Center returns center i, aliased into the block (do not modify).
func (f FlatCenters) Center(i int) Point {
	return Point(f.Data[i*f.Dim : (i+1)*f.Dim])
}

// Nearest returns the squared distance from p to the nearest center in
// the block and that center's index — the flat-array equivalent of
// MinSqDist. If the block is empty it returns (+Inf, -1). It panics when
// p's dimension differs from the block's.
func (f FlatCenters) Nearest(p Point) (float64, int) {
	if len(f.Data) == 0 {
		return math.Inf(1), -1
	}
	if len(p) != f.Dim {
		panic("geom: dimension mismatch in FlatCenters.Nearest")
	}
	best := math.Inf(1)
	idx := -1
	d := f.Dim
	for i, off := 0, 0; off < len(f.Data); i, off = i+1, off+d {
		if sq := sqDist4(p, f.Data[off:off+d]); sq < best {
			best = sq
			idx = i
		}
	}
	return best, idx
}

// Cost accumulates the weighted nearest-center cost of pts against the
// block: sum_i w_i * min_c ||p_i - c||^2. It returns +Inf when the block
// is empty and pts is not — matching kmeans.Cost — and 0 for empty pts.
func (f FlatCenters) Cost(pts []Weighted) float64 {
	if len(pts) == 0 {
		return 0
	}
	if len(f.Data) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, wp := range pts {
		sq, _ := f.Nearest(wp.P)
		s += wp.W * sq
	}
	return s
}
