package geom

import "fmt"

// Weighted is a point with a positive weight. Unweighted input points carry
// weight 1 (Section 2 of the paper). Coreset points carry the accumulated
// weight of the points they represent.
type Weighted struct {
	P Point
	W float64
}

// NewWeighted wraps p with weight w.
func NewWeighted(p Point, w float64) Weighted { return Weighted{P: p, W: w} }

// Clone returns a deep copy of w, including the underlying point storage.
func (w Weighted) Clone() Weighted { return Weighted{P: w.P.Clone(), W: w.W} }

// Wrap converts a slice of plain points into unit-weight points. The
// underlying point storage is shared, not copied.
func Wrap(pts []Point) []Weighted {
	out := make([]Weighted, len(pts))
	for i, p := range pts {
		out[i] = Weighted{P: p, W: 1}
	}
	return out
}

// CloneWeighted deep-copies a slice of weighted points.
func CloneWeighted(pts []Weighted) []Weighted {
	out := make([]Weighted, len(pts))
	for i, wp := range pts {
		out[i] = wp.Clone()
	}
	return out
}

// AppendScaled appends src to dst with every weight multiplied by
// factor, dropping entries whose scaled weight underflows to zero (or
// was zero already) — the shard-merge kernel: renormalizing a lane's
// coreset to the global reference time is one uniform scaling, and
// entries that vanish under it are too stale to influence any query.
// Point storage is shared, not copied; weights land in fresh structs.
func AppendScaled(dst, src []Weighted, factor float64) []Weighted {
	if cap(dst)-len(dst) < len(src) {
		grown := make([]Weighted, len(dst), len(dst)+len(src))
		copy(grown, dst)
		dst = grown
	}
	for _, wp := range src {
		if w := wp.W * factor; w > 0 {
			dst = append(dst, Weighted{P: wp.P, W: w})
		}
	}
	return dst
}

// TotalWeight returns the sum of the weights in pts.
func TotalWeight(pts []Weighted) float64 {
	var s float64
	for _, wp := range pts {
		s += wp.W
	}
	return s
}

// Centroid returns the weighted mean of pts. It returns nil for empty input.
func Centroid(pts []Weighted) Point {
	if len(pts) == 0 {
		return nil
	}
	c := make(Point, len(pts[0].P))
	var tw float64
	for _, wp := range pts {
		c.AddScaled(wp.P, wp.W)
		tw += wp.W
	}
	if tw > 0 {
		c.Scale(1 / tw)
	}
	return c
}

// CheckUniformDim verifies that every point in pts has dimension d.
// It returns an error naming the first offending index.
func CheckUniformDim(pts []Weighted, d int) error {
	for i, wp := range pts {
		if len(wp.P) != d {
			return fmt.Errorf("geom: point %d has dimension %d, want %d", i, len(wp.P), d)
		}
	}
	return nil
}

// Points extracts the underlying points of pts, sharing storage.
func Points(pts []Weighted) []Point {
	out := make([]Point, len(pts))
	for i, wp := range pts {
		out[i] = wp.P
	}
	return out
}
