package geom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// naiveSqDist is the textbook sequential-accumulation reference the
// unrolled kernel is validated against.
func naiveSqDist(a, b Point) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kernelDims covers every unroll-tail residue densely at small
// dimensions and spot-checks larger ones up to 777 (odd, so the 4-wide
// main loop leaves a 1-element tail).
func kernelDims() []int {
	var dims []int
	for d := 1; d <= 64; d++ {
		dims = append(dims, d)
	}
	dims = append(dims, 65, 100, 127, 128, 129, 255, 256, 257, 511, 512, 513, 640, 776, 777)
	return dims
}

func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.NormFloat64() * 100
	}
	return p
}

func TestSqDistMatchesNaiveAcrossDims(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, d := range kernelDims() {
		t.Run(fmt.Sprintf("dim=%d", d), func(t *testing.T) {
			for trial := 0; trial < 8; trial++ {
				a, b := randPoint(rng, d), randPoint(rng, d)
				got := SqDist(a, b)
				want := naiveSqDist(a, b)
				if want == 0 {
					if got != 0 {
						t.Fatalf("SqDist = %v, want 0", got)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > 1e-12 {
					t.Fatalf("SqDist = %v, naive = %v, rel err %v", got, want, rel)
				}
			}
			// Identical points: exactly zero regardless of summation order.
			p := randPoint(rng, d)
			if got := SqDist(p, p.Clone()); got != 0 {
				t.Fatalf("SqDist(p, p) = %v, want exactly 0", got)
			}
			// Small integer coordinates: partial sums exactly representable,
			// so the unrolled kernel must match the naive one bit-for-bit.
			ia, ib := make(Point, d), make(Point, d)
			for i := 0; i < d; i++ {
				ia[i] = float64(rng.Intn(64))
				ib[i] = float64(rng.Intn(64))
			}
			if got, want := SqDist(ia, ib), naiveSqDist(ia, ib); got != want {
				t.Fatalf("integer SqDist = %v, naive = %v (must be exact)", got, want)
			}
		})
	}
}

func TestFlatCentersNearestMatchesMinSqDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 4, 5, 7, 13, 54, 129, 777} {
		for _, k := range []int{1, 2, 7, 32} {
			centers := make([]Point, k)
			for i := range centers {
				centers[i] = randPoint(rng, d)
			}
			fc := FlattenCenters(centers)
			if fc.Len() != k || fc.Dim != d {
				t.Fatalf("dim=%d k=%d: flattened to Len=%d Dim=%d", d, k, fc.Len(), fc.Dim)
			}
			for i := range centers {
				if !fc.Center(i).Equal(centers[i]) {
					t.Fatalf("dim=%d k=%d: Center(%d) does not round-trip", d, k, i)
				}
			}
			for trial := 0; trial < 16; trial++ {
				p := randPoint(rng, d)
				gotSq, gotIdx := fc.Nearest(p)
				wantSq, wantIdx := MinSqDist(p, centers)
				if rel := math.Abs(gotSq-wantSq) / math.Max(wantSq, 1); rel > 1e-12 {
					t.Fatalf("dim=%d k=%d: Nearest sq %v, MinSqDist %v", d, k, gotSq, wantSq)
				}
				if gotIdx != wantIdx {
					// A near-tie may resolve differently across summation
					// orders; the two candidates must then be equidistant to
					// within rounding.
					alt := SqDist(p, centers[gotIdx])
					if rel := math.Abs(alt-wantSq) / math.Max(wantSq, 1); rel > 1e-12 {
						t.Fatalf("dim=%d k=%d: Nearest idx %d (sq %v), MinSqDist idx %d (sq %v)",
							d, k, gotIdx, alt, wantIdx, wantSq)
					}
				}
			}
		}
	}
}

func TestFlatCentersEmptyAndCost(t *testing.T) {
	var empty FlatCenters
	if sq, idx := empty.Nearest(Point{1, 2}); !math.IsInf(sq, 1) || idx != -1 {
		t.Fatalf("empty Nearest = (%v, %d), want (+Inf, -1)", sq, idx)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty Len = %d", empty.Len())
	}
	if got := empty.Cost(nil); got != 0 {
		t.Fatalf("empty Cost of no points = %v, want 0", got)
	}
	if got := empty.Cost([]Weighted{{P: Point{1}, W: 1}}); !math.IsInf(got, 1) {
		t.Fatalf("empty Cost of points = %v, want +Inf", got)
	}

	centers := []Point{{0, 0}, {10, 0}}
	fc := FlattenCenters(centers)
	pts := []Weighted{
		{P: Point{1, 0}, W: 2},  // nearest (0,0), sq 1, contributes 2
		{P: Point{9, 0}, W: 3},  // nearest (10,0), sq 1, contributes 3
		{P: Point{10, 4}, W: 1}, // nearest (10,0), sq 16, contributes 16
	}
	if got := fc.Cost(pts); got != 21 {
		t.Fatalf("Cost = %v, want 21", got)
	}
}

func TestFlattenCentersMixedDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FlattenCenters over mixed dimensions did not panic")
		}
	}()
	FlattenCenters([]Point{{1, 2}, {1, 2, 3}})
}

// BenchmarkNearestCenter pits the flat-array scan against the
// slice-of-slices layout it replaced, at a covtype-shaped workload
// (dim 54) and an embedding-shaped one (dim 768).
func BenchmarkNearestCenter(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, cfg := range []struct{ dim, k int }{{54, 30}, {768, 30}} {
		centers := make([]Point, cfg.k)
		for i := range centers {
			centers[i] = randPoint(rng, cfg.dim)
		}
		fc := FlattenCenters(centers)
		p := randPoint(rng, cfg.dim)
		b.Run(fmt.Sprintf("flat/dim=%d/k=%d", cfg.dim, cfg.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSq, benchIdx = fc.Nearest(p)
			}
		})
		b.Run(fmt.Sprintf("slices/dim=%d/k=%d", cfg.dim, cfg.k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchSq, benchIdx = MinSqDist(p, centers)
			}
		})
	}
}

var (
	benchSq  float64
	benchIdx int
)
