package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSqDistKnown(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 25},
		{Point{1, 1, 1}, Point{1, 1, 1}, 0},
		{Point{-1}, Point{2}, 9},
		{Point{}, Point{}, 0},
	}
	for _, c := range cases {
		if got := SqDist(c.a, c.b); got != c.want {
			t.Errorf("SqDist(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistKnown(t *testing.T) {
	if got := Dist(Point{0, 0}, Point{3, 4}); got != 5 {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestSqDistPanicsOnDimMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SqDist(Point{1}, Point{1, 2})
}

func TestSqDistProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Point {
		p := make(Point, 4)
		for i := range p {
			p[i] = rng.NormFloat64() * 10
		}
		return p
	}
	for i := 0; i < 200; i++ {
		a, b, c := gen(), gen(), gen()
		if SqDist(a, b) < 0 {
			t.Fatal("negative squared distance")
		}
		if SqDist(a, a) != 0 {
			t.Fatal("SqDist(a,a) != 0")
		}
		if math.Abs(SqDist(a, b)-SqDist(b, a)) > 1e-9 {
			t.Fatal("SqDist not symmetric")
		}
		// Triangle inequality holds for Dist (not SqDist).
		if Dist(a, c) > Dist(a, b)+Dist(b, c)+1e-9 {
			t.Fatalf("triangle inequality violated: %v > %v + %v",
				Dist(a, c), Dist(a, b), Dist(b, c))
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
	if (Point)(nil).Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestEqual(t *testing.T) {
	if !(Point{1, 2}).Equal(Point{1, 2}) {
		t.Fatal("equal points reported unequal")
	}
	if (Point{1, 2}).Equal(Point{1, 3}) {
		t.Fatal("unequal points reported equal")
	}
	if (Point{1, 2}).Equal(Point{1}) {
		t.Fatal("different dims reported equal")
	}
}

func TestAddScaledAndScale(t *testing.T) {
	p := Point{1, 2}
	p.AddScaled(Point{10, 20}, 0.5)
	if !p.Equal(Point{6, 12}) {
		t.Fatalf("AddScaled got %v", p)
	}
	p.Scale(2)
	if !p.Equal(Point{12, 24}) {
		t.Fatalf("Scale got %v", p)
	}
}

func TestIsFinite(t *testing.T) {
	if !(Point{1, 2}).IsFinite() {
		t.Fatal("finite point reported non-finite")
	}
	if (Point{math.NaN()}).IsFinite() {
		t.Fatal("NaN point reported finite")
	}
	if (Point{math.Inf(1)}).IsFinite() {
		t.Fatal("Inf point reported finite")
	}
}

func TestMinSqDist(t *testing.T) {
	set := []Point{{0, 0}, {10, 0}, {0, 10}}
	d, idx := MinSqDist(Point{9, 1}, set)
	if idx != 1 || d != 2 {
		t.Fatalf("MinSqDist got (%v,%d), want (2,1)", d, idx)
	}
	d, idx = MinSqDist(Point{1, 1}, nil)
	if !math.IsInf(d, 1) || idx != -1 {
		t.Fatalf("empty set: got (%v,%d), want (+Inf,-1)", d, idx)
	}
}

func TestCentroidWeighted(t *testing.T) {
	pts := []Weighted{
		{P: Point{0, 0}, W: 1},
		{P: Point{4, 0}, W: 3},
	}
	c := Centroid(pts)
	if !c.Equal(Point{3, 0}) {
		t.Fatalf("Centroid = %v, want [3 0]", c)
	}
	if Centroid(nil) != nil {
		t.Fatal("Centroid of empty should be nil")
	}
}

func TestCentroidProperty(t *testing.T) {
	// The centroid minimizes the weighted sum of squared distances: moving
	// it in any direction cannot decrease cost.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Weighted, 10)
		for i := range pts {
			p := Point{rng.NormFloat64(), rng.NormFloat64()}
			pts[i] = Weighted{P: p, W: rng.Float64() + 0.1}
		}
		c := Centroid(pts)
		cost := func(q Point) float64 {
			var s float64
			for _, wp := range pts {
				s += wp.W * SqDist(wp.P, q)
			}
			return s
		}
		base := cost(c)
		for _, delta := range []Point{{0.1, 0}, {-0.1, 0}, {0, 0.1}, {0, -0.1}} {
			moved := c.Clone()
			moved.AddScaled(delta, 1)
			if cost(moved) < base-1e-9 {
				t.Fatalf("moving centroid decreased cost: %v < %v", cost(moved), base)
			}
		}
	}
}

func TestTotalWeightAndWrap(t *testing.T) {
	pts := Wrap([]Point{{1}, {2}, {3}})
	if got := TotalWeight(pts); got != 3 {
		t.Fatalf("TotalWeight = %v, want 3", got)
	}
	for _, wp := range pts {
		if wp.W != 1 {
			t.Fatal("Wrap should assign unit weights")
		}
	}
}

func TestCloneWeightedIndependence(t *testing.T) {
	orig := []Weighted{{P: Point{1, 2}, W: 5}}
	cp := CloneWeighted(orig)
	cp[0].P[0] = 42
	cp[0].W = 0
	if orig[0].P[0] != 1 || orig[0].W != 5 {
		t.Fatal("CloneWeighted shares storage")
	}
}

func TestCheckUniformDim(t *testing.T) {
	pts := []Weighted{{P: Point{1, 2}, W: 1}, {P: Point{3}, W: 1}}
	if err := CheckUniformDim(pts, 2); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := CheckUniformDim(pts[:1], 2); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestPointsExtract(t *testing.T) {
	pts := []Weighted{{P: Point{1}, W: 2}, {P: Point{3}, W: 4}}
	ps := Points(pts)
	if len(ps) != 2 || !ps[0].Equal(Point{1}) || !ps[1].Equal(Point{3}) {
		t.Fatalf("Points = %v", ps)
	}
}

func TestSqDistQuick(t *testing.T) {
	// Quick-check: SqDist equals the sum of coordinate-wise squared diffs.
	f := func(a, b [3]float64) bool {
		pa, pb := Point(a[:]), Point(b[:])
		want := 0.0
		for i := range a {
			d := a[i] - b[i]
			want += d * d
		}
		got := SqDist(pa, pb)
		if got == want { // covers exact matches and +Inf overflow
			return true
		}
		if math.IsNaN(got) && math.IsNaN(want) {
			return true
		}
		return math.Abs(got-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
