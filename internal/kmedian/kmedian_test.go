package kmedian

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

func mixture(rng *rand.Rand, n int) []geom.Weighted {
	centers := []geom.Point{{0, 0}, {40, 0}, {0, 40}}
	out := make([]geom.Weighted, n)
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		out[i] = geom.Weighted{
			P: geom.Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()},
			W: 1,
		}
	}
	return out
}

func TestCostKnown(t *testing.T) {
	pts := []geom.Weighted{
		{P: geom.Point{0, 0}, W: 2},
		{P: geom.Point{3, 4}, W: 1}, // distance 5 from origin
	}
	centers := []geom.Point{{0, 0}}
	if got := Cost(pts, centers); got != 5 {
		t.Fatalf("Cost = %v, want 5", got)
	}
	if got := Cost(nil, centers); got != 0 {
		t.Fatalf("empty pts: %v", got)
	}
	if got := Cost(pts, nil); !math.IsInf(got, 1) {
		t.Fatalf("no centers: %v", got)
	}
}

func TestCostIsNotSSQ(t *testing.T) {
	// The whole point of k-median: linear, not squared, distances. One far
	// outlier changes SSQ dramatically but k-median cost linearly.
	pts := []geom.Weighted{{P: geom.Point{100, 0}, W: 1}}
	centers := []geom.Point{{0, 0}}
	if got := Cost(pts, centers); got != 100 {
		t.Fatalf("Cost = %v, want 100 (not 10000)", got)
	}
	if ssq := kmeans.Cost(pts, centers); ssq != 10000 {
		t.Fatalf("kmeans.Cost = %v, want 10000", ssq)
	}
}

func TestSeedPPBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := mixture(rng, 300)
	centers := SeedPP(rng, pts, 3)
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	if SeedPP(rng, nil, 3) != nil || SeedPP(rng, pts, 0) != nil {
		t.Fatal("edge cases should be nil")
	}
	two := []geom.Weighted{{P: geom.Point{1}, W: 1}, {P: geom.Point{2}, W: 1}}
	if got := SeedPP(rng, two, 5); len(got) != 2 {
		t.Fatalf("fewer points than k: got %d", len(got))
	}
}

func TestWeightedMedianKnown(t *testing.T) {
	pts := []geom.Weighted{
		{P: geom.Point{1, 10}, W: 1},
		{P: geom.Point{2, 20}, W: 1},
		{P: geom.Point{100, 30}, W: 1},
	}
	med := WeightedMedian(pts)
	if !med.Equal(geom.Point{2, 20}) {
		t.Fatalf("median = %v, want [2 20]", med)
	}
	// Heavy weight dominates.
	pts[0].W = 10
	med = WeightedMedian(pts)
	if !med.Equal(geom.Point{1, 10}) {
		t.Fatalf("weighted median = %v, want [1 10]", med)
	}
	if WeightedMedian(nil) != nil {
		t.Fatal("empty median should be nil")
	}
}

func TestMedianRobustToOutliers(t *testing.T) {
	// The median center ignores a far outlier that would drag a mean.
	pts := []geom.Weighted{
		{P: geom.Point{0}, W: 1}, {P: geom.Point{1}, W: 1}, {P: geom.Point{2}, W: 1},
		{P: geom.Point{1000}, W: 1},
	}
	med := WeightedMedian(pts)
	if med[0] > 2 {
		t.Fatalf("median %v dragged by outlier", med)
	}
	mean := geom.Centroid(pts)
	if mean[0] < 200 {
		t.Fatalf("sanity: mean %v should be dragged", mean)
	}
}

func TestRefineImprovesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := mixture(rng, 600)
	seeds := SeedPP(rng, pts, 3)
	before := Cost(pts, seeds)
	refined, after := Refine(pts, seeds, 10)
	if after > before+1e-9 {
		t.Fatalf("Refine increased cost: %v -> %v", before, after)
	}
	if len(refined) != 3 {
		t.Fatalf("lost centers: %d", len(refined))
	}
	// Input seeds untouched.
	if got := Cost(pts, seeds); math.Abs(got-before) > 1e-9 {
		t.Fatal("Refine mutated the seed centers")
	}
}

func TestRunFindsSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := mixture(rng, 900)
	centers, cost := Run(rng, pts, 3, Options{Runs: 3, RefineIters: 10})
	if len(centers) != 3 {
		t.Fatalf("got %d centers", len(centers))
	}
	// ~1.25 expected distance per unit-variance 2-d Gaussian point.
	if cost > 2.5*float64(len(pts)) {
		t.Fatalf("cost %v too high", cost)
	}
	for _, tc := range []geom.Point{{0, 0}, {40, 0}, {0, 40}} {
		d, _ := geom.MinSqDist(tc, centers)
		if d > 9 {
			t.Fatalf("no center near %v", tc)
		}
	}
}

func TestBuilderWeightPreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := mixture(rng, 800)
	cs := Builder{}.Build(rng, pts, 60)
	if len(cs) > 60 {
		t.Fatalf("coreset size %d > 60", len(cs))
	}
	want := geom.TotalWeight(pts)
	if got := geom.TotalWeight(cs); math.Abs(got-want) > 1e-6*want {
		t.Fatalf("weight %v, want %v", got, want)
	}
	if got := (Builder{}).Build(rng, nil, 10); got != nil {
		t.Fatal("empty build should be nil")
	}
	small := Builder{}.Build(rng, pts[:5], 10)
	small[0].P[0] = 1e9
	if pts[0].P[0] == 1e9 {
		t.Fatal("small-input build aliases input")
	}
}

// TestBuilderCoresetPreservesKMedianCost: empirical Definition-1 analogue
// under the distance metric.
func TestBuilderCoresetPreservesKMedianCost(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := mixture(rng, 3000)
	cs := Builder{}.Build(rng, pts, 300)
	for trial := 0; trial < 20; trial++ {
		psi := []geom.Point{
			{rng.NormFloat64() * 5, rng.NormFloat64() * 5},
			{40 + rng.NormFloat64()*5, rng.NormFloat64() * 5},
			{rng.NormFloat64() * 5, 40 + rng.NormFloat64()*5},
		}
		orig := Cost(pts, psi)
		approx := Cost(cs, psi)
		if orig <= 0 {
			continue
		}
		if r := math.Abs(approx/orig - 1); r > 0.15 {
			t.Fatalf("trial %d: coreset k-median cost off by %.3f", trial, r)
		}
	}
}

// TestStreamingKMedianWithCC wires the k-median builder into the cached
// coreset tree: the conclusion's proposed extension, end to end.
func TestStreamingKMedianWithCC(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const m = 60
	cc := core.NewCC(2, m, Builder{}, rng)
	dataRng := rand.New(rand.NewSource(7))
	var all []geom.Weighted
	var batch []geom.Weighted
	for i := 0; i < 3000; i++ {
		wp := mixture(dataRng, 1)[0]
		all = append(all, wp)
		batch = append(batch, wp)
		if len(batch) == m {
			cc.Update(batch)
			batch = nil
		}
		if (i+1)%500 == 0 {
			cs := append(append([]geom.Weighted{}, cc.Coreset()...), batch...)
			centers, _ := Run(rng, cs, 3, Options{Runs: 2, RefineIters: 8})
			cost := Cost(all, centers)
			batchCenters, _ := Run(rand.New(rand.NewSource(8)), all, 3, Options{Runs: 3, RefineIters: 10})
			batchCost := Cost(all, batchCenters)
			if cost > 2.5*batchCost {
				t.Fatalf("at %d points: streaming k-median cost %v vs batch %v",
					i+1, cost, batchCost)
			}
		}
	}
	if cc.Stats().Queries() == 0 {
		t.Fatal("no queries recorded")
	}
}
