// Package kmedian extends coreset caching to streaming k-median — the
// extension the paper's conclusion singles out ("applying it to streaming
// k-median seems natural", Section 6). The k-median objective replaces
// squared distances with plain Euclidean distances:
//
//	phi1_C(P) = sum_{x in P} w(x) * min_{c in C} ||x - c||
//
// The merge-and-reduce machinery (coreset tree, coreset cache, recursive
// cache) is metric-agnostic: it only needs a Builder that reduces a bucket
// under the right metric. This package provides
//
//   - Cost: the weighted k-median cost;
//   - SeedPP: D-sampling seeding (the k-median analogue of k-means++'s
//     D^2 sampling, from the same Arthur–Vassilvitskii framework);
//   - Refine: Lloyd-style alternation using the coordinate-wise weighted
//     median (a robust 1-median surrogate that is exact for L1 and a good
//     proxy for Euclidean medians);
//   - Builder: a coreset builder that reduces under the distance metric;
//   - Run: seeding + refinement with restarts.
//
// Plugging Builder into core.NewCC (or NewCT/NewRCC) yields a streaming
// k-median clusterer with cached queries.
package kmedian

import (
	"math"
	"math/rand"
	"sort"

	"streamkm/internal/geom"
)

// Cost returns the weighted k-median cost of pts against centers. It
// returns +Inf when centers is empty and pts is not, 0 when pts is empty.
func Cost(pts []geom.Weighted, centers []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	if len(centers) == 0 {
		return math.Inf(1)
	}
	var s float64
	for _, wp := range pts {
		d, _ := geom.MinSqDist(wp.P, centers)
		s += wp.W * math.Sqrt(d)
	}
	return s
}

// SeedPP picks up to k centers by D-sampling: the first center is drawn
// weight-proportionally, each next with probability proportional to
// w(x)·D(x, chosen). Centers are deep copies.
func SeedPP(rng *rand.Rand, pts []geom.Weighted, k int) []geom.Point {
	if k <= 0 || len(pts) == 0 {
		return nil
	}
	if len(pts) <= k {
		out := make([]geom.Point, len(pts))
		for i, wp := range pts {
			out[i] = wp.P.Clone()
		}
		return out
	}
	centers := make([]geom.Point, 0, k)
	first := sampleByWeight(rng, pts)
	centers = append(centers, pts[first].P.Clone())

	minD := make([]float64, len(pts))
	var total float64
	for i, wp := range pts {
		d := geom.Dist(wp.P, centers[0])
		minD[i] = d
		total += wp.W * d
	}
	for len(centers) < k && total > 0 {
		target := rng.Float64() * total
		var acc float64
		pick := -1
		for i, wp := range pts {
			acc += wp.W * minD[i]
			if acc >= target {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		c := pts[pick].P.Clone()
		centers = append(centers, c)
		total = 0
		for i, wp := range pts {
			if d := geom.Dist(wp.P, c); d < minD[i] {
				minD[i] = d
			}
			total += wp.W * minD[i]
		}
	}
	return centers
}

func sampleByWeight(rng *rand.Rand, pts []geom.Weighted) int {
	var total float64
	for _, wp := range pts {
		total += wp.W
	}
	if total <= 0 {
		return rng.Intn(len(pts))
	}
	target := rng.Float64() * total
	var acc float64
	for i, wp := range pts {
		acc += wp.W
		if acc >= target {
			return i
		}
	}
	return len(pts) - 1
}

// Refine improves centers with Lloyd-style alternation under the k-median
// objective: assign points to nearest centers (Euclidean), then move each
// center to the coordinate-wise weighted median of its cluster. Returns
// refined copies and the final cost.
func Refine(pts []geom.Weighted, centers []geom.Point, maxIter int) ([]geom.Point, float64) {
	if len(pts) == 0 || len(centers) == 0 {
		return clonePoints(centers), Cost(pts, centers)
	}
	cur := clonePoints(centers)
	prev := Cost(pts, cur)
	for iter := 0; iter < maxIter; iter++ {
		groups := make([][]geom.Weighted, len(cur))
		for _, wp := range pts {
			_, idx := geom.MinSqDist(wp.P, cur)
			groups[idx] = append(groups[idx], wp)
		}
		for i, g := range groups {
			if len(g) > 0 {
				cur[i] = WeightedMedian(g)
			}
		}
		cost := Cost(pts, cur)
		if cost >= prev-1e-12 {
			return cur, cost
		}
		prev = cost
	}
	return cur, prev
}

// WeightedMedian returns the coordinate-wise weighted median of pts — the
// exact 1-median under L1 and a standard robust surrogate for the Euclidean
// geometric median.
func WeightedMedian(pts []geom.Weighted) geom.Point {
	if len(pts) == 0 {
		return nil
	}
	d := len(pts[0].P)
	out := make(geom.Point, d)
	type pw struct{ v, w float64 }
	col := make([]pw, len(pts))
	for j := 0; j < d; j++ {
		var tw float64
		for i, wp := range pts {
			col[i] = pw{wp.P[j], wp.W}
			tw += wp.W
		}
		sort.Slice(col, func(a, b int) bool { return col[a].v < col[b].v })
		var acc float64
		for _, c := range col {
			acc += c.w
			if acc >= tw/2 {
				out[j] = c.v
				break
			}
		}
	}
	return out
}

// Options configures Run.
type Options struct {
	Runs        int // restarts; best result wins (min 1)
	RefineIters int // median-Lloyd iterations per restart
}

// Run executes D-sampling seeding with optional refinement and restarts,
// returning the best centers and their k-median cost.
func Run(rng *rand.Rand, pts []geom.Weighted, k int, opt Options) ([]geom.Point, float64) {
	runs := opt.Runs
	if runs < 1 {
		runs = 1
	}
	var best []geom.Point
	bestCost := math.Inf(1)
	for i := 0; i < runs; i++ {
		centers := SeedPP(rng, pts, k)
		cost := Cost(pts, centers)
		if opt.RefineIters > 0 {
			centers, cost = Refine(pts, centers, opt.RefineIters)
		}
		if cost < bestCost || best == nil {
			best, bestCost = centers, cost
		}
	}
	return best, bestCost
}

func clonePoints(centers []geom.Point) []geom.Point {
	out := make([]geom.Point, len(centers))
	for i, c := range centers {
		out[i] = c.Clone()
	}
	return out
}
