package kmedian

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/geom"
)

func newTestDriver(k, m int, seed int64) *Driver {
	rng := rand.New(rand.NewSource(seed))
	cc := core.NewCC(2, m, Builder{}, rng)
	return NewDriver(cc, k, m, rng, Options{Runs: 2, RefineIters: 6})
}

func TestDriverValidation(t *testing.T) {
	for _, f := range []func(){
		func() { newTestDriver(0, 10, 1) },
		func() { newTestDriver(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDriverBatchingAndWeight(t *testing.T) {
	d := newTestDriver(3, 25, 2)
	rng := rand.New(rand.NewSource(3))
	const n = 137
	for i := 0; i < n; i++ {
		d.Add(geom.Point{rng.NormFloat64(), rng.NormFloat64()})
	}
	if d.Count() != n {
		t.Fatalf("Count = %d", d.Count())
	}
	got := geom.TotalWeight(d.CoresetUnion())
	if math.Abs(got-n) > 1e-6*n {
		t.Fatalf("coreset union weight %v, want %v", got, float64(n))
	}
	if d.PointsStored() <= 0 {
		t.Fatal("PointsStored")
	}
	if d.Name() != "KMedian(CC)" {
		t.Fatalf("Name = %q", d.Name())
	}
	if (Builder{}).Name() != "kmedian-reduce" {
		t.Fatal("builder name")
	}
}

func TestDriverAddWeighted(t *testing.T) {
	d := newTestDriver(2, 10, 4)
	d.AddWeighted(geom.Weighted{P: geom.Point{1, 1}, W: 7})
	if got := geom.TotalWeight(d.CoresetUnion()); got != 7 {
		t.Fatalf("weight = %v, want 7", got)
	}
}

func TestDriverCentersQuality(t *testing.T) {
	d := newTestDriver(3, 50, 5)
	rng := rand.New(rand.NewSource(6))
	for _, wp := range mixture(rng, 3000) {
		d.AddWeighted(wp)
	}
	centers := d.Centers()
	if len(centers) != 3 {
		t.Fatalf("%d centers", len(centers))
	}
	for _, tc := range []geom.Point{{0, 0}, {40, 0}, {0, 40}} {
		dd, _ := geom.MinSqDist(tc, centers)
		if dd > 9 {
			t.Fatalf("no center near %v: %v", tc, centers)
		}
	}
}
