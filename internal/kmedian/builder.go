package kmedian

import (
	"math/rand"

	"streamkm/internal/geom"
)

// Builder is a k-median coreset builder: it selects m representatives by
// D-sampling (distance, not squared distance) and transfers each input
// point's weight to its nearest representative. It satisfies the
// coreset.Builder interface, so it plugs directly into the coreset tree,
// the coreset cache (CC) and the recursive cache (RCC) — coreset caching
// for k-median, as the paper's conclusion proposes.
type Builder struct{}

// Name identifies the construction in reports and benchmarks.
func (Builder) Name() string { return "kmedian-reduce" }

// Build reduces pts to at most m weighted points under the distance
// metric. Total weight is preserved exactly and the input is not mutated.
func (Builder) Build(rng *rand.Rand, pts []geom.Weighted, m int) []geom.Weighted {
	if len(pts) == 0 || m <= 0 {
		return nil
	}
	if len(pts) <= m {
		return geom.CloneWeighted(pts)
	}
	centers := SeedPP(rng, pts, m)
	out := make([]geom.Weighted, len(centers))
	for i, c := range centers {
		out[i] = geom.Weighted{P: c, W: 0}
	}
	for _, wp := range pts {
		_, idx := geom.MinSqDist(wp.P, centers) // nearest under L2 = nearest under L2^2
		out[idx].W += wp.W
	}
	compact := out[:0]
	for _, wp := range out {
		if wp.W > 0 {
			compact = append(compact, wp)
		}
	}
	return compact
}
