package kmedian

import (
	"math/rand"

	"streamkm/internal/core"
	"streamkm/internal/geom"
)

// Driver is the k-median analogue of core.Driver: it batches points into
// base buckets for any clustering Structure (CT, CC, RCC — built with the
// k-median Builder) and answers queries by running D-sampling + median
// refinement over the assembled coreset.
type Driver struct {
	s        core.Structure
	k        int
	m        int
	rng      *rand.Rand
	queryOpt Options
	partial  []geom.Weighted
	count    int64
}

// NewDriver wraps s with k-median batching and queries. The structure
// should have been constructed with the kmedian.Builder so its reductions
// preserve the distance (not squared-distance) objective.
func NewDriver(s core.Structure, k, m int, rng *rand.Rand, opt Options) *Driver {
	if k < 1 {
		panic("kmedian: k < 1")
	}
	if m < 1 {
		panic("kmedian: bucket size m < 1")
	}
	return &Driver{s: s, k: k, m: m, rng: rng, queryOpt: opt,
		partial: make([]geom.Weighted, 0, m)}
}

// Add observes one stream point with weight 1.
func (d *Driver) Add(p geom.Point) { d.AddWeighted(geom.Weighted{P: p, W: 1}) }

// AddWeighted observes one weighted stream point.
func (d *Driver) AddWeighted(wp geom.Weighted) {
	d.count++
	d.partial = append(d.partial, wp)
	if len(d.partial) == d.m {
		d.s.Update(d.partial)
		d.partial = make([]geom.Weighted, 0, d.m)
	}
}

// Centers returns k median centers for the stream so far.
func (d *Driver) Centers() []geom.Point {
	centers, _ := Run(d.rng, d.CoresetUnion(), d.k, d.queryOpt)
	return centers
}

// CoresetUnion returns the structure coreset plus the partial bucket.
func (d *Driver) CoresetUnion() []geom.Weighted {
	cs := d.s.Coreset()
	union := make([]geom.Weighted, 0, len(cs)+len(d.partial))
	union = append(union, cs...)
	union = append(union, d.partial...)
	return union
}

// PointsStored reports memory in points.
func (d *Driver) PointsStored() int { return d.s.PointsStored() + len(d.partial) }

// Name identifies the algorithm in reports.
func (d *Driver) Name() string { return "KMedian(" + d.s.Name() + ")" }

// Count returns the number of points observed so far.
func (d *Driver) Count() int64 { return d.count }
