// Package coretree implements the r-way merging coreset tree (CT, Section
// 3.2 / Algorithm 2 of the paper), the structure underlying streamkm++
// (Ackermann et al.), generalized from merge degree 2 to arbitrary r.
//
// The tree maintains buckets at multiple levels. Level-0 buckets ("base
// buckets") hold m original input points; a level-j bucket is a coreset
// summarizing r^j base buckets. Adding a base bucket works like
// incrementing a base-r counter: whenever a level accumulates r buckets they
// are merged (coreset-reduced) into one bucket one level up. After N base
// buckets, level i holds exactly s_i buckets where N = (s_q ... s_1 s_0)_r.
package coretree

import (
	"fmt"
	"math/rand"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
)

// Bucket is one node of the coreset tree: a weighted point set summarizing
// the base buckets in the span [Start, End] (1-indexed, inclusive).
type Bucket struct {
	// Points is the coreset payload (at most m points).
	Points []geom.Weighted
	// Level is the coreset level per Definition 2 of the paper: base buckets
	// are level 0 and a merge of coresets at levels l_1..l_t yields level
	// 1+max(l_i). Approximation error grows as (1+eps)^Level - 1 (Lemma 1),
	// so algorithms must keep Level small.
	Level int
	// Start and End delimit the span of base buckets this bucket summarizes.
	Start, End int
}

// Span returns a human-readable "[start,end]" form matching the paper's
// figures.
func (b Bucket) Span() string { return fmt.Sprintf("[%d,%d]", b.Start, b.End) }

// NumPoints returns the number of stored points in the bucket.
func (b Bucket) NumPoints() int { return len(b.Points) }

// MergeBuckets coreset-reduces the union of the given buckets into a single
// bucket of at most m points. Its span is the union of the input spans,
// which must be contiguous and given in stream order.
//
// Level accounting follows Definition 2 exactly: if the union already fits
// in m points no reduction happens (a plain union of coresets is a coreset
// of the union at the max input level, Observation 1), otherwise the reduce
// step adds one level (Observation 2).
func MergeBuckets(b coreset.Builder, rng *rand.Rand, m int, bs ...Bucket) Bucket {
	if len(bs) == 0 {
		return Bucket{}
	}
	sets := make([][]geom.Weighted, len(bs))
	maxLevel, total := 0, 0
	for i, bk := range bs {
		sets[i] = bk.Points
		total += len(bk.Points)
		if bk.Level > maxLevel {
			maxLevel = bk.Level
		}
	}
	level := maxLevel
	if total > m {
		level = maxLevel + 1
	}
	return Bucket{
		Points: coreset.MergeBuild(b, rng, m, sets...),
		Level:  level,
		Start:  bs[0].Start,
		End:    bs[len(bs)-1].End,
	}
}

// Tree is the r-way merging coreset tree. It is not safe for concurrent use.
type Tree struct {
	r       int
	m       int
	builder coreset.Builder
	rng     *rand.Rand
	levels  [][]Bucket // levels[j] = Q_j, buckets in arrival order
	n       int        // base buckets received so far (N)
}

// New returns an empty coreset tree with merge degree r (>= 2), coreset size
// m (>= 1), the given reduce builder, and rng as the source of randomness.
func New(r, m int, b coreset.Builder, rng *rand.Rand) *Tree {
	if r < 2 {
		panic(fmt.Sprintf("coretree: merge degree %d < 2", r))
	}
	if m < 1 {
		panic(fmt.Sprintf("coretree: coreset size %d < 1", m))
	}
	return &Tree{r: r, m: m, builder: b, rng: rng}
}

// R returns the merge degree.
func (t *Tree) R() int { return t.r }

// M returns the per-bucket coreset size.
func (t *Tree) M() int { return t.m }

// N returns the number of base buckets inserted so far.
func (t *Tree) N() int { return t.n }

// Update inserts one base bucket (Algorithm 2, CT-Update): append at level
// 0, then carry: while any level holds r buckets, merge them into one bucket
// one level higher.
func (t *Tree) Update(points []geom.Weighted) {
	t.n++
	t.UpdateBucket(Bucket{Points: points, Level: 0, Start: t.n, End: t.n})
}

// UpdateBucket inserts an arbitrary bucket at level 0 of the tree. This is
// used by the recursive cache (RCC), whose inner trees receive already
// reduced coresets as their base buckets. The bucket's Start/End and Level
// are preserved; callers must have set them consistently.
// Note: when called directly, callers are responsible for incrementing their
// own bucket counts; Update (the normal path) manages t.n itself.
func (t *Tree) UpdateBucket(b Bucket) {
	if len(t.levels) == 0 {
		t.levels = append(t.levels, nil)
	}
	t.levels[0] = append(t.levels[0], b)
	for j := 0; j < len(t.levels); j++ {
		if len(t.levels[j]) < t.r {
			break
		}
		merged := MergeBuckets(t.builder, t.rng, t.m, t.levels[j]...)
		t.levels[j] = nil
		if j+1 == len(t.levels) {
			t.levels = append(t.levels, nil)
		}
		t.levels[j+1] = append(t.levels[j+1], merged)
	}
}

// Coreset returns the union of all active buckets (Algorithm 2,
// CT-Coreset). The returned slice is freshly allocated but shares point
// storage with the tree; callers must not mutate the points.
func (t *Tree) Coreset() []geom.Weighted {
	var out []geom.Weighted
	for _, level := range t.levels {
		for _, b := range level {
			out = append(out, b.Points...)
		}
	}
	return out
}

// ActiveBuckets returns all active buckets from every level, freshly sliced.
func (t *Tree) ActiveBuckets() []Bucket {
	var out []Bucket
	for _, level := range t.levels {
		out = append(out, level...)
	}
	return out
}

// BucketsAtLevel returns the active buckets at tree level j (Q_j). The
// returned slice aliases internal storage; callers must not modify it.
func (t *Tree) BucketsAtLevel(j int) []Bucket {
	if j < 0 || j >= len(t.levels) {
		return nil
	}
	return t.levels[j]
}

// LevelCounts returns the number of active buckets per level, index = level.
// Per the Section 3.2 invariant this equals the base-r digits of N.
func (t *Tree) LevelCounts() []int {
	out := make([]int, len(t.levels))
	for j, level := range t.levels {
		out[j] = len(level)
	}
	return out
}

// MaxBucketLevel returns the maximum coreset level among active buckets
// (Fact 1 bounds this by ceil(log_r N)). Returns 0 for an empty tree.
func (t *Tree) MaxBucketLevel() int {
	max := 0
	for _, level := range t.levels {
		for _, b := range level {
			if b.Level > max {
				max = b.Level
			}
		}
	}
	return max
}

// ScaleWeights multiplies every stored point weight by factor. Cluster
// centers are invariant under uniform weight scaling, so this is safe at
// any time; the forward-decay wrapper uses it for overflow epochs.
func (t *Tree) ScaleWeights(factor float64) {
	for _, level := range t.levels {
		for _, b := range level {
			for i := range b.Points {
				b.Points[i].W *= factor
			}
		}
	}
}

// PointsStored returns the total number of weighted points held by the tree,
// the memory metric used in the paper's Table 4.
func (t *Tree) PointsStored() int {
	var s int
	for _, level := range t.levels {
		for _, b := range level {
			s += len(b.Points)
		}
	}
	return s
}
