package coretree

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
)

// baseBucket fabricates a base bucket of m unit-weight 2-d points.
func baseBucket(rng *rand.Rand, m int) []geom.Weighted {
	out := make([]geom.Weighted, m)
	for i := range out {
		out[i] = geom.Weighted{P: geom.Point{rng.NormFloat64(), rng.NormFloat64()}, W: 1}
	}
	return out
}

func newTestTree(r, m int, seed int64) (*Tree, *rand.Rand) {
	rng := rand.New(rand.NewSource(seed))
	return New(r, m, coreset.KMeansPP{}, rng), rng
}

func TestNewValidation(t *testing.T) {
	for _, f := range []func(){
		func() { newTestTree(1, 10, 1) },
		func() { newTestTree(2, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// TestLevelCountsMatchBaseRDigits verifies the Section 3.2 invariant: after
// N base buckets, level i holds exactly s_i buckets where N = (s_q...s_0)_r.
func TestLevelCountsMatchBaseRDigits(t *testing.T) {
	for _, r := range []int{2, 3, 5} {
		tree, rng := newTestTree(r, 8, int64(r))
		for n := 1; n <= 200; n++ {
			tree.Update(baseBucket(rng, 8))
			counts := tree.LevelCounts()
			rem := n
			for j := 0; j < len(counts); j++ {
				if counts[j] != rem%r {
					t.Fatalf("r=%d N=%d level %d has %d buckets, want digit %d",
						r, n, j, counts[j], rem%r)
				}
				rem /= r
			}
			if rem != 0 {
				t.Fatalf("r=%d N=%d: levels missing for remaining digits", r, n)
			}
		}
	}
}

// TestFact1LevelBound verifies Fact 1: every active bucket's coreset level
// is at most ceil(log_r N).
func TestFact1LevelBound(t *testing.T) {
	for _, r := range []int{2, 3, 4} {
		tree, rng := newTestTree(r, 6, int64(10+r))
		for n := 1; n <= 300; n++ {
			tree.Update(baseBucket(rng, 6))
			maxLevel := tree.MaxBucketLevel()
			logN := math.Log(float64(n)) / math.Log(float64(r))
			if float64(maxLevel) > math.Ceil(logN)+1e-9 {
				t.Fatalf("r=%d N=%d: max bucket level %d exceeds ceil(log_r N)=%v",
					r, n, maxLevel, math.Ceil(logN))
			}
		}
	}
}

// TestSpansPartitionStream verifies that active buckets, ordered old to
// new, partition [1, N] exactly.
func TestSpansPartitionStream(t *testing.T) {
	tree, rng := newTestTree(3, 5, 42)
	for n := 1; n <= 120; n++ {
		tree.Update(baseBucket(rng, 5))
		// Collect spans from highest level (oldest) to lowest.
		counts := tree.LevelCounts()
		next := 1
		for j := len(counts) - 1; j >= 0; j-- {
			for _, b := range tree.BucketsAtLevel(j) {
				if b.Start != next {
					t.Fatalf("N=%d: bucket %s does not start at %d", n, b.Span(), next)
				}
				next = b.End + 1
			}
		}
		if next != n+1 {
			t.Fatalf("N=%d: spans cover up to %d", n, next-1)
		}
	}
}

func TestCoresetWeightEqualsStreamWeight(t *testing.T) {
	tree, rng := newTestTree(2, 10, 7)
	const buckets = 50
	for n := 1; n <= buckets; n++ {
		tree.Update(baseBucket(rng, 10))
	}
	got := geom.TotalWeight(tree.Coreset())
	want := float64(buckets * 10)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("coreset weight %v, want %v", got, want)
	}
}

func TestCoresetSizeBounded(t *testing.T) {
	// Active buckets number at most (r-1) per level over ceil(log_r N)+1
	// levels; each holds at most m points.
	tree, rng := newTestTree(3, 8, 99)
	for n := 1; n <= 500; n++ {
		tree.Update(baseBucket(rng, 8))
		levels := float64(len(tree.LevelCounts()))
		maxPts := int(levels) * (3 - 1) * 8
		if got := len(tree.Coreset()); got > maxPts {
			t.Fatalf("N=%d: coreset has %d points, bound %d", n, got, maxPts)
		}
	}
}

func TestPointsStoredMatchesCoresetPlusNothing(t *testing.T) {
	tree, rng := newTestTree(2, 6, 3)
	for n := 1; n <= 33; n++ {
		tree.Update(baseBucket(rng, 6))
	}
	if tree.PointsStored() != len(tree.Coreset()) {
		t.Fatalf("PointsStored %d != coreset union size %d",
			tree.PointsStored(), len(tree.Coreset()))
	}
}

func TestMergeBucketsLevelSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := coreset.KMeansPP{}

	// Exact union: total <= m keeps the max level (Observation 1).
	small1 := Bucket{Points: baseBucket(rng, 3), Level: 2, Start: 1, End: 4}
	small2 := Bucket{Points: baseBucket(rng, 3), Level: 1, Start: 5, End: 6}
	exact := MergeBuckets(b, rng, 10, small1, small2)
	if exact.Level != 2 {
		t.Fatalf("exact union level = %d, want 2", exact.Level)
	}
	if len(exact.Points) != 6 {
		t.Fatalf("exact union size = %d, want 6", len(exact.Points))
	}
	if exact.Start != 1 || exact.End != 6 {
		t.Fatalf("exact union span = %s", exact.Span())
	}

	// Reduction: total > m adds one level (Observation 2).
	big1 := Bucket{Points: baseBucket(rng, 10), Level: 2, Start: 1, End: 4}
	big2 := Bucket{Points: baseBucket(rng, 10), Level: 3, Start: 5, End: 6}
	red := MergeBuckets(b, rng, 10, big1, big2)
	if red.Level != 4 {
		t.Fatalf("reduced level = %d, want 4", red.Level)
	}
	if len(red.Points) > 10 {
		t.Fatalf("reduced size = %d, want <= 10", len(red.Points))
	}
}

func TestMergeBucketsEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	got := MergeBuckets(coreset.KMeansPP{}, rng, 5)
	if got.Points != nil || got.Level != 0 {
		t.Fatalf("empty merge = %+v", got)
	}
}

func TestUpdateBucketPreservesMetadata(t *testing.T) {
	tree, rng := newTestTree(2, 4, 8)
	in := Bucket{Points: baseBucket(rng, 4), Level: 3, Start: 11, End: 20}
	tree.UpdateBucket(in)
	got := tree.BucketsAtLevel(0)
	if len(got) != 1 || got[0].Level != 3 || got[0].Start != 11 || got[0].End != 20 {
		t.Fatalf("UpdateBucket lost metadata: %+v", got)
	}
}

func TestAccessors(t *testing.T) {
	tree, rng := newTestTree(4, 12, 9)
	if tree.R() != 4 || tree.M() != 12 || tree.N() != 0 {
		t.Fatalf("accessors wrong: r=%d m=%d n=%d", tree.R(), tree.M(), tree.N())
	}
	tree.Update(baseBucket(rng, 12))
	if tree.N() != 1 {
		t.Fatalf("N = %d after one update", tree.N())
	}
	if got := tree.BucketsAtLevel(-1); got != nil {
		t.Fatal("negative level should be nil")
	}
	if got := tree.BucketsAtLevel(99); got != nil {
		t.Fatal("overlarge level should be nil")
	}
	if got := len(tree.ActiveBuckets()); got != 1 {
		t.Fatalf("ActiveBuckets = %d, want 1", got)
	}
}

// TestCarryChain drives the counter through an r^3 boundary to exercise a
// cascading multi-level merge in one update.
func TestCarryChain(t *testing.T) {
	tree, rng := newTestTree(2, 4, 17)
	for n := 1; n <= 8; n++ { // 8 = 2^3 triggers a 3-level cascade at n=8
		tree.Update(baseBucket(rng, 4))
	}
	counts := tree.LevelCounts()
	want := []int{0, 0, 0, 1}
	if len(counts) != len(want) {
		t.Fatalf("LevelCounts = %v, want %v", counts, want)
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("LevelCounts = %v, want %v", counts, want)
		}
	}
	b := tree.BucketsAtLevel(3)[0]
	if b.Start != 1 || b.End != 8 {
		t.Fatalf("top bucket span %s, want [1,8]", b.Span())
	}
	if b.Level != 3 {
		t.Fatalf("top bucket level %d, want 3", b.Level)
	}
}
