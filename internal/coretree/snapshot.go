package coretree

import "streamkm/internal/geom"

// TreeSnapshot is the exported, serialization-friendly state of a Tree.
// All coordinates are deep copies: a snapshot stays valid however the live
// tree evolves afterwards.
type TreeSnapshot struct {
	R      int
	M      int
	N      int
	Levels [][]Bucket
}

// Snapshot captures the tree's complete logical state.
func (t *Tree) Snapshot() TreeSnapshot {
	s := TreeSnapshot{R: t.r, M: t.m, N: t.n, Levels: make([][]Bucket, len(t.levels))}
	for j, level := range t.levels {
		s.Levels[j] = cloneBuckets(level)
	}
	return s
}

// Restore replaces the tree's state with the snapshot's. The tree keeps its
// builder and rng; only the logical contents change.
func (t *Tree) Restore(s TreeSnapshot) {
	t.r = s.R
	t.m = s.M
	t.n = s.N
	t.levels = make([][]Bucket, len(s.Levels))
	for j, level := range s.Levels {
		t.levels[j] = cloneBuckets(level)
	}
}

func cloneBuckets(bs []Bucket) []Bucket {
	out := make([]Bucket, len(bs))
	for i, b := range bs {
		out[i] = Bucket{
			Points: geom.CloneWeighted(b.Points),
			Level:  b.Level,
			Start:  b.Start,
			End:    b.End,
		}
	}
	return out
}
