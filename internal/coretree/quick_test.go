package coretree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"streamkm/internal/coreset"
)

// TestQuickTreeInvariants drives randomly-configured trees through random
// stream lengths and checks every structural invariant at once:
//
//   - level counts equal the base-r digits of N (Section 3.2);
//   - bucket levels obey Fact 1;
//   - spans partition [1, N];
//   - total weight is conserved.
func TestQuickTreeInvariants(t *testing.T) {
	f := func(rRaw, mRaw uint8, nRaw uint16, seed int64) bool {
		r := int(rRaw%6) + 2   // 2..7
		m := int(mRaw%12) + 2  // 2..13
		n := int(nRaw%300) + 1 // 1..300
		rng := rand.New(rand.NewSource(seed))
		tree := New(r, m, coreset.KMeansPP{}, rng)
		for i := 0; i < n; i++ {
			tree.Update(baseBucket(rng, m))
		}
		// Digits invariant.
		rem := n
		for _, c := range tree.LevelCounts() {
			if c != rem%r {
				return false
			}
			rem /= r
		}
		if rem != 0 {
			return false
		}
		// Fact 1.
		logN := math.Log(float64(n)) / math.Log(float64(r))
		if float64(tree.MaxBucketLevel()) > math.Ceil(logN)+1e-9 {
			return false
		}
		// Span partition, old to new.
		next := 1
		counts := tree.LevelCounts()
		for j := len(counts) - 1; j >= 0; j-- {
			for _, b := range tree.BucketsAtLevel(j) {
				if b.Start != next {
					return false
				}
				next = b.End + 1
			}
		}
		if next != n+1 {
			return false
		}
		// Weight conservation.
		var w float64
		for _, wp := range tree.Coreset() {
			w += wp.W
		}
		want := float64(n * m)
		return math.Abs(w-want) <= 1e-6*want
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeBucketsWeight checks weight conservation and level
// accounting for random merges.
func TestQuickMergeBucketsWeight(t *testing.T) {
	f := func(sizes [4]uint8, levels [4]uint8, mRaw uint8, seed int64) bool {
		m := int(mRaw%20) + 1
		rng := rand.New(rand.NewSource(seed))
		var bs []Bucket
		var want float64
		start := 1
		maxLevel, total := 0, 0
		for i := 0; i < 4; i++ {
			sz := int(sizes[i]%10) + 1
			lv := int(levels[i] % 5)
			b := Bucket{Points: baseBucket(rng, sz), Level: lv, Start: start, End: start}
			start++
			bs = append(bs, b)
			want += float64(sz)
			total += sz
			if lv > maxLevel {
				maxLevel = lv
			}
		}
		merged := MergeBuckets(coreset.KMeansPP{}, rng, m, bs...)
		var got float64
		for _, wp := range merged.Points {
			got += wp.W
		}
		if math.Abs(got-want) > 1e-6*want {
			return false
		}
		wantLevel := maxLevel
		if total > m {
			wantLevel = maxLevel + 1
		}
		return merged.Level == wantLevel && len(merged.Points) <= max(total, m) &&
			merged.Start == 1 && merged.End == 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
