package coretree

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/coreset"
	"streamkm/internal/geom"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	tree, rng := newTestTree(3, 6, 51)
	for n := 1; n <= 29; n++ {
		tree.Update(baseBucket(rng, 6))
	}
	snap := tree.Snapshot()
	if snap.R != 3 || snap.M != 6 || snap.N != 29 {
		t.Fatalf("snapshot header: %+v", snap)
	}

	fresh := New(2, 2, coreset.KMeansPP{}, rand.New(rand.NewSource(1)))
	fresh.Restore(snap)
	if fresh.R() != 3 || fresh.M() != 6 || fresh.N() != 29 {
		t.Fatalf("restored header wrong: r=%d m=%d n=%d", fresh.R(), fresh.M(), fresh.N())
	}
	if fresh.PointsStored() != tree.PointsStored() {
		t.Fatalf("points stored %d != %d", fresh.PointsStored(), tree.PointsStored())
	}
	// Level counts (= base-3 digits of 29) must survive.
	a, b := tree.LevelCounts(), fresh.LevelCounts()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("level counts %v != %v", b, a)
		}
	}
	// Restored tree continues consuming the stream with the invariant intact.
	for n := 30; n <= 40; n++ {
		fresh.Restore(fresh.Snapshot()) // self round-trip mid-stream is a no-op
		fresh.Update(baseBucket(rng, 6))
	}
	got := geom.TotalWeight(fresh.Coreset())
	want := float64(40 * 6)
	if math.Abs(got-want) > 1e-6*want {
		t.Fatalf("weight after restore+updates %v, want %v", got, want)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	tree, rng := newTestTree(2, 4, 52)
	tree.Update(baseBucket(rng, 4))
	snap := tree.Snapshot()
	// Mutate the live tree's stored weights; the snapshot must not move.
	tree.ScaleWeights(100)
	var snapW float64
	for _, b := range snap.Levels[0] {
		for _, wp := range b.Points {
			snapW += wp.W
		}
	}
	if snapW != 4 {
		t.Fatalf("snapshot weight %v changed by live mutation", snapW)
	}
	// And the reverse: restoring then mutating the restored copy leaves the
	// snapshot intact.
	fresh := New(2, 4, coreset.KMeansPP{}, rand.New(rand.NewSource(2)))
	fresh.Restore(snap)
	fresh.ScaleWeights(0)
	var again float64
	for _, b := range snap.Levels[0] {
		for _, wp := range b.Points {
			again += wp.W
		}
	}
	if again != 4 {
		t.Fatalf("snapshot weight %v changed by restored-copy mutation", again)
	}
}

func TestBucketHelpers(t *testing.T) {
	b := Bucket{Points: make([]geom.Weighted, 3), Level: 2, Start: 4, End: 9}
	if b.Span() != "[4,9]" {
		t.Fatalf("Span = %q", b.Span())
	}
	if b.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", b.NumPoints())
	}
}

func TestScaleWeights(t *testing.T) {
	tree, rng := newTestTree(2, 5, 53)
	for n := 1; n <= 7; n++ {
		tree.Update(baseBucket(rng, 5))
	}
	before := geom.TotalWeight(tree.Coreset())
	tree.ScaleWeights(0.2)
	after := geom.TotalWeight(tree.Coreset())
	if math.Abs(after-before*0.2) > 1e-9*before {
		t.Fatalf("ScaleWeights: %v -> %v", before, after)
	}
}
