package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
)

// mixture generates n points around the given centers with the given
// standard deviation.
func mixture(rng *rand.Rand, centers []geom.Point, n int, sd float64) []geom.Weighted {
	out := make([]geom.Weighted, n)
	d := len(centers[0])
	for i := range out {
		c := centers[rng.Intn(len(centers))]
		p := make(geom.Point, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()*sd
		}
		out[i] = geom.Weighted{P: p, W: 1}
	}
	return out
}

var testCenters = []geom.Point{{0, 0}, {50, 0}, {0, 50}, {50, 50}}

func TestCostKnown(t *testing.T) {
	pts := []geom.Weighted{
		{P: geom.Point{0, 0}, W: 1},
		{P: geom.Point{2, 0}, W: 3},
	}
	centers := []geom.Point{{1, 0}}
	// cost = 1*1 + 3*1 = 4
	if got := Cost(pts, centers); got != 4 {
		t.Fatalf("Cost = %v, want 4", got)
	}
}

func TestCostEdgeCases(t *testing.T) {
	if got := Cost(nil, []geom.Point{{1}}); got != 0 {
		t.Fatalf("empty points: Cost = %v, want 0", got)
	}
	if got := Cost([]geom.Weighted{{P: geom.Point{1}, W: 1}}, nil); !math.IsInf(got, 1) {
		t.Fatalf("no centers: Cost = %v, want +Inf", got)
	}
}

func TestAssign(t *testing.T) {
	pts := []geom.Weighted{
		{P: geom.Point{0}, W: 1},
		{P: geom.Point{9}, W: 1},
	}
	centers := []geom.Point{{1}, {10}}
	got := Assign(pts, centers)
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("Assign = %v", got)
	}
}

func TestSeedPPBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pts := mixture(rng, testCenters, 400, 1)

	if got := SeedPP(rng, pts, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := SeedPP(rng, nil, 3); got != nil {
		t.Fatal("empty input should return nil")
	}

	centers := SeedPP(rng, pts, 4)
	if len(centers) != 4 {
		t.Fatalf("got %d centers, want 4", len(centers))
	}
	for _, c := range centers {
		if len(c) != 2 {
			t.Fatalf("center has dim %d, want 2", len(c))
		}
	}
}

func TestSeedPPFewerPointsThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := []geom.Weighted{{P: geom.Point{1, 2}, W: 1}, {P: geom.Point{3, 4}, W: 2}}
	centers := SeedPP(rng, pts, 5)
	if len(centers) != 2 {
		t.Fatalf("got %d centers, want all 2 points", len(centers))
	}
	// Returned centers must be copies.
	centers[0][0] = 999
	if pts[0].P[0] == 999 || pts[1].P[0] == 999 {
		t.Fatal("SeedPP aliases input storage")
	}
}

func TestSeedPPDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := mixture(rng, testCenters, 100, 1)
	before := geom.CloneWeighted(pts)
	centers := SeedPP(rng, pts, 4)
	for _, c := range centers {
		c[0] = 1e18
	}
	for i := range pts {
		if !pts[i].P.Equal(before[i].P) || pts[i].W != before[i].W {
			t.Fatal("SeedPP mutated its input")
		}
	}
}

func TestSeedPPCoversSeparatedClusters(t *testing.T) {
	// With widely separated clusters, D^2 sampling should select one seed
	// near each true center almost always.
	rng := rand.New(rand.NewSource(11))
	ok := 0
	const trials = 20
	for trial := 0; trial < trials; trial++ {
		pts := mixture(rng, testCenters, 400, 0.5)
		centers := SeedPP(rng, pts, 4)
		covered := 0
		for _, tc := range testCenters {
			d, _ := geom.MinSqDist(tc, centers)
			if d < 25 { // within 5 units of the true center
				covered++
			}
		}
		if covered == 4 {
			ok++
		}
	}
	if ok < trials*3/4 {
		t.Fatalf("k-means++ covered all clusters in only %d/%d trials", ok, trials)
	}
}

func TestSeedPPWeightBias(t *testing.T) {
	// A single heavy point must essentially always be selected.
	rng := rand.New(rand.NewSource(3))
	pts := []geom.Weighted{{P: geom.Point{100, 100}, W: 1e9}}
	for i := 0; i < 50; i++ {
		pts = append(pts, geom.Weighted{P: geom.Point{rng.Float64(), rng.Float64()}, W: 1e-6})
	}
	hits := 0
	for trial := 0; trial < 30; trial++ {
		centers := SeedPP(rng, pts, 1)
		if len(centers) == 1 && centers[0].Equal(geom.Point{100, 100}) {
			hits++
		}
	}
	if hits < 29 {
		t.Fatalf("heavy point selected only %d/30 times", hits)
	}
}

func TestSeedPPDeterministicGivenSeed(t *testing.T) {
	pts := mixture(rand.New(rand.NewSource(9)), testCenters, 200, 1)
	a := SeedPP(rand.New(rand.NewSource(77)), pts, 4)
	b := SeedPP(rand.New(rand.NewSource(77)), pts, 4)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("non-deterministic centers for identical seed")
		}
	}
}

func TestLloydConvergesToCentroids(t *testing.T) {
	// Two tight clusters; Lloyd from rough seeds must land on the true
	// centroids.
	pts := []geom.Weighted{
		{P: geom.Point{0, 0}, W: 1}, {P: geom.Point{0, 2}, W: 1},
		{P: geom.Point{10, 0}, W: 1}, {P: geom.Point{10, 2}, W: 1},
	}
	start := []geom.Point{{1, 1}, {9, 1}}
	centers, cost := Lloyd(pts, start, 10, 0)
	wantA, wantB := geom.Point{0, 1}, geom.Point{10, 1}
	okA := centers[0].Equal(wantA) || centers[1].Equal(wantA)
	okB := centers[0].Equal(wantB) || centers[1].Equal(wantB)
	if !okA || !okB {
		t.Fatalf("Lloyd centers = %v", centers)
	}
	if math.Abs(cost-4) > 1e-9 { // each point at distance 1 from its centroid
		t.Fatalf("Lloyd cost = %v, want 4", cost)
	}
}

func TestLloydNeverIncreasesCost(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	pts := mixture(rng, testCenters, 300, 3)
	seeds := SeedPP(rng, pts, 4)
	prev := Cost(pts, seeds)
	cur := seeds
	for i := 0; i < 8; i++ {
		var c float64
		cur, c = Lloyd(pts, cur, 1, 0)
		if c > prev+1e-6 {
			t.Fatalf("Lloyd increased cost at iter %d: %v > %v", i, c, prev)
		}
		prev = c
	}
}

func TestLloydDoesNotMutateInputCenters(t *testing.T) {
	pts := []geom.Weighted{{P: geom.Point{0}, W: 1}, {P: geom.Point{4}, W: 1}}
	start := []geom.Point{{1}}
	_, _ = Lloyd(pts, start, 5, 0)
	if !start[0].Equal(geom.Point{1}) {
		t.Fatal("Lloyd mutated the seed centers")
	}
}

func TestLloydEmptyClusterRepair(t *testing.T) {
	// Second seed is so far away that no point maps to it; repair must move
	// it onto a real point rather than leaving it stranded.
	pts := []geom.Weighted{
		{P: geom.Point{0}, W: 1}, {P: geom.Point{1}, W: 1}, {P: geom.Point{100}, W: 1},
	}
	start := []geom.Point{{0.5}, {1e6}}
	centers, cost := Lloyd(pts, start, 5, 0)
	if len(centers) != 2 {
		t.Fatalf("lost a center: %v", centers)
	}
	if cost > 1 {
		t.Fatalf("empty-cluster repair failed, cost %v", cost)
	}
}

func TestRunReturnsAtMostK(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := mixture(rng, testCenters, 200, 1)
	centers, cost := Run(rng, pts, 4, AccuracyOptions())
	if len(centers) != 4 {
		t.Fatalf("got %d centers", len(centers))
	}
	if math.Abs(cost-Cost(pts, centers)) > math.Max(1e-6, cost*1e-9) {
		t.Fatalf("reported cost %v != recomputed %v", cost, Cost(pts, centers))
	}
}

func TestRunBestOfRunsNotWorse(t *testing.T) {
	// With multiple restarts plus Lloyd, Run should (statistically) not be
	// worse than a single bare seeding. Compare expected behaviour over a
	// few trials with a generous margin.
	rng := rand.New(rand.NewSource(13))
	pts := mixture(rng, testCenters, 400, 4)
	_, multi := Run(rand.New(rand.NewSource(1)), pts, 4, Options{Runs: 5, LloydIters: 10})
	_, single := Run(rand.New(rand.NewSource(1)), pts, 4, Options{Runs: 1})
	if multi > single*1.05 {
		t.Fatalf("5 runs + Lloyd (%v) worse than bare single seeding (%v)", multi, single)
	}
}

func TestOptionsPresets(t *testing.T) {
	a := AccuracyOptions()
	if a.Runs != 5 || a.LloydIters != 20 {
		t.Fatalf("AccuracyOptions = %+v", a)
	}
	f := FastOptions()
	if f.Runs != 1 || f.LloydIters != 0 {
		t.Fatalf("FastOptions = %+v", f)
	}
}

func TestRunOnEmptyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	centers, cost := Run(rng, nil, 3, FastOptions())
	if centers != nil || cost != 0 {
		t.Fatalf("empty input: got (%v, %v)", centers, cost)
	}
}
