package kmeans

import "streamkm/internal/geom"

// Triangle-inequality pruning for the assignment step (the dominant cost of
// Lloyd refinement). From Elkan's classic observation: if
//
//	d(p, best) <= d(best, c)/2
//
// then no point of the scan needs to evaluate d(p, c) — the triangle
// inequality guarantees c cannot be closer than best. In squared form:
// 4*d²(p, best) <= d²(best, c). Precomputing the k×k center distances costs
// O(k²d) once per iteration and typically eliminates most of the O(nkd)
// distance evaluations on clustered data.

// centerSqDistances returns the symmetric matrix of pairwise squared
// distances between centers.
func centerSqDistances(centers []geom.Point) [][]float64 {
	k := len(centers)
	cc := make([][]float64, k)
	buf := make([]float64, k*k)
	for i := range cc {
		cc[i] = buf[i*k : (i+1)*k]
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := geom.SqDist(centers[i], centers[j])
			cc[i][j] = d
			cc[j][i] = d
		}
	}
	return cc
}

// assignPruned returns the squared distance to and index of the nearest
// center, skipping centers ruled out by the triangle inequality. It starts
// the scan from hint (the point's previous assignment), which maximizes
// pruning on stable clusterings. The returned distance always equals the
// true minimum; on exact ties the returned index may differ from a naive
// scan's.
func assignPruned(p geom.Point, centers []geom.Point, cc [][]float64, hint int) (float64, int) {
	if hint < 0 || hint >= len(centers) {
		hint = 0
	}
	best := geom.SqDist(p, centers[hint])
	bestIdx := hint
	for j := range centers {
		if j == bestIdx {
			continue
		}
		// c_j cannot beat the current best if 4*best <= d²(best, c_j).
		if 4*best <= cc[bestIdx][j] {
			continue
		}
		if d := geom.SqDist(p, centers[j]); d < best {
			best = d
			bestIdx = j
		}
	}
	return best, bestIdx
}
