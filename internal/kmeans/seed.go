package kmeans

import (
	"math/rand"

	"streamkm/internal/geom"
)

// SeedPP runs weighted k-means++ seeding (D^2 sampling) and returns up to k
// centers chosen from pts. The returned centers are deep copies; mutating
// them does not affect pts.
//
// The first center is drawn with probability proportional to point weight;
// each subsequent center is drawn with probability proportional to
// w(x) * D^2(x, chosen). This is the weighted generalization of Arthur &
// Vassilvitskii's algorithm, which underlies both coreset reduction and
// query-time center extraction in the paper.
//
// If pts has fewer than k points (or total weight 0), all distinct points
// are returned; callers must tolerate fewer than k centers.
func SeedPP(rng *rand.Rand, pts []geom.Weighted, k int) []geom.Point {
	if k <= 0 || len(pts) == 0 {
		return nil
	}
	if len(pts) <= k {
		out := make([]geom.Point, len(pts))
		for i, wp := range pts {
			out[i] = wp.P.Clone()
		}
		return out
	}

	centers := make([]geom.Point, 0, k)

	// First center: weight-proportional draw.
	first := sampleByWeight(rng, pts)
	centers = append(centers, pts[first].P.Clone())

	// minSq[i] is D^2(pts[i], centers) maintained incrementally so seeding
	// costs O(n*k*d) rather than O(n*k^2*d).
	minSq := make([]float64, len(pts))
	var total float64
	for i, wp := range pts {
		d := geom.SqDist(wp.P, centers[0])
		minSq[i] = d
		total += wp.W * d
	}

	for len(centers) < k {
		if total <= 0 {
			// All remaining mass sits exactly on chosen centers; any further
			// center would duplicate an existing one.
			break
		}
		target := rng.Float64() * total
		var acc float64
		pick := -1
		for i, wp := range pts {
			acc += wp.W * minSq[i]
			if acc >= target {
				pick = i
				break
			}
		}
		if pick < 0 {
			// Floating-point slack: fall back to the last point with mass.
			for i := len(pts) - 1; i >= 0; i-- {
				if pts[i].W*minSq[i] > 0 {
					pick = i
					break
				}
			}
			if pick < 0 {
				break
			}
		}
		c := pts[pick].P.Clone()
		centers = append(centers, c)
		total = 0
		for i, wp := range pts {
			if d := geom.SqDist(wp.P, c); d < minSq[i] {
				minSq[i] = d
			}
			total += wp.W * minSq[i]
		}
	}
	return centers
}

// sampleByWeight draws an index with probability proportional to point
// weight. Weights must be non-negative; if all are zero it returns a uniform
// draw.
func sampleByWeight(rng *rand.Rand, pts []geom.Weighted) int {
	var total float64
	for _, wp := range pts {
		total += wp.W
	}
	if total <= 0 {
		return rng.Intn(len(pts))
	}
	target := rng.Float64() * total
	var acc float64
	for i, wp := range pts {
		acc += wp.W
		if acc >= target {
			return i
		}
	}
	return len(pts) - 1
}
