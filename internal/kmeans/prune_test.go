package kmeans

import (
	"math"
	"math/rand"
	"testing"

	"streamkm/internal/geom"
)

// TestAssignPrunedMatchesNaive: the pruned scan must return exactly the
// minimum squared distance for every point and any hint.
func TestAssignPrunedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		k := 2 + rng.Intn(20)
		d := 1 + rng.Intn(8)
		centers := make([]geom.Point, k)
		for i := range centers {
			c := make(geom.Point, d)
			for j := range c {
				c[j] = rng.NormFloat64() * 20
			}
			centers[i] = c
		}
		cc := centerSqDistances(centers)
		for i := 0; i < 50; i++ {
			p := make(geom.Point, d)
			for j := range p {
				p[j] = rng.NormFloat64() * 25
			}
			want, _ := geom.MinSqDist(p, centers)
			hint := rng.Intn(k + 2) // sometimes out of range on purpose
			got, idx := assignPruned(p, centers, cc, hint-1)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Fatalf("pruned distance %v != naive %v (k=%d d=%d)", got, want, k, d)
			}
			if gotAt := geom.SqDist(p, centers[idx]); math.Abs(gotAt-got) > 1e-9 {
				t.Fatalf("returned index inconsistent with returned distance")
			}
		}
	}
}

func TestCenterSqDistancesSymmetric(t *testing.T) {
	centers := []geom.Point{{0, 0}, {3, 4}, {-1, 1}}
	cc := centerSqDistances(centers)
	if cc[0][1] != 25 || cc[1][0] != 25 {
		t.Fatalf("cc[0][1] = %v", cc[0][1])
	}
	for i := range cc {
		if cc[i][i] != 0 {
			t.Fatalf("diagonal not zero")
		}
		for j := range cc {
			if cc[i][j] != cc[j][i] {
				t.Fatalf("not symmetric at %d,%d", i, j)
			}
		}
	}
}

// TestLloydPrunedSameCostAsBefore: pruning must not change Lloyd's result
// quality — cost trajectories are identical up to tie-breaking.
func TestLloydPrunedCostMatchesNaiveAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := mixture(rng, testCenters, 500, 2)
	seeds := SeedPP(rng, pts, 4)

	// One manual naive Lloyd iteration.
	naiveIter := func(centers []geom.Point) ([]geom.Point, float64) {
		k := len(centers)
		d := len(pts[0].P)
		sums := make([]geom.Point, k)
		for i := range sums {
			sums[i] = make(geom.Point, d)
		}
		weights := make([]float64, k)
		for _, wp := range pts {
			_, idx := geom.MinSqDist(wp.P, centers)
			sums[idx].AddScaled(wp.P, wp.W)
			weights[idx] += wp.W
		}
		out := clonePoints(centers)
		for i := range out {
			if weights[i] > 0 {
				for j := range out[i] {
					out[i][j] = sums[i][j] / weights[i]
				}
			}
		}
		return out, Cost(pts, out)
	}
	naiveCenters, naiveCost := naiveIter(seeds)
	prunedCenters, prunedCost := Lloyd(pts, seeds, 1, 0)
	if math.Abs(naiveCost-prunedCost) > 1e-6*naiveCost {
		t.Fatalf("one pruned Lloyd iteration cost %v != naive %v", prunedCost, naiveCost)
	}
	for i := range naiveCenters {
		for j := range naiveCenters[i] {
			if math.Abs(naiveCenters[i][j]-prunedCenters[i][j]) > 1e-9 {
				t.Fatalf("centers diverge: %v vs %v", prunedCenters, naiveCenters)
			}
		}
	}
}

func BenchmarkAssignNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := mixture(rng, testCenters, 2000, 1)
	centers := SeedPP(rng, pts, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, wp := range pts {
			geom.MinSqDist(wp.P, centers)
		}
	}
}

func BenchmarkAssignPruned(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pts := mixture(rng, testCenters, 2000, 1)
	centers := SeedPP(rng, pts, 30)
	cc := centerSqDistances(centers)
	hints := make([]int, len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, wp := range pts {
			_, hints[j] = assignPruned(wp.P, centers, cc, hints[j])
		}
	}
}
