package kmeans

import (
	"streamkm/internal/geom"
)

// Lloyd refines centers in place using weighted Lloyd iterations (the
// classic k-means algorithm, Lloyd 1982) and returns the refined centers and
// the final cost. It stops after maxIter iterations or when the relative
// cost improvement drops below tol.
//
// Empty clusters are re-seeded with the point contributing most to the
// current cost, which keeps exactly len(centers) clusters alive — the same
// repair rule used by common k-means implementations.
//
// The input centers slice is not modified; refined copies are returned.
func Lloyd(pts []geom.Weighted, centers []geom.Point, maxIter int, tol float64) ([]geom.Point, float64) {
	if len(pts) == 0 || len(centers) == 0 {
		return clonePoints(centers), Cost(pts, centers)
	}
	cur := clonePoints(centers)
	d := len(pts[0].P)
	k := len(cur)

	sums := make([]geom.Point, k)
	for i := range sums {
		sums[i] = make(geom.Point, d)
	}
	weights := make([]float64, k)
	// Previous assignments seed the pruned scan: on stable clusterings the
	// hint is almost always already the nearest center.
	assign := make([]int, len(pts))

	prevCost := Cost(pts, cur)
	for iter := 0; iter < maxIter; iter++ {
		for i := range sums {
			for j := range sums[i] {
				sums[i][j] = 0
			}
			weights[i] = 0
		}
		cc := centerSqDistances(cur)
		// Assignment step with triangle-inequality pruning, accumulating
		// weighted sums on the fly.
		var cost float64
		worstIdx, worstContrib := -1, -1.0
		for i, wp := range pts {
			dsq, idx := assignPruned(wp.P, cur, cc, assign[i])
			assign[i] = idx
			sums[idx].AddScaled(wp.P, wp.W)
			weights[idx] += wp.W
			cost += wp.W * dsq
			if contrib := wp.W * dsq; contrib > worstContrib {
				worstContrib = contrib
				worstIdx = i
			}
		}
		// Update step.
		for i := range cur {
			if weights[i] > 0 {
				for j := range cur[i] {
					cur[i][j] = sums[i][j] / weights[i]
				}
			} else if worstIdx >= 0 {
				copy(cur[i], pts[worstIdx].P)
			}
		}
		newCost := Cost(pts, cur)
		if prevCost > 0 && (prevCost-newCost)/prevCost < tol {
			prevCost = newCost
			break
		}
		prevCost = newCost
	}
	return cur, prevCost
}

func clonePoints(centers []geom.Point) []geom.Point {
	out := make([]geom.Point, len(centers))
	for i, c := range centers {
		out[i] = c.Clone()
	}
	return out
}
