// Package kmeans implements the batch k-means toolkit the paper builds on:
// k-means++ seeding (Arthur & Vassilvitskii, SODA 2007; Theorem 1 in the
// paper), weighted Lloyd refinement, and the SSQ cost function. Every
// streaming algorithm in this repository uses this package both to reduce
// buckets into coresets and to extract the final k centers at query time.
package kmeans

import (
	"math"

	"streamkm/internal/geom"
)

// Cost returns the weighted k-means cost (within-cluster sum of squares,
// "SSQ" in the paper's experiments) of pts against centers:
//
//	phi_centers(pts) = sum_i w_i * min_c ||p_i - c||^2
//
// It returns +Inf when centers is empty and pts is not, and 0 when pts is
// empty.
func Cost(pts []geom.Weighted, centers []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	if len(centers) == 0 {
		return math.Inf(1)
	}
	// Flatten once, then every per-point scan walks one contiguous block.
	return geom.FlattenCenters(centers).Cost(pts)
}

// Assign returns, for each point, the index of its nearest center.
func Assign(pts []geom.Weighted, centers []geom.Point) []int {
	fc := geom.FlattenCenters(centers)
	out := make([]int, len(pts))
	for i, wp := range pts {
		_, idx := fc.Nearest(wp.P)
		out[i] = idx
	}
	return out
}
