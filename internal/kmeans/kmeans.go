package kmeans

import (
	"math"
	"math/rand"

	"streamkm/internal/geom"
)

// Options controls the full k-means++ pipeline (seeding plus Lloyd
// refinement). The zero value selects a single seeding run with no Lloyd
// refinement — the cheapest configuration, appropriate for timing
// experiments. The paper's accuracy experiments use Runs=5, LloydIters=20
// (Section 5.2).
type Options struct {
	// Runs is the number of independent k-means++ restarts; the best (lowest
	// cost) result wins. Values < 1 are treated as 1.
	Runs int
	// LloydIters caps the Lloyd refinement iterations after each seeding.
	// 0 disables refinement.
	LloydIters int
	// Tol is the relative cost-improvement threshold that stops Lloyd early.
	// 0 means iterate the full LloydIters.
	Tol float64
}

// AccuracyOptions returns the configuration the paper uses when measuring
// clustering cost: best of 5 independent k-means++ runs, each followed by up
// to 20 Lloyd iterations.
func AccuracyOptions() Options { return Options{Runs: 5, LloydIters: 20, Tol: 1e-4} }

// PipelineOptions returns the paper's query pipeline with a single restart:
// one k-means++ seeding followed by up to 20 Lloyd iterations. This is the
// default for timing experiments — the Lloyd refinement makes query cost
// proportional to the number of points fed to k-means++, which is exactly
// the quantity coreset caching reduces.
func PipelineOptions() Options { return Options{Runs: 1, LloydIters: 20, Tol: 1e-4} }

// FastOptions returns the cheapest useful configuration: one seeding pass,
// no refinement. Used on the latency-critical query path.
func FastOptions() Options { return Options{Runs: 1} }

// Run executes k-means++ (optionally with Lloyd refinement and restarts) on
// the weighted point set pts and returns the best set of at most k centers
// together with its cost on pts.
func Run(rng *rand.Rand, pts []geom.Weighted, k int, opt Options) ([]geom.Point, float64) {
	runs := opt.Runs
	if runs < 1 {
		runs = 1
	}
	var best []geom.Point
	bestCost := math.Inf(1)
	for i := 0; i < runs; i++ {
		centers := SeedPP(rng, pts, k)
		cost := Cost(pts, centers)
		if opt.LloydIters > 0 {
			centers, cost = Lloyd(pts, centers, opt.LloydIters, opt.Tol)
		}
		if cost < bestCost || best == nil {
			best, bestCost = centers, cost
		}
	}
	return best, bestCost
}
