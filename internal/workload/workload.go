// Package workload drives streaming clusterers through the paper's
// experimental workloads: a point stream interleaved with clustering
// queries at either fixed intervals (every q points, Section 5.2's default)
// or Poisson arrivals with rate lambda (Figures 8–10), measuring update
// time and query time separately as the paper does.
package workload

import (
	"math/rand"
	"time"

	"streamkm/internal/core"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
)

// Schedule produces the (1-indexed) stream positions at which clustering
// queries fire, in strictly increasing order.
type Schedule interface {
	// Next returns the next query position after pos, or -1 for "never".
	Next(pos int64) int64
	// Name describes the schedule in reports.
	Name() string
}

// FixedInterval queries after every Q-th point — "queries present with
// interval of q points".
type FixedInterval struct{ Q int64 }

// Next implements Schedule.
func (s FixedInterval) Next(pos int64) int64 {
	if s.Q <= 0 {
		return -1
	}
	return (pos/s.Q + 1) * s.Q
}

// Name implements Schedule.
func (s FixedInterval) Name() string { return "fixed" }

// Poisson queries according to a Poisson process over the point sequence:
// inter-arrival gaps are exponential with mean 1/Lambda points (Section
// 5.2). Gaps round up to at least one point.
type Poisson struct {
	Lambda float64
	Rng    *rand.Rand
}

// Next implements Schedule.
func (s Poisson) Next(pos int64) int64 {
	if s.Lambda <= 0 {
		return -1
	}
	gap := int64(s.Rng.ExpFloat64() / s.Lambda)
	if gap < 1 {
		gap = 1
	}
	return pos + gap
}

// Name implements Schedule.
func (s Poisson) Name() string { return "poisson" }

// Never is a schedule with no queries (update-cost-only measurements).
type Never struct{}

// Next implements Schedule.
func (Never) Next(int64) int64 { return -1 }

// Name implements Schedule.
func (Never) Name() string { return "never" }

// Result aggregates one streaming run.
type Result struct {
	Algorithm    string
	N            int64         // points streamed
	Queries      int64         // queries answered
	UpdateTime   time.Duration // total time inside Add
	QueryTime    time.Duration // total time inside Centers
	FinalCenters []geom.Point  // result of a final query (always issued)
	PointsStored int           // memory at end of stream, in points
}

// TotalTime returns update plus query time.
func (r Result) TotalTime() time.Duration { return r.UpdateTime + r.QueryTime }

// UpdatePerPoint returns average update time per point.
func (r Result) UpdatePerPoint() time.Duration {
	if r.N == 0 {
		return 0
	}
	return r.UpdateTime / time.Duration(r.N)
}

// QueryPerPoint returns total query time amortized per point — the paper's
// "query time per point" metric.
func (r Result) QueryPerPoint() time.Duration {
	if r.N == 0 {
		return 0
	}
	return r.QueryTime / time.Duration(r.N)
}

// TotalPerPoint returns total time amortized per point.
func (r Result) TotalPerPoint() time.Duration {
	if r.N == 0 {
		return 0
	}
	return r.TotalTime() / time.Duration(r.N)
}

// Run streams pts into alg, firing a query at every position the schedule
// produces plus one final query at end of stream. Update time is measured
// in blocks between queries (accurate totals without a timer call per
// point).
func Run(alg core.Clusterer, pts []geom.Point, sched Schedule) Result {
	res := Result{Algorithm: alg.Name()}
	n := int64(len(pts))
	nextQ := sched.Next(0)
	var i, lastQ int64
	lastQ = -1
	for i < n {
		stop := n
		if nextQ > 0 && nextQ < stop {
			stop = nextQ
		}
		t0 := time.Now()
		for ; i < stop; i++ {
			alg.Add(pts[i])
		}
		res.UpdateTime += time.Since(t0)
		if i == nextQ {
			t0 = time.Now()
			res.FinalCenters = alg.Centers()
			res.QueryTime += time.Since(t0)
			res.Queries++
			lastQ = i
			nextQ = sched.Next(i)
		}
	}
	if lastQ != n {
		// Final query so FinalCenters reflects the whole stream even when
		// the schedule did not land exactly on the last point.
		t0 := time.Now()
		res.FinalCenters = alg.Centers()
		res.QueryTime += time.Since(t0)
		res.Queries++
	}
	res.N = n
	res.PointsStored = alg.PointsStored()
	return res
}

// FinalCost evaluates the SSQ of the run's final centers over the full
// stream — the paper's accuracy metric (k-means cost at end of stream).
func FinalCost(r Result, pts []geom.Point) float64 {
	return kmeans.Cost(geom.Wrap(pts), r.FinalCenters)
}
