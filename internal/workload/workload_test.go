package workload

import (
	"math/rand"
	"testing"

	"streamkm/internal/core"
	"streamkm/internal/coreset"
	"streamkm/internal/geom"
	"streamkm/internal/kmeans"
	"streamkm/internal/seqkm"
)

func testPoints(n int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := []geom.Point{{0, 0}, {40, 40}}
	out := make([]geom.Point, n)
	for i := range out {
		c := centers[rng.Intn(2)]
		out[i] = geom.Point{c[0] + rng.NormFloat64(), c[1] + rng.NormFloat64()}
	}
	return out
}

func newCC(k, m int, seed int64) core.Clusterer {
	rng := rand.New(rand.NewSource(seed))
	return core.NewDriver(core.NewCC(2, m, coreset.KMeansPP{}, rng), k, m, rng, kmeans.FastOptions())
}

func TestFixedIntervalSchedule(t *testing.T) {
	s := FixedInterval{Q: 100}
	if got := s.Next(0); got != 100 {
		t.Fatalf("Next(0) = %d", got)
	}
	if got := s.Next(100); got != 200 {
		t.Fatalf("Next(100) = %d", got)
	}
	if got := s.Next(150); got != 200 {
		t.Fatalf("Next(150) = %d", got)
	}
	if got := (FixedInterval{Q: 0}).Next(5); got != -1 {
		t.Fatalf("Q=0 should disable queries, got %d", got)
	}
	if s.Name() != "fixed" {
		t.Fatal("name")
	}
}

func TestPoissonScheduleStatistics(t *testing.T) {
	s := Poisson{Lambda: 0.01, Rng: rand.New(rand.NewSource(1))} // mean gap 100
	var pos int64
	var gaps []int64
	for i := 0; i < 3000; i++ {
		next := s.Next(pos)
		if next <= pos {
			t.Fatalf("non-increasing schedule: %d -> %d", pos, next)
		}
		gaps = append(gaps, next-pos)
		pos = next
	}
	var sum float64
	for _, g := range gaps {
		sum += float64(g)
	}
	mean := sum / float64(len(gaps))
	if mean < 85 || mean > 115 {
		t.Fatalf("mean gap %.1f, want ~100", mean)
	}
	if (Poisson{Lambda: 0, Rng: s.Rng}).Next(5) != -1 {
		t.Fatal("lambda=0 should disable queries")
	}
	if s.Name() != "poisson" {
		t.Fatal("name")
	}
}

func TestNeverSchedule(t *testing.T) {
	if (Never{}).Next(123) != -1 || (Never{}).Name() != "never" {
		t.Fatal("Never misbehaves")
	}
}

func TestRunCountsQueries(t *testing.T) {
	pts := testPoints(1000, 2)
	res := Run(newCC(2, 20, 3), pts, FixedInterval{Q: 100})
	if res.N != 1000 {
		t.Fatalf("N = %d", res.N)
	}
	// Queries at 100, 200, ..., 1000 = 10 (the one at 1000 doubles as the
	// final query).
	if res.Queries != 10 {
		t.Fatalf("Queries = %d, want 10", res.Queries)
	}
	if len(res.FinalCenters) != 2 {
		t.Fatalf("final centers = %d", len(res.FinalCenters))
	}
	if res.PointsStored <= 0 {
		t.Fatal("PointsStored not recorded")
	}
	if res.UpdateTime <= 0 || res.QueryTime <= 0 {
		t.Fatalf("timings not recorded: update=%v query=%v", res.UpdateTime, res.QueryTime)
	}
}

func TestRunAlwaysIssuesFinalQuery(t *testing.T) {
	pts := testPoints(500, 4)
	res := Run(newCC(2, 20, 5), pts, Never{})
	if res.Queries != 1 {
		t.Fatalf("Queries = %d, want exactly the final one", res.Queries)
	}
	if len(res.FinalCenters) != 2 {
		t.Fatalf("final centers = %d", len(res.FinalCenters))
	}
}

func TestRunPartialIntervalTail(t *testing.T) {
	// N=250 with q=100: queries at 100, 200, then final at 250.
	pts := testPoints(250, 6)
	res := Run(newCC(2, 10, 7), pts, FixedInterval{Q: 100})
	if res.Queries != 3 {
		t.Fatalf("Queries = %d, want 3", res.Queries)
	}
}

func TestRunWithSequential(t *testing.T) {
	pts := testPoints(2000, 8)
	res := Run(seqkm.New(2), pts, FixedInterval{Q: 50})
	if res.Algorithm != "Sequential" {
		t.Fatalf("Algorithm = %q", res.Algorithm)
	}
	if res.Queries != 40 {
		t.Fatalf("Queries = %d, want 40", res.Queries)
	}
	cost := FinalCost(res, pts)
	if cost <= 0 {
		t.Fatalf("FinalCost = %v", cost)
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	r := Result{N: 100, UpdateTime: 1000, QueryTime: 500}
	if r.TotalTime() != 1500 {
		t.Fatal("TotalTime")
	}
	if r.UpdatePerPoint() != 10 {
		t.Fatal("UpdatePerPoint")
	}
	if r.QueryPerPoint() != 5 {
		t.Fatal("QueryPerPoint")
	}
	if r.TotalPerPoint() != 15 {
		t.Fatal("TotalPerPoint")
	}
	var zero Result
	if zero.UpdatePerPoint() != 0 || zero.QueryPerPoint() != 0 || zero.TotalPerPoint() != 0 {
		t.Fatal("zero-N division")
	}
}

// TestRunFinalCostReasonable: the runner end-to-end produces centers that
// actually cluster the data.
func TestRunFinalCostReasonable(t *testing.T) {
	pts := testPoints(3000, 9)
	res := Run(newCC(2, 40, 10), pts, FixedInterval{Q: 200})
	cost := FinalCost(res, pts)
	// Two unit-variance clusters in 2-d: optimal cost ~ 2*n. Allow slack.
	if cost > 6*float64(len(pts)) {
		t.Fatalf("final cost %v too high for easy data", cost)
	}
}
