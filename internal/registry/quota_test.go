package registry

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for quota tests: token
// refill and thrash windows become deterministic.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// admit runs one quota-gated ingest of n points / bodyBytes payload the
// way the HTTP layer does: AdmitIngest before applying, ChargeIngest
// after.
func admit(t *testing.T, r *Registry, id string, n int, bodyBytes int64) error {
	t.Helper()
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i), 0}
	}
	return r.With(id, true, func(s *Stream, b Backend) error {
		if err := r.AdmitIngest(s, b, bodyBytes); err != nil {
			return err
		}
		b.AddBatch(pts)
		r.ChargeIngest(s, int64(n))
		return nil
	})
}

func wantThrottled(t *testing.T, err error) *ThrottleError {
	t.Helper()
	if err == nil {
		t.Fatal("expected a throttle, got nil")
	}
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("errors.Is(%v, ErrThrottled) = false", err)
	}
	var te *ThrottleError
	if !errors.As(err, &te) {
		t.Fatalf("error %v is not a *ThrottleError", err)
	}
	if te.RetryAfter < 100*time.Millisecond {
		t.Fatalf("RetryAfter %v below the 100ms floor", te.RetryAfter)
	}
	return te
}

func TestPointsQuotaThrottles(t *testing.T) {
	clk := newFakeClock()
	r := mustNew(t, Config{
		Default: StreamConfig{Algo: "CC", K: 3, PointsPerSec: 10},
		now:     clk.now,
	})
	// The bucket starts at one burst (= 1s of rate): a 10-point batch is
	// admitted, drains it to zero, and the next batch is refused.
	if err := admit(t, r, "a", 10, 100); err != nil {
		t.Fatalf("first batch within burst: %v", err)
	}
	te := wantThrottled(t, admit(t, r, "a", 10, 100))
	if te.ID != "a" {
		t.Fatalf("throttle names stream %q, want a", te.ID)
	}
	// Half a second refills 5 tokens — above the out-of-debt threshold,
	// so the next batch is admitted (points are charged post-hoc).
	clk.advance(500 * time.Millisecond)
	if err := admit(t, r, "a", 5, 100); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	if got := r.Stats().Registry.Throttled; got != 1 {
		t.Fatalf("Throttled = %d, want 1", got)
	}
}

func TestPointsQuotaDebtClamped(t *testing.T) {
	clk := newFakeClock()
	r := mustNew(t, Config{
		Default: StreamConfig{Algo: "CC", K: 3, PointsPerSec: 10},
		now:     clk.now,
	})
	// A single oversized batch is admitted (count unknown pre-parse) and
	// drives the bucket into debt — but the debt clamps at one burst, so
	// ~two seconds later the stream serves again instead of being locked
	// out for the 100s the raw arithmetic would imply.
	if err := admit(t, r, "a", 1000, 100); err != nil {
		t.Fatalf("oversized batch: %v", err)
	}
	wantThrottled(t, admit(t, r, "a", 1, 100))
	clk.advance(2100 * time.Millisecond)
	if err := admit(t, r, "a", 1, 100); err != nil {
		t.Fatalf("after debt drained: %v", err)
	}
}

func TestBytesQuotaThrottles(t *testing.T) {
	clk := newFakeClock()
	r := mustNew(t, Config{
		Default: StreamConfig{Algo: "CC", K: 3, BytesPerSec: 1000},
		now:     clk.now,
	})
	if err := admit(t, r, "a", 1, 800); err != nil {
		t.Fatalf("first 800B body: %v", err)
	}
	// 200 tokens left; an 800B body is short 600 → Retry-After ≈ 600ms.
	te := wantThrottled(t, admit(t, r, "a", 1, 800))
	if te.RetryAfter < 500*time.Millisecond || te.RetryAfter > time.Second {
		t.Fatalf("RetryAfter = %v, want ≈600ms", te.RetryAfter)
	}
	clk.advance(time.Second)
	if err := admit(t, r, "a", 1, 800); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestMaxResidentBytesThrottles(t *testing.T) {
	clk := newFakeClock()
	r := mustNew(t, Config{
		// dim 2 → 16 estimated bytes per stored point; the cap lands at
		// exactly 10 points.
		Default: StreamConfig{Algo: "CC", K: 3, Dim: 2, MaxResidentBytes: 160},
		now:     clk.now,
	})
	if err := admit(t, r, "a", 10, 100); err != nil {
		t.Fatalf("batch under the cap: %v", err)
	}
	te := wantThrottled(t, admit(t, r, "a", 1, 100))
	if te.RetryAfter != time.Second {
		t.Fatalf("footprint RetryAfter = %v, want the fixed 1s pacing hint", te.RetryAfter)
	}
	// Not a rate limit: time alone never re-admits; the footprint must
	// shrink (compaction, window slide) first.
	clk.advance(time.Minute)
	wantThrottled(t, admit(t, r, "a", 1, 100))
}

func TestQuotaNeighborIsolation(t *testing.T) {
	clk := newFakeClock()
	r := mustNew(t, Config{
		Default: StreamConfig{Algo: "CC", K: 3, PointsPerSec: 10},
		now:     clk.now,
	})
	if err := admit(t, r, "noisy", 10, 100); err != nil {
		t.Fatal(err)
	}
	wantThrottled(t, admit(t, r, "noisy", 10, 100))
	// The neighbor's bucket is untouched by the noisy tenant's refusals.
	if err := admit(t, r, "quiet", 10, 100); err != nil {
		t.Fatalf("neighbor throttled by a noisy tenant: %v", err)
	}
}

func TestThrashSheddingAndRecovery(t *testing.T) {
	clk := newFakeClock()
	dir := t.TempDir()
	r := mustNew(t, Config{
		DataDir:        dir,
		MaxResident:    1,
		ThrashRestores: 3,
		ThrashWindow:   time.Minute,
		now:            clk.now,
	})
	// Two streams under MaxResident 1: every alternating access evicts
	// the other and restores from disk — textbook thrash.
	ingest(t, r, "a", 1) // create a
	ingest(t, r, "b", 1) // create b, hibernate a
	shedAt := -1
	for i := 0; i < 4; i++ {
		clk.advance(time.Second)
		if err := r.With("a", false, func(*Stream, Backend) error { return nil }); err != nil {
			te := wantThrottled(t, err)
			if te.Reason != "restore-thrash" {
				t.Fatalf("Reason = %q, want restore-thrash", te.Reason)
			}
			shedAt = i
			break
		}
		clk.advance(time.Second)
		if err := r.With("b", false, func(*Stream, Backend) error { return nil }); err != nil {
			t.Fatalf("access b (round %d): %v", i, err)
		}
	}
	// a restores on rounds 0,1,2 (the create does not count); the round-3
	// access would be its 4th restore inside the window and is shed.
	if shedAt != 3 {
		t.Fatalf("shed at round %d, want 3", shedAt)
	}
	if got := r.Stats().Registry.Shed; got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	// Once the counted restores age out of the window the stream serves
	// again, and the restore succeeds with all state intact.
	clk.advance(2 * time.Minute)
	if n := streamCount(t, r, "a"); n != 1 {
		t.Fatalf("count after recovery = %d, want 1", n)
	}
}

func TestQuotaChurnRace(t *testing.T) {
	// Real clock: hammer one quota-limited stream plus an unlimited
	// neighbor from many goroutines while the registry hibernates and
	// restores under a tight residency cap. Run with -race; the test
	// asserts only absence of races, deadlocks and non-throttle errors.
	r := mustNew(t, Config{
		DataDir:     t.TempDir(),
		MaxResident: 1,
		Default:     StreamConfig{Algo: "CC", K: 3, PointsPerSec: 500, BytesPerSec: 1 << 20},
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		id := "hot"
		if g%2 == 1 {
			id = "cold"
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := r.With(id, true, func(s *Stream, b Backend) error {
					if err := r.AdmitIngest(s, b, 64); err != nil {
						return err
					}
					b.AddBatch([][]float64{{1, 2}})
					r.ChargeIngest(s, 1)
					return nil
				})
				if err != nil && !errors.Is(err, ErrThrottled) {
					t.Errorf("ingest %s: %v", id, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
}
