package registry

import (
	"bytes"
	"errors"
	"testing"
)

// TestStandbyLifecycle walks the replication target's contract: a
// shipped snapshot installs as a non-serving standby copy, refreshes in
// place on later ships, refuses all traffic with the owner hint until
// promoted, and serves its full replicated history after Reattach.
func TestStandbyLifecycle(t *testing.T) {
	src := mustNew(t, Config{DataDir: t.TempDir()})
	dst := mustNew(t, Config{DataDir: t.TempDir()})
	ingest(t, src, "s1", 30)

	var snap bytes.Buffer
	if err := src.Snapshot("s1", &snap); err != nil {
		t.Fatal(err)
	}
	count, err := dst.InstallStandby("s1", bytes.NewReader(snap.Bytes()), "http://owner:7070")
	if err != nil {
		t.Fatal(err)
	}
	if count != 30 {
		t.Fatalf("installed standby count = %d, want 30", count)
	}
	in, err := dst.Stat("s1")
	if err != nil || !in.Standby || !in.Detached {
		t.Fatalf("standby stat = %+v, %v; want standby+detached", in, err)
	}

	// Non-serving: any access is refused with the owner hint, exactly
	// like a mid-migration detach, so no client can read a stale replica.
	werr := dst.With("s1", true, func(_ *Stream, _ Backend) error { return nil })
	if !errors.Is(werr, ErrDetached) {
		t.Fatalf("With on standby copy: %v, want ErrDetached", werr)
	}
	var de *DetachedError
	if !errors.As(werr, &de) || de.Owner != "http://owner:7070" {
		t.Fatalf("standby refusal owner hint: %v", werr)
	}

	// A fresher ship overwrites in place — standby copies are the one
	// kind of existing stream an install may clobber.
	ingest(t, src, "s1", 12)
	snap.Reset()
	if err := src.Snapshot("s1", &snap); err != nil {
		t.Fatal(err)
	}
	count, err = dst.InstallStandby("s1", bytes.NewReader(snap.Bytes()), "http://owner:7070")
	if err != nil {
		t.Fatal(err)
	}
	if count != 42 {
		t.Fatalf("refreshed standby count = %d, want 42", count)
	}

	// Promotion: Reattach clears the standby state and the copy serves
	// its replicated history.
	if err := dst.Reattach("s1"); err != nil {
		t.Fatal(err)
	}
	in, err = dst.Stat("s1")
	if err != nil || in.Standby || in.Detached {
		t.Fatalf("promoted stat = %+v, %v; want attached", in, err)
	}
	var served int64
	if err := dst.With("s1", false, func(_ *Stream, b Backend) error {
		served = b.Count()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if served != 42 {
		t.Fatalf("promoted copy serves count %d, want 42", served)
	}

	// Once promoted, the copy is authoritative: a late ship from the old
	// owner must NOT clobber it.
	if _, err := dst.InstallStandby("s1", bytes.NewReader(snap.Bytes()), "http://owner:7070"); !errors.Is(err, ErrExists) {
		t.Fatalf("late ship over promoted copy: %v, want ErrExists", err)
	}
}

// TestStandbyDetachPromotesFile: migrating a standby copy away (detach)
// converts it to an authoritative detached source — the standby flag
// must not survive, or the destination could later overwrite the only
// copy with a stale ship.
func TestStandbyDetachPromotesFile(t *testing.T) {
	src := mustNew(t, Config{DataDir: t.TempDir()})
	dst := mustNew(t, Config{DataDir: t.TempDir()})
	ingest(t, src, "s2", 9)
	var snap bytes.Buffer
	if err := src.Snapshot("s2", &snap); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.InstallStandby("s2", bytes.NewReader(snap.Bytes()), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.Detach("s2", "http://next:7070"); err != nil {
		t.Fatal(err)
	}
	in, err := dst.Stat("s2")
	if err != nil || in.Standby || !in.Detached {
		t.Fatalf("detached ex-standby stat = %+v, %v; want detached only", in, err)
	}
	// And a ship can no longer overwrite it.
	if _, err := dst.InstallStandby("s2", bytes.NewReader(snap.Bytes()), ""); !errors.Is(err, ErrExists) {
		t.Fatalf("ship over detached source: %v, want ErrExists", err)
	}
}
