package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestDetachLifecycle walks the full handoff protocol a router drives on
// the source daemon: detach hibernates and freezes the stream, the
// snapshot stays downloadable, every other surface answers 409, and the
// handoff ends in either Reattach (abort, stream serves again with
// nothing lost) or Delete (completion).
func TestDetachLifecycle(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir})
	ingest(t, r, "s1", 40)

	path, err := r.Detach("s1", "http://next:7070")
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("detach returned no snapshot path")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("detach left no snapshot file: %v", err)
	}

	// Frozen: access is refused with the owner hint, not served and not
	// lazily re-created.
	err = r.With("s1", true, func(_ *Stream, _ Backend) error { return nil })
	if !errors.Is(err, ErrDetached) {
		t.Fatalf("With on detached stream: %v, want ErrDetached", err)
	}
	var de *DetachedError
	if !errors.As(err, &de) || de.Owner != "http://next:7070" {
		t.Fatalf("detached error carries no owner hint: %v", err)
	}
	// Idempotent re-detach updates the hint.
	if _, err := r.Detach("s1", "http://other:7070"); err != nil {
		t.Fatal(err)
	}
	err = r.With("s1", false, func(_ *Stream, _ Backend) error { return nil })
	if !errors.As(err, &de) || de.Owner != "http://other:7070" {
		t.Fatalf("re-detach did not update hint: %v", err)
	}

	// Stat still describes it (and flags the state); the snapshot is
	// still downloadable — that is what the router ships to the new
	// owner.
	in, err := r.Stat("s1")
	if err != nil || !in.Detached || in.Count != 40 {
		t.Fatalf("detached stat: %+v, %v", in, err)
	}
	var buf bytes.Buffer
	if err := r.Snapshot("s1", &buf); err != nil {
		t.Fatalf("snapshot of detached stream: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot for detached stream")
	}

	// Abort path: reattach, and the stream serves again with every
	// acknowledged point.
	if err := r.Reattach("s1"); err != nil {
		t.Fatal(err)
	}
	var count int64
	if err := r.With("s1", false, func(_ *Stream, b Backend) error {
		count = b.Count()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 40 {
		t.Fatalf("count after reattach %d, want 40", count)
	}

	// Completion path: detach again, delete, and the id is free.
	if _, err := r.Detach("s1", ""); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("s1"); err != nil {
		t.Fatalf("delete of detached stream: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("delete left the snapshot file: %v", err)
	}
	if _, err := r.Stat("s1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted stream still registered: %v", err)
	}
}

// TestDetachColdAndEmptyStreams: detaching a hibernated stream is a pure
// mark (the file is already authoritative), and detaching a registered
// but never-checkpointed stream first materializes it so the new owner
// receives a restorable snapshot.
func TestDetachColdAndEmptyStreams(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir, TTL: 1})
	ingest(t, r, "cold", 7)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep hibernated %d, want 1", n)
	}
	evictions := r.Stats().Registry.Evictions
	if _, err := r.Detach("cold", ""); err != nil {
		t.Fatal(err)
	}
	if got := r.Stats().Registry.Evictions; got != evictions {
		t.Fatalf("detaching a cold stream re-hibernated it (%d -> %d evictions)", evictions, got)
	}

	// An explicitly created stream that was never checkpointed still
	// detaches into a valid (empty) snapshot.
	if err := r.Create("empty", StreamConfig{Algo: "CT", K: 2}); err != nil {
		t.Fatal(err)
	}
	path, err := r.Detach("empty", "")
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("empty-stream detach snapshot: %v (size %v)", err, fi)
	}

	if _, err := r.Detach("ghost", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("detach of unknown stream: %v", err)
	}
	if err := r.Reattach("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("reattach of unknown stream: %v", err)
	}
}

// TestDetachConcurrentIngest is the -race handoff-safety test: ingest
// workers hammer one stream while it is detached and later reattached.
// Every batch is either fully acknowledged or refused with ErrDetached —
// never half-applied, never silently dropped — so the acknowledged total
// always equals the backend count, before, during and after the handoff
// window.
func TestDetachConcurrentIngest(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir})
	ingest(t, r, "hot", 1) // materialize

	const (
		workers   = 8
		batches   = 60
		batchSize = 5
	)
	var (
		acked   atomic.Int64
		refused atomic.Int64
		wg      sync.WaitGroup
	)
	pts := make([][]float64, batchSize)
	for i := range pts {
		pts[i] = []float64{float64(i), 1}
	}
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < batches; i++ {
				err := r.With("hot", false, func(_ *Stream, b Backend) error {
					b.AddBatch(pts)
					return nil
				})
				switch {
				case err == nil:
					acked.Add(batchSize)
				case errors.Is(err, ErrDetached):
					refused.Add(1)
				default:
					t.Errorf("ingest: %v", err)
					return
				}
			}
		}()
	}
	close(start)
	// Detach mid-traffic, hold the handoff window open briefly, abort it.
	if _, err := r.Detach("hot", "elsewhere"); err != nil {
		t.Fatal(err)
	}
	// While detached, the snapshot on disk must already cover every
	// acknowledged point: nothing acked can exist only in RAM once the
	// detach returned. (A batch can be applied under the stream lock but
	// counted into acked a beat later, so the snapshot may run ahead of
	// the acked tally — never behind it.)
	ackedAtFreeze := acked.Load()
	var st fakeState
	raw, err := os.ReadFile(dir + "/hot.snap")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatal(err)
	}
	if st.Count < ackedAtFreeze+1 { // +1 from the materializing ingest
		t.Fatalf("snapshot count %d < acknowledged %d at freeze: detach dropped acked points",
			st.Count, ackedAtFreeze+1)
	}
	if err := r.Reattach("hot"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	var final int64
	if err := r.With("hot", false, func(_ *Stream, b Backend) error {
		final = b.Count()
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if want := acked.Load() + 1; final != want {
		t.Fatalf("final count %d != acknowledged %d (refused %d batches): the 409/retry path dropped points",
			final, want, refused.Load())
	}
}

// TestInstall: the receiving half of a migration. A snapshot produced by
// one registry installs into another with state and spec intact; taken
// ids and garbage envelopes are refused with nothing registered.
func TestInstall(t *testing.T) {
	src := mustNew(t, Config{DataDir: t.TempDir()})
	ingest(t, src, "mover", 25)
	var snap bytes.Buffer
	if err := src.Snapshot("mover", &snap); err != nil {
		t.Fatal(err)
	}

	dstDir := t.TempDir()
	dst := mustNew(t, Config{DataDir: dstDir})
	if err := dst.Install("mover", bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	in, err := dst.Stat("mover")
	if err != nil || in.Count != 25 || !in.Resident {
		t.Fatalf("installed stream: %+v, %v", in, err)
	}
	if _, err := os.Stat(dstDir + "/mover.snap"); err != nil {
		t.Fatalf("install left no snapshot file: %v", err)
	}

	// Taken id: refused, original state untouched.
	if err := dst.Install("mover", strings.NewReader("whatever")); !errors.Is(err, ErrExists) {
		t.Fatalf("install over live stream: %v, want ErrExists", err)
	}
	// Garbage envelope: refused, nothing registered, no file left.
	if err := dst.Install("junk", strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage install accepted")
	}
	if _, err := dst.Stat("junk"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed install left a registered stream: %v", err)
	}
	if _, err := os.Stat(dstDir + "/junk.snap"); !os.IsNotExist(err) {
		t.Fatalf("failed install left a file: %v", err)
	}
	// No persistence, no install.
	mem := mustNew(t, Config{})
	if err := mem.Install("mover", bytes.NewReader(snap.Bytes())); err == nil {
		t.Fatal("install into a memory-only registry succeeded")
	}
}
