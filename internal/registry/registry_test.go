package registry

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeBackend is a minimal snapshot-capable Backend: it just counts
// points. It makes registry tests exercise the lifecycle machinery at
// full speed, with no clustering math in the way.
type fakeBackend struct {
	algo  string
	k     int
	dim   int
	count atomic.Int64
}

func (f *fakeBackend) AddBatch(pts [][]float64) {
	if len(pts) > 0 && f.dim == 0 {
		f.dim = len(pts[0])
	}
	f.count.Add(int64(len(pts)))
}

func (f *fakeBackend) Centers() [][]float64 {
	out := make([][]float64, f.k)
	for i := range out {
		out[i] = []float64{float64(i)}
	}
	return out
}

func (f *fakeBackend) Count() int64      { return f.count.Load() }
func (f *fakeBackend) PointsStored() int { return int(f.count.Load()) }
func (f *fakeBackend) Name() string      { return f.algo }

type fakeState struct {
	Algo  string `json:"algo"`
	K     int    `json:"k"`
	Dim   int    `json:"dim"`
	Count int64  `json:"count"`
}

func (f *fakeBackend) Snapshot(w io.Writer) error {
	return json.NewEncoder(w).Encode(fakeState{Algo: f.algo, K: f.k, Dim: f.dim, Count: f.count.Load()})
}

// fakeHooks builds a registry Config wired to fakeBackend, with Peek.
func fakeHooks(cfg Config) Config {
	cfg.New = func(id string, sc StreamConfig) (Backend, error) {
		if sc.Algo == "Bogus" {
			return nil, errors.New("unknown algorithm")
		}
		return &fakeBackend{algo: sc.Algo, k: sc.K, dim: sc.Dim}, nil
	}
	cfg.Restore = func(id string, want StreamConfig, r io.Reader) (Backend, StreamConfig, error) {
		var st fakeState
		if err := json.NewDecoder(r).Decode(&st); err != nil {
			return nil, StreamConfig{}, err
		}
		if want.Algo != "" && want.Algo != st.Algo {
			return nil, StreamConfig{}, fmt.Errorf("snapshot algo %s does not match requested %s", st.Algo, want.Algo)
		}
		b := &fakeBackend{algo: st.Algo, k: st.K, dim: st.Dim}
		b.count.Store(st.Count)
		return b, StreamConfig{Algo: st.Algo, K: st.K, Dim: st.Dim}, nil
	}
	cfg.Peek = func(r io.Reader) (StreamConfig, int64, error) {
		var st fakeState
		if err := json.NewDecoder(r).Decode(&st); err != nil {
			return StreamConfig{}, 0, err
		}
		return StreamConfig{Algo: st.Algo, K: st.K, Dim: st.Dim}, st.Count, nil
	}
	if cfg.Default == (StreamConfig{}) {
		cfg.Default = StreamConfig{Algo: "CC", K: 3}
	}
	return cfg
}

func mustNew(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r, err := New(fakeHooks(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ingest(t *testing.T, r *Registry, id string, n int) {
	t.Helper()
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{float64(i), 0}
	}
	if err := r.With(id, true, func(_ *Stream, b Backend) error {
		b.AddBatch(pts)
		return nil
	}); err != nil {
		t.Fatalf("ingest %s: %v", id, err)
	}
}

func streamCount(t *testing.T, r *Registry, id string) int64 {
	t.Helper()
	var n int64
	if err := r.With(id, false, func(_ *Stream, b Backend) error {
		n = b.Count()
		return nil
	}); err != nil {
		t.Fatalf("count %s: %v", id, err)
	}
	return n
}

func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "default", "tenant-07", "A.b_c-9", "x"} {
		if err := ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", ".", "..", ".hidden", "-dash", "a/b", "a\\b", "a b",
		"..%2f", "über", "x123456789012345678901234567890123456789012345678901234567890123456789"} {
		if err := ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", bad)
		}
	}
}

func TestLazyCreateAndLookup(t *testing.T) {
	r := mustNew(t, Config{})
	if err := r.With("nope", false, func(*Stream, Backend) error { return nil }); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown stream: err = %v, want ErrNotFound", err)
	}
	ingest(t, r, "a", 5)
	ingest(t, r, "a", 7)
	if got := streamCount(t, r, "a"); got != 12 {
		t.Fatalf("count %d, want 12", got)
	}
	if err := r.With("bad/id", true, func(*Stream, Backend) error { return nil }); err == nil {
		t.Fatal("invalid id accepted")
	}
	st := r.Stats()
	if st.Streams != 1 || st.Resident != 1 || st.Hibernated != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestExplicitCreateDeleteAndErrors(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir})
	if err := r.Create("t1", StreamConfig{Algo: "RCC", K: 7}); err != nil {
		t.Fatal(err)
	}
	if err := r.Create("t1", StreamConfig{Algo: "CC", K: 2}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v, want ErrExists", err)
	}
	if err := r.Create("t2", StreamConfig{Algo: "Bogus", K: 2}); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := r.Stat("t2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("failed create left a registered stream: %v", err)
	}
	in, err := r.Stat("t1")
	if err != nil || in.Algo != "RCC" || in.K != 7 || !in.Resident {
		t.Fatalf("stat %+v err %v", in, err)
	}

	ingest(t, r, "t1", 3)
	if _, err := r.Checkpoint("t1"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "t1.snap")
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}
	if err := r.Delete("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived delete: %v", err)
	}
	if err := r.Delete("t1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v, want ErrNotFound", err)
	}
}

func TestEvictionLRUAndLazyRestore(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	r := mustNew(t, Config{DataDir: dir, MaxResident: 2, now: func() time.Time { return now }})

	ingest(t, r, "a", 10)
	now = now.Add(time.Second)
	ingest(t, r, "b", 20)
	now = now.Add(time.Second)
	ingest(t, r, "c", 30) // over cap: "a" is LRU and must hibernate

	st := r.Stats()
	if st.Resident != 2 || st.Hibernated != 1 || st.Registry.Evictions != 1 {
		t.Fatalf("after third stream: %+v", st)
	}
	ia, _ := r.Stat("a")
	if ia.Resident {
		t.Fatal("LRU stream a still resident")
	}
	if ia.Count != 10 {
		t.Fatalf("hibernated a count %d, want 10", ia.Count)
	}
	if _, err := os.Stat(filepath.Join(dir, "a.snap")); err != nil {
		t.Fatalf("hibernation wrote no snapshot: %v", err)
	}

	// Lazy restore on next access, count intact; "b" (now LRU) goes cold.
	now = now.Add(time.Second)
	if got := streamCount(t, r, "a"); got != 10 {
		t.Fatalf("restored count %d, want 10", got)
	}
	st = r.Stats()
	if st.Registry.Restores != 1 {
		t.Fatalf("restores %d, want 1", st.Registry.Restores)
	}
	if ib, _ := r.Stat("b"); ib.Resident {
		t.Fatal("b should have been evicted on a's restore")
	}
	// Ingest into the restored stream keeps accumulating.
	ingest(t, r, "a", 5)
	if got := streamCount(t, r, "a"); got != 15 {
		t.Fatalf("count after restore+ingest %d, want 15", got)
	}
}

func TestEvictionRequiresDataDir(t *testing.T) {
	if _, err := New(fakeHooks(Config{MaxResident: 2})); err == nil {
		t.Fatal("MaxResident without DataDir accepted")
	}
	if _, err := New(fakeHooks(Config{TTL: time.Second})); err == nil {
		t.Fatal("TTL without DataDir accepted")
	}
}

func TestTTLSweep(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(1000, 0)
	r := mustNew(t, Config{DataDir: dir, TTL: 10 * time.Second, now: func() time.Time { return now }})
	ingest(t, r, "hot", 1)
	ingest(t, r, "cold", 2)
	if n := r.Sweep(); n != 0 {
		t.Fatalf("premature sweep hibernated %d", n)
	}
	now = now.Add(11 * time.Second)
	ingest(t, r, "hot", 1) // refresh hot's last access
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep hibernated %d, want 1", n)
	}
	if ih, _ := r.Stat("hot"); !ih.Resident {
		t.Fatal("recently-touched stream swept")
	}
	if ic, _ := r.Stat("cold"); ic.Resident {
		t.Fatal("idle stream not swept")
	}
	if got := streamCount(t, r, "cold"); got != 2 {
		t.Fatalf("swept stream count %d, want 2", got)
	}
	// Sweep latency accounting: both sweeps (the premature no-op and the
	// real one) are recorded, with the hibernation tally matching.
	st := r.Stats().Registry
	if st.Sweeps != 2 {
		t.Fatalf("recorded %d sweeps, want 2", st.Sweeps)
	}
	if st.SweepHibernated != 1 {
		t.Fatalf("recorded %d sweep hibernations, want 1", st.SweepHibernated)
	}
	if st.SweepLastMs < 0 || st.SweepTotalMs < st.SweepLastMs {
		t.Fatalf("inconsistent sweep latency: last %v total %v", st.SweepLastMs, st.SweepTotalMs)
	}
}

func TestStreamConfigValidate(t *testing.T) {
	good := []StreamConfig{
		{K: 1},
		{K: 10, Dim: 128, Backend: "windowed", WindowN: 1000},
		{K: MaxK, Dim: MaxDim},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", c, err)
		}
	}
	bad := []StreamConfig{
		{K: 0},
		{K: -1},
		{K: MaxK + 1},
		{K: 1, Dim: -1},
		{K: 1, Dim: MaxDim + 1},
		{K: 1, HalfLife: -0.5},
		{K: 1, WindowN: -10},
	}
	for _, c := range bad {
		err := c.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
			continue
		}
		if !errors.Is(err, ErrInvalidConfig) {
			t.Errorf("Validate(%+v) error %v not ErrInvalidConfig", c, err)
		}
	}
}

// TestCreateRejectsInvalidConfig: absurd configurations fail before the
// backend factory ever runs, as ErrInvalidConfig.
func TestCreateRejectsInvalidConfig(t *testing.T) {
	r := mustNew(t, Config{})
	if err := r.Create("t1", StreamConfig{K: -5}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Create(k=-5) = %v, want ErrInvalidConfig", err)
	}
	if err := r.Create("t2", StreamConfig{Dim: MaxDim + 1}); !errors.Is(err, ErrInvalidConfig) {
		t.Fatalf("Create(dim=2^20+1) = %v, want ErrInvalidConfig", err)
	}
	if len(r.List()) != 0 {
		t.Fatalf("rejected creates left streams registered: %+v", r.List())
	}
}

// TestRestoreMismatchSurfaces: an explicitly created stream whose
// snapshot file holds a different configuration fails on access instead
// of silently adopting the file.
func TestRestoreMismatchSurfaces(t *testing.T) {
	dir := t.TempDir()
	r1 := mustNew(t, Config{DataDir: dir})
	ingest(t, r1, "s", 5) // default algo CC
	if err := r1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}

	// New registry over an empty dir; the old CC snapshot "appears" after
	// boot, then the stream is explicitly created as RCC.
	dir2 := t.TempDir()
	r2 := mustNew(t, Config{DataDir: dir2})
	raw, err := os.ReadFile(filepath.Join(dir, "s.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, "s.snap"), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := r2.Create("s", StreamConfig{Algo: "RCC", K: 3}); err == nil {
		t.Fatal("Create adopted a snapshot with a mismatched config")
	}
}

func TestBootScanRestoresDirectory(t *testing.T) {
	dir := t.TempDir()
	r1 := mustNew(t, Config{DataDir: dir})
	ingest(t, r1, "x", 11)
	ingest(t, r1, "y", 22)
	if err := r1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// Junk that must not become a stream.
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644)
	os.WriteFile(filepath.Join(dir, ".hidden.snap"), []byte("{}"), 0o644)

	r2 := mustNew(t, Config{DataDir: dir})
	infos := r2.List()
	if len(infos) != 2 {
		t.Fatalf("boot scan found %d streams, want 2: %+v", len(infos), infos)
	}
	for _, in := range infos {
		if in.Resident {
			t.Fatalf("boot scan made %s resident (should stay cold)", in.ID)
		}
	}
	if infos[0].ID != "x" || infos[0].Count != 11 || infos[1].ID != "y" || infos[1].Count != 22 {
		t.Fatalf("boot metadata %+v", infos)
	}
	// First access lazily restores with state intact.
	if got := streamCount(t, r2, "y"); got != 22 {
		t.Fatalf("restored y count %d, want 22", got)
	}
}

func TestBootScanToleratesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	r1 := mustNew(t, Config{DataDir: dir})
	ingest(t, r1, "good", 7)
	if err := r1.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	// A damaged tenant file must not brick the whole daemon at boot; the
	// damage surfaces on that stream's first access instead.
	os.WriteFile(filepath.Join(dir, "bad.snap"), []byte("not json"), 0o644)

	r2 := mustNew(t, Config{DataDir: dir})
	if n := len(r2.List()); n != 2 {
		t.Fatalf("boot scan found %d streams, want 2", n)
	}
	if got := streamCount(t, r2, "good"); got != 7 {
		t.Fatalf("healthy stream count %d, want 7", got)
	}
	err := r2.With("bad", false, func(_ *Stream, _ Backend) error { return nil })
	if err == nil {
		t.Fatal("accessing the corrupt stream should fail to restore")
	}
}

func TestCheckpointAllSkipsPathlessStreams(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "default.snap")
	r := mustNew(t, Config{Files: map[string]string{"default": file}})
	ingest(t, r, "default", 3)
	ingest(t, r, "ephemeral", 5) // no Files entry, no DataDir: memory-only
	if err := r.CheckpointAll(); err != nil {
		t.Fatalf("CheckpointAll must skip memory-only streams, got %v", err)
	}
	if _, err := os.Stat(file); err != nil {
		t.Fatalf("default stream was not checkpointed: %v", err)
	}
	// Explicit checkpoint of a path-less stream is still an error.
	if _, err := r.Checkpoint("ephemeral"); err == nil {
		t.Fatal("explicit Checkpoint of a path-less stream should fail")
	}
}

func TestCreateDoesNotClobberRacedLazyBackend(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir})
	// Simulate the PUT-vs-first-ingest race: the lazy ingest wins after
	// Create has registered the entry but before it materializes. Create
	// must keep the backend holding acknowledged points.
	ingest(t, r, "s", 6)
	r.mu.Lock()
	e := r.streams["s"]
	r.mu.Unlock()
	e.mu.Lock()
	if _, err := r.materialize(e, nil); err != nil { // the call Create makes
		e.mu.Unlock()
		t.Fatal(err)
	}
	e.mu.Unlock()
	if got := streamCount(t, r, "s"); got != 6 {
		t.Fatalf("re-materialize clobbered backend: count %d, want 6", got)
	}
}

func TestFilesOverrideMapsLegacyCheckpoint(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "state.snap")
	r1 := mustNew(t, Config{Files: map[string]string{"default": file}})
	ingest(t, r1, "default", 9)
	if _, err := r1.Checkpoint("default"); err != nil {
		t.Fatal(err)
	}
	r2 := mustNew(t, Config{Files: map[string]string{"default": file}})
	in, err := r2.Stat("default")
	if err != nil || in.Count != 9 || in.Resident {
		t.Fatalf("legacy file boot: %+v err %v", in, err)
	}
	if got := streamCount(t, r2, "default"); got != 9 {
		t.Fatalf("restored count %d, want 9", got)
	}
}

func TestCheckpointAllSkipsClean(t *testing.T) {
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir})
	ingest(t, r, "a", 4)
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	w1 := r.Stats().Checkpoint.Written
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if w2 := r.Stats().Checkpoint.Written; w2 != w1 {
		t.Fatalf("idle CheckpointAll rewrote: %d -> %d", w1, w2)
	}
	ingest(t, r, "a", 1)
	if err := r.CheckpointAll(); err != nil {
		t.Fatal(err)
	}
	if w3 := r.Stats().Checkpoint.Written; w3 != w1+1 {
		t.Fatalf("dirty CheckpointAll wrote %d, want %d", w3, w1+1)
	}
}

func TestSnapshotServesColdStreamFromDisk(t *testing.T) {
	dir := t.TempDir()
	now := time.Unix(0, 0)
	r := mustNew(t, Config{DataDir: dir, TTL: time.Second, now: func() time.Time { return now }})
	ingest(t, r, "a", 6)
	now = now.Add(2 * time.Second)
	if n := r.Sweep(); n != 1 {
		t.Fatalf("sweep %d", n)
	}
	var buf1, buf2 []byte
	{
		var w bytesWriter
		if err := r.Snapshot("a", &w); err != nil {
			t.Fatal(err)
		}
		buf1 = w.b
	}
	if in, _ := r.Stat("a"); in.Resident {
		t.Fatal("Snapshot of a cold stream restored it")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "a.snap"))
	if err != nil {
		t.Fatal(err)
	}
	buf2 = raw
	if string(buf1) != string(buf2) {
		t.Fatal("cold Snapshot differs from the on-disk file")
	}
}

type bytesWriter struct{ b []byte }

func (w *bytesWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }

// TestConcurrentChurn is the eviction-under-traffic race test: many
// goroutines hammer ingest and queries across more streams than may be
// resident while TTL sweeps run concurrently, so hibernate/restore churn
// constantly interleaves with traffic. Run with -race. At the end every
// stream must have exactly the points its producers were acknowledged
// for — eviction may never lose a point.
func TestConcurrentChurn(t *testing.T) {
	const (
		streams   = 24
		producers = 8
		rounds    = 40
		batch     = 5
	)
	dir := t.TempDir()
	r := mustNew(t, Config{DataDir: dir, MaxResident: 4, TTL: time.Nanosecond})

	ids := make([]string, streams)
	for i := range ids {
		ids[i] = fmt.Sprintf("tenant-%02d", i)
	}
	var sent [streams]atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Sweeper: with a nanosecond TTL every resident stream is always
	// sweepable, so hibernation churns as fast as it can.
	sweepDone := make(chan struct{})
	go func() {
		defer close(sweepDone)
		for {
			select {
			case <-stop:
				return
			default:
				r.Sweep()
			}
		}
	}()

	pts := make([][]float64, batch)
	for i := range pts {
		pts[i] = []float64{float64(i), 1}
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				id := (p + round) % streams
				err := r.With(ids[id], true, func(_ *Stream, b Backend) error {
					b.AddBatch(pts)
					return nil
				})
				if err != nil {
					t.Errorf("ingest %s: %v", ids[id], err)
					return
				}
				sent[id].Add(batch)
				// Interleave queries and stats so every code path runs
				// against the churn.
				if round%3 == 0 {
					r.With(ids[(id+streams/2)%streams], true, func(_ *Stream, b Backend) error {
						b.Centers()
						return nil
					})
				}
				if round%7 == 0 {
					r.List()
					r.Stats()
				}
			}
		}(p)
	}
	wg.Wait()
	close(stop)
	<-sweepDone

	st := r.Stats()
	if st.Registry.Evictions == 0 || st.Registry.Restores == 0 {
		t.Fatalf("churn produced no eviction/restore cycles: %+v", st.Registry)
	}
	if st.Registry.EvictFailures != 0 {
		t.Fatalf("evict failures: %+v", st.Registry)
	}
	for i, id := range ids {
		want := sent[i].Load()
		if want == 0 {
			continue
		}
		if got := streamCount(t, r, id); got != want {
			t.Errorf("stream %s: count %d, want %d (points lost in churn)", id, got, want)
		}
	}
}

func BenchmarkRegistryIngestResident(b *testing.B) {
	r, err := New(fakeHooks(Config{}))
	if err != nil {
		b.Fatal(err)
	}
	pts := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.With("bench", true, func(_ *Stream, be Backend) error {
			be.AddBatch(pts)
			return nil
		})
	}
}

func BenchmarkRegistryHibernateRestore(b *testing.B) {
	dir := b.TempDir()
	r, err := New(fakeHooks(Config{DataDir: dir}))
	if err != nil {
		b.Fatal(err)
	}
	ingest := [][]float64{{1, 2}}
	r.With("bench", true, func(_ *Stream, be Backend) error { be.AddBatch(ingest); return nil })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.mu.Lock()
		e := r.streams["bench"]
		r.mu.Unlock()
		if err := r.hibernate(e); err != nil {
			b.Fatal(err)
		}
		if err := r.With("bench", false, func(*Stream, Backend) error { return nil }); err != nil {
			b.Fatal(err)
		}
	}
}
