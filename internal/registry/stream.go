package registry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Stream is one registered tenant: a name, a snapshot path, and — while
// resident — a live backend. All fields except the atomics are guarded
// by mu; the registry passes the Stream into With callbacks with mu
// held, so callbacks may use the exported methods but must not retain
// the pointer past their return.
type Stream struct {
	id   string
	path string

	mu       sync.RWMutex
	backend  Backend // nil while hibernated
	cfg      StreamConfig
	explicit bool // created via Create (PUT): cfg is a promise, not a default
	deleted  bool
	// detached marks a stream frozen for migration to another daemon:
	// hibernated, file authoritative, every request refused with
	// ErrDetached until Reattach or Delete. newOwner is the forwarding
	// hint handed to refused clients.
	detached bool
	newOwner string
	// standby marks a detached entry as a replication target: the copy was
	// shipped here by InstallStandby and may be overwritten by a fresher
	// ship at any time. The flag is what distinguishes a copy that is safe
	// to overwrite (a replica, whose newest state lives elsewhere) from a
	// detached migration source (the only authoritative copy, never to be
	// clobbered). Reattach — promotion — clears it.
	standby bool
	// Metadata captured at hibernation (or boot Peek) time, served while
	// the stream is cold.
	count         int64
	stored        int
	lastCkptCount int64

	// restoreTimes holds the instants (unix nanos) of the most recent
	// snapshot restores, newest last — the churn signal restore-thrash
	// admission control sheds on. Guarded by mu held exclusively (only
	// materialize and admitRestore touch it).
	restoreTimes []int64

	// Token-bucket state for the per-tenant ingest quotas, guarded by its
	// own mutex: quota checks run inside With callbacks, which hold mu
	// only in read mode (shared across concurrent requests). Rates come
	// from cfg at check time; tokens start full (one second of burst) on
	// first use.
	qmu         sync.Mutex
	qInit       bool
	ptsTokens   float64
	bytesTokens float64
	qLast       int64 // unix nanos of the last refill

	dim        atomic.Int64 // adopted point dimension; 0 until known
	lastAccess atomic.Int64 // unix nanos of the most recent access
}

// ID returns the stream's name.
func (e *Stream) ID() string { return e.id }

// Config returns the stream's clustering configuration.
func (e *Stream) Config() StreamConfig { return e.cfg }

// Dim returns the stream's point dimension, 0 while unknown.
func (e *Stream) Dim() int { return int(e.dim.Load()) }

// AdoptDim fixes the stream's dimension to d if none is known yet (no-op
// otherwise). The daemon uses it to apply a -dim flag to a restored
// stream whose snapshot predates any ingested point.
func (e *Stream) AdoptDim(d int) {
	if d > 0 {
		e.dim.CompareAndSwap(0, int64(d))
	}
}

// CheckDim enforces a single point dimension per stream, adopting the
// first observed dimension when none was configured. Lock-free; safe
// from concurrent With callbacks.
func (e *Stream) CheckDim(p []float64) error {
	d := int64(len(p))
	if e.dim.CompareAndSwap(0, d) {
		return nil
	}
	if want := e.dim.Load(); want != d {
		return fmt.Errorf("dimension mismatch: stream is %d-dimensional, got %d", want, d)
	}
	return nil
}

// info snapshots the stream's description, preferring the live backend's
// numbers when resident.
func (e *Stream) info() Info {
	e.mu.RLock()
	defer e.mu.RUnlock()
	in := Info{
		ID:           e.id,
		Detached:     e.detached,
		Standby:      e.standby,
		Backend:      e.cfg.Backend,
		Algo:         e.cfg.Algo,
		K:            e.cfg.K,
		Dim:          int(e.dim.Load()),
		HalfLife:     e.cfg.HalfLife,
		HalfLifeSecs: e.cfg.HalfLifeSeconds,
		WindowN:      e.cfg.WindowN,
		PointsPerSec: e.cfg.PointsPerSec,
		BytesPerSec:  e.cfg.BytesPerSec,
		MaxResBytes:  e.cfg.MaxResidentBytes,
		Count:        e.count,
		PointsStored: e.stored,
		LastAccess:   e.lastAccess.Load() / 1e9,
	}
	if b := e.backend; b != nil {
		in.Resident = true
		in.Count = b.Count()
		in.PointsStored = b.PointsStored()
		if s, ok := b.(Sharder); ok {
			in.Shards = s.NumShards()
		}
	}
	return in
}

// Sharder is optionally implemented by backends with parallel ingest
// lanes; Info reports the lane count for resident streams.
type Sharder interface {
	NumShards() int
}
