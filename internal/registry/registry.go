// Package registry hosts many independent named streams inside one
// serving process — the tenant-density layer the paper's smallness
// results make possible: per-stream coreset state is polylogarithmic in
// the stream, so a single daemon can hold thousands of tenants, and the
// ones it cannot hold in RAM cost nothing while cold.
//
// Each stream owns one clustering backend (in the shipped daemon any
// streamkm backend variant — concurrent, decayed or windowed, all with
// sharded ingest lanes; backends reporting a lane count through the
// Sharder interface surface it in Info and /stats). The registry
// bounds how many are resident at
// once: past MaxResident — or past an idle TTL — the least-recently-used
// stream is hibernated, i.e. checkpointed to its per-stream snapshot
// file (the same versioned envelope internal/persist writes for daemon
// checkpoints) and its backend released. The next access restores it
// lazily, with every ingested point's weight intact, so eviction is a
// pure RAM/latency trade, never data loss.
//
// Concurrency model: a registry-level mutex guards only the id → stream
// map and residency accounting; each stream has its own RWMutex held in
// read mode for the duration of every ingest/query and in write mode
// across the hibernate and restore transitions. A stream is therefore
// never hibernated mid-request, and at most one goroutine restores it.
// To keep the pair deadlock-free, a goroutine holds at most one stream
// lock at a time: capacity enforcement runs after the triggering request
// releases its stream, and picks victims from lock-free last-access
// timestamps.
package registry

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"streamkm/internal/metrics"
	"streamkm/internal/persist"
	"streamkm/internal/trace"
	"streamkm/internal/wire"
)

// Backend is the per-stream clustering surface the registry manages. It
// is the same shape as the HTTP layer's Clusterer interface, so any
// servable backend slots in. Implementations must be safe for concurrent
// use.
type Backend interface {
	AddBatch(pts [][]float64)
	Centers() [][]float64
	Count() int64
	PointsStored() int
	Name() string
}

// Snapshotter is the additional capability hibernation needs: backends
// that cannot serialize themselves can be hosted but never evicted.
type Snapshotter interface {
	Snapshot(w io.Writer) error
}

// StreamConfig is the per-stream clustering configuration — the wire
// form of a backend spec: which backend variant and algorithm back the
// stream, how many centers queries answer, the expected point dimension
// (0 = adopt from the first ingested point), and the variant-specific
// knobs (decay half-life, sliding-window length). The registry treats
// the spec as opaque beyond basic bounds: the New/Restore factories own
// variant semantics.
type StreamConfig struct {
	Backend  string  `json:"backend,omitempty"`
	Algo     string  `json:"algo"`
	K        int     `json:"k"`
	Dim      int     `json:"dim"`
	HalfLife float64 `json:"half_life,omitempty"`
	// HalfLifeSeconds is the wall-clock decay half-life in seconds,
	// mutually exclusive with the arrival-count HalfLife; only decayed
	// backends accept either.
	HalfLifeSeconds float64 `json:"half_life_seconds,omitempty"`
	WindowN         int64   `json:"window_n,omitempty"`
	// Shards is the stream's ingest-lane parallelism; 0 inherits the
	// serving layer's default. On restore the snapshot's recorded lane
	// layout always wins over this knob.
	Shards int `json:"shards,omitempty"`

	// Per-tenant quotas, all 0 = unlimited. PointsPerSec and BytesPerSec
	// are sustained ingest rates enforced by a token bucket at the
	// registry boundary (burst of roughly one second of rate);
	// MaxResidentBytes caps the estimated resident footprint of the
	// stream's stored points. Exceeding any of them refuses the request
	// with a ThrottleError (HTTP 429 + Retry-After), never partial
	// application.
	PointsPerSec     float64 `json:"points_per_sec,omitempty"`
	BytesPerSec      float64 `json:"bytes_per_sec,omitempty"`
	MaxResidentBytes int64   `json:"max_resident_bytes,omitempty"`
}

// Bounds beyond which a stream configuration is rejected as absurd
// rather than handed to a backend constructor: a dim of a million would
// make every ingested point allocate megabytes before any dimension
// check fires.
const (
	MaxK      = 1 << 20
	MaxDim    = 1 << 20
	MaxShards = 1 << 10
)

// Validate rejects stream configurations no backend constructor should
// ever see: non-positive k, negative or absurd dimensions, negative
// variant knobs. Variant-specific requirements (e.g. a decayed backend
// needing a half-life) stay with the factory — its error also surfaces
// as a client error.
func (c StreamConfig) Validate() error {
	if c.K < 1 {
		return fmt.Errorf("%w: k must be >= 1, got %d", ErrInvalidConfig, c.K)
	}
	if c.K > MaxK {
		return fmt.Errorf("%w: k %d exceeds the maximum %d", ErrInvalidConfig, c.K, MaxK)
	}
	if c.Dim < 0 {
		return fmt.Errorf("%w: dim must be >= 0, got %d", ErrInvalidConfig, c.Dim)
	}
	if c.Dim > MaxDim {
		return fmt.Errorf("%w: dim %d exceeds the maximum %d", ErrInvalidConfig, c.Dim, MaxDim)
	}
	if c.HalfLife < 0 {
		return fmt.Errorf("%w: half_life must be >= 0, got %v", ErrInvalidConfig, c.HalfLife)
	}
	if c.HalfLifeSeconds < 0 {
		return fmt.Errorf("%w: half_life_seconds must be >= 0, got %v", ErrInvalidConfig, c.HalfLifeSeconds)
	}
	if c.HalfLife > 0 && c.HalfLifeSeconds > 0 {
		return fmt.Errorf("%w: half_life (%v) and half_life_seconds (%v) are mutually exclusive", ErrInvalidConfig, c.HalfLife, c.HalfLifeSeconds)
	}
	if c.WindowN < 0 {
		return fmt.Errorf("%w: window_n must be >= 0, got %d", ErrInvalidConfig, c.WindowN)
	}
	if c.Shards < 0 {
		return fmt.Errorf("%w: shards must be >= 0, got %d", ErrInvalidConfig, c.Shards)
	}
	if c.Shards > MaxShards {
		return fmt.Errorf("%w: shards %d exceeds the maximum %d", ErrInvalidConfig, c.Shards, MaxShards)
	}
	if c.PointsPerSec < 0 {
		return fmt.Errorf("%w: points_per_sec must be >= 0, got %v", ErrInvalidConfig, c.PointsPerSec)
	}
	if c.BytesPerSec < 0 {
		return fmt.Errorf("%w: bytes_per_sec must be >= 0, got %v", ErrInvalidConfig, c.BytesPerSec)
	}
	if c.MaxResidentBytes < 0 {
		return fmt.Errorf("%w: max_resident_bytes must be >= 0, got %d", ErrInvalidConfig, c.MaxResidentBytes)
	}
	return nil
}

// Config configures a Registry.
type Config struct {
	// MaxResident bounds how many streams hold a live backend at once;
	// exceeding it hibernates the least-recently-used stream. 0 means
	// unbounded. Requires DataDir.
	MaxResident int
	// TTL hibernates streams idle for longer than this on each Sweep.
	// 0 disables idle hibernation. Requires DataDir.
	TTL time.Duration
	// DataDir is where per-stream snapshots live (<id>.snap). Existing
	// snapshots are registered — hibernated, costing no RAM — when the
	// registry is created. Empty disables persistence (and therefore
	// hibernation) except for streams with an explicit Files entry.
	DataDir string
	// Files maps stream ids to explicit snapshot paths, overriding the
	// DataDir naming scheme. Used by the daemon to keep the legacy
	// single-file -checkpoint flag meaning "the default stream's file".
	Files map[string]string
	// Default is the configuration for streams created lazily on first
	// ingest.
	Default StreamConfig
	// New builds a fresh backend for a stream. Required.
	New func(id string, cfg StreamConfig) (Backend, error)
	// Restore rebuilds a backend from a snapshot previously written by
	// its Snapshotter, returning the configuration recorded in the
	// snapshot. want carries the configuration the stream was explicitly
	// created with (zero-valued for lazily or boot-registered streams);
	// implementations must fail on a mismatch rather than resume a
	// differently-specced snapshot under a tenant's name. Required.
	Restore func(id string, want StreamConfig, r io.Reader) (Backend, StreamConfig, error)
	// Peek cheaply reads a snapshot's configuration and point count
	// without building a backend; it lets the boot scan register
	// hibernated streams with accurate metadata while keeping them cold.
	// Optional: when nil, metadata of never-accessed streams reads as
	// zero until first restore.
	Peek func(r io.Reader) (StreamConfig, int64, error)

	// ThrashRestores and ThrashWindow configure restore-thrash admission
	// control: when an access to a cold stream would trigger its
	// ThrashRestores'th restore within ThrashWindow, the access is shed
	// with a ThrottleError (HTTP 429 + Retry-After) instead of restoring
	// — a stream churning through hibernation is cheaper refused for a
	// moment than allowed to collapse the daemon's p95 with restore
	// stalls. Either value <= 0 disables shedding.
	ThrashRestores int
	ThrashWindow   time.Duration

	// now is a test hook; nil means time.Now.
	now func() time.Time
}

// Registry is a concurrency-safe, capacity-bounded collection of named
// streams. Create with New.
type Registry struct {
	cfg Config

	mu       sync.Mutex
	streams  map[string]*Stream
	resident map[string]*Stream

	stats      metrics.RegistryStats
	checkpoint metrics.CheckpointStats

	buffers wire.BufferPool
}

// Registry errors distinguished by the HTTP layer.
var (
	ErrNotFound      = errors.New("registry: no such stream")
	ErrExists        = errors.New("registry: stream already exists")
	ErrInvalidID     = errors.New("registry: invalid stream id")
	ErrInvalidConfig = errors.New("registry: invalid stream config")
	ErrDetached      = errors.New("registry: stream detached for migration")
	ErrThrottled     = errors.New("registry: request throttled")
)

// DetachedError reports a request against a stream frozen for migration
// to another daemon. Owner, when non-empty, is the forwarding hint the
// detacher supplied (where the tenant is moving); the HTTP layer
// surfaces it as an X-Streamkm-Owner header on the 409 so a retrying
// client can follow the move. errors.Is(err, ErrDetached) matches.
type DetachedError struct {
	ID    string
	Owner string
}

func (e *DetachedError) Error() string {
	if e.Owner == "" {
		return fmt.Sprintf("registry: stream %q detached for migration", e.ID)
	}
	return fmt.Sprintf("registry: stream %q detached for migration to %s", e.ID, e.Owner)
}

// Unwrap lets errors.Is(err, ErrDetached) match.
func (e *DetachedError) Unwrap() error { return ErrDetached }

var idRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// ValidateID reports whether id is acceptable as a stream name: 1-64
// characters, starting with a letter or digit, then letters, digits,
// dot, underscore or dash. The first-character rule keeps ids safe as
// file names (no dotfiles, no traversal, no separators).
func ValidateID(id string) error {
	if !idRE.MatchString(id) {
		return fmt.Errorf("%w %q (want [A-Za-z0-9][A-Za-z0-9._-]{0,63})", ErrInvalidID, id)
	}
	return nil
}

// New builds a registry and registers — without restoring — every
// snapshot already present in cfg.DataDir and cfg.Files, so a restarted
// daemon sees all its tenants immediately while they stay cold.
func New(cfg Config) (*Registry, error) {
	if cfg.New == nil || cfg.Restore == nil {
		return nil, errors.New("registry: Config.New and Config.Restore are required")
	}
	if (cfg.MaxResident > 0 || cfg.TTL > 0) && cfg.DataDir == "" {
		return nil, errors.New("registry: MaxResident/TTL eviction requires DataDir (evicting without persistence would lose data)")
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	for id := range cfg.Files {
		if err := ValidateID(id); err != nil {
			return nil, err
		}
	}
	r := &Registry{
		cfg:      cfg,
		streams:  make(map[string]*Stream),
		resident: make(map[string]*Stream),
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("registry: data dir: %w", err)
		}
	}
	if err := r.bootScan(); err != nil {
		return nil, err
	}
	return r, nil
}

// Buffers returns the registry-wide ingest buffer pool: every stream's
// binary-ingest request recycles its body and point-header buffers here,
// so a daemon hosting thousands of tenants shares one set of warm
// buffers instead of allocating per stream.
func (r *Registry) Buffers() *wire.BufferPool { return &r.buffers }

// bootScan registers hibernated entries for every snapshot file found in
// Files and DataDir. O(#files) with Peek; no backend is built.
func (r *Registry) bootScan() error {
	seen := make(map[string]bool) // cleaned paths claimed by Files
	for id, path := range r.cfg.Files {
		seen[filepath.Clean(path)] = true
		if _, err := os.Stat(path); err != nil {
			if os.IsNotExist(err) {
				continue // no state yet; the stream materializes on demand
			}
			return fmt.Errorf("registry: %s: %w", path, err)
		}
		r.registerHibernated(id, path)
	}
	if r.cfg.DataDir == "" {
		return nil
	}
	matches, err := filepath.Glob(filepath.Join(r.cfg.DataDir, "*.snap"))
	if err != nil {
		return fmt.Errorf("registry: scan %s: %w", r.cfg.DataDir, err)
	}
	sort.Strings(matches)
	for _, path := range matches {
		if seen[filepath.Clean(path)] {
			continue
		}
		id := strings.TrimSuffix(filepath.Base(path), ".snap")
		if ValidateID(id) != nil {
			continue // not one of ours; leave foreign files alone
		}
		if _, ok := r.streams[id]; ok {
			continue
		}
		r.registerHibernated(id, path)
	}
	return nil
}

// registerHibernated adds a cold entry for an on-disk snapshot, using
// Peek (when available) to fill metadata. A snapshot Peek cannot read is
// registered anyway, with zero metadata: one damaged tenant file must
// not keep the daemon from serving every other tenant, and the damage
// still surfaces — as a restore error on that stream's next access
// rather than a boot failure.
func (r *Registry) registerHibernated(id, path string) {
	e := &Stream{id: id, path: path, cfg: r.cfg.Default}
	if r.cfg.Peek != nil {
		if f, err := os.Open(path); err == nil {
			cfg, count, err := r.cfg.Peek(f)
			f.Close()
			if err == nil {
				e.cfg = cfg
				e.count = count
				e.lastCkptCount = count
				if cfg.Dim > 0 {
					e.dim.Store(int64(cfg.Dim))
				}
			}
		}
	}
	e.lastAccess.Store(r.cfg.now().UnixNano())
	r.streams[id] = e
	r.stats.RecordCreate()
}

// pathFor returns the snapshot path for id, "" when the stream has no
// persistence.
func (r *Registry) pathFor(id string) string {
	if p, ok := r.cfg.Files[id]; ok {
		return p
	}
	if r.cfg.DataDir != "" {
		return filepath.Join(r.cfg.DataDir, id+".snap")
	}
	return ""
}

// lookup finds the entry for id, registering a fresh one when create is
// set.
func (r *Registry) lookup(id string, create bool) (*Stream, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.streams[id]; ok {
		return e, nil
	}
	if !create {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if err := ValidateID(id); err != nil {
		return nil, err
	}
	// Lazy creation adopts the registry default; vet it exactly like an
	// explicit PUT body so a misconfigured default surfaces as a client
	// error on first ingest, not a backend-constructor failure.
	if err := r.cfg.Default.Validate(); err != nil {
		return nil, err
	}
	e := &Stream{id: id, path: r.pathFor(id), cfg: r.cfg.Default}
	if e.cfg.Dim > 0 {
		e.dim.Store(int64(e.cfg.Dim))
	}
	e.lastAccess.Store(r.cfg.now().UnixNano())
	r.streams[id] = e
	r.stats.RecordCreate()
	return e, nil
}

// With runs fn against the stream's backend, materializing the stream
// first if it is cold: restored from its snapshot file when one exists,
// created fresh (with the registry's default configuration) when create
// is set, ErrNotFound otherwise. The backend cannot be hibernated or
// deleted while fn runs. After fn returns, the resident-capacity bound
// is enforced, which may hibernate some other least-recently-used
// stream.
func (r *Registry) With(id string, create bool, fn func(s *Stream, b Backend) error) error {
	return r.WithContext(context.Background(), id, create, fn)
}

// WithContext is With joining the request's trace: when ctx carries a
// span (internal/trace), time spent acquiring the stream's lock is
// recorded as its lock-wait stage and a cold restore from the snapshot
// file as its restore stage — the two costs a caller cannot see from
// the outside.
func (r *Registry) WithContext(ctx context.Context, id string, create bool, fn func(s *Stream, b Backend) error) error {
	sp := trace.FromContext(ctx)
	for {
		e, err := r.lookup(id, create)
		if err != nil {
			return err
		}
		touch := func() { e.lastAccess.Store(r.cfg.now().UnixNano()) }
		touch()

		// Fast path: already resident, shared lock only.
		t0 := r.cfg.now()
		e.mu.RLock()
		sp.RecordStage("lock-wait", r.cfg.now().Sub(t0))
		if e.deleted {
			e.mu.RUnlock()
			continue // entry was deleted under us; re-resolve the id
		}
		if e.detached {
			err := &DetachedError{ID: e.id, Owner: e.newOwner}
			e.mu.RUnlock()
			return err
		}
		if b := e.backend; b != nil {
			err := fn(e, b)
			e.mu.RUnlock()
			touch()
			return err
		}
		e.mu.RUnlock()

		// Slow path: materialize under the exclusive lock.
		t0 = r.cfg.now()
		e.mu.Lock()
		sp.RecordStage("lock-wait", r.cfg.now().Sub(t0))
		if e.deleted {
			e.mu.Unlock()
			continue
		}
		if e.detached {
			err := &DetachedError{ID: e.id, Owner: e.newOwner}
			e.mu.Unlock()
			return err
		}
		b := e.backend
		if b == nil {
			if err = r.admitRestore(e); err != nil {
				e.mu.Unlock()
				return err
			}
			if b, err = r.materialize(e, sp); err != nil {
				e.mu.Unlock()
				return err
			}
		}
		err = fn(e, b)
		e.mu.Unlock()
		touch()
		r.enforceCap()
		return err
	}
}

// materialize gives e a live backend; the caller holds e.mu. A snapshot
// file on disk wins over a fresh build, so a lazily re-accessed
// hibernated stream resumes rather than restarts. An already-live
// backend always wins over both: it may hold acknowledged points newer
// than any checkpoint (e.g. a lazy ingest racing an explicit Create),
// so it is never rebuilt over.
func (r *Registry) materialize(e *Stream, sp *trace.Span) (Backend, error) {
	if e.backend != nil {
		return e.backend, nil
	}
	var b Backend
	if e.path != "" {
		f, err := os.Open(e.path)
		switch {
		case err == nil:
			// Streams created explicitly (PUT) pass their declared spec down
			// so the restore can refuse a mismatched file; lazily or
			// boot-registered streams adopt whatever the snapshot holds.
			var want StreamConfig
			if e.explicit {
				want = e.cfg
			}
			var cfg StreamConfig
			endRestore := sp.StartStage("restore")
			b, cfg, err = r.cfg.Restore(e.id, want, f)
			endRestore()
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("registry: restore %s: %w", e.path, err)
			}
			e.cfg = cfg
			if cfg.Dim > 0 {
				e.dim.Store(int64(cfg.Dim))
			}
			e.lastCkptCount = b.Count() // the file already holds this state
			r.stats.RecordRestore()
			e.recordRestore(r.cfg.now(), r.cfg.ThrashRestores)
		case os.IsNotExist(err):
		default:
			return nil, fmt.Errorf("registry: %s: %w", e.path, err)
		}
	}
	if b == nil {
		var err error
		b, err = r.cfg.New(e.id, e.cfg)
		if err != nil {
			return nil, fmt.Errorf("registry: create %q: %w", e.id, err)
		}
		e.lastCkptCount = -1 // never checkpointed
	}
	e.backend = b
	r.mu.Lock()
	r.resident[e.id] = e
	r.mu.Unlock()
	return b, nil
}

// enforceCap hibernates least-recently-used resident streams until the
// resident count is back under MaxResident. Called with no stream lock
// held. Victims that fail to hibernate (or turn out to be busy growing)
// are skipped this round and retried on the next access.
func (r *Registry) enforceCap() {
	max := r.cfg.MaxResident
	if max <= 0 {
		return
	}
	for {
		r.mu.Lock()
		over := len(r.resident) - max
		if over <= 0 {
			r.mu.Unlock()
			return
		}
		victims := make([]*Stream, 0, len(r.resident))
		for _, e := range r.resident {
			victims = append(victims, e)
		}
		r.mu.Unlock()
		sort.Slice(victims, func(i, j int) bool {
			return victims[i].lastAccess.Load() < victims[j].lastAccess.Load()
		})

		evicted := 0
		for _, v := range victims {
			if evicted >= over {
				break
			}
			if err := r.hibernate(v); err == nil {
				evicted++
			}
		}
		if evicted == 0 {
			return // nothing evictable; give up rather than spin
		}
	}
}

// hibernate checkpoints e to its snapshot file and releases its backend.
// Holding no other locks, it takes e.mu exclusively, so it waits out any
// in-flight requests and can never race an ingest.
func (r *Registry) hibernate(e *Stream) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return r.hibernateLocked(e)
}

// hibernateLocked is hibernate's body; the caller holds e.mu exclusively.
func (r *Registry) hibernateLocked(e *Stream) error {
	b := e.backend
	if b == nil || e.deleted {
		return nil // already cold (or gone); not a failure
	}
	sn, ok := b.(Snapshotter)
	if !ok {
		r.stats.RecordEvictFailure()
		return fmt.Errorf("registry: backend %s cannot snapshot; stream %q stays resident", b.Name(), e.id)
	}
	if e.path == "" {
		r.stats.RecordEvictFailure()
		return fmt.Errorf("registry: stream %q has no snapshot path; stays resident", e.id)
	}
	n, err := persist.WriteFileAtomic(e.path, sn.Snapshot)
	if err != nil {
		r.stats.RecordEvictFailure()
		r.checkpoint.RecordFailure()
		return fmt.Errorf("registry: hibernate %q: %w", e.id, err)
	}
	r.checkpoint.RecordSuccess(n, r.cfg.now())
	e.count = b.Count()
	e.stored = b.PointsStored()
	e.lastCkptCount = e.count
	e.backend = nil
	// While the stream is cold, listings serve e.cfg — which so far holds
	// the *requested* configuration, not necessarily the spec the backend
	// actually ran with (a lazily created stream under a spec-less
	// default has no backend recorded at all; a windowed stream carries a
	// phantom inherited algo). Peek the snapshot just written, exactly as
	// the boot scan does, so a hibernated stream's listing always shows
	// the authoritative backend spec.
	if r.cfg.Peek != nil {
		if f, err := os.Open(e.path); err == nil {
			if cfg, _, err := r.cfg.Peek(f); err == nil {
				e.cfg = cfg
			}
			f.Close()
		}
	}
	r.mu.Lock()
	delete(r.resident, e.id)
	r.mu.Unlock()
	r.stats.RecordEviction()
	return nil
}

// Sweep hibernates every resident stream idle for longer than the
// configured TTL, returning how many went cold. The daemon calls it on
// its checkpoint ticker. No-op when TTL is 0.
//
// Durability is batched: each hibernation fsyncs its own file contents
// (via WriteFileAtomic) but the directory entries from the atomic
// renames are flushed with one fsync per distinct snapshot directory
// after the whole batch — hibernating hundreds of idle streams costs
// one directory sync (per directory actually written, covering Files
// overrides outside DataDir), not one per stream. Sweep latency is
// recorded in RegistryStats and surfaces in /stats.
func (r *Registry) Sweep() int {
	if r.cfg.TTL <= 0 {
		return 0
	}
	start := r.cfg.now()
	cutoff := start.Add(-r.cfg.TTL).UnixNano()
	r.mu.Lock()
	victims := make([]*Stream, 0, len(r.resident))
	for _, e := range r.resident {
		if e.lastAccess.Load() < cutoff {
			victims = append(victims, e)
		}
	}
	r.mu.Unlock()
	n := 0
	dirs := make(map[string]bool)
	for _, v := range victims {
		// Recheck idleness under no lock-order constraints; a request may
		// have landed since the scan.
		if v.lastAccess.Load() >= cutoff {
			continue
		}
		if err := r.hibernate(v); err == nil {
			n++
			dirs[filepath.Dir(v.path)] = true
		}
	}
	for dir := range dirs {
		// Best-effort: the snapshot contents are already fsynced, only
		// the rename's directory entry rides on this, and the next
		// checkpoint retries it.
		persist.SyncDir(dir)
	}
	r.stats.RecordSweep(n, r.cfg.now().Sub(start))
	return n
}

// fillDefaults completes a partial stream configuration from the
// registry default: PUT bodies may specify only the fields they care
// about.
func (r *Registry) fillDefaults(cfg StreamConfig) StreamConfig {
	if cfg.Backend == "" {
		cfg.Backend = r.cfg.Default.Backend
	}
	if cfg.Algo == "" {
		cfg.Algo = r.cfg.Default.Algo
	}
	if cfg.K == 0 {
		cfg.K = r.cfg.Default.K
	}
	if cfg.Dim == 0 {
		cfg.Dim = r.cfg.Default.Dim
	}
	// Variant knobs only inherit when the variant itself matches the
	// default's: a windowed tenant under a decayed-default daemon must
	// not silently pick up the daemon's half-life.
	if cfg.Backend == r.cfg.Default.Backend {
		// The two half-life forms are one knob: a request naming either
		// form has chosen its clock and inherits neither default.
		if cfg.HalfLife == 0 && cfg.HalfLifeSeconds == 0 {
			cfg.HalfLife = r.cfg.Default.HalfLife
			cfg.HalfLifeSeconds = r.cfg.Default.HalfLifeSeconds
		}
		if cfg.WindowN == 0 {
			cfg.WindowN = r.cfg.Default.WindowN
		}
	}
	// Quotas inherit unconditionally: a daemon-wide default quota is the
	// whole point of the knob, and a tenant wanting a different limit
	// states it explicitly.
	if cfg.PointsPerSec == 0 {
		cfg.PointsPerSec = r.cfg.Default.PointsPerSec
	}
	if cfg.BytesPerSec == 0 {
		cfg.BytesPerSec = r.cfg.Default.BytesPerSec
	}
	if cfg.MaxResidentBytes == 0 {
		cfg.MaxResidentBytes = r.cfg.Default.MaxResidentBytes
	}
	return cfg
}

// Create registers a stream with an explicit configuration (zero-valued
// fields fall back to the registry default) and materializes it eagerly,
// so configuration errors surface here rather than on first ingest.
// ErrExists if the id is taken.
func (r *Registry) Create(id string, cfg StreamConfig) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	cfg = r.fillDefaults(cfg)
	if err := cfg.Validate(); err != nil {
		return err
	}
	for {
		r.mu.Lock()
		if _, ok := r.streams[id]; ok {
			r.mu.Unlock()
			return fmt.Errorf("%w: %q", ErrExists, id)
		}
		e := &Stream{id: id, path: r.pathFor(id), cfg: cfg, explicit: true}
		if cfg.Dim > 0 {
			e.dim.Store(int64(cfg.Dim))
		}
		e.lastAccess.Store(r.cfg.now().UnixNano())
		r.streams[id] = e
		r.mu.Unlock()

		e.mu.Lock()
		if e.deleted {
			// A concurrent Delete removed our entry before we could
			// materialize it; materializing now would resurrect a stream
			// the delete already acknowledged. Start over.
			e.mu.Unlock()
			continue
		}
		_, err := r.materialize(e, nil)
		if err != nil {
			// Mark the entry dead under the same lock hold, so a waiter
			// that grabbed it from the map before we unmap it re-resolves
			// the id instead of materializing our rejected configuration.
			e.deleted = true
		}
		e.mu.Unlock()
		if err != nil {
			r.mu.Lock()
			if r.streams[id] == e {
				delete(r.streams, id)
			}
			r.mu.Unlock()
			return err
		}
		r.stats.RecordCreate()
		r.enforceCap()
		return nil
	}
}

// Delete removes a stream and its on-disk snapshot. In-flight requests
// against it finish first; late requests re-resolve the id and get
// ErrNotFound (or a fresh stream, for lazy ingest).
func (r *Registry) Delete(id string) error {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.mu.Lock()
	if e.deleted {
		e.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	// Unlink the snapshot before unmapping the id and while holding e.mu:
	// racing requests still resolve to this entry and block here, so none
	// can register a fresh entry that would restore the dying stream's
	// state from the file. An unlink failure aborts with the stream fully
	// intact — the delete can simply be retried.
	if e.path != "" {
		if err := os.Remove(e.path); err != nil && !os.IsNotExist(err) {
			e.mu.Unlock()
			return fmt.Errorf("registry: delete %q: %w", id, err)
		}
	}
	e.deleted = true
	wasResident := e.backend != nil
	e.backend = nil
	e.mu.Unlock()

	r.mu.Lock()
	if r.streams[id] == e {
		delete(r.streams, id)
	}
	if wasResident {
		delete(r.resident, id)
	}
	r.mu.Unlock()
	r.stats.RecordDelete()
	return nil
}

// Detach freezes a stream for migration off this daemon: it is
// hibernated to its snapshot file (waiting out in-flight requests under
// the stream's exclusive lock, so no acknowledged point can land after
// the snapshot that travels) and every later request is refused with a
// DetachedError carrying the newOwner forwarding hint, until Reattach
// (aborted handoff) or Delete (completed handoff). Idempotent: detaching
// a detached stream just updates the hint. Returns the authoritative
// snapshot path.
func (r *Registry) Detach(id, newOwner string) (string, error) {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return "", fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if e.detached {
		e.newOwner = newOwner
		// Detaching a standby copy for migration promotes its file to the
		// authoritative copy of the move; replication must no longer
		// overwrite it.
		e.standby = false
		return e.path, nil
	}
	if e.path == "" {
		return "", fmt.Errorf("registry: stream %q has no snapshot path; cannot detach", id)
	}
	if e.backend == nil {
		if _, err := os.Stat(e.path); err != nil {
			if !os.IsNotExist(err) {
				return "", fmt.Errorf("registry: detach %q: %w", id, err)
			}
			// Registered but never materialized and never checkpointed:
			// build the (empty or default) backend so the hibernation below
			// leaves a valid snapshot for the new owner to restore.
			if _, err := r.materialize(e, nil); err != nil {
				return "", err
			}
		}
	}
	if err := r.hibernateLocked(e); err != nil {
		return "", err
	}
	e.detached = true
	e.newOwner = newOwner
	return e.path, nil
}

// Reattach lifts a Detach — the abort path of a failed migration, and
// the promotion path for a standby copy (the failover primitive: a
// standby reattached starts serving the replicated state). The stream
// stays hibernated and serves again, restored lazily on its next access
// from the snapshot the detach (or the last replication ship) wrote;
// nothing was lost in the round trip because every request since the
// detach was refused, not half-applied.
func (r *Registry) Reattach(id string) error {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.deleted {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.detached = false
	e.standby = false
	e.newOwner = ""
	return nil
}

// Install registers a stream from a serialized snapshot envelope — the
// receiving half of a tenant migration: the bytes are written to the
// stream's snapshot file and restored immediately, so a malformed or
// truncated envelope is refused here, with nothing registered and no
// file left behind, rather than surfacing on the tenant's next access.
// ErrExists if the id is taken (an install never overwrites a live
// tenant) or if an unregistered snapshot file is already on disk.
func (r *Registry) Install(id string, src io.Reader) error {
	if err := ValidateID(id); err != nil {
		return err
	}
	path := r.pathFor(id)
	if path == "" {
		return errors.New("registry: snapshot install requires persistence (DataDir or a Files entry)")
	}
	raw, err := io.ReadAll(src)
	if err != nil {
		return fmt.Errorf("registry: install %q: %w", id, err)
	}
	r.mu.Lock()
	if _, ok := r.streams[id]; ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, id)
	}
	e := &Stream{id: id, path: path, cfg: r.cfg.Default}
	e.lastAccess.Store(r.cfg.now().UnixNano())
	r.streams[id] = e
	r.mu.Unlock()

	e.mu.Lock()
	err = func() error {
		if e.deleted {
			// A concurrent Delete removed our entry before the state
			// landed; installing now would resurrect an acknowledged
			// delete.
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if _, err := os.Stat(path); err == nil {
			return fmt.Errorf("%w: snapshot file %s already on disk", ErrExists, path)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("registry: install %q: %w", id, err)
		}
		if _, err := persist.WriteFileAtomic(path, func(w io.Writer) error {
			_, werr := w.Write(raw)
			return werr
		}); err != nil {
			return fmt.Errorf("registry: install %q: %w", id, err)
		}
		if _, err := r.materialize(e, nil); err != nil {
			os.Remove(path) // refused envelope; leave no trace
			return err
		}
		return nil
	}()
	if err != nil {
		e.deleted = true
		e.mu.Unlock()
		r.mu.Lock()
		if r.streams[id] == e {
			delete(r.streams, id)
		}
		r.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	r.stats.RecordCreate()
	r.enforceCap()
	return nil
}

// InstallStandby writes a snapshot envelope for id and registers it in
// the standby state: detached (every request refused with ErrDetached +
// the owner hint, so a client landing on a replica learns where the live
// copy serves) and overwritable — replication ships a fresher snapshot
// of the same tenant periodically, and each ship replaces the previous
// file. Unlike Install it never materializes a backend: a daemon can
// hold thousands of standby tenants at zero RAM cost. The envelope is
// validated with Peek (when configured) before anything is touched.
// Refuses with ErrExists when id already exists as anything other than a
// standby copy — a live tenant or a detached migration source is never
// clobbered by replication. Returns the point count recorded in the
// envelope (the shipped arrival count, the router's replication-lag
// anchor).
func (r *Registry) InstallStandby(id string, src io.Reader, owner string) (int64, error) {
	if err := ValidateID(id); err != nil {
		return 0, err
	}
	path := r.pathFor(id)
	if path == "" {
		return 0, errors.New("registry: standby install requires persistence (DataDir or a Files entry)")
	}
	raw, err := io.ReadAll(src)
	if err != nil {
		return 0, fmt.Errorf("registry: standby install %q: %w", id, err)
	}
	var cfg StreamConfig
	var count int64
	havePeek := false
	if r.cfg.Peek != nil {
		cfg, count, err = r.cfg.Peek(bytes.NewReader(raw))
		if err != nil {
			return 0, fmt.Errorf("%w: standby envelope for %q rejected: %v", ErrInvalidConfig, id, err)
		}
		havePeek = true
	}
	for {
		r.mu.Lock()
		e, ok := r.streams[id]
		if !ok {
			e = &Stream{id: id, path: path, cfg: r.cfg.Default, detached: true, standby: true, newOwner: owner}
			e.lastAccess.Store(r.cfg.now().UnixNano())
			r.streams[id] = e
			r.mu.Unlock()

			e.mu.Lock()
			if e.deleted {
				e.mu.Unlock()
				continue
			}
			// A snapshot file with no registry entry is not ours to
			// overwrite (mirrors Install): the boot scan registered every
			// file it found, so an unregistered one appeared out of band.
			if _, serr := os.Stat(path); serr == nil {
				err = fmt.Errorf("%w: snapshot file %s already on disk", ErrExists, path)
			} else if !os.IsNotExist(serr) {
				err = fmt.Errorf("registry: standby install %q: %w", id, serr)
			} else {
				err = r.writeStandby(e, raw, cfg, count, havePeek, owner)
			}
			if err != nil {
				e.deleted = true
			}
			e.mu.Unlock()
			if err != nil {
				r.mu.Lock()
				if r.streams[id] == e {
					delete(r.streams, id)
				}
				r.mu.Unlock()
				return 0, err
			}
			r.stats.RecordCreate()
			r.stats.RecordStandbyInstall()
			return count, nil
		}
		r.mu.Unlock()

		e.mu.Lock()
		if e.deleted {
			e.mu.Unlock()
			continue
		}
		if !e.standby {
			e.mu.Unlock()
			return 0, fmt.Errorf("%w: %q is not a standby copy", ErrExists, id)
		}
		err := r.writeStandby(e, raw, cfg, count, havePeek, owner)
		e.mu.Unlock()
		if err != nil {
			return 0, err
		}
		r.stats.RecordStandbyInstall()
		return count, nil
	}
}

// writeStandby persists a shipped envelope over e's snapshot file and
// refreshes the cold-serving metadata; the caller holds e.mu.
func (r *Registry) writeStandby(e *Stream, raw []byte, cfg StreamConfig, count int64, havePeek bool, owner string) error {
	if _, err := persist.WriteFileAtomic(e.path, func(w io.Writer) error {
		_, werr := w.Write(raw)
		return werr
	}); err != nil {
		return fmt.Errorf("registry: standby install %q: %w", e.id, err)
	}
	e.detached = true
	e.standby = true
	e.newOwner = owner
	if havePeek {
		e.cfg = cfg
		e.count = count
		e.lastCkptCount = count
		if cfg.Dim > 0 {
			e.dim.Store(int64(cfg.Dim))
		}
	}
	e.lastAccess.Store(r.cfg.now().UnixNano())
	return nil
}

// Checkpoint persists a stream's current state to its snapshot file
// without hibernating it, returning the bytes written. Hibernated
// streams are a no-op (their file already holds the state).
func (r *Registry) Checkpoint(id string) (int64, error) {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return r.checkpointStream(e, false)
}

// checkpointStream writes e's state to its file; force writes even when
// the count is unchanged since the last checkpoint.
func (r *Registry) checkpointStream(e *Stream, onlyDirty bool) (int64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	b := e.backend
	if b == nil || e.deleted {
		return 0, nil // cold: the file is already authoritative
	}
	if onlyDirty {
		if b.Count() == e.lastCkptCount {
			return 0, nil
		}
		if e.path == "" {
			// Memory-only stream (daemon run with -checkpoint but no
			// -data-dir): it has nowhere to persist by construction, so the
			// periodic sweep must not report it as a failure every tick.
			return 0, nil
		}
	}
	sn, ok := b.(Snapshotter)
	if !ok {
		return 0, fmt.Errorf("registry: backend %s cannot snapshot", b.Name())
	}
	if e.path == "" {
		return 0, fmt.Errorf("registry: stream %q has no snapshot path", e.id)
	}
	n, err := persist.WriteFileAtomic(e.path, sn.Snapshot)
	if err != nil {
		r.checkpoint.RecordFailure()
		return 0, fmt.Errorf("registry: checkpoint %q: %w", e.id, err)
	}
	r.checkpoint.RecordSuccess(n, r.cfg.now())
	e.lastCkptCount = b.Count()
	return n, nil
}

// CheckpointAll persists every resident stream whose count advanced
// since its last checkpoint — the daemon's periodic ticker and graceful
// shutdown path. All streams are attempted; the first error is returned.
func (r *Registry) CheckpointAll() error {
	r.mu.Lock()
	entries := make([]*Stream, 0, len(r.resident))
	for _, e := range r.resident {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	var firstErr error
	for _, e := range entries {
		if _, err := r.checkpointStream(e, true); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Snapshot streams a stream's serialized state to w — from the live
// backend when resident, straight from the snapshot file when
// hibernated (no restore needed to take a backup of a cold tenant).
func (r *Registry) Snapshot(id string, w io.Writer) error {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.deleted {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if b := e.backend; b != nil {
		sn, ok := b.(Snapshotter)
		if !ok {
			return fmt.Errorf("registry: backend %s cannot snapshot", b.Name())
		}
		return sn.Snapshot(w)
	}
	if e.path == "" {
		return fmt.Errorf("registry: stream %q has no snapshot path", e.id)
	}
	f, err := os.Open(e.path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = io.Copy(w, f)
	return err
}

// Info is a point-in-time description of one stream.
type Info struct {
	ID           string  `json:"id"`
	Resident     bool    `json:"resident"`
	Detached     bool    `json:"detached,omitempty"`
	Standby      bool    `json:"standby,omitempty"`
	Backend      string  `json:"backend,omitempty"`
	Algo         string  `json:"algo,omitempty"`
	K            int     `json:"k,omitempty"`
	Dim          int     `json:"dim,omitempty"`
	HalfLife     float64 `json:"half_life,omitempty"`
	HalfLifeSecs float64 `json:"half_life_seconds,omitempty"`
	WindowN      int64   `json:"window_n,omitempty"`
	Shards       int     `json:"shards,omitempty"`
	PointsPerSec float64 `json:"points_per_sec,omitempty"`
	BytesPerSec  float64 `json:"bytes_per_sec,omitempty"`
	MaxResBytes  int64   `json:"max_resident_bytes,omitempty"`
	Count        int64   `json:"count"`
	PointsStored int     `json:"points_stored"`
	LastAccess   int64   `json:"last_access_unix"`
}

// Stat describes one stream without changing its residency; statting a
// cold stream keeps it cold.
func (r *Registry) Stat(id string) (Info, error) {
	r.mu.Lock()
	e, ok := r.streams[id]
	r.mu.Unlock()
	if !ok {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return e.info(), nil
}

// List describes every stream, sorted by id. Cold streams report the
// metadata captured at hibernation (or boot Peek) time.
func (r *Registry) List() []Info {
	r.mu.Lock()
	entries := make([]*Stream, 0, len(r.streams))
	for _, e := range r.streams {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make([]Info, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats summarizes the registry for the /stats endpoint.
type Stats struct {
	Streams    int                        `json:"streams"`
	Resident   int                        `json:"resident"`
	Hibernated int                        `json:"hibernated"`
	Registry   metrics.RegistrySnapshot   `json:"lifecycle"`
	Checkpoint metrics.CheckpointSnapshot `json:"checkpoint"`
}

// Stats captures current gauge values and lifecycle counters.
func (r *Registry) Stats() Stats {
	r.mu.Lock()
	total, res := len(r.streams), len(r.resident)
	r.mu.Unlock()
	return Stats{
		Streams:    total,
		Resident:   res,
		Hibernated: total - res,
		Registry:   r.stats.Snapshot(),
		Checkpoint: r.checkpoint.Snapshot(),
	}
}
