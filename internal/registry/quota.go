package registry

import (
	"fmt"
	"time"
)

// Per-tenant admission control: token-bucket ingest quotas and
// restore-thrash shedding. Both refuse work with a ThrottleError — the
// HTTP layer's 429 + Retry-After — rather than queueing it: under
// overload, a bounded refusal the client can pace against beats an
// unbounded latency collapse every neighbor tenant pays for.

// ThrottleError reports a request refused by a per-tenant quota or by
// restore-thrash admission control. RetryAfter is the pacing hint the
// HTTP layer surfaces as a Retry-After header.
// errors.Is(err, ErrThrottled) matches.
type ThrottleError struct {
	ID         string
	Reason     string
	RetryAfter time.Duration
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("registry: stream %q throttled (%s), retry after %v", e.ID, e.Reason, e.RetryAfter)
}

// Unwrap lets errors.Is(err, ErrThrottled) match.
func (e *ThrottleError) Unwrap() error { return ErrThrottled }

// burstFor sizes a bucket: one second of sustained rate, at least one
// token, so a tenant idling briefly can absorb a normal batch without
// tripping on the first request after the pause.
func burstFor(rate float64) float64 {
	if rate < 1 {
		return 1
	}
	return rate
}

// refillLocked advances both buckets to now; the caller holds e.qmu.
// Rates are read from e.cfg, which only mutates under e.mu held
// exclusively while every quota call site holds it shared.
func (e *Stream) refillLocked(now time.Time) {
	nowNs := now.UnixNano()
	if !e.qInit {
		e.qInit = true
		e.qLast = nowNs
		e.ptsTokens = burstFor(e.cfg.PointsPerSec)
		e.bytesTokens = burstFor(e.cfg.BytesPerSec)
		return
	}
	el := float64(nowNs-e.qLast) / 1e9
	if el <= 0 {
		return
	}
	e.qLast = nowNs
	if r := e.cfg.PointsPerSec; r > 0 {
		if e.ptsTokens += el * r; e.ptsTokens > burstFor(r) {
			e.ptsTokens = burstFor(r)
		}
	}
	if r := e.cfg.BytesPerSec; r > 0 {
		if e.bytesTokens += el * r; e.bytesTokens > burstFor(r) {
			e.bytesTokens = burstFor(r)
		}
	}
}

// retryAfter converts a token deficit at a given rate into a pacing
// hint, clamped to at least 100ms so rounding never yields Retry-After
// 0 on a real refusal.
func retryAfter(deficit, rate float64) time.Duration {
	d := time.Duration(deficit / rate * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	return d
}

// admitIngest decides whether an ingest of bodyBytes may proceed. Bytes
// are debited up front (the body size is known before parsing); points
// are charged after the fact by chargePoints, because an ndjson body's
// record count is unknown until parsed — so the points bucket admits
// whenever it is out of debt and may go negative afterwards. The caller
// holds e.mu shared (a With callback).
func (e *Stream) admitIngest(now time.Time, b Backend, bodyBytes int64) error {
	if max := e.cfg.MaxResidentBytes; max > 0 {
		if dim := e.dim.Load(); dim > 0 {
			if res := int64(b.PointsStored()) * dim * 8; res >= max {
				return &ThrottleError{
					ID:     e.id,
					Reason: fmt.Sprintf("resident footprint %dB at max_resident_bytes %d", res, max),
					// Not a rate limit: the footprint only shrinks as the
					// coreset re-compacts (or a window slides), so just pace
					// the client's retries.
					RetryAfter: time.Second,
				}
			}
		}
	}
	if e.cfg.PointsPerSec <= 0 && e.cfg.BytesPerSec <= 0 {
		return nil
	}
	e.qmu.Lock()
	defer e.qmu.Unlock()
	e.refillLocked(now)
	if r := e.cfg.BytesPerSec; r > 0 && e.bytesTokens < float64(bodyBytes) {
		return &ThrottleError{
			ID:         e.id,
			Reason:     fmt.Sprintf("bytes_per_sec %v exceeded", r),
			RetryAfter: retryAfter(float64(bodyBytes)-e.bytesTokens, r),
		}
	}
	if r := e.cfg.PointsPerSec; r > 0 && e.ptsTokens < 1 {
		return &ThrottleError{
			ID:         e.id,
			Reason:     fmt.Sprintf("points_per_sec %v exceeded", r),
			RetryAfter: retryAfter(1-e.ptsTokens, r),
		}
	}
	if e.cfg.BytesPerSec > 0 {
		e.bytesTokens -= float64(bodyBytes)
	}
	return nil
}

// chargePoints debits the points bucket for an ingest that already
// ran. Debt is allowed (the batch was admitted before its record count
// was known) but clamped to one burst, so a single oversized batch
// costs at most ~two seconds of lockout rather than an unbounded one.
func (e *Stream) chargePoints(now time.Time, n int64) {
	r := e.cfg.PointsPerSec
	if r <= 0 || n <= 0 {
		return
	}
	e.qmu.Lock()
	defer e.qmu.Unlock()
	e.refillLocked(now)
	if e.ptsTokens -= float64(n); e.ptsTokens < -burstFor(r) {
		e.ptsTokens = -burstFor(r)
	}
}

// recordRestore notes one snapshot restore for the thrash detector; the
// caller holds e.mu exclusively. The ring keeps only what detection can
// ever need.
func (e *Stream) recordRestore(now time.Time, thrashRestores int) {
	keep := thrashRestores
	if keep < 8 {
		keep = 8
	}
	e.restoreTimes = append(e.restoreTimes, now.UnixNano())
	if len(e.restoreTimes) > keep {
		e.restoreTimes = e.restoreTimes[len(e.restoreTimes)-keep:]
	}
}

// AdmitIngest checks s's per-tenant quotas against an ingest request
// carrying bodyBytes of payload, returning a ThrottleError (and
// accounting it) when the request must be refused with 429. Call from
// inside a With callback, before parsing or applying the body.
func (r *Registry) AdmitIngest(s *Stream, b Backend, bodyBytes int64) error {
	err := s.admitIngest(r.cfg.now(), b, bodyBytes)
	if err != nil {
		r.stats.RecordThrottle()
	}
	return err
}

// ChargeIngest debits s's points budget for n points just applied.
// Call from inside the same With callback, after the batch lands.
func (r *Registry) ChargeIngest(s *Stream, n int64) {
	s.chargePoints(r.cfg.now(), n)
}

// admitRestore is the restore-thrash gate: called with e.mu held
// exclusively just before a cold stream would materialize. When the
// stream has already been restored ThrashRestores times within
// ThrashWindow, the access is shed instead, with a Retry-After that
// expires as the oldest counted restore leaves the window.
func (r *Registry) admitRestore(e *Stream) error {
	n, window := r.cfg.ThrashRestores, r.cfg.ThrashWindow
	if n <= 0 || window <= 0 || len(e.restoreTimes) == 0 {
		return nil
	}
	now := r.cfg.now().UnixNano()
	cutoff := now - int64(window)
	recent := e.restoreTimes[:0]
	for _, t := range e.restoreTimes {
		if t >= cutoff {
			recent = append(recent, t)
		}
	}
	e.restoreTimes = recent
	if len(recent) < n {
		return nil
	}
	r.stats.RecordShed()
	retry := time.Duration(recent[len(recent)-n] + int64(window) - now)
	if retry < time.Second {
		retry = time.Second
	}
	return &ThrottleError{ID: e.id, Reason: "restore-thrash", RetryAfter: retry}
}
