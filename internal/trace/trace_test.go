package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := Format(tid, sid, 0x01)
	if len(h) != 55 {
		t.Fatalf("header length %d, want 55: %q", len(h), h)
	}
	gotT, gotS, flags, ok := Parse(h)
	if !ok {
		t.Fatalf("Parse(%q) not ok", h)
	}
	if gotT != tid || gotS != sid || flags != 0x01 {
		t.Fatalf("round trip mismatch: %v %v %x", gotT, gotS, flags)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	valid := Format(NewTraceID(), NewSpanID(), 1)
	bad := []string{
		"",
		"00",
		valid[:54],             // truncated
		valid + "0",            // too long
		"ff" + valid[2:],       // reserved version
		"0g" + valid[2:],       // non-hex version
		strings.ToUpper(valid), // uppercase hex is invalid per spec
		valid[:3] + strings.Repeat("0", 32) + valid[35:],  // zero trace id
		valid[:36] + strings.Repeat("0", 16) + valid[52:], // zero span id
		strings.ReplaceAll(valid, "-", "_"),
	}
	for _, h := range bad {
		if _, _, _, ok := Parse(h); ok {
			t.Errorf("Parse(%q) accepted malformed header", h)
		}
	}
	// A different version with the 00 layout is accepted (spec: parse
	// forward-compatibly).
	if _, _, _, ok := Parse("01" + valid[2:]); !ok {
		t.Errorf("Parse rejected future version with v00 layout")
	}
}

func TestSpanStageMerging(t *testing.T) {
	r := NewRecorder(8, 4)
	sp := r.StartSpan("ingest", TraceID{}, SpanID{})
	sp.SetStream("t0")
	sp.RecordStage("lock-wait", 2*time.Millisecond)
	sp.RecordStage("cluster-apply", 5*time.Millisecond)
	sp.RecordStage("lock-wait", 3*time.Millisecond)
	sp.RecordStage("quota", 0) // floored at 1ns, never zero
	d := sp.End()
	if len(d.Stages) != 3 {
		t.Fatalf("stages = %+v, want 3 merged entries", d.Stages)
	}
	byName := map[string]float64{}
	for _, st := range d.Stages {
		if st.Ms <= 0 {
			t.Errorf("stage %s has non-positive ms %v", st.Name, st.Ms)
		}
		byName[st.Name] = st.Ms
	}
	if ms := byName["lock-wait"]; ms < 4.9 || ms > 5.1 {
		t.Errorf("lock-wait merged to %vms, want ~5", ms)
	}
	if dom, _ := d.Dominant(); dom != "cluster-apply" && dom != "lock-wait" {
		t.Errorf("dominant stage %q", dom)
	}
	if d.DurMs <= 0 {
		t.Errorf("duration %v not positive", d.DurMs)
	}
	// End is idempotent.
	if d2 := sp.End(); d2.SpanID != d.SpanID || r.Completed() != 1 {
		t.Errorf("second End changed data or recount: %+v completed=%d", d2, r.Completed())
	}
}

func TestNilSpanAndRecorderAreSafe(t *testing.T) {
	var sp *Span
	sp.SetStream("x")
	sp.SetStatus(500)
	sp.SetError(fmt.Errorf("boom"))
	sp.RecordStage("restore", time.Second)
	sp.StartStage("restore")()
	if got := sp.End(); got.TraceID != "" {
		t.Errorf("nil span End = %+v", got)
	}
	if sp.Traceparent() != "" {
		t.Errorf("nil span Traceparent non-empty")
	}
	var r *Recorder
	sp2 := r.StartSpan("ingest", TraceID{}, SpanID{})
	sp2.RecordStage("quota", time.Millisecond)
	if d := sp2.End(); d.Name != "ingest" {
		t.Errorf("span from nil recorder unusable: %+v", d)
	}
	if r.Spans(Filter{}) != nil || r.Started() != 0 {
		t.Errorf("nil recorder leaked state")
	}
}

func TestRecorderSlowestSurvivesRingEviction(t *testing.T) {
	r := NewRecorder(4, 2)
	slow := r.StartSpan("centers", TraceID{}, SpanID{})
	time.Sleep(2 * time.Millisecond)
	slowData := slow.End()
	for i := 0; i < 20; i++ {
		r.StartSpan("ingest", TraceID{}, SpanID{}).End()
	}
	got := r.Spans(Filter{Endpoint: "centers"})
	if len(got) != 1 || got[0].TraceID != slowData.TraceID {
		t.Fatalf("slow span evicted from window: %+v", got)
	}
	// min_ms filter keeps it, a high bar drops it.
	if len(r.Spans(Filter{MinMs: 1})) == 0 {
		t.Errorf("min_ms=1 dropped the slow span")
	}
	if len(r.Spans(Filter{MinMs: 1e9})) != 0 {
		t.Errorf("min_ms=1e9 returned spans")
	}
}

func TestHandlerFilters(t *testing.T) {
	r := NewRecorder(16, 4)
	a := r.StartSpan("ingest", TraceID{}, SpanID{})
	a.SetStream("alpha")
	a.End()
	b := r.StartSpan("centers", TraceID{}, SpanID{})
	b.SetStream("beta")
	b.End()

	get := func(q string) tracesResponse {
		t.Helper()
		rec := httptest.NewRecorder()
		r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces"+q, nil))
		if rec.Code != 200 {
			t.Fatalf("GET /debug/traces%s: %d %s", q, rec.Code, rec.Body)
		}
		var resp tracesResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("bad JSON: %v", err)
		}
		return resp
	}
	all := get("")
	if all.Started != 2 || all.Completed != 2 || all.Returned != 2 {
		t.Fatalf("counters: %+v", all)
	}
	if got := get("?stream=alpha"); got.Returned != 1 || got.Spans[0].Name != "ingest" {
		t.Fatalf("stream filter: %+v", got)
	}
	if got := get("?endpoint=centers"); got.Returned != 1 || got.Spans[0].Stream != "beta" {
		t.Fatalf("endpoint filter: %+v", got)
	}
	tid, _ := a.IDs()
	if got := get("?trace=" + tid.String()); got.Returned != 1 || got.Spans[0].Stream != "alpha" {
		t.Fatalf("trace filter: %+v", got)
	}
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?min_ms=abc", nil))
	if rec.Code != 400 {
		t.Fatalf("bad min_ms accepted: %d", rec.Code)
	}
}

// TestRecorderConcurrentRecording drives many goroutines through span
// creation, stage recording and End concurrently; under -race this
// pins that the ring never drops or tears an entry: every completed
// span is internally consistent and the counters balance exactly.
func TestRecorderConcurrentRecording(t *testing.T) {
	r := NewRecorder(128, 16)
	const goroutines, perG = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := r.StartSpan("ingest", TraceID{}, SpanID{})
				sp.SetStream(fmt.Sprintf("t%d", g))
				sp.RecordStage("lock-wait", time.Duration(i+1))
				sp.RecordStage("cluster-apply", time.Duration(g+1)*time.Microsecond)
				sp.SetStatus(200)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	total := int64(goroutines * perG)
	if r.Started() != total || r.Completed() != total {
		t.Fatalf("started=%d completed=%d, want both %d", r.Started(), r.Completed(), total)
	}
	spans := r.Spans(Filter{})
	if len(spans) != 128+16 && len(spans) != 128 {
		// Ring is full; slowest entries may or may not still be in it.
		if len(spans) < 128 {
			t.Fatalf("window lost entries: %d < ring size 128", len(spans))
		}
	}
	for _, d := range spans {
		if len(d.TraceID) != 32 || len(d.SpanID) != 16 {
			t.Fatalf("torn ids: %+v", d)
		}
		if d.Name != "ingest" || d.Status != 200 || d.DurMs <= 0 {
			t.Fatalf("torn span: %+v", d)
		}
		if len(d.Stages) != 2 {
			t.Fatalf("torn stages: %+v", d)
		}
		for _, st := range d.Stages {
			if st.Ms <= 0 {
				t.Fatalf("non-positive stage: %+v", d)
			}
		}
	}
}

func TestLogSlowEmitsTraceAttrs(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	r := NewRecorder(8, 4)
	sp := r.StartSpan("centers", TraceID{}, SpanID{})
	sp.SetStream("t3")
	sp.RecordStage("restore", 40*time.Millisecond)
	sp.RecordStage("coreset-recompute", time.Millisecond)
	d := sp.End()
	LogSlow(logger, d)
	line := buf.String()
	for _, want := range []string{d.TraceID, `"stream":"t3"`, `"endpoint":"centers"`, `"dominant_stage":"restore"`, `"msg":"slow request"`} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %s in %s", want, line)
		}
	}
}
