package trace

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Stage is one named timer inside a completed span. Durations are
// floored at 1ns when recorded, so a stage that is present is always
// strictly positive — the CI trace gate relies on that.
type Stage struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// SpanData is the immutable JSON shape of a completed span, as served
// by GET /debug/traces and logged for slow requests.
type SpanData struct {
	TraceID     string  `json:"trace_id"`
	SpanID      string  `json:"span_id"`
	ParentID    string  `json:"parent_id,omitempty"`
	Name        string  `json:"endpoint"`
	Stream      string  `json:"stream,omitempty"`
	Status      int     `json:"status,omitempty"`
	Failed      bool    `json:"failed,omitempty"`
	Err         string  `json:"error,omitempty"`
	StartUnixNs int64   `json:"start_unix_ns"`
	DurMs       float64 `json:"duration_ms"`
	Stages      []Stage `json:"stages,omitempty"`
}

// Dominant returns the stage with the largest share of the span's
// duration, or ("", 0) when no stages were recorded.
func (d SpanData) Dominant() (string, float64) {
	name, ms := "", 0.0
	for _, st := range d.Stages {
		if st.Ms > ms {
			name, ms = st.Name, st.Ms
		}
	}
	return name, ms
}

// Span is one in-flight request (or migration step). All methods are
// safe on a nil receiver and safe for concurrent use, so deep layers
// can record stages without knowing whether tracing is wired up above
// them.
type Span struct {
	rec *Recorder

	mu      sync.Mutex
	traceID TraceID
	spanID  SpanID
	parent  SpanID
	name    string
	stream  string
	status  int
	failed  bool
	err     string
	start   time.Time
	stages  []stageAcc
	ended   bool
	data    SpanData
}

type stageAcc struct {
	name string
	ns   int64
}

// IDs returns the span's trace and span identifiers.
func (s *Span) IDs() (TraceID, SpanID) {
	if s == nil {
		return TraceID{}, SpanID{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.traceID, s.spanID
}

// Traceparent renders the header value an outbound hop should carry:
// same trace id, this span as the parent. Empty on a nil span.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Format(s.traceID, s.spanID, 0x01)
}

// SetStream tags the span with the tenant stream id it served.
func (s *Span) SetStream(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stream = id
	s.mu.Unlock()
}

// SetStatus records the HTTP status the request resolved to.
func (s *Span) SetStatus(code int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = code
	if code >= 400 {
		s.failed = true
	}
	s.mu.Unlock()
}

// SetFailed marks the span as failed without an HTTP status.
func (s *Span) SetFailed(failed bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.failed = s.failed || failed
	s.mu.Unlock()
}

// SetError attaches an error message and marks the span failed.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	s.err = err.Error()
	s.failed = true
	s.mu.Unlock()
}

// RecordStage adds d to the named stage timer, creating it on first
// use. Same-name stages merge by summing; each contribution is floored
// at 1ns so recorded stages are always strictly positive.
func (s *Span) RecordStage(name string, d time.Duration) {
	if s == nil {
		return
	}
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.stages {
		if s.stages[i].name == name {
			s.stages[i].ns += ns
			return
		}
	}
	s.stages = append(s.stages, stageAcc{name: name, ns: ns})
}

// StartStage starts the named timer and returns the function that
// stops it. Usable as `defer sp.StartStage("restore")()` or held and
// called explicitly.
func (s *Span) StartStage(name string) func() {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.RecordStage(name, time.Since(t0)) }
}

// End completes the span, hands it to the Recorder it was started
// from, and returns the frozen SpanData. Subsequent calls are no-ops
// returning the same data.
func (s *Span) End() SpanData {
	if s == nil {
		return SpanData{}
	}
	s.mu.Lock()
	if s.ended {
		d := s.data
		s.mu.Unlock()
		return d
	}
	s.ended = true
	dur := time.Since(s.start)
	if dur < 1 {
		dur = 1
	}
	d := SpanData{
		TraceID:     s.traceID.String(),
		SpanID:      s.spanID.String(),
		Name:        s.name,
		Stream:      s.stream,
		Status:      s.status,
		Failed:      s.failed,
		Err:         s.err,
		StartUnixNs: s.start.UnixNano(),
		DurMs:       float64(dur) / 1e6,
	}
	if !s.parent.IsZero() {
		d.ParentID = s.parent.String()
	}
	if len(s.stages) > 0 {
		d.Stages = make([]Stage, len(s.stages))
		for i, st := range s.stages {
			d.Stages[i] = Stage{Name: st.name, Ms: float64(st.ns) / 1e6}
		}
	}
	s.data = d
	rec := s.rec
	s.mu.Unlock()
	rec.record(d)
	return d
}

type ctxKey struct{}

// NewContext returns ctx carrying sp.
func NewContext(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, sp)
}

// FromContext returns the span carried by ctx, or nil — which every
// Span method accepts.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// LogSlow emits the one structured record a -slow-request threshold
// produces: trace id, endpoint, stream, total duration, and the
// dominant stage so the log line alone says where the time went.
func LogSlow(l *slog.Logger, d SpanData) {
	if l == nil {
		l = slog.Default()
	}
	dom, domMs := d.Dominant()
	l.LogAttrs(context.Background(), slog.LevelWarn, "slow request",
		slog.String("trace_id", d.TraceID),
		slog.String("span_id", d.SpanID),
		slog.String("endpoint", d.Name),
		slog.String("stream", d.Stream),
		slog.Int("status", d.Status),
		slog.Bool("failed", d.Failed),
		slog.Float64("duration_ms", d.DurMs),
		slog.String("dominant_stage", dom),
		slog.Float64("dominant_ms", domMs),
		slog.Any("stages", d.Stages),
	)
}
