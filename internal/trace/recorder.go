package trace

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

const (
	// DefaultRecentSpans is the ring capacity when NewRecorder is given
	// zero: large enough that a CI bench run's slowest requests are
	// still resident when the trace gate scrapes /debug/traces.
	DefaultRecentSpans = 2048
	// DefaultSlowestSpans is the capacity of the slowest-span list.
	DefaultSlowestSpans = 64
)

// Recorder keeps a bounded in-memory window over completed spans: a
// ring of the most recent plus a list of the slowest ever seen, and
// started/completed counters so an unterminated span is detectable
// from outside. A nil Recorder is valid and records nothing.
type Recorder struct {
	started   atomic.Int64
	completed atomic.Int64

	mu      sync.Mutex
	recent  []SpanData // ring, next is the insertion cursor
	next    int
	count   int        // filled entries in recent
	slowest []SpanData // ascending by DurMs, at most slowCap
	slowCap int
}

// NewRecorder returns a Recorder holding up to recentCap recent spans
// and slowestCap slowest spans; zero or negative picks the defaults.
func NewRecorder(recentCap, slowestCap int) *Recorder {
	if recentCap <= 0 {
		recentCap = DefaultRecentSpans
	}
	if slowestCap <= 0 {
		slowestCap = DefaultSlowestSpans
	}
	return &Recorder{
		recent:  make([]SpanData, recentCap),
		slowCap: slowestCap,
	}
}

// StartSpan begins a span under the given trace id (a zero id mints a
// fresh trace) with parent as the remote parent span (zero for a root
// span). Safe on a nil Recorder: the span still works, it just records
// nowhere.
func (r *Recorder) StartSpan(name string, tid TraceID, parent SpanID) *Span {
	if tid.IsZero() {
		tid = NewTraceID()
	}
	if r != nil {
		r.started.Add(1)
	}
	return &Span{
		rec:     r,
		traceID: tid,
		spanID:  NewSpanID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
	}
}

// Started returns how many spans were started.
func (r *Recorder) Started() int64 {
	if r == nil {
		return 0
	}
	return r.started.Load()
}

// Completed returns how many spans reached End.
func (r *Recorder) Completed() int64 {
	if r == nil {
		return 0
	}
	return r.completed.Load()
}

func (r *Recorder) record(d SpanData) {
	if r == nil {
		return
	}
	r.completed.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recent[r.next] = d
	r.next = (r.next + 1) % len(r.recent)
	if r.count < len(r.recent) {
		r.count++
	}
	// Slowest list: kept small and sorted ascending, so the head is
	// the eviction candidate.
	if len(r.slowest) < r.slowCap {
		r.slowest = append(r.slowest, d)
		sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].DurMs < r.slowest[j].DurMs })
		return
	}
	if d.DurMs <= r.slowest[0].DurMs {
		return
	}
	r.slowest[0] = d
	sort.Slice(r.slowest, func(i, j int) bool { return r.slowest[i].DurMs < r.slowest[j].DurMs })
}

// Filter selects spans out of the recorder window.
type Filter struct {
	Stream   string  // exact stream id, "" matches all
	Endpoint string  // exact endpoint/span name, "" matches all
	TraceID  string  // exact 32-hex trace id, "" matches all
	MinMs    float64 // minimum total duration
	Limit    int     // max spans returned, <=0 means no cap
}

func (f Filter) match(d SpanData) bool {
	if f.Stream != "" && d.Stream != f.Stream {
		return false
	}
	if f.Endpoint != "" && d.Name != f.Endpoint {
		return false
	}
	if f.TraceID != "" && d.TraceID != f.TraceID {
		return false
	}
	return d.DurMs >= f.MinMs
}

// Spans returns the union of recent and slowest spans (deduplicated by
// span id) matching f, newest first.
func (r *Recorder) Spans(f Filter) []SpanData {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	seen := make(map[string]struct{}, r.count+len(r.slowest))
	out := make([]SpanData, 0, r.count+len(r.slowest))
	add := func(d SpanData) {
		if _, dup := seen[d.SpanID]; dup || !f.match(d) {
			return
		}
		seen[d.SpanID] = struct{}{}
		out = append(out, d)
	}
	for i := 0; i < r.count; i++ {
		add(r.recent[i])
	}
	for _, d := range r.slowest {
		add(d)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNs > out[j].StartUnixNs })
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[:f.Limit]
	}
	return out
}

// tracesResponse is the GET /debug/traces JSON body.
type tracesResponse struct {
	Started   int64      `json:"started"`
	Completed int64      `json:"completed"`
	Returned  int        `json:"returned"`
	Spans     []SpanData `json:"spans"`
}

// Handler serves the recorder window as JSON. Query parameters:
// stream, endpoint, trace (exact matches), min_ms (float), limit
// (default 250, 0 for everything in the window).
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		f := Filter{
			Stream:   req.URL.Query().Get("stream"),
			Endpoint: req.URL.Query().Get("endpoint"),
			TraceID:  req.URL.Query().Get("trace"),
			Limit:    250,
		}
		if v := req.URL.Query().Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, "bad min_ms", http.StatusBadRequest)
				return
			}
			f.MinMs = ms
		}
		if v := req.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			f.Limit = n
		}
		spans := r.Spans(f)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(tracesResponse{
			Started:   r.Started(),
			Completed: r.Completed(),
			Returned:  len(spans),
			Spans:     spans,
		})
	})
}
