// Package trace is the dependency-free request-tracing layer shared by
// every streamkm serving process (daemon, router, bench client).
//
// It implements just enough of the W3C Trace Context spec to carry one
// trace id across process boundaries: the router parses an incoming
// `traceparent` header (or mints a fresh trace when the client sent
// none), records its own span, and forwards the header to the owning
// daemon, which joins the same trace. Within a process each request is
// one Span with named stage timers (body-read, wire-decode, lock-wait,
// quota, cluster-apply, coreset-recompute, restore, checkpoint-fsync,
// proxy-hop); stages with the same name within a span are merged by
// summing so a loop of lock acquisitions shows up as one line.
//
// Completed spans land in a Recorder: a bounded ring of recent spans
// plus a bounded list of the slowest spans seen, served as JSON from
// GET /debug/traces with stream / endpoint / min_ms / trace filters.
// The Recorder also counts started vs. completed spans so an external
// gate (cmd/tracecheck) can detect spans that were never terminated.
//
// The package has no third-party dependencies and is safe to call with
// nil receivers throughout: code that was handed no span or no recorder
// records into the void instead of branching at every call site.
package trace

import (
	"crypto/rand"
	"encoding/hex"
)

// Header is the W3C trace-context request header carrying
// "version-traceid-parentid-flags".
const Header = "traceparent"

// TraceID is the 16-byte trace identifier shared by every span in one
// request's journey across processes.
type TraceID [16]byte

// SpanID is the 8-byte identifier of a single span within a trace.
type SpanID [8]byte

// IsZero reports whether the id is all zeroes, which the spec forbids
// on the wire.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports whether the id is all zeroes.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	fillRand(t[:])
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	fillRand(s[:])
	return s
}

func fillRand(b []byte) {
	// crypto/rand.Read never fails on the platforms we target (Go 1.24
	// aborts the process if the kernel source is broken), but telemetry
	// must never be the thing that takes serving down, so keep the
	// result non-zero even in the impossible error path.
	if _, err := rand.Read(b); err != nil || allZero(b) {
		for i := range b {
			b[i] = byte(i + 1)
		}
	}
}

func allZero(b []byte) bool {
	for _, c := range b {
		if c != 0 {
			return false
		}
	}
	return true
}

// Parse decodes a traceparent header value. It accepts any version
// except the reserved "ff", requires the fixed 55-byte layout of
// version 00, and rejects all-zero trace or span ids as the spec
// demands. ok is false for anything malformed; callers then start a
// fresh trace.
func Parse(h string) (tid TraceID, parent SpanID, flags byte, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, 0, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return TraceID{}, SpanID{}, 0, false
	}
	// The spec requires lowercase hex; hex.Decode would also accept
	// uppercase, so gate every segment explicitly.
	if !hexOK(h[0:2]) || !hexOK(h[3:35]) || !hexOK(h[36:52]) || !hexOK(h[53:55]) {
		return TraceID{}, SpanID{}, 0, false
	}
	if _, err := hex.Decode(tid[:], []byte(h[3:35])); err != nil {
		return TraceID{}, SpanID{}, 0, false
	}
	if _, err := hex.Decode(parent[:], []byte(h[36:52])); err != nil {
		return TraceID{}, SpanID{}, 0, false
	}
	var fb [1]byte
	if _, err := hex.Decode(fb[:], []byte(h[53:55])); err != nil {
		return TraceID{}, SpanID{}, 0, false
	}
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, 0, false
	}
	return tid, parent, fb[0], true
}

func hexOK(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

// Format renders a version-00 traceparent header value.
func Format(t TraceID, s SpanID, flags byte) string {
	b := make([]byte, 0, 55)
	b = append(b, '0', '0', '-')
	b = hex.AppendEncode(b, t[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, s[:])
	b = append(b, '-')
	b = hex.AppendEncode(b, []byte{flags})
	return string(b)
}
