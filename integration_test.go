package streamkm_test

// Integration tests exercising whole-system flows across module
// boundaries: public API + dataset generators + workload runner + persist,
// and cross-algorithm consistency on the paper's dataset shapes.

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"streamkm"

	"streamkm/internal/datagen"
	"streamkm/internal/geom"
	"streamkm/internal/workload"
)

// TestIntegrationAllAlgorithmsAllDatasets streams a small instance of each
// Table-3 dataset through every algorithm with interleaved queries and
// verifies k centers of the right dimension and sane cost come out.
func TestIntegrationAllAlgorithmsAllDatasets(t *testing.T) {
	const (
		n = 3000
		k = 5
	)
	for _, name := range datagen.Names() {
		ds, err := datagen.ByName(name, n, 3)
		if err != nil {
			t.Fatal(err)
		}
		pts := make([]streamkm.Point, ds.N())
		for i, p := range ds.Points {
			pts[i] = streamkm.Point(p)
		}
		for _, algo := range streamkm.Algos() {
			c := streamkm.MustNew(algo, streamkm.Config{K: k, Seed: 9})
			for i, p := range pts {
				c.Add(p)
				if i%500 == 499 {
					_ = c.Centers()
				}
			}
			centers := c.Centers()
			if len(centers) != k {
				t.Errorf("%s/%s: %d centers, want %d", name, algo, len(centers), k)
				continue
			}
			for _, ctr := range centers {
				if len(ctr) != ds.Dim {
					t.Fatalf("%s/%s: center dim %d, want %d", name, algo, len(ctr), ds.Dim)
				}
			}
			cost := streamkm.Cost(pts, centers)
			if math.IsNaN(cost) || math.IsInf(cost, 0) || cost < 0 {
				t.Errorf("%s/%s: invalid cost %v", name, algo, cost)
			}
		}
	}
}

// TestIntegrationIntrusionPathology reproduces the Figure 4(c) pathology at
// small scale: Sequential's cost on the skewed Intrusion shape is worse
// than CC's by a large factor (the paper reports ~1e4x at full scale).
func TestIntegrationIntrusionPathology(t *testing.T) {
	ds := datagen.Intrusion(8000, 11)
	pts := make([]streamkm.Point, ds.N())
	for i, p := range ds.Points {
		pts[i] = streamkm.Point(p)
	}
	costs := map[streamkm.Algo]float64{}
	for _, algo := range []streamkm.Algo{streamkm.AlgoSequential, streamkm.AlgoCC} {
		c := streamkm.MustNew(algo, streamkm.Config{
			K: 10, Seed: 4, QueryRuns: 3, QueryLloydIters: 10,
		})
		for _, p := range pts {
			c.Add(p)
		}
		costs[algo] = streamkm.Cost(pts, c.Centers())
	}
	if costs[streamkm.AlgoSequential] < 5*costs[streamkm.AlgoCC] {
		t.Errorf("expected Sequential ≫ CC on Intrusion: sequential %.4g, CC %.4g",
			costs[streamkm.AlgoSequential], costs[streamkm.AlgoCC])
	}
}

// TestIntegrationPersistMidWorkload snapshots in the middle of a measured
// workload run and confirms the restored clusterer finishes the stream with
// equivalent quality.
func TestIntegrationPersistMidWorkload(t *testing.T) {
	ds := datagen.Power(6000, 5)
	half := ds.N() / 2

	c := streamkm.MustNew(streamkm.AlgoRCC, streamkm.Config{K: 6, Seed: 2})
	for _, p := range ds.Points[:half] {
		c.Add(streamkm.Point(p))
	}
	var buf bytes.Buffer
	if err := streamkm.Save(&buf, c); err != nil {
		t.Fatal(err)
	}
	restored, err := streamkm.Load(&buf, streamkm.Config{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.Points[half:] {
		restored.Add(streamkm.Point(p))
	}
	pts := make([]streamkm.Point, ds.N())
	for i, p := range ds.Points {
		pts[i] = streamkm.Point(p)
	}
	restCost := streamkm.Cost(pts, restored.Centers())

	// Uninterrupted reference.
	ref := streamkm.MustNew(streamkm.AlgoRCC, streamkm.Config{K: 6, Seed: 2})
	for _, p := range ds.Points {
		ref.Add(streamkm.Point(p))
	}
	refCost := streamkm.Cost(pts, ref.Centers())
	if restCost > 2.5*refCost {
		t.Errorf("restored run cost %.4g vs uninterrupted %.4g", restCost, refCost)
	}
}

// TestIntegrationWorkloadSchedules runs the same algorithm under fixed and
// Poisson schedules and checks bookkeeping consistency end to end.
func TestIntegrationWorkloadSchedules(t *testing.T) {
	ds := datagen.Power(5000, 6)
	mk := func() *wlClusterer {
		return &wlClusterer{inner: streamkm.MustNew(streamkm.AlgoCC, streamkm.Config{K: 4, Seed: 7})}
	}

	fixed := workload.Run(mk(), ds.Points, workload.FixedInterval{Q: 250})
	if fixed.Queries != 20 {
		t.Errorf("fixed: %d queries, want 20", fixed.Queries)
	}
	pois := workload.Run(mk(), ds.Points, workload.Poisson{Lambda: 1.0 / 250, Rng: rand.New(rand.NewSource(8))})
	if pois.Queries < 5 || pois.Queries > 60 {
		t.Errorf("poisson: %d queries, want around 20", pois.Queries)
	}
	for _, res := range []workload.Result{fixed, pois} {
		if res.N != int64(ds.N()) || len(res.FinalCenters) != 4 || res.PointsStored <= 0 {
			t.Errorf("inconsistent result: %+v", res)
		}
	}
}

// wlClusterer adapts the public Clusterer to the internal core.Clusterer
// interface used by the workload runner (the internal runner is also
// exercised directly elsewhere; this verifies the public surface matches).
type wlClusterer struct {
	inner streamkm.Clusterer
}

func (w *wlClusterer) Add(p geom.Point) { w.inner.Add(streamkm.Point(p)) }
func (w *wlClusterer) Centers() []geom.Point {
	cs := w.inner.Centers()
	out := make([]geom.Point, len(cs))
	for i, c := range cs {
		out[i] = geom.Point(c)
	}
	return out
}
func (w *wlClusterer) PointsStored() int { return w.inner.PointsStored() }
func (w *wlClusterer) Name() string      { return w.inner.Name() }
