package streamkm

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"

	"streamkm/internal/decay"
	"streamkm/internal/geom"
	"streamkm/internal/persist"
	"streamkm/internal/registry"
	"streamkm/internal/window"
)

// This file is the serving layer's backend factory: every layer above the
// library (registry, HTTP server, daemon, bench tooling) creates and
// restores clustering backends through a BackendSpec instead of
// hardcoding a concrete constructor, so a multi-tenant daemon can run
// infinite-stream, forward-decay and sliding-window tenants side by side
// — and every variant survives a restart through the same snapshot
// machinery.

// BackendType selects a serving-backend variant.
type BackendType string

// Available backend variants.
const (
	// BackendConcurrent is the infinite-stream default: sharded ingest
	// with the cached-centers query fast path (Concurrent).
	BackendConcurrent BackendType = "concurrent"
	// BackendDecayed weights points with forward exponential decay —
	// influence halves every HalfLife arrivals (internal/decay), the
	// smooth answer to concept drift.
	BackendDecayed BackendType = "decayed"
	// BackendWindowed clusters only the last WindowN arrivals via a
	// Braverman-style exponential histogram of coresets
	// (internal/window), the hard-horizon answer to recency.
	BackendWindowed BackendType = "windowed"
)

// BackendTypes lists every backend variant.
func BackendTypes() []BackendType {
	return []BackendType{BackendConcurrent, BackendDecayed, BackendWindowed}
}

// BackendSpec identifies one serving backend: the variant, the summary
// structure, and the variant-specific knobs. Zero-valued fields select
// defaults (Type concurrent, Algo CC, Shards GOMAXPROCS); HalfLife is
// required for decayed backends and WindowN for windowed ones. The JSON
// field names are the wire format PUT /streams/{id} accepts.
type BackendSpec struct {
	// Type selects the variant; empty means BackendConcurrent.
	Type BackendType `json:"backend,omitempty"`
	// Algo is the summary structure (CT, CC or RCC) for concurrent and
	// decayed backends; ignored by windowed ones (their histogram is not
	// built on the coreset tree). Empty means AlgoCC.
	Algo Algo `json:"algo,omitempty"`
	// K is the number of centers queries answer. Required (>= 1).
	K int `json:"k,omitempty"`
	// Dim is the expected point dimension; 0 adopts the first point's.
	Dim int `json:"dim,omitempty"`
	// Shards is the ingest parallelism (concurrent only; decayed and
	// windowed backends serialize ingest behind one lock). 0 means
	// GOMAXPROCS.
	Shards int `json:"shards,omitempty"`
	// HalfLife is the decay half-life in points (decayed only; > 0).
	HalfLife float64 `json:"half_life,omitempty"`
	// WindowN is the sliding-window length in points (windowed only;
	// >= the coreset bucket size).
	WindowN int64 `json:"window_n,omitempty"`

	// Per-tenant quota knobs (0 = unlimited), valid on every variant.
	// The backends themselves never enforce them — enforcement lives at
	// the registry boundary — but the spec carries them so they persist
	// through snapshots and travel with migrated tenants.
	PointsPerSec     float64 `json:"points_per_sec,omitempty"`
	BytesPerSec      float64 `json:"bytes_per_sec,omitempty"`
	MaxResidentBytes int64   `json:"max_resident_bytes,omitempty"`
}

// hasQuota reports whether any quota knob is set, i.e. whether the spec
// needs the quota-carrying v3 envelope even for a concurrent backend.
func (s BackendSpec) hasQuota() bool {
	return s.PointsPerSec != 0 || s.BytesPerSec != 0 || s.MaxResidentBytes != 0
}

// Backend is a servable streaming clusterer: the registry/HTTP surface
// (batch ingest, centers, counters) plus snapshot/restore and spec
// introspection. Implementations are safe for concurrent use.
type Backend interface {
	// AddBatch observes a batch of unit-weight points.
	AddBatch(pts [][]float64)
	// AddWeighted observes one point carrying weight w > 0.
	AddWeighted(p []float64, w float64)
	// Centers returns the current cluster centers (copies).
	Centers() [][]float64
	// Count returns the number of points observed so far.
	Count() int64
	// PointsStored reports memory use in stored points.
	PointsStored() int
	// Name identifies the algorithm in reports.
	Name() string
	// Snapshot serializes the backend's complete logical state to w; the
	// result restores via Restore with a matching (or zero) spec.
	Snapshot(w io.Writer) error
	// Spec reports the spec this backend was opened or restored with.
	Spec() BackendSpec
}

// withDefaults materializes the spec's defaults and validates the
// variant-specific knobs.
func (s BackendSpec) withDefaults() (BackendSpec, error) {
	if s.Type == "" {
		s.Type = BackendConcurrent
	}
	if s.Algo == "" {
		s.Algo = AlgoCC
	}
	if s.Shards < 1 {
		s.Shards = runtime.GOMAXPROCS(0)
	}
	// Irrelevant knobs are rejected, not ignored: a stray half_life on a
	// windowed spec would otherwise be recorded in the stream config,
	// fail the PUT-vs-restore match on the next rehydration, and brick
	// the tenant long after the PUT was acknowledged.
	switch s.Type {
	case BackendConcurrent:
		if s.HalfLife != 0 || s.WindowN != 0 {
			return s, fmt.Errorf("streamkm: concurrent backend takes neither half_life (%v) nor window_n (%d)", s.HalfLife, s.WindowN)
		}
	case BackendDecayed:
		if s.HalfLife <= 0 {
			return s, fmt.Errorf("streamkm: decayed backend requires half_life > 0, got %v", s.HalfLife)
		}
		if s.WindowN != 0 {
			return s, fmt.Errorf("streamkm: decayed backend takes no window_n, got %d", s.WindowN)
		}
	case BackendWindowed:
		if s.WindowN < 1 {
			return s, fmt.Errorf("streamkm: windowed backend requires window_n >= 1, got %d", s.WindowN)
		}
		if s.HalfLife != 0 {
			return s, fmt.Errorf("streamkm: windowed backend takes no half_life, got %v", s.HalfLife)
		}
	default:
		return s, fmt.Errorf("streamkm: unknown backend type %q (want concurrent, decayed or windowed)", s.Type)
	}
	if s.Dim < 0 {
		return s, fmt.Errorf("streamkm: backend dim must be >= 0, got %d", s.Dim)
	}
	if s.PointsPerSec < 0 {
		return s, fmt.Errorf("streamkm: points_per_sec must be >= 0, got %v", s.PointsPerSec)
	}
	if s.BytesPerSec < 0 {
		return s, fmt.Errorf("streamkm: bytes_per_sec must be >= 0, got %v", s.BytesPerSec)
	}
	if s.MaxResidentBytes < 0 {
		return s, fmt.Errorf("streamkm: max_resident_bytes must be >= 0, got %d", s.MaxResidentBytes)
	}
	return s, nil
}

// check compares a requested spec against the spec recovered from a
// snapshot: every nonzero requested field must match, so a PUT that
// declares "decayed, half-life 1000" can never silently resume a
// concurrent (or differently tuned) snapshot. Shards is exempt — a
// restored concurrent backend keeps the snapshot's shard count by
// design. Quotas are exempt too: they are operator policy, not model
// identity, and must be adjustable without bricking a tenant whose
// snapshot recorded the old limit.
func (s BackendSpec) check(got BackendSpec) error {
	if s.Type != "" && s.Type != got.Type {
		return fmt.Errorf("streamkm: snapshot holds a %s backend, spec wants %s", got.Type, s.Type)
	}
	if s.Algo != "" && got.Algo != "" && s.Algo != got.Algo {
		return fmt.Errorf("streamkm: snapshot algo %s does not match spec algo %s", got.Algo, s.Algo)
	}
	if s.K != 0 && s.K != got.K {
		return fmt.Errorf("streamkm: snapshot k=%d does not match spec k=%d", got.K, s.K)
	}
	if s.Dim > 0 && got.Dim > 0 && s.Dim != got.Dim {
		return fmt.Errorf("streamkm: snapshot dimension %d does not match spec dim %d", got.Dim, s.Dim)
	}
	if s.HalfLife != 0 && s.HalfLife != got.HalfLife {
		return fmt.Errorf("streamkm: snapshot half-life %v does not match spec half_life %v", got.HalfLife, s.HalfLife)
	}
	if s.WindowN != 0 && s.WindowN != got.WindowN {
		return fmt.Errorf("streamkm: snapshot window %d does not match spec window_n %d", got.WindowN, s.WindowN)
	}
	return nil
}

// SpecFromStreamConfig maps the registry's wire-form stream
// configuration onto a backend spec. shards is the serving layer's
// per-stream ingest parallelism (0 keeps the default, or — on restore —
// the snapshot's). The single definition here keeps the daemon, tests
// and examples from each hand-maintaining the field mapping.
func SpecFromStreamConfig(sc registry.StreamConfig, shards int) BackendSpec {
	return BackendSpec{
		Type:             BackendType(sc.Backend),
		Algo:             Algo(sc.Algo),
		K:                sc.K,
		Dim:              sc.Dim,
		Shards:           shards,
		HalfLife:         sc.HalfLife,
		WindowN:          sc.WindowN,
		PointsPerSec:     sc.PointsPerSec,
		BytesPerSec:      sc.BytesPerSec,
		MaxResidentBytes: sc.MaxResidentBytes,
	}
}

// StreamConfig is the inverse mapping, for reporting a backend's actual
// spec back to a registry.
func (s BackendSpec) StreamConfig() registry.StreamConfig {
	return registry.StreamConfig{
		Backend:          string(s.Type),
		Algo:             string(s.Algo),
		K:                s.K,
		Dim:              s.Dim,
		HalfLife:         s.HalfLife,
		WindowN:          s.WindowN,
		PointsPerSec:     s.PointsPerSec,
		BytesPerSec:      s.BytesPerSec,
		MaxResidentBytes: s.MaxResidentBytes,
	}
}

// Open creates a fresh serving backend from a spec. cfg supplies the
// shared tuning (BucketSize, MergeDegree, Seed, Builder, query options,
// Alpha for the concurrent cache); cfg.K is overridden by spec.K.
func Open(spec BackendSpec, cfg Config) (Backend, error) {
	spec, err := spec.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.K = spec.K
	switch spec.Type {
	case BackendConcurrent:
		c, err := NewConcurrent(spec.Algo, spec.Shards, cfg)
		if err != nil {
			return nil, err
		}
		c.dim = spec.Dim
		if spec.hasQuota() {
			return &concurrentBackend{Concurrent: c, spec: spec}, nil
		}
		return c, nil
	case BackendDecayed:
		c, err := NewDecayed(spec.Algo, cfg, spec.HalfLife)
		if err != nil {
			return nil, err
		}
		spec.Shards = 0
		return &decayedBackend{spec: spec, d: c.(*wrapper).inner.(*decay.Clusterer)}, nil
	case BackendWindowed:
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		b, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		wc, err := window.New(cfg.K, cfg.BucketSize, cfg.MergeDegree, spec.WindowN,
			b, rand.New(rand.NewSource(cfg.Seed)), cfg.queryOptions())
		if err != nil {
			return nil, err
		}
		spec.Algo, spec.Shards = "", 0
		return &windowedBackend{spec: spec, w: wc}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown backend type %q", spec.Type)
}

// Restore reconstructs a serving backend previously written by a
// Backend's Snapshot (any variant, any format generation: bare v2
// sharded envelopes restore as concurrent backends, v3 typed envelopes
// as whatever they declare). spec's nonzero fields are validated against
// the snapshot — a mismatch is an error, never a silently wrong model;
// pass a zero spec to adopt whatever the file holds. cfg supplies the
// non-serialized pieces (Seed, Builder, query options), as for Load.
func Restore(spec BackendSpec, r io.Reader, cfg Config) (Backend, error) {
	env, err := persist.Load(r)
	if err != nil {
		return nil, err
	}
	var b Backend
	switch env.Kind {
	case persist.KindSharded:
		b, err = concurrentFromSharded(env, cfg)
	case persist.KindBackend:
		b, err = backendFromEnvelope(env.Backend, cfg)
	default:
		return nil, fmt.Errorf("streamkm: snapshot holds a single %q clusterer, not a serving backend (use Load)", env.Kind)
	}
	if err != nil {
		return nil, err
	}
	if err := spec.check(b.Spec()); err != nil {
		return nil, err
	}
	return b, nil
}

// backendFromEnvelope dispatches a validated v3 backend envelope to the
// variant's restore path.
func backendFromEnvelope(bs *persist.BackendSnapshot, cfg Config) (Backend, error) {
	if err := persist.ValidateBackend(bs); err != nil {
		return nil, err
	}
	switch bs.Type {
	case persist.BackendConcurrent:
		c, err := concurrentFromSharded(persist.Envelope{Kind: persist.KindSharded, Sharded: bs.Sharded}, cfg)
		if err != nil {
			return nil, err
		}
		if spec := specFromSnapshot(bs); spec.hasQuota() {
			return &concurrentBackend{Concurrent: c, spec: spec}, nil
		}
		return c, nil
	case persist.BackendDecayed:
		cfg.K = 1
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		builder, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		dc, err := persist.RestoreDecayed(bs.Decayed, cfg.Seed, builder, cfg.queryOptions())
		if err != nil {
			return nil, err
		}
		return &decayedBackend{spec: specFromSnapshot(bs), d: dc}, nil
	case persist.BackendWindowed:
		cfg.K = 1
		cfg, err := cfg.withDefaults()
		if err != nil {
			return nil, err
		}
		builder, err := cfg.builder()
		if err != nil {
			return nil, err
		}
		wc, err := persist.RestoreWindowed(bs.Window, cfg.Seed, builder, cfg.queryOptions())
		if err != nil {
			return nil, err
		}
		return &windowedBackend{spec: specFromSnapshot(bs), w: wc}, nil
	}
	return nil, fmt.Errorf("streamkm: unknown backend type %q in snapshot", bs.Type)
}

// specFromSnapshot recovers the spec recorded in a backend envelope.
func specFromSnapshot(bs *persist.BackendSnapshot) BackendSpec {
	return BackendSpec{
		Type:             BackendType(bs.Type),
		Algo:             Algo(bs.Algo),
		K:                bs.K,
		Dim:              bs.Dim,
		Shards:           bs.Shards,
		HalfLife:         bs.HalfLife,
		WindowN:          bs.WindowN,
		PointsPerSec:     bs.PointsPerSec,
		BytesPerSec:      bs.BytesPerSec,
		MaxResidentBytes: bs.MaxResidentBytes,
	}
}

// Spec reports the backend spec of a Concurrent, making it a Backend.
// Dim is the dimension recorded in the snapshot it was restored from (or
// passed to Open), 0 otherwise.
func (c *Concurrent) Spec() BackendSpec {
	return BackendSpec{
		Type:   BackendConcurrent,
		Algo:   c.algo,
		K:      c.k,
		Dim:    c.dim,
		Shards: c.NumShards(),
	}
}

// concurrentBackend wraps a Concurrent whose spec carries per-tenant
// quota knobs. The quotas are serving-layer policy the core clusterer
// knows nothing about, so the wrapper overrides only Spec (reporting
// them) and Snapshot (recording them in a v3 typed envelope around the
// usual sharded payload; a bare Concurrent keeps writing the v2 sharded
// envelope unchanged, so pre-quota golden snapshots stay valid).
type concurrentBackend struct {
	*Concurrent
	spec BackendSpec
}

func (b *concurrentBackend) Spec() BackendSpec {
	s := b.Concurrent.Spec()
	s.PointsPerSec = b.spec.PointsPerSec
	s.BytesPerSec = b.spec.BytesPerSec
	s.MaxResidentBytes = b.spec.MaxResidentBytes
	return s
}

func (b *concurrentBackend) Snapshot(w io.Writer) error {
	env, err := b.Concurrent.snapshotEnvelope()
	if err != nil {
		return err
	}
	s := env.Sharded
	return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
		Type:             persist.BackendConcurrent,
		Algo:             string(b.Concurrent.Algo()),
		K:                s.K,
		Dim:              s.Dim,
		Shards:           len(s.Shards),
		Count:            s.Count,
		PointsPerSec:     b.spec.PointsPerSec,
		BytesPerSec:      b.spec.BytesPerSec,
		MaxResidentBytes: b.spec.MaxResidentBytes,
		Sharded:          s,
	}})
}

// decayedBackend makes the single-goroutine forward-decay clusterer a
// servable Backend by serializing every operation behind one mutex. The
// decay wrapper's insertion weight is a strictly ordered logical clock,
// so sharding it the way Concurrent shards the stationary structures
// would reorder time; one lock is the honest concurrency model, and
// snapshots taken under it are trivially consistent cuts.
type decayedBackend struct {
	spec BackendSpec

	mu sync.Mutex
	d  *decay.Clusterer
}

func (b *decayedBackend) AddBatch(pts [][]float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range pts {
		b.d.Add(geom.Point(p))
	}
}

func (b *decayedBackend) AddWeighted(p []float64, w float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.d.AddWeighted(geom.Weighted{P: geom.Point(p), W: w})
}

func (b *decayedBackend) Centers() [][]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return pointsOut(b.d.Centers())
}

func (b *decayedBackend) Count() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.d.Count()
}

func (b *decayedBackend) PointsStored() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.d.PointsStored()
}

func (b *decayedBackend) Name() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.d.Name()
}

func (b *decayedBackend) Spec() BackendSpec { return b.spec }

func (b *decayedBackend) Snapshot(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	ds, dim, err := persist.SnapshotDecayed(b.d)
	if err != nil {
		return err
	}
	if dim == 0 {
		dim = b.spec.Dim
	}
	return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
		Type:             persist.BackendDecayed,
		Algo:             string(b.spec.Algo),
		K:                b.spec.K,
		Dim:              dim,
		HalfLife:         b.spec.HalfLife,
		Count:            b.d.Count(),
		PointsPerSec:     b.spec.PointsPerSec,
		BytesPerSec:      b.spec.BytesPerSec,
		MaxResidentBytes: b.spec.MaxResidentBytes,
		Decayed:          ds,
	}})
}

// windowedBackend makes the single-goroutine sliding-window clusterer a
// servable Backend behind one mutex; window expiry is keyed to arrival
// order, so the same logical-clock argument as for decay applies.
type windowedBackend struct {
	spec BackendSpec

	mu sync.Mutex
	w  *window.Clusterer
}

func (b *windowedBackend) AddBatch(pts [][]float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, p := range pts {
		b.w.Add(geom.Point(p))
	}
}

func (b *windowedBackend) AddWeighted(p []float64, w float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.w.AddWeighted(geom.Weighted{P: geom.Point(p), W: w})
}

func (b *windowedBackend) Centers() [][]float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return pointsOut(b.w.Centers())
}

func (b *windowedBackend) Count() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.w.Count()
}

func (b *windowedBackend) PointsStored() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.w.PointsStored()
}

func (b *windowedBackend) Name() string { return b.w.Name() }

func (b *windowedBackend) Spec() BackendSpec { return b.spec }

func (b *windowedBackend) Snapshot(w io.Writer) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.w.Snapshot()
	dim := b.w.Dim()
	if dim == 0 {
		dim = b.spec.Dim
	}
	return persist.Save(w, persist.Envelope{Kind: persist.KindBackend, Backend: &persist.BackendSnapshot{
		Type:             persist.BackendWindowed,
		K:                b.spec.K,
		Dim:              dim,
		WindowN:          b.spec.WindowN,
		Count:            b.w.Count(),
		PointsPerSec:     b.spec.PointsPerSec,
		BytesPerSec:      b.spec.BytesPerSec,
		MaxResidentBytes: b.spec.MaxResidentBytes,
		Window:           &s,
	}})
}

// pointsOut converts internal points to caller-owned [][]float64 copies.
func pointsOut(cs []geom.Point) [][]float64 {
	out := make([][]float64, len(cs))
	for i, c := range cs {
		out[i] = append([]float64(nil), c...)
	}
	return out
}
